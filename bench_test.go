// Package branchalign's top-level benchmarks regenerate every table and
// figure of the paper (one Benchmark per experiment; see DESIGN.md) and
// measure the core algorithms. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks reuse one Suite per benchmark function, so
// profiling/tracing interpreter runs are paid once and the measured work
// is the alignment/evaluation pipeline itself.
package branchalign

import (
	"context"
	"fmt"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/core"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/pipe"
	"branchalign/internal/tsp"
)

// experimentSuite builds a Suite restricted to a moderate subset so one
// benchmark iteration stays around a second.
func experimentSuite(b *testing.B, names ...string) *core.Suite {
	b.Helper()
	s := core.NewSuite(1)
	if len(names) > 0 {
		if _, err := s.WithBenchmarks(names...); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkTable1 regenerates the benchmark inventory (Table 1).
func BenchmarkTable1(b *testing.B) {
	s := experimentSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Phases regenerates the phase-time table (Table 2). Each
// iteration re-runs every phase including profiling, as the table itself
// times phases.
func BenchmarkTable2Phases(b *testing.B) {
	s := experimentSuite(b, "compress", "xli")
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates original penalties, HK bounds and original
// simulated cycles (Table 4).
func BenchmarkTable4(b *testing.B) {
	s := experimentSuite(b, "compress", "espresso", "xli")
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Penalties regenerates the control-penalty panel of Figure
// 2 (alignment + penalty evaluation + bounds; simulation excluded).
func BenchmarkFig2Penalties(b *testing.B) {
	s := experimentSuite(b, "compress", "espresso", "xli")
	mods := map[string]bool{}
	_ = mods
	for i := 0; i < b.N; i++ {
		for _, bm := range s.Benchmarks() {
			mod, err := s.Module(bm)
			if err != nil {
				b.Fatal(err)
			}
			for di := range bm.DataSets {
				prof, _, err := s.ProfileOf(bm, &bm.DataSets[di])
				if err != nil {
					b.Fatal(err)
				}
				layouts := s.AlignAll(context.Background(), mod, prof)
				for _, l := range layouts {
					layout.ModulePenalty(mod, l, prof, s.Model)
				}
				align.HeldKarpLowerBound(mod, prof, s.Model, s.HKOpts)
			}
		}
	}
}

// BenchmarkFig2Times regenerates the execution-time panel of Figure 2
// (trace replays through the pipeline/I-cache simulator).
func BenchmarkFig2Times(b *testing.B) {
	s := experimentSuite(b, "compress", "xli")
	var events int64
	for i := 0; i < b.N; i++ {
		for _, bm := range s.Benchmarks() {
			mod, err := s.Module(bm)
			if err != nil {
				b.Fatal(err)
			}
			for di := range bm.DataSets {
				ds := &bm.DataSets[di]
				layouts, err := s.LayoutsOf(context.Background(), bm, ds)
				if err != nil {
					b.Fatal(err)
				}
				for _, l := range layouts {
					st, err := s.SimulateCycles(bm, ds, mod, l)
					if err != nil {
						b.Fatal(err)
					}
					events += st.Events
				}
			}
		}
	}
	_ = events
}

// BenchmarkFig3 regenerates the cross-validation experiment (Figure 3).
func BenchmarkFig3(b *testing.B) {
	s := experimentSuite(b, "compress", "xli")
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixBounds regenerates the appendix's per-procedure
// solver and bound statistics.
func BenchmarkAppendixBounds(b *testing.B) {
	s := experimentSuite(b, "espresso")
	for i := 0; i < b.N; i++ {
		if _, err := s.Appendix(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core algorithm micro-benchmarks ---

func synthInstance(b *testing.B, blocks int) (*tsp.Matrix, *core.Suite) {
	b.Helper()
	mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, 7))
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Alpha21164()
	mat := align.BuildMatrixForFunc(mod.Funcs[0], prof.Funcs[0], m)
	return mat, nil
}

// BenchmarkIteratedThreeOpt measures the paper's solver protocol on a
// 60-block synthetic procedure.
func BenchmarkIteratedThreeOpt(b *testing.B) {
	mat, _ := synthInstance(b, 60)
	opts := tsp.PaperSolveOptions(1)
	opts.ExactThreshold = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsp.Solve(mat, opts)
	}
}

// BenchmarkHeldKarp measures the 1-tree subgradient bound.
func BenchmarkHeldKarp(b *testing.B) {
	mat, _ := synthInstance(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsp.HeldKarpDirected(mat, tsp.HeldKarpOptions{Iterations: 500})
	}
}

// BenchmarkHungarian measures the assignment-problem bound.
func BenchmarkHungarian(b *testing.B) {
	mat, _ := synthInstance(b, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsp.AssignmentBound(mat)
	}
}

// BenchmarkExactDP measures the Held-Karp dynamic program on the largest
// instance the TSP aligner solves exactly.
func BenchmarkExactDP(b *testing.B) {
	mat, _ := synthInstance(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsp.SolveExact(mat)
	}
}

// BenchmarkGreedyAlign and BenchmarkTSPAlign measure whole-module
// alignment of the compress benchmark.
func benchAlign(b *testing.B, a align.Aligner) {
	bm, err := bench.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, bm.DataSets[0].Make(), interp.Options{Profile: prof}); err != nil {
		b.Fatal(err)
	}
	m := machine.Alpha21164()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Align(context.Background(), mod, prof, m)
	}
}

func BenchmarkGreedyAlign(b *testing.B) { benchAlign(b, align.PettisHansen{}) }
func BenchmarkTSPAlign(b *testing.B)    { benchAlign(b, align.NewTSP(1)) }

// BenchmarkInterpreter measures raw IR interpretation speed (the
// profiling substrate).
func BenchmarkInterpreter(b *testing.B) {
	bm, err := bench.ByName("su2cor")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	inputs := bm.DataSets[1].Make()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := interp.Run(mod, inputs, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.Elapsed().Seconds())/1e6, "Minstr/s")
}

// BenchmarkSimulatorReplay measures trace replay through the pipeline +
// I-cache model.
func BenchmarkSimulatorReplay(b *testing.B) {
	bm, err := bench.ByName("su2cor")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	inputs := bm.DataSets[1].Make()
	if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof}); err != nil {
		b.Fatal(err)
	}
	tr, _, err := pipe.Record(mod, inputs, interp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Replay(tr, mod, l, pipe.DefaultConfig())
	}
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// BenchmarkLayoutPenalty measures the penalty evaluator.
func BenchmarkLayoutPenalty(b *testing.B) {
	mod, prof, err := bench.Synthesize(bench.DefaultSynth(200, 3))
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.ModulePenalty(mod, l, prof, m)
	}
}

// BenchmarkScalability sweeps the TSP aligner over growing synthetic
// procedures, the ablation DESIGN.md calls out for solver cost.
func BenchmarkScalability(b *testing.B) {
	for _, blocks := range []int{20, 50, 100, 200} {
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(blocks)))
		if err != nil {
			b.Fatal(err)
		}
		m := machine.Alpha21164()
		a := align.NewTSP(1)
		b.Run(sizeName(blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Align(context.Background(), mod, prof, m)
			}
		})
	}
}

func sizeName(blocks int) string {
	return fmt.Sprintf("blocks=%d", blocks)
}
