// Scaling benchmarks for the parallel multi-start solver. One series
// runs the paper's full multi-start protocol on the largest bundled
// function at 1/2/4/8 workers:
//
//	scripts/bench.sh parallel 'BenchmarkSolveParallel'
//
// (see results/BENCH_parallel.json). The solve is bit-identical at
// every width — tsp_test's determinism suite pins that — so the series
// isolates pure wall-clock scaling. Speedup is bounded by min(workers,
// GOMAXPROCS, runs): on a single-core host every width collapses to
// sequential throughput, so judge scaling numbers against the
// snapshot's recorded host parallelism.
package branchalign

import (
	"fmt"
	"runtime"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
	"branchalign/internal/work"
)

// BenchmarkSolveParallel measures the multi-start solve of the heaviest
// bundled instance (xli's 63-block dispatch loop) across worker counts.
// Each width gets a dedicated pool so the series is not serialized
// through the shared pool's GOMAXPROCS cap.
func BenchmarkSolveParallel(b *testing.B) {
	m := machine.Alpha21164()
	f, fp := largestBundledFunc(b)
	sp := align.BuildSparseMatrixForFunc(f, fp, m)
	for _, workers := range []int{1, 2, 4, 8} {
		opts := tsp.PaperSolveOptions(1)
		opts.ExactThreshold = 0 // force the multi-start path being measured
		opts.Parallelism = workers
		opts.Pool = work.NewPool(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tsp.Solve(sp, opts)
			}
		})
	}
	b.Logf("host GOMAXPROCS=%d (speedup is bounded by it)", runtime.GOMAXPROCS(0))
}

// BenchmarkBoundParallel measures the per-function Held-Karp fan-out
// that backs `balign vet`/`check.Bounds`: eight independent 300-block
// synthetic instances bounded concurrently, one ascent per pool task.
// As with the solve series, each width gets a dedicated pool, the work
// is deterministic at every width, and speedup is bounded by
// min(workers, GOMAXPROCS, instances).
func BenchmarkBoundParallel(b *testing.B) {
	m := machine.Alpha21164()
	const instances = 8
	mats := make([]*tsp.SparseMatrix, instances)
	for i := range mats {
		f, fp := synthFuncSeeded(b, 300, int64(i+1))
		mats[i] = align.BuildSparseMatrixForFunc(f, fp, m)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		pool := work.NewPool(workers)
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pool.Each(len(mats), func(k int) {
					tsp.HeldKarpBound(mats[k], tsp.HeldKarpOptions{Iterations: 120})
				})
			}
		})
	}
	b.Logf("host GOMAXPROCS=%d (speedup is bounded by it)", runtime.GOMAXPROCS(0))
}
