package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"branchalign/internal/testutil"
)

// postAlignError issues a request expected to fail and decodes the
// structured error body.
func postAlignError(t *testing.T, ts *httptest.Server, req alignRequest) (errorResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("request unexpectedly succeeded")
	}
	var out errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-200 body is not structured JSON: %v", err)
	}
	return out, resp.StatusCode
}

// TestAlignStaticProfile serves a completely profile-less request: no
// data, no n, no recorded profile — the engine estimates edge
// frequencies from CFG structure alone.
func TestAlignStaticProfile(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	res, code := postAlign(t, ts, alignRequest{
		Source:      testutil.BranchySource,
		ProfileMode: "static",
		Seed:        5,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.ProfileSource != "static" {
		t.Errorf("profile_source = %q, want static", res.ProfileSource)
	}
	if res.Penalty <= 0 || res.OriginalPenalty < res.Penalty {
		t.Fatalf("penalties look wrong: aligned=%d original=%d", res.Penalty, res.OriginalPenalty)
	}
	if len(res.Funcs) == 0 {
		t.Fatal("no per-function stats")
	}

	// A measured request for the same program must report its own source
	// and must not be served the static cache entry.
	mres, code := postAlign(t, ts, sourceRequest(5))
	if code != http.StatusOK {
		t.Fatalf("measured status %d", code)
	}
	if mres.ProfileSource != "measured" {
		t.Errorf("measured profile_source = %q", mres.ProfileSource)
	}
	if mres.CacheHit {
		t.Fatal("measured request hit the static cache entry")
	}

	// Re-issuing the static request hits the cache and stays static.
	again, code := postAlign(t, ts, alignRequest{
		Source:      testutil.BranchySource,
		ProfileMode: "static",
		Seed:        5,
	})
	if code != http.StatusOK {
		t.Fatalf("static re-request status %d", code)
	}
	if !again.CacheHit || again.ProfileSource != "static" {
		t.Errorf("static re-request: cache_hit=%v profile_source=%q, want true/static",
			again.CacheHit, again.ProfileSource)
	}
}

// TestAlignStaticBench runs a bundled benchmark with no dataset at all.
func TestAlignStaticBench(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	res, code := postAlign(t, ts, alignRequest{Bench: "eqntott", ProfileMode: "static", Seed: 2})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.ProfileSource != "static" || res.Penalty <= 0 {
		t.Fatalf("profile_source=%q penalty=%d", res.ProfileSource, res.Penalty)
	}
}

// TestAlignErrorKinds pins the machine-readable error discriminators
// clients switch on.
func TestAlignErrorKinds(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	cases := []struct {
		name     string
		req      alignRequest
		wantCode int
		wantKind string
	}{
		{
			name:     "unknown profile_mode",
			req:      alignRequest{Source: testutil.BranchySource, ProfileMode: "oracle"},
			wantCode: http.StatusBadRequest,
			wantKind: "bad_request",
		},
		{
			name:     "static with inline data",
			req:      alignRequest{Source: testutil.BranchySource, ProfileMode: "static", Data: testData(8, 1)},
			wantCode: http.StatusBadRequest,
			wantKind: "profile_conflict",
		},
		{
			name: "static with recorded profile",
			req: alignRequest{
				Source:      testutil.BranchySource,
				ProfileMode: "static",
				Profile:     json.RawMessage(`{"funcs":[]}`),
			},
			wantCode: http.StatusBadRequest,
			wantKind: "profile_conflict",
		},
		{
			name:     "no program",
			req:      alignRequest{ProfileMode: "static"},
			wantCode: http.StatusBadRequest,
			wantKind: "bad_request",
		},
		{
			name:     "unknown bench",
			req:      alignRequest{Bench: "nonesuch", ProfileMode: "static"},
			wantCode: http.StatusBadRequest,
			wantKind: "bad_request",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, code := postAlignError(t, ts, tc.req)
			if code != tc.wantCode {
				t.Errorf("status = %d, want %d", code, tc.wantCode)
			}
			if body.Kind != tc.wantKind {
				t.Errorf("kind = %q (error %q), want %q", body.Kind, body.Error, tc.wantKind)
			}
			if body.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestNotFoundIsJSON: unknown routes return the structured body too,
// not net/http's plain-text page.
func TestNotFoundIsJSON(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("404 body is not JSON: %v", err)
	}
	if body.Kind != "not_found" {
		t.Errorf("kind = %q, want not_found", body.Kind)
	}
}
