package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"sync/atomic"
	"time"

	"branchalign/internal/bench"
	"branchalign/internal/engine"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/machine"
	"branchalign/internal/minic"
	"branchalign/internal/obs"
	"branchalign/internal/stats"
	"branchalign/internal/tsp"
)

// serverConfig carries the knobs the flags set.
type serverConfig struct {
	// Workers bounds concurrent per-function solves (engine pool).
	Workers int
	// Parallelism is the default per-run solver parallelism applied to
	// requests that don't set their own (see engine.Options.Parallelism).
	// Results are bit-identical at every setting, so it never enters the
	// cache key.
	Parallelism int
	// CacheEntries bounds the engine result cache.
	CacheEntries int
	// MaxInflight bounds concurrently served /v1/align requests; excess
	// requests are shed with 429 rather than queued, so a burst cannot
	// build an unbounded backlog of goroutines holding parsed modules.
	MaxInflight int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout clamps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ (off by default:
	// profiling endpoints expose heap contents and cost CPU, so they are
	// opt-in per process, not per scrape).
	Pprof bool
	// LogWriter receives the structured JSON logs (access lines,
	// lifecycle events). Nil silences them — main passes os.Stderr,
	// tests pass a buffer or nothing.
	LogWriter io.Writer
}

func (c serverConfig) withDefaults() serverConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	return c
}

type server struct {
	cfg      serverConfig
	reg      *obs.Registry
	eng      *engine.Engine
	logger   *slog.Logger
	inflight chan struct{}
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the observability middleware

	// draining flips once, when shutdown begins: /v1/readyz goes 503 so
	// load balancers stop routing here, while /v1/healthz stays 200 so
	// orchestrators do not kill the process mid-drain.
	draining atomic.Bool

	// Server-level counters, alongside the middleware's HTTP families.
	// shed/alignErrors/alignTruncated classify /v1/align outcomes the
	// status code alone does not (truncated solves are 200s).
	sheds          *obs.Counter
	alignErrors    *obs.Counter
	alignTruncated *obs.Counter

	// testHookAligning, when set, runs inside handleAlign after the
	// in-flight slot is taken — the deterministic window server tests
	// (drain, shedding) synchronize on.
	testHookAligning func()
}

// newServer wires the registry, engine, middleware and routes. It is
// the unit the tests exercise through httptest, independent of sockets
// and signals.
func newServer(cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	logOut := cfg.LogWriter
	if logOut == nil {
		logOut = io.Discard
	}
	reg := obs.NewRegistry()
	s := &server{
		cfg: cfg,
		reg: reg,
		eng: engine.New(engine.Options{
			Workers:      cfg.Workers,
			Parallelism:  cfg.Parallelism,
			CacheEntries: cfg.CacheEntries,
			Registry:     reg,
		}),
		logger:   slog.New(slog.NewJSONHandler(logOut, nil)),
		inflight: make(chan struct{}, cfg.MaxInflight),
		mux:      http.NewServeMux(),
		sheds: reg.Counter("balignd_sheds_total",
			"Align requests shed with 429 at the in-flight cap."),
		alignErrors: reg.Counter("balignd_align_errors_total",
			"Align requests that failed (malformed input, expired deadline before solving)."),
		alignTruncated: reg.Counter("balignd_align_truncated_total",
			"Align responses whose solve was truncated by a deadline or budget."),
	}
	s.mux.HandleFunc("POST /v1/align", s.handleAlign)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	// Catch-all: unknown routes get the same structured JSON error body
	// as every other failure, not net/http's plain-text 404 page.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path),
			Kind:  "not_found",
		})
	})
	s.handler = newMiddleware(s.mux, reg, s.logger)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// startDrain marks the server not-ready. In-flight requests keep
// running (http.Server.Shutdown waits for them); only the readiness
// probe changes, so traffic stops arriving before connections close.
func (s *server) startDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "draining")
	}
}

// alignRequest is the wire form of one alignment job: a program (inline
// Mini-C source, or the name of a bundled benchmark) plus either a
// training input or a previously recorded profile (the JSON written by
// `balign -profile-out`).
type alignRequest struct {
	Source  string `json:"source,omitempty"`
	Bench   string `json:"bench,omitempty"`
	DataSet string `json:"dataset,omitempty"`

	Data []int64 `json:"data,omitempty"`
	N    *int64  `json:"n,omitempty"`
	// Profile, when present, is used instead of running the program.
	Profile json.RawMessage `json:"profile,omitempty"`
	// ProfileMode selects where the profile comes from: "measured" (the
	// default — run the program or use Profile) or "static" (no profiling
	// at all: the engine estimates edge frequencies from CFG structure;
	// Data/N/Profile must be absent).
	ProfileMode string `json:"profile_mode,omitempty"`

	Model string `json:"model,omitempty"`
	// Algorithm selects the aligner by registry name ("tsp", "exttsp",
	// "greedy", ...); empty means "tsp". Unknown names are rejected with
	// kind "unknown_algorithm".
	Algorithm string `json:"algorithm,omitempty"`
	Seed      int64  `json:"seed,omitempty"`

	Bound        bool `json:"bound,omitempty"`
	HKIterations int  `json:"hk_iterations,omitempty"`

	// Parallelism overrides the server's per-run solver parallelism for
	// this request (-1 = all CPUs). The response is bit-identical at
	// every setting — only wall-clock changes — so a cached result solved
	// at one setting is served for every other.
	Parallelism int `json:"parallelism,omitempty"`

	// TimeoutMS and MaxKicks budget the solve; see tsp.Budget. A
	// deadline hit yields a valid truncated result, not an error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	MaxKicks  int64 `json:"max_kicks,omitempty"`

	// Trace returns the request-scoped telemetry events inline.
	Trace bool `json:"trace,omitempty"`
}

type alignResponse struct {
	Penalty         int64   `json:"penalty"`
	OriginalPenalty int64   `json:"original_penalty"`
	Normalized      float64 `json:"normalized"`
	Bound           int64   `json:"bound,omitempty"`
	Truncated       bool    `json:"truncated"`
	CacheHit        bool    `json:"cache_hit"`
	Coalesced       bool    `json:"coalesced"`
	// ProfileSource reports what drove the alignment: "measured" or
	// "static" (estimated; such results live in a disjoint cache
	// partition from measured ones).
	ProfileSource string `json:"profile_source"`
	// Algorithm echoes the aligner that produced the layout (the request
	// default resolved, so clients always see the concrete name).
	Algorithm string `json:"algorithm"`

	Funcs       []engine.FuncStat `json:"funcs"`
	ElapsedMS   float64           `json:"elapsed_ms"`
	TraceEvents []obs.Event       `json:"trace_events,omitempty"`
}

// errorResponse is the structured error body every non-200 carries:
// Error is the human-readable message, Kind a stable machine-readable
// discriminator clients can switch on without parsing prose.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// errKind classifies an error into the wire discriminator.
func errKind(code int, err error) string {
	switch {
	case errors.Is(err, engine.ErrNoModule):
		return "no_module"
	case errors.Is(err, engine.ErrNoProfile):
		return "no_profile"
	case errors.Is(err, engine.ErrProfileConflict):
		return "profile_conflict"
	case errors.Is(err, engine.ErrUnknownAlgorithm):
		return "unknown_algorithm"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	}
	switch code {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusTooManyRequests:
		return "capacity"
	case http.StatusServiceUnavailable:
		return "timeout"
	}
	return "internal"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness only: stays 200 through a drain so the orchestrator does
	// not kill a process that is still finishing requests.
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// statsResponse is the /v1/stats body. Every number is read back from
// the metrics registry (or the engine's handles into it), so this JSON
// view and the /metrics exposition can never disagree —
// TestStatsMatchesMetrics pins the parity.
type statsResponse struct {
	Server struct {
		Requests  int64 `json:"requests"`
		Shed      int64 `json:"shed"`
		Errors    int64 `json:"errors"`
		Truncated int64 `json:"truncated"`
	} `json:"server"`
	Engine engine.Stats `json:"engine"`
}

func (s *server) statsSnapshot() statsResponse {
	var out statsResponse
	// "requests" keeps its historical meaning: align requests accepted
	// for handling, shed ones included. The middleware's counter ticks
	// on completion, and sheds are also counted there, so in-flight
	// align requests appear once they finish.
	out.Server.Requests = int64(s.reg.Sum("balignd_http_requests_total",
		map[string]string{"endpoint": "/v1/align"}))
	out.Server.Shed = s.sheds.Value()
	out.Server.Errors = s.alignErrors.Value()
	out.Server.Truncated = s.alignTruncated.Value()
	out.Engine = s.eng.Stats()
	return out
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

func (s *server) handleAlign(w http.ResponseWriter, r *http.Request) {
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		// Shed instead of queueing: the caller can retry with backoff,
		// and /v1/healthz stays responsive because it never takes this
		// path.
		s.sheds.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server at capacity", Kind: "capacity"})
		return
	}
	if s.testHookAligning != nil {
		s.testHookAligning()
	}

	var req alignRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// r.Context() additionally cancels the solve when the client goes
	// away — no point polishing a layout nobody will read.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, httpCode, err := s.align(ctx, req)
	if err != nil {
		s.fail(w, httpCode, err)
		return
	}
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if res.Truncated {
		s.alignTruncated.Inc()
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.alignErrors.Inc()
	writeJSON(w, code, errorResponse{Error: err.Error(), Kind: errKind(code, err)})
}

// align resolves the request into a module+profile and runs it through
// the engine. The int return is the HTTP status to use when err != nil.
func (s *server) align(ctx context.Context, req alignRequest) (*alignResponse, int, error) {
	static, err := pickProfileMode(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mod, inputs, err := buildModule(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	model, err := pickModel(req.Model)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var prof *interp.Profile
	if !static {
		prof, err = buildProfile(mod, inputs, req.Profile)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
	}

	algorithm := req.Algorithm
	if algorithm == "" {
		algorithm = "tsp"
	}

	var (
		tr   *obs.Trace
		sink *obs.MemorySink
		root *obs.Span
	)
	if req.Trace {
		sink = &obs.MemorySink{}
		tr = obs.New(sink)
		root = tr.Start("balignd.align", obs.String("model", model.Name),
			obs.String("algorithm", algorithm), obs.Int("seed", req.Seed))
		// Stamp the middleware-assigned request ID on the root span, so
		// an access-log line leads straight to the solver trace that
		// served it (`balign report -in` prints it back in its header).
		if id := requestID(ctx); id != "" {
			root.SetAttrs(obs.String("request_id", id))
		}
	}

	eres, err := s.eng.Align(ctx, engine.Request{
		Module:        mod,
		Profile:       prof,
		StaticProfile: static,
		Model:         model,
		Algorithm:     algorithm,
		Seed:          req.Seed,
		Budget: tsp.Budget{
			MaxKicks:        req.MaxKicks,
			MaxHKIterations: 0, // the iterate count is HKIterations itself
		},
		Bound:        req.Bound,
		HKIterations: req.HKIterations,
		Parallelism:  req.Parallelism,
		Obs:          root,
	})
	if err != nil {
		// Distinguish "the request's own deadline consumed before
		// solving began" from malformed input.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, http.StatusServiceUnavailable, err
		}
		return nil, http.StatusBadRequest, err
	}

	resp := &alignResponse{
		Penalty:         int64(eres.Penalty),
		OriginalPenalty: int64(eres.OriginalPenalty),
		Normalized:      stats.Ratio(eres.Penalty, eres.OriginalPenalty, 1),
		Bound:           int64(eres.Bound),
		Truncated:       eres.Truncated,
		CacheHit:        eres.CacheHit,
		Coalesced:       eres.Coalesced,
		ProfileSource:   "measured",
		Algorithm:       algorithm,
		Funcs:           eres.Funcs,
	}
	if eres.ProfileEstimated {
		resp.ProfileSource = "static"
	}
	if req.Trace {
		root.End(obs.Bool("truncated", eres.Truncated))
		if err := tr.Close(); err != nil {
			return nil, http.StatusInternalServerError, err
		}
		resp.TraceEvents = sink.Events()
	}
	return resp, 0, nil
}

// pickProfileMode validates the request's profile_mode and its
// interaction with the profile-bearing fields. It returns whether the
// engine should estimate the profile statically.
func pickProfileMode(req alignRequest) (bool, error) {
	switch req.ProfileMode {
	case "", "measured":
		return false, nil
	case "static":
		// A static request must not also carry profiling inputs: silently
		// ignoring them would hide a client bug, so conflict loudly (the
		// engine sentinel keeps the wire kind "profile_conflict").
		if len(req.Profile) > 0 || len(req.Data) > 0 || req.N != nil {
			return false, fmt.Errorf("profile_mode \"static\" excludes profile/data/n: %w", engine.ErrProfileConflict)
		}
		return true, nil
	}
	return false, fmt.Errorf("unknown profile_mode %q (want \"measured\" or \"static\")", req.ProfileMode)
}

// buildModule compiles the requested program — inline Mini-C source or
// a bundled benchmark — and shapes its training input.
func buildModule(req alignRequest) (*ir.Module, []interp.Input, error) {
	switch {
	case req.Bench != "" && req.Source != "":
		return nil, nil, fmt.Errorf("request has both source and bench; pick one")
	case req.Bench != "":
		b, err := bench.ByName(req.Bench)
		if err != nil {
			return nil, nil, err
		}
		name := req.DataSet
		if name == "" {
			name = b.DataSets[0].Name
		}
		ds, err := b.DataSet(name)
		if err != nil {
			return nil, nil, err
		}
		mod, err := b.Compile()
		if err != nil {
			return nil, nil, err
		}
		return mod, ds.Make(), nil
	case req.Source != "":
		prog, err := minic.Parse(req.Source)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing source: %w", err)
		}
		info, err := minic.Check(prog)
		if err != nil {
			return nil, nil, fmt.Errorf("checking source: %w", err)
		}
		mod, err := lower.Program(info)
		if err != nil {
			return nil, nil, fmt.Errorf("lowering source: %w", err)
		}
		inputs, err := shapeInputs(mod, req.Data, req.N)
		if err != nil {
			return nil, nil, err
		}
		return mod, inputs, nil
	}
	return nil, nil, fmt.Errorf("request needs source or bench")
}

// shapeInputs matches the program entry signature against the provided
// data, exactly as the balign CLI does.
func shapeInputs(mod *ir.Module, data []int64, scalarN *int64) ([]interp.Input, error) {
	entry := mod.Funcs[mod.EntryFunc]
	n := int64(len(data))
	if scalarN != nil {
		n = *scalarN
	}
	switch {
	case len(entry.Params) == 0:
		return nil, nil
	case len(entry.Params) == 1 && entry.Params[0] == ir.ParamScalar:
		return []interp.Input{interp.ScalarInput(n)}, nil
	case len(entry.Params) == 2 && entry.Params[0] == ir.ParamArray && entry.Params[1] == ir.ParamScalar:
		return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(n)}, nil
	}
	return nil, fmt.Errorf("entry main must have signature (), (n) or (input[], n)")
}

// buildProfile returns the training profile: parsed from the request
// when supplied, collected by running the program otherwise.
func buildProfile(mod *ir.Module, inputs []interp.Input, raw json.RawMessage) (*interp.Profile, error) {
	if len(raw) > 0 {
		prof, err := interp.ReadProfileJSON(bytes.NewReader(raw), mod)
		if err != nil {
			return nil, fmt.Errorf("reading profile: %w", err)
		}
		return prof, nil
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
		return nil, fmt.Errorf("profiling run failed: %w", err)
	}
	return prof, nil
}

func pickModel(name string) (machine.Model, error) {
	if name == "" {
		name = "alpha21164"
	}
	for _, m := range machine.Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return machine.Model{}, fmt.Errorf("unknown model %q", name)
}
