// Command balignd serves the branch-alignment engine over HTTP.
//
//	balignd -addr :8347
//	curl -s localhost:8347/v1/align -d '{"bench":"compress","bound":true}'
//
// Endpoints:
//
//	POST /v1/align     align a program (inline Mini-C source or a bundled
//	                   benchmark, optional recorded profile) and return
//	                   per-function layouts with tour/bound statistics
//	GET  /v1/healthz   liveness probe (200 for the process lifetime)
//	GET  /v1/readyz    readiness probe (503 the moment drain begins)
//	GET  /v1/stats     server and engine counters as JSON
//	GET  /metrics      Prometheus text-format exposition of the whole
//	                   metrics plane: HTTP request/latency families,
//	                   engine cache and single-flight counters, solve
//	                   latency by profile mode and cache outcome, worker
//	                   pool gauges
//	GET  /debug/pprof  net/http/pprof profiling (only with -pprof)
//
// Every request gets an ID (returned in X-Request-Id, stamped on its
// solver trace, printed in its JSON access-log line), and every request
// is budgeted: its deadline (timeout_ms, clamped by -max-timeout)
// truncates in-flight solves at their next kick boundary and returns
// the best layout found so far, flagged "truncated" — never an error,
// never an invalid layout. Excess concurrent requests beyond
// -max-inflight are shed with 429. SIGTERM/SIGINT drain the server
// gracefully: /v1/readyz flips to 503 immediately, in-flight requests
// finish, new connections are refused. Lifecycle events are structured
// JSON on stderr, starting with one line echoing the effective config.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "balignd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("balignd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "localhost:8347", "listen address")
		workers     = fs.Int("workers", 0, "max concurrent per-function solves (0 = GOMAXPROCS)")
		parallel    = fs.Int("parallel", 0, "default per-run solver parallelism for requests without one (-1 = all CPUs); results are bit-identical at every setting")
		cacheSize   = fs.Int("cache", 64, "result cache entries (negative disables)")
		maxInflight = fs.Int("max-inflight", 8, "max concurrent align requests before shedding 429s")
		defTimeout  = fs.Duration("default-timeout", 30*time.Second, "deadline for requests without timeout_ms")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on per-request deadlines")
		drain       = fs.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
		pprof       = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
	)
	fs.Parse(args)

	srv := newServer(serverConfig{
		Workers:        *workers,
		Parallelism:    *parallel,
		CacheEntries:   *cacheSize,
		MaxInflight:    *maxInflight,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Pprof:          *pprof,
		LogWriter:      os.Stderr,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One structured line echoing the effective configuration, so every
	// deploy is auditable from its logs alone — no guessing which flags
	// a running instance was started with.
	srv.logger.LogAttrs(ctx, slog.LevelInfo, "starting",
		slog.String("addr", *addr),
		slog.Int("workers", srv.eng.Stats().Workers),
		slog.Int("parallelism", *parallel),
		slog.Int("cache_entries", *cacheSize),
		slog.Int("max_inflight", srv.cfg.MaxInflight),
		slog.Duration("default_timeout", srv.cfg.DefaultTimeout),
		slog.Duration("max_timeout", srv.cfg.MaxTimeout),
		slog.Duration("drain", *drain),
		slog.Bool("pprof", *pprof),
	)

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness before closing anything: load balancers stop
	// routing to this instance while its in-flight requests complete.
	srv.startDrain()
	srv.logger.LogAttrs(context.Background(), slog.LevelInfo, "drain",
		slog.Duration("grace", *drain))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.logger.LogAttrs(context.Background(), slog.LevelInfo, "stopped",
		slog.Int64("requests", srv.statsSnapshot().Server.Requests))
	return nil
}
