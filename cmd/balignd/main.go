// Command balignd serves the branch-alignment engine over HTTP.
//
//	balignd -addr :8347
//	curl -s localhost:8347/v1/align -d '{"bench":"compress","bound":true}'
//
// Endpoints:
//
//	POST /v1/align    align a program (inline Mini-C source or a bundled
//	                  benchmark, optional recorded profile) and return
//	                  per-function layouts with tour/bound statistics
//	GET  /v1/healthz  liveness probe
//	GET  /v1/stats    server and engine counters
//
// Every request is budgeted: its deadline (timeout_ms, clamped by
// -max-timeout) truncates in-flight solves at their next kick boundary
// and returns the best layout found so far, flagged "truncated" —
// never an error, never an invalid layout. Excess concurrent requests
// beyond -max-inflight are shed with 429. SIGTERM/SIGINT drain the
// server gracefully: in-flight requests finish, new ones are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "balignd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("balignd", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "localhost:8347", "listen address")
		workers     = fs.Int("workers", 0, "max concurrent per-function solves (0 = GOMAXPROCS)")
		parallel    = fs.Int("parallel", 0, "default per-run solver parallelism for requests without one (-1 = all CPUs); results are bit-identical at every setting")
		cacheSize   = fs.Int("cache", 64, "result cache entries (negative disables)")
		maxInflight = fs.Int("max-inflight", 8, "max concurrent align requests before shedding 429s")
		defTimeout  = fs.Duration("default-timeout", 30*time.Second, "deadline for requests without timeout_ms")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "upper clamp on per-request deadlines")
		drain       = fs.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	)
	fs.Parse(args)

	srv := newServer(serverConfig{
		Workers:        *workers,
		Parallelism:    *parallel,
		CacheEntries:   *cacheSize,
		MaxInflight:    *maxInflight,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("balignd listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("balignd draining (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("balignd stopped")
	return nil
}
