package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"branchalign/internal/testutil"
)

func testData(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(1000)
	}
	return out
}

func postAlign(t *testing.T, ts *httptest.Server, req alignRequest) (*alignResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out alignResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func sourceRequest(seed int64) alignRequest {
	return alignRequest{
		Source: testutil.BranchySource,
		Data:   testData(400, 7),
		Seed:   seed,
	}
}

func TestAlignEndpoint(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	req := sourceRequest(1)
	req.Bound = true
	req.HKIterations = 300
	res, code := postAlign(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Truncated {
		t.Fatal("unbudgeted request truncated")
	}
	if res.Penalty <= 0 || res.OriginalPenalty < res.Penalty {
		t.Fatalf("penalties look wrong: aligned=%d original=%d", res.Penalty, res.OriginalPenalty)
	}
	if res.Bound <= 0 || res.Bound > res.Penalty {
		t.Fatalf("bound %d outside (0, %d]", res.Bound, res.Penalty)
	}
	if len(res.Funcs) == 0 {
		t.Fatal("no per-function stats")
	}
	for _, f := range res.Funcs {
		if f.Cities > 1 && len(f.Order) != f.Cities {
			t.Fatalf("func %s: order %v does not cover %d blocks", f.Name, f.Order, f.Cities)
		}
	}

	// Identical request: served from cache, same answer.
	again, _ := postAlign(t, ts, req)
	if !again.CacheHit {
		t.Fatal("identical request missed the cache")
	}
	if again.Penalty != res.Penalty {
		t.Fatalf("cached penalty %d != original %d", again.Penalty, res.Penalty)
	}
}

func TestAlignBenchRequest(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()
	res, code := postAlign(t, ts, alignRequest{Bench: "compress"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Penalty <= 0 || res.Penalty > res.OriginalPenalty {
		t.Fatalf("penalties look wrong: %+v", res)
	}
}

func TestAlignTraceEvents(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()
	req := sourceRequest(2)
	req.Trace = true
	res, code := postAlign(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(res.TraceEvents) == 0 {
		t.Fatal("trace:true returned no events")
	}
	found := false
	for _, e := range res.TraceEvents {
		if e.Type == "span" && e.Name == "align.func" {
			found = true
		}
	}
	if !found {
		t.Fatal("trace has no align.func span")
	}
}

func TestAlignRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()
	for name, req := range map[string]alignRequest{
		"empty":       {},
		"unknown":     {Bench: "no-such-benchmark"},
		"both":        {Bench: "compress", Source: "int main() { return 0; }"},
		"bad model":   {Bench: "compress", Model: "pentium-pro"},
		"parse error": {Source: "int main( {"},
	} {
		if _, code := postAlign(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/align", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestAlignDeadlineTruncates(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()
	// compress's profiling run alone takes well over 1ms and is not
	// cancellable, so the solver always starts with the deadline already
	// spent — deterministic truncation (its main function is above the
	// exact-DP threshold, so the budgeted local-search path runs).
	req := alignRequest{Bench: "compress", TimeoutMS: 1}
	res, code := postAlign(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("deadline hit should still answer 200, got %d", code)
	}
	if !res.Truncated {
		t.Fatal("1ms deadline did not truncate")
	}
	if res.Penalty <= 0 {
		t.Fatalf("truncated result has no valid penalty: %+v", res)
	}
}

func TestAlignShedsAtCapacity(t *testing.T) {
	s := newServer(serverConfig{MaxInflight: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Fill the only slot directly: deterministic, no timing games.
	s.inflight <- struct{}{}
	_, code := postAlign(t, ts, sourceRequest(4))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	<-s.inflight

	// Health and stats must not be subject to shedding.
	for _, path := range []string{"/v1/healthz", "/v1/stats"} {
		s.inflight <- struct{}{}
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		<-s.inflight
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d while at capacity", path, resp.StatusCode)
		}
	}
}

// TestAlignConcurrentMixedDeadlines is the server's race-detector
// workout: 32 concurrent requests with wildly different deadlines and
// seeds while a prober hammers /v1/healthz throughout.
func TestAlignConcurrentMixedDeadlines(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{MaxInflight: 32}))
	defer ts.Close()

	stop := make(chan struct{})
	var probes sync.WaitGroup
	probes.Add(1)
	go func() {
		defer probes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("healthz %d under load", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	timeouts := []int64{1, 5, 50, 0} // ms; 0 = server default (no truncation expected)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := sourceRequest(int64(i % 5))
			req.TimeoutMS = timeouts[i%len(timeouts)]
			req.Bound = i%4 == 0
			req.HKIterations = 100
			res, code := postAlign(t, ts, req)
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			if res.Penalty <= 0 {
				t.Errorf("request %d: bad penalty %d", i, res.Penalty)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	probes.Wait()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Server struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"server"`
		Engine struct {
			Requests int64 `json:"requests"`
			InFlight int64 `json:"in_flight"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Requests < 32 {
		t.Fatalf("server saw %d requests, expected >= 32", st.Server.Requests)
	}
	if st.Server.Errors != 0 {
		t.Fatalf("server reported %d errors", st.Server.Errors)
	}
	if st.Engine.InFlight != 0 {
		t.Fatalf("engine still reports %d in-flight after drain", st.Engine.InFlight)
	}
}

// TestAlignParallelismBitIdentical pins the wire contract of the
// "parallelism" field: it changes only wall-clock, so a result solved
// sequentially is a cache hit for a parallel request, with identical
// penalties and layouts.
func TestAlignParallelismBitIdentical(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{Workers: 2}))
	defer ts.Close()

	seq, code := postAlign(t, ts, sourceRequest(5))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	par := sourceRequest(5)
	par.Parallelism = 4
	res, code := postAlign(t, ts, par)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !res.CacheHit {
		t.Fatal("parallel request missed the cache entry solved sequentially")
	}
	if res.Penalty != seq.Penalty || res.OriginalPenalty != seq.OriginalPenalty {
		t.Fatalf("parallelism changed the answer: %d vs %d", res.Penalty, seq.Penalty)
	}
	for i, f := range res.Funcs {
		if fmt.Sprint(f.Order) != fmt.Sprint(seq.Funcs[i].Order) {
			t.Fatalf("func %s: layout differs across parallelism settings", f.Name)
		}
	}
}

// TestStatsReportsPool pins that /v1/stats surfaces the engine pool's
// configured size and in-flight run gauge.
func TestStatsReportsPool(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{Workers: 3}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Engine struct {
			Workers      int    `json:"workers"`
			InFlightRuns *int64 `json:"in_flight_runs"`
		} `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Workers != 3 {
		t.Fatalf("stats report %d workers, want 3", st.Engine.Workers)
	}
	if st.Engine.InFlightRuns == nil || *st.Engine.InFlightRuns != 0 {
		t.Fatalf("idle server should report in_flight_runs 0, got %v", st.Engine.InFlightRuns)
	}
}

// TestRunDrainsOnSIGTERM exercises the real main loop: run() must come
// back nil (clean drain) after the process receives SIGTERM.
func TestRunDrainsOnSIGTERM(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "localhost:0", "-drain", "5s"})
	}()
	// Give the listener a moment to come up, then deliver the signal the
	// way an init system would.
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain within 10s of SIGTERM")
	}
}

func TestMainUsageSmoke(t *testing.T) {
	// A config with every default exercised end to end once.
	cfg := serverConfig{}.withDefaults()
	if cfg.MaxInflight <= 0 || cfg.DefaultTimeout <= 0 || cfg.MaxTimeout <= 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
	_ = fmt.Sprintf("%+v", cfg)
}
