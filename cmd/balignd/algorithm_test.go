package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAlignAlgorithmField: the "algorithm" request field selects the
// aligner and is echoed back resolved — an omitted field reports "tsp",
// an explicit "exttsp" serves an ExtTSP layout from its own cache
// partition.
func TestAlignAlgorithmField(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	req := sourceRequest(3)
	def, code := postAlign(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if def.Algorithm != "tsp" {
		t.Errorf("default algorithm echoed %q, want tsp", def.Algorithm)
	}

	req.Algorithm = "exttsp"
	ext, code := postAlign(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ext.Algorithm != "exttsp" {
		t.Errorf("algorithm echoed %q, want exttsp", ext.Algorithm)
	}
	if ext.CacheHit || ext.Coalesced {
		t.Error("exttsp request shared the tsp entry")
	}
	if ext.Penalty <= 0 {
		t.Errorf("exttsp penalty %d, want positive", ext.Penalty)
	}

	// Same request again: its own cache entry now exists.
	again, _ := postAlign(t, ts, req)
	if !again.CacheHit {
		t.Error("repeated exttsp request missed the cache")
	}
	if again.Penalty != ext.Penalty {
		t.Errorf("cached penalty %d != first %d", again.Penalty, ext.Penalty)
	}
}

// TestAlignUnknownAlgorithm: a bogus algorithm name is a 400 with the
// structured {error, kind} body and its own discriminator.
func TestAlignUnknownAlgorithm(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	req := sourceRequest(4)
	req.Algorithm = "simulated-annealing"
	body, code := postAlignError(t, ts, req)
	if code != http.StatusBadRequest {
		t.Errorf("status %d, want 400", code)
	}
	if body.Kind != "unknown_algorithm" {
		t.Errorf("kind %q, want unknown_algorithm", body.Kind)
	}
	if !strings.Contains(body.Error, "simulated-annealing") {
		t.Errorf("error %q should name the offending algorithm", body.Error)
	}
}
