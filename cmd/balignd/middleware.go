package main

// middleware.go is balignd's request-scoped observability plane: one
// wrapper around the whole mux that assigns every request an ID,
// measures it into the metrics registry, and emits one structured JSON
// access-log line when it completes. The three signals share the
// request ID, so an operator can pivot from a log line to the metrics
// window to the solver trace (`balign report -in`) that produced it.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"branchalign/internal/obs"
)

// requestIDKey carries the assigned request ID through the context.
type requestIDKey struct{}

// requestID returns the ID the middleware assigned to this request (""
// outside an instrumented request).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// middleware instruments an inner handler. One instance serves the
// whole server; all state is concurrency-safe.
type middleware struct {
	next http.Handler
	log  *slog.Logger

	// requests/duration/inflight are the HTTP metric families. The
	// endpoint label is the route pattern, never the raw path — see
	// endpointLabel — so cardinality stays bounded by the route table.
	requests *obs.CounterVec   // endpoint, method, code
	duration *obs.HistogramVec // endpoint
	inflight *obs.Gauge

	// Request IDs are <process-prefix>-<sequence>: unique within a
	// process, sortable within it, and collision-resistant across
	// restarts via the random prefix.
	prefix string
	seq    atomic.Uint64
}

// http-duration buckets: 2^-14 s (~61µs, a health probe) to 2^7 s
// (128s, a maximally budgeted align).
const (
	httpDurMinExp = -14
	httpDurMaxExp = 7
)

func newMiddleware(next http.Handler, reg *obs.Registry, log *slog.Logger) *middleware {
	var p [6]byte
	if _, err := rand.Read(p[:]); err != nil {
		// No entropy is survivable: IDs stay unique in-process via the
		// sequence; only cross-restart uniqueness degrades.
		copy(p[:], "noent")
	}
	return &middleware{
		next: next,
		log:  log,
		requests: reg.CounterVec("balignd_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"endpoint", "method", "code"),
		duration: reg.HistogramVec("balignd_http_request_duration_seconds",
			"HTTP request latency by route pattern.",
			httpDurMinExp, httpDurMaxExp, "endpoint"),
		inflight: reg.Gauge("balignd_http_inflight_requests",
			"HTTP requests being served right now."),
		prefix: hex.EncodeToString(p[:]),
	}
}

// endpointLabel maps a request to its route pattern. Unknown paths
// collapse into "other" so a URL scanner cannot inflate the metric
// cardinality.
func endpointLabel(r *http.Request) string {
	switch p := r.URL.Path; {
	case p == "/v1/align", p == "/v1/healthz", p == "/v1/readyz", p == "/v1/stats", p == "/metrics":
		return p
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the status code and body size the inner
// handler produced.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// newID assigns the next request ID, honoring a sane inbound
// X-Request-Id so IDs propagate through proxies and retries.
func (m *middleware) newID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 64 && cleanID(id) {
		return id
	}
	return m.prefix + "-" + strconv.FormatUint(m.seq.Add(1), 10)
}

// cleanID accepts the charset that is safe to echo into headers, logs
// and trace attributes unescaped.
func cleanID(s string) bool {
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

func (m *middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := m.newID(r)
	w.Header().Set("X-Request-Id", id)
	ctx := context.WithValue(r.Context(), requestIDKey{}, id)

	m.inflight.Add(1)
	rec := &statusRecorder{ResponseWriter: w}
	m.next.ServeHTTP(rec, r.WithContext(ctx))
	m.inflight.Add(-1)

	code := rec.status
	if code == 0 {
		code = http.StatusOK // handler wrote nothing: net/http sends 200
	}
	elapsed := time.Since(start)
	ep := endpointLabel(r)
	m.requests.With(ep, r.Method, strconv.Itoa(code)).Inc()
	m.duration.With(ep).Observe(elapsed.Seconds())
	m.log.LogAttrs(ctx, slog.LevelInfo, "access",
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.Int64("bytes", rec.bytes),
		slog.Float64("dur_ms", float64(elapsed.Microseconds())/1000),
		slog.String("remote", r.RemoteAddr),
	)
}
