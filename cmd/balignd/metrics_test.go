package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrapeMetrics fetches /metrics and parses it into sample name ->
// value, keyed by the full series line prefix (name plus label set).
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumSamples adds every sample whose series matches name plus all the
// given label fragments (e.g. `endpoint="/v1/align"`).
func sumSamples(samples map[string]float64, name string, frags ...string) float64 {
	var sum float64
	for series, v := range samples {
		if series != name && !strings.HasPrefix(series, name+"{") {
			continue
		}
		ok := true
		for _, f := range frags {
			if !strings.Contains(series, f) {
				ok = false
				break
			}
		}
		if ok {
			sum += v
		}
	}
	return sum
}

// TestMetricsFamilies pins the exposition's breadth: after one align
// request the scrape must carry the HTTP, engine-cache, work-pool and
// solve-latency families with live values.
func TestMetricsFamilies(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	if _, code := postAlign(t, ts, sourceRequest(11)); code != http.StatusOK {
		t.Fatalf("align status %d", code)
	}
	samples := scrapeMetrics(t, ts)

	families := []string{
		"balignd_http_requests_total",
		"balignd_http_request_duration_seconds",
		"balignd_http_inflight_requests",
		"balignd_sheds_total",
		"balignd_align_errors_total",
		"balignd_align_truncated_total",
		"engine_requests_total",
		"engine_cache_hits_total",
		"engine_cache_misses_total",
		"engine_cache_evictions_total",
		"engine_cache_entries",
		"engine_coalesced_total",
		"engine_solves_total",
		"engine_truncated_total",
		"engine_errors_total",
		"engine_in_flight",
		"engine_solve_duration_seconds",
		"work_pool_capacity",
		"work_pool_active_tasks",
		"work_pool_queue_depth",
		"work_pool_queue_wait_seconds",
	}
	for _, fam := range families {
		found := false
		for series := range samples {
			if series == fam || strings.HasPrefix(series, fam+"{") || strings.HasPrefix(series, fam+"_") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if n := sumSamples(samples, "balignd_http_requests_total", `endpoint="/v1/align"`, `code="200"`); n != 1 {
		t.Errorf("align 200 counter = %v, want 1", n)
	}
	if n := sumSamples(samples, "engine_solves_total"); n != 1 {
		t.Errorf("engine_solves_total = %v, want 1", n)
	}
	if n := sumSamples(samples, "engine_solve_duration_seconds_count", `cache="miss"`); n != 1 {
		t.Errorf("solve duration miss count = %v, want 1", n)
	}
	if n := sumSamples(samples, "work_pool_capacity"); n <= 0 {
		t.Errorf("work_pool_capacity = %v, want > 0", n)
	}
}

// TestStatsMatchesMetrics is the drift pin for the two read surfaces:
// after mixed traffic (success, cache hit, bad request, shed), every
// number /v1/stats reports must equal what /metrics exposes, because
// both read the same registry cells.
func TestStatsMatchesMetrics(t *testing.T) {
	s := newServer(serverConfig{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, code := postAlign(t, ts, sourceRequest(21)); code != http.StatusOK {
		t.Fatalf("align status %d", code)
	}
	if _, code := postAlign(t, ts, sourceRequest(21)); code != http.StatusOK { // cache hit
		t.Fatalf("align status %d", code)
	}
	if _, code := postAlign(t, ts, alignRequest{Bench: "no-such"}); code != http.StatusBadRequest {
		t.Fatalf("bad request status %d", code)
	}
	// Deterministic shed: fill the in-flight slots directly.
	for i := 0; i < s.cfg.MaxInflight; i++ {
		s.inflight <- struct{}{}
	}
	if _, code := postAlign(t, ts, sourceRequest(22)); code != http.StatusTooManyRequests {
		t.Fatalf("expected shed, got %d", code)
	}
	for i := 0; i < s.cfg.MaxInflight; i++ {
		<-s.inflight
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples := scrapeMetrics(t, ts)

	// Server block vs HTTP families. The /v1/stats and /metrics calls
	// themselves are not align traffic, so the align counters are at
	// rest by the time of the scrape.
	checks := []struct {
		name string
		got  int64
		want float64
	}{
		{"server.requests", st.Server.Requests, sumSamples(samples, "balignd_http_requests_total", `endpoint="/v1/align"`)},
		{"server.shed", st.Server.Shed, sumSamples(samples, "balignd_sheds_total")},
		{"server.errors", st.Server.Errors, sumSamples(samples, "balignd_align_errors_total")},
		{"server.truncated", st.Server.Truncated, sumSamples(samples, "balignd_align_truncated_total")},
		{"engine.requests", st.Engine.Requests, sumSamples(samples, "engine_requests_total")},
		{"engine.cache_hits", st.Engine.CacheHits, sumSamples(samples, "engine_cache_hits_total")},
		{"engine.coalesced", st.Engine.Coalesced, sumSamples(samples, "engine_coalesced_total")},
		{"engine.solved", st.Engine.Solved, sumSamples(samples, "engine_solves_total")},
		{"engine.truncated", st.Engine.Truncated, sumSamples(samples, "engine_truncated_total")},
		{"engine.errors", st.Engine.Errors, sumSamples(samples, "engine_errors_total")},
		{"engine.in_flight", st.Engine.InFlight, sumSamples(samples, "engine_in_flight")},
	}
	for _, c := range checks {
		if float64(c.got) != c.want {
			t.Errorf("%s: stats=%d metrics=%v", c.name, c.got, c.want)
		}
	}
	if st.Server.Requests != 4 || st.Server.Shed != 1 || st.Server.Errors != 1 {
		t.Errorf("unexpected traffic tallies: %+v", st.Server)
	}
	if st.Engine.CacheHits != 1 {
		t.Errorf("engine cache hits %d, want 1", st.Engine.CacheHits)
	}
}

// TestReadyzSplitsFromHealthz pins probe correctness under drain: the
// moment drain begins /v1/readyz turns 503 while an align request
// already in flight completes normally and /v1/healthz stays 200.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	s := newServer(serverConfig{})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookAligning = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz %d before drain, want 200", code)
	}

	type result struct {
		res  *alignResponse
		code int
	}
	done := make(chan result, 1)
	go func() {
		res, code := postAlign(t, ts, sourceRequest(31))
		done <- result{res, code}
	}()
	<-entered // the align request is now in flight

	s.startDrain()
	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d during drain, want 503", code)
	}
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d during drain, want 200", code)
	}

	close(release)
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight align finished %d during drain, want 200", r.code)
	}
	if r.res == nil || r.res.Penalty <= 0 {
		t.Fatalf("in-flight align returned bad result during drain: %+v", r.res)
	}
	// Drain is sticky.
	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after drain began, want 503", code)
	}
}

// TestRequestIDs pins the ID plumbing: every response carries
// X-Request-Id, distinct requests get distinct IDs, a sane inbound ID
// is honored, and with trace:true the same ID appears as the root
// span's request_id attribute.
func TestRequestIDs(t *testing.T) {
	ts := httptest.NewServer(newServer(serverConfig{}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get("X-Request-Id")
	if id1 == "" {
		t.Fatal("no X-Request-Id assigned")
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id2 := resp.Header.Get("X-Request-Id"); id2 == "" || id2 == id1 {
		t.Fatalf("second request id %q not distinct from %q", id2, id1)
	}

	// Inbound ID round-trips.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "upstream-7")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "upstream-7" {
		t.Fatalf("inbound id not honored: %q", got)
	}

	// A hostile inbound ID (header injection fodder) is replaced.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", `evil"id`)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == `evil"id` || got == "" {
		t.Fatalf("hostile id echoed back: %q", got)
	}

	// The ID lands in the solver trace.
	body, _ := json.Marshal(func() alignRequest {
		r := sourceRequest(41)
		r.Trace = true
		return r
	}())
	areq, _ := http.NewRequest("POST", ts.URL+"/v1/align", bytes.NewReader(body))
	areq.Header.Set("X-Request-Id", "op-trace-1")
	aresp, err := ts.Client().Do(areq)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var out alignResponse
	if err := json.NewDecoder(aresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range out.TraceEvents {
		if e.Type == "span" && e.Name == "balignd.align" && e.Str("request_id") == "op-trace-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("request_id attr missing from balignd.align root span")
	}
}

// TestAccessLog pins the structured access line: one JSON object per
// request with the fields an operator joins on.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	ts := httptest.NewServer(newServer(serverConfig{LogWriter: &buf}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")

	var line struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Bytes     int64   `json:"bytes"`
		DurMS     float64 `json:"dur_ms"`
		Remote    string  `json:"remote"`
	}
	found := false
	for _, raw := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(raw) == 0 {
			continue
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("access log line is not JSON: %s (%v)", raw, err)
		}
		if line.Msg == "access" && line.Path == "/v1/healthz" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no access line for /v1/healthz in log:\n%s", buf.Bytes())
	}
	if line.RequestID != id {
		t.Errorf("log request_id %q != header %q", line.RequestID, id)
	}
	if line.Method != "GET" || line.Status != http.StatusOK || line.Bytes <= 0 || line.DurMS < 0 || line.Remote == "" {
		t.Errorf("access line incomplete: %+v", line)
	}
}

// TestPprofGate pins that the profiling endpoints exist only behind
// -pprof.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(newServer(serverConfig{}))
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newServer(serverConfig{Pprof: true}))
	defer on.Close()
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: status %d, want 200", resp.StatusCode)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// BenchmarkMiddleware measures the per-request cost of the full
// observability wrapper (ID assignment, metrics, access log to a
// discarded writer) on the cheapest endpoint, so the overhead is the
// measurement rather than the solve.
func BenchmarkMiddleware(b *testing.B) {
	s := newServer(serverConfig{})
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
	}
}
