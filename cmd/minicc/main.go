// Command minicc is the standalone Mini-C compiler driver: it parses,
// checks, lowers and optionally optimizes and executes a Mini-C program.
//
//	minicc prog.mc                         # compile + verify (reports stats)
//	minicc -run -data "1,2,3" prog.mc      # execute; prints out() stream + return
//	minicc -emit-ir prog.mc                # dump the lowered IR
//	minicc -opt -emit-ir prog.mc           # dump optimized IR
//	minicc -dot main prog.mc               # CFG of a function in Graphviz dot
//
// The entry function must be main with signature (), (n) or (input[], n)
// when -run is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
	"branchalign/internal/opt"
)

func main() {
	var (
		run      = flag.Bool("run", false, "execute the program after compiling")
		emitIR   = flag.Bool("emit-ir", false, "print the lowered IR")
		dotFunc  = flag.String("dot", "", "print the named function's CFG as Graphviz dot")
		optimize = flag.Bool("opt", false, "run CFG cleanup passes")
		data     = flag.String("data", "", "comma-separated ints for the entry array input (with -run)")
		scalarN  = flag.Int64("n", -1, "entry scalar argument (default: array length)")
		maxSteps = flag.Int64("max-steps", 1<<31, "interpreter instruction budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.mc")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := compileSource(string(src), *optimize)
	if err != nil {
		fatal(err)
	}
	nBlocks, nInstrs := moduleStats(mod)
	fmt.Printf("compiled %s: %d functions, %d blocks, %d instructions\n",
		flag.Arg(0), len(mod.Funcs), nBlocks, nInstrs)

	if *emitIR {
		fmt.Print(mod.String())
	}
	if *dotFunc != "" {
		fi := mod.FuncIndex(*dotFunc)
		if fi < 0 {
			fatal(fmt.Errorf("no function %q", *dotFunc))
		}
		fmt.Print(mod.Funcs[fi].Dot(nil))
	}
	if !*run {
		return
	}
	inputs, err := bindInputs(mod, *data, *scalarN)
	if err != nil {
		fatal(err)
	}
	res, err := interp.Run(mod, inputs, interp.Options{MaxSteps: *maxSteps})
	if err != nil {
		fatal(err)
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	fmt.Printf("return %d (%d instructions, %d branches)\n", res.Ret, res.Steps, res.DynBranches())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}

// compileSource runs the full front end on source text.
func compileSource(src string, optimize bool) (*ir.Module, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := minic.Check(prog)
	if err != nil {
		return nil, err
	}
	mod, err := lower.Program(info)
	if err != nil {
		return nil, err
	}
	if optimize {
		opt.Module(mod)
	}
	return mod, nil
}

// moduleStats counts blocks and instructions (terminators included).
func moduleStats(mod *ir.Module) (blocks, instrs int) {
	for _, f := range mod.Funcs {
		blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			instrs += len(b.Instrs) + 1
		}
	}
	return blocks, instrs
}

// bindInputs adapts -data/-n to the entry function's signature.
func bindInputs(mod *ir.Module, data string, scalarN int64) ([]interp.Input, error) {
	entry := mod.Funcs[mod.EntryFunc]
	var arr []int64
	if data != "" {
		for _, part := range strings.Split(data, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -data element %q: %w", part, err)
			}
			arr = append(arr, v)
		}
	}
	n := scalarN
	if n < 0 {
		n = int64(len(arr))
	}
	switch {
	case len(entry.Params) == 0:
		return nil, nil
	case len(entry.Params) == 1 && entry.Params[0] == ir.ParamScalar:
		return []interp.Input{interp.ScalarInput(n)}, nil
	case len(entry.Params) == 2 && entry.Params[0] == ir.ParamArray && entry.Params[1] == ir.ParamScalar:
		return []interp.Input{interp.ArrayInput(arr), interp.ScalarInput(n)}, nil
	}
	return nil, fmt.Errorf("entry %s must have signature (), (n) or (input[], n)", entry.Name)
}
