package main

import (
	"strings"
	"testing"

	"branchalign/internal/interp"
)

const testSrc = `
func sum(a[], n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
	return s;
}
func main(input[], n) {
	out(sum(input, n));
	return 0;
}
`

func TestCompileSource(t *testing.T) {
	mod, err := compileSource(testSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	blocks, instrs := moduleStats(mod)
	if blocks == 0 || instrs == 0 {
		t.Fatal("empty stats")
	}
	optMod, err := compileSource(testSrc, true)
	if err != nil {
		t.Fatal(err)
	}
	optBlocks, _ := moduleStats(optMod)
	if optBlocks > blocks {
		t.Errorf("optimization grew block count %d -> %d", blocks, optBlocks)
	}
	if _, err := compileSource("func broken(", false); err == nil {
		t.Error("expected parse error")
	}
	if _, err := compileSource("func f() { return q; }", false); err == nil {
		t.Error("expected check error")
	}
}

func TestBindInputs(t *testing.T) {
	mod, err := compileSource(testSrc, false)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := bindInputs(mod, "5, 6, 7", -1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 18 {
		t.Errorf("output = %v, want [18]", res.Output)
	}
	if _, err := bindInputs(mod, "1,x", -1); err == nil {
		t.Error("expected error for bad data")
	}
	modBad, err := compileSource("func main(a, b, c) { return 0; }", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bindInputs(modBad, "", -1); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Errorf("expected signature error, got %v", err)
	}
}
