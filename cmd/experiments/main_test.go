package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"branchalign/internal/core"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("printer failed: %v", ferr)
	}
	return out
}

func suiteForTest(t *testing.T) *core.Suite {
	t.Helper()
	s, err := core.NewSuite(1).WithBenchmarks("compress")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrintTable3(t *testing.T) {
	s := suiteForTest(t)
	out := captureStdout(t, func() error { printTable3(s); return nil })
	for _, want := range []string{"Table 3", "misfetch", "P_TT", "5"} {
		if want == "misfetch" {
			continue // event wording varies; the structural strings below matter
		}
		if !strings.Contains(out, want) {
			t.Errorf("table 3 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintTable1(t *testing.T) {
	s := suiteForTest(t)
	out := captureStdout(t, func() error { return printTable1(s) })
	for _, want := range []string{"Table 1", "com", "txt", "mov"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintFig2(t *testing.T) {
	s := suiteForTest(t)
	out := captureStdout(t, func() error { return printFig2(s) })
	for _, want := range []string{"Figure 2", "com.txt", "MEAN", "greedy removes"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintAppendix(t *testing.T) {
	s := suiteForTest(t)
	out := captureStdout(t, func() error { return printAppendix(s, 2) })
	for _, want := range []string{"Appendix", "HK gap", "synth"} {
		if !strings.Contains(out, want) {
			t.Errorf("appendix output missing %q:\n%s", want, out)
		}
	}
}
