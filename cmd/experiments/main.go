// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	experiments -table1     benchmark inventory (Table 1)
//	experiments -table2     compile/align phase times (Table 2)
//	experiments -table3     machine penalty model (Table 3)
//	experiments -table4     original penalties, HK bounds, cycles (Table 4)
//	experiments -fig2       same-input training/testing (Figure 2)
//	experiments -fig3       cross-validation (Figure 3)
//	experiments -appendix   per-procedure solver/bound statistics
//	experiments -exttsp     aligner family judged by the I-cache simulator
//	experiments -all        everything above
//
// Use -benchmarks com,xli,... to restrict the suite and -seed to change
// the deterministic random stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"branchalign/internal/core"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/pipe"
	"branchalign/internal/stats"
)

// runOpts carries the parsed command line into run, which owns all
// resources (profiles, telemetry files) so that every exit path flushes
// them — os.Exit in main would skip deferred cleanup.
type runOpts struct {
	table1, table2, table3, table4 bool
	fig2, fig3, appendix, ext, all bool
	static, exttsp                 bool
	seed                           int64
	benchSel, modelSel             string
	synth                          int
	cpuProf, memProf, events       string
}

func main() {
	var o runOpts
	flag.BoolVar(&o.table1, "table1", false, "benchmark inventory (Table 1)")
	flag.BoolVar(&o.table2, "table2", false, "phase times (Table 2)")
	flag.BoolVar(&o.table3, "table3", false, "penalty model (Table 3)")
	flag.BoolVar(&o.table4, "table4", false, "original penalties and bounds (Table 4)")
	flag.BoolVar(&o.fig2, "fig2", false, "same-input experiment (Figure 2)")
	flag.BoolVar(&o.fig3, "fig3", false, "cross-validation (Figure 3)")
	flag.BoolVar(&o.appendix, "appendix", false, "per-procedure DTSP statistics (Appendix)")
	flag.BoolVar(&o.ext, "ext", false, "extensions: cache-aware weights, procedure ordering, dynamic prediction")
	flag.BoolVar(&o.static, "static", false, "static profile estimation: estimated vs measured vs compiler order")
	flag.BoolVar(&o.exttsp, "exttsp", false, "aligner family judged by the I-cache simulator: control penalty vs ExtTSP score vs simulated cycles")
	flag.BoolVar(&o.all, "all", false, "run everything")
	flag.Int64Var(&o.seed, "seed", 1, "deterministic seed")
	flag.StringVar(&o.benchSel, "benchmarks", "", "comma-separated benchmark names/abbrs (default: all)")
	flag.StringVar(&o.modelSel, "model", "alpha21164", "machine model: alpha21164, shallow, deep")
	flag.IntVar(&o.synth, "synth", 0, "add N synthetic instances to -appendix")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.StringVar(&o.events, "events", "", "export suite telemetry (stage spans, solver convergence) as NDJSON")
	flag.Parse()
	if !(o.table1 || o.table2 || o.table3 || o.table4 || o.fig2 || o.fig3 || o.appendix || o.ext || o.static || o.exttsp || o.all) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments. Profile and telemetry teardown
// happens in defers so that error returns still produce valid files
// (the old structure lost both profiles whenever an experiment failed,
// because fatal's os.Exit skipped the deferred writers).
func run(o runOpts) (err error) {
	if o.cpuProf != "" {
		f, ferr := os.Create(o.cpuProf)
		if ferr != nil {
			return ferr
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if o.memProf != "" {
		defer func() {
			f, ferr := os.Create(o.memProf)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	s := core.NewSuite(o.seed)
	if o.events != "" {
		f, ferr := os.Create(o.events)
		if ferr != nil {
			return ferr
		}
		sink := obs.NewNDJSONSink(f)
		tr := obs.New(sink)
		root := tr.Start("experiments", obs.Int("seed", o.seed), obs.String("model", o.modelSel))
		s.Obs = root
		defer func() {
			root.End()
			if cerr := tr.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %d telemetry events to %s\n", sink.Count(), o.events)
		}()
	}
	if o.benchSel != "" {
		if _, werr := s.WithBenchmarks(strings.Split(o.benchSel, ",")...); werr != nil {
			return werr
		}
	}
	found := false
	for _, m := range machine.Models() {
		if m.Name == o.modelSel {
			s.Model = m
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown model %q", o.modelSel)
	}

	if o.all || o.table3 {
		printTable3(s)
	}
	if o.all || o.table1 {
		if err := printTable1(s); err != nil {
			return err
		}
	}
	if o.all || o.table2 {
		if err := printTable2(s); err != nil {
			return err
		}
	}
	if o.all || o.table4 {
		if err := printTable4(s); err != nil {
			return err
		}
	}
	if o.all || o.fig2 {
		if err := printFig2(s); err != nil {
			return err
		}
	}
	if o.all || o.fig3 {
		if err := printFig3(s); err != nil {
			return err
		}
	}
	if o.all || o.appendix {
		if err := printAppendix(s, o.synth); err != nil {
			return err
		}
	}
	if o.all || o.ext {
		if err := printExtensions(s); err != nil {
			return err
		}
	}
	if o.all || o.static {
		if err := printStatic(s); err != nil {
			return err
		}
	}
	if o.all || o.exttsp {
		if err := printExtTSP(s); err != nil {
			return err
		}
	}
	return nil
}

// printExtTSP reports the aligner-family judgment: every registered
// aligner scored on the objective it optimizes (control penalty for the
// DTSP line, ExtTSP locality score for the chain merger) and arbitrated
// by the pipeline + I-cache simulator's execution time.
func printExtTSP(s *core.Suite) error {
	rows, err := s.ExtTSPMatrix()
	if err != nil {
		return err
	}
	fmt.Println("## ExtTSP: aligner family under the I-cache simulator")
	fmt.Println("   (CP = control penalty, lower is better; score = ExtTSP objective,")
	fmt.Println("    higher is better; cycles = simulated execution; norm = vs original)")
	fmt.Println()
	t := stats.NewTable("bench.data", "aligner", "CP", "CP norm", "score", "cycles", "cycles norm", "misses")
	for _, r := range rows {
		t.Rowf("%s.%s|%s|%s|%.3f|%.1f|%s|%.3f|%d", r.Bench, r.DataSet, r.Aligner,
			stats.FormatCount(int64(r.CP)), r.CPNorm, r.Score,
			stats.FormatCount(int64(r.Cycles)), r.CyclesNorm, r.Misses)
	}
	fmt.Println(t)

	sums := core.SummarizeExtTSP(rows)
	t = stats.NewTable("aligner", "mean CP norm", "mean cycles norm", "cells faster than tsp")
	for _, sum := range sums {
		t.Rowf("%s|%.3f|%.3f|%d/%d", sum.Aligner, sum.MeanCPNorm, sum.MeanCyclesNorm,
			sum.CyclesWins, sum.Cells)
	}
	fmt.Println(t)
	var tspSum, extSum core.ExtTSPSummary
	for _, sum := range sums {
		switch sum.Aligner {
		case "tsp":
			tspSum = sum
		case "exttsp":
			extSum = sum
		}
	}
	verdict := "does NOT beat"
	if extSum.MeanCyclesNorm < tspSum.MeanCyclesNorm {
		verdict = "beats"
	}
	fmt.Printf("verdict: exttsp %s tsp on simulated cycles (%.3f vs %.3f normalized); control penalty %.3f vs %.3f\n\n",
		verdict, extSum.MeanCyclesNorm, tspSum.MeanCyclesNorm, extSum.MeanCPNorm, tspSum.MeanCPNorm)
	return nil
}

// printStatic reports the profile-free alignment experiment: TSP on the
// statically estimated profile vs TSP on the measured profile vs the
// compiler order, all charged under the measured profile, plus
// simulated execution times.
func printStatic(s *core.Suite) error {
	rows, err := s.ExtStaticProfile()
	if err != nil {
		return err
	}
	fmt.Println("## Static profile estimation: profile-free branch alignment")
	fmt.Println("   (control penalties charged under the MEASURED profile; recovered =")
	fmt.Println("    share of the measured-profile TSP improvement the estimate retains)")
	fmt.Println()
	t := stats.NewTable("bench.data", "orig CP", "measured CP", "static CP", "recovered",
		"orig cycles", "measured cycles", "static cycles")
	for _, r := range rows {
		t.Rowf("%s.%s|%s|%s|%s|%.3f|%s|%s|%s", r.Bench, r.DataSet,
			stats.FormatCount(int64(r.OrigCP)), stats.FormatCount(int64(r.MeasuredCP)),
			stats.FormatCount(int64(r.StaticCP)), r.Recovered,
			stats.FormatCount(int64(r.OrigCycles)), stats.FormatCount(int64(r.MeasuredCycles)),
			stats.FormatCount(int64(r.StaticCycles)))
	}
	fmt.Println(t)
	agg := core.StaticRecoveredAggregate(rows)
	fmt.Printf("aggregate: static-profile TSP removes %.1f%% of the control penalty measured-profile TSP removes\n\n", 100*agg)
	return nil
}

func printExtensions(s *core.Suite) error {
	fmt.Println("## Extensions (paper's future-work directions)")
	fmt.Println()

	fmt.Println("### Cache-aware edge weights (+2 cycles per taken transfer)")
	ca, err := s.ExtCacheAware(2)
	if err != nil {
		return err
	}
	t := stats.NewTable("bench.data", "plain CP", "aware CP", "plain cycles", "aware cycles", "plain misses", "aware misses")
	for _, r := range ca {
		t.Rowf("%s.%s|%d|%d|%d|%d|%d|%d", r.Bench, r.DataSet,
			r.PlainCP, r.AwareCP, r.PlainCycles, r.AwareCycles, r.PlainMisses, r.AwareMisses)
	}
	fmt.Println(t)

	fmt.Println("### Interprocedural procedure ordering (Pettis-Hansen, on TSP block layout)")
	po, err := s.ExtProcOrder()
	if err != nil {
		return err
	}
	t = stats.NewTable("bench.data", "module-order cycles", "ordered cycles", "module-order misses", "ordered misses")
	for _, r := range po {
		t.Rowf("%s.%s|%d|%d|%d|%d", r.Bench, r.DataSet,
			r.PlainCycles, r.OrderCycles, r.PlainMisses, r.OrderMisses)
	}
	fmt.Println(t)

	fmt.Println("### CFG cleanup ablation (align raw lowered CFGs vs optimizer-cleaned CFGs)")
	ob, err := s.ExtOptimize()
	if err != nil {
		return err
	}
	t = stats.NewTable("bench.data", "raw blocks", "opt blocks", "raw orig CP", "opt orig CP", "raw tsp CP(norm)", "opt tsp CP(norm)")
	for _, r := range ob {
		t.Rowf("%s.%s|%d|%d|%d|%d|%.3f|%.3f", r.Bench, r.DataSet,
			r.RawBlocks, r.OptBlocks, r.RawOrigCP, r.OptOrigCP, r.RawTSPCP, r.OptTSPCP)
	}
	fmt.Println(t)

	fmt.Println("### Union-profile training (train on both data sets merged)")
	un, err := s.ExtUnionTraining()
	if err != nil {
		return err
	}
	t = stats.NewTable("bench.test", "tsp self", "tsp cross", "tsp union")
	for _, r := range un {
		t.Rowf("%s.%s|%.3f|%.3f|%.3f", r.Bench, r.TestSet, r.SelfCP, r.CrossCP, r.UnionCP)
	}
	fmt.Println(t)

	fmt.Println("### Dynamic (2-bit + BTB) vs static prediction")
	pr, err := s.ExtPredictor(pipe.PredictorConfig{})
	if err != nil {
		return err
	}
	t = stats.NewTable("bench.data", "static orig", "static tsp", "dyn orig", "dyn tsp", "tsp mispred static", "tsp mispred dyn")
	for _, r := range pr {
		t.Rowf("%s.%s|%d|%d|%d|%d|%d|%d", r.Bench, r.DataSet,
			r.StaticOrigCycles, r.StaticTSPCycles, r.DynOrigCycles, r.DynTSPCycles,
			r.StaticTSPMispred, r.DynTSPMispred)
	}
	fmt.Println(t)
	return nil
}

func printTable3(s *core.Suite) {
	fmt.Printf("## Table 3: control penalties (%s model)\n\n", s.Model.Name)
	t := stats.NewTable("block-ending control event", "penalty (cycles)", "formulaic term")
	for _, row := range s.Model.Table() {
		t.Rowf("%s|%d|%s", row.Event, row.Penalty, row.Term)
	}
	fmt.Println(t)
}

func printTable1(s *core.Suite) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	fmt.Println("## Table 1: benchmarks and data sets")
	fmt.Println()
	t := stats.NewTable("bench", "data", "branch sites", "sites touched", "executed branches", "IR instrs")
	for _, r := range rows {
		t.Rowf("%s|%s|%d|%d|%s|%s", r.Bench, r.DataSet, r.SitesStatic, r.SitesTouched,
			stats.FormatCount(r.ExecutedBranch), stats.FormatCount(r.InstructionsRun))
	}
	fmt.Println(t)
	return nil
}

func printTable2(s *core.Suite) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	fmt.Println("## Table 2: compilation and alignment phase times (ms)")
	fmt.Println()
	t := stats.NewTable("bench", "data", "IR gen", "profile run", "greedy", "TSP matrix", "TSP solve", "TSP program")
	for _, r := range rows {
		t.Rowf("%s|%s|%.1f|%.1f|%.1f|%.1f|%.1f|%.1f", r.Bench, r.DataSet,
			r.CompileMS, r.ProfileMS, r.GreedyMS, r.MatrixMS, r.SolveMS, r.FinalizeMS)
	}
	fmt.Println(t)
	return nil
}

func printTable4(s *core.Suite) error {
	rows, err := s.Table4()
	if err != nil {
		return err
	}
	fmt.Println("## Table 4: original control penalties, lower bounds, original cycles")
	fmt.Println()
	t := stats.NewTable("bench", "data", "original CP (cycles)", "HK lower bound", "original run (cycles)")
	for _, r := range rows {
		t.Rowf("%s|%s|%s|%s|%s", r.Bench, r.DataSet,
			stats.FormatCount(r.OriginalCP), stats.FormatCount(r.LowerBoundCP), stats.FormatCount(r.OriginalCycles))
	}
	fmt.Println(t)
	return nil
}

func printFig2(s *core.Suite) error {
	rows, err := s.Fig2()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 2: training and testing on the same data set")
	fmt.Println("   (normalized to the original layout; lower is better)")
	fmt.Println()
	t := stats.NewTable("bench.data", "greedy CP", "tsp CP", "lower bound", "greedy time", "tsp time")
	var gcp, tcp, bcp, gt, tt []float64
	for _, r := range rows {
		t.Rowf("%s.%s|%.3f|%.3f|%.3f|%.4f|%.4f", r.Bench, r.DataSet,
			r.GreedyCP, r.TSPCP, r.BoundCP, r.GreedyTime, r.TSPTime)
		gcp = append(gcp, r.GreedyCP)
		tcp = append(tcp, r.TSPCP)
		bcp = append(bcp, r.BoundCP)
		gt = append(gt, r.GreedyTime)
		tt = append(tt, r.TSPTime)
	}
	t.Rowf("MEAN|%.3f|%.3f|%.3f|%.4f|%.4f",
		stats.Mean(gcp), stats.Mean(tcp), stats.Mean(bcp), stats.Mean(gt), stats.Mean(tt))
	fmt.Println(t)
	fmt.Printf("greedy removes %.1f%% of control penalty; TSP removes %.1f%%; bound allows %.1f%%\n",
		stats.PercentRemoved(stats.Mean(gcp)), stats.PercentRemoved(stats.Mean(tcp)), stats.PercentRemoved(stats.Mean(bcp)))
	fmt.Printf("run-time improvement: greedy %.2f%%, TSP %.2f%%\n\n",
		stats.PercentRemoved(stats.Mean(gt)), stats.PercentRemoved(stats.Mean(tt)))
	return nil
}

func printFig3(s *core.Suite) error {
	rows, err := s.Fig3()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 3: cross-validation (train on the other data set)")
	fmt.Println("   (normalized control penalties and times on the TESTING input)")
	fmt.Println()
	t := stats.NewTable("bench.test(train)", "greedy self", "greedy cross", "tsp self", "tsp cross",
		"g-self time", "g-cross time", "t-self time", "t-cross time")
	var gs, gc, ts, tc, gst, gct, tst, tct []float64
	for _, r := range rows {
		t.Rowf("%s.%s(%s)|%.3f|%.3f|%.3f|%.3f|%.4f|%.4f|%.4f|%.4f",
			r.Bench, r.TestSet, r.TrainSet,
			r.GreedySelfCP, r.GreedyCrossCP, r.TSPSelfCP, r.TSPCrossCP,
			r.GreedySelfTime, r.GreedyCrossTime, r.TSPSelfTime, r.TSPCrossTime)
		gs = append(gs, r.GreedySelfCP)
		gc = append(gc, r.GreedyCrossCP)
		ts = append(ts, r.TSPSelfCP)
		tc = append(tc, r.TSPCrossCP)
		gst = append(gst, r.GreedySelfTime)
		gct = append(gct, r.GreedyCrossTime)
		tst = append(tst, r.TSPSelfTime)
		tct = append(tct, r.TSPCrossTime)
	}
	t.Rowf("MEAN|%.3f|%.3f|%.3f|%.3f|%.4f|%.4f|%.4f|%.4f",
		stats.Mean(gs), stats.Mean(gc), stats.Mean(ts), stats.Mean(tc),
		stats.Mean(gst), stats.Mean(gct), stats.Mean(tst), stats.Mean(tct))
	fmt.Println(t)
	fmt.Printf("cross-validated: greedy removes %.1f%% of CP (self %.1f%%); TSP removes %.1f%% (self %.1f%%)\n\n",
		stats.PercentRemoved(stats.Mean(gc)), stats.PercentRemoved(stats.Mean(gs)),
		stats.PercentRemoved(stats.Mean(tc)), stats.PercentRemoved(stats.Mean(ts)))
	return nil
}

func printAppendix(s *core.Suite, synth int) error {
	st, err := s.Appendix()
	if err != nil {
		return err
	}
	if synth > 0 {
		syn, err := s.AppendixSynthetic(synth, 40)
		if err != nil {
			return err
		}
		st.Instances = append(st.Instances, syn.Instances...)
		// Recompute aggregates over the union.
		merged, err2 := mergeAppendix(st.Instances)
		if err2 != nil {
			return err2
		}
		st = merged
	}
	fmt.Println("## Appendix: per-procedure DTSP instance statistics")
	fmt.Println()
	t := stats.NewTable("bench/func", "cities", "tour", "AP bound", "HK bound", "runs@best", "exact")
	for _, inst := range st.Instances {
		t.Rowf("%s/%s|%d|%d|%d|%d|%d/%d|%v", inst.Bench, inst.Func, inst.Cities,
			inst.TourCost, inst.APBound, inst.HKBound, inst.RunsAtBest, inst.Runs, inst.Exact)
	}
	fmt.Println(t)
	fmt.Printf("instances: %d; AP tight on %d; AP-gap median (loose instances) %.1f%%; tour > 10x AP on %d\n",
		len(st.Instances), st.APTight, st.APGapMedianPct, st.APGapOver10x)
	fmt.Printf("HK gap: mean %.3f%%, worst %.2f%%; all runs tied on %d; solved exactly: %d\n\n",
		st.HKGapMeanPct, st.HKGapWorstPct, st.AllRunsTied, st.SolvedExactly)
	return nil
}

func mergeAppendix(instances []core.InstanceStats) (*core.AppendixStats, error) {
	out := &core.AppendixStats{Instances: instances}
	core.FinalizeAppendix(out)
	return out, nil
}
