// Command balignlint is the repository's determinism linter. The whole
// point of this codebase is that a solve is a pure function of (module,
// profile, machine model, seed) — CHANGES.md pins bit-identical layouts
// across schedules — so the lint hunts the three ways nondeterminism
// usually sneaks into Go code:
//
//   - range over a map inside a solver kernel (internal/tsp,
//     internal/align): map iteration order is deliberately randomized by
//     the runtime, so any result that depends on it differs run to run.
//   - time.Now inside a solver kernel: wall-clock reads make results
//     depend on machine load rather than inputs.
//   - the global math/rand source anywhere in the repository: the
//     top-level rand functions are seeded per-process, so they cannot
//     reproduce; every RNG here must be rand.New(rand.NewSource(seed)).
//
// A finding is suppressed by a //balignlint:ignore comment on the same
// line or the line directly above; the convention is to follow the
// directive with the reason the site is deterministic anyway (e.g. the
// map range feeds a totally ordered sort).
//
// The reporting shape follows go/analysis (file:line:col: check: msg,
// non-zero exit on findings), but the implementation is plain go/parser
// + go/types because the module intentionally has no dependencies.
//
// Usage: balignlint [dir ...] — with no arguments, lints every Go
// package under the module root. Exit status: 0 clean, 1 findings,
// 2 operational failure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// kernelDirs are the module-relative package directories held to the
// stricter solver-kernel rules (map ranges and wall-clock reads, in
// addition to the repo-wide RNG rule).
var kernelDirs = map[string]bool{
	"internal/tsp":   true,
	"internal/align": true,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fl := flag.NewFlagSet("balignlint", flag.ContinueOnError)
	fl.SetOutput(errw)
	fl.Usage = func() {
		fmt.Fprintf(errw, "usage: balignlint [dir ...]\nLints the module for determinism hazards; see package doc.\n")
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}

	root, modPath, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(errw, "balignlint: %v\n", err)
		return 2
	}

	dirs := fl.Args()
	if len(dirs) == 0 {
		if dirs, err = goDirs(root); err != nil {
			fmt.Fprintf(errw, "balignlint: %v\n", err)
			return 2
		}
	} else {
		for i, d := range dirs {
			abs, err := filepath.Abs(d)
			if err != nil {
				fmt.Fprintf(errw, "balignlint: %v\n", err)
				return 2
			}
			dirs[i] = abs
		}
	}

	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(errw, "balignlint: %s is outside module root %s\n", dir, root)
			return 2
		}
		rel = filepath.ToSlash(rel)
		pkg, err := parseDir(fset, dir)
		if err != nil {
			fmt.Fprintf(errw, "balignlint: %v\n", err)
			return 2
		}

		for _, f := range pkg.all() {
			findings = append(findings, checkRandGlobals(fset, f)...)
		}
		if kernelDirs[rel] {
			for _, f := range pkg.files {
				findings = append(findings, checkTimeNow(fset, f)...)
			}
			pkgPath := modPath
			if rel != "." {
				pkgPath = modPath + "/" + rel
			}
			mr, err := checkMapRange(fset, pkg.files, pkgPath)
			if err != nil {
				fmt.Fprintf(errw, "balignlint: type-checking %s: %v\n", pkgPath, err)
				return 2
			}
			findings = append(findings, mr...)
		}

		findings = suppress(fset, pkg.all(), findings)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		pos := f.pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Fprintf(out, "%s: %s: %s\n", pos, f.check, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "balignlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod and returns its directory and module path.
func moduleRoot() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if _, serr := os.Stat(gm); serr == nil {
			f, err := os.Open(gm)
			if err != nil {
				return "", "", err
			}
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: no module line", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// goDirs lists every directory under root that contains Go files,
// skipping hidden and underscore-prefixed directories and testdata.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// pkgFiles holds one directory's parsed Go files, split so the kernel
// checks can exclude tests (deadline tests legitimately read the clock).
type pkgFiles struct {
	files, testFiles []*ast.File
}

func (p *pkgFiles) all() []*ast.File {
	return append(append([]*ast.File(nil), p.files...), p.testFiles...)
}

func parseDir(fset *token.FileSet, dir string) (*pkgFiles, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &pkgFiles{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			pkg.testFiles = append(pkg.testFiles, af)
		} else {
			pkg.files = append(pkg.files, af)
		}
	}
	return pkg, nil
}
