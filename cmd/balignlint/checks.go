package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// finding is one diagnostic: where, which check fired, and why.
type finding struct {
	pos   token.Position
	check string
	msg   string
}

// randGlobalFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global, non-reproducibly seeded
// source. Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8)
// are fine: they are how the repo builds its seeded generators.
var randGlobalFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// checkRandGlobals flags calls through the global math/rand source.
// Applied to every file in the repository, tests included: a test that
// cannot reproduce its own failure is as bad as a solver that cannot.
func checkRandGlobals(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		name, spec := importName(f, path)
		if spec == nil {
			continue
		}
		if name == "." {
			out = append(out, finding{
				pos:   fset.Position(spec.Pos()),
				check: "rand-global",
				msg:   fmt.Sprintf("dot import of %s hides global-source calls from the lint; import it named", path),
			})
			continue
		}
		if name == "_" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != name || !randGlobalFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, finding{
				pos:   fset.Position(call.Pos()),
				check: "rand-global",
				msg: fmt.Sprintf("%s.%s uses the process-global source and is not reproducible; use rand.New(rand.NewSource(seed))",
					name, sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// checkTimeNow flags wall-clock reads inside solver-kernel packages.
func checkTimeNow(fset *token.FileSet, f *ast.File) []finding {
	name, spec := importName(f, "time")
	if spec == nil || name == "_" || name == "." {
		return nil
	}
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == name && sel.Sel.Name == "Now" {
			out = append(out, finding{
				pos:   fset.Position(call.Pos()),
				check: "time-now",
				msg:   "time.Now in a solver kernel makes results depend on machine load, not inputs",
			})
		}
		return true
	})
	return out
}

// checkMapRange type-checks the package and flags every range statement
// over a map inside it. Map iteration order is runtime-randomized, so a
// kernel result that depends on it varies run to run; sites that launder
// the order (e.g. into a totally ordered sort) carry an ignore directive
// saying so.
func checkMapRange(fset *token.FileSet, files []*ast.File, pkgPath string) ([]finding, error) {
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check(pkgPath, fset, files, info); err != nil {
		return nil, err
	}
	return mapRangeFindings(fset, files, info), nil
}

// mapRangeFindings is the typed half of checkMapRange, split out so
// tests can supply their own types.Info.
func mapRangeFindings(fset *token.FileSet, files []*ast.File, info *types.Info) []finding {
	var out []finding
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, finding{
					pos:   fset.Position(rs.Pos()),
					check: "map-range",
					msg:   fmt.Sprintf("range over %s in a solver kernel: map iteration order is randomized", t),
				})
			}
			return true
		})
	}
	return out
}

// importName returns the local name under which path is imported in f
// ("rand" by default, the alias if renamed, "." or "_" verbatim) and the
// import spec, or ("", nil) when f does not import it.
func importName(f *ast.File, path string) (string, *ast.ImportSpec) {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != path {
			continue
		}
		if spec.Name != nil {
			return spec.Name.Name, spec
		}
		// Default name: last path segment, skipping a vN version suffix
		// (math/rand/v2 imports as "rand").
		segs := strings.Split(p, "/")
		name := segs[len(segs)-1]
		if len(segs) > 1 && len(name) > 1 && name[0] == 'v' && name[1] >= '0' && name[1] <= '9' {
			name = segs[len(segs)-2]
		}
		return name, spec
	}
	return "", nil
}

// suppress drops findings covered by a //balignlint:ignore comment on
// the same line or the line directly above, in any of the given files.
func suppress(fset *token.FileSet, files []*ast.File, findings []finding) []finding {
	ignored := map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(text, "balignlint:ignore") {
					pos := fset.Position(c.Pos())
					ignored[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, fd := range findings {
		same := fmt.Sprintf("%s:%d", fd.pos.Filename, fd.pos.Line)
		above := fmt.Sprintf("%s:%d", fd.pos.Filename, fd.pos.Line-1)
		if ignored[same] || ignored[above] {
			continue
		}
		kept = append(kept, fd)
	}
	return kept
}
