package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCheckRandGlobals(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"global call", `package p
import "math/rand"
var x = rand.Intn(3)`, 1},
		{"seeded generator", `package p
import "math/rand"
var rng = rand.New(rand.NewSource(1))
var x = rng.Intn(3)`, 0},
		{"renamed import", `package p
import mrand "math/rand"
var x = mrand.Float64()`, 1},
		{"dot import", `package p
import . "math/rand"
var x = Intn(3)`, 1},
		{"v2 global", `package p
import "math/rand/v2"
var x = rand.IntN(3)`, 1},
		{"no rand", `package p
var x = 3`, 0},
	}
	for _, c := range cases {
		fset, f := parseSrc(t, c.src)
		if got := len(checkRandGlobals(fset, f)); got != c.want {
			t.Errorf("%s: %d findings, want %d", c.name, got, c.want)
		}
	}
}

func TestCheckTimeNow(t *testing.T) {
	fset, f := parseSrc(t, `package p
import "time"
var t0 = time.Now()
var d = time.Second`)
	got := checkTimeNow(fset, f)
	if len(got) != 1 {
		t.Fatalf("%d findings, want 1", len(got))
	}
	if got[0].pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", got[0].pos.Line)
	}
}

func TestMapRangeFindings(t *testing.T) {
	src := `package p
func sum(m map[int]int, s []int) int {
	tot := 0
	for k := range m {
		tot += k
	}
	for _, v := range s {
		tot += v
	}
	return tot
}
type set map[string]bool
func names(s set) int {
	n := 0
	for range s {
		n++
	}
	return n
}`
	fset, f := parseSrc(t, src)
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	got := mapRangeFindings(fset, []*ast.File{f}, info)
	if len(got) != 2 {
		t.Fatalf("%d findings, want 2 (plain map and named map type)", len(got))
	}
	if got[0].pos.Line != 4 || got[1].pos.Line != 15 {
		t.Errorf("findings at lines %d, %d; want 4, 15", got[0].pos.Line, got[1].pos.Line)
	}
}

func TestSuppress(t *testing.T) {
	src := `package p
import "math/rand"

//balignlint:ignore demo: suppressed by the line above
var a = rand.Intn(3)
var b = rand.Intn(3) //balignlint:ignore demo: suppressed on the same line

//balignlint:ignore demo: too far away to suppress

var c = rand.Intn(3)`
	fset, f := parseSrc(t, src)
	found := checkRandGlobals(fset, f)
	if len(found) != 3 {
		t.Fatalf("pre-suppression: %d findings, want 3", len(found))
	}
	kept := suppress(fset, []*ast.File{f}, found)
	if len(kept) != 1 {
		t.Fatalf("post-suppression: %d findings, want 1", len(kept))
	}
	if kept[0].pos.Line != 10 {
		t.Errorf("kept finding at line %d, want 10", kept[0].pos.Line)
	}
}

// TestRepoIsClean runs the full linter over the module, mirroring the
// CI vet-static step: the repository must lint clean, with every
// legitimate nondeterminism site carrying an ignore directive.
func TestRepoIsClean(t *testing.T) {
	var out, errw strings.Builder
	if code := run(nil, &out, &errw); code != 0 {
		t.Fatalf("balignlint exit %d on own repo\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestDirectiveIsLoadBearing checks that the annotated time.Now site in
// the solver budget would be flagged without its ignore directive: the
// check fires, and only suppression keeps the repo clean.
func TestDirectiveIsLoadBearing(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "../../internal/tsp/budget.go", nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	found := checkTimeNow(fset, f)
	if len(found) != 1 {
		t.Fatalf("checkTimeNow on budget.go: %d findings, want 1", len(found))
	}
	if kept := suppress(fset, []*ast.File{f}, found); len(kept) != 0 {
		t.Fatalf("directive failed to suppress: %d findings survive", len(kept))
	}
}

// TestExplicitDirArgs lints just the kernel packages by path, the
// narrow invocation developers use while iterating on a solver.
func TestExplicitDirArgs(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"../../internal/tsp", "../../internal/align"}, &out, io.Discard); code != 0 {
		t.Fatalf("exit %d linting kernel dirs\n%s", code, out.String())
	}
}

func TestOutsideModuleRejected(t *testing.T) {
	if code := run([]string{"/tmp"}, io.Discard, io.Discard); code != 2 {
		t.Fatalf("exit %d for out-of-module dir, want 2", code)
	}
}
