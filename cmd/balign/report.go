package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/obs"
	"branchalign/internal/stats"
	"branchalign/internal/tsp"
)

// runReport implements `balign report`: a per-function convergence table
// for the TSP aligner — cities, final tour cost, Held-Karp lower bound,
// optimality gap, and local-search effort. The table is rendered either
// from a recorded NDJSON trace (-in, as written by `balign -trace`) or
// from a fresh in-process run of the solver and bound over a program.
func runReport(args []string) int {
	fs := flag.NewFlagSet("balign report", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "render from a recorded NDJSON trace instead of running the pipeline (\"-\" reads stdin)")
		srcPath   = fs.String("src", "", "Mini-C source file to align")
		data      = fs.String("data", "", "comma-separated ints for the entry array input")
		scalarN   = fs.Int64("n", -1, "entry scalar argument (default: array length)")
		benchName = fs.String("bench", "", "use a built-in benchmark instead of -src")
		dataset   = fs.String("dataset", "", "benchmark data set name (with -bench)")
		modelSel  = fs.String("model", "alpha21164", "machine model: alpha21164, shallow, deep")
		seed      = fs.Int64("seed", 1, "solver seed")
		algSel    = fs.String("algorithm", "tsp", "aligner for live runs: tsp, exttsp, greedy, ...")
		hkIters   = fs.Int("hk-iters", 3000, "Held-Karp subgradient iterations")
		hkStall   = fs.Int("hk-stall", 50, "stop each Held-Karp ascent after this many iterates without improvement (0 = run the full schedule)")
		parallel  = fs.Int("parallel", 0, "TSP solver parallelism for live runs: max concurrent local-search runs per function (-1 = all CPUs); bit-identical results, lower wall-clock in the solve-ms column")
	)
	fs.Parse(args)

	var events []obs.Event
	if *in != "" {
		// "-" renders a trace piped on stdin, so a recorded run can be
		// inspected without touching disk:
		//   balign -bench compress -bound -trace - | balign report -in -
		r, name := io.Reader(os.Stdin), "stdin"
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintln(os.Stderr, "balign report:", err)
				return 1
			}
			defer f.Close()
			r, name = f, *in
		}
		var err error
		events, err = obs.ReadEvents(eventLines(r))
		if err != nil {
			fmt.Fprintf(os.Stderr, "balign report: reading %s: %v\n", name, err)
			return 1
		}
	} else {
		var err error
		events, err = reportRun(*srcPath, *benchName, *dataset, *data, *scalarN, *modelSel, *algSel, *seed, *hkIters, *hkStall, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "balign report:", err)
			return 1
		}
	}
	fmt.Print(renderReport(events))
	return 0
}

// reportRun executes the profile -> align -> Held-Karp pipeline with
// an in-memory telemetry sink and returns the collected events.
func reportRun(srcPath, benchName, dataset, data string, scalarN int64, modelSel, algorithm string, seed int64, hkIters, hkStall, parallel int) ([]obs.Event, error) {
	mod, inputs, err := loadProgram(srcPath, benchName, dataset, data, scalarN)
	if err != nil {
		return nil, err
	}
	model, err := pickModel(modelSel)
	if err != nil {
		return nil, err
	}
	prof, err := profileProgram(mod, inputs)
	if err != nil {
		return nil, err
	}

	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	root := tr.Start("balign.report", obs.String("model", modelSel),
		obs.String("algorithm", algorithm), obs.Int("seed", seed))
	aligner, err := align.New(algorithm, align.Options{
		Seed: seed, Parallel: true, Parallelism: parallel, Obs: root,
	})
	if err != nil {
		return nil, err
	}
	aligner.Align(context.Background(), mod, prof, model)
	align.HeldKarpLowerBound(mod, prof, model, tsp.HeldKarpOptions{
		Iterations: hkIters, StallWindow: hkStall, Obs: root,
	})
	root.End()
	if err := tr.Close(); err != nil {
		return nil, err
	}
	return sink.Events(), nil
}

// profileProgram runs the training execution and returns the profile.
func profileProgram(mod *ir.Module, inputs []interp.Input) (*interp.Profile, error) {
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
		return nil, fmt.Errorf("profiling run failed: %w", err)
	}
	return prof, nil
}

// reportRow is one function's joined solver + bound telemetry.
type reportRow struct {
	fn         string
	alg        string
	cities     int64
	cost       int64
	bound      int64
	hasHK      bool
	hkIters    int64
	hkConv     bool
	exact      bool
	runs       int64
	runsBest   int64
	iterBest   int64
	tried      int64
	accepted   int64
	orTried    int64
	orAccepted int64
	durUS      int64
}

// renderReport joins "align.func" and "align.hk" spans by function name
// and renders the convergence table. Functions are ordered by descending
// tour cost (heaviest instances first), then by name, so the output is
// deterministic even when the solves ran in parallel.
func renderReport(events []obs.Event) string {
	rows := map[string]*reportRow{}
	get := func(fn string) *reportRow {
		r, ok := rows[fn]
		if !ok {
			r = &reportRow{fn: fn}
			rows[fn] = r
		}
		return r
	}
	for _, e := range events {
		if e.Type != "span" {
			continue
		}
		switch e.Name {
		case "align.func":
			r := get(e.Str("func"))
			// Spans recorded before the aligner registry carry no
			// algorithm attribute; they were all TSP solves.
			r.alg = e.Str("algorithm")
			if r.alg == "" {
				r.alg = "tsp"
			}
			r.cities = e.Int("cities")
			r.cost = e.Int("cost")
			r.exact = e.Bool("exact")
			r.runs = e.Int("runs")
			r.runsBest = e.Int("runs_at_best")
			r.iterBest = e.Int("iter_best")
			r.tried = e.Int("moves_tried")
			r.accepted = e.Int("moves_accepted")
			r.orTried = e.Int("or_moves_tried")
			r.orAccepted = e.Int("or_moves_accepted")
			r.durUS = e.DurUS
		case "align.hk":
			r := get(e.Str("func"))
			r.bound = e.Int("bound")
			r.hkIters = e.Int("iterations")
			r.hkConv = e.Bool("converged")
			r.hasHK = true
		}
	}
	if len(rows) == 0 {
		return requestHeader(events) + "no align.func/align.hk spans in trace (was the run recorded with -trace, tsp aligner and -bound?)\n"
	}
	ordered := make([]*reportRow, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].cost != ordered[j].cost {
			return ordered[i].cost > ordered[j].cost
		}
		return ordered[i].fn < ordered[j].fn
	})

	table := stats.NewTable("function", "algorithm", "cities", "tour cost", "HK bound", "gap %", "HK iters", "HK conv", "exact", "runs@best", "iters to best", "3-opt acc/tried", "or-opt acc/tried", "solve ms")
	var tot reportRow
	allHK := true
	for _, r := range ordered {
		bound, gap, hkit, hkcv := "-", "-", "-", "-"
		if r.hasHK {
			bound = fmt.Sprintf("%d", r.bound)
			gap = fmt.Sprintf("%.2f", gapPct(r.cost, r.bound))
			// Exact bounds (small functions) run no ascent: iterations
			// stays "-" and converged is trivially true.
			if r.hkIters > 0 {
				hkit = fmt.Sprintf("%d", r.hkIters)
			}
			hkcv = fmt.Sprintf("%v", r.hkConv)
		} else {
			allHK = false
		}
		alg := r.alg
		if alg == "" {
			alg = "-" // an align.hk span with no matching align.func
		}
		table.Rowf("%s|%s|%d|%d|%s|%s|%s|%s|%v|%d/%d|%d|%s/%s|%s/%s|%s",
			r.fn, alg, r.cities, r.cost, bound, gap, hkit, hkcv, r.exact, r.runsBest, r.runs,
			r.iterBest, stats.FormatCount(r.accepted), stats.FormatCount(r.tried),
			stats.FormatCount(r.orAccepted), stats.FormatCount(r.orTried),
			solveMS(r.durUS))
		tot.cities += r.cities
		tot.cost += r.cost
		tot.bound += r.bound
		tot.hkIters += r.hkIters
		tot.tried += r.tried
		tot.accepted += r.accepted
		tot.orTried += r.orTried
		tot.orAccepted += r.orAccepted
		tot.durUS += r.durUS
	}
	if len(ordered) > 1 {
		bound, gap, hkit := "-", "-", "-"
		if allHK {
			bound = fmt.Sprintf("%d", tot.bound)
			gap = fmt.Sprintf("%.2f", gapPct(tot.cost, tot.bound))
			hkit = fmt.Sprintf("%d", tot.hkIters)
		}
		table.Rowf("total (%d)||%d|%d|%s|%s|%s|||||%s/%s|%s/%s|%s",
			len(ordered), tot.cities, tot.cost, bound, gap, hkit,
			stats.FormatCount(tot.accepted), stats.FormatCount(tot.tried),
			stats.FormatCount(tot.orAccepted), stats.FormatCount(tot.orTried),
			solveMS(tot.durUS))
	}
	return requestHeader(events) + table.String() + spliceFooter(events)
}

// requestHeader renders the request IDs found in the trace, one header
// line above the table. balignd stamps the middleware-assigned ID on
// each request's root span, so an operator holding an access-log line
// can confirm this trace is the one that served it. Traces recorded by
// the CLI carry no ID and render no header.
func requestHeader(events []obs.Event) string {
	var ids []string
	seen := map[string]bool{}
	for _, e := range events {
		if e.Type != "span" || !e.Has("request_id") {
			continue
		}
		if id := e.Str("request_id"); id != "" && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return ""
	}
	return "request id: " + strings.Join(ids, ", ") + "\n"
}

// spliceFooter renders the applied-move splice-length distribution (the
// "tsp.splice_len" histogram flushed per local-search run) as one line
// under the table: sample count, exact mean, and the occupied
// power-of-two buckets. Traces without the histogram (pre-Or-opt
// recordings, exact-only solves) render nothing.
func spliceFooter(events []obs.Event) string {
	for _, e := range events {
		if e.Type != "hist" || e.Name != "tsp.splice_len" {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "splice length: %s moves, mean %.2f, buckets(le:n)",
			stats.FormatCount(e.Count), e.Float("mean"))
		for _, bk := range e.Buckets {
			fmt.Fprintf(&b, " %d:%s", bk.Le, stats.FormatCount(bk.N))
		}
		b.WriteByte('\n')
		return b.String()
	}
	return ""
}

// solveMS renders one solve's recorded wall-clock ("-" for traces
// predating the duration field). Per-function wall-clock is how solver
// parallelism shows up in production output: -parallel lowers this
// column while every other cell stays bit-identical.
func solveMS(durUS int64) string {
	if durUS <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(durUS)/1000)
}

// gapPct is the relative optimality gap (tour - bound) / tour in percent,
// clamped at zero (the bound never exceeds the tour, but rounding can
// graze it).
func gapPct(cost, bound int64) float64 {
	if cost <= 0 {
		return 0
	}
	g := float64(cost-bound) / float64(cost) * 100
	if g < 0 {
		return 0
	}
	return g
}

// eventLines filters a trace stream down to its NDJSON event lines
// (those starting with '{'). `balign -trace /dev/stdout` interleaves
// the driver's human-readable progress lines with the event stream;
// dropping them lets that output pipe straight into `report -in -`.
// Malformed lines that do start with '{' still fail the decode.
func eventLines(r io.Reader) io.Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // convergence-series events can be long
	var buf bytes.Buffer
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "{") {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
	}
	return &buf
}
