package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/machine"
	"branchalign/internal/staticprof"
)

// runVet implements `balign vet`: compile and profile a program (or every
// bundled benchmark with -all), then audit every pipeline artifact with
// the invariant checker — IR structure and dataflow lints, profile flow
// conservation, layout permutation validity, patch equivalence, placement
// and cost bookkeeping, and the AP ≤ HK ≤ tour bound chain — for each
// selected aligner's layout. Returns the process exit code: 0 when no
// invariant is broken (warnings allowed), 1 otherwise.
func runVet(args []string) int {
	fs := flag.NewFlagSet("balign vet", flag.ExitOnError)
	var (
		srcPath   = fs.String("src", "", "Mini-C source file to vet")
		data      = fs.String("data", "", "comma-separated ints for the entry array input")
		scalarN   = fs.Int64("n", -1, "entry scalar argument (default: array length)")
		benchName = fs.String("bench", "", "use a built-in benchmark instead of -src")
		dataset   = fs.String("dataset", "", "benchmark data set name (with -bench)")
		all       = fs.Bool("all", false, "vet every bundled benchmark (overrides -src/-bench)")
		alignSel  = fs.String("aligner", "all", "aligner whose layouts to vet: original, greedy, calder-grunwald, ap-patch, tsp, exttsp, all")
		modelSel  = fs.String("model", "alpha21164", "machine model: alpha21164, shallow, deep")
		seed      = fs.Int64("seed", 1, "solver seed")
		bounds    = fs.Bool("bounds", true, "include the AP ≤ HK ≤ tour bound-chain check")
		hkIters   = fs.Int("hk-iters", 200, "Held-Karp subgradient iterations for -bounds")
		hkStall   = fs.Int("hk-stall", 30, "stop each Held-Karp ascent after this many iterates without improvement (0 = run the full schedule)")
		verbose   = fs.Bool("v", false, "print warnings (lints) in addition to errors")
	)
	fs.Parse(args)

	model, err := pickModel(*modelSel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balign vet:", err)
		return 1
	}
	aligners, err := pickVetAligners(*alignSel, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balign vet:", err)
		return 1
	}
	opts := check.Options{
		Bounds:        *bounds,
		BoundsOptions: check.BoundsOptions{HKIterations: *hkIters, HKStallWindow: *hkStall},
	}

	exit := 0
	if *all {
		for _, b := range bench.All() {
			mod, err := b.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "balign vet: %s: %v\n", b.Name, err)
				return 1
			}
			// The smaller data set keeps -all fast; the audited invariants
			// are input-independent.
			ds := b.DataSets[len(b.DataSets)-1]
			if !vetProgram(b.Name, mod, ds.Make(), aligners, model, opts, *verbose) {
				exit = 1
			}
		}
		return exit
	}
	mod, inputs, err := loadProgram(*srcPath, *benchName, *dataset, *data, *scalarN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "balign vet:", err)
		return 1
	}
	name := *benchName
	if name == "" {
		name = *srcPath
	}
	if !vetProgram(name, mod, inputs, aligners, model, opts, *verbose) {
		exit = 1
	}
	return exit
}

// vetProgram profiles one module and audits it under every aligner's
// layout, printing findings. It reports whether no invariant was broken.
func vetProgram(name string, mod *ir.Module, inputs []interp.Input, aligners []align.Aligner, model machine.Model, opts check.Options, verbose bool) bool {
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
		fmt.Fprintf(os.Stderr, "balign vet: %s: profiling run failed: %v\n", name, err)
		return false
	}
	// Module structure, dataflow lints and flow conservation are
	// layout-independent: audit them once.
	base := check.Module(mod)
	base.Merge(check.Flow(mod, prof))
	// CFG-shape lints (unreachable blocks, irreducible loops, statically
	// infinite loops, cold-but-deep regions) plus the estimator
	// self-check: the static profile must satisfy flow conservation by
	// construction, so a violation here is an estimator bug, not a
	// program property.
	base.Merge(staticprof.Lint(mod))
	est, _ := staticprof.Estimate(mod)
	base.Merge(check.Flow(mod, est))
	ok := printVetReport(name, base, verbose)
	for _, a := range aligners {
		l := a.Align(context.Background(), mod, prof, model)
		r := check.Layouts(mod, prof, l, model)
		if opts.Bounds {
			r.Merge(check.Bounds(mod, prof, l, model, opts.BoundsOptions))
		}
		ok = printVetReport(name+"/"+a.Name(), r, verbose) && ok
	}
	return ok
}

// printVetReport prints one report (errors always, warnings with -v) and
// reports whether it was violation-free.
func printVetReport(target string, r *check.Report, verbose bool) bool {
	for _, f := range r.Findings {
		if f.Severity == check.Error || verbose {
			fmt.Printf("%s: %s\n", target, f.String())
		}
	}
	if r.OK() {
		fmt.Printf("%s: ok (%d warnings)\n", target, r.Warnings())
		return true
	}
	fmt.Printf("%s: FAIL: %d invariant violation(s), %d warning(s)\n", target, r.Errors(), r.Warnings())
	return false
}

// pickVetAligners resolves -aligner for the vet subcommand. Unlike the
// experiment driver, "original" is a vettable layout here (the identity
// order still gets its patch, placement, cost and bound audits), and
// "all" includes it.
func pickVetAligners(sel string, seed int64) ([]align.Aligner, error) {
	switch sel {
	case "all":
		all, err := pickAligners("all", seed, 0)
		if err != nil {
			return nil, err
		}
		return append([]align.Aligner{align.Original{}}, all...), nil
	case "original":
		return []align.Aligner{align.Original{}}, nil
	}
	return pickAligners(sel, seed, 0)
}
