// Command balign is the branch-alignment driver: it compiles a Mini-C
// source file, profiles it on a training input, aligns its basic blocks
// with the selected algorithm, and reports control penalties (and
// optionally simulated execution time) under the resulting layout.
//
//	balign -src prog.mc -data "1,2,3,4" -aligner tsp -sim
//	balign -src prog.mc -bench compress -dataset txt   (use a built-in benchmark instead)
//	balign -bench xli -dataset q7 -aligner all -sim
//
// The `vet` subcommand runs the pipeline-wide invariant checker
// (internal/check) instead of the experiment driver:
//
//	balign vet -bench compress
//	balign vet -all -v
//
// The `report` subcommand renders per-function solver convergence tables
// (tour cost, Held-Karp bound, gap) from a live run or a recorded trace:
//
//	balign report -bench compress
//	balign report -in trace.ndjson
//	balign -bench compress -bound -trace - | balign report -in -
//
// With -trace, the main driver exports the full telemetry of the run —
// pipeline-stage spans, solver convergence series, counters — as NDJSON:
//
//	balign -bench compress -sim -bound -trace trace.ndjson
//
// The entry function must be main with signature (), (n) or (input[], n).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/cfganal"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/lower"
	"branchalign/internal/machine"
	"branchalign/internal/minic"
	"branchalign/internal/obs"
	"branchalign/internal/opt"
	"branchalign/internal/pipe"
	"branchalign/internal/staticprof"
	"branchalign/internal/stats"
	"branchalign/internal/tsp"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "report" {
		os.Exit(runReport(os.Args[2:]))
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "balign:", err)
		os.Exit(1)
	}
}

// run is the main driver. Returning an error (rather than exiting
// in-place) lets the deferred trace flush below run on every exit path,
// so a failed run still leaves a complete, readable NDJSON trace.
func run(args []string) (err error) {
	fs := flag.NewFlagSet("balign", flag.ExitOnError)
	var (
		srcPath   = fs.String("src", "", "Mini-C source file to align")
		data      = fs.String("data", "", "comma-separated ints for the entry array input")
		scalarN   = fs.Int64("n", -1, "entry scalar argument (default: array length)")
		benchName = fs.String("bench", "", "use a built-in benchmark instead of -src")
		dataset   = fs.String("dataset", "", "benchmark data set name (with -bench)")
		alignSel  = fs.String("aligner", "all", "aligner: original, greedy, calder-grunwald, ap-patch, tsp, exttsp, all")
		algSel    = fs.String("algorithm", "", "alias for -aligner, matching balignd's \"algorithm\" request field")
		modelSel  = fs.String("model", "alpha21164", "machine model: alpha21164, shallow, deep")
		seed      = fs.Int64("seed", 1, "solver seed")
		parallel  = fs.Int("parallel", 0, "TSP solver parallelism: max concurrent local-search runs per function (-1 = all CPUs); non-zero also solves functions in parallel; results are bit-identical at every setting")
		sim       = fs.Bool("sim", false, "simulate execution time (pipeline + I-cache)")
		cacheKB   = fs.Int("cache-bytes", 0, "I-cache size in bytes for -sim (0 = default 512)")
		cacheWays = fs.Int("cache-ways", 0, "I-cache associativity for -sim (0 = default 2)")
		dynPred   = fs.Bool("dynpredict", false, "simulate a 2-bit dynamic predictor instead of static prediction")
		dump      = fs.Bool("dump", false, "dump the IR module")
		dotFunc   = fs.String("dot", "", "emit the CFG of the named function as Graphviz dot")
		showOrder = fs.Bool("orders", false, "print the block order of every function")
		bound     = fs.Bool("bound", false, "also compute the Held-Karp lower bound")
		optimize  = fs.Bool("opt", false, "run CFG cleanup (jump threading, block merging) before aligning")
		profMode  = fs.String("profile", "measured", "profile source: measured (run the program on its training input) or static (estimate edge frequencies from CFG structure, no execution)")
		profOut   = fs.String("profile-out", "", "write the training profile as JSON")
		profIn    = fs.String("profile-in", "", "read the training profile from JSON instead of running the program")
		layoutOut = fs.String("layout-out", "", "write the chosen aligner's layout as JSON (single -aligner only)")
		metrics   = fs.Bool("metrics", false, "report fall-through/taken/fixup transfer rates per aligner")
		listing   = fs.String("listing", "", "print the named function's laid-out pseudo-assembly per aligner")
		loops     = fs.Bool("loops", false, "report loop structure (dominators + natural loops) per function")
		tracePath = fs.String("trace", "", "export run telemetry (spans, convergence series, counters) as NDJSON (\"-\" streams to stdout, tables move to stderr)")
	)
	fs.Parse(args)
	if *algSel != "" {
		*alignSel = *algSel
	}
	ctx := context.Background()

	// Telemetry: a nil root span (no -trace) disables every obs call site
	// downstream at zero cost.
	var (
		root      *obs.Span
		traceT    *obs.Trace
		traceSink *obs.NDJSONSink
		traceFile *os.File
	)
	if *tracePath != "" {
		var w io.Writer
		if *tracePath == "-" {
			// The event stream owns stdout; move the human-readable
			// driver output to stderr so the NDJSON stays parseable:
			//   balign -bench compress -bound -trace - | balign report -in -
			w = os.Stdout
			os.Stdout = os.Stderr
		} else {
			f, cerr := os.Create(*tracePath)
			if cerr != nil {
				return cerr
			}
			traceFile = f
			w = f
		}
		traceSink = obs.NewNDJSONSink(w)
		traceT = obs.New(traceSink)
		root = traceT.Start("balign",
			obs.String("aligner", *alignSel),
			obs.String("model", *modelSel),
			obs.Int("seed", *seed))
		defer func() {
			root.End()
			if cerr := traceT.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if traceFile != nil {
				if cerr := traceFile.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err == nil {
				fmt.Printf("wrote %d trace events to %s\n", traceSink.Count(), *tracePath)
			}
		}()
	}

	mod, inputs, err := loadProgram(*srcPath, *benchName, *dataset, *data, *scalarN)
	if err != nil {
		return err
	}
	model, err := pickModel(*modelSel)
	if err != nil {
		return err
	}
	if *optimize {
		st := opt.Module(mod)
		fmt.Printf("optimized: %d edges threaded, %d blocks merged, %d unreachable removed, %d branches folded\n",
			st.ThreadedEdges, st.MergedBlocks, st.UnreachableBlocks, st.FoldedBranches+st.CollapsedCondBrs)
	}
	if *dump {
		fmt.Print(mod.String())
	}

	var prof *interp.Profile
	if *profMode != "measured" && *profMode != "static" {
		return fmt.Errorf("unknown -profile %q (want measured or static)", *profMode)
	}
	if *profMode == "static" {
		if *profIn != "" {
			return fmt.Errorf("-profile=static conflicts with -profile-in: the estimate replaces any recorded profile")
		}
		psp := root.Child("estimate")
		var info *staticprof.Info
		prof, info = staticprof.Estimate(mod)
		psp.End(obs.Int("scale", info.Scale))
		fmt.Printf("estimated static profile: scale %d per entry, %d branch sites covered\n",
			info.Scale, prof.BranchSitesTouched(mod))
	} else if *profIn != "" {
		f, err := os.Open(*profIn)
		if err != nil {
			return err
		}
		prof, err = interp.ReadProfileJSON(f, mod)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded profile from %s (%d branch sites touched)\n", *profIn, prof.BranchSitesTouched(mod))
	} else {
		psp := root.Child("profile")
		prof = interp.NewProfile(mod)
		res, err := interp.Run(mod, inputs, interp.Options{Profile: prof, MaxSteps: 1 << 31})
		if err != nil {
			return fmt.Errorf("profiling run failed: %w", err)
		}
		psp.End(obs.Int("steps", res.Steps), obs.Int("dyn_branches", res.DynBranches()))
		fmt.Printf("profiled: %d IR instructions, %d dynamic branches, %d branch sites touched, ret=%d\n",
			res.Steps, res.DynBranches(), prof.BranchSitesTouched(mod), res.Ret)
	}
	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			return err
		}
		if err := prof.WriteJSON(f); err != nil {
			return err
		}
		f.Close()
		fmt.Printf("wrote profile to %s\n", *profOut)
	}

	if *dotFunc != "" {
		fi := mod.FuncIndex(*dotFunc)
		if fi < 0 {
			return fmt.Errorf("no function %q", *dotFunc)
		}
		fmt.Print(mod.Funcs[fi].Dot(func(b, si int) (int64, bool) {
			return prof.Funcs[fi].EdgeCounts[b][si], true
		}))
	}

	if *loops {
		printLoops(mod, prof)
	}

	aligners, err := pickAligners(*alignSel, *seed, *parallel)
	if err != nil {
		return err
	}

	origLayout := layout.Identity(mod, prof, model)
	origCP := layout.ModulePenalty(mod, origLayout, prof, model)
	var origCycles machine.Cost
	var trace *pipe.Trace
	simCfg := pipe.Config{Model: model, Cache: pipe.DefaultCache()}
	if *cacheKB > 0 {
		simCfg.Cache.SizeBytes = *cacheKB
	}
	if *cacheWays > 0 {
		simCfg.Cache.Ways = *cacheWays
	}
	if *dynPred {
		simCfg.Predictor = pipe.PredictorConfig{Kind: pipe.PredictTwoBit}
	}
	if *sim {
		rsp := root.Child("record")
		trace, _, err = pipe.Record(mod, inputs, interp.Options{MaxSteps: 1 << 31})
		if err != nil {
			return err
		}
		rsp.End(obs.Int("trace_events", int64(trace.Len())))
		ssp := root.Child("simulate", obs.String("aligner", "original"))
		cfg := simCfg
		cfg.Obs = ssp
		st := pipe.Replay(trace, mod, origLayout, cfg)
		ssp.End(obs.Int("cycles", int64(st.Cycles)))
		origCycles = st.Cycles
	}

	table := stats.NewTable("aligner", "control penalty", "normalized", "cycles", "time vs original")
	table.Rowf("original|%d|1.000|%s|1.0000", origCP, cyclesCell(*sim, origCycles))
	for _, a := range aligners {
		asp := root.Child("align", obs.String("aligner", a.Name()))
		switch t := a.(type) {
		case *align.TSP:
			t.Obs = asp
		case *align.ExtTSP:
			t.Obs = asp
		}
		l := a.Align(ctx, mod, prof, model)
		if err := l.Validate(mod); err != nil {
			return fmt.Errorf("%s produced an invalid layout: %w", a.Name(), err)
		}
		if *layoutOut != "" && len(aligners) == 1 {
			f, err := os.Create(*layoutOut)
			if err != nil {
				return err
			}
			if err := l.WriteJSON(f); err != nil {
				return err
			}
			f.Close()
			fmt.Printf("wrote %s layout to %s\n", a.Name(), *layoutOut)
		}
		cp := layout.ModulePenalty(mod, l, prof, model)
		asp.End(obs.Int("control_penalty", int64(cp)))
		cycleCell, timeCell := "-", "-"
		if *sim {
			ssp := root.Child("simulate", obs.String("aligner", a.Name()))
			cfg := simCfg
			cfg.Obs = ssp
			st := pipe.Replay(trace, mod, l, cfg)
			ssp.End(obs.Int("cycles", int64(st.Cycles)))
			cycleCell = fmt.Sprintf("%d", st.Cycles)
			timeCell = fmt.Sprintf("%.4f", float64(st.Cycles)/float64(origCycles))
		}
		table.Rowf("%s|%d|%.3f|%s|%s", a.Name(), cp, stats.Ratio(cp, origCP, 1), cycleCell, timeCell)
		if *metrics {
			met := layout.ModuleMetrics(mod, l, prof)
			fmt.Printf("  %s: %.1f%% fall-through (%d transfers, %d taken, %d via fixup)\n",
				a.Name(), 100*met.FallthroughRate(), met.Transfers, met.Taken, met.ViaFixup)
		}
		if *listing != "" {
			fi := mod.FuncIndex(*listing)
			if fi < 0 {
				return fmt.Errorf("no function %q", *listing)
			}
			pf := layout.PlaceFunc(mod.Funcs[fi], l.Funcs[fi], 0)
			fmt.Printf("--- %s layout of %s ---\n%s", a.Name(), *listing,
				layout.Listing(mod.Funcs[fi], l.Funcs[fi], pf))
		}
		if *showOrder {
			for fi, f := range mod.Funcs {
				fmt.Printf("  %s/%s: %v\n", a.Name(), f.Name, l.Funcs[fi].Order)
			}
		}
	}
	if *bound {
		bsp := root.Child("bound")
		hk := align.HeldKarpLowerBound(mod, prof, model, tsp.HeldKarpOptions{Iterations: 3000, Obs: bsp})
		bsp.End(obs.Int("bound", int64(hk)))
		table.Rowf("lower bound|%d|%.3f|-|-", hk, stats.Ratio(hk, origCP, 1))
	}
	fmt.Println()
	fmt.Print(table.String())
	return nil
}

// printLoops reports each function's loop structure with profiled trip
// counts, the sanity view for "is the heat where the loops are".
func printLoops(mod *ir.Module, prof *interp.Profile) {
	for fi, f := range mod.Funcs {
		dom := cfganal.ComputeDominators(f)
		natural := cfganal.NaturalLoops(f, dom)
		if len(natural) == 0 {
			continue
		}
		depth := cfganal.LoopDepth(f)
		fmt.Printf("loops in %s:\n", f.Name)
		for _, l := range natural {
			backCount := int64(0)
			for si, s := range f.Blocks[l.Back].Term.Succs {
				if s == l.Header {
					backCount += prof.Funcs[fi].EdgeCounts[l.Back][si]
				}
			}
			fmt.Printf("  header b%d (depth %d): %d blocks, back edge b%d->b%d executed %d times\n",
				l.Header, depth[l.Header], len(l.Blocks), l.Back, l.Header, backCount)
		}
	}
}

func loadProgram(srcPath, benchName, dataset, data string, scalarN int64) (*ir.Module, []interp.Input, error) {
	if benchName != "" {
		b, err := bench.ByName(benchName)
		if err != nil {
			return nil, nil, err
		}
		if dataset == "" {
			dataset = b.DataSets[0].Name
		}
		ds, err := b.DataSet(dataset)
		if err != nil {
			return nil, nil, err
		}
		mod, err := b.Compile()
		if err != nil {
			return nil, nil, err
		}
		return mod, ds.Make(), nil
	}
	if srcPath == "" {
		return nil, nil, fmt.Errorf("need -src or -bench (see -help)")
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return nil, nil, err
	}
	prog, err := minic.Parse(string(src))
	if err != nil {
		return nil, nil, err
	}
	info, err := minic.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	mod, err := lower.Program(info)
	if err != nil {
		return nil, nil, err
	}
	entry := mod.Funcs[mod.EntryFunc]
	var arr []int64
	if data != "" {
		for _, part := range strings.Split(data, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -data element %q: %w", part, err)
			}
			arr = append(arr, v)
		}
	}
	n := scalarN
	if n < 0 {
		n = int64(len(arr))
	}
	var inputs []interp.Input
	switch {
	case len(entry.Params) == 0:
	case len(entry.Params) == 1 && entry.Params[0] == ir.ParamScalar:
		inputs = []interp.Input{interp.ScalarInput(n)}
	case len(entry.Params) == 2 && entry.Params[0] == ir.ParamArray && entry.Params[1] == ir.ParamScalar:
		inputs = []interp.Input{interp.ArrayInput(arr), interp.ScalarInput(n)}
	default:
		return nil, nil, fmt.Errorf("entry main must have signature (), (n) or (input[], n)")
	}
	return mod, inputs, nil
}

func pickModel(name string) (machine.Model, error) {
	for _, m := range machine.Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return machine.Model{}, fmt.Errorf("unknown model %q", name)
}

func pickAligners(sel string, seed int64, parallel int) ([]align.Aligner, error) {
	o := align.Options{Seed: seed}
	if parallel != 0 {
		o.Parallel = true
		o.Parallelism = parallel
	}
	build := func(names ...string) ([]align.Aligner, error) {
		out := make([]align.Aligner, 0, len(names))
		for _, name := range names {
			a, err := align.New(name, o)
			if err != nil {
				return nil, fmt.Errorf("unknown aligner %q (known: %v)", name, align.Names())
			}
			out = append(out, a)
		}
		return out, nil
	}
	switch sel {
	case "all":
		// Every registered aligner except the original-order baseline,
		// which the driver always prints as its own first row. The order
		// is fixed (weakest heuristic to strongest solver), not the
		// registry's alphabetical one, so the table reads as a
		// progression.
		return build("greedy", "calder-grunwald", "ap-patch", "tsp", "exttsp")
	case "original":
		return nil, nil
	case "cg":
		sel = "calder-grunwald"
	case "patch":
		sel = "ap-patch"
	}
	return build(sel)
}

func cyclesCell(sim bool, cycles machine.Cost) string {
	if !sim {
		return "-"
	}
	return fmt.Sprintf("%d", cycles)
}
