package main

import (
	"strings"
	"testing"

	"branchalign/internal/obs"
)

// span builds a minimal span event the way a JSON round-trip would
// deliver it (numbers as float64), so renderReport's attr decoding is
// exercised the same way `report -in` exercises it.
func span(name string, attrs map[string]any) obs.Event {
	return obs.Event{Type: "span", Name: name, Attrs: attrs}
}

func TestRenderReportJoinsSolveAndBound(t *testing.T) {
	events := []obs.Event{
		span("align.func", map[string]any{
			"func": "hot", "cities": float64(20), "cost": float64(1000), "exact": false,
			"runs": float64(10), "runs_at_best": float64(3), "iter_best": float64(2),
			"moves_tried": float64(500), "moves_accepted": float64(40),
		}),
		span("align.hk", map[string]any{"func": "hot", "bound": float64(900)}),
		span("align.func", map[string]any{
			"func": "cold", "cities": float64(5), "cost": float64(10), "exact": true,
			"runs": float64(1), "runs_at_best": float64(1),
		}),
		span("align.hk", map[string]any{"func": "cold", "bound": float64(10)}),
		// Unrelated events must be ignored.
		span("tsp.run", map[string]any{"cost": float64(7)}),
		{Type: "counter", Name: "tsp.kicks", Count: 3},
	}
	out := renderReport(events)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header, rule, two functions, total
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Ordered by descending cost: hot before cold.
	if !strings.Contains(lines[2], "hot") || !strings.Contains(lines[3], "cold") {
		t.Errorf("rows not ordered by cost:\n%s", out)
	}
	if !strings.Contains(lines[2], "10.00") {
		t.Errorf("hot gap (1000 vs 900) should render 10.00:\n%s", out)
	}
	if !strings.Contains(lines[3], "0.00") {
		t.Errorf("cold gap should be 0.00:\n%s", out)
	}
	if !strings.Contains(lines[4], "total (2)") || !strings.Contains(lines[4], "1010") ||
		!strings.Contains(lines[4], "910") {
		t.Errorf("total row wrong:\n%s", out)
	}
}

func TestRenderReportMissingBound(t *testing.T) {
	out := renderReport([]obs.Event{
		span("align.func", map[string]any{"func": "f", "cities": float64(4), "cost": float64(5)}),
	})
	if !strings.Contains(out, "-") {
		t.Errorf("missing bound should render as '-':\n%s", out)
	}
	if empty := renderReport(nil); !strings.Contains(empty, "no align.func") {
		t.Errorf("empty trace should explain itself, got:\n%s", empty)
	}
}

// TestRenderReportRequestID pins the daemon-trace affordance: when the
// root span carries a request_id attr (stamped by balignd's middleware),
// the report leads with a "request id:" header matching it; CLI-recorded
// traces without the attr render no header.
func TestRenderReportRequestID(t *testing.T) {
	events := []obs.Event{
		span("balignd.align", map[string]any{"request_id": "srv-42"}),
		span("align.func", map[string]any{"func": "f", "cities": float64(4), "cost": float64(5)}),
	}
	out := renderReport(events)
	if !strings.HasPrefix(out, "request id: srv-42\n") {
		t.Errorf("missing request id header:\n%s", out)
	}
	// Duplicated attrs (root + children) collapse to one mention.
	events = append(events, span("align.hk", map[string]any{"func": "f", "bound": float64(4), "request_id": "srv-42"}))
	if out := renderReport(events); strings.Count(out, "srv-42") != 1 {
		t.Errorf("request id not deduplicated:\n%s", out)
	}
	// The header also leads the empty-trace message, so a daemon trace
	// with no solver spans still identifies itself.
	empty := renderReport([]obs.Event{span("balignd.align", map[string]any{"request_id": "srv-7"})})
	if !strings.HasPrefix(empty, "request id: srv-7\n") {
		t.Errorf("empty-trace message lost the header:\n%s", empty)
	}
	// No attr, no header.
	if out := renderReport([]obs.Event{span("align.func", map[string]any{"func": "f"})}); strings.HasPrefix(out, "request id") {
		t.Errorf("spurious header:\n%s", out)
	}
}

// TestReportRunEndToEnd drives the in-process pipeline of `balign
// report` on a bundled benchmark and checks the solver and bound
// telemetry join into a plausible table.
func TestReportRunEndToEnd(t *testing.T) {
	events, err := reportRun("", "compress", "", "", -1, "alpha21164", "tsp", 1, 30, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := renderReport(events)
	if !strings.Contains(out, "main") || !strings.Contains(out, "total (") {
		t.Errorf("report missing expected rows:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "-1") {
			t.Errorf("negative cell in report:\n%s", out)
		}
	}
}

// TestReportRunExtTSP: the live-run -algorithm flag reaches the
// registry, and the algorithm column labels every row with the chain
// merger's name.
func TestReportRunExtTSP(t *testing.T) {
	events, err := reportRun("", "compress", "", "", -1, "alpha21164", "exttsp", 1, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := renderReport(events)
	if !strings.Contains(out, "algorithm") || !strings.Contains(out, "exttsp") {
		t.Errorf("report missing exttsp algorithm column:\n%s", out)
	}
	if _, err := reportRun("", "compress", "", "", -1, "alpha21164", "nonesuch", 1, 30, 0, 0); err == nil {
		t.Error("unknown algorithm should fail the live run")
	}
}

// TestEventLinesFiltersHumanOutput pins the `-trace -` pipe contract:
// lines that are not NDJSON events (driver progress chatter) are
// dropped before decoding, while event lines survive intact.
func TestEventLinesFiltersHumanOutput(t *testing.T) {
	mixed := strings.Join([]string{
		`profiled: 42 IR instructions, 7 dynamic branches`,
		`{"type":"span","name":"align.func","attrs":{"func":"f","cities":3,"cost":10}}`,
		``,
		`aligner   control penalty`,
		`  {"type":"span","name":"align.hk","attrs":{"func":"f","bound":9}}`,
	}, "\n")
	events, err := obs.ReadEvents(eventLines(strings.NewReader(mixed)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(events), events)
	}
	out := renderReport(events)
	if !strings.Contains(out, "f") || !strings.Contains(out, "10") || !strings.Contains(out, "9") {
		t.Fatalf("report missing joined data:\n%s", out)
	}
}
