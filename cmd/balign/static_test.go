package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunStaticProfile drives the full CLI path with -profile=static: no
// training input at all, the estimator supplies the edge frequencies.
func TestRunStaticProfile(t *testing.T) {
	if err := run([]string{"-bench", "compress", "-profile", "static", "-aligner", "tsp"}); err != nil {
		t.Fatalf("balign -profile=static: %v", err)
	}
}

// TestRunStaticProfileOut writes the estimated profile as JSON — the
// same wire format as a measured one, so it round-trips through
// -profile-in on a later (measured-mode) run.
func TestRunStaticProfileOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "static.json")
	if err := run([]string{"-bench", "compress", "-profile", "static", "-aligner", "tsp", "-profile-out", out}); err != nil {
		t.Fatalf("writing estimated profile: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "EdgeCounts") {
		t.Error("estimated profile JSON missing EdgeCounts")
	}
	if err := run([]string{"-bench", "compress", "-aligner", "tsp", "-profile-in", out}); err != nil {
		t.Fatalf("re-reading estimated profile: %v", err)
	}
}

func TestRunStaticProfileFlagErrors(t *testing.T) {
	if err := run([]string{"-bench", "compress", "-profile", "oracle"}); err == nil {
		t.Error("unknown -profile value accepted")
	}
	in := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(in, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "compress", "-profile", "static", "-profile-in", in}); err == nil {
		t.Error("-profile=static with -profile-in accepted")
	}
}
