package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPickVetAligners(t *testing.T) {
	cases := map[string]int{"all": 6, "original": 1, "greedy": 1, "tsp": 1, "exttsp": 1}
	for sel, want := range cases {
		as, err := pickVetAligners(sel, 1)
		if err != nil {
			t.Errorf("pickVetAligners(%q): %v", sel, err)
			continue
		}
		if len(as) != want {
			t.Errorf("pickVetAligners(%q) returned %d aligners, want %d", sel, len(as), want)
		}
	}
	if _, err := pickVetAligners("quantum", 1); err == nil {
		t.Error("expected error for unknown aligner")
	}
}

func TestRunVetCleanBenchmark(t *testing.T) {
	// A bundled benchmark must vet clean under every aligner (exit 0).
	if code := runVet([]string{"-bench", "compress", "-hk-iters", "60"}); code != 0 {
		t.Errorf("balign vet -bench compress exited %d, want 0", code)
	}
}

func TestRunVetSourceFile(t *testing.T) {
	src := `
func main(n) {
	var i = 0;
	var acc = 0;
	while (i < n) {
		if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; }
		i = i + 1;
	}
	return acc;
}
`
	path := filepath.Join(t.TempDir(), "vetme.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runVet([]string{"-src", path, "-n", "50", "-aligner", "tsp"}); code != 0 {
		t.Errorf("balign vet -src exited %d, want 0", code)
	}
}

func TestRunVetBadInput(t *testing.T) {
	if code := runVet([]string{"-bench", "nosuch"}); code == 0 {
		t.Error("vet of unknown benchmark should fail")
	}
	if code := runVet([]string{"-bench", "compress", "-model", "vax"}); code == 0 {
		t.Error("vet with unknown model should fail")
	}
	if code := runVet([]string{"-bench", "compress", "-aligner", "quantum"}); code == 0 {
		t.Error("vet with unknown aligner should fail")
	}
}
