package main

import (
	"os"
	"path/filepath"
	"testing"

	"branchalign/internal/ir"
)

func TestPickModel(t *testing.T) {
	for _, name := range []string{"alpha21164", "shallow", "deep"} {
		m, err := pickModel(name)
		if err != nil || m.Name != name {
			t.Errorf("pickModel(%q) = %v, %v", name, m.Name, err)
		}
	}
	if _, err := pickModel("vax"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestPickAligners(t *testing.T) {
	cases := map[string]int{"all": 5, "original": 0, "greedy": 1, "cg": 1, "calder-grunwald": 1, "ap-patch": 1, "patch": 1, "tsp": 1, "exttsp": 1}
	for sel, want := range cases {
		as, err := pickAligners(sel, 1, 2)
		if err != nil {
			t.Errorf("pickAligners(%q): %v", sel, err)
			continue
		}
		if len(as) != want {
			t.Errorf("pickAligners(%q) returned %d aligners, want %d", sel, len(as), want)
		}
	}
	if _, err := pickAligners("quantum", 1, 0); err == nil {
		t.Error("expected error for unknown aligner")
	}
}

func TestLoadProgramFromBench(t *testing.T) {
	mod, inputs, err := loadProgram("", "compress", "txt", "", -1)
	if err != nil {
		t.Fatal(err)
	}
	if mod.FuncIndex("main") < 0 || len(inputs) != 2 {
		t.Errorf("unexpected benchmark load result")
	}
	// Default data set when omitted.
	if _, _, err := loadProgram("", "compress", "", "", -1); err != nil {
		t.Errorf("default data set failed: %v", err)
	}
	if _, _, err := loadProgram("", "nosuch", "", "", -1); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if _, _, err := loadProgram("", "compress", "nosuch", "", -1); err == nil {
		t.Error("expected error for unknown data set")
	}
}

func TestLoadProgramFromSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.mc")
	src := `func main(input[], n) { var i; var s = 0; for (i = 0; i < n; i = i + 1) { s = s + input[i]; } return s; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, inputs, err := loadProgram(path, "", "", "3, 4, 5", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 2 || !inputs[0].IsArray || inputs[1].Scalar != 3 {
		t.Errorf("input binding wrong: %+v", inputs)
	}
	if mod.Funcs[mod.EntryFunc].Params[0] != ir.ParamArray {
		t.Error("entry signature wrong")
	}
	// Scalar-only entry.
	path2 := filepath.Join(dir, "prog2.mc")
	if err := os.WriteFile(path2, []byte(`func main(n) { return n; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, inputs2, err := loadProgram(path2, "", "", "", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs2) != 1 || inputs2[0].Scalar != 42 {
		t.Errorf("scalar binding wrong: %+v", inputs2)
	}
	// Unsupported signature.
	path3 := filepath.Join(dir, "prog3.mc")
	if err := os.WriteFile(path3, []byte(`func main(a, b, c) { return a; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadProgram(path3, "", "", "", -1); err == nil {
		t.Error("expected error for unsupported entry signature")
	}
	// Bad -data element.
	if _, _, err := loadProgram(path, "", "", "1,two,3", -1); err == nil {
		t.Error("expected error for malformed data")
	}
	// Neither -src nor -bench.
	if _, _, err := loadProgram("", "", "", "", -1); err == nil {
		t.Error("expected usage error")
	}
}
