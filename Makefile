# Tier-1 gate for the branchalign repository. `make ci` (or
# `scripts/ci.sh`) is the check every change must keep green:
# formatting, go vet, a full build, and the test suite under the race
# detector.

GO ?= go

.PHONY: ci fmt vet build test race race-obs race-engine vet-benchmarks vet-static bench bench-smoke bench-snapshot metrics-smoke trace-demo serve-demo clean

ci: fmt vet build race-obs race-engine race bench-smoke metrics-smoke vet-static

# gofmt -l prints offending files; fail if any.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# Extra passes over the packages with real concurrency: the telemetry
# registry (spans end on multiple goroutines) and the parallel solver.
race-obs:
	$(GO) test -race -count=2 ./internal/obs/ ./internal/tsp/

# The request-serving stack: engine worker pool / cache / single-flight
# and the balignd HTTP handlers, under the race detector. The core suite
# alone runs ~4.5 minutes per race pass, hence the explicit timeout.
race-engine:
	$(GO) test -race -count=2 -timeout 20m ./internal/engine/ ./cmd/balignd/ ./internal/core/

# Run the pipeline-wide invariant checker over every bundled benchmark.
vet-benchmarks:
	$(GO) run ./cmd/balign vet -all

# Static gates: the benchmark invariant checker plus the determinism
# linter over the repo's own Go sources (see cmd/balignlint).
vet-static: vet-benchmarks
	$(GO) run ./cmd/balignlint

bench:
	$(GO) test -bench=. -benchmem ./...

# Liveness gate over the top-level benchmark suite: run every benchmark
# exactly once so CI catches one that panics, hangs or stops compiling.
# The second pass names the Held-Karp kernel explicitly with -benchmem so
# its allocation profile shows up in CI logs (scripts/ci.sh additionally
# enforces an allocs/op ceiling on it).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 20m .
	$(GO) test -run '^$$' -bench 'BenchmarkHeldKarpBound/synth5000' -benchtime 1x -benchmem -timeout 10m .

# Record a benchmark snapshot to results/BENCH_<LABEL>.json; restrict
# with BENCH=<regex>. Example (the dense-vs-sparse kernel comparison):
#   make bench-snapshot LABEL=baseline "BENCH=//dense"
#   make bench-snapshot LABEL=sparse "BENCH=//sparse"
LABEL ?= local
BENCH ?= .
bench-snapshot:
	scripts/bench.sh $(LABEL) '$(BENCH)'

# Boot balignd, serve one align request, and verify /metrics exposes
# live HTTP/engine/pool families (and that readiness flips on drain).
metrics-smoke:
	scripts/metrics_smoke.sh

# Record a full telemetry trace of a benchmark run and render the
# per-function convergence report from it.
TRACE ?= /tmp/balign-trace.ndjson
trace-demo:
	$(GO) run ./cmd/balign -bench compress -sim -bound -trace $(TRACE)
	$(GO) run ./cmd/balign report -in $(TRACE)

# Start balignd, align one bundled benchmark over HTTP, verify the
# response, and drain the server with SIGTERM.
serve-demo:
	scripts/serve_demo.sh

clean:
	$(GO) clean ./...
