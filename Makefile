# Tier-1 gate for the branchalign repository. `make ci` (or
# `scripts/ci.sh`) is the check every change must keep green:
# formatting, go vet, a full build, and the test suite under the race
# detector.

GO ?= go

.PHONY: ci fmt vet build test race vet-benchmarks bench bench-snapshot clean

ci: fmt vet build race vet-benchmarks

# gofmt -l prints offending files; fail if any.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the pipeline-wide invariant checker over every bundled benchmark.
vet-benchmarks:
	$(GO) run ./cmd/balign vet -all

bench:
	$(GO) test -bench=. -benchmem ./...

# Record a benchmark snapshot to results/BENCH_<LABEL>.json; restrict
# with BENCH=<regex>. Example (the dense-vs-sparse kernel comparison):
#   make bench-snapshot LABEL=baseline "BENCH=//dense"
#   make bench-snapshot LABEL=sparse "BENCH=//sparse"
LABEL ?= local
BENCH ?= .
bench-snapshot:
	scripts/bench.sh $(LABEL) '$(BENCH)'

clean:
	$(GO) clean ./...
