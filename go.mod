module branchalign

go 1.24
