// Sparse-vs-dense kernel benchmarks for the DTSP cost representation.
// Every benchmark family has a "dense" and a "sparse" sub-benchmark over
// the same instance, so the two paths can be snapshotted separately:
//
//	scripts/bench.sh baseline '//dense'   # dense-kernel numbers
//	scripts/bench.sh sparse   '//sparse'  # sparse-kernel numbers
//
// (see results/BENCH_<label>.json; `make bench` wraps the script). The
// synthetic large-function sweep has no dense variants beyond 5000 blocks:
// a dense 20k-block instance alone is 3.2 GB of matrix.
package branchalign

import (
	"fmt"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// largestBundledFunc returns the function with the most basic blocks
// across the bundled suite (xli's VM dispatch loop, 63 blocks) with its
// training profile.
func largestBundledFunc(b *testing.B) (*ir.Func, *interp.FuncProfile) {
	b.Helper()
	var bestF *ir.Func
	var bestP *interp.FuncProfile
	for _, bm := range bench.All() {
		mod, err := bm.Compile()
		if err != nil {
			b.Fatal(err)
		}
		prof := interp.NewProfile(mod)
		if _, err := interp.Run(mod, bm.DataSets[0].Make(), interp.Options{Profile: prof}); err != nil {
			b.Fatal(err)
		}
		for fi, f := range mod.Funcs {
			if bestF == nil || len(f.Blocks) > len(bestF.Blocks) {
				bestF, bestP = f, prof.Funcs[fi]
			}
		}
	}
	return bestF, bestP
}

func synthFunc(b *testing.B, blocks int) (*ir.Func, *interp.FuncProfile) {
	return synthFuncSeeded(b, blocks, int64(blocks)*13)
}

func synthFuncSeeded(b *testing.B, blocks int, seed int64) (*ir.Func, *interp.FuncProfile) {
	b.Helper()
	mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, seed))
	if err != nil {
		b.Fatal(err)
	}
	return mod.Funcs[0], prof.Funcs[0]
}

// BenchmarkMatrixBuild measures DTSP instance construction: the dense
// Θ(V²) reference against the O(V+E) sparse builder.
func BenchmarkMatrixBuild(b *testing.B) {
	m := machine.Alpha21164()
	run := func(name string, f *ir.Func, fp *interp.FuncProfile, dense bool) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if dense {
					align.BuildMatrixForFunc(f, fp, m)
				} else {
					align.BuildSparseMatrixForFunc(f, fp, m)
				}
			}
		})
	}
	f, fp := largestBundledFunc(b)
	run("largest/dense", f, fp, true)
	run("largest/sparse", f, fp, false)
	for _, blocks := range []int{5000, 10000, 20000} {
		f, fp := synthFunc(b, blocks)
		if blocks <= 5000 {
			run(fmt.Sprintf("synth%d/dense", blocks), f, fp, true)
		}
		run(fmt.Sprintf("synth%d/sparse", blocks), f, fp, false)
	}
}

// BenchmarkNeighbors measures candidate-list construction on prebuilt
// instances (the dense path re-sorts every row; the sparse path merges
// exceptions with the k cheapest defaults).
func BenchmarkNeighbors(b *testing.B) {
	m := machine.Alpha21164()
	run := func(name string, c tsp.Costs) {
		forbid := tsp.ForbidCost(c)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tsp.BuildNeighbors(c, tsp.DefaultNeighborCount, forbid)
			}
		})
	}
	f, fp := largestBundledFunc(b)
	sp := align.BuildSparseMatrixForFunc(f, fp, m)
	run("largest/dense", sp.Dense())
	run("largest/sparse", sp)
	for _, blocks := range []int{5000, 10000, 20000} {
		f, fp := synthFunc(b, blocks)
		sp := align.BuildSparseMatrixForFunc(f, fp, m)
		if blocks <= 5000 {
			run(fmt.Sprintf("synth%d/dense", blocks), sp.Dense())
		}
		run(fmt.Sprintf("synth%d/sparse", blocks), sp)
	}
}

// BenchmarkSolveSmall runs the paper's full multi-start protocol on every
// function of the compress benchmark (all small, the common case) — the
// guard that the Costs interface indirection does not regress
// small-function solves.
func BenchmarkSolveSmall(b *testing.B) {
	m := machine.Alpha21164()
	bm, err := bench.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	mod, err := bm.Compile()
	if err != nil {
		b.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, bm.DataSets[0].Make(), interp.Options{Profile: prof}); err != nil {
		b.Fatal(err)
	}
	var dense []*tsp.Matrix
	var sparse []*tsp.SparseMatrix
	for fi, f := range mod.Funcs {
		if len(f.Blocks) < 2 {
			continue
		}
		sp := align.BuildSparseMatrixForFunc(f, prof.Funcs[fi], m)
		sparse = append(sparse, sp)
		dense = append(dense, sp.Dense())
	}
	opts := tsp.PaperSolveOptions(1)
	b.Run("all/dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, mat := range dense {
				tsp.Solve(mat, opts)
			}
		}
	})
	b.Run("all/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, mat := range sparse {
				tsp.Solve(mat, opts)
			}
		}
	})
}

// BenchmarkHeldKarpBound measures the directed Held-Karp bound: the dense
// reference materializes the 2n×2n symmetric matrix and runs a Θ(n²)
// Prim per subgradient iteration; the sparse path builds the 1-tree
// implicitly in O(E + n log n).
func BenchmarkHeldKarpBound(b *testing.B) {
	m := machine.Alpha21164()
	opts := tsp.HeldKarpOptions{Iterations: 50}
	f, fp := largestBundledFunc(b)
	sp := align.BuildSparseMatrixForFunc(f, fp, m)
	d := sp.Dense()
	b.Run("largest/dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirectedDense(d, opts)
		}
	})
	b.Run("largest/sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirected(sp, opts)
		}
	})
	shortOpts := tsp.HeldKarpOptions{Iterations: 10}
	for _, blocks := range []int{5000, 20000} {
		sf, sfp := synthFunc(b, blocks)
		ssp := align.BuildSparseMatrixForFunc(sf, sfp, m)
		b.Run(fmt.Sprintf("synth%d/sparse", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tsp.HeldKarpDirected(ssp, shortOpts)
			}
		})
	}
}

// BenchmarkLargeSolve runs nearest-neighbor construction plus a bounded
// iterated-3-opt pass on multi-thousand-block synthetic CFGs — the
// whole-solver scaling story the sparse representation exists for. No
// dense variant: the instance alone would be gigabytes.
//
// The /sparse rows run pure 3-opt (DisableOrOpt) — the same move
// sequence every pre-two-level snapshot ran, so they isolate the tour
// data structure's speedup. The /oropt rows run the production default
// (Or-opt interleaved), which converges deeper per iteration and
// therefore spends more time per solve for a better tour.
func BenchmarkLargeSolve(b *testing.B) {
	m := machine.Alpha21164()
	for _, blocks := range []int{5000, 20000} {
		f, fp := synthFunc(b, blocks)
		sp := align.BuildSparseMatrixForFunc(f, fp, m)
		opts := tsp.PaperSolveOptions(1)
		opts.GreedyStarts, opts.NNStarts, opts.IdentityStarts = 0, 1, 0
		opts.MaxIterations = 20
		opts.DisableOrOpt = true
		b.Run(fmt.Sprintf("synth%d/sparse", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tsp.Solve(sp, opts)
			}
		})
		orOpts := opts
		orOpts.DisableOrOpt = false
		b.Run(fmt.Sprintf("synth%d/oropt", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tsp.Solve(sp, orOpts)
			}
		})
	}
}
