package bench

import "branchalign/internal/interp"

// su2corSource is a lattice Monte-Carlo kernel: Metropolis updates of a
// spin ring with an integer acceptance table and periodic measurement
// sweeps — the statistical-mechanics analogue of 089.su2cor. Like the
// original, it has a very low ratio of control penalties to execution
// time (long arithmetic-heavy inner loops), making it the benchmark where
// branch alignment helps least.
const su2corSource = `
// Metropolis sweeps over a ring of +/-1 spins with ferromagnetic
// coupling. Fixed-point acceptance thresholds in a precomputed table.
global lattice[4096];
global accept[16];     // acceptance thresholds indexed by energy delta
global seed;
global accepted;
global rejected;

func lcgNext() {
	seed = seed * 6364136223846793005 + 1442695040888963407;
	var r = (seed >> 17) & 16383;
	return r;
}

func setupAccept(beta) {
	// accept[dE] ~ 16384 * exp(-beta*dE), crude integer decay table.
	var v = 16384;
	var i;
	for (i = 0; i < 16; i = i + 1) {
		accept[i] = v;
		v = (v * 1024) / (1024 + beta * 97);
		if (v < 1) { v = 1; }
	}
	return 0;
}

func energyDelta(i, size) {
	var left = lattice[(i + size - 1) % size];
	var right = lattice[(i + 1) % size];
	// Flipping spin i changes energy by 2 * s_i * (left + right).
	var d = 2 * lattice[i] * (left + right);
	return d;
}

func sweepOnce(size) {
	var flips = 0;
	var i;
	for (i = 0; i < size; i = i + 1) {
		var d = energyDelta(i, size);
		if (d <= 0) {
			lattice[i] = -lattice[i];
			flips = flips + 1;
			accepted = accepted + 1;
		} else {
			var idx = d;
			if (idx > 15) { idx = 15; }
			if (lcgNext() < accept[idx]) {
				lattice[i] = -lattice[i];
				flips = flips + 1;
				accepted = accepted + 1;
			} else {
				rejected = rejected + 1;
			}
		}
	}
	return flips;
}

func magnetization(size) {
	var m = 0;
	var i;
	for (i = 0; i < size; i = i + 1) { m = m + lattice[i]; }
	return m;
}

func correlation(size, dist) {
	var c = 0;
	var i;
	for (i = 0; i < size; i = i + 1) {
		c = c + lattice[i] * lattice[(i + dist) % size];
	}
	return c;
}

func main(input[], n) {
	var sweeps = input[0];
	var size = input[1];
	if (size > 4096) { size = 4096; }
	seed = input[2];
	var beta = input[3];
	setupAccept(beta);
	accepted = 0;
	rejected = 0;
	var i;
	for (i = 0; i < size; i = i + 1) {
		if ((lcgNext() & 1) == 1) { lattice[i] = 1; } else { lattice[i] = -1; }
	}
	var k;
	var totalFlips = 0;
	for (k = 0; k < sweeps; k = k + 1) {
		totalFlips = totalFlips + sweepOnce(size);
		if (k % 4 == 3) {
			out(magnetization(size));
			out(correlation(size, 1));
			out(correlation(size, 7));
		}
	}
	out(accepted);
	out(rejected);
	return totalFlips;
}
`

// Su2cor returns the lattice benchmark with reference ("re") and short
// ("sh") runs.
func Su2cor() *Benchmark {
	return &Benchmark{
		Name:        "su2cor",
		Abbr:        "su2",
		Description: "lattice Monte-Carlo spin updates (cf. 089.su2cor)",
		Source:      su2corSource,
		DataSets: []DataSet{
			{
				Name:        "re",
				Description: "reference: 2048-site ring, 80 sweeps",
				Make: func() []interp.Input {
					return su2Input(80, 2048, 424242, 3)
				},
			},
			{
				Name:        "sh",
				Description: "short: 512-site ring, 16 sweeps, colder",
				Make: func() []interp.Input {
					return su2Input(16, 512, 99991, 7)
				},
			},
		},
	}
}

func su2Input(sweeps, size, seed, beta int64) []interp.Input {
	data := []int64{sweeps, size, seed, beta}
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}
