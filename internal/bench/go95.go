package bench

import "branchalign/internal/interp"

// go95Source is a connect-four-style alpha-beta game searcher: negamax
// with alpha-beta pruning, center-first move ordering, incremental board
// updates and a windowed positional evaluator. It stands in for the
// game-playing benchmark of SPEC95 (099.go) — the paper's future work
// says "We would have preferred to run our algorithm on larger,
// longer-running benchmarks, including those in SPEC95." Search code is
// the worst case for static branch prediction (data-dependent branches
// everywhere), so alignment recovers a smaller fraction here.
const go95Source = `
// Connect-4 on a 7x6 board: negamax + alpha-beta self-play.
global board[49];    // board[col*7 + row]; 0 empty, 1 / 2 players
global heights[7];
global nodes;        // search nodes visited (reported via out)
global cutoffs;      // alpha-beta cutoffs

func drop(col, player) {
	var r = heights[col];
	board[col * 7 + r] = player;
	heights[col] = r + 1;
	return r;
}

func undo(col) {
	var r = heights[col] - 1;
	heights[col] = r;
	board[col * 7 + r] = 0;
	return 0;
}

// lineLen counts consecutive stones of player from (col,row) in
// direction (dc,dr), excluding the origin.
func lineLen(col, row, dc, dr, player) {
	var k = 0;
	var c = col + dc;
	var r = row + dr;
	while (c >= 0 && c < 7 && r >= 0 && r < 6) {
		if (board[c * 7 + r] != player) { break; }
		k = k + 1;
		c = c + dc;
		r = r + dr;
	}
	return k;
}

// winAt reports whether the stone just placed at (col,row) completes
// four in a row.
func winAt(col, row, player) {
	var d;
	for (d = 0; d < 4; d = d + 1) {
		var dc;
		var dr;
		switch (d) {
		case 0: dc = 1; dr = 0;
		case 1: dc = 0; dr = 1;
		case 2: dc = 1; dr = 1;
		default: dc = 1; dr = -1;
		}
		var run = 1 + lineLen(col, row, dc, dr, player) + lineLen(col, row, -dc, -dr, player);
		if (run >= 4) { return 1; }
	}
	return 0;
}

// evalWindow scores one 4-cell window for player: open runs are worth
// quadratically more.
func evalWindow(i0, i1, i2, i3, player) {
	var mine = 0;
	var theirs = 0;
	var other = 3 - player;
	if (board[i0] == player) { mine = mine + 1; }
	if (board[i1] == player) { mine = mine + 1; }
	if (board[i2] == player) { mine = mine + 1; }
	if (board[i3] == player) { mine = mine + 1; }
	if (board[i0] == other) { theirs = theirs + 1; }
	if (board[i1] == other) { theirs = theirs + 1; }
	if (board[i2] == other) { theirs = theirs + 1; }
	if (board[i3] == other) { theirs = theirs + 1; }
	if (mine > 0 && theirs > 0) { return 0; }
	if (mine > 0) { return mine * mine * mine; }
	if (theirs > 0) { return -(theirs * theirs * theirs); }
	return 0;
}

func evalBoard(player) {
	var score = 0;
	var c;
	var r;
	// Horizontal windows.
	for (c = 0; c < 4; c = c + 1) {
		for (r = 0; r < 6; r = r + 1) {
			score = score + evalWindow(c * 7 + r, (c + 1) * 7 + r, (c + 2) * 7 + r, (c + 3) * 7 + r, player);
		}
	}
	// Vertical windows.
	for (c = 0; c < 7; c = c + 1) {
		for (r = 0; r < 3; r = r + 1) {
			score = score + evalWindow(c * 7 + r, c * 7 + r + 1, c * 7 + r + 2, c * 7 + r + 3, player);
		}
	}
	// Diagonal windows (both directions).
	for (c = 0; c < 4; c = c + 1) {
		for (r = 0; r < 3; r = r + 1) {
			score = score + evalWindow(c * 7 + r, (c + 1) * 7 + r + 1, (c + 2) * 7 + r + 2, (c + 3) * 7 + r + 3, player);
			score = score + evalWindow(c * 7 + r + 3, (c + 1) * 7 + r + 2, (c + 2) * 7 + r + 1, (c + 3) * 7 + r, player);
		}
	}
	// Center-column bonus.
	for (r = 0; r < 6; r = r + 1) {
		if (board[3 * 7 + r] == player) { score = score + 3; }
	}
	return score;
}

func orderCol(k) {
	switch (k) {
	case 0: return 3;
	case 1: return 2;
	case 2: return 4;
	case 3: return 1;
	case 4: return 5;
	case 5: return 0;
	default: return 6;
	}
	return 0;
}

// negamax returns the score of the position for player to move.
func negamax(depth, alpha, beta, player) {
	nodes = nodes + 1;
	if (depth == 0) { return evalBoard(player); }
	var best = -1000000;
	var k;
	for (k = 0; k < 7; k = k + 1) {
		var col = orderCol(k);
		if (heights[col] >= 6) { continue; }
		var row = drop(col, player);
		var score;
		if (winAt(col, row, player) == 1) {
			score = 100000 + depth;
		} else {
			score = -negamax(depth - 1, -beta, -alpha, 3 - player);
		}
		undo(col);
		if (score > best) { best = score; }
		if (best > alpha) { alpha = best; }
		if (alpha >= beta) {
			cutoffs = cutoffs + 1;
			break;
		}
	}
	if (best == -1000000) { return 0; }   // board full: draw
	return best;
}

// bestMove picks the move for player at the given depth.
func bestMove(depth, player) {
	var best = -1000000;
	var bestCol = -1;
	var k;
	for (k = 0; k < 7; k = k + 1) {
		var col = orderCol(k);
		if (heights[col] >= 6) { continue; }
		var row = drop(col, player);
		var score;
		if (winAt(col, row, player) == 1) {
			score = 100000 + depth;
		} else {
			score = -negamax(depth - 1, -1000000, 1000000, 3 - player);
		}
		undo(col);
		if (score > best) {
			best = score;
			bestCol = col;
		}
	}
	return bestCol * 1000000 + (best + 500000);
}

func main(input[], n) {
	var depth = input[0];
	var maxTurns = input[1];
	var i;
	for (i = 0; i < 49; i = i + 1) { board[i] = 0; }
	for (i = 0; i < 7; i = i + 1) { heights[i] = 0; }
	nodes = 0;
	cutoffs = 0;
	// Pre-seed the position from the input move list.
	var player = 1;
	for (i = 2; i < n; i = i + 1) {
		var col = input[i] % 7;
		if (col < 0) { col = col + 7; }
		if (heights[col] < 6) {
			drop(col, player);
			player = 3 - player;
		}
	}
	// Self-play.
	var turn;
	var winner = 0;
	for (turn = 0; turn < maxTurns; turn = turn + 1) {
		var packed = bestMove(depth, player);
		var col = packed / 1000000;
		if (col < 0) { break; }   // no legal move: draw
		var score = packed % 1000000 - 500000;
		var row = drop(col, player);
		out(col * 10 + player);
		if (winAt(col, row, player) == 1) {
			winner = player;
			break;
		}
		if (score > 90000) { out(-col - 1); }   // report forced wins found
		player = 3 - player;
	}
	out(winner);
	out(nodes);
	out(cutoffs);
	return nodes;
}
`

// Go95 returns the SPEC95-preview game-search benchmark (not part of
// All(); select it explicitly, e.g. `experiments -benchmarks go95` or
// bench.Extended()).
func Go95() *Benchmark {
	return &Benchmark{
		Name:        "go95",
		Abbr:        "go9",
		Description: "alpha-beta game-tree search, SPEC95 preview (cf. 099.go)",
		Source:      go95Source,
		DataSets: []DataSet{
			{
				Name:        "dp",
				Description: "depth-5 self-play from an empty-ish position",
				Make:        func() []interp.Input { return go95Input(5, 14, []int64{3, 3}) },
			},
			{
				Name:        "sh",
				Description: "depth-3 self-play from a busier position",
				Make:        func() []interp.Input { return go95Input(3, 10, []int64{3, 3, 2, 4, 2, 5}) },
			},
		},
	}
}

func go95Input(depth, turns int64, seedMoves []int64) []interp.Input {
	data := append([]int64{depth, turns}, seedMoves...)
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}

// Extended returns All() plus the SPEC95-preview benchmark.
func Extended() []*Benchmark {
	return append(All(), Go95())
}
