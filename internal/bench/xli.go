package bench

import (
	"fmt"

	"branchalign/internal/interp"
)

// VM opcodes shared between the Mini-C interpreter source below and the
// Go-side assembler. The big dispatch switch is the benchmark's multiway
// ("register") branch, exactly like the bytecode dispatch of 022.li.
const (
	opHalt  = 0
	opPush  = 1 // PUSH imm
	opLoad  = 2 // LOAD frame slot
	opStore = 3 // STORE frame slot
	opAdd   = 4
	opSub   = 5
	opMul   = 6
	opDiv   = 7
	opMod   = 8
	opNeg   = 9
	opJmp   = 10 // JMP addr
	opJz    = 11 // pop; jump if zero
	opJnz   = 12 // pop; jump if nonzero
	opCall  = 13 // CALL addr nargs
	opRet   = 14 // pop result; restore frame; push result
	opDup   = 15
	opLt    = 16
	opLe    = 17
	opEq    = 18
	opNe    = 19
	opGt    = 20
	opGe    = 21
	opOut   = 22
	opAnd   = 23
	opOr    = 24
	opXor   = 25
	opShl   = 26
	opShr   = 27
	opEnter = 28 // ENTER nlocals: reserve zeroed slots
	opDrop  = 29
)

// xliSource is a stack-machine bytecode interpreter: the Mini-C analogue
// of the Lisp interpreter 022.li. Programs arrive as data (input[1..]);
// input[0] is the entry address.
const xliSource = `
// Stack-machine bytecode VM. The dispatch switch is a 30-way multiway
// branch executed once per VM instruction.
global code[4096];
global stack[8192];
global rstack[2048];   // return stack: (retpc, oldfp) pairs
global vmSteps;

func run(entry) {
	var pc = entry;
	var sp = 0;
	var fp = 0;
	var rsp = 0;
	vmSteps = 0;
	while (1) {
		var op = code[pc];
		pc = pc + 1;
		vmSteps = vmSteps + 1;
		switch (op) {
		case 0:
			return sp;
		case 1:
			stack[sp] = code[pc];
			pc = pc + 1;
			sp = sp + 1;
		case 2:
			stack[sp] = stack[fp + code[pc]];
			pc = pc + 1;
			sp = sp + 1;
		case 3:
			sp = sp - 1;
			stack[fp + code[pc]] = stack[sp];
			pc = pc + 1;
		case 4:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] + stack[sp];
		case 5:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] - stack[sp];
		case 6:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] * stack[sp];
		case 7:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] / stack[sp];
		case 8:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] % stack[sp];
		case 9:
			stack[sp - 1] = -stack[sp - 1];
		case 10:
			pc = code[pc];
		case 11:
			sp = sp - 1;
			if (stack[sp] == 0) { pc = code[pc]; } else { pc = pc + 1; }
		case 12:
			sp = sp - 1;
			if (stack[sp] != 0) { pc = code[pc]; } else { pc = pc + 1; }
		case 13:
			rstack[rsp] = pc + 2;
			rstack[rsp + 1] = fp;
			rsp = rsp + 2;
			fp = sp - code[pc + 1];
			pc = code[pc];
		case 14:
			sp = sp - 1;
			var rv = stack[sp];
			sp = fp;
			rsp = rsp - 2;
			fp = rstack[rsp + 1];
			pc = rstack[rsp];
			stack[sp] = rv;
			sp = sp + 1;
		case 15:
			stack[sp] = stack[sp - 1];
			sp = sp + 1;
		case 16:
			sp = sp - 1;
			if (stack[sp - 1] < stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 17:
			sp = sp - 1;
			if (stack[sp - 1] <= stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 18:
			sp = sp - 1;
			if (stack[sp - 1] == stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 19:
			sp = sp - 1;
			if (stack[sp - 1] != stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 20:
			sp = sp - 1;
			if (stack[sp - 1] > stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 21:
			sp = sp - 1;
			if (stack[sp - 1] >= stack[sp]) { stack[sp - 1] = 1; } else { stack[sp - 1] = 0; }
		case 22:
			sp = sp - 1;
			out(stack[sp]);
		case 23:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] & stack[sp];
		case 24:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] | stack[sp];
		case 25:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] ^ stack[sp];
		case 26:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] << stack[sp];
		case 27:
			sp = sp - 1;
			stack[sp - 1] = stack[sp - 1] >> stack[sp];
		case 28:
			var k = code[pc];
			pc = pc + 1;
			while (k > 0) {
				stack[sp] = 0;
				sp = sp + 1;
				k = k - 1;
			}
		case 29:
			sp = sp - 1;
		default:
			out(-424242);
			return -1;
		}
	}
	return 0;
}

func main(input[], n) {
	var i;
	for (i = 1; i < n; i = i + 1) { code[i - 1] = input[i]; }
	run(input[0]);
	out(vmSteps);
	return vmSteps;
}
`

// asm is a tiny bytecode assembler with labels.
type asm struct {
	code   []int64
	labels map[string]int64
	fixups map[int]string
}

func newAsm() *asm {
	return &asm{labels: map[string]int64{}, fixups: map[int]string{}}
}

func (a *asm) label(name string) {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("bench: duplicate VM label %q", name))
	}
	a.labels[name] = int64(len(a.code))
}

func (a *asm) emit(vals ...int64) { a.code = append(a.code, vals...) }

// ref emits a placeholder slot resolved to the label's address.
func (a *asm) ref(name string) {
	a.fixups[len(a.code)] = name
	a.code = append(a.code, -1)
}

func (a *asm) assemble() []int64 {
	for at, name := range a.fixups {
		addr, ok := a.labels[name]
		if !ok {
			panic(fmt.Sprintf("bench: undefined VM label %q", name))
		}
		a.code[at] = addr
	}
	return a.code
}

// newtonProgram computes integer square roots of the given values by
// Newton's method and OUTs each, then halts. It is intentionally a very
// short-running program: the paper's xli.ne data set "runs for a very
// short time; it turns out to be a poor training set".
func newtonProgram(values []int64) []int64 {
	a := newAsm()
	// main: for each value: PUSH v; CALL isqrt 1; OUT
	for _, v := range values {
		a.emit(opPush, v)
		a.emit(opCall)
		a.ref("isqrt")
		a.emit(1)
		a.emit(opOut)
	}
	a.emit(opHalt)

	// isqrt(x): locals x=0, guess=1, next=2
	a.label("isqrt")
	a.emit(opEnter, 2)
	// if x < 2 return x
	a.emit(opLoad, 0, opPush, 2, opLt)
	a.emit(opJz)
	a.ref("isqrt.big")
	a.emit(opLoad, 0, opRet)
	a.label("isqrt.big")
	// guess = x/2
	a.emit(opLoad, 0, opPush, 2, opDiv, opStore, 1)
	a.label("isqrt.loop")
	// next = (guess + x/guess) / 2
	a.emit(opLoad, 1, opLoad, 0, opLoad, 1, opDiv, opAdd, opPush, 2, opDiv, opStore, 2)
	// if next >= guess: return guess
	a.emit(opLoad, 2, opLoad, 1, opGe)
	a.emit(opJz)
	a.ref("isqrt.cont")
	a.emit(opLoad, 1, opRet)
	a.label("isqrt.cont")
	a.emit(opLoad, 2, opStore, 1)
	a.emit(opJmp)
	a.ref("isqrt.loop")
	return a.assemble()
}

// queensProgram counts N-queens solutions with the bitmask recursion,
// running the whole search `repeat` times, and OUTs the solution count
// each time.
func queensProgram(n int64, repeat int) []int64 {
	a := newAsm()
	all := (int64(1) << n) - 1
	for r := 0; r < repeat; r++ {
		// solve(cols=0, ld=0, rd=0, all)
		a.emit(opPush, 0, opPush, 0, opPush, 0, opPush, all)
		a.emit(opCall)
		a.ref("solve")
		a.emit(4)
		a.emit(opOut)
	}
	a.emit(opHalt)

	// solve(cols=0, ld=1, rd=2, all=3) locals: count=4, poss=5, bit=6
	a.label("solve")
	a.emit(opEnter, 3)
	// if cols == all return 1
	a.emit(opLoad, 0, opLoad, 3, opEq)
	a.emit(opJz)
	a.ref("solve.search")
	a.emit(opPush, 1, opRet)
	a.label("solve.search")
	// poss = all ^ ((cols | ld | rd) & all)
	a.emit(opLoad, 3, opLoad, 0, opLoad, 1, opOr, opLoad, 2, opOr, opLoad, 3, opAnd, opXor, opStore, 5)
	a.label("solve.loop")
	// while poss != 0
	a.emit(opLoad, 5)
	a.emit(opJz)
	a.ref("solve.done")
	// bit = poss & -poss
	a.emit(opLoad, 5, opLoad, 5, opNeg, opAnd, opStore, 6)
	// poss = poss ^ bit
	a.emit(opLoad, 5, opLoad, 6, opXor, opStore, 5)
	// count += solve(cols|bit, ((ld|bit)<<1) & all, (rd|bit)>>1, all)
	a.emit(opLoad, 0, opLoad, 6, opOr)                                     // cols|bit
	a.emit(opLoad, 1, opLoad, 6, opOr, opPush, 1, opShl, opLoad, 3, opAnd) // (ld|bit)<<1 & all
	a.emit(opLoad, 2, opLoad, 6, opOr, opPush, 1, opShr)                   // (rd|bit)>>1
	a.emit(opLoad, 3)                                                      // all
	a.emit(opCall)
	a.ref("solve")
	a.emit(4)
	a.emit(opLoad, 4, opAdd, opStore, 4)
	a.emit(opJmp)
	a.ref("solve.loop")
	a.label("solve.done")
	a.emit(opLoad, 4, opRet)
	return a.assemble()
}

// vmInput wraps a program as the benchmark entry input: input[0] is the
// VM entry address (always 0), input[1..] the code image.
func vmInput(code []int64) []interp.Input {
	if len(code) > 4096 {
		panic(fmt.Sprintf("bench: VM program of %d slots exceeds code store", len(code)))
	}
	data := make([]int64, 0, len(code)+1)
	data = append(data, 0)
	data = append(data, code...)
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}

// Xli returns the bytecode-VM benchmark with the 7-queens search ("q7")
// and the deliberately tiny Newton's-method run ("ne").
func Xli() *Benchmark {
	return &Benchmark{
		Name:        "xli",
		Abbr:        "xli",
		Description: "bytecode stack-VM interpreter (cf. 022.li)",
		Source:      xliSource,
		DataSets: []DataSet{
			{
				Name:        "q7",
				Description: "7-queens search, repeated 6 times",
				Make:        func() []interp.Input { return vmInput(queensProgram(7, 6)) },
			},
			{
				Name:        "ne",
				Description: "Newton's method integer sqrt of 12 values (very short run)",
				Make: func() []interp.Input {
					return vmInput(newtonProgram([]int64{
						2, 10, 99, 1024, 5000, 65536, 123456, 999999,
						31337, 7, 444444, 1 << 40,
					}))
				},
			},
		},
	}
}
