package bench

import "branchalign/internal/interp"

// espressoSource is a simplified two-level logic minimizer in the spirit
// of 008.espresso: it greedily expands minterms of the ON-set into prime
// cubes (value/mask pairs), checking containment against the ON-set
// bitmap, and then makes the cover irredundant. The code is dominated by
// data-dependent branching over bit vectors, like the original.
const espressoSource = `
// Greedy cube expansion over an ON-set bitmap (up to 12 variables).
global onset[4096];     // 1 when the minterm is in the ON-set
global covered[4096];   // 1 when some chosen cube covers it
global cubeVal[512];    // chosen cubes: fixed-variable values
global cubeMask[512];   // chosen cubes: 1 bits mark FREE variables
global numCubes;
global fullMask;

// cubeInOnset: is every minterm of (value, freeMask) inside the ON-set?
// Enumerates subsets of freeMask from full down to empty.
func cubeInOnset(value, freeMask) {
	var base = value & (fullMask ^ freeMask);
	var sub = freeMask;
	while (1) {
		if (onset[base | sub] == 0) { return 0; }
		if (sub == 0) { break; }
		sub = (sub - 1) & freeMask;
	}
	return 1;
}

// markCovered flags all minterms of a cube.
func markCovered(value, freeMask) {
	var base = value & (fullMask ^ freeMask);
	var sub = freeMask;
	var newly = 0;
	while (1) {
		if (covered[base | sub] == 0) {
			covered[base | sub] = 1;
			newly = newly + 1;
		}
		if (sub == 0) { break; }
		sub = (sub - 1) & freeMask;
	}
	return newly;
}

// expand grows a minterm into a prime cube by freeing variables one at a
// time (in a rotating order so different minterms expand differently).
func expand(minterm, numVars, start) {
	var freeMask = 0;
	var k;
	for (k = 0; k < numVars; k = k + 1) {
		var v = (start + k) % numVars;
		var bit = 1 << v;
		if ((freeMask & bit) == 0) {
			if (cubeInOnset(minterm, freeMask | bit) == 1) {
				freeMask = freeMask | bit;
			}
		}
	}
	return freeMask;
}

// popcount of the low 12 bits.
func pop12(x) {
	var c = 0;
	var i;
	for (i = 0; i < 12; i = i + 1) {
		c = c + ((x >> i) & 1);
	}
	return c;
}

func main(input[], n) {
	var numVars = input[0];
	if (numVars > 12) { numVars = 12; }
	fullMask = (1 << numVars) - 1;
	var space = 1 << numVars;
	var i;
	for (i = 0; i < space; i = i + 1) {
		onset[i] = 0;
		covered[i] = 0;
	}
	var onCount = 0;
	for (i = 1; i < n; i = i + 1) {
		var m = input[i] & fullMask;
		if (onset[m] == 0) {
			onset[m] = 1;
			onCount = onCount + 1;
		}
	}
	numCubes = 0;
	var literalsSaved = 0;
	for (i = 0; i < space; i = i + 1) {
		if (onset[i] == 1 && covered[i] == 0) {
			var freeMask = expand(i, numVars, i % numVars);
			markCovered(i, freeMask);
			cubeVal[numCubes] = i & (fullMask ^ freeMask);
			cubeMask[numCubes] = freeMask;
			numCubes = numCubes + 1;
			literalsSaved = literalsSaved + pop12(freeMask);
			if (numCubes >= 512) { break; }
		}
	}
	// Irredundancy pass: drop cubes fully covered by the union of the
	// others (re-mark coverage without each candidate in turn). Bounded
	// to the first 32 candidates to keep the pass quadratic-but-small.
	var kept = numCubes;
	if (kept > 32) { kept = numCubes - 32; }
	if (kept == numCubes) { kept = 0; }
	var c;
	var limit = numCubes;
	if (limit > 32) { limit = 32; }
	for (c = 0; c < limit; c = c + 1) {
		// Clear coverage and re-mark with every cube except c.
		for (i = 0; i < space; i = i + 1) { covered[i] = 0; }
		var d;
		for (d = 0; d < numCubes; d = d + 1) {
			if (d != c && cubeMask[d] >= 0) {
				markCovered(cubeVal[d], cubeMask[d]);
			}
		}
		// Is any minterm of c uncovered?
		var needed = 0;
		var base = cubeVal[c];
		var sub = cubeMask[c];
		while (1) {
			if (covered[base | sub] == 0) { needed = 1; break; }
			if (sub == 0) { break; }
			sub = (sub - 1) & cubeMask[c];
		}
		if (needed == 0) {
			cubeMask[c] = -1;   // drop
		} else {
			kept = kept + 1;
		}
	}
	out(onCount);
	out(numCubes);
	out(kept);
	out(literalsSaved);
	return kept;
}
`

// Espresso returns the cover-minimizer benchmark with a dense 11-variable
// ON-set ("ti") and a sparse structured 10-variable one ("tl"), like the
// paper's espresso ti / tial inputs.
func Espresso() *Benchmark {
	return &Benchmark{
		Name:        "espresso",
		Abbr:        "esp",
		Description: "two-level boolean cover minimizer over cube bitmaps (cf. 008.espresso)",
		Source:      espressoSource,
		DataSets: []DataSet{
			{
				Name:        "ti",
				Description: "11 variables, dense random ON-set",
				Make:        func() []interp.Input { return espressoInput(11, 1400, 71, false) },
			},
			{
				Name:        "tl",
				Description: "10 variables, structured sparse ON-set",
				Make:        func() []interp.Input { return espressoInput(10, 420, 83, true) },
			},
		},
	}
}

func espressoInput(numVars, count int64, seed uint64, structured bool) []interp.Input {
	rng := newLCG(seed)
	space := int64(1) << numVars
	data := make([]int64, 0, count+1)
	data = append(data, numVars)
	for int64(len(data)) < count+1 {
		m := rng.intn(space)
		if structured {
			// Clear two low bits half the time: creates expandable cubes.
			if rng.intn(2) == 0 {
				m &^= 3
			}
			// Bias toward a subspace.
			m |= 1 << (numVars - 1)
		}
		data = append(data, m)
	}
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}
