// Package bench provides the benchmark suite for the branch-alignment
// experiments: six Mini-C programs mirroring the archetypes of the
// paper's SPEC92 subset (Table 1), each with two input data sets so that
// training and testing can use different inputs (the cross-validation
// study), plus a synthetic CFG generator for stress and property tests.
//
// The programs are real algorithms, not microbenchmarks: an LZW
// compressor (026.compress), a fixed-point relaxation solver (015.doduc),
// a boolean-equation-to-truth-table translator with quicksort
// (023.eqntott), a two-level cover minimizer over cube bitmaps
// (008.espresso), a lattice Monte-Carlo kernel (089.su2cor), and a
// bytecode virtual machine running Newton's method and the N-queens
// problem (022.li, whose "ne" input is deliberately tiny — the paper
// found it to be a poor training set, and so does this reproduction).
package bench

import (
	"fmt"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
)

// DataSet is one input for a benchmark.
type DataSet struct {
	// Name abbreviates the data set (paper style: "re", "sm", "q7", ...).
	Name string
	// Description says what the input models.
	Description string
	// Make builds the entry-function inputs. Deterministic.
	Make func() []interp.Input
}

// Benchmark is a Mini-C program with its data sets.
type Benchmark struct {
	// Name is the full benchmark name ("compress").
	Name string
	// Abbr is the paper-style three-letter abbreviation ("com").
	Abbr string
	// Description summarizes the workload.
	Description string
	// Source is the Mini-C program text.
	Source string
	// DataSets lists at least two inputs; DataSets[0] is the reference
	// (larger) input.
	DataSets []DataSet
}

// Compile parses, checks and lowers the benchmark to IR.
func (b *Benchmark) Compile() (*ir.Module, error) {
	prog, err := minic.Parse(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return mod, nil
}

// DataSet returns the named data set or an error.
func (b *Benchmark) DataSet(name string) (*DataSet, error) {
	for i := range b.DataSets {
		if b.DataSets[i].Name == name {
			return &b.DataSets[i], nil
		}
	}
	return nil, fmt.Errorf("bench %s: no data set %q", b.Name, name)
}

// All returns the full suite in the paper's Table 1 order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress(),
		Doduc(),
		Eqntott(),
		Espresso(),
		Su2cor(),
		Xli(),
	}
}

// ByName returns the benchmark with the given name or abbreviation,
// searching the extended set (so the SPEC95-preview benchmark is
// selectable even though All() excludes it).
func ByName(name string) (*Benchmark, error) {
	for _, b := range Extended() {
		if b.Name == name || b.Abbr == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// lcg is a tiny deterministic generator for input synthesis (Go-side
// only; the benchmarks themselves are deterministic Mini-C).
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*2862933555777941757 + 3037000493} }

func (r *lcg) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 17
}

// intn returns a value in [0, n).
func (r *lcg) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}
