package bench

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func TestSuiteShape(t *testing.T) {
	suite := All()
	if len(suite) != 6 {
		t.Fatalf("suite has %d benchmarks, want 6", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if b.Name == "" || b.Abbr == "" || b.Description == "" {
			t.Errorf("benchmark %+v missing metadata", b)
		}
		if seen[b.Name] || seen[b.Abbr] {
			t.Errorf("duplicate benchmark name/abbr %s/%s", b.Name, b.Abbr)
		}
		seen[b.Name] = true
		seen[b.Abbr] = true
		if len(b.DataSets) < 2 {
			t.Errorf("%s: need >= 2 data sets for cross-validation, got %d", b.Name, len(b.DataSets))
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("compress"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("xli"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("su2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

// TestAllBenchmarksCompileAndRun executes every benchmark on every data
// set and checks that the workload is substantial enough to profile
// (Table 1's "executed branch instructions" column must be nontrivial).
func TestAllBenchmarksCompileAndRun(t *testing.T) {
	for _, b := range All() {
		mod, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := mod.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", b.Name, err)
		}
		for _, ds := range b.DataSets {
			prof := interp.NewProfile(mod)
			res, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof, MaxSteps: 1 << 30})
			if err != nil {
				t.Fatalf("%s.%s: run: %v", b.Name, ds.Name, err)
			}
			if res.DynBranches() < 1000 {
				t.Errorf("%s.%s: only %d dynamic branches; workload too small", b.Name, ds.Name, res.DynBranches())
			}
			if len(res.Output) == 0 {
				t.Errorf("%s.%s: no output produced", b.Name, ds.Name)
			}
			if prof.BranchSitesTouched(mod) < 5 {
				t.Errorf("%s.%s: only %d branch sites touched", b.Name, ds.Name, prof.BranchSitesTouched(mod))
			}
		}
	}
}

// TestDataSetsDiffer: the two data sets of each benchmark must exercise
// the program differently (different dynamic branch counts), or
// cross-validation would be vacuous.
func TestDataSetsDiffer(t *testing.T) {
	for _, b := range All() {
		mod, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		var counts []int64
		for _, ds := range b.DataSets {
			res, err := interp.Run(mod, ds.Make(), interp.Options{MaxSteps: 1 << 30})
			if err != nil {
				t.Fatalf("%s.%s: %v", b.Name, ds.Name, err)
			}
			counts = append(counts, res.DynBranches())
		}
		if counts[0] == counts[1] {
			t.Errorf("%s: both data sets execute exactly %d branches; suspicious", b.Name, counts[0])
		}
	}
}

// TestXliNeIsShortRunning pins the paper's observation: xli.ne runs for a
// very short time relative to xli.q7 (and is therefore a poor training
// input).
func TestXliNeIsShortRunning(t *testing.T) {
	b := Xli()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	q7, err := b.DataSet("q7")
	if err != nil {
		t.Fatal(err)
	}
	ne, err := b.DataSet("ne")
	if err != nil {
		t.Fatal(err)
	}
	resQ7, err := interp.Run(mod, q7.Make(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resNe, err := interp.Run(mod, ne.Make(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resNe.DynBranches()*20 > resQ7.DynBranches() {
		t.Errorf("xli.ne (%d branches) should be far shorter than xli.q7 (%d)",
			resNe.DynBranches(), resQ7.DynBranches())
	}
}

// TestQueensCountsAreCorrect checks the VM against known N-queens
// solution counts, validating the interpreter-in-interpreter end to end.
func TestQueensCountsAreCorrect(t *testing.T) {
	b := Xli()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	known := map[int64]int64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, want := range known {
		res, err := interp.Run(mod, vmInput(queensProgram(n, 1)), interp.Options{})
		if err != nil {
			t.Fatalf("queens(%d): %v", n, err)
		}
		// Output: [solutions, vmSteps]
		if len(res.Output) != 2 || res.Output[0] != want {
			t.Errorf("queens(%d) = %v, want %d solutions", n, res.Output, want)
		}
	}
}

// TestNewtonComputesIntegerSqrt validates the other VM program.
func TestNewtonComputesIntegerSqrt(t *testing.T) {
	b := Xli()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{0, 1, 2, 3, 4, 15, 16, 17, 99, 100, 1 << 20}
	res, err := interp.Run(mod, vmInput(newtonProgram(vals)), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(vals)+1 {
		t.Fatalf("got %d outputs, want %d", len(res.Output), len(vals)+1)
	}
	for i, v := range vals {
		got := res.Output[i]
		if got*got > v || (got+1)*(got+1) <= v {
			t.Errorf("isqrt(%d) = %d", v, got)
		}
	}
}

// TestSemanticsPreservedUnderAnyLayout is the strongest system-level
// invariant: program output must be identical under original, greedy and
// TSP layouts (layout is pure reordering; the interpreter executes the
// CFG, so this validates that alignment never touches semantics-bearing
// state).
func TestSemanticsPreservedUnderAnyLayout(t *testing.T) {
	// The interpreter executes CFG successors directly, so layout cannot
	// change outputs by construction; what CAN change outputs is a buggy
	// aligner mutating the module. Run aligners, then re-run the program
	// and compare outputs.
	for _, b := range All()[:3] { // three suffice; the rest run in slower suites
		mod, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		ds := b.DataSets[1]
		before, err := interp.Run(mod, ds.Make(), interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prof := interp.NewProfile(mod)
		if _, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof}); err != nil {
			t.Fatal(err)
		}
		m := machine.Alpha21164()
		for _, a := range []align.Aligner{align.PettisHansen{}, align.NewTSP(1)} {
			l := a.Align(context.Background(), mod, prof, m)
			if err := l.Validate(mod); err != nil {
				t.Fatalf("%s/%s: %v", b.Name, a.Name(), err)
			}
		}
		after, err := interp.Run(mod, ds.Make(), interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if before.Ret != after.Ret || len(before.Output) != len(after.Output) {
			t.Fatalf("%s: module mutated by alignment", b.Name)
		}
		for i := range before.Output {
			if before.Output[i] != after.Output[i] {
				t.Fatalf("%s: output diverged at %d", b.Name, i)
			}
		}
	}
}

func TestSynthesize(t *testing.T) {
	for _, blocks := range []int{1, 2, 10, 80} {
		mod, prof, err := Synthesize(DefaultSynth(blocks, int64(blocks)))
		if err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		if len(mod.Funcs[0].Blocks) != blocks {
			t.Errorf("blocks=%d: got %d", blocks, len(mod.Funcs[0].Blocks))
		}
		if len(prof.Funcs[0].BlockCounts) != blocks {
			t.Errorf("profile shape mismatch")
		}
	}
	if _, _, err := Synthesize(SynthConfig{}); err == nil {
		t.Error("expected error for zero blocks")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, pa, err := Synthesize(DefaultSynth(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := Synthesize(DefaultSynth(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Funcs[0].Body() != b.Funcs[0].Body() {
		t.Error("synthetic modules differ across identical seeds")
	}
	for bi := range pa.Funcs[0].EdgeCounts {
		for si := range pa.Funcs[0].EdgeCounts[bi] {
			if pa.Funcs[0].EdgeCounts[bi][si] != pb.Funcs[0].EdgeCounts[bi][si] {
				t.Fatal("synthetic profiles differ across identical seeds")
			}
		}
	}
}

// TestSynthAlignmentEndToEnd runs the whole alignment stack over
// synthetic CFGs of varying size, checking validity and improvement.
func TestSynthAlignmentEndToEnd(t *testing.T) {
	m := machine.Alpha21164()
	for _, blocks := range []int{5, 25, 60} {
		mod, prof, err := Synthesize(DefaultSynth(blocks, int64(blocks)*31))
		if err != nil {
			t.Fatal(err)
		}
		orig := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, prof, m), prof, m)
		tspL := align.NewTSP(1).Align(context.Background(), mod, prof, m)
		if err := tspL.Validate(mod); err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		tspPen := layout.ModulePenalty(mod, tspL, prof, m)
		if tspPen > orig {
			t.Errorf("blocks=%d: TSP %d worse than original %d", blocks, tspPen, orig)
		}
	}
}
