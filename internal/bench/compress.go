package bench

import "branchalign/internal/interp"

// compressSource is a Lempel-Ziv-Welch compressor: a hash-table
// dictionary with linear probing, code emission through out(), and a
// dictionary flush when the code space fills. It is the analogue of
// 026.compress (a Lempel-Ziv compressor run on program text and on movie
// data in the paper).
const compressSource = `
// LZW compressor with a linear-probed hash dictionary.
global hkey[16384];   // packed (prefix*256 + ch + 1); 0 = empty slot
global hval[16384];
global ncodes;        // next code to assign (256.. up to maxcodes)
global probes;        // total probe count (dictionary pressure metric)

func hashIdx(prefix, ch) {
	var h = (prefix * 31 + ch * 7 + 17) % 16384;
	if (h < 0) { h = h + 16384; }
	return h;
}

func lookup(prefix, ch) {
	var key = prefix * 256 + ch + 1;
	var h = hashIdx(prefix, ch);
	while (1) {
		if (hkey[h] == 0) { return -1; }
		probes = probes + 1;
		if (hkey[h] == key) { return hval[h]; }
		h = h + 1;
		if (h >= 16384) { h = 0; }
	}
	return -1;
}

func insert(prefix, ch, code) {
	var key = prefix * 256 + ch + 1;
	var h = hashIdx(prefix, ch);
	while (hkey[h] != 0) {
		h = h + 1;
		if (h >= 16384) { h = 0; }
	}
	hkey[h] = key;
	hval[h] = code;
	return 0;
}

func reset() {
	var i;
	for (i = 0; i < 16384; i = i + 1) {
		hkey[i] = 0;
		hval[i] = 0;
	}
	ncodes = 256;
	return 0;
}

func byteAt(input[], i) {
	var v = input[i] % 256;
	if (v < 0) { v = v + 256; }
	return v;
}

func main(input[], n) {
	var emitted = 0;
	reset();
	probes = 0;
	if (n == 0) { return 0; }
	var prefix = byteAt(input, 0);
	var i;
	for (i = 1; i < n; i = i + 1) {
		var ch = byteAt(input, i);
		var code = lookup(prefix, ch);
		if (code >= 0) {
			prefix = code;
		} else {
			out(prefix);
			emitted = emitted + 1;
			if (ncodes < 4096) {
				insert(prefix, ch, ncodes);
				ncodes = ncodes + 1;
			} else {
				reset();
			}
			prefix = ch;
		}
	}
	out(prefix);
	out(probes);
	return emitted + 1;
}
`

// Compress returns the LZW benchmark with a text-like input ("txt",
// repetitive, compresses well) and a movie-like input ("mov", noisy,
// stresses the dictionary miss path), mirroring the paper's program-text
// and MPEG data sets.
func Compress() *Benchmark {
	return &Benchmark{
		Name:        "compress",
		Abbr:        "com",
		Description: "Lempel-Ziv-Welch compressor (cf. 026.compress)",
		Source:      compressSource,
		DataSets: []DataSet{
			{
				Name:        "txt",
				Description: "program-text-like stream: small alphabet, repeated phrases",
				Make:        func() []interp.Input { return compressTextInput(90000, 101) },
			},
			{
				Name:        "mov",
				Description: "movie-like stream: wide alphabet, weak repetition",
				Make:        func() []interp.Input { return compressNoisyInput(60000, 202) },
			},
		},
	}
}

// compressTextInput builds a repetitive stream: phrases drawn from a
// small pool are concatenated with occasional mutations, like source
// text.
func compressTextInput(n int, seed uint64) []interp.Input {
	rng := newLCG(seed)
	// A pool of short "words" over a 32-symbol alphabet.
	words := make([][]int64, 48)
	for i := range words {
		w := make([]int64, 3+rng.intn(7))
		for j := range w {
			w[j] = rng.intn(32) + 97
		}
		words[i] = w
	}
	data := make([]int64, 0, n)
	for len(data) < n {
		w := words[rng.intn(int64(len(words)))]
		data = append(data, w...)
		data = append(data, 32) // separator
		if rng.intn(20) == 0 {
			data = append(data, rng.intn(256)) // rare mutation
		}
	}
	data = data[:n]
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(n))}
}

// compressNoisyInput builds a weakly correlated wide-alphabet stream.
func compressNoisyInput(n int, seed uint64) []interp.Input {
	rng := newLCG(seed)
	data := make([]int64, n)
	prev := int64(0)
	for i := range data {
		// First-order correlation with heavy noise, like dithered video.
		prev = (prev + rng.intn(97) - 48) & 255
		data[i] = prev
	}
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(n))}
}
