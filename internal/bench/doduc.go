package bench

import "branchalign/internal/interp"

// doducSource is a fixed-point successive-over-relaxation solver on a 2D
// grid with clamping and convergence tests — the numeric-kernel analogue
// of 015.doduc (a nuclear-reactor thermohydraulic simulation). Values are
// fixed-point with 10 fractional bits.
const doducSource = `
// Fixed-point (x1024) over-relaxed Laplace solver on a size x size grid.
global grid[4096];    // up to 64x64
global scratch[4096];
global sweepsDone;

func at(r, c, size) { return r * size + c; }

func setupBoundary(input[], size) {
	var i;
	for (i = 0; i < size; i = i + 1) {
		grid[at(0, i, size)] = input[2 + (i % 16)] * 1024;
		grid[at(size - 1, i, size)] = input[2 + ((i + 5) % 16)] * 512;
		grid[at(i, 0, size)] = input[2 + ((i + 9) % 16)] * 256;
		grid[at(i, size - 1, size)] = 0;
	}
	return 0;
}

func sweep(size, omega) {
	var r;
	var c;
	var maxDelta = 0;
	for (r = 1; r < size - 1; r = r + 1) {
		for (c = 1; c < size - 1; c = c + 1) {
			var avg = (grid[at(r - 1, c, size)] + grid[at(r + 1, c, size)]
				+ grid[at(r, c - 1, size)] + grid[at(r, c + 1, size)]) / 4;
			var old = grid[at(r, c, size)];
			var nv = old + ((avg - old) * omega) / 1024;
			if (nv > 8000000) { nv = 8000000; }
			if (nv < -8000000) { nv = -8000000; }
			scratch[at(r, c, size)] = nv;
			var d = nv - old;
			if (d < 0) { d = -d; }
			if (d > maxDelta) { maxDelta = d; }
		}
	}
	for (r = 1; r < size - 1; r = r + 1) {
		for (c = 1; c < size - 1; c = c + 1) {
			grid[at(r, c, size)] = scratch[at(r, c, size)];
		}
	}
	return maxDelta;
}

func checksum(size) {
	var r;
	var c;
	var sum = 0;
	for (r = 0; r < size; r = r + 1) {
		for (c = 0; c < size; c = c + 1) {
			sum = sum ^ (grid[at(r, c, size)] + r * 31 + c);
		}
	}
	return sum;
}

func main(input[], n) {
	var iters = input[0];
	var size = input[1];
	if (size > 64) { size = 64; }
	if (size < 4) { size = 4; }
	setupBoundary(input, size);
	sweepsDone = 0;
	var k;
	var delta = 0;
	for (k = 0; k < iters; k = k + 1) {
		delta = sweep(size, 922);
		sweepsDone = sweepsDone + 1;
		if (delta < 2) { break; }   // converged
		if (k % 8 == 7) { out(delta); }
	}
	out(sweepsDone);
	out(checksum(size));
	return delta;
}
`

// Doduc returns the relaxation-solver benchmark with reference ("re",
// large grid) and small ("sm") inputs, like the paper's SPEC ref / small
// pair.
func Doduc() *Benchmark {
	return &Benchmark{
		Name:        "doduc",
		Abbr:        "dod",
		Description: "fixed-point over-relaxation solver (cf. 015.doduc)",
		Source:      doducSource,
		DataSets: []DataSet{
			{
				Name:        "re",
				Description: "reference: 56x56 grid, up to 90 sweeps",
				Make:        func() []interp.Input { return doducInput(90, 56, 11) },
			},
			{
				Name:        "sm",
				Description: "small: 24x24 grid, up to 30 sweeps",
				Make:        func() []interp.Input { return doducInput(30, 24, 23) },
			},
		},
	}
}

func doducInput(iters, size int64, seed uint64) []interp.Input {
	rng := newLCG(seed)
	data := make([]int64, 2+16)
	data[0] = iters
	data[1] = size
	for i := 2; i < len(data); i++ {
		data[i] = rng.intn(2000) - 700
	}
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}
