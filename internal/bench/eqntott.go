package bench

import "branchalign/internal/interp"

// eqntottSource translates boolean equations (postfix token streams) into
// truth tables and canonicalizes them by quicksort — the analogue of
// 023.eqntott, whose hot code was exactly this kind of comparison-heavy
// sorting over bit vectors.
const eqntottSource = `
// Postfix boolean evaluator + truth-table builder + quicksort.
global stack[128];
global table[32768];    // packed (output << 20) | assignment
global minterms;

// Token encoding: 0..19 variable index; 256 AND, 257 OR, 258 NOT,
// 259 XOR, 260 NAND.
func evalExpr(expr[], len, assignment) {
	var sp = 0;
	var i;
	for (i = 0; i < len; i = i + 1) {
		var t = expr[i];
		if (t < 256) {
			stack[sp] = (assignment >> t) & 1;
			sp = sp + 1;
		} else {
			var b;
			var a;
			switch (t) {
			case 256:
				sp = sp - 1;
				b = stack[sp];
				a = stack[sp - 1];
				stack[sp - 1] = a & b;
			case 257:
				sp = sp - 1;
				b = stack[sp];
				a = stack[sp - 1];
				stack[sp - 1] = a | b;
			case 258:
				stack[sp - 1] = 1 - stack[sp - 1];
			case 259:
				sp = sp - 1;
				b = stack[sp];
				a = stack[sp - 1];
				stack[sp - 1] = a ^ b;
			case 260:
				sp = sp - 1;
				b = stack[sp];
				a = stack[sp - 1];
				stack[sp - 1] = 1 - (a & b);
			default:
				out(-999);
			}
		}
	}
	return stack[0];
}

func buildTable(expr[], len, numVars) {
	var rows = 1 << numVars;
	var a;
	minterms = 0;
	for (a = 0; a < rows; a = a + 1) {
		var v = evalExpr(expr, len, a);
		table[a] = (v << 20) | a;
		if (v == 1) { minterms = minterms + 1; }
	}
	return rows;
}

// Quicksort with median-of-three pivot and insertion sort below a
// threshold (like production qsort).
func insertionSort(lo, hi) {
	var i;
	for (i = lo + 1; i <= hi; i = i + 1) {
		var key = table[i];
		var j = i - 1;
		while (j >= lo && table[j] > key) {
			table[j + 1] = table[j];
			j = j - 1;
		}
		table[j + 1] = key;
	}
	return 0;
}

func qsort(lo, hi) {
	while (hi - lo > 12) {
		var mid = lo + (hi - lo) / 2;
		// Median of three.
		if (table[mid] < table[lo]) {
			var t1 = table[mid]; table[mid] = table[lo]; table[lo] = t1;
		}
		if (table[hi] < table[lo]) {
			var t2 = table[hi]; table[hi] = table[lo]; table[lo] = t2;
		}
		if (table[hi] < table[mid]) {
			var t3 = table[hi]; table[hi] = table[mid]; table[mid] = t3;
		}
		var pivot = table[mid];
		var i = lo;
		var j = hi;
		while (i <= j) {
			while (table[i] < pivot) { i = i + 1; }
			while (table[j] > pivot) { j = j - 1; }
			if (i <= j) {
				var t = table[i];
				table[i] = table[j];
				table[j] = t;
				i = i + 1;
				j = j - 1;
			}
		}
		// Recurse on the smaller side, loop on the larger.
		if (j - lo < hi - i) {
			qsort(lo, j);
			lo = i;
		} else {
			qsort(i, hi);
			hi = j;
		}
	}
	insertionSort(lo, hi);
	return 0;
}

func main(input[], n) {
	var numVars = input[0];
	var exprLen = input[1];
	var expr[512];
	var i;
	for (i = 0; i < exprLen; i = i + 1) { expr[i] = input[2 + i]; }
	var rows = buildTable(expr, exprLen, numVars);
	qsort(0, rows - 1);
	// Emit a canonical digest: transition count and a sample of rows.
	var transitions = 0;
	for (i = 1; i < rows; i = i + 1) {
		if ((table[i] >> 20) != (table[i - 1] >> 20)) {
			transitions = transitions + 1;
		}
	}
	out(minterms);
	out(transitions);
	for (i = 0; i < rows; i = i + 256) { out(table[i]); }
	return minterms;
}
`

// Eqntott returns the truth-table benchmark with two different equation
// sets ("fx": fixed-to-floating-point encoder equations analogue, "ip":
// a different random formula family).
func Eqntott() *Benchmark {
	return &Benchmark{
		Name:        "eqntott",
		Abbr:        "eqn",
		Description: "boolean equations to truth tables with quicksort (cf. 023.eqntott)",
		Source:      eqntottSource,
		DataSets: []DataSet{
			{
				Name:        "fx",
				Description: "13-variable AND/OR-heavy formula",
				Make:        func() []interp.Input { return eqntottInput(13, 200, 31, false) },
			},
			{
				Name:        "ip",
				Description: "12-variable XOR/NAND-heavy formula",
				Make:        func() []interp.Input { return eqntottInput(12, 170, 47, true) },
			},
		},
	}
}

// eqntottInput synthesizes a random postfix formula guaranteed to be
// well-formed: it tracks the stack depth while emitting tokens.
func eqntottInput(numVars, exprLen int64, seed uint64, xorHeavy bool) []interp.Input {
	rng := newLCG(seed)
	expr := make([]int64, 0, exprLen)
	depth := 0
	for int64(len(expr)) < exprLen-1 {
		emitVar := depth < 2 || rng.intn(5) < 2
		if int64(len(expr))+int64(depth) >= exprLen-1 {
			emitVar = false // wind the stack down
		}
		if emitVar {
			expr = append(expr, rng.intn(numVars))
			depth++
			continue
		}
		if rng.intn(6) == 0 {
			expr = append(expr, 258) // NOT
			continue
		}
		var op int64
		if xorHeavy {
			op = []int64{259, 260, 256, 259}[rng.intn(4)]
		} else {
			op = []int64{256, 257, 256, 257, 259}[rng.intn(5)]
		}
		expr = append(expr, op)
		depth--
	}
	for depth > 1 {
		expr = append(expr, 257) // OR the remainder together
		depth--
	}
	data := make([]int64, 0, 2+len(expr))
	data = append(data, numVars, int64(len(expr)))
	data = append(data, expr...)
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
}
