package bench

import (
	"fmt"
	"math/rand"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

// SynthConfig controls the synthetic CFG generator used by stress and
// property tests (and by the scalability benches): it emits a random but
// well-formed IR function together with a synthetic edge profile, without
// needing a Mini-C program or an interpreter run.
type SynthConfig struct {
	// Blocks is the number of basic blocks (>= 1).
	Blocks int
	// CondFrac, SwitchFrac are per-mille odds that a block ends in a
	// conditional or multiway branch (the rest are unconditional or
	// returns).
	CondFrac   int
	SwitchFrac int
	// MaxSwitchWays bounds switch fan-out.
	MaxSwitchWays int
	// HotSkew shapes edge counts: higher values concentrate frequency on
	// one successor (like real profiles).
	HotSkew int
	// MaxCount is the per-edge count ceiling.
	MaxCount int64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultSynth returns a profile-realistic generator configuration.
func DefaultSynth(blocks int, seed int64) SynthConfig {
	return SynthConfig{
		Blocks:        blocks,
		CondFrac:      550,
		SwitchFrac:    80,
		MaxSwitchWays: 6,
		HotSkew:       4,
		MaxCount:      100000,
		Seed:          seed,
	}
}

// Synthesize builds a single-function module and a matching synthetic
// profile. Every block is reachable in the CFG-forward sense (successors
// are drawn from the whole function, with a bias toward nearby blocks),
// and edge counts respect no flow conservation — branch alignment does
// not require it, only per-edge frequencies.
func Synthesize(cfg SynthConfig) (*ir.Module, *interp.Profile, error) {
	if cfg.Blocks < 1 {
		return nil, nil, fmt.Errorf("bench: Synthesize needs at least one block")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := ir.NewFuncBuilder("synth", nil)
	r := b.NewReg()
	blocks := make([]int, cfg.Blocks)
	blocks[0] = 0
	for i := 1; i < cfg.Blocks; i++ {
		blocks[i] = b.NewBlock(fmt.Sprintf("s%d", i))
	}
	pickTarget := func(from int) int {
		// Bias toward nearby blocks (realistic CFGs are mostly local).
		for tries := 0; tries < 4; tries++ {
			delta := rng.Intn(9) - 4
			t := from + delta
			if t >= 0 && t < cfg.Blocks && t != from {
				return blocks[t]
			}
		}
		for {
			t := rng.Intn(cfg.Blocks)
			if t != from || cfg.Blocks == 1 {
				return blocks[t]
			}
		}
	}
	for i := 0; i < cfg.Blocks; i++ {
		b.SetInsert(blocks[i])
		// A few filler instructions so blocks have realistic sizes.
		for k := rng.Intn(6); k > 0; k-- {
			b.EmitBin(r, ir.OpAdd, ir.RegVal(r), ir.ConstVal(int64(k)))
		}
		if cfg.Blocks == 1 {
			b.Ret(ir.ConstVal(0))
			continue
		}
		roll := rng.Intn(1000)
		if cfg.Blocks < 3 && roll < cfg.CondFrac+cfg.SwitchFrac {
			// Conditionals need two distinct non-self targets and
			// multiway branches need at least two blocks to aim at; with
			// fewer than three blocks fall back to straight control flow.
			roll = cfg.CondFrac + cfg.SwitchFrac
		}
		switch {
		case roll < cfg.CondFrac:
			t1 := pickTarget(i)
			t2 := pickTarget(i)
			for t2 == t1 {
				t2 = pickTarget(i)
			}
			b.CondBr(ir.RegVal(r), t1, t2)
		case roll < cfg.CondFrac+cfg.SwitchFrac && cfg.MaxSwitchWays >= 2:
			ways := 2 + rng.Intn(cfg.MaxSwitchWays-1)
			cases := make([]int64, ways-1)
			targets := make([]int, ways-1)
			for w := range cases {
				cases[w] = int64(w)
				targets[w] = pickTarget(i)
			}
			b.Switch(ir.RegVal(r), cases, targets, pickTarget(i))
		case roll < cfg.CondFrac+cfg.SwitchFrac+250:
			b.Br(pickTarget(i))
		default:
			b.Ret(ir.ConstVal(0))
		}
	}
	// Guarantee at least one return so the function is plausible.
	mod := &ir.Module{Funcs: []*ir.Func{b.Func()}}
	if err := mod.Verify(); err != nil {
		return nil, nil, fmt.Errorf("bench: synthetic module invalid: %w", err)
	}
	prof := interp.NewProfile(mod)
	fp := prof.Funcs[0]
	for bi, blk := range mod.Funcs[0].Blocks {
		var total int64
		for si := range blk.Term.Succs {
			c := rng.Int63n(cfg.MaxCount)
			// Skew: make one successor hot.
			if si == 0 {
				c *= int64(1 + cfg.HotSkew)
			}
			fp.EdgeCounts[bi][si] = c
			total += c
		}
		fp.BlockCounts[bi] = total
	}
	return mod, prof, nil
}
