package bench

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func TestGo95CompilesAndPlays(t *testing.T) {
	b := Go95()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range b.DataSets {
		res, err := interp.Run(mod, ds.Make(), interp.Options{MaxSteps: 1 << 31})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		// Output layout: moves..., winner, nodes, cutoffs.
		if len(res.Output) < 4 {
			t.Fatalf("%s: too little output: %v", ds.Name, res.Output)
		}
		nodes := res.Output[len(res.Output)-2]
		cutoffs := res.Output[len(res.Output)-1]
		if nodes < 1000 {
			t.Errorf("%s: only %d search nodes; workload too small", ds.Name, nodes)
		}
		if cutoffs <= 0 || cutoffs >= nodes {
			t.Errorf("%s: implausible cutoff count %d of %d nodes", ds.Name, cutoffs, nodes)
		}
		if res.DynBranches() < 100000 {
			t.Errorf("%s: only %d dynamic branches", ds.Name, res.DynBranches())
		}
	}
}

func TestGo95MovesAreLegal(t *testing.T) {
	b := Go95()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(mod, b.DataSets[1].Make(), interp.Options{MaxSteps: 1 << 31})
	if err != nil {
		t.Fatal(err)
	}
	// Move records are col*10+player with col in 0..6 and players
	// alternating; negative entries are forced-win reports.
	heights := make([]int, 7)
	wantPlayer := int64(1)
	for _, v := range res.Output[:len(res.Output)-3] {
		if v < 0 {
			continue
		}
		col := v / 10
		player := v % 10
		if col < 0 || col > 6 {
			t.Fatalf("illegal column %d", col)
		}
		if player != wantPlayer {
			t.Fatalf("players out of turn: got %d, want %d", player, wantPlayer)
		}
		heights[col]++
		if heights[col] > 6 {
			t.Fatalf("column %d overfilled", col)
		}
		wantPlayer = 3 - wantPlayer
	}
	winner := res.Output[len(res.Output)-3]
	if winner != 0 && winner != 1 && winner != 2 {
		t.Fatalf("bad winner %d", winner)
	}
}

func TestGo95ByNameAndExtended(t *testing.T) {
	if _, err := ByName("go95"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("go9"); err != nil {
		t.Error(err)
	}
	ext := Extended()
	if len(ext) != len(All())+1 {
		t.Errorf("Extended has %d entries, want %d", len(ext), len(All())+1)
	}
	// All() must stay the paper's six.
	if len(All()) != 6 {
		t.Errorf("All() grew to %d; the paper's tables expect 6", len(All()))
	}
}

func TestGo95Aligns(t *testing.T) {
	b := Go95()
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, b.DataSets[1].Make(), interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	orig := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, prof, m), prof, m)
	tspL := align.NewTSP(1).Align(context.Background(), mod, prof, m)
	if err := tspL.Validate(mod); err != nil {
		t.Fatal(err)
	}
	tspCP := layout.ModulePenalty(mod, tspL, prof, m)
	if tspCP >= orig {
		t.Errorf("alignment did not help the search benchmark: %d -> %d", orig, tspCP)
	}
	t.Logf("go95 alignment: %d -> %d (removes %.1f%%)", orig, tspCP, 100*(1-float64(tspCP)/float64(orig)))
}
