package check

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

// Flow checks profile flow conservation: for every block of every
// function, executions in must equal executions out (Kirchhoff's law on
// the weighted CFG).
//
// Per block b of function f:
//
//   - outgoing: BlockCounts[b] == Σ_si EdgeCounts[b][si] for every block
//     with successors (a return block has none; its count is its exit
//     count);
//   - incoming: Σ over predecessor edges into b == BlockCounts[b] for
//     every non-entry block; the entry block additionally absorbs one
//     entry per invocation of f;
//   - entry/exit slack: invocations (entry-block slack) must equal total
//     returns, and must match the weighted call graph — for a non-entry
//     function, Σ_c CallCounts[c][f]; the module entry function may
//     exceed its call-graph count by the number of top-level runs.
//
// These identities hold exactly for profiles accumulated over complete
// interpreter runs; an aborted run (step budget, runtime error) legally
// breaks them, so callers should only vet profiles of successful runs.
func Flow(mod *ir.Module, prof *interp.Profile) *Report {
	r := &Report{}
	if len(prof.Funcs) != len(mod.Funcs) {
		r.add(Error, ClassFlow, "", -1, "profile shape: %d function profiles for %d functions", len(prof.Funcs), len(mod.Funcs))
		return r
	}
	for fi, f := range mod.Funcs {
		checkFuncFlow(r, mod, prof, fi, f)
	}
	return r
}

func checkFuncFlow(r *Report, mod *ir.Module, prof *interp.Profile, fi int, f *ir.Func) {
	fp := prof.Funcs[fi]
	if len(fp.BlockCounts) != len(f.Blocks) || len(fp.EdgeCounts) != len(f.Blocks) {
		r.add(Error, ClassFlow, f.Name, -1, "profile shape: %d block counts, %d edge rows for %d blocks",
			len(fp.BlockCounts), len(fp.EdgeCounts), len(f.Blocks))
		return
	}

	// Incoming flow per block, from every predecessor edge.
	in := make([]int64, len(f.Blocks))
	for b, blk := range f.Blocks {
		if len(fp.EdgeCounts[b]) != len(blk.Term.Succs) {
			r.add(Error, ClassFlow, f.Name, b, "profile shape: %d edge counts for %d successors",
				len(fp.EdgeCounts[b]), len(blk.Term.Succs))
			return
		}
		for si, s := range blk.Term.Succs {
			c := fp.EdgeCounts[b][si]
			if c < 0 {
				r.add(Error, ClassFlow, f.Name, b, "negative edge count %d on successor %d", c, si)
			}
			in[s] += c
		}
	}

	var exits int64
	for b, blk := range f.Blocks {
		n := fp.BlockCounts[b]
		if n < 0 {
			r.add(Error, ClassFlow, f.Name, b, "negative block count %d", n)
		}
		if blk.Term.Kind == ir.TermRet {
			exits += n
			continue
		}
		var out int64
		for _, c := range fp.EdgeCounts[b] {
			out += c
		}
		if out != n {
			r.add(Error, ClassFlow, f.Name, b, "outgoing flow %d != block count %d", out, n)
		}
	}

	// Entry slack: invocations of f. Every entry beyond the incoming back
	// edges into block 0 is one call (or top-level run) of the function.
	entries := fp.BlockCounts[0] - in[0]
	if entries < 0 {
		r.add(Error, ClassFlow, f.Name, 0, "entry block count %d below incoming edge flow %d",
			fp.BlockCounts[0], in[0])
	}
	for b := range f.Blocks {
		if b == 0 {
			continue
		}
		if in[b] != fp.BlockCounts[b] {
			r.add(Error, ClassFlow, f.Name, b, "incoming flow %d != block count %d", in[b], fp.BlockCounts[b])
		}
	}

	// Exit slack: a completed invocation leaves through exactly one
	// return.
	if entries >= 0 && exits != entries {
		r.add(Error, ClassFlow, f.Name, -1, "function entered %d times but returned %d times", entries, exits)
	}

	// Call-graph consistency: entries must match dynamic calls, with
	// top-level runs allowed only for the module entry function.
	if len(prof.CallCounts) == len(mod.Funcs) {
		var called int64
		for ci := range prof.CallCounts {
			if len(prof.CallCounts[ci]) == len(mod.Funcs) {
				called += prof.CallCounts[ci][fi]
			}
		}
		switch {
		case fi == mod.EntryFunc:
			if entries >= 0 && entries < called {
				r.add(Error, ClassFlow, f.Name, -1, "entry function entered %d times but called %d times", entries, called)
			}
		case entries >= 0 && entries != called:
			r.add(Error, ClassFlow, f.Name, -1, "function entered %d times but call graph records %d calls", entries, called)
		}
	}
}
