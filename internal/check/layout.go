package check

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// EmittedBlock models the code actually emitted for one block under a
// layout, after the transformation the paper describes ("the appropriate
// inversions of conditional branches and insertions or deletions of
// unconditional jumps"): which target the emitted branch jumps to,
// whether the condition was inverted, and any fixup jump placed directly
// after the block.
type EmittedBlock struct {
	ID int
	// Ret reports that the block ends in a return.
	Ret bool
	// Jump is the target of a materialized unconditional jump (-1 when
	// the block falls through or ends some other way).
	Jump int
	// CondTarget is the taken target of the emitted conditional branch
	// (-1 when the block is not conditional).
	CondTarget int
	// CondInverted reports that the emitted branch tests the negated
	// condition (the original fall-through successor became the taken
	// target or vice versa).
	CondInverted bool
	// Fixup is the target of the fixup jump emitted immediately after the
	// block (-1 when none). Fixups are the separate one-instruction
	// blocks a fully displaced conditional branch needs.
	Fixup int
	// Table lists the emitted switch-table targets, cases first and the
	// default last (nil for non-switch blocks).
	Table []int
}

// EmittedFunc is the emitted (patched) form of a laid-out function.
type EmittedFunc struct {
	Order  []int
	Blocks []EmittedBlock // indexed by block ID
}

// Emit derives the emitted form of f under fl. It reimplements the
// layout-to-code rules from the terminator semantics alone, so that
// VerifyEmitted checks the layout machinery against an independent
// recomputation rather than against itself.
func Emit(f *ir.Func, fl *layout.FuncLayout) *EmittedFunc {
	em := &EmittedFunc{
		Order:  append([]int(nil), fl.Order...),
		Blocks: make([]EmittedBlock, len(f.Blocks)),
	}
	succ := fl.LayoutSuccessors(f)
	for b, blk := range f.Blocks {
		eb := EmittedBlock{ID: b, Jump: -1, CondTarget: -1, Fixup: -1}
		s := succ[b]
		switch blk.Term.Kind {
		case ir.TermRet:
			eb.Ret = true
		case ir.TermBr:
			if t := blk.Term.Succs[0]; t != s {
				eb.Jump = t
			}
		case ir.TermCondBr:
			s0, s1 := blk.Term.Succs[0], blk.Term.Succs[1]
			switch s {
			case s0:
				// The then-successor falls through: branch on the negated
				// condition to the else-successor.
				eb.CondTarget, eb.CondInverted = s1, true
			case s1:
				// The else-successor falls through: the branch keeps its
				// original sense.
				eb.CondTarget = s0
			default:
				// Fully displaced: one successor is the taken target, the
				// other sits behind the fixup jump, per the layout's
				// arrangement decision.
				p := fl.Pred[b]
				taken, fixed := blk.Term.Succs[p], blk.Term.Succs[1-p]
				if !fl.FixupTaken[b] {
					taken, fixed = fixed, taken
				}
				eb.CondTarget, eb.Fixup = taken, fixed
				eb.CondInverted = taken != s0
			}
		case ir.TermSwitch:
			eb.Table = append([]int(nil), blk.Term.Succs...)
		}
		em.Blocks[b] = eb
	}
	return em
}

// VerifyEmitted checks that an emitted form preserves the CFG semantics
// of f: recovering each block's successors from the emitted branches
// (undoing any condition inversion) must reproduce the original edge list
// exactly, every fall-through must reach either the block's layout
// successor or its fixup slot, and no block may fall off the end of the
// function. Emit followed by VerifyEmitted is the round-trip equivalence
// check; feeding a hand-corrupted EmittedFunc seeds ClassPatch findings.
func VerifyEmitted(f *ir.Func, fl *layout.FuncLayout, em *EmittedFunc) *Report {
	r := &Report{}
	n := len(f.Blocks)
	if len(em.Order) != n || len(em.Blocks) != n {
		r.add(Error, ClassPatch, f.Name, -1, "emitted form has %d blocks in order, %d bodies for %d blocks",
			len(em.Order), len(em.Blocks), n)
		return r
	}
	for i, b := range em.Order {
		if b != fl.Order[i] {
			r.add(Error, ClassPatch, f.Name, b, "emitted order diverges from layout at position %d (%d vs %d)",
				i, b, fl.Order[i])
			return r
		}
	}
	for k, b := range em.Order {
		blk := f.Blocks[b]
		eb := em.Blocks[b]
		next := -1
		if k+1 < len(em.Order) {
			next = em.Order[k+1]
		}
		if eb.ID != b {
			r.add(Error, ClassPatch, f.Name, b, "emitted block carries ID %d", eb.ID)
			continue
		}
		switch blk.Term.Kind {
		case ir.TermRet:
			if !eb.Ret || eb.Jump >= 0 || eb.CondTarget >= 0 || eb.Fixup >= 0 || eb.Table != nil {
				r.add(Error, ClassPatch, f.Name, b, "return block emitted with control transfers")
			}
		case ir.TermBr:
			want := blk.Term.Succs[0]
			got := eb.Jump
			if got < 0 {
				got = next // falls through
			}
			if got != want {
				r.add(Error, ClassPatch, f.Name, b, "unconditional edge retargeted: emitted reaches b%d, CFG says b%d", got, want)
			}
			if eb.Jump < 0 && next < 0 {
				r.add(Error, ClassPatch, f.Name, b, "last block falls off the end of the function")
			}
		case ir.TermCondBr:
			s0, s1 := blk.Term.Succs[0], blk.Term.Succs[1]
			if eb.CondTarget < 0 {
				r.add(Error, ClassPatch, f.Name, b, "conditional block emitted without a branch")
				continue
			}
			// Where does the not-taken path end up?
			fallTarget := eb.Fixup
			if fallTarget < 0 {
				fallTarget = next
				if next < 0 {
					r.add(Error, ClassPatch, f.Name, b, "conditional last block falls off the end of the function")
					continue
				}
				if next != s0 && next != s1 {
					r.add(Error, ClassPatch, f.Name, b,
						"fall-through reaches b%d, which is not a successor (want b%d or b%d)", next, s0, s1)
					continue
				}
			}
			// Undo the inversion to recover the original (then, else).
			then, els := eb.CondTarget, fallTarget
			if eb.CondInverted {
				then, els = fallTarget, eb.CondTarget
			}
			if then != s0 || els != s1 {
				r.add(Error, ClassPatch, f.Name, b,
					"conditional edges changed: emitted (then b%d, else b%d), CFG (then b%d, else b%d)", then, els, s0, s1)
			}
		case ir.TermSwitch:
			if len(eb.Table) != len(blk.Term.Succs) {
				r.add(Error, ClassPatch, f.Name, b, "switch table has %d targets, CFG has %d",
					len(eb.Table), len(blk.Term.Succs))
				continue
			}
			for si, t := range eb.Table {
				if t != blk.Term.Succs[si] {
					r.add(Error, ClassPatch, f.Name, b, "switch target %d retargeted: emitted b%d, CFG b%d",
						si, t, blk.Term.Succs[si])
				}
			}
		}
	}
	return r
}

// Placement checks the instruction-address bookkeeping of a placed
// function against an independent recomputation: blocks must occupy
// contiguous, non-overlapping address ranges in layout order, displaced
// unconditional terminators must be accounted as one jump slot, and a
// fixup slot must exist exactly for fully displaced conditional branches,
// directly after its block.
func Placement(f *ir.Func, fl *layout.FuncLayout, pf *layout.PlacedFunc) *Report {
	r := &Report{}
	n := len(f.Blocks)
	if len(pf.Addr) != n || len(pf.Size) != n || len(pf.FixupAddr) != n {
		r.add(Error, ClassPlacement, f.Name, -1, "placement tables sized %d/%d/%d for %d blocks",
			len(pf.Addr), len(pf.Size), len(pf.FixupAddr), n)
		return r
	}
	succ := fl.LayoutSuccessors(f)
	cur := pf.Base
	for _, b := range fl.Order {
		blk := f.Blocks[b]
		size := int64(len(blk.Instrs))
		fixup := false
		switch blk.Term.Kind {
		case ir.TermRet, ir.TermSwitch:
			size++
		case ir.TermCondBr:
			size++
			fixup = succ[b] != blk.Term.Succs[0] && succ[b] != blk.Term.Succs[1]
		case ir.TermBr:
			if blk.Term.Succs[0] != succ[b] {
				size++ // materialized jump
			}
		}
		if pf.Addr[b] != cur {
			r.add(Error, ClassPlacement, f.Name, b, "block placed at %d, recomputation says %d", pf.Addr[b], cur)
		}
		if pf.Size[b] != size {
			r.add(Error, ClassPlacement, f.Name, b, "block size %d, recomputation says %d", pf.Size[b], size)
		}
		switch {
		case fixup && pf.FixupAddr[b] != cur+size:
			r.add(Error, ClassPlacement, f.Name, b, "fixup slot at %d, recomputation says %d (directly after the block)",
				pf.FixupAddr[b], cur+size)
		case !fixup && pf.FixupAddr[b] != -1:
			r.add(Error, ClassPlacement, f.Name, b, "fixup slot at %d for a block that needs none", pf.FixupAddr[b])
		}
		cur += size
		if fixup {
			cur++
		}
	}
	if pf.End != cur {
		r.add(Error, ClassPlacement, f.Name, -1, "function ends at %d, recomputation says %d", pf.End, cur)
	}
	return r
}

// Cost checks that the incremental, event-driven penalty bookkeeping
// (layout.Penalty summing FuncLayout.Exec over profiled edges) matches a
// from-scratch recomputation through the paper's d(B, X) walk-cost
// semantics (layout.SuccessorCost summed over the layout walk). The two
// paths share no code beyond the machine model, so a divergence means the
// cost model and the event accounting have drifted apart — or, for a
// layout not finalized against this profile, that a displaced conditional
// carries the more expensive fixup arrangement.
func Cost(f *ir.Func, fp *interp.FuncProfile, fl *layout.FuncLayout, m machine.Model) *Report {
	r := &Report{}
	event := layout.Penalty(f, fl, fp, m)
	succ := fl.LayoutSuccessors(f)
	var walk layout.Cost
	for b := range f.Blocks {
		walk += layout.SuccessorCost(f, fp, fl.Pred, b, succ[b], m)
	}
	if event != walk {
		r.add(Error, ClassCost, f.Name, -1,
			"event-driven penalty %d != walk-cost recomputation %d (drifted cost bookkeeping or suboptimal fixup arrangement)",
			event, walk)
	}
	return r
}

// LayoutStructure checks the profile-independent layout invariants of a
// whole-module layout: permutation validity per function, patch
// equivalence of the emitted form, and placement bookkeeping. It is the
// right check for a layout being replayed against an input other than
// its training input (cross-validation), where the profile-dependent
// cost check does not apply.
func LayoutStructure(mod *ir.Module, l *layout.Layout) *Report {
	r := &Report{}
	forEachValidFuncLayout(r, mod, l, func(fi int, f *ir.Func, fl *layout.FuncLayout) {
		r.Merge(VerifyEmitted(f, fl, Emit(f, fl)))
		r.Merge(Placement(f, fl, layout.PlaceFunc(f, fl, 0)))
	})
	return r
}

// Layouts checks a whole-module layout against its training profile:
// everything LayoutStructure covers plus cost-recomputation consistency.
func Layouts(mod *ir.Module, prof *interp.Profile, l *layout.Layout, m machine.Model) *Report {
	r := &Report{}
	forEachValidFuncLayout(r, mod, l, func(fi int, f *ir.Func, fl *layout.FuncLayout) {
		r.Merge(VerifyEmitted(f, fl, Emit(f, fl)))
		r.Merge(Placement(f, fl, layout.PlaceFunc(f, fl, 0)))
		r.Merge(Cost(f, prof.Funcs[fi], fl, m))
	})
	return r
}

// forEachValidFuncLayout validates layout shape and permutations, then
// invokes fn for every function whose layout passed (deeper checks index
// through the permutation and need it sound).
func forEachValidFuncLayout(r *Report, mod *ir.Module, l *layout.Layout, fn func(fi int, f *ir.Func, fl *layout.FuncLayout)) {
	if len(l.Funcs) != len(mod.Funcs) {
		r.add(Error, ClassPermutation, "", -1, "%d function layouts for %d functions", len(l.Funcs), len(mod.Funcs))
		return
	}
	for fi, f := range mod.Funcs {
		fl := l.Funcs[fi]
		if err := fl.Validate(f); err != nil {
			r.add(Error, ClassPermutation, f.Name, -1, "%v", err)
			continue
		}
		fn(fi, f, fl)
	}
}
