// Package check is the pipeline-wide invariant checker: a static-analysis
// layer that audits every stage of the branch-alignment pipeline and
// reports violations as structured findings. It machine-checks the
// properties the paper's argument rests on:
//
//   - profile flow conservation — every block of every function obeys the
//     Kirchhoff law Σ incoming edge counts = block count = Σ outgoing
//     edge counts, with entry/exit slack accounted against the weighted
//     call graph (Flow);
//   - layout and patch validity — a layout is a permutation of its
//     function's blocks starting at the entry, the emitted (patched) form
//     preserves CFG semantics after conditional-branch inversion and
//     fixup-jump insertion, and no fall-through reaches a non-successor
//     (Layout, VerifyEmitted);
//   - cost bookkeeping — the event-driven penalty accounting of
//     layout.Penalty matches a from-scratch recomputation via the DTSP
//     walk-cost semantics d(B, X) (Cost);
//   - bound consistency — the appendix's chain AP bound ≤ Held-Karp
//     bound ≤ tour cost holds within epsilon on every instance (Bounds,
//     BoundChain);
//   - IR dataflow lints built on the cfganal dominator machinery —
//     use-before-def registers, unreachable blocks and dead stores
//     (Module).
//
// Everything is exposed through the `balign vet` subcommand and, behind
// the pipe.Config.SelfCheck debug flag, inside the pipeline simulator.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a finding.
type Severity int

// Severities. An Error is a broken invariant: the pipeline produced an
// inconsistent artifact and no result downstream of it can be trusted. A
// Warning is a lint: suspicious but semantically harmless (the IR
// zero-initializes registers, so e.g. a use-before-def reads 0 instead of
// trapping).
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Class names an invariant family. Mutation tests seed one violation per
// class and assert the checker catches it.
type Class string

// Checker classes.
const (
	// ClassStructure: ir.Module.Verify failures (malformed IR).
	ClassStructure Class = "structure"
	// ClassFlow: profile flow-conservation (Kirchhoff) violations.
	ClassFlow Class = "flow-conservation"
	// ClassPermutation: a layout that is not a valid permutation of its
	// function's blocks (or does not start at the entry).
	ClassPermutation Class = "permutation"
	// ClassPatch: the emitted (patched) function does not preserve the
	// CFG's semantics — an edge changed target under branch inversion, or
	// control falls through to a non-successor.
	ClassPatch Class = "patch-equivalence"
	// ClassPlacement: instruction-address bookkeeping disagrees with an
	// independent recomputation (overlapping or gapped blocks, misplaced
	// fixup slots).
	ClassPlacement Class = "placement"
	// ClassCost: the incremental cost bookkeeping (event-driven
	// layout.Penalty) disagrees with the from-scratch DTSP walk-cost
	// recomputation.
	ClassCost Class = "cost-recompute"
	// ClassBounds: the AP ≤ HK ≤ tour bound chain is violated.
	ClassBounds Class = "bound-chain"
	// ClassUseBeforeDef: a register is read on some path before any
	// definition reaches it.
	ClassUseBeforeDef Class = "use-before-def"
	// ClassUnreachable: a block no path from the entry reaches.
	ClassUnreachable Class = "unreachable"
	// ClassDeadStore: a side-effect-free definition whose value is never
	// read before being overwritten.
	ClassDeadStore Class = "dead-store"
	// ClassIrreducible: the CFG contains a cycle that is not a natural
	// loop (multiple-entry region), which structured loop analyses and
	// the static profile estimator can only approximate.
	ClassIrreducible Class = "irreducible-loop"
	// ClassInfiniteLoop: a loop with no exit edge — statically certain to
	// never terminate once entered (legal IR, but usually a bug in the
	// source program, and the estimator assigns it zero flow).
	ClassInfiniteLoop Class = "static-infinite-loop"
	// ClassColdDeep: a block nested ≥ 2 loops deep whose statically
	// estimated frequency is below the function entry's — deep code the
	// heuristics consider nearly dead, worth a human look.
	ClassColdDeep Class = "cold-deep"
)

// Report collects findings from one checker run.
type Report struct {
	Findings []Issue
}

// Issue is one detected violation or lint.
type Issue struct {
	Severity Severity
	Class    Class
	// Func and Block locate the issue (-1 when not applicable).
	Func  string
	Block int
	Msg   string
}

func (i Issue) String() string {
	loc := ""
	if i.Func != "" {
		loc = i.Func
		if i.Block >= 0 {
			loc = fmt.Sprintf("%s/b%d", i.Func, i.Block)
		}
		loc += ": "
	}
	return fmt.Sprintf("%s [%s] %s%s", i.Severity, i.Class, loc, i.Msg)
}

// Add appends a finding from an analysis living outside this package
// (e.g. staticprof.Lint) that reports through the shared Report type.
func (r *Report) Add(sev Severity, class Class, fn string, block int, format string, args ...any) {
	r.add(sev, class, fn, block, format, args...)
}

// add appends a finding.
func (r *Report) add(sev Severity, class Class, fn string, block int, format string, args ...any) {
	r.Findings = append(r.Findings, Issue{
		Severity: sev,
		Class:    class,
		Func:     fn,
		Block:    block,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Merge appends all findings of other.
func (r *Report) Merge(other *Report) {
	r.Findings = append(r.Findings, other.Findings...)
}

// Errors counts error-severity findings (broken invariants).
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity findings (lints).
func (r *Report) Warnings() int { return len(r.Findings) - r.Errors() }

// OK reports whether no invariant is broken (warnings allowed).
func (r *Report) OK() bool { return r.Errors() == 0 }

// ByClass returns the findings of one class.
func (r *Report) ByClass(c Class) []Issue {
	var out []Issue
	for _, f := range r.Findings {
		if f.Class == c {
			out = append(out, f)
		}
	}
	return out
}

// Classes returns the distinct classes present, sorted.
func (r *Report) Classes() []Class {
	seen := map[Class]bool{}
	for _, f := range r.Findings {
		seen[f.Class] = true
	}
	out := make([]Class, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the report, one finding per line, errors first.
func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "check: ok\n"
	}
	var sb strings.Builder
	for pass := 0; pass < 2; pass++ {
		want := Error
		if pass == 1 {
			want = Warning
		}
		for _, f := range r.Findings {
			if f.Severity == want {
				fmt.Fprintln(&sb, f.String())
			}
		}
	}
	fmt.Fprintf(&sb, "check: %d error(s), %d warning(s)\n", r.Errors(), r.Warnings())
	return sb.String()
}

// Err returns a non-nil error summarizing the report when an invariant is
// broken, nil otherwise. It lets callers treat a failed check like any
// other pipeline failure.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	first := ""
	for _, f := range r.Findings {
		if f.Severity == Error {
			first = f.String()
			break
		}
	}
	return fmt.Errorf("check: %d invariant violation(s); first: %s", r.Errors(), first)
}
