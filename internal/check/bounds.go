package check

import (
	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
	"branchalign/internal/work"
)

// BoundsOptions tunes the bound-consistency check.
type BoundsOptions struct {
	// HKIterations bounds the Held-Karp subgradient iterations (<= 0
	// selects a cheap default of 200 — every iterate is a valid lower
	// bound, so fewer iterations only loosen, never break, the chain).
	HKIterations int
	// Epsilon is the slack allowed in the chain comparisons. All
	// quantities are integral penalty cycles, so 0 (the default) is the
	// mathematically correct tolerance; a positive value is useful only
	// for experiments with rescaled cost models.
	Epsilon tsp.Cost
	// MinBlocks skips functions with fewer blocks (<= 0 selects 3, the
	// appendix's convention: one- and two-block layouts are forced, so
	// their chains are vacuous).
	MinBlocks int
	// HKStallWindow, when positive, lets each Held-Karp ascent stop
	// early once its best bound has plateaued for this many iterates
	// (tsp.HeldKarpOptions.StallWindow). Early termination only loosens
	// the bound, so the chain invariants this check audits are
	// unaffected — it is purely a wall-clock knob for the vet path.
	HKStallWindow int
}

func (o BoundsOptions) normalized() BoundsOptions {
	if o.HKIterations <= 0 {
		o.HKIterations = 200
	}
	if o.MinBlocks <= 0 {
		o.MinBlocks = 3
	}
	return o
}

// BoundChain checks the appendix's invariant chain on one instance: the
// assignment-problem bound and the Held-Karp bound are both lower bounds
// on every tour, so ap ≤ tour and hk ≤ tour are hard invariants (the
// optimal tour sits between the bounds and any heuristic tour). ap ≤ hk
// is reported as a warning when violated: it holds whenever the HK
// subgradient has converged past the AP relaxation (and always when the
// instance was solved exactly), but an undertrained HK value is loose,
// not wrong.
func BoundChain(name string, ap, hk, tour, eps tsp.Cost) *Report {
	r := &Report{}
	if ap > tour+eps {
		r.add(Error, ClassBounds, name, -1, "AP bound %d exceeds tour cost %d", ap, tour)
	}
	if hk > tour+eps {
		r.add(Error, ClassBounds, name, -1, "Held-Karp bound %d exceeds tour cost %d", hk, tour)
	}
	if ap > hk+eps {
		r.add(Warning, ClassBounds, name, -1, "AP bound %d exceeds Held-Karp bound %d (HK not converged)", ap, hk)
	}
	return r
}

// Bounds verifies the AP ≤ HK ≤ tour chain for every function of mod
// large enough to have a non-trivial layout, using the vetted layout's
// block order as the tour. Both bounds are recomputed from the function's
// DTSP matrix; the tour cost is the cycle cost of the layout order on
// that same matrix, which by construction equals the layout's walk cost
// plus the end-of-layout closing edge.
//
// Functions are audited in parallel on the shared worker pool — each
// function's chain is independent — and the per-function findings are
// merged in plan (function-index) order, so the report is identical to
// the sequential loop's regardless of scheduling.
func Bounds(mod *ir.Module, prof *interp.Profile, l *layout.Layout, m machine.Model, opts BoundsOptions) *Report {
	opts = opts.normalized()
	var eligible []int
	for fi, f := range mod.Funcs {
		if len(f.Blocks) >= opts.MinBlocks {
			eligible = append(eligible, fi)
		}
	}
	per := make([]*Report, len(eligible))
	work.Shared().Each(len(eligible), func(k int) {
		fi := eligible[k]
		f := mod.Funcs[fi]
		fp := prof.Funcs[fi]
		mat := align.BuildSparseMatrixForFunc(f, fp, m)
		ap := tsp.AssignmentBound(mat)
		hk := align.FuncHeldKarpBound(f, fp, m, tsp.HeldKarpOptions{
			Iterations:  opts.HKIterations,
			StallWindow: opts.HKStallWindow,
		})
		tour := tsp.CycleCost(mat, tsp.Tour(l.Funcs[fi].Order))
		per[k] = BoundChain(f.Name, ap, hk, tour, opts.Epsilon)
	})
	r := &Report{}
	for _, p := range per {
		r.Merge(p)
	}
	return r
}
