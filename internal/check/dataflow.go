package check

import (
	"branchalign/internal/cfganal"
	"branchalign/internal/ir"
)

// Module runs the static IR checks: the structural verifier
// (ir.Module.Verify) as an error-class check, then the dataflow lints —
// unreachable blocks (via the cfganal dominator computation: a non-entry
// block with no immediate dominator is unreachable), use-before-def
// registers (a forward must-defined analysis iterated in reverse
// postorder), and dead stores (a backward liveness analysis).
//
// The lints are warnings, not errors: IR registers are zero-initialized
// mutable slots, so a use-before-def reads 0 rather than trapping, and
// unreachable blocks or dead stores waste space without changing
// behavior. They still matter — each one is a front-end or optimizer
// smell, and the fuzzer uses them to hunt lowering regressions.
func Module(mod *ir.Module) *Report {
	r := &Report{}
	if err := mod.Verify(); err != nil {
		r.add(Error, ClassStructure, "", -1, "%v", err)
		return r // dataflow below assumes a structurally sound module
	}
	for _, f := range mod.Funcs {
		checkFuncDataflow(r, f)
	}
	return r
}

func checkFuncDataflow(r *Report, f *ir.Func) {
	dom := cfganal.ComputeDominators(f)
	reachable := make([]bool, len(f.Blocks))
	for b := range f.Blocks {
		reachable[b] = b == 0 || dom.IDom[b] != -1
		if !reachable[b] {
			r.add(Warning, ClassUnreachable, f.Name, b, "block is unreachable from the entry")
		}
	}
	rpo := dom.ReversePostorder()
	useBeforeDef(r, f, rpo, reachable)
	deadStores(r, f, rpo, reachable)
}

// valueUses appends the register (if any) a Value reads.
func valueUses(regs []ir.Reg, v ir.Value) []ir.Reg {
	if !v.IsConst {
		regs = append(regs, v.Reg)
	}
	return regs
}

// instrUses returns the registers an instruction reads.
func instrUses(in *ir.Instr) []ir.Reg {
	var regs []ir.Reg
	switch in.Kind {
	case ir.InstrConst, ir.InstrGLoad:
		// no register operands
	case ir.InstrMove, ir.InstrUn, ir.InstrLoad, ir.InstrGStore, ir.InstrOut:
		regs = valueUses(regs, in.A)
	case ir.InstrBin:
		regs = valueUses(regs, in.A)
		regs = valueUses(regs, in.B)
	case ir.InstrStore:
		regs = valueUses(regs, in.A)
		regs = valueUses(regs, in.B)
	case ir.InstrCall:
		for _, a := range in.Args {
			if !a.IsArray {
				regs = valueUses(regs, a.Val)
			}
		}
	}
	return regs
}

// instrDef returns the register an instruction defines, if any.
func instrDef(in *ir.Instr) (ir.Reg, bool) {
	switch in.Kind {
	case ir.InstrConst, ir.InstrMove, ir.InstrBin, ir.InstrUn, ir.InstrLoad, ir.InstrGLoad, ir.InstrCall:
		return in.Dst, true
	}
	return 0, false
}

// termUses returns the registers a terminator reads.
func termUses(t *ir.Terminator) []ir.Reg {
	switch t.Kind {
	case ir.TermCondBr, ir.TermSwitch:
		return valueUses(nil, t.Cond)
	case ir.TermRet:
		return valueUses(nil, t.Val)
	}
	return nil
}

// pureInstr reports whether removing the instruction cannot change
// observable behavior beyond its own register definition: loads can trap
// on a bad index, division and remainder trap on zero, and calls, stores
// and out() have effects, so none of those count as pure.
func pureInstr(in *ir.Instr) bool {
	switch in.Kind {
	case ir.InstrConst, ir.InstrMove, ir.InstrUn, ir.InstrGLoad:
		return true
	case ir.InstrBin:
		return in.Op != ir.OpDiv && in.Op != ir.OpRem
	}
	return false
}

// useBeforeDef runs a forward must-defined dataflow analysis: a register
// is defined at a program point only if it is defined on *every* path
// from the entry. Scalar parameters enter defined; everything else must
// be written first. Uses of must-undefined registers are reported once
// per (block, instruction, register).
func useBeforeDef(r *Report, f *ir.Func, rpo []int, reachable []bool) {
	n := len(f.Blocks)
	nr := f.NumRegs
	preds := f.Preds()

	newSet := func(full bool) []bool {
		s := make([]bool, nr)
		if full {
			for i := range s {
				s[i] = true
			}
		}
		return s
	}
	params := newSet(false)
	for i := 0; i < f.NumScalarParams(); i++ {
		params[i] = true
	}

	// out[b] starts at ⊤ (all defined) so the intersection over
	// predecessors is optimistic until the fixpoint settles.
	out := make([][]bool, n)
	for b := 0; b < n; b++ {
		out[b] = newSet(true)
	}
	blockIn := func(b int) []bool {
		if b == 0 {
			return append([]bool(nil), params...)
		}
		in := newSet(true)
		any := false
		for _, p := range preds[b] {
			if !reachable[p] {
				continue
			}
			any = true
			for i := range in {
				in[i] = in[i] && out[p][i]
			}
		}
		if !any {
			return append([]bool(nil), params...)
		}
		return in
	}
	transfer := func(b int, in []bool) []bool {
		cur := append([]bool(nil), in...)
		for i := range f.Blocks[b].Instrs {
			if d, ok := instrDef(&f.Blocks[b].Instrs[i]); ok {
				cur[d] = true
			}
		}
		return cur
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			nw := transfer(b, blockIn(b))
			for i := range nw {
				if nw[i] != out[b][i] {
					out[b] = nw
					changed = true
					break
				}
			}
		}
	}

	// Report pass: walk each reachable block with its settled in-state.
	for _, b := range rpo {
		cur := blockIn(b)
		blk := f.Blocks[b]
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			for _, u := range instrUses(in) {
				if !cur[u] {
					r.add(Warning, ClassUseBeforeDef, f.Name, b,
						"instr %d (%s): r%d may be read before any definition reaches it", ii, in, u)
				}
			}
			if d, ok := instrDef(in); ok {
				cur[d] = true
			}
		}
		for _, u := range termUses(&blk.Term) {
			if !cur[u] {
				r.add(Warning, ClassUseBeforeDef, f.Name, b,
					"terminator (%s): r%d may be read before any definition reaches it", blk.Term, u)
			}
		}
	}
}

// deadStores runs a backward liveness analysis and flags pure definitions
// whose value is dead: never read before every path overwrites or
// abandons it.
func deadStores(r *Report, f *ir.Func, rpo []int, reachable []bool) {
	n := len(f.Blocks)
	nr := f.NumRegs

	liveIn := make([][]bool, n)
	for b := range liveIn {
		liveIn[b] = make([]bool, nr)
	}
	blockLiveIn := func(b int, liveOut []bool) []bool {
		live := append([]bool(nil), liveOut...)
		blk := f.Blocks[b]
		for _, u := range termUses(&blk.Term) {
			live[u] = true
		}
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			in := &blk.Instrs[ii]
			if d, ok := instrDef(in); ok {
				live[d] = false
			}
			for _, u := range instrUses(in) {
				live[u] = true
			}
		}
		return live
	}
	liveOut := func(b int) []bool {
		out := make([]bool, nr)
		for _, s := range f.Blocks[b].Term.Succs {
			for i, v := range liveIn[s] {
				out[i] = out[i] || v
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for k := len(rpo) - 1; k >= 0; k-- {
			b := rpo[k]
			nw := blockLiveIn(b, liveOut(b))
			for i := range nw {
				if nw[i] != liveIn[b][i] {
					liveIn[b] = nw
					changed = true
					break
				}
			}
		}
	}

	for _, b := range rpo {
		if !reachable[b] {
			continue
		}
		blk := f.Blocks[b]
		live := liveOut(b)
		for _, u := range termUses(&blk.Term) {
			live[u] = true
		}
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			in := &blk.Instrs[ii]
			if d, ok := instrDef(in); ok {
				if !live[d] && pureInstr(in) {
					r.add(Warning, ClassDeadStore, f.Name, b,
						"instr %d (%s): value of r%d is never read", ii, in, d)
				}
				live[d] = false
			}
			for _, u := range instrUses(in) {
				live[u] = true
			}
		}
	}
}
