package check_test

import (
	"strings"
	"testing"

	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

// Mutation tests: every checker class must fire on a seeded violation of
// its invariant. Together with TestVetAllBenchmarks (zero violations on
// healthy artifacts) this pins both directions of the checker's
// soundness.

// hasClass reports whether the report contains a finding of the class.
func hasClass(r *check.Report, c check.Class) bool {
	return len(r.ByClass(c)) > 0
}

// diamondModule builds a hand-rolled module with a conditional diamond:
//
//	b0: condbr r0 -> b1, b2
//	b1: br b3
//	b2: br b3
//	b3: ret 0
func diamondModule() *ir.Module {
	f := &ir.Func{
		Name:    "diamond",
		Params:  []ir.ParamKind{ir.ParamScalar},
		NumRegs: 1,
		Blocks: []*ir.Block{
			{ID: 0, Term: ir.Terminator{Kind: ir.TermCondBr, Cond: ir.RegVal(0), Succs: []int{1, 2}}},
			{ID: 1, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
			{ID: 2, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
			{ID: 3, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.ConstVal(0)}},
		},
	}
	return &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
}

// diamondProfile profiles the diamond by running it once per input.
func diamondProfile(t *testing.T, mod *ir.Module, inputs ...int64) *interp.Profile {
	t.Helper()
	prof := interp.NewProfile(mod)
	for _, x := range inputs {
		if _, err := interp.Run(mod, []interp.Input{interp.ScalarInput(x)}, interp.Options{Profile: prof}); err != nil {
			t.Fatal(err)
		}
	}
	return prof
}

func TestFlowConservationCatchesTamperedEdgeCount(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource,
		[]interp.Input{interp.ArrayInput([]int64{3, 1, 4, 1, 5, 9}), interp.ScalarInput(6)})
	if err != nil {
		t.Fatal(err)
	}
	if r := check.Flow(mod, prof); !r.OK() {
		t.Fatalf("healthy profile flagged:\n%s", r.String())
	}

	// Seed: inflate one executed edge count. Kirchhoff breaks at the
	// source block (outgoing > block count) and at the target (incoming >
	// block count).
	for fi := range mod.Funcs {
		fp := prof.Funcs[fi]
		for b := range fp.EdgeCounts {
			for si := range fp.EdgeCounts[b] {
				if fp.EdgeCounts[b][si] > 0 {
					fp.EdgeCounts[b][si]++
					r := check.Flow(mod, prof)
					if r.OK() || !hasClass(r, check.ClassFlow) {
						t.Fatalf("tampered edge (%d/b%d/%d) not caught:\n%s", fi, b, si, r.String())
					}
					fp.EdgeCounts[b][si]--
					return
				}
			}
		}
	}
	t.Fatal("no executed edge found to tamper with")
}

func TestFlowConservationCatchesPhantomCalls(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource,
		[]interp.Input{interp.ArrayInput([]int64{2, 7}), interp.ScalarInput(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Seed: record calls to a non-entry function that never entered.
	for fi := range mod.Funcs {
		if fi == mod.EntryFunc {
			continue
		}
		prof.CallCounts[mod.EntryFunc][fi] += 5
		r := check.Flow(mod, prof)
		if r.OK() || !hasClass(r, check.ClassFlow) {
			t.Fatalf("phantom call count not caught:\n%s", r.String())
		}
		return
	}
}

func TestPermutationValidityCatchesBrokenOrders(t *testing.T) {
	mod := diamondModule()
	prof := diamondProfile(t, mod, 1, 1, 0)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	if r := check.Layouts(mod, prof, l, m); !r.OK() {
		t.Fatalf("healthy layout flagged:\n%s", r.String())
	}

	seed := func(mutate func(fl *layout.FuncLayout)) *check.Report {
		l := layout.Identity(mod, prof, m)
		mutate(l.Funcs[0])
		return check.Layouts(mod, prof, l, m)
	}
	cases := map[string]func(fl *layout.FuncLayout){
		"duplicate block": func(fl *layout.FuncLayout) { fl.Order[2] = fl.Order[1] },
		"entry not first": func(fl *layout.FuncLayout) { fl.Order[0], fl.Order[1] = fl.Order[1], fl.Order[0] },
		"truncated order": func(fl *layout.FuncLayout) { fl.Order = fl.Order[:3] },
		"out of range":    func(fl *layout.FuncLayout) { fl.Order[3] = 99 },
		"bad prediction":  func(fl *layout.FuncLayout) { fl.Pred[0] = 7 },
		"ret predicted":   func(fl *layout.FuncLayout) { fl.Pred[3] = 0 },
	}
	for name, mutate := range cases {
		r := seed(mutate)
		if r.OK() || !hasClass(r, check.ClassPermutation) {
			t.Errorf("%s: not caught:\n%s", name, r.String())
		}
	}
}

func TestPatchEquivalenceCatchesRetargetedBranches(t *testing.T) {
	mod := diamondModule()
	prof := diamondProfile(t, mod, 1, 1, 0)
	m := machine.Alpha21164()
	f := mod.Funcs[0]
	// Order [0 3 1 2] fully displaces the conditional: b3 separates b0
	// from both successors, so the emitted form needs a fixup jump.
	fl := layout.Finalize(f, prof.Funcs[0], []int{0, 3, 1, 2}, m)

	em := check.Emit(f, fl)
	if em.Blocks[0].Fixup < 0 {
		t.Fatal("expected a fixup jump on the displaced conditional")
	}
	if r := check.VerifyEmitted(f, fl, em); !r.OK() {
		t.Fatalf("healthy emitted form flagged:\n%s", r.String())
	}

	seed := func(mutate func(em *check.EmittedFunc)) *check.Report {
		em := check.Emit(f, fl)
		mutate(em)
		return check.VerifyEmitted(f, fl, em)
	}
	cases := map[string]func(em *check.EmittedFunc){
		// A patching bug that redirects the conditional's taken target.
		"cond retargeted": func(em *check.EmittedFunc) { em.Blocks[0].CondTarget = 3 },
		// A lost inversion flag: the recovered (then, else) pair swaps.
		"inversion lost": func(em *check.EmittedFunc) { em.Blocks[0].CondInverted = !em.Blocks[0].CondInverted },
		// A dropped fixup: control would fall through into b3, which is
		// not a successor of the conditional.
		"fixup dropped": func(em *check.EmittedFunc) { em.Blocks[0].Fixup = -1 },
		// A retargeted unconditional jump.
		"jump retargeted": func(em *check.EmittedFunc) { em.Blocks[1].Jump = 2 },
		// An elided jump that actually needed materializing: b1 would
		// fall through into b2 instead of reaching b3.
		"jump elided": func(em *check.EmittedFunc) { em.Blocks[1].Jump = -1 },
	}
	for name, mutate := range cases {
		r := seed(mutate)
		if r.OK() || !hasClass(r, check.ClassPatch) {
			t.Errorf("%s: not caught:\n%s", name, r.String())
		}
	}
}

func TestPatchEquivalenceCatchesSwitchRetargeting(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource,
		[]interp.Input{interp.ArrayInput([]int64{0, 1, 2, 3, 4}), interp.ScalarInput(5)})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	for fi, f := range mod.Funcs {
		for b, blk := range f.Blocks {
			if blk.Term.Kind != ir.TermSwitch {
				continue
			}
			em := check.Emit(f, l.Funcs[fi])
			em.Blocks[b].Table[0], em.Blocks[b].Table[1] = em.Blocks[b].Table[1], em.Blocks[b].Table[0]
			r := check.VerifyEmitted(f, l.Funcs[fi], em)
			if blk.Term.Succs[0] != blk.Term.Succs[1] && (r.OK() || !hasClass(r, check.ClassPatch)) {
				t.Fatalf("swapped switch targets not caught:\n%s", r.String())
			}
			return
		}
	}
	t.Fatal("no switch found in BranchySource")
}

func TestCostRecomputationCatchesWrongFixupArrangement(t *testing.T) {
	mod := diamondModule()
	// Asymmetric counts: 10 then-edges, 3 else-edges. Under Alpha21164
	// the two fixup arrangements then cost 31 vs 35 cycles, so flipping
	// the layout's choice must desynchronize the two cost paths.
	inputs := make([]int64, 0, 13)
	for i := 0; i < 10; i++ {
		inputs = append(inputs, 1)
	}
	inputs = append(inputs, 0, 0, 0)
	prof := diamondProfile(t, mod, inputs...)
	m := machine.Alpha21164()
	f := mod.Funcs[0]
	fl := layout.Finalize(f, prof.Funcs[0], []int{0, 3, 1, 2}, m)
	if r := check.Cost(f, prof.Funcs[0], fl, m); !r.OK() {
		t.Fatalf("healthy cost bookkeeping flagged:\n%s", r.String())
	}

	fl.FixupTaken[0] = !fl.FixupTaken[0]
	r := check.Cost(f, prof.Funcs[0], fl, m)
	if r.OK() || !hasClass(r, check.ClassCost) {
		t.Fatalf("flipped fixup arrangement not caught:\n%s", r.String())
	}
}

func TestPlacementCatchesTamperedAddresses(t *testing.T) {
	mod := diamondModule()
	prof := diamondProfile(t, mod, 1, 0)
	m := machine.Alpha21164()
	f := mod.Funcs[0]
	fl := layout.Finalize(f, prof.Funcs[0], []int{0, 3, 1, 2}, m)

	seed := func(mutate func(pf *layout.PlacedFunc)) *check.Report {
		pf := layout.PlaceFunc(f, fl, 0)
		mutate(pf)
		return check.Placement(f, fl, pf)
	}
	if r := seed(func(*layout.PlacedFunc) {}); !r.OK() {
		t.Fatalf("healthy placement flagged:\n%s", r.String())
	}
	cases := map[string]func(pf *layout.PlacedFunc){
		"overlapping blocks": func(pf *layout.PlacedFunc) { pf.Addr[1]-- },
		"wrong size":         func(pf *layout.PlacedFunc) { pf.Size[2]++ },
		"displaced fixup":    func(pf *layout.PlacedFunc) { pf.FixupAddr[0]++ },
		"phantom fixup":      func(pf *layout.PlacedFunc) { pf.FixupAddr[1] = 7 },
		"wrong end":          func(pf *layout.PlacedFunc) { pf.End += 3 },
	}
	for name, mutate := range cases {
		r := seed(mutate)
		if r.OK() || !hasClass(r, check.ClassPlacement) {
			t.Errorf("%s: not caught:\n%s", name, r.String())
		}
	}
}

func TestBoundChainCatchesInvertedBounds(t *testing.T) {
	// Healthy: ap <= hk <= tour.
	if r := check.BoundChain("f", 5, 8, 12, 0); !r.OK() || len(r.Findings) != 0 {
		t.Fatalf("healthy chain flagged:\n%s", r.String())
	}
	// A claimed tour below the AP bound breaks the chain twice.
	r := check.BoundChain("f", 10, 12, 7, 0)
	if r.Errors() != 2 || !hasClass(r, check.ClassBounds) {
		t.Fatalf("inverted chain not caught:\n%s", r.String())
	}
	// An AP bound above HK is only a convergence warning.
	r = check.BoundChain("f", 9, 6, 20, 0)
	if r.Errors() != 0 || r.Warnings() != 1 {
		t.Fatalf("AP > HK should be a warning:\n%s", r.String())
	}
	// Epsilon absorbs sub-tolerance violations.
	if r := check.BoundChain("f", 10, 12, 11, 1); r.Errors() != 0 {
		t.Fatalf("epsilon not honored:\n%s", r.String())
	}
}

func TestUseBeforeDefCatchesUndefinedRead(t *testing.T) {
	// r2 is read in b0 but never written anywhere; r0 is a parameter and
	// therefore fine.
	f := &ir.Func{
		Name:    "ubd",
		Params:  []ir.ParamKind{ir.ParamScalar},
		NumRegs: 3,
		Blocks: []*ir.Block{
			{ID: 0, Instrs: []ir.Instr{
				{Kind: ir.InstrBin, Dst: 1, Op: ir.OpAdd, A: ir.RegVal(0), B: ir.RegVal(2)},
			}, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.RegVal(1)}},
		},
	}
	mod := &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
	r := check.Module(mod)
	found := r.ByClass(check.ClassUseBeforeDef)
	if len(found) != 1 || !strings.Contains(found[0].Msg, "r2") {
		t.Fatalf("use of undefined r2 not caught:\n%s", r.String())
	}
}

func TestUseBeforeDefRequiresAllPathsDefined(t *testing.T) {
	// r1 is defined on the then-path only; the else-path reaches the use
	// with r1 undefined, so the must-defined analysis flags it. After
	// adding the else-path definition the finding disappears.
	build := func(defineOnElse bool) *ir.Module {
		elseInstrs := []ir.Instr{}
		if defineOnElse {
			elseInstrs = append(elseInstrs, ir.Instr{Kind: ir.InstrConst, Dst: 1, A: ir.ConstVal(7)})
		}
		f := &ir.Func{
			Name:    "paths",
			Params:  []ir.ParamKind{ir.ParamScalar},
			NumRegs: 2,
			Blocks: []*ir.Block{
				{ID: 0, Term: ir.Terminator{Kind: ir.TermCondBr, Cond: ir.RegVal(0), Succs: []int{1, 2}}},
				{ID: 1, Instrs: []ir.Instr{{Kind: ir.InstrConst, Dst: 1, A: ir.ConstVal(3)}},
					Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
				{ID: 2, Instrs: elseInstrs, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
				{ID: 3, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.RegVal(1)}},
			},
		}
		return &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
	}
	if r := check.Module(build(false)); len(r.ByClass(check.ClassUseBeforeDef)) == 0 {
		t.Fatalf("partially defined register not caught:\n%s", r.String())
	}
	if r := check.Module(build(true)); len(r.ByClass(check.ClassUseBeforeDef)) != 0 {
		t.Fatalf("fully defined register flagged:\n%s", r.String())
	}
}

func TestDataflowLintsUnreachableAndDeadStores(t *testing.T) {
	f := &ir.Func{
		Name:    "lints",
		NumRegs: 2,
		Blocks: []*ir.Block{
			{ID: 0, Instrs: []ir.Instr{
				{Kind: ir.InstrConst, Dst: 1, A: ir.ConstVal(1)}, // dead: overwritten below
				{Kind: ir.InstrConst, Dst: 1, A: ir.ConstVal(2)},
			}, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.RegVal(1)}},
			{ID: 1, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{0}}}, // unreachable
		},
	}
	mod := &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
	r := check.Module(mod)
	if len(r.ByClass(check.ClassDeadStore)) != 1 {
		t.Errorf("dead store not caught exactly once:\n%s", r.String())
	}
	if len(r.ByClass(check.ClassUnreachable)) != 1 {
		t.Errorf("unreachable block not caught exactly once:\n%s", r.String())
	}
	if !r.OK() {
		t.Errorf("lints must be warnings, got errors:\n%s", r.String())
	}
}

func TestStructureCheckWrapsIRVerify(t *testing.T) {
	mod := diamondModule()
	mod.Funcs[0].Blocks[1].Term.Succs[0] = 42
	r := check.Module(mod)
	if r.OK() || !hasClass(r, check.ClassStructure) {
		t.Fatalf("malformed IR not caught:\n%s", r.String())
	}
}

func TestReportAccounting(t *testing.T) {
	mod := diamondModule()
	prof := diamondProfile(t, mod, 1, 0)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	r := check.All(mod, prof, l, m, check.Options{Bounds: true})
	if !r.OK() || r.Err() != nil {
		t.Fatalf("healthy pipeline flagged: %v\n%s", r.Err(), r.String())
	}

	l.Funcs[0].Order[2], l.Funcs[0].Order[3] = l.Funcs[0].Order[3], l.Funcs[0].Order[2]
	l.Funcs[0].Pred[0] = 5
	broken := check.Layouts(mod, prof, l, m)
	if broken.OK() || broken.Err() == nil {
		t.Fatal("broken layout must produce a report error")
	}
	if got := broken.Errors() + broken.Warnings(); got != len(broken.Findings) {
		t.Errorf("severity accounting inconsistent: %d+%d != %d", broken.Errors(), broken.Warnings(), len(broken.Findings))
	}
	if len(broken.Classes()) == 0 {
		t.Error("Classes() empty on a non-empty report")
	}
	if !strings.Contains(broken.String(), "error") {
		t.Errorf("String() misses severity: %q", broken.String())
	}
}
