package check

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// Options selects which checker families a composite run executes.
type Options struct {
	// Bounds enables the bound-consistency chain (the expensive family:
	// it solves an assignment problem and runs Held-Karp subgradient
	// ascent per function).
	Bounds bool
	// BoundsOptions tunes the bound checks when enabled.
	BoundsOptions BoundsOptions
}

// All audits a full pipeline artifact set — the compiled module, the
// training profile, and a layout — with every applicable checker family:
// IR structure and dataflow lints, profile flow conservation, layout
// permutation validity, patch equivalence, placement and cost
// bookkeeping, and (optionally) the lower-bound chain.
func All(mod *ir.Module, prof *interp.Profile, l *layout.Layout, m machine.Model, opts Options) *Report {
	r := Module(mod)
	r.Merge(Flow(mod, prof))
	r.Merge(Layouts(mod, prof, l, m))
	if opts.Bounds {
		r.Merge(Bounds(mod, prof, l, m, opts.BoundsOptions))
	}
	return r
}
