package check_test

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/machine"
)

// TestVetAllBenchmarks runs the full checker — structure, dataflow,
// flow conservation, layout/patch/placement/cost, and the bound chain —
// over every bundled benchmark under every aligner. This is the
// acceptance gate: a pipeline stage that breaks an invariant fails here
// before it can skew any experiment.
func TestVetAllBenchmarks(t *testing.T) {
	model := machine.Alpha21164()
	aligners := []align.Aligner{
		align.Original{},
		align.PettisHansen{},
		&align.CalderGrunwald{},
		align.APPatch{},
		align.NewTSP(1),
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			// The smaller data set keeps the suite fast; conservation and
			// the bound chain are input-independent invariants.
			ds := &b.DataSets[len(b.DataSets)-1]
			prof := interp.NewProfile(mod)
			if _, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
				t.Fatalf("profiling run failed: %v", err)
			}
			for _, a := range aligners {
				l := a.Align(context.Background(), mod, prof, model)
				r := check.All(mod, prof, l, model, check.Options{
					Bounds:        true,
					BoundsOptions: check.BoundsOptions{HKIterations: 120},
				})
				if !r.OK() {
					t.Errorf("%s/%s: %d invariant violations:\n%s", b.Name, a.Name(), r.Errors(), r.String())
				}
				t.Logf("%s/%s: %d warnings", b.Name, a.Name(), r.Warnings())
			}
		})
	}
}
