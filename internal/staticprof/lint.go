package staticprof

import (
	"branchalign/internal/check"
	"branchalign/internal/ir"
)

// coldDeepRatio is the fraction of the entry frequency below which a
// block nested ≥ coldDeepDepth loops deep is flagged: code that deep is
// normally the hottest in its function, so a statically near-dead deep
// block usually means an over-guarded or vestigial inner loop.
const (
	coldDeepRatio = 0.05
	coldDeepDepth = 2
)

// Lint runs the static-profile structural lints over mod: unreachable
// blocks, irreducible loops, statically-infinite loops, and cold-but-deep
// regions. All findings are warnings — each one is legal IR, but each
// also degrades the estimator (and usually signals a source-level bug),
// so `balign vet` surfaces them next to the invariant checks.
func Lint(mod *ir.Module) *check.Report {
	r := &check.Report{}
	for _, f := range mod.Funcs {
		lintFunc(r, f)
	}
	return r
}

func lintFunc(r *check.Report, f *ir.Func) {
	ff := analyzeFunc(f)
	nest := ff.nest

	for b := range f.Blocks {
		if nest.RPONum[b] < 0 {
			r.Add(check.Warning, check.ClassUnreachable, f.Name, b,
				"no path from the entry reaches this block; the estimator assigns it zero flow")
		}
	}

	for _, e := range nest.IrreducibleEdges {
		r.Add(check.Warning, check.ClassIrreducible, f.Name, e.To,
			"retreating edge b%d -> b%d enters a cycle that is not a natural loop; frequency propagation only approximates multi-entry regions", e.From, e.To)
	}

	// A loop none of whose blocks can reach a return is statically
	// infinite: once entered it never exits. Report each such loop at its
	// header (outermost doomed loop only; inner loops of a doomed region
	// add nothing).
	for _, l := range nest.Loops {
		if !ff.doomed[l.Header] {
			continue
		}
		if p := l.Parent; p >= 0 && ff.doomed[nest.Loops[p].Header] {
			continue
		}
		r.Add(check.Warning, check.ClassInfiniteLoop, f.Name, l.Header,
			"loop at b%d can never reach a return: statically infinite (%d exit edges all dead)", l.Header, len(l.ExitEdges))
	}

	for b := range f.Blocks {
		if nest.Depth[b] < coldDeepDepth || ff.doomed[b] || ff.relFreq[0] <= 0 {
			continue
		}
		if ff.relFreq[b] < coldDeepRatio*ff.relFreq[0] {
			r.Add(check.Warning, check.ClassColdDeep, f.Name, b,
				"block sits %d loops deep yet the estimator gives it %.4fx the entry frequency; deep code this cold is usually over-guarded or vestigial", nest.Depth[b], ff.relFreq[b]/ff.relFreq[0])
		}
	}
}
