package staticprof_test

import (
	"testing"

	"branchalign/internal/bench"
	"branchalign/internal/cfganal"
	"branchalign/internal/check"
	"branchalign/internal/ir"
	"branchalign/internal/staticprof"
	"branchalign/internal/testutil"
)

// TestEstimateFlowConservation is the load-bearing invariant: on every
// bundled benchmark the synthetic profile must satisfy check.Flow exactly
// — the estimator's whole contract is that downstream stages cannot tell
// it from a measured profile.
func TestEstimateFlowConservation(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, info := staticprof.Estimate(mod)
			if err := prof.CheckShape(mod); err != nil {
				t.Fatalf("shape: %v", err)
			}
			if r := check.Flow(mod, prof); !r.OK() {
				t.Fatalf("flow conservation broken:\n%s", r)
			}
			for fi, f := range mod.Funcs {
				if !info.Funcs[fi].Converged {
					t.Errorf("func %s: integer fixpoint did not converge", f.Name)
				}
			}
			// The profile must be non-trivial: the entry function runs.
			ep := prof.Funcs[mod.EntryFunc]
			if ep.BlockCounts[0] == 0 {
				t.Error("entry function estimated never to run")
			}
		})
	}
}

// TestEstimateHotterInLoops checks the basic shape of the estimate: loop
// bodies are hotter than straight-line code around them, and nested loops
// hotter still.
func TestEstimateHotterInLoops(t *testing.T) {
	mod, err := testutil.Compile(`
func main(n) {
	var i;
	var j;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			s = s + j;
		}
	}
	return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prof, info := staticprof.Estimate(mod)
	if r := check.Flow(mod, prof); !r.OK() {
		t.Fatalf("flow conservation broken:\n%s", r)
	}
	rel := info.Funcs[0].RelFreq
	var depth1, depth2 float64
	for b, d := range cfganal.LoopDepth(mod.Funcs[0]) {
		switch d {
		case 1:
			if rel[b] > depth1 {
				depth1 = rel[b]
			}
		case 2:
			if rel[b] > depth2 {
				depth2 = rel[b]
			}
		}
	}
	if !(depth2 > depth1 && depth1 > rel[0]) {
		t.Errorf("loop nesting not reflected: entry=%.2f depth1=%.2f depth2=%.2f", rel[0], depth1, depth2)
	}
}

// TestEstimateInfiniteLoopZeroed: a function that can never return must
// get an all-zero profile (the only integer flow satisfying Kirchhoff
// with no exits), and a caller of it still conserves flow.
func TestEstimateInfiniteLoopZeroed(t *testing.T) {
	fb := ir.NewFuncBuilder("spin", nil)
	loop := fb.NewBlock("loop")
	fb.Br(loop)
	fb.SetInsert(loop)
	fb.Br(loop)
	spin := fb.Func()

	mb := ir.NewFuncBuilder("main", nil)
	r := mb.NewReg()
	mb.EmitCall(r, 1, nil)
	mb.Ret(ir.ConstVal(0))
	main := mb.Func()

	mod := &ir.Module{Funcs: []*ir.Func{main, spin}, EntryFunc: 0}
	prof, info := staticprof.Estimate(mod)
	if rep := check.Flow(mod, prof); !rep.OK() {
		t.Fatalf("flow conservation broken:\n%s", rep)
	}
	for b, c := range prof.Funcs[1].BlockCounts {
		if c != 0 {
			t.Errorf("spin b%d count %d, want 0", b, c)
		}
	}
	if !info.Funcs[1].Doomed[0] {
		t.Error("spin entry not marked doomed")
	}
	// main itself still runs despite calling a function that never
	// returns: the estimator is structural, not an abstract interpreter.
	if prof.Funcs[0].BlockCounts[0] == 0 {
		t.Error("main estimated never to run")
	}
}

// TestEstimateIrreducible: a multi-entry cycle must still produce an
// exactly conservative profile via the capped refinement.
func TestEstimateIrreducible(t *testing.T) {
	fb := ir.NewFuncBuilder("irr", []ir.ParamKind{ir.ParamScalar})
	a := fb.NewBlock("a")
	b := fb.NewBlock("b")
	ret := fb.NewBlock("ret")
	fb.CondBr(ir.RegVal(0), a, b)
	fb.SetInsert(a)
	fb.Br(b)
	fb.SetInsert(b)
	fb.CondBr(ir.RegVal(0), a, ret)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	mod := &ir.Module{Funcs: []*ir.Func{fb.Func()}, EntryFunc: 0}

	prof, info := staticprof.Estimate(mod)
	if rep := check.Flow(mod, prof); !rep.OK() {
		t.Fatalf("flow conservation broken:\n%s", rep)
	}
	if !info.Funcs[0].Irreducible {
		t.Error("irreducible region not detected")
	}
	if !info.Funcs[0].Converged {
		t.Error("integer fixpoint did not converge on the irreducible CFG")
	}
	if prof.Funcs[0].BlockCounts[ret] == 0 {
		t.Error("no flow reached the return")
	}
}

// TestEstimateRecursion: direct recursion must terminate (capped
// invocation fixpoint) and stay exactly conservative.
func TestEstimateRecursion(t *testing.T) {
	mod, err := testutil.Compile(`
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main(n) { return fib(n); }
`)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := staticprof.Estimate(mod)
	if rep := check.Flow(mod, prof); !rep.OK() {
		t.Fatalf("flow conservation broken:\n%s", rep)
	}
	fi := mod.FuncIndex("fib")
	if prof.Funcs[fi].BlockCounts[0] == 0 {
		t.Error("recursive callee estimated never to run")
	}
}

// TestEstimateDeterministic: two estimates of the same module must be
// bit-identical (the engine caches on profile bytes).
func TestEstimateDeterministic(t *testing.T) {
	b := bench.All()[2] // eqntott: branchy, recursive quicksort
	mod, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := staticprof.Estimate(mod)
	p2, _ := staticprof.Estimate(mod)
	for fi := range p1.Funcs {
		for bi := range p1.Funcs[fi].BlockCounts {
			if p1.Funcs[fi].BlockCounts[bi] != p2.Funcs[fi].BlockCounts[bi] {
				t.Fatalf("func %d block %d: %d vs %d", fi, bi,
					p1.Funcs[fi].BlockCounts[bi], p2.Funcs[fi].BlockCounts[bi])
			}
			for si := range p1.Funcs[fi].EdgeCounts[bi] {
				if p1.Funcs[fi].EdgeCounts[bi][si] != p2.Funcs[fi].EdgeCounts[bi][si] {
					t.Fatalf("func %d block %d succ %d differ", fi, bi, si)
				}
			}
		}
	}
	for fi := range p1.CallCounts {
		for gi := range p1.CallCounts[fi] {
			if p1.CallCounts[fi][gi] != p2.CallCounts[fi][gi] {
				t.Fatalf("call counts %d->%d differ", fi, gi)
			}
		}
	}
}

// TestLintFindings drives each lint class with a CFG built to trigger it.
func TestLintFindings(t *testing.T) {
	t.Run("infinite loop", func(t *testing.T) {
		mod, err := testutil.Compile(`func main() { while (1) { out(1); } return 0; }`)
		if err != nil {
			t.Fatal(err)
		}
		r := staticprof.Lint(mod)
		if len(r.ByClass(check.ClassInfiniteLoop)) == 0 {
			t.Errorf("while(1) not flagged:\n%s", r)
		}
	})
	t.Run("irreducible", func(t *testing.T) {
		fb := ir.NewFuncBuilder("irr", []ir.ParamKind{ir.ParamScalar})
		a := fb.NewBlock("a")
		b := fb.NewBlock("b")
		ret := fb.NewBlock("ret")
		fb.CondBr(ir.RegVal(0), a, b)
		fb.SetInsert(a)
		fb.Br(b)
		fb.SetInsert(b)
		fb.CondBr(ir.RegVal(0), a, ret)
		fb.SetInsert(ret)
		fb.Ret(ir.ConstVal(0))
		mod := &ir.Module{Funcs: []*ir.Func{fb.Func()}, EntryFunc: 0}
		r := staticprof.Lint(mod)
		if len(r.ByClass(check.ClassIrreducible)) == 0 {
			t.Errorf("irreducible cycle not flagged:\n%s", r)
		}
	})
	t.Run("unreachable", func(t *testing.T) {
		mod, err := testutil.Compile(`func main() { return 1; out(2); }`)
		if err != nil {
			t.Fatal(err)
		}
		r := staticprof.Lint(mod)
		if len(r.ByClass(check.ClassUnreachable)) == 0 {
			t.Skip("lowering produced no unreachable block")
		}
	})
	t.Run("clean benchmarks stay clean", func(t *testing.T) {
		for _, b := range bench.All() {
			mod, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			r := staticprof.Lint(mod)
			if !r.OK() {
				t.Errorf("%s: lint errors (lints must be warnings):\n%s", b.Name, r)
			}
			for _, cls := range []check.Class{check.ClassInfiniteLoop, check.ClassIrreducible} {
				if n := len(r.ByClass(cls)); n > 0 {
					t.Errorf("%s: %d unexpected %s findings", b.Name, n, cls)
				}
			}
		}
	})
}
