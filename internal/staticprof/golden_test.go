package staticprof

import (
	"math"
	"testing"

	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

// goldenAccuracy pins how well the static estimate tracks each
// benchmark's measured profile, on two axes:
//
//   - hitRate: the fraction of dynamically executed multi-way transfers
//     whose statically predicted hottest successor matches the measured
//     hottest successor (weighted by measured execution count).
//   - corr: Pearson correlation between estimated and measured edge
//     frequencies, each edge weighted as a fraction of its function's
//     measured flow (so hot functions dominate but scale cancels).
//
// The values are measurements, not aspirations: they document the
// estimator's current quality and catch silent regressions (or silent
// improvements worth re-pinning). Tolerance absorbs nothing — the
// estimator and interpreter are both deterministic — but the assertions
// are one-sided with slack so a future heuristic tweak that trades a
// point here for two points there doesn't need a golden churn.
var goldenAccuracy = map[string]struct{ hitRate, corr float64 }{
	"com.txt": {0.87, 0.82},
	"com.mov": {0.76, 0.84},
	"dod.re":  {0.83, 0.87},
	"dod.sm":  {0.84, 0.88},
	"eqn.fx":  {0.79, 0.30},
	"eqn.ip":  {0.78, 0.25},
	"esp.ti":  {0.81, 0.70},
	"esp.tl":  {0.98, 0.60},
	"su2.re":  {0.61, 0.92},
	"su2.sh":  {0.60, 0.92},
	"xli.q7":  {0.50, 0.96},
	"xli.ne":  {0.49, 0.97},
}

const goldenSlack = 0.03

// TestGoldenEstimateAccuracy compares the static estimate against the
// measured profile of every benchmark/data-set pair and checks both
// accuracy metrics against their pinned floors.
func TestGoldenEstimateAccuracy(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range bench.All() {
		mod, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		est, _ := Estimate(mod)
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof := interp.NewProfile(mod)
			if _, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof, MaxSteps: 1 << 31}); err != nil {
				t.Fatalf("%s.%s: %v", b.Abbr, ds.Name, err)
			}
			key := b.Abbr + "." + ds.Name
			seen[key] = true
			want, ok := goldenAccuracy[key]
			if !ok {
				t.Errorf("%s: no golden entry (add one)", key)
				continue
			}
			hit := directionHitRate(mod, est, prof)
			corr := weightedEdgeCorrelation(mod, est, prof)
			t.Logf("%s: direction hit rate %.3f (floor %.2f), edge correlation %.3f (floor %.2f)",
				key, hit, want.hitRate-goldenSlack, corr, want.corr-goldenSlack)
			if hit < want.hitRate-goldenSlack {
				t.Errorf("%s: direction hit rate %.3f below pinned %.2f-%.2f", key, hit, want.hitRate, goldenSlack)
			}
			if corr < want.corr-goldenSlack {
				t.Errorf("%s: edge correlation %.3f below pinned %.2f-%.2f", key, corr, want.corr, goldenSlack)
			}
		}
	}
	for key := range goldenAccuracy {
		if !seen[key] {
			t.Errorf("golden entry %s matches no benchmark/data set", key)
		}
	}
}

// directionHitRate computes the measured-flow-weighted fraction of
// multi-successor transfers whose estimated hottest successor is the
// measured hottest successor. Blocks the measured run never reached
// don't count either way.
func directionHitRate(mod *ir.Module, est, prof *interp.Profile) float64 {
	var hit, total int64
	for fi, f := range mod.Funcs {
		for bi, blk := range f.Blocks {
			if len(blk.Term.Succs) < 2 {
				continue
			}
			measured := prof.Funcs[fi].EdgeCounts[bi]
			var sum int64
			mBest := 0
			for si, c := range measured {
				sum += c
				if c > measured[mBest] {
					mBest = si
				}
			}
			if sum == 0 {
				continue
			}
			estimated := est.Funcs[fi].EdgeCounts[bi]
			eBest := 0
			for si, c := range estimated {
				if c > estimated[eBest] {
					eBest = si
				}
			}
			total += sum
			if eBest == mBest {
				hit += sum
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}

// weightedEdgeCorrelation computes the Pearson correlation between
// estimated and measured edge frequencies. Each function's edges are
// normalized by that function's totals first (intraprocedural layout
// only sees within-function ratios), and each edge is weighted by its
// share of the function's measured flow.
func weightedEdgeCorrelation(mod *ir.Module, est, prof *interp.Profile) float64 {
	type point struct{ w, x, y float64 }
	var pts []point
	for fi, f := range mod.Funcs {
		var mTot, eTot int64
		for bi := range f.Blocks {
			for si := range prof.Funcs[fi].EdgeCounts[bi] {
				mTot += prof.Funcs[fi].EdgeCounts[bi][si]
				eTot += est.Funcs[fi].EdgeCounts[bi][si]
			}
		}
		if mTot == 0 || eTot == 0 {
			continue
		}
		for bi := range f.Blocks {
			for si := range prof.Funcs[fi].EdgeCounts[bi] {
				m := float64(prof.Funcs[fi].EdgeCounts[bi][si]) / float64(mTot)
				e := float64(est.Funcs[fi].EdgeCounts[bi][si]) / float64(eTot)
				pts = append(pts, point{w: m, x: e, y: m})
			}
		}
	}
	var sw, sx, sy float64
	for _, p := range pts {
		sw += p.w
		sx += p.w * p.x
		sy += p.w * p.y
	}
	if sw == 0 {
		return 0
	}
	mx, my := sx/sw, sy/sw
	var cxy, cxx, cyy float64
	for _, p := range pts {
		cxy += p.w * (p.x - mx) * (p.y - my)
		cxx += p.w * (p.x - mx) * (p.x - mx)
		cyy += p.w * (p.y - my) * (p.y - my)
	}
	if cxx == 0 || cyy == 0 {
		return 0
	}
	return cxy / math.Sqrt(cxx*cyy)
}
