package staticprof

import (
	"branchalign/internal/cfganal"
	"branchalign/internal/ir"
)

// Ball–Larus heuristic hit rates (PPoPP'93 Table 2, rounded): each is the
// empirical probability that the predicted successor of a two-way branch
// is the one taken, given the heuristic applies. Independent applicable
// heuristics are fused by Dempster–Shafer evidence combination (Wu &
// Larus, MICRO'94), then clamped so no branch is ever statically certain.
const (
	probLoopBack   = 0.88 // back edge taken (loop iterates)
	probLoopExit   = 0.80 // loop-exit edge not taken
	probLoopHeader = 0.75 // edge into a (different) loop header taken
	probOpcode     = 0.84 // x<0, x<=0, x==c comparisons fail
	probBounds     = 0.78 // x>c, x>=c for positive c (bounds/overflow guards) fail
	probCall       = 0.78 // successor block containing a call not taken
	probReturn     = 0.72 // successor block returning not taken
	probStore      = 0.55 // successor block storing not taken
	probGuard      = 0.62 // pointer/array-index guard: loads proceed

	// probMin/probMax clamp every combined branch probability: even a
	// unanimously predicted branch keeps 2% mass on the cold side, which
	// keeps the flow fixpoint finite and mirrors the paper's observation
	// that alignment degrades gracefully under imperfect profiles.
	probMin = 0.02
	probMax = 0.98
)

// dempsterShafer fuses two independent probability estimates for the same
// binary event: the result reinforces agreement and attenuates conflict.
func dempsterShafer(p, q float64) float64 {
	return p * q / (p*q + (1-p)*(1-q))
}

func clampProb(p float64) float64 {
	if p < probMin {
		return probMin
	}
	if p > probMax {
		return probMax
	}
	return p
}

// branchProbs assigns every block of f a probability distribution over
// its successors. Unconditional branches get [1]; returns get []; switch
// successors split uniformly (no Ball–Larus analogue exists for multiway
// branches, and the bundled benchmarks drive switches data-dependently);
// conditional branches run the heuristic battery below.
func branchProbs(f *ir.Func, nest *cfganal.LoopNest) [][]float64 {
	probs := make([][]float64, len(f.Blocks))
	for b, blk := range f.Blocks {
		switch blk.Term.Kind {
		case ir.TermRet:
			probs[b] = nil
		case ir.TermBr:
			probs[b] = []float64{1}
		case ir.TermSwitch:
			n := len(blk.Term.Succs)
			row := make([]float64, n)
			if blk.Term.Cond.IsConst {
				// Constant scrutinee: the branch always goes one way.
				hit := n - 1 // default target
				for ci, cv := range blk.Term.Cases {
					if cv == blk.Term.Cond.Const {
						hit = ci
						break
					}
				}
				row[hit] = 1
			} else {
				for i := range row {
					row[i] = 1 / float64(n)
				}
			}
			probs[b] = row
		case ir.TermCondBr:
			if blk.Term.Cond.IsConst {
				// Constant condition (e.g. while(1)): the untaken edge is
				// statically impossible, which is what lets the doomed-block
				// analysis prove a loop infinite.
				if blk.Term.Cond.Const != 0 {
					probs[b] = []float64{1, 0}
				} else {
					probs[b] = []float64{0, 1}
				}
				continue
			}
			p := condProb(f, nest, b)
			probs[b] = []float64{p, 1 - p}
		}
	}
	return probs
}

// condProb estimates the probability that block b's conditional branch
// takes its then-successor (Succs[0]).
func condProb(f *ir.Func, nest *cfganal.LoopNest, b int) float64 {
	t := f.Blocks[b].Term
	then, els := t.Succs[0], t.Succs[1]
	p := 0.5

	apply := func(thenProb float64) {
		p = dempsterShafer(p, thenProb)
	}

	// Loop-back: a back edge (or irreducible retreating edge — same
	// dynamic shape) is predicted taken. When both directions loop back
	// the evidence cancels, which the symmetric application handles.
	thenBack := nest.Retreating(b, then)
	elsBack := nest.Retreating(b, els)
	if thenBack {
		apply(probLoopBack)
	}
	if elsBack {
		apply(1 - probLoopBack)
	}

	// Loop-exit: a branch inside a loop avoids leaving it. Only applies
	// to the non-latch direction (the loop-back heuristic already voted
	// for latches).
	if li := nest.LoopOf[b]; li >= 0 {
		loop := nest.Loops[li]
		thenExits := !loop.Contains(then)
		elsExits := !loop.Contains(els)
		if thenExits && !elsExits {
			apply(1 - probLoopExit)
		}
		if elsExits && !thenExits {
			apply(probLoopExit)
		}
	}

	// Loop-header: an edge entering a loop (header of a loop not
	// containing b) is predicted taken.
	if !thenBack && !elsBack {
		thenHdr := headerOfOtherLoop(nest, b, then)
		elsHdr := headerOfOtherLoop(nest, b, els)
		if thenHdr && !elsHdr {
			apply(probLoopHeader)
		}
		if elsHdr && !thenHdr {
			apply(1 - probLoopHeader)
		}
	}

	// Opcode (Ball–Larus OH): equality against a constant and order
	// comparisons against zero or a negative constant fail more often
	// than they succeed (error checks, sign tests, sentinel probes).
	// Of the order comparisons against a *positive* constant, only
	// x>c / x>=c carry a signal: they are overwhelmingly bounds and
	// overflow guards that fail in the steady state. Their negations
	// x<c / x<=c mix loop conditions with data-dependent class tests
	// (e.g. eqntott's leaf-vs-operator dispatch) and get no vote.
	if op, c, ok := condOpcode(f, b); ok {
		switch {
		case op == ir.OpEq:
			apply(1 - probOpcode)
		case op == ir.OpNe:
			apply(probOpcode)
		case (op == ir.OpLt || op == ir.OpLe) && c <= 0:
			apply(1 - probOpcode)
		case (op == ir.OpGt || op == ir.OpGe) && c <= 0:
			apply(probOpcode)
		case op == ir.OpGt || op == ir.OpGe: // c > 0: guard shape
			apply(1 - probBounds)
		}
	}

	// Successor-shape heuristics: calls, returns and stores in a
	// successor block make that direction colder. Applied only when the
	// evidence is asymmetric.
	applyShape := func(thenHas, elsHas bool, prob float64) {
		if thenHas && !elsHas {
			apply(1 - prob)
		}
		if elsHas && !thenHas {
			apply(prob)
		}
	}
	applyShape(blockCalls(f.Blocks[then]), blockCalls(f.Blocks[els]), probCall)
	applyShape(f.Blocks[then].Term.Kind == ir.TermRet, f.Blocks[els].Term.Kind == ir.TermRet, probReturn)
	applyShape(blockStores(f.Blocks[then]), blockStores(f.Blocks[els]), probStore)
	applyShape(blockLoads(f.Blocks[then]), blockLoads(f.Blocks[els]), 1-probGuard)

	return clampProb(p)
}

// headerOfOtherLoop reports whether succ is the header of a loop that
// does not contain b (i.e. the edge b -> succ enters a fresh loop).
func headerOfOtherLoop(nest *cfganal.LoopNest, b, succ int) bool {
	for _, l := range nest.Loops {
		if l.Header == succ && !l.Contains(b) {
			return true
		}
	}
	return false
}

// condOpcode returns the comparison operator and constant right operand
// defining block b's branch condition, when the condition register is
// produced by a comparison in b itself against a (locally resolvable)
// constant — the "compare against a constant" shape the opcode heuristic
// was measured on. The Mini-C lowering emits the comparison immediately
// before the branch, so a backward scan of the block suffices.
func condOpcode(f *ir.Func, b int) (ir.Op, int64, bool) {
	t := f.Blocks[b].Term
	if t.Cond.IsConst {
		return 0, 0, false
	}
	instrs := f.Blocks[b].Instrs
	for i := len(instrs) - 1; i >= 0; i-- {
		in := instrs[i]
		if in.Kind != ir.InstrBin || in.Dst != t.Cond.Reg {
			if writesReg(in, t.Cond.Reg) {
				return 0, 0, false // condition defined by a non-comparison
			}
			continue
		}
		switch in.Op {
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			if c, ok := resolveConst(instrs, i, in.B, 4); ok {
				return in.Op, c, ok
			}
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// resolveConst evaluates v to a constant using only the instructions of
// the same block before position upTo: immediate constants, constant
// moves, and unary negation of a constant (the lowering's shape for
// negative literals, e.g. `r36 = neg 8000000`). depth bounds the chain.
func resolveConst(instrs []ir.Instr, upTo int, v ir.Value, depth int) (int64, bool) {
	if v.IsConst {
		return v.Const, true
	}
	if depth == 0 {
		return 0, false
	}
	for i := upTo - 1; i >= 0; i-- {
		in := instrs[i]
		if !writesReg(in, v.Reg) {
			continue
		}
		switch in.Kind {
		case ir.InstrConst, ir.InstrMove:
			return resolveConst(instrs, i, in.A, depth-1)
		case ir.InstrUn:
			if in.Op == ir.OpNeg {
				if c, ok := resolveConst(instrs, i, in.A, depth-1); ok {
					return -c, true
				}
			}
		}
		return 0, false
	}
	return 0, false
}

func writesReg(in ir.Instr, r ir.Reg) bool {
	switch in.Kind {
	case ir.InstrConst, ir.InstrMove, ir.InstrBin, ir.InstrUn, ir.InstrLoad, ir.InstrGLoad, ir.InstrCall:
		return in.Dst == r
	}
	return false
}

func blockCalls(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.Kind == ir.InstrCall {
			return true
		}
	}
	return false
}

func blockStores(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.Kind == ir.InstrStore || in.Kind == ir.InstrGStore {
			return true
		}
	}
	return false
}

func blockLoads(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.Kind == ir.InstrLoad || in.Kind == ir.InstrGLoad {
			return true
		}
	}
	return false
}
