package staticprof

import (
	"branchalign/internal/cfganal"
	"branchalign/internal/ir"
)

const (
	// cpMax clamps a loop's cyclic probability, bounding the header
	// frequency multiplier 1/(1-cp) at maxTrip iterations per entry —
	// Wu–Larus's guard against multi-latch loops whose combined back-edge
	// probability approaches 1.
	maxTrip = 64
	cpMax   = 1 - 1.0/maxTrip

	// irreduciblePasses caps the Gauss–Seidel refinement that cleans up
	// after irreducible regions the structured propagation cannot model.
	irreduciblePasses = 256
	// integerPasses caps the exact integer fixpoint. The iteration is
	// monotone from below (apportion is monotone in its input for the
	// 2-way and uniform splits the IR produces), so it terminates, but
	// the horizon scales with the loop multiplier times the flow's digit
	// count: a do-while at the probMax clamp retains 98% per pass, and
	// filling it with ~1e12 units takes ~5e4 passes (eqntott's qsort,
	// measured). Passes are O(blocks) and stop at convergence, so the
	// generous cap costs nothing on the happy path.
	integerPasses = 1 << 20
)

// funcFlow is the per-function analysis state threaded through the
// estimation phases.
type funcFlow struct {
	f    *ir.Func
	nest *cfganal.LoopNest
	// probs[b][si] is the successor distribution after heuristics and
	// doomed-successor renormalization; rows sum to 1 (or are empty).
	probs [][]float64
	// doomed marks blocks from which no return is reachable: any flow
	// entering them would never exit, so the estimator routes around them.
	doomed []bool
	// relFreq[b] is the expected executions of b per invocation.
	relFreq []float64
	// cyc[li] is the cyclic probability of nest.Loops[li], clamped.
	cyc []float64
	// converged records whether the integer fixpoint settled; a false
	// value means the function was demoted to an all-zero profile.
	converged bool
}

// analyzeFunc runs loop analysis, heuristics, doomed-block routing and
// real-valued frequency propagation for one function.
func analyzeFunc(f *ir.Func) *funcFlow {
	ff := &funcFlow{f: f, nest: cfganal.AnalyzeLoops(f)}
	ff.probs = branchProbs(f, ff.nest)
	ff.computeDoomed()
	ff.renormalize()
	ff.propagateReal()
	return ff
}

// computeDoomed marks blocks that cannot reach any return: reverse
// reachability from the return blocks, over *possible* edges only — a
// constant branch condition prunes its untaken edge, which is how a
// while(1) body is proven flow-dead even though its exit block exists in
// the CFG. Unreachable blocks are also marked (zero flow either way).
func (ff *funcFlow) computeDoomed() {
	n := len(ff.f.Blocks)
	canRet := make([]bool, n)
	preds := make([][]int, n)
	for b, blk := range ff.f.Blocks {
		for si, s := range blk.Term.Succs {
			if ff.probs[b][si] > 0 {
				preds[s] = append(preds[s], b)
			}
		}
	}
	var stack []int
	for b, blk := range ff.f.Blocks {
		if blk.Term.Kind == ir.TermRet {
			canRet[b] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b] {
			if !canRet[p] {
				canRet[p] = true
				stack = append(stack, p)
			}
		}
	}
	ff.doomed = make([]bool, n)
	for b := range ff.doomed {
		ff.doomed[b] = !canRet[b] || ff.nest.RPONum[b] < 0
	}
}

// renormalize zeroes the probability of edges into doomed blocks and
// rescales each row to sum to 1 again, so the propagated flow satisfies
// Kirchhoff's law on the live subgraph by construction. A non-doomed
// block always keeps at least one non-doomed successor (otherwise it
// could not reach a return and would be doomed itself).
func (ff *funcFlow) renormalize() {
	for b, blk := range ff.f.Blocks {
		if ff.doomed[b] || len(ff.probs[b]) == 0 {
			continue
		}
		sum := 0.0
		for si, s := range blk.Term.Succs {
			if ff.doomed[s] {
				ff.probs[b][si] = 0
			}
			sum += ff.probs[b][si]
		}
		if sum <= 0 {
			continue // defensive; cannot happen for non-doomed blocks
		}
		for si := range ff.probs[b] {
			ff.probs[b][si] /= sum
		}
	}
}

// propagateReal computes per-invocation block frequencies: Wu–Larus
// propagation in loop-nest order (cyclic probability per merged loop,
// inner first, header multiplier 1/(1-cp)), followed by capped
// Gauss–Seidel refinement when irreducible retreating edges remain.
func (ff *funcFlow) propagateReal() {
	nest := ff.nest
	ff.cyc = make([]float64, len(nest.Loops))
	// Cyclic probabilities inner-first: inject 1 at the header, propagate
	// through the loop body only, and sum the flow returning along the
	// loop's own back edges. Inner loops are already summarized by their
	// multiplier.
	for li, l := range nest.Loops {
		flow := ff.flowPass(l.Header, 1, func(b int) bool { return l.Contains(b) }, li)
		cp := 0.0
		for _, e := range l.BackEdges {
			cp += flow[e.From] * ff.probs[e.From][e.SuccIdx]
		}
		if cp > cpMax {
			cp = cpMax
		}
		ff.cyc[li] = cp
	}
	ff.relFreq = ff.flowPass(0, 1, func(b int) bool { return true }, -1)
	if nest.Irreducible() {
		ff.refineIrreducible()
	}
}

// flowPass propagates flow from src (injecting amount) through the blocks
// accepted by in, in reverse postorder, skipping retreating edges. A
// block that heads a loop other than skipLoop has its incoming flow
// amplified by that loop's 1/(1-cp) multiplier. Returns per-block flow.
func (ff *funcFlow) flowPass(src int, amount float64, in func(int) bool, skipLoop int) []float64 {
	nest := ff.nest
	flow := make([]float64, len(ff.f.Blocks))
	inflow := make([]float64, len(ff.f.Blocks))
	inflow[src] = amount
	for _, b := range nest.Dom.ReversePostorder() {
		if !in(b) || ff.doomed[b] {
			continue
		}
		fb := inflow[b]
		if li := loopHeadedBy(nest, b); li >= 0 && li != skipLoop && li < len(ff.cyc) {
			fb /= 1 - ff.cyc[li]
		}
		flow[b] = fb
		for si, s := range ff.f.Blocks[b].Term.Succs {
			if nest.Retreating(b, s) || !in(s) || ff.doomed[s] {
				continue
			}
			inflow[s] += fb * ff.probs[b][si]
		}
	}
	return flow
}

// loopHeadedBy returns the index of the loop whose header is b, or -1
// (merged loops have unique headers).
func loopHeadedBy(nest *cfganal.LoopNest, b int) int {
	for li, l := range nest.Loops {
		if l.Header == b {
			return li
		}
	}
	return -1
}

// refineIrreducible iterates the true flow equations — every edge,
// retreating ones included, at its face-value probability — from the
// structured solution until the retreating flows settle or the pass cap
// hits. With doomed blocks routed around, every remaining cycle leaks
// probability ≥ 1-probMax per iteration, so the iteration contracts.
func (ff *funcFlow) refineIrreducible() {
	nest := ff.nest
	n := len(ff.f.Blocks)
	// Retreating-edge flows carried between passes, seeded from the
	// structured solution.
	carry := map[cfganal.Edge]float64{}
	for b := range ff.f.Blocks {
		if ff.doomed[b] {
			continue
		}
		for si, s := range ff.f.Blocks[b].Term.Succs {
			if nest.Retreating(b, s) && !ff.doomed[s] {
				carry[cfganal.Edge{From: b, SuccIdx: si, To: s}] = ff.relFreq[b] * ff.probs[b][si]
			}
		}
	}
	edges := make([]cfganal.Edge, 0, len(carry))
	for b := range ff.f.Blocks {
		for si, s := range ff.f.Blocks[b].Term.Succs {
			e := cfganal.Edge{From: b, SuccIdx: si, To: s}
			if _, ok := carry[e]; ok {
				edges = append(edges, e)
			}
		}
	}
	flow := make([]float64, n)
	for pass := 0; pass < irreduciblePasses; pass++ {
		inflow := make([]float64, n)
		inflow[0] = 1
		for _, e := range edges {
			inflow[e.To] += carry[e]
		}
		for _, b := range nest.Dom.ReversePostorder() {
			if ff.doomed[b] {
				continue
			}
			flow[b] = inflow[b]
			for si, s := range ff.f.Blocks[b].Term.Succs {
				if nest.Retreating(b, s) || ff.doomed[s] {
					continue
				}
				inflow[s] += flow[b] * ff.probs[b][si]
			}
		}
		maxDelta := 0.0
		for _, e := range edges {
			next := flow[e.From] * ff.probs[e.From][e.SuccIdx]
			if d := abs(next - carry[e]); d > maxDelta {
				maxDelta = d
			}
			carry[e] = next
		}
		if maxDelta < 1e-12 {
			break
		}
	}
	ff.relFreq = flow
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// emitInteger computes an exact-integer flow assignment carrying entries
// units of flow from the entry to the returns. It iterates the flow
// equations with retreating-edge flows carried across passes; a pass that
// changes no retreating flow is an exact fixpoint, at which point every
// block satisfies Kirchhoff's law to the last unit (check.Flow passes by
// construction). Returns (blockCounts, edgeCounts, converged); on
// non-convergence — possible only through apportionment oscillation, not
// observed in practice — the caller demotes the function to all-zero.
func (ff *funcFlow) emitInteger(entries int64) ([]int64, [][]int64, bool) {
	f, nest := ff.f, ff.nest
	n := len(f.Blocks)
	counts := make([]int64, n)
	flows := make([][]int64, n)
	for b, blk := range f.Blocks {
		flows[b] = make([]int64, len(blk.Term.Succs))
	}
	if entries <= 0 || ff.doomed[0] {
		return counts, flows, true
	}

	type redge struct{ from, si int }
	var retreats []redge
	for b, blk := range f.Blocks {
		if ff.doomed[b] {
			continue
		}
		for si, s := range blk.Term.Succs {
			if nest.Retreating(b, s) && !ff.doomed[s] {
				retreats = append(retreats, redge{b, si})
			}
		}
	}
	carry := make([]int64, len(retreats))

	rpo := nest.Dom.ReversePostorder()
	for pass := 0; pass < integerPasses; pass++ {
		inflow := make([]int64, n)
		inflow[0] = entries
		for ri, re := range retreats {
			inflow[f.Blocks[re.from].Term.Succs[re.si]] += carry[ri]
		}
		for _, b := range rpo {
			if ff.doomed[b] {
				continue
			}
			counts[b] = inflow[b]
			apportion(counts[b], ff.probs[b], flows[b])
			for si, s := range f.Blocks[b].Term.Succs {
				if nest.Retreating(b, s) || ff.doomed[s] {
					continue
				}
				inflow[s] += flows[b][si]
			}
		}
		changed := false
		for ri, re := range retreats {
			next := flows[re.from][re.si]
			if next != carry[ri] {
				carry[ri] = next
				changed = true
			}
		}
		if !changed {
			return counts, flows, true
		}
	}
	return counts, flows, false
}

// apportion splits n units across the successor distribution probs into
// out, exactly: Σ out = n, out[i] ≥ 0, zero-probability successors get
// exactly zero. Largest-remainder method, ties to the lower index, so the
// split is deterministic and as proportional as integers allow.
func apportion(n int64, probs []float64, out []int64) {
	for i := range out {
		out[i] = 0
	}
	if n <= 0 || len(probs) == 0 {
		return
	}
	type rem struct {
		idx  int
		frac float64
	}
	var sum int64
	rems := make([]rem, 0, len(probs))
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		q := float64(n) * p
		base := int64(q)
		if base > n {
			base = n
		}
		out[i] = base
		sum += base
		rems = append(rems, rem{i, q - float64(base)})
	}
	if len(rems) == 0 {
		out[0] = n // defensive: all-zero distribution on a live block
		return
	}
	// Distribute the remainder by descending fractional part, ties to the
	// lower index; wrap around defensively if float error left more slack
	// than successors.
	for si := 1; si < len(rems); si++ {
		for sj := si; sj > 0 && (rems[sj].frac > rems[sj-1].frac+1e-15); sj-- {
			rems[sj], rems[sj-1] = rems[sj-1], rems[sj]
		}
	}
	for k := 0; sum < n; k++ {
		out[rems[k%len(rems)].idx]++
		sum++
	}
	for k := 0; sum > n; k++ {
		i := rems[len(rems)-1-k%len(rems)].idx
		if out[i] > 0 {
			out[i]--
			sum--
		}
	}
}
