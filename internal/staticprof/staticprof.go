// Package staticprof estimates an execution profile for a module from
// CFG structure alone — no training input, no interpreter run. It is the
// profile-free fallback for branch alignment: Ball–Larus branch
// heuristics fused by Wu–Larus evidence combination give per-branch taken
// probabilities, frequencies propagate through the loop nest (cyclic
// probabilities inner-first, capped iteration over irreducible
// leftovers), and an exact integer fixpoint emits an interp.Profile that
// satisfies check.Flow's Kirchhoff invariants by construction — the rest
// of the pipeline cannot tell it from a measured profile except by
// asking.
//
// The companion Lint pass reports the structural pathologies the
// estimator routes around (unreachable blocks, irreducible loops,
// statically-infinite loops) plus deep-but-cold regions, through the
// shared check.Report machinery.
package staticprof

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

const (
	// scaleTarget is the flow the estimator tries to carry through the
	// hottest block: large enough that apportionment rounding is noise,
	// small enough that int64 arithmetic has ~6 decimal digits of
	// headroom over the deepest loop amplification.
	scaleTarget = 1e12
	// scaleMax caps per-invocation scaling so shallow modules still get
	// plausible absolute counts rather than astronomically hot entries.
	scaleMax = 1 << 20
	// invocationCap bounds the interprocedural invocation estimate, the
	// capped-iteration stand-in for unbounded recursion.
	invocationCap = 1e9
	// invocationPasses caps the call-graph fixpoint (handles recursion
	// cycles; acyclic call graphs settle in ≤ #funcs passes).
	invocationPasses = 64
)

// Info exposes the estimator's intermediate analysis for diagnostics,
// linting and tests.
type Info struct {
	// Funcs holds per-function analysis state, parallel to mod.Funcs.
	Funcs []*FuncInfo
	// Invocations is the real-valued interprocedural invocation estimate
	// per function (entry function ≥ 1).
	Invocations []float64
	// Scale is the integer flow injected per estimated invocation unit.
	Scale int64
}

// FuncInfo is the per-function slice of Info.
type FuncInfo struct {
	// Probs[b][si] is the estimated probability that block b transfers
	// control to its si-th successor (rows sum to 1; empty for returns).
	Probs [][]float64
	// RelFreq[b] is the expected executions of block b per invocation.
	RelFreq []float64
	// Doomed marks blocks from which no return is reachable (including
	// unreachable blocks); the estimator assigns them zero flow.
	Doomed []bool
	// Irreducible reports retreating edges that are not natural-loop back
	// edges (multi-entry cycles).
	Irreducible bool
	// Converged is false when the integer fixpoint was demoted to an
	// all-zero function profile.
	Converged bool
}

// Estimate synthesizes a profile for mod from static analysis only. The
// result always satisfies check.Flow exactly; Info reports what the
// estimator believed along the way.
func Estimate(mod *ir.Module) (*interp.Profile, *Info) {
	nf := len(mod.Funcs)
	flows := make([]*funcFlow, nf)
	for fi, f := range mod.Funcs {
		flows[fi] = analyzeFunc(f)
	}

	inv := invocations(mod, flows)

	// Scale so the hottest estimated block carries ~scaleTarget units.
	maxFreq := 1.0
	for fi, ff := range flows {
		for _, rf := range ff.relFreq {
			if v := inv[fi] * rf; v > maxFreq {
				maxFreq = v
			}
		}
	}
	scale := int64(scaleTarget / maxFreq)
	if scale < 1 {
		scale = 1
	}
	if scale > scaleMax {
		scale = scaleMax
	}

	prof := interp.NewProfile(mod)
	info := &Info{Funcs: make([]*FuncInfo, nf), Invocations: inv, Scale: scale}
	entries := make([]int64, nf)
	for fi, ff := range flows {
		want := int64(inv[fi]*float64(scale) + 0.5)
		counts, edges, ok := ff.emitInteger(want)
		ff.converged = ok
		if !ok {
			// Demote to the all-zero profile, which is trivially
			// conservative; entries must then be zero too.
			counts, edges, _ = ff.emitInteger(0)
			want = 0
		}
		if ff.doomed[0] {
			want = 0 // function can never return: estimator refuses to enter
		}
		prof.Funcs[fi] = &interp.FuncProfile{BlockCounts: counts, EdgeCounts: edges}
		entries[fi] = want
		info.Funcs[fi] = &FuncInfo{
			Probs:       ff.probs,
			RelFreq:     ff.relFreq,
			Doomed:      ff.doomed,
			Irreducible: ff.nest.Irreducible(),
			Converged:   ok,
		}
	}

	fillCallCounts(mod, flows, inv, entries, prof)
	return prof, info
}

// invocations estimates how many times each function runs per top-level
// run: calls-per-invocation rates from the real-valued block frequencies,
// iterated over the call graph with a cap standing in for unbounded
// recursion.
func invocations(mod *ir.Module, flows []*funcFlow) []float64 {
	nf := len(mod.Funcs)
	rate := callRates(mod, flows)
	inv := make([]float64, nf)
	for pass := 0; pass < invocationPasses; pass++ {
		next := make([]float64, nf)
		next[mod.EntryFunc] = 1
		for fi := range mod.Funcs {
			for gi := range mod.Funcs {
				next[gi] += inv[fi] * rate[fi][gi]
			}
		}
		maxDelta := 0.0
		for gi := range next {
			if next[gi] > invocationCap {
				next[gi] = invocationCap
			}
			if d := abs(next[gi] - inv[gi]); d > maxDelta {
				maxDelta = d
			}
		}
		inv = next
		if maxDelta < 1e-9 {
			break
		}
	}
	return inv
}

// callRates returns rate[f][g], the expected number of calls from f to g
// per invocation of f.
func callRates(mod *ir.Module, flows []*funcFlow) [][]float64 {
	rate := make([][]float64, len(mod.Funcs))
	for fi, f := range mod.Funcs {
		rate[fi] = make([]float64, len(mod.Funcs))
		ff := flows[fi]
		for b, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Kind == ir.InstrCall {
					rate[fi][in.Callee] += ff.relFreq[b]
				}
			}
		}
	}
	return rate
}

// fillCallCounts builds a weighted call graph consistent with the emitted
// function profiles: for every non-entry function, the column sum must
// equal its entry count exactly (check.Flow's call-graph identity), so
// each function's entries are apportioned across its static callers by
// their estimated call volume. The module entry function's entries are
// booked as top-level runs (the identity there is an inequality).
func fillCallCounts(mod *ir.Module, flows []*funcFlow, inv []float64, entries []int64, prof *interp.Profile) {
	for gi := range mod.Funcs {
		if gi == mod.EntryFunc || entries[gi] == 0 {
			continue
		}
		var callers []int
		var weights []float64
		totalW := 0.0
		for fi, f := range mod.Funcs {
			w := 0.0
			ff := flows[fi]
			for b, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Kind == ir.InstrCall && in.Callee == gi {
						w += ff.relFreq[b]
					}
				}
			}
			if w > 0 {
				w *= inv[fi]
				if w <= 0 {
					w = 1e-9 // static call site in a never-run caller: keep it eligible
				}
				callers = append(callers, fi)
				weights = append(weights, w)
				totalW += w
			}
		}
		if len(callers) == 0 {
			// A function with entries but no static caller cannot satisfy
			// the call-graph identity; refuse to claim it ran. (Unreachable
			// in practice: invocations() only feeds flow through real call
			// sites, so entries > 0 implies a caller.)
			zeroFunc(prof.Funcs[gi])
			continue
		}
		probs := make([]float64, len(weights))
		for i, w := range weights {
			probs[i] = w / totalW
		}
		out := make([]int64, len(callers))
		apportion(entries[gi], probs, out)
		for i, fi := range callers {
			prof.CallCounts[fi][gi] = out[i]
		}
	}
}

func zeroFunc(fp *interp.FuncProfile) {
	for b := range fp.BlockCounts {
		fp.BlockCounts[b] = 0
		for si := range fp.EdgeCounts[b] {
			fp.EdgeCounts[b][si] = 0
		}
	}
}
