package tsp

import (
	"context"
	"math/rand"

	"branchalign/internal/obs"
)

// DoubleBridge applies the classic 4-opt double-bridge kick to tour t and
// returns a new tour. The tour is cut into four consecutive segments
// A B C D and reassembled as A C B D. The move is reversal-free, so it is
// feasible on the locked symmetric transformation (it corresponds to the
// "randomly-chosen 4-Opt move" of Martin, Otto and Felten used by the
// paper's solver). Tours with fewer than 4 cities are returned unchanged.
func DoubleBridge(t Tour, rng *rand.Rand) Tour {
	n := len(t)
	out := t.Clone()
	if n < 4 {
		return out
	}
	// Pick 1 <= p1 < p2 < p3 < n.
	p1 := 1 + rng.Intn(n-3)
	p2 := p1 + 1 + rng.Intn(n-p1-2)
	p3 := p2 + 1 + rng.Intn(n-p2-1)
	out = out[:0]
	out = append(out, t[:p1]...)
	out = append(out, t[p2:p3]...)
	out = append(out, t[p1:p2]...)
	out = append(out, t[p3:]...)
	return out
}

// IteratedThreeOpt runs Martin-Otto-Felten iterated local search: optimize
// the start tour to a 3-opt local optimum, then repeatedly kick with a
// double bridge, re-optimize, and keep the better of the incumbent and the
// kicked solution. It performs iters kick-and-reoptimize rounds and
// returns the best tour found with its cost.
func IteratedThreeOpt(m Costs, nb *Neighbors, start Tour, iters int, rng *rand.Rand) (Tour, Cost) {
	t, c, _ := iteratedThreeOpt(m, nb, start, iters, rng, nil, nil)
	return t, c
}

// runTelemetry carries per-run iterated-local-search diagnostics.
type runTelemetry struct {
	kicks, kickAccepts        int64
	movesTried, movesAccepted int64
	// iterBest is the kick iteration at which the best tour was found
	// (0 = the initial local optimum).
	iterBest int
}

// iteratedThreeOpt is IteratedThreeOpt with telemetry and budgeting:
// when sp is non-nil the cost-vs-iteration convergence series is
// recorded on it (the initial local optimum plus every accepted kick),
// and when bs is non-nil the kick loop stops at the first boundary where
// the budget is exhausted or the context cancelled — the best tour found
// so far is returned either way. The run statistics are returned in all
// cases; they cost a handful of integer updates per kick, far off the
// 3-opt inner loop.
func iteratedThreeOpt(m Costs, nb *Neighbors, start Tour, iters int, rng *rand.Rand, sp *obs.Span, bs *solveBudget) (Tour, Cost, runTelemetry) {
	if nb == nil {
		nb = BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
	}
	var rt runTelemetry
	o := NewThreeOpt(m, nb, start)
	o.Optimize()
	cur := o.Tour()
	curCost := o.Cost()
	best := cur.Clone()
	bestCost := curCost
	series := sp.Series("tour_cost")
	series.Add(0, float64(curCost))
	for i := 0; i < iters && bs.allow(); i++ {
		bs.spend()
		kicked := DoubleBridge(cur, rng)
		o.SetTour(kicked)
		o.Optimize()
		rt.kicks++
		if o.Cost() <= curCost {
			rt.kickAccepts++
			cur = o.Tour()
			curCost = o.Cost()
			series.Add(int64(i+1), float64(curCost))
			if curCost < bestCost {
				best = cur.Clone()
				bestCost = curCost
				rt.iterBest = i + 1
			}
		}
	}
	rt.movesTried, rt.movesAccepted = o.Moves()
	return best, bestCost, rt
}

// SolveOptions configures Solve.
type SolveOptions struct {
	// GreedyStarts, NNStarts and IdentityStarts set the number of runs
	// seeded with randomized greedy-edge construction, randomized
	// nearest-neighbor construction, and the identity (compiler) order.
	// The paper's protocol is 5 greedy, 4 nearest-neighbor and 1 identity.
	GreedyStarts   int
	NNStarts       int
	IdentityStarts int
	// PatchingStarts adds runs seeded with the assignment-patching tour
	// (Karp). Not part of the paper's protocol (it used greedy, NN and
	// compiler-order starts only), but a cheap production improvement:
	// with one patching start the solver never returns a tour worse than
	// SolvePatching's.
	PatchingStarts int
	// IterationsFactor: each run performs IterationsFactor*N kick rounds
	// (the paper uses 2N). Values <= 0 default to 2.
	IterationsFactor int
	// MaxIterations caps the kick rounds per run when > 0.
	MaxIterations int
	// NeighborK is the candidate-list width (<= 0 means default).
	NeighborK int
	// ExactThreshold: instances with at most this many cities are solved
	// exactly by dynamic programming instead of local search. <= 0
	// disables exact solving.
	ExactThreshold int
	// GreedyMaxCities: above this instance size greedy-edge starts are
	// replaced by randomized nearest-neighbor starts — the Θ(n² log n)
	// all-edges sort would dominate the whole solve on large functions.
	// <= 0 selects a default of 4096.
	GreedyMaxCities int
	// Seed seeds the deterministic random stream.
	Seed int64
	// Obs, when non-nil, is the parent span solver telemetry is recorded
	// under: a "tsp.solve" child span with one "tsp.run" span (carrying
	// the tour-cost convergence series and move counters) per
	// local-search run. A nil Obs — the default — records nothing and
	// costs nothing on the hot path.
	Obs *obs.Span
	// Context, when non-nil, cancels the solve at the next kick boundary
	// (and between local-search runs). The solve then returns its
	// best-so-far tour with Result.Truncated set — always a valid
	// permutation, never an error. A nil Context never cancels, and the
	// cancellation checks never touch the random stream, so an
	// uncancelled solve is bit-identical to one without any context.
	Context context.Context
	// Budget bounds the solve's work (wall-clock deadline, total kick
	// rounds). The zero Budget is unlimited. See Budget.
	Budget Budget
}

// PaperSolveOptions returns the solver protocol used in the paper:
// 10 iterated-3-Opt runs per instance (5 randomized greedy starts, 4
// randomized nearest-neighbor starts, 1 compiler-order start), 2N kick
// iterations per run, plus exact DP for tiny instances (a production
// shortcut the paper's AT&T code did not need).
func PaperSolveOptions(seed int64) SolveOptions {
	return SolveOptions{
		GreedyStarts:     5,
		NNStarts:         4,
		IdentityStarts:   1,
		IterationsFactor: 2,
		NeighborK:        DefaultNeighborCount,
		ExactThreshold:   12,
		Seed:             seed,
	}
}

// Result reports the outcome of Solve.
type Result struct {
	Tour Tour
	Cost Cost
	// Exact is true when the instance was solved by exact DP, so Cost is
	// provably optimal.
	Exact bool
	// RunsAtBest counts how many of the local-search runs ended at the
	// returned cost (the appendix of the paper reports how often all 10
	// runs tie).
	RunsAtBest int
	// Runs is the number of local-search runs performed.
	Runs int
	// IterationsToBest is the kick iteration at which the winning run
	// found the returned tour (0 for the initial local optimum, and for
	// exact solves).
	IterationsToBest int
	// MovesTried and MovesAccepted total the candidate 3-opt moves
	// examined and applied across all runs (0 for exact solves).
	MovesTried, MovesAccepted int64
	// Kicks totals the double-bridge kick rounds performed across all
	// runs (0 for exact solves).
	Kicks int64
	// Truncated is true when the solve was cut short — the context was
	// cancelled or the budget (deadline, max kicks) ran out before the
	// configured protocol completed. The returned tour is still the
	// valid best-so-far incumbent.
	Truncated bool
}

// denseSolveCutover is the instance size below which Solve materializes
// a sparse instance densely before running local search: the kernels are
// At-bound, and at a few dozen cities the whole dense matrix is smaller
// than one cache way, so array indexing beats the exception-list scan.
// The sparse representation's wins (O(V+E) memory, exception-aware
// neighbor lists, the implicit 1-tree) only pay off above this size.
const denseSolveCutover = 24

// Solve finds a low-cost directed Hamiltonian cycle for m using the
// configured multi-start iterated 3-opt protocol (or exact DP for small
// instances). It accepts any cost representation and returns identical
// results for dense and sparse views of the same instance (densifying a
// tiny sparse instance preserves every At value, and all kernels are
// pure functions of those values).
func Solve(m Costs, opt SolveOptions) Result {
	n := m.Len()
	sp := opt.Obs.Child("tsp.solve", obs.Int("cities", int64(n)))
	if s, ok := m.(*SparseMatrix); ok {
		sp.SetAttrs(obs.Int("exceptions", int64(s.Exceptions())))
		if n <= denseSolveCutover {
			m = s.Dense()
		}
	}
	if opt.ExactThreshold > 0 && n <= opt.ExactThreshold {
		t, c := SolveExact(m)
		sp.Count("tsp.exact_solves", 1)
		sp.End(obs.Int("cost", c), obs.Bool("exact", true), obs.Int("runs", 1))
		return Result{Tour: t, Cost: c, Exact: true, RunsAtBest: 1, Runs: 1}
	}
	factor := opt.IterationsFactor
	if factor <= 0 {
		factor = 2
	}
	iters := factor * n
	if opt.MaxIterations > 0 && iters > opt.MaxIterations {
		iters = opt.MaxIterations
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	nb := BuildNeighbors(m, opt.NeighborK, ForbidCost(m))
	greedyMax := opt.GreedyMaxCities
	if greedyMax <= 0 {
		greedyMax = 4096
	}
	bs := &solveBudget{check: newCancelCheck(opt.Context, opt.Budget), maxKicks: opt.Budget.MaxKicks}

	var res Result
	consider := func(t Tour, c Cost, rt runTelemetry) {
		res.Runs++
		res.MovesTried += rt.movesTried
		res.MovesAccepted += rt.movesAccepted
		switch {
		case res.Tour == nil || c < res.Cost:
			res.Tour = t
			res.Cost = c
			res.RunsAtBest = 1
			res.IterationsToBest = rt.iterBest
		case c == res.Cost:
			res.RunsAtBest++
		}
	}
	// run performs one iterated-local-search run from the given start
	// tour, recording a "tsp.run" span when tracing is on.
	run := func(kind string, start Tour) {
		rs := sp.Child("tsp.run", obs.String("start", kind), obs.Int("run", int64(res.Runs)))
		if rs != nil {
			rs.SetAttrs(obs.Int("start_cost", CycleCost(m, start)))
		}
		t, c, rt := iteratedThreeOpt(m, nb, start, iters, rng, rs, bs)
		rs.Count("tsp.kicks", rt.kicks)
		rs.Count("tsp.moves_tried", rt.movesTried)
		rs.Count("tsp.moves_accepted", rt.movesAccepted)
		rs.End(obs.Int("cost", c), obs.Int("iter_best", int64(rt.iterBest)),
			obs.Int("kicks", rt.kicks), obs.Int("kick_accepts", rt.kickAccepts),
			obs.Int("moves_tried", rt.movesTried), obs.Int("moves_accepted", rt.movesAccepted))
		consider(t, c, rt)
	}
	// Each loop consults the budget only when another run is actually
	// planned, so a solve that completes its protocol exactly at the
	// budget is not marked truncated; a tripped budget skips every
	// remaining run (and its start-tour construction).
	for i := 0; i < opt.GreedyStarts && bs.allow(); i++ {
		if n > greedyMax {
			run("nn", NearestNeighbor(m, rng.Intn(n), rng))
		} else {
			run("greedy", GreedyEdge(m, rng))
		}
	}
	for i := 0; i < opt.NNStarts && bs.allow(); i++ {
		run("nn", NearestNeighbor(m, rng.Intn(n), rng))
	}
	for i := 0; i < opt.IdentityStarts && bs.allow(); i++ {
		run("identity", IdentityTour(n))
	}
	for i := 0; i < opt.PatchingStarts && bs.allow(); i++ {
		start, _ := SolvePatching(m)
		run("patching", start)
	}
	if res.Tour == nil {
		// Cancelled before the first run produced anything: the compiler
		// order is the valid best-so-far layout.
		res.Tour = IdentityTour(n)
		res.Cost = CycleCost(m, res.Tour)
		res.Runs = 1
		res.RunsAtBest = 1
	}
	res.Kicks = bs.kicks
	res.Truncated = bs.truncated
	sp.End(obs.Int("cost", res.Cost), obs.Bool("exact", false), obs.Bool("truncated", res.Truncated),
		obs.Int("runs", int64(res.Runs)), obs.Int("runs_at_best", int64(res.RunsAtBest)),
		obs.Int("iter_best", int64(res.IterationsToBest)),
		obs.Int("moves_tried", res.MovesTried), obs.Int("moves_accepted", res.MovesAccepted))
	return res
}
