package tsp

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"branchalign/internal/obs"
	"branchalign/internal/work"
)

// DoubleBridge applies the classic 4-opt double-bridge kick to tour t and
// returns a new tour. The tour is cut into four consecutive segments
// A B C D and reassembled as A C B D. The move is reversal-free, so it is
// feasible on the locked symmetric transformation (it corresponds to the
// "randomly-chosen 4-Opt move" of Martin, Otto and Felten used by the
// paper's solver). Tours with fewer than 4 cities are returned unchanged.
func DoubleBridge(t Tour, rng *rand.Rand) Tour {
	return doubleBridgeInto(make(Tour, 0, len(t)), t, rng)
}

// doubleBridgeInto is DoubleBridge writing into dst's storage (grown if
// needed), so the solver's kick loop reuses one buffer instead of
// allocating per kick. dst must not alias t. It consumes the random
// stream exactly as DoubleBridge does: three Intn draws, none for tours
// shorter than 4 cities.
func doubleBridgeInto(dst, t Tour, rng *rand.Rand) Tour {
	dst, _ = doubleBridgeIntoCost(dst, t, rng, nil, 0)
	return dst
}

// doubleBridgeIntoCost is doubleBridgeInto plus the kicked tour's cost,
// derived from the cost of t by the kick's six-edge delta (the double
// bridge removes the three cut edges and adds three reconnections; the
// closing edge is untouched). Six At reads replace the O(n) CycleCost
// rescan the kick loop used to pay per kick (see ThreeOpt.SetTourCost).
// With a nil m the cost is not computed and cost is passed through.
func doubleBridgeIntoCost(dst, t Tour, rng *rand.Rand, m Costs, cost Cost) (Tour, Cost) {
	n := len(t)
	if n < 4 {
		return append(dst[:0], t...), cost
	}
	// Pick 1 <= p1 < p2 < p3 < n.
	p1 := 1 + rng.Intn(n-3)
	p2 := p1 + 1 + rng.Intn(n-p1-2)
	p3 := p2 + 1 + rng.Intn(n-p2-1)
	dst = append(dst[:0], t[:p1]...)
	dst = append(dst, t[p2:p3]...)
	dst = append(dst, t[p1:p2]...)
	dst = append(dst, t[p3:]...)
	if m != nil {
		cost += m.At(t[p1-1], t[p2]) + m.At(t[p3-1], t[p1]) + m.At(t[p2-1], t[p3]) -
			m.At(t[p1-1], t[p1]) - m.At(t[p2-1], t[p2]) - m.At(t[p3-1], t[p3])
	}
	return dst, cost
}

// IteratedThreeOpt runs Martin-Otto-Felten iterated local search: optimize
// the start tour to a 3-opt local optimum, then repeatedly kick with a
// double bridge, re-optimize, and keep the better of the incumbent and the
// kicked solution. It performs iters kick-and-reoptimize rounds and
// returns the best tour found with its cost.
func IteratedThreeOpt(m Costs, nb *Neighbors, start Tour, iters int, rng *rand.Rand) (Tour, Cost) {
	t, c, _ := iteratedThreeOpt(m, nb, nil, start, iters, rng, nil, nil, false)
	return t, c
}

// runTelemetry carries per-run iterated-local-search diagnostics.
type runTelemetry struct {
	kicks, kickAccepts int64
	// stats holds the per-move-family counter deltas for this run (the
	// optimizer accumulates across runs; iteratedThreeOpt differences
	// snapshots taken around the run).
	stats MoveStats
	// iterBest is the kick iteration at which the best tour was found
	// (0 = the initial local optimum).
	iterBest int
}

// solveWorkspace holds one run's reusable scratch: the local-search
// state and the incumbent/best/kick tour buffers. Runs hand workspaces
// back through a per-solve sync.Pool, so a solve allocates one workspace
// per concurrently executing run instead of one optimizer plus three
// tours per kick. Reuse is exact: SetTour resets every piece of
// optimizer state a fresh NewThreeOpt would initialize (the move
// counters keep accumulating, which iteratedThreeOpt corrects for by
// differencing), so a reused workspace yields bit-identical results to a
// fresh one.
type solveWorkspace struct {
	o    *ThreeOpt
	cur  Tour
	best Tour
	kick Tour
}

// iteratedThreeOpt is IteratedThreeOpt with telemetry, budgeting and
// workspace reuse: when sp is non-nil the cost-vs-iteration convergence
// series is recorded on it (the initial local optimum plus every
// accepted kick), and when rb is non-nil the kick loop stops at the
// first boundary where the run's kick quota is exhausted or the context
// cancelled — the best tour found so far is returned either way. ws may
// be nil (a fresh workspace is used) or recycled from a previous run on
// the same instance. The run statistics are returned in all cases; they
// cost a handful of integer updates per kick, far off the 3-opt inner
// loop.
func iteratedThreeOpt(m Costs, nb *Neighbors, ws *solveWorkspace, start Tour, iters int, rng *rand.Rand, sp *obs.Span, rb *runBudget, orOpt bool) (Tour, Cost, runTelemetry) {
	if nb == nil {
		nb = BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
	}
	if ws == nil {
		ws = &solveWorkspace{}
	}
	var rt runTelemetry
	if ws.o == nil {
		ws.o = NewThreeOpt(m, nb, start)
	} else {
		ws.o.SetTour(start)
	}
	o := ws.o
	o.SetOrOpt(orOpt)
	stats0 := o.MoveStats()
	o.Optimize()
	ws.cur = o.AppendTour(ws.cur)
	curCost := o.Cost()
	ws.best = append(ws.best[:0], ws.cur...)
	bestCost := curCost
	series := sp.Series("tour_cost")
	series.Add(0, float64(curCost))
	for i := 0; i < iters && rb.allow(); i++ {
		rb.spend()
		var kickCost Cost
		ws.kick, kickCost = doubleBridgeIntoCost(ws.kick, ws.cur, rng, m, curCost)
		o.SetTourCost(ws.kick, kickCost)
		o.Optimize()
		rt.kicks++
		if o.Cost() <= curCost {
			rt.kickAccepts++
			ws.cur = o.AppendTour(ws.cur)
			curCost = o.Cost()
			series.Add(int64(i+1), float64(curCost))
			if curCost < bestCost {
				ws.best = append(ws.best[:0], ws.cur...)
				bestCost = curCost
				rt.iterBest = i + 1
			}
		}
	}
	rt.stats = o.MoveStats().Sub(stats0)
	return ws.best.Clone(), bestCost, rt
}

// SolveOptions configures Solve.
type SolveOptions struct {
	// GreedyStarts, NNStarts and IdentityStarts set the number of runs
	// seeded with randomized greedy-edge construction, randomized
	// nearest-neighbor construction, and the identity (compiler) order.
	// The paper's protocol is 5 greedy, 4 nearest-neighbor and 1 identity.
	GreedyStarts   int
	NNStarts       int
	IdentityStarts int
	// PatchingStarts adds runs seeded with the assignment-patching tour
	// (Karp). Not part of the paper's protocol (it used greedy, NN and
	// compiler-order starts only), but a cheap production improvement:
	// with one patching start the solver never returns a tour worse than
	// SolvePatching's.
	PatchingStarts int
	// IterationsFactor: each run performs IterationsFactor*N kick rounds
	// (the paper uses 2N). Values <= 0 default to 2.
	IterationsFactor int
	// MaxIterations caps the kick rounds per run when > 0.
	MaxIterations int
	// NeighborK is the candidate-list width (<= 0 means default).
	NeighborK int
	// DisableOrOpt turns off the Or-opt relocation family inside each
	// local-search run, leaving the pure 3-opt kernel. The zero value —
	// Or-opt on — is the production default: interleaving the two
	// families reaches strictly better local optima at negligible cost
	// (see oropt.go and DESIGN.md section 12). Disabling it reproduces
	// the historical pure-3-opt solver exactly.
	DisableOrOpt bool
	// ExactThreshold: instances with at most this many cities are solved
	// exactly by dynamic programming instead of local search. <= 0
	// disables exact solving.
	ExactThreshold int
	// GreedyMaxCities: above this instance size greedy-edge starts are
	// replaced by randomized nearest-neighbor starts — the Θ(n² log n)
	// all-edges sort would dominate the whole solve on large functions.
	// <= 0 selects a default of 4096.
	GreedyMaxCities int
	// Seed seeds the deterministic random stream. Each local-search run
	// draws from its own stream, derived from (Seed, run index, start
	// kind) by a splitmix64 mixer, so the result is a function of Seed
	// alone — identical at every Parallelism setting.
	Seed int64
	// Parallelism is the maximum number of local-search runs executed
	// concurrently within this solve. 0 and 1 run sequentially; negative
	// values select GOMAXPROCS. The result is bit-identical at every
	// setting (only wall-clock changes); see Seed.
	Parallelism int
	// Pool, when non-nil, is the bounded worker pool concurrent runs are
	// scheduled on; nil with Parallelism > 1 uses the process-wide
	// work.Shared() pool. Sharing one pool with per-function callers
	// (align, the engine) keeps the two parallelism layers from
	// oversubscribing the machine: nested run fan-out only recruits
	// workers the pool has free, and degrades to the calling goroutine
	// otherwise.
	Pool *work.Pool
	// Obs, when non-nil, is the parent span solver telemetry is recorded
	// under: a "tsp.solve" child span with one "tsp.run" span (carrying
	// the tour-cost convergence series and move counters) per
	// local-search run. A nil Obs — the default — records nothing and
	// costs nothing on the hot path.
	Obs *obs.Span
	// Context, when non-nil, cancels the solve at the next kick boundary
	// (and between local-search runs). The solve then returns its
	// best-so-far tour with Result.Truncated set — always a valid
	// permutation, never an error. A nil Context never cancels, and the
	// cancellation checks never touch the random stream, so an
	// uncancelled solve is bit-identical to one without any context.
	Context context.Context
	// Budget bounds the solve's work (wall-clock deadline, total kick
	// rounds). The zero Budget is unlimited. See Budget.
	Budget Budget
}

// PaperSolveOptions returns the solver protocol used in the paper:
// 10 iterated-3-Opt runs per instance (5 randomized greedy starts, 4
// randomized nearest-neighbor starts, 1 compiler-order start), 2N kick
// iterations per run, plus exact DP for tiny instances (a production
// shortcut the paper's AT&T code did not need).
func PaperSolveOptions(seed int64) SolveOptions {
	return SolveOptions{
		GreedyStarts:     5,
		NNStarts:         4,
		IdentityStarts:   1,
		IterationsFactor: 2,
		NeighborK:        DefaultNeighborCount,
		ExactThreshold:   12,
		Seed:             seed,
	}
}

// Result reports the outcome of Solve.
type Result struct {
	Tour Tour
	Cost Cost
	// Exact is true when the instance was solved by exact DP, so Cost is
	// provably optimal.
	Exact bool
	// RunsAtBest counts how many of the local-search runs ended at the
	// returned cost (the appendix of the paper reports how often all 10
	// runs tie).
	RunsAtBest int
	// Runs is the number of local-search runs performed.
	Runs int
	// IterationsToBest is the kick iteration at which the winning run
	// found the returned tour (0 for the initial local optimum, and for
	// exact solves).
	IterationsToBest int
	// MovesTried and MovesAccepted total the candidate 3-opt
	// segment-exchange moves examined and applied across all runs (0 for
	// exact solves).
	MovesTried, MovesAccepted int64
	// OrMovesTried and OrMovesAccepted are the same totals for the
	// Or-opt relocation family (0 when Or-opt is disabled and for exact
	// solves).
	OrMovesTried, OrMovesAccepted int64
	// Kicks totals the double-bridge kick rounds performed across all
	// runs (0 for exact solves).
	Kicks int64
	// Truncated is true when the solve was cut short — the context was
	// cancelled or the budget (deadline, max kicks) ran out before the
	// configured protocol completed. The returned tour is still the
	// valid best-so-far incumbent.
	Truncated bool
}

// startKind identifies how a local-search run's start tour is built. The
// numeric value feeds the per-run seed derivation, so the constants are
// part of the reproducibility contract: reordering them reseeds every
// solve.
type startKind uint8

const (
	startGreedy startKind = iota
	startNN
	startIdentity
	startPatching
)

func (k startKind) String() string {
	switch k {
	case startGreedy:
		return "greedy"
	case startNN:
		return "nn"
	case startIdentity:
		return "identity"
	default:
		return "patching"
	}
}

// splitmix64 is the finalizer of Steele, Lea and Flood's SplitMix64
// generator — a cheap, well-mixed 64-bit permutation used to derive
// independent per-run seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// runSeed derives the random-stream seed for one local-search run from
// the solve seed, the run's index in the plan, and its start kind. Each
// run owning an independent stream is what makes the solve a pure
// function of SolveOptions.Seed regardless of execution schedule. The
// kind participates so that a run whose construction changes (the
// greedy-to-NN substitution above GreedyMaxCities) also changes stream —
// two different protocols never share randomness by coincidence of
// position.
func runSeed(seed int64, run int, kind startKind) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x + uint64(run))
	x = splitmix64(x + uint64(kind))
	return int64(x)
}

// denseSolveCutover is the instance size below which Solve materializes
// a sparse instance densely before running local search: the kernels are
// At-bound, and at a few dozen cities the whole dense matrix is smaller
// than one cache way, so array indexing beats the exception-list scan.
// The sparse representation's wins (O(V+E) memory, exception-aware
// neighbor lists, the implicit 1-tree) only pay off above this size.
const denseSolveCutover = 24

// runOutcome is one run's contribution to the deterministic merge.
// executed distinguishes runs skipped by cancellation (which sequential
// execution would also have skipped) from completed ones.
type runOutcome struct {
	executed bool
	tour     Tour
	cost     Cost
	rt       runTelemetry
}

// Solve finds a low-cost directed Hamiltonian cycle for m using the
// configured multi-start iterated 3-opt protocol (or exact DP for small
// instances). It accepts any cost representation and returns identical
// results for dense and sparse views of the same instance (densifying a
// tiny sparse instance preserves every At value, and all kernels are
// pure functions of those values).
//
// The runs of the protocol are independent: each draws randomness from
// its own stream (see runSeed) and they execute concurrently when
// SolveOptions.Parallelism allows, merging deterministically afterwards
// — lowest cost wins, ties broken by run-plan order. The result is
// therefore bit-identical across Parallelism settings, GOMAXPROCS
// values and goroutine schedules; only wall-clock time and the
// interleaving of telemetry events vary. The one exception is
// time-based truncation (Context, Budget.Deadline), which by nature
// depends on when each run observes the cutoff; Budget.MaxKicks
// truncation is partitioned deterministically and stays bit-identical.
func Solve(m Costs, opt SolveOptions) Result {
	n := m.Len()
	sp := opt.Obs.Child("tsp.solve", obs.Int("cities", int64(n)))
	if s, ok := m.(*SparseMatrix); ok {
		sp.SetAttrs(obs.Int("exceptions", int64(s.Exceptions())))
		if n <= denseSolveCutover {
			m = s.Dense()
		}
	}
	if opt.ExactThreshold > 0 && n <= opt.ExactThreshold {
		t, c := SolveExact(m)
		sp.Count("tsp.exact_solves", 1)
		sp.End(obs.Int("cost", c), obs.Bool("exact", true), obs.Int("runs", 1))
		return Result{Tour: t, Cost: c, Exact: true, RunsAtBest: 1, Runs: 1}
	}
	factor := opt.IterationsFactor
	if factor <= 0 {
		factor = 2
	}
	iters := factor * n
	if opt.MaxIterations > 0 && iters > opt.MaxIterations {
		iters = opt.MaxIterations
	}
	nb := BuildNeighbors(m, opt.NeighborK, ForbidCost(m))
	greedyMax := opt.GreedyMaxCities
	if greedyMax <= 0 {
		greedyMax = 4096
	}

	// The run plan: the protocol's start kinds in canonical order. Every
	// run's seed, kick quota and merge position follow from its index
	// here, which is what makes execution order irrelevant.
	kinds := make([]startKind, 0, opt.GreedyStarts+opt.NNStarts+opt.IdentityStarts+opt.PatchingStarts)
	for i := 0; i < opt.GreedyStarts; i++ {
		if n > greedyMax {
			kinds = append(kinds, startNN)
		} else {
			kinds = append(kinds, startGreedy)
		}
	}
	for i := 0; i < opt.NNStarts; i++ {
		kinds = append(kinds, startNN)
	}
	for i := 0; i < opt.IdentityStarts; i++ {
		kinds = append(kinds, startIdentity)
	}
	for i := 0; i < opt.PatchingStarts; i++ {
		kinds = append(kinds, startPatching)
	}

	// Deterministic MaxKicks partition, replicating sequential
	// consumption: run i would start with i*iters kicks already spent, so
	// it runs only if that is under the budget and gets the remainder,
	// capped at its own iteration count. A protocol that finishes exactly
	// at the budget is not truncated (sequential execution would never
	// have consulted the budget again).
	planned := len(kinds)
	quotaTrunc := false
	maxKicks := opt.Budget.MaxKicks
	if maxKicks > 0 && iters > 0 && maxKicks < int64(planned)*int64(iters) {
		quotaTrunc = true
		planned = int((maxKicks + int64(iters) - 1) / int64(iters))
	}
	sb := &solveBudget{check: newCancelCheck(opt.Context, opt.Budget)}

	outcomes := make([]runOutcome, planned)
	var wsPool sync.Pool // *solveWorkspace, all bound to (m, nb)
	// doRun performs the plan's i-th iterated-local-search run from its
	// own seeded stream, recording a "tsp.run" span when tracing is on.
	// It is called at most once per i, possibly concurrently.
	doRun := func(i int) {
		if sb.cancelledNow() {
			// Sequential execution checks the budget before each run;
			// an unexecuted run contributes nothing to the merge.
			return
		}
		kind := kinds[i]
		rng := rand.New(rand.NewSource(runSeed(opt.Seed, i, kind)))
		var start Tour
		switch kind {
		case startGreedy:
			start = GreedyEdge(m, rng)
		case startNN:
			start = NearestNeighbor(m, rng.Intn(n), rng)
		case startIdentity:
			start = IdentityTour(n)
		case startPatching:
			start, _ = SolvePatching(m)
		}
		rb := &runBudget{sb: sb, quota: -1}
		if maxKicks > 0 && iters > 0 {
			rb.quota = maxKicks - int64(i)*int64(iters)
			if rb.quota > int64(iters) {
				rb.quota = int64(iters)
			}
		}
		rs := sp.Child("tsp.run", obs.String("start", kind.String()), obs.Int("run", int64(i)))
		if rs != nil {
			rs.SetAttrs(obs.Int("start_cost", CycleCost(m, start)))
		}
		ws, _ := wsPool.Get().(*solveWorkspace)
		if ws == nil {
			ws = &solveWorkspace{}
		}
		t, c, rt := iteratedThreeOpt(m, nb, ws, start, iters, rng, rs, rb, !opt.DisableOrOpt)
		wsPool.Put(ws)
		rs.Count("tsp.kicks", rt.kicks)
		rs.Count("tsp.moves_tried", rt.stats.TriedTotal())
		rs.Count("tsp.moves_accepted", rt.stats.AcceptedTotal())
		rs.ObserveBatch("tsp.splice_len", rt.stats.SpliceBuckets[:], float64(rt.stats.SpliceSum))
		rs.End(obs.Int("cost", c), obs.Int("iter_best", int64(rt.iterBest)),
			obs.Int("kicks", rt.kicks), obs.Int("kick_accepts", rt.kickAccepts),
			obs.Int("moves_tried", rt.stats.Tried), obs.Int("moves_accepted", rt.stats.Accepted),
			obs.Int("or_moves_tried", rt.stats.OrTried), obs.Int("or_moves_accepted", rt.stats.OrAccepted))
		outcomes[i] = runOutcome{executed: true, tour: t, cost: c, rt: rt}
	}
	par := opt.Parallelism
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}
	var pool *work.Pool
	if par > 1 {
		pool = opt.Pool
		if pool == nil {
			pool = work.Shared()
		}
	}
	pool.Nested(planned, par, doRun)

	// Deterministic merge in plan order: lowest cost wins, ties go to
	// the earliest run, counters aggregate over executed runs — exactly
	// the sequential fold.
	var res Result
	for i := range outcomes {
		oc := &outcomes[i]
		if !oc.executed {
			continue
		}
		res.Runs++
		res.MovesTried += oc.rt.stats.Tried
		res.MovesAccepted += oc.rt.stats.Accepted
		res.OrMovesTried += oc.rt.stats.OrTried
		res.OrMovesAccepted += oc.rt.stats.OrAccepted
		switch {
		case res.Tour == nil || oc.cost < res.Cost:
			res.Tour = oc.tour
			res.Cost = oc.cost
			res.RunsAtBest = 1
			res.IterationsToBest = oc.rt.iterBest
		case oc.cost == res.Cost:
			res.RunsAtBest++
		}
	}
	if res.Tour == nil {
		// Cancelled before the first run produced anything (or an empty
		// protocol): the compiler order is the valid best-so-far layout.
		res.Tour = IdentityTour(n)
		res.Cost = CycleCost(m, res.Tour)
		res.Runs = 1
		res.RunsAtBest = 1
	}
	res.Kicks = sb.kicks.Load()
	res.Truncated = quotaTrunc || sb.cancelled.Load()
	sp.End(obs.Int("cost", res.Cost), obs.Bool("exact", false), obs.Bool("truncated", res.Truncated),
		obs.Int("runs", int64(res.Runs)), obs.Int("runs_at_best", int64(res.RunsAtBest)),
		obs.Int("iter_best", int64(res.IterationsToBest)),
		obs.Int("moves_tried", res.MovesTried), obs.Int("moves_accepted", res.MovesAccepted),
		obs.Int("or_moves_tried", res.OrMovesTried), obs.Int("or_moves_accepted", res.OrMovesAccepted))
	return res
}
