package tsp

import "testing"

// TestPatchingStartDominatesPatching: with a patching-seeded run the
// solver can never return a worse tour than SolvePatching itself.
func TestPatchingStartDominatesPatching(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMatrix(25, 800, seed+4000)
		_, patched := SolvePatching(m)
		opts := PaperSolveOptions(seed)
		opts.ExactThreshold = 0
		opts.PatchingStarts = 1
		res := Solve(m, opts)
		if res.Cost > patched {
			t.Errorf("seed %d: solver with patching start %d worse than raw patching %d",
				seed, res.Cost, patched)
		}
		if res.Runs != 11 {
			t.Errorf("seed %d: expected 11 runs (10 paper + 1 patching), got %d", seed, res.Runs)
		}
	}
}
