package tsp

import (
	"math/rand"
	"testing"
)

func TestSymCostsMirrorDirectedCosts(t *testing.T) {
	m := randMatrix(6, 100, 1)
	s := Symmetrize(m)
	if s.Len() != 12 {
		t.Fatalf("Len = %d, want 12", s.Len())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			a := s.OutNode(i)
			b := s.InNode(j)
			if got := s.Cost(a, b); got != m.At(i, j) {
				t.Fatalf("Cost(out %d, in %d) = %d, want %d", i, j, got, m.At(i, j))
			}
			if got := s.Cost(b, a); got != m.At(i, j) {
				t.Fatalf("symmetric mirror broken for (%d,%d)", i, j)
			}
		}
	}
	forbid := m.Forbid()
	if got := s.Cost(s.InNode(0), s.InNode(1)); got != forbid {
		t.Fatalf("in-in edge should be forbidden, got %d", got)
	}
	if got := s.Cost(s.OutNode(0), s.OutNode(1)); got != forbid {
		t.Fatalf("out-out edge should be forbidden, got %d", got)
	}
	if got := s.Cost(s.InNode(2), s.OutNode(2)); got != 0 {
		t.Fatalf("locked edge should cost 0, got %d", got)
	}
	if !s.Locked(s.InNode(3), s.OutNode(3)) {
		t.Fatal("Locked should report intra-city pairs")
	}
	if s.Locked(s.InNode(3), s.InNode(3)) {
		t.Fatal("a node is not locked to itself")
	}
	if s.Locked(s.OutNode(3), s.InNode(4)) {
		t.Fatal("inter-city pairs are not locked")
	}
}

func TestSymRoundTripPreservesTourAndCost(t *testing.T) {
	m := randMatrix(9, 500, 2)
	s := Symmetrize(m)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		dir := IdentityTour(9)
		rng.Shuffle(9, func(i, j int) { dir[i], dir[j] = dir[j], dir[i] })
		symTour := s.FromDirected(dir)
		if !symTour.Valid(18) {
			t.Fatal("embedded tour is not a permutation")
		}
		if got, want := SymCycleCost(s, symTour), CycleCost(m, dir); got != want {
			t.Fatalf("sym cost %d != directed cost %d", got, want)
		}
		back, err := s.ToDirected(symTour)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		back.RotateTo(dir[0])
		for i := range dir {
			if back[i] != dir[i] {
				t.Fatalf("round trip changed tour: %v vs %v", back, dir)
			}
		}
	}
}

func TestSymToDirectedHandlesReversedOrientation(t *testing.T) {
	m := randMatrix(5, 100, 3)
	s := Symmetrize(m)
	dir := Tour{0, 2, 4, 1, 3}
	symTour := s.FromDirected(dir)
	// Reverse the symmetric tour; an undirected cycle read backward is the
	// same cycle, so conversion must still succeed and produce the same
	// directed tour.
	rev := make(Tour, len(symTour))
	for i, v := range symTour {
		rev[len(symTour)-1-i] = v
	}
	back, err := s.ToDirected(rev)
	if err != nil {
		t.Fatalf("reversed conversion failed: %v", err)
	}
	back.RotateTo(0)
	dirRot := dir.Clone()
	dirRot.RotateTo(0)
	for i := range dirRot {
		if back[i] != dirRot[i] {
			t.Fatalf("reversed round trip mismatch: %v vs %v", back, dirRot)
		}
	}
}

func TestSymToDirectedRejectsBrokenLocks(t *testing.T) {
	m := randMatrix(4, 100, 5)
	s := Symmetrize(m)
	// A permutation of the 8 symmetric nodes that separates city 0's pair.
	bad := Tour{0, 2, 1, 3, 4, 5, 6, 7}
	if _, err := s.ToDirected(bad); err == nil {
		t.Fatal("expected error for tour with a broken locked pair")
	}
	if _, err := s.ToDirected(Tour{0, 1}); err == nil {
		t.Fatal("expected error for wrong-length tour")
	}
}

// TestThreeOptMatchesSymmetricModel verifies the central claim behind the
// solver architecture: the directed reversal-free 3-opt operates exactly
// on the lock-respecting symmetric model, so any directed tour it returns
// embeds into the symmetric instance with identical cost, and the
// symmetric instance's optimum equals the directed optimum.
func TestThreeOptMatchesSymmetricModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := randMatrix(7, 200, seed+900)
		s := Symmetrize(m)

		o := NewThreeOpt(m, nil, IdentityTour(7))
		cost := o.Optimize()
		emb := s.FromDirected(o.Tour())
		if got := SymCycleCost(s, emb); got != cost {
			t.Fatalf("seed %d: embedded cost %d != directed cost %d", seed, got, cost)
		}

		// The materialized matrix carries -LockCost on locked edges, so
		// unconstrained optimization is forced through every lock and its
		// optimum is the directed optimum shifted by n*LockCost.
		_, dirOpt := SolveExact(m)
		symM := s.Matrix()
		if !symM.IsSymmetric() {
			t.Fatal("materialized sym matrix is not symmetric")
		}
		symTour, symOpt := SolveExact(symM)
		if want := dirOpt - Cost(m.Len())*s.LockCost(); symOpt != want {
			t.Fatalf("seed %d: symmetric optimum %d != shifted directed optimum %d", seed, symOpt, want)
		}
		// And the optimal symmetric tour must decode back to a directed
		// tour realizing the directed optimum.
		back, err := s.ToDirected(symTour)
		if err != nil {
			t.Fatalf("seed %d: optimal symmetric tour broke a lock: %v", seed, err)
		}
		if got := CycleCost(m, back); got != dirOpt {
			t.Fatalf("seed %d: decoded tour costs %d, want %d", seed, got, dirOpt)
		}
	}
}
