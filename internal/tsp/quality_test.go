package tsp

import "testing"

// TestPaperProtocolQualityStatistics runs the paper's 10-start iterated
// 3-opt protocol against exact optima on a population of 11-city random
// asymmetric instances and requires near-optimal aggregate quality: mean
// gap under 1% and at least two thirds of instances solved to optimality
// (the paper's tours "typically come within 0.3% of the value of the
// optimal solution" on its instance population).
func TestPaperProtocolQualityStatistics(t *testing.T) {
	const trials = 15
	optimalHits := 0
	var gapSum float64
	for seed := int64(0); seed < trials; seed++ {
		m := randMatrix(11, 1000, seed*131+7)
		_, opt := SolveExact(m)
		opts := PaperSolveOptions(seed)
		opts.ExactThreshold = 0 // force the local-search path
		res := Solve(m, opts)
		if res.Cost < opt {
			t.Fatalf("seed %d: heuristic %d below optimum %d", seed, res.Cost, opt)
		}
		if res.Cost == opt {
			optimalHits++
		}
		if opt > 0 {
			gapSum += 100 * float64(res.Cost-opt) / float64(opt)
		}
	}
	meanGap := gapSum / trials
	if meanGap > 1.0 {
		t.Errorf("mean optimality gap %.3f%% exceeds 1%%", meanGap)
	}
	if optimalHits*3 < trials*2 {
		t.Errorf("only %d/%d instances solved optimally", optimalHits, trials)
	}
	t.Logf("iterated 3-opt: %d/%d optimal, mean gap %.4f%%", optimalHits, trials, meanGap)
}
