package tsp

import (
	"fmt"
	"slices"
	"sort"
)

// Costs is the cost-oracle view of a DTSP instance: everything the solver
// kernels in this package need. *Matrix (dense, the reference
// implementation) and *SparseMatrix both implement it, and every kernel
// accepts either, so dense/sparse equivalence can be checked by running
// the same kernel on both representations.
type Costs interface {
	// Len returns the number of cities.
	Len() int
	// At returns the cost of the directed edge i->j. The diagonal reads
	// as 0 and is ignored by all algorithms.
	At(i, j int) Cost
}

// SparseMatrix is a structurally sparse asymmetric cost matrix: each row i
// has a default cost def[i] that applies to every column, except for a
// short sorted list of per-row exception columns. The branch-alignment
// reduction (Section 2.2) produces exactly this shape — c(B, X) takes at
// most outdegree(B)+1 distinct values per row: one per CFG successor of B
// plus the row-constant "displaced" cost — so the whole instance is
// O(V+E) memory instead of Θ(n²).
//
// Rows are stored CSR-style: the exceptions of row i are
// cols[rowStart[i]:rowStart[i+1]] (strictly increasing column indices)
// with matching vals. The diagonal is never stored and At(i, i) returns
// 0, matching the untouched diagonal of a dense Matrix.
type SparseMatrix struct {
	n        int
	def      []Cost
	rowStart []int
	cols     []int
	vals     []Cost
}

// Len returns the number of cities.
func (s *SparseMatrix) Len() int { return s.n }

// At returns the cost of the directed edge i->j.
func (s *SparseMatrix) At(i, j int) Cost {
	if i == j {
		return 0
	}
	lo, hi := s.rowStart[i], s.rowStart[i+1]
	if hi-lo <= 8 {
		for k := lo; k < hi; k++ {
			if s.cols[k] == j {
				return s.vals[k]
			}
			if s.cols[k] > j {
				break
			}
		}
		return s.def[i]
	}
	row := s.cols[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return s.vals[lo+k]
	}
	return s.def[i]
}

// RowDefault returns the default cost of row i (the cost of i->j for
// every j that is not an exception column).
func (s *SparseMatrix) RowDefault(i int) Cost { return s.def[i] }

// Row returns the exception columns and values of row i. The returned
// slices alias internal storage and must not be modified.
func (s *SparseMatrix) Row(i int) (cols []int, vals []Cost) {
	return s.cols[s.rowStart[i]:s.rowStart[i+1]], s.vals[s.rowStart[i]:s.rowStart[i+1]]
}

// Exceptions returns the total number of stored exception entries.
func (s *SparseMatrix) Exceptions() int { return len(s.cols) }

// Forbid returns one plus the sum of all positive off-diagonal entries,
// the same quantity Matrix.Forbid computes, in O(V+E) time.
func (s *SparseMatrix) Forbid() Cost {
	var sum Cost
	for i := 0; i < s.n; i++ {
		lo, hi := s.rowStart[i], s.rowStart[i+1]
		if d := s.def[i]; d > 0 {
			sum += d * Cost(s.n-1-(hi-lo))
		}
		for k := lo; k < hi; k++ {
			if s.vals[k] > 0 {
				sum += s.vals[k]
			}
		}
	}
	return sum + 1
}

// Dense materializes the instance as a dense Matrix (for tests and for
// generic symmetric algorithms).
func (s *SparseMatrix) Dense() *Matrix {
	m := NewMatrix(s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			if i != j {
				m.Set(i, j, s.At(i, j))
			}
		}
	}
	return m
}

// SparseBuilder assembles a SparseMatrix row by row.
type SparseBuilder struct {
	m    *SparseMatrix
	rows int
}

// NewSparseBuilder returns a builder for an n-city sparse matrix. AddRow
// must be called exactly n times, in row order.
func NewSparseBuilder(n int) *SparseBuilder {
	if n < 1 {
		panic(fmt.Sprintf("tsp: NewSparseBuilder(%d): need at least one city", n))
	}
	return &SparseBuilder{m: &SparseMatrix{
		n:        n,
		def:      make([]Cost, 0, n),
		rowStart: append(make([]int, 0, n+1), 0),
	}}
}

// AddRow appends the next row: default cost def and exception columns
// cols (strictly increasing, excluding the diagonal) with values vals.
// The slices are copied.
func (b *SparseBuilder) AddRow(def Cost, cols []int, vals []Cost) {
	i := b.rows
	if i >= b.m.n {
		panic("tsp: SparseBuilder.AddRow: too many rows")
	}
	if len(cols) != len(vals) {
		panic("tsp: SparseBuilder.AddRow: cols/vals length mismatch")
	}
	for k, c := range cols {
		if c < 0 || c >= b.m.n || c == i {
			panic(fmt.Sprintf("tsp: SparseBuilder.AddRow: bad column %d in row %d", c, i))
		}
		if k > 0 && cols[k-1] >= c {
			panic(fmt.Sprintf("tsp: SparseBuilder.AddRow: columns not strictly increasing in row %d", i))
		}
	}
	b.m.def = append(b.m.def, def)
	b.m.cols = append(b.m.cols, cols...)
	b.m.vals = append(b.m.vals, vals...)
	b.m.rowStart = append(b.m.rowStart, len(b.m.cols))
	b.rows++
}

// Finish returns the assembled matrix. It panics if fewer than n rows
// were added.
func (b *SparseBuilder) Finish() *SparseMatrix {
	if b.rows != b.m.n {
		panic(fmt.Sprintf("tsp: SparseBuilder.Finish: %d of %d rows added", b.rows, b.m.n))
	}
	return b.m
}

// ForbidCost returns Forbid for any cost representation: one plus the sum
// of all positive off-diagonal entries. It dispatches to the O(V+E)
// sparse computation or the dense one when possible.
func ForbidCost(c Costs) Cost {
	switch m := c.(type) {
	case *Matrix:
		return m.Forbid()
	case *SparseMatrix:
		return m.Forbid()
	}
	n := c.Len()
	var sum Cost
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if v := c.At(i, j); v > 0 {
					sum += v
				}
			}
		}
	}
	return sum + 1
}

// Sparsify converts any cost representation to the canonical sparse form:
// in every row the default is the most frequent off-diagonal value
// (smallest value on ties) and every other entry is an exception. The
// canonical form is a pure function of the At values, so dense and sparse
// representations of the same instance sparsify identically — which is
// what makes algorithms that branch on the default/exception split (the
// implicit Held-Karp 1-tree) return bit-identical results for both.
func Sparsify(c Costs) *SparseMatrix {
	n := c.Len()
	b := NewSparseBuilder(n)
	if n == 1 {
		// A single-city row has no off-diagonal entries; canonicalize its
		// (unobservable) default to 0.
		b.AddRow(0, nil, nil)
		return b.Finish()
	}
	// Row scratch, reused across rows: AddRow copies its arguments, and
	// Sparsify sits on the per-function bound path where per-row makes
	// add up across a module's worth of small instances.
	ec := make([]int, 0, n-1)
	ev := make([]Cost, 0, n-1)
	var elect electScratch
	if s, ok := c.(*SparseMatrix); ok {
		// A matrix already in canonical form is returned as-is: the
		// canonical form is a pure function of the At values, so the
		// rebuild below would reproduce s row for row. A row is
		// canonical when no exception equals the row default and the
		// default wins the election — guaranteed without running it
		// when the default's multiplicity strictly exceeds the whole
		// exception count. SparseMatrix is immutable after Finish, so
		// aliasing the input is safe.
		canonical := true
	check:
		for i := 0; i < n; i++ {
			cols, vals := s.Row(i)
			def := s.def[i]
			for _, v := range vals {
				if v == def {
					canonical = false
					break check
				}
			}
			if defCount := n - 1 - len(cols); defCount <= len(cols) {
				if elect.mostFrequent(def, Cost(defCount), vals) != def {
					canonical = false
					break check
				}
			}
		}
		if canonical {
			return s
		}
		for i := 0; i < n; i++ {
			cols, vals := s.Row(i)
			def := elect.mostFrequent(s.def[i], Cost(n-1-len(cols)), vals)
			if def == s.def[i] {
				ec, ev = ec[:0], ev[:0]
				for k, c := range cols {
					if vals[k] != def {
						ec = append(ec, c)
						ev = append(ev, vals[k])
					}
				}
				b.AddRow(def, ec, ev)
				continue
			}
			// The elected default was an exception value, which can only
			// happen when exceptions dominate the row; rebuilding the row
			// by scanning all columns stays O(exceptions) amortized.
			ec, ev = ec[:0], ev[:0]
			k := 0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				v := s.def[i]
				if k < len(cols) && cols[k] == j {
					v = vals[k]
					k++
				}
				if v != def {
					ec = append(ec, j)
					ev = append(ev, v)
				}
			}
			b.AddRow(def, ec, ev)
		}
		return b.Finish()
	}
	vals := make([]Cost, 0, n-1)
	for i := 0; i < n; i++ {
		vals = vals[:0]
		for j := 0; j < n; j++ {
			if j != i {
				vals = append(vals, c.At(i, j))
			}
		}
		var def Cost
		if len(vals) > 0 {
			def = elect.mostFrequent(vals[0], 0, vals)
		}
		ec, ev = ec[:0], ev[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if v := c.At(i, j); v != def {
				ec = append(ec, j)
				ev = append(ev, v)
			}
		}
		b.AddRow(def, ec, ev)
	}
	return b.Finish()
}

// electScratch holds the sorted-copy buffer mostFrequent reuses across
// rows (the map-based counting this replaced allocated per row).
type electScratch struct {
	sorted []Cost
}

// mostFrequent picks the most frequent value among a default value with
// multiplicity defCount and the exception values; ties prefer the
// smallest value. The argmax comparison starts at (def, count -1) and
// candidates form a set, so the result does not depend on scan order —
// it is the same value the map-based counting used to elect.
func (e *electScratch) mostFrequent(def Cost, defCount Cost, vals []Cost) Cost {
	e.sorted = append(e.sorted[:0], vals...)
	slices.Sort(e.sorted)
	best, bestCount := def, Cost(-1)
	sawDef := false
	for i := 0; i < len(e.sorted); {
		v := e.sorted[i]
		j := i + 1
		for j < len(e.sorted) && e.sorted[j] == v {
			j++
		}
		cnt := Cost(j - i)
		if v == def && defCount > 0 {
			cnt += defCount
			sawDef = true
		}
		if cnt > bestCount || (cnt == bestCount && v < best) {
			best, bestCount = v, cnt
		}
		i = j
	}
	if !sawDef && defCount > 0 {
		if defCount > bestCount || (defCount == bestCount && def < best) {
			best, bestCount = def, defCount
		}
	}
	return best
}
