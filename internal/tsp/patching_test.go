package tsp

import (
	"math/rand"
	"testing"
)

func TestPatchingProducesValidTours(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 30} {
		m := randMatrix(n, 500, int64(n)+40)
		tour, cost := SolvePatching(m)
		if !tour.Valid(n) {
			t.Fatalf("n=%d: invalid tour %v", n, tour)
		}
		if got := CycleCost(m, tour); got != cost {
			t.Fatalf("n=%d: reported cost %d != recomputed %d", n, cost, got)
		}
	}
}

func TestPatchingAtLeastAPBound(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMatrix(12, 400, seed+300)
		_, cost := SolvePatching(m)
		if ap := AssignmentBound(m); cost < ap {
			t.Fatalf("seed %d: patched tour %d below AP bound %d", seed, cost, ap)
		}
	}
}

func TestPatchingOptimalWhenAPIsATour(t *testing.T) {
	// When the cheapest cycle cover is already a single Hamiltonian ring,
	// patching returns it unchanged: the regime where patching wins.
	n := 8
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	_, cost := SolvePatching(m)
	if cost != Cost(n) {
		t.Fatalf("patching cost %d, want %d", cost, n)
	}
}

func TestPatchingNeverBelowOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := randMatrix(8, 300, seed+700)
		_, opt := SolveExact(m)
		_, patched := SolvePatching(m)
		if patched < opt {
			t.Fatalf("seed %d: patched %d below optimum %d", seed, patched, opt)
		}
	}
}

// TestPatchingLosesOnLoopyInstances reproduces the appendix's argument in
// miniature: on instances shaped like branch-alignment DTSPs (cheap
// disjoint hot loops), iterated 3-Opt beats patching.
func TestPatchingLosesOnLoopyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	worse := 0
	trials := 10
	for trial := 0; trial < trials; trial++ {
		n := 24
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m.Set(i, j, Cost(200+rng.Int63n(200)))
				}
			}
		}
		// Several cheap disjoint 3-cycles (hot loops).
		for c := 0; c+3 <= n; c += 3 {
			m.Set(c, c+1, 1)
			m.Set(c+1, c+2, 1)
			m.Set(c+2, c, 1)
		}
		_, patched := SolvePatching(m)
		_, threeOpt := IteratedThreeOpt(m, nil, GreedyEdge(m, nil), 3*n, rng)
		if threeOpt < patched {
			worse++
		}
		if threeOpt > patched+Cost(n*60) {
			t.Errorf("trial %d: 3-opt %d far worse than patching %d", trial, threeOpt, patched)
		}
	}
	if worse < trials/2 {
		t.Errorf("3-opt beat patching on only %d/%d loopy instances", worse, trials)
	}
}
