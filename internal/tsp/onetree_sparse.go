package tsp

import (
	"math"
	"sync"
)

// sparseOneTree computes minimum 1-trees of the 2-city symmetric
// transformation of a sparse DTSP instance without materializing the
// 2n×2n matrix (compare Sym.Matrix, which HeldKarpDirectedDense feeds to
// the dense Prim in oneTree).
//
// The symmetric instance over N = 2n nodes (in_i = 2i, out_i = 2i+1) has
// three edge classes: locked intra-city edges at -L, directed edges
// {out_i, in_j} at c(i->j), and forbidden same-side edges at L, where
// L = Forbid(). A dense Prim is Θ(N²) per subgradient iteration. Here
// each iteration is O(E + N log N) by splitting the offers to a non-tree
// node into:
//
//   - explicit offers (locked partners and exception edges cheaper than
//     their row default), kept in an indexed min-heap;
//   - a default channel: every tree out-node offers def(i)+pi to every
//     in-node, so the best such offer is a single scalar, and the best
//     receiver is the non-tree in-node with minimum pi (a static order
//     per iteration, since pi is fixed while the 1-tree is built);
//   - mirrored channels for default edges into out-nodes and for
//     forbidden same-side edges.
//
// Exception edges costlier than their row default are capped at the
// default (equivalently: the default edge of the same pair is kept as a
// parallel edge). Every edge weight used is <= the true symmetric cost,
// so the resulting value is a minimum 1-tree of a relaxed instance and
// remains a valid Held-Karp lower bound after the Lagrangian correction;
// it can only be (marginally) looser than the dense reference, never
// wrong. On branch-alignment instances the cap affects only conditional
// taken-targets costlier than full displacement.
//
// The kernel is built for the subgradient loop around it: every slice
// lives in the struct and is reused across iterates, instances are
// pooled across calls (newSparseOneTree / release), the per-iteration
// selection orders are re-sorted incrementally (only nodes whose pi
// moved — those with degree != 2 in the previous 1-tree — leave their
// old position), and instances at or below denseOneTreeCutoff nodes skip
// the heap and orders entirely for a scan-based Prim with lower
// constants. A full run() performs no allocations in steady state.
type sparseOneTree struct {
	sp *SparseMatrix
	n  int // directed cities
	N  int // symmetric nodes
	L  Cost

	// Column-major view of the exceptions (built once; pi-independent).
	colStart []int
	colRows  []int
	colVals  []Cost

	pi  []float64
	deg []int

	inTree []bool
	key    []float64 // best explicit offer per node
	par    []int     // parent achieving key (or channel parent)

	// dense selects the scan-based Prim: one pass over the nodes per
	// selection step instead of heap + sorted channel orders. Same
	// selection rule, so the two paths are bit-identical (pinned by
	// TestSparseOneTreeDenseMatchesHeap); the cutoff is purely a
	// constant-factor trade.
	dense bool

	// Lazy-deletion min-heaps of explicit offers, ordered by (val, node)
	// with the keys stored inline. Entries go stale when a better offer
	// for the same node is pushed (val > key[node]) or the node joins the
	// tree; the selection loop pops them on sight, exactly like the
	// container/heap implementation this replaced. Offers are split by
	// class: locked-partner offers (≈ -L, always far below every
	// exception offer and almost always consumed by the very next
	// selection) live in lockH, which therefore stays a handful of
	// entries deep; exception offers live in excH. A node's live offer is
	// unique across both heaps — pushes strictly decrease key[node] — so
	// taking the (val, node)-minimum of the two live tops selects exactly
	// the single-heap minimum, and keeping the ≈N/2 transient locked
	// offers per iterate out of excH saves a full-depth sift on each.
	lockH pairHeap
	excH  pairHeap

	// Static per-iteration selection orders, each sorted by
	// (orderKey, node): in-nodes (excluding node 0) by pi, out-nodes by
	// def+pi, out-nodes by pi. The keys slices cache each node's sort
	// key from the previous iterate, which is what makes incremental
	// re-sorting possible: a node whose recomputed key equals its cached
	// key kept its pi (subgradient updates move only degree != 2 nodes),
	// so the surviving subsequence is already sorted and only the moved
	// nodes need sorting before an O(N) merge.
	inByPi     keyedOrder
	outByDefPi keyedOrder
	outByPi    keyedOrder
	defOff     []float64 // float64(RowDefault(v/2)) per out-node v
	havePrev   bool      // orders hold last iterate's sort

	// Channel scalars: best tree-side endpoints for the channel offers.
	bestDefOut, bestPiIn, bestPiOut          float64
	bestDefOutArg, bestPiInArg, bestPiOutArg int

	// Re-sort scratch (stable/moved split + merge source).
	stableN, movedN []int32
	stableK, movedK []float64
}

// keyedOrder is one selection order: nodes sorted by (keys[i], nodes[i]).
type keyedOrder struct {
	nodes []int32
	keys  []float64
}

// denseOneTreeCutoff is the node count at or below which run() uses the
// scan-based Prim. 256 nodes = 128 blocks covers every function of the
// bundled suite.
const denseOneTreeCutoff = 256

// oneTreePool recycles kernels across bound computations, so a
// per-function fan-out over many small instances allocates each scratch
// slice only until the pool is warm.
var oneTreePool = sync.Pool{New: func() any { return new(sparseOneTree) }}

func newSparseOneTree(sp *SparseMatrix) *sparseOneTree {
	t := oneTreePool.Get().(*sparseOneTree)
	t.init(sp)
	return t
}

// release returns the kernel's scratch to the pool. The caller must not
// use t afterwards.
func (t *sparseOneTree) release() {
	t.sp = nil
	oneTreePool.Put(t)
}

// growI32 and friends reslice s to length n, reallocating only when the
// capacity is insufficient — the pool-friendly version of make.
func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

func growCost(s []Cost, n int) []Cost {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]Cost, n)
}

func (t *sparseOneTree) init(sp *SparseMatrix) {
	n := sp.Len()
	N := 2 * n
	t.sp, t.n, t.N, t.L = sp, n, N, sp.Forbid()
	t.dense = N <= denseOneTreeCutoff

	t.pi = growF64(t.pi, N)
	for i := range t.pi {
		t.pi[i] = 0
	}
	t.deg = growInt(t.deg, N)
	t.inTree = growBool(t.inTree, N)
	t.key = growF64(t.key, N)
	t.par = growInt(t.par, N)
	t.lockH.n = 0
	t.excH.n = 0
	t.havePrev = false

	t.inByPi.nodes = growI32(t.inByPi.nodes, n-1)
	t.inByPi.keys = growF64(t.inByPi.keys, n-1)
	t.outByDefPi.nodes = growI32(t.outByDefPi.nodes, n)
	t.outByDefPi.keys = growF64(t.outByDefPi.keys, n)
	t.outByPi.nodes = growI32(t.outByPi.nodes, n)
	t.outByPi.keys = growF64(t.outByPi.keys, n)
	t.defOff = growF64(t.defOff, N)
	for i := 0; i < n; i++ {
		t.defOff[2*i+1] = float64(sp.RowDefault(i))
	}

	// Transpose the exception structure once.
	t.colStart = growInt(t.colStart, n+1)
	for i := range t.colStart {
		t.colStart[i] = 0
	}
	for _, c := range sp.cols {
		t.colStart[c+1]++
	}
	for j := 0; j < n; j++ {
		t.colStart[j+1] += t.colStart[j]
	}
	t.colRows = growInt(t.colRows, len(sp.cols))
	t.colVals = growCost(t.colVals, len(sp.cols))
	// t.par is N >= n slots and reset at every run(), so it can serve
	// as the column fill cursor during init without an extra slice.
	fill := growInt(t.par, n)
	copy(fill, t.colStart[:n])
	for i := 0; i < n; i++ {
		cols, vals := sp.Row(i)
		for k, c := range cols {
			t.colRows[fill[c]] = i
			t.colVals[fill[c]] = vals[k]
			fill[c]++
		}
	}
}

const otUnreached = math.MaxFloat64

// pairHeap is a 4-ary min-heap over (val, node) pairs stored in parallel
// arrays, so every sift compares contiguous memory.
type pairHeap struct {
	keys  []float64
	nodes []int32
	n     int
}

// push adds an offer, sifting up by (val, node).
func (h *pairHeap) push(val float64, node int32) {
	i := h.n
	h.n++
	if i == len(h.keys) {
		h.keys = append(h.keys, 0)
		h.nodes = append(h.nodes, 0)
	}
	for i > 0 {
		p := (i - 1) / 4
		pk, pn := h.keys[p], h.nodes[p]
		if !(val < pk || (val == pk && node < pn)) {
			break
		}
		h.keys[i], h.nodes[i] = pk, pn
		i = p
	}
	h.keys[i], h.nodes[i] = val, node
}

// pop removes the minimum offer.
func (h *pairHeap) pop() {
	h.n--
	n := h.n
	val, node := h.keys[n], h.nodes[n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		bk, bn := h.keys[c], h.nodes[c]
		for j := c + 1; j < end; j++ {
			if jk, jn := h.keys[j], h.nodes[j]; jk < bk || (jk == bk && jn < bn) {
				best, bk, bn = j, jk, jn
			}
		}
		if !(bk < val || (bk == val && bn < node)) {
			break
		}
		h.keys[i], h.nodes[i] = bk, bn
		i = best
	}
	h.keys[i], h.nodes[i] = val, node
}

// sortKeyedNodes sorts (nodes, keys) in place by (key, node): introsort
// (median-of-three quicksort, insertion sort below 12, heapsort past the
// depth bound). The comparison is a strict total order — node indices
// are unique — so every correct sort yields the same permutation; this
// one just does it without the closure and interface boxing of
// sort.Slice.
func sortKeyedNodes(nodes []int32, keys []float64) {
	depth := 0
	for x := len(nodes); x > 0; x >>= 1 {
		depth++
	}
	introKeyed(nodes, keys, 2*depth)
}

func keyedLess(k1 float64, n1 int32, k2 float64, n2 int32) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return n1 < n2
}

func introKeyed(nodes []int32, keys []float64, depth int) {
	for len(nodes) > 12 {
		if depth == 0 {
			heapsortKeyed(nodes, keys)
			return
		}
		depth--
		p := partitionKeyed(nodes, keys)
		if p < len(nodes)-p-1 {
			introKeyed(nodes[:p], keys[:p], depth)
			nodes, keys = nodes[p+1:], keys[p+1:]
		} else {
			introKeyed(nodes[p+1:], keys[p+1:], depth)
			nodes, keys = nodes[:p], keys[:p]
		}
	}
	// Insertion sort for the short tail.
	for i := 1; i < len(nodes); i++ {
		kn, kk := nodes[i], keys[i]
		j := i
		for j > 0 && keyedLess(kk, kn, keys[j-1], nodes[j-1]) {
			nodes[j], keys[j] = nodes[j-1], keys[j-1]
			j--
		}
		nodes[j], keys[j] = kn, kk
	}
}

func partitionKeyed(nodes []int32, keys []float64) int {
	// Median-of-three pivot, moved to the end.
	m := len(nodes) / 2
	hi := len(nodes) - 1
	if keyedLess(keys[m], nodes[m], keys[0], nodes[0]) {
		nodes[m], nodes[0] = nodes[0], nodes[m]
		keys[m], keys[0] = keys[0], keys[m]
	}
	if keyedLess(keys[hi], nodes[hi], keys[m], nodes[m]) {
		nodes[hi], nodes[m] = nodes[m], nodes[hi]
		keys[hi], keys[m] = keys[m], keys[hi]
		if keyedLess(keys[m], nodes[m], keys[0], nodes[0]) {
			nodes[m], nodes[0] = nodes[0], nodes[m]
			keys[m], keys[0] = keys[0], keys[m]
		}
	}
	nodes[m], nodes[hi] = nodes[hi], nodes[m]
	keys[m], keys[hi] = keys[hi], keys[m]
	pk, pn := keys[hi], nodes[hi]
	w := 0
	for i := 0; i < hi; i++ {
		if keyedLess(keys[i], nodes[i], pk, pn) {
			nodes[i], nodes[w] = nodes[w], nodes[i]
			keys[i], keys[w] = keys[w], keys[i]
			w++
		}
	}
	nodes[hi], nodes[w] = nodes[w], nodes[hi]
	keys[hi], keys[w] = keys[w], keys[hi]
	return w
}

func heapsortKeyed(nodes []int32, keys []float64) {
	n := len(nodes)
	for i := n/2 - 1; i >= 0; i-- {
		siftKeyed(nodes, keys, i, n)
	}
	for i := n - 1; i > 0; i-- {
		nodes[0], nodes[i] = nodes[i], nodes[0]
		keys[0], keys[i] = keys[i], keys[0]
		siftKeyed(nodes, keys, 0, i)
	}
}

func siftKeyed(nodes []int32, keys []float64, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && keyedLess(keys[c], nodes[c], keys[c+1], nodes[c+1]) {
			c++
		}
		if !keyedLess(keys[root], nodes[root], keys[c], nodes[c]) {
			return
		}
		nodes[root], nodes[c] = nodes[c], nodes[root]
		keys[root], keys[c] = keys[c], keys[root]
		root = c
	}
}

// fillOrders (re)builds the three selection orders for the current pi.
// On the first iterate the node lists are materialized and fully sorted;
// afterwards each order is re-sorted incrementally: nodes whose key is
// unchanged (subgradient updates leave degree-2 nodes' pi untouched)
// stay a sorted subsequence, the moved rest is sorted and merged back in
// O(N + moved·log(moved)).
func (t *sparseOneTree) fillOrders() {
	if !t.havePrev {
		in := &t.inByPi
		for j := 1; j < t.n; j++ {
			in.nodes[j-1] = int32(2 * j)
			in.keys[j-1] = t.pi[2*j]
		}
		sortKeyedNodes(in.nodes, in.keys)
		od, op := &t.outByDefPi, &t.outByPi
		for i := 0; i < t.n; i++ {
			v := int32(2*i + 1)
			od.nodes[i] = v
			od.keys[i] = t.defOff[v] + t.pi[v]
			op.nodes[i] = v
			op.keys[i] = t.pi[v]
		}
		sortKeyedNodes(od.nodes, od.keys)
		sortKeyedNodes(op.nodes, op.keys)
		t.havePrev = true
		return
	}
	t.resort(&t.inByPi, false)
	t.resort(&t.outByDefPi, true)
	t.resort(&t.outByPi, false)
}

// resort incrementally restores o to (key, node) order after a pi
// update. withDef adds the node's row default to the key (the outByDefPi
// order).
func (t *sparseOneTree) resort(o *keyedOrder, withDef bool) {
	sn := t.stableN[:0]
	sk := t.stableK[:0]
	mn := t.movedN[:0]
	mk := t.movedK[:0]
	for i, x := range o.nodes {
		k := t.pi[x]
		if withDef {
			k = t.defOff[x] + t.pi[x]
		}
		if k == o.keys[i] {
			sn = append(sn, x)
			sk = append(sk, k)
		} else {
			mn = append(mn, x)
			mk = append(mk, k)
		}
	}
	t.stableN, t.stableK, t.movedN, t.movedK = sn, sk, mn, mk
	if len(mn) == 0 {
		return
	}
	sortKeyedNodes(mn, mk)
	// Merge the two sorted runs back into o.
	i, j, w := 0, 0, 0
	for i < len(sn) && j < len(mn) {
		if keyedLess(sk[i], sn[i], mk[j], mn[j]) {
			o.nodes[w], o.keys[w] = sn[i], sk[i]
			i++
		} else {
			o.nodes[w], o.keys[w] = mn[j], mk[j]
			j++
		}
		w++
	}
	for ; i < len(sn); i, w = i+1, w+1 {
		o.nodes[w], o.keys[w] = sn[i], sk[i]
	}
	for ; j < len(mn); j, w = j+1, w+1 {
		o.nodes[w], o.keys[w] = mn[j], mk[j]
	}
}

// improve records a better explicit offer for a non-tree node in heap h
// (the offer-class heap of the call site). The superseded heap entry, if
// any, is left in place: it is now stale (val > key[node]) and the
// selection loop discards it on sight.
func (t *sparseOneTree) improve(h *pairHeap, node int, val float64, par int) {
	if val < t.key[node] {
		t.key[node] = val
		t.par[node] = par
		if !t.dense {
			h.push(val, int32(node))
		}
	}
}

// join moves v into the tree: update the channel scalars and push the
// explicit offers v now makes to non-tree nodes. v's own heap entries
// become stale lazily.
func (t *sparseOneTree) join(v int) {
	pi, L := t.pi, float64(t.L)
	t.inTree[v] = true
	if w := v ^ 1; w != 0 && !t.inTree[w] {
		t.improve(&t.lockH, w, -L+pi[v]+pi[w], v)
	}
	if v&1 == 1 { // out-node of city i
		i := v / 2
		if d := t.defOff[v] + pi[v]; d < t.bestDefOut {
			t.bestDefOut, t.bestDefOutArg = d, v
		}
		if pi[v] < t.bestPiOut {
			t.bestPiOut, t.bestPiOutArg = pi[v], v
		}
		def := float64(t.sp.RowDefault(i))
		cols, vals := t.sp.Row(i)
		for k, j := range cols {
			if c := float64(vals[k]); c < def {
				if u := 2 * j; u != 0 && !t.inTree[u] {
					t.improve(&t.excH, u, c+pi[v]+pi[u], v)
				}
			}
		}
	} else { // in-node of city j
		j := v / 2
		if pi[v] < t.bestPiIn {
			t.bestPiIn, t.bestPiInArg = pi[v], v
		}
		for k := t.colStart[j]; k < t.colStart[j+1]; k++ {
			i := t.colRows[k]
			if c := float64(t.colVals[k]); c < float64(t.sp.RowDefault(i)) {
				if u := 2*i + 1; !t.inTree[u] {
					t.improve(&t.excH, u, c+pi[v]+pi[u], v)
				}
			}
		}
	}
}

// run builds the minimum 1-tree under the current pi, fills deg, and
// returns the reduced-cost weight (the same quantity oneTree returns).
func (t *sparseOneTree) run() float64 {
	N := t.N
	pi := t.pi
	for i := 0; i < N; i++ {
		t.deg[i] = 0
		t.inTree[i] = false
		t.key[i] = otUnreached
		t.par[i] = -1
	}
	var inHead, outDefHead, outPiHead int
	if !t.dense {
		t.lockH.n = 0
		t.excH.n = 0
		t.fillOrders()
	}
	t.bestDefOut, t.bestDefOutArg = otUnreached, -1 // min def(i)+pi over tree out-nodes
	t.bestPiIn, t.bestPiInArg = otUnreached, -1     // min pi over tree in-nodes
	t.bestPiOut, t.bestPiOutArg = otUnreached, -1   // min pi over tree out-nodes
	L := float64(t.L)

	total := 0.0
	t.join(1) // Prim starts at out_0, as the dense oneTree starts at node 1
	for count := 1; count < N-1; count++ {
		// Candidate 1: best explicit offer; candidates 2-4: the channel
		// offers into their statically best receivers.
		var bestVal = otUnreached
		var bestNode, bestPar = -1, -1
		var inArg, outDefArg, outPiArg = -1, -1, -1
		if t.dense {
			// One scan finds the best explicit offer and the channel
			// receivers: the non-tree in-node minimizing (pi, node) and
			// the non-tree out-nodes minimizing (def+pi, node) and
			// (pi, node). Ascending node order makes "first strict
			// minimum" the exact tie-break the sorted orders encode.
			var inKey, outDefKey, outPiKey float64
			for v := 1; v < N; v++ {
				if t.inTree[v] {
					continue
				}
				if t.key[v] < bestVal {
					bestVal, bestNode, bestPar = t.key[v], v, t.par[v]
				}
				if v&1 == 0 { // in-node (node 0 excluded by the loop start)
					if inArg < 0 || pi[v] < inKey {
						inKey, inArg = pi[v], v
					}
				} else {
					if d := t.defOff[v] + pi[v]; outDefArg < 0 || d < outDefKey {
						outDefKey, outDefArg = d, v
					}
					if outPiArg < 0 || pi[v] < outPiKey {
						outPiKey, outPiArg = pi[v], v
					}
				}
			}
		} else {
			for t.lockH.n > 0 {
				v := int(t.lockH.nodes[0])
				if t.inTree[v] || t.lockH.keys[0] > t.key[v] {
					t.lockH.pop()
					continue
				}
				bestVal, bestNode, bestPar = t.lockH.keys[0], v, t.par[v]
				break
			}
			for t.excH.n > 0 {
				v := int(t.excH.nodes[0])
				if t.inTree[v] || t.excH.keys[0] > t.key[v] {
					t.excH.pop()
					continue
				}
				if val := t.excH.keys[0]; val < bestVal || (val == bestVal && v < bestNode) {
					bestVal, bestNode, bestPar = val, v, t.par[v]
				}
				break
			}
			for inHead < len(t.inByPi.nodes) && t.inTree[t.inByPi.nodes[inHead]] {
				inHead++
			}
			if inHead < len(t.inByPi.nodes) {
				inArg = int(t.inByPi.nodes[inHead])
			}
			for outDefHead < len(t.outByDefPi.nodes) && t.inTree[t.outByDefPi.nodes[outDefHead]] {
				outDefHead++
			}
			if outDefHead < len(t.outByDefPi.nodes) {
				outDefArg = int(t.outByDefPi.nodes[outDefHead])
			}
			for outPiHead < len(t.outByPi.nodes) && t.inTree[t.outByPi.nodes[outPiHead]] {
				outPiHead++
			}
			if outPiHead < len(t.outByPi.nodes) {
				outPiArg = int(t.outByPi.nodes[outPiHead])
			}
		}
		// Candidate 2: default/forbidden edge into the min-pi in-node.
		if inArg >= 0 {
			ch, par := t.bestDefOut, t.bestDefOutArg
			if fb := L + t.bestPiIn; fb < ch {
				ch, par = fb, t.bestPiInArg
			}
			if ch < otUnreached {
				if val := ch + pi[inArg]; val < bestVal || (val == bestVal && inArg < bestNode) {
					bestVal, bestNode, bestPar = val, inArg, par
				}
			}
		}
		// Candidate 3: default edge into the min-(def+pi) out-node.
		if outDefArg >= 0 && t.bestPiIn < otUnreached {
			if val := t.defOff[outDefArg] + pi[outDefArg] + t.bestPiIn; val < bestVal || (val == bestVal && outDefArg < bestNode) {
				bestVal, bestNode, bestPar = val, outDefArg, t.bestPiInArg
			}
		}
		// Candidate 4: forbidden edge into the min-pi out-node.
		if outPiArg >= 0 && t.bestPiOut < otUnreached {
			if val := L + t.bestPiOut + pi[outPiArg]; val < bestVal || (val == bestVal && outPiArg < bestNode) {
				bestVal, bestNode, bestPar = val, outPiArg, t.bestPiOutArg
			}
		}
		if bestNode < 0 {
			break
		}
		total += bestVal
		t.deg[bestNode]++
		t.deg[bestPar]++
		t.join(bestNode)
	}

	// Two cheapest edges incident to node 0 (in_0), at true costs.
	best1, best2 := otUnreached, otUnreached
	arg1, arg2 := -1, -1
	for b := 1; b < N; b++ {
		var c float64
		switch {
		case b == 1:
			c = -L // locked partner out_0
		case b&1 == 1:
			c = float64(t.sp.At(b/2, 0)) // directed edge out_i -> in_0
		default:
			c = L // forbidden in/in edge
		}
		d := c + pi[0] + pi[b]
		switch {
		case d < best1:
			best2, arg2 = best1, arg1
			best1, arg1 = d, b
		case d < best2:
			best2, arg2 = d, b
		}
	}
	total += best1 + best2
	t.deg[0] += 2
	t.deg[arg1]++
	t.deg[arg2]++
	return total
}
