package tsp

import (
	"math"
	"sync"
)

// sparseOneTree computes minimum 1-trees of the 2-city symmetric
// transformation of a sparse DTSP instance without materializing the
// 2n×2n matrix (compare Sym.Matrix, which HeldKarpDirectedDense feeds to
// the dense Prim in oneTree).
//
// The symmetric instance over N = 2n nodes (in_i = 2i, out_i = 2i+1) has
// three edge classes: locked intra-city edges at -L, directed edges
// {out_i, in_j} at c(i->j), and forbidden same-side edges at L, where
// L = Forbid(). A dense Prim is Θ(N²) per subgradient iteration. Here
// each iteration is O(E + N log N) by splitting the offers to a non-tree
// node into:
//
//   - explicit offers (locked partners and exception edges cheaper than
//     their row default), kept in lazy-deletion min-heaps;
//   - a default channel: every tree out-node offers def(i)+pi to every
//     in-node, so the best such offer is a single scalar, and the best
//     receiver is the non-tree in-node with minimum pi (a static order
//     per iteration, since pi is fixed while the 1-tree is built);
//   - mirrored channels for default edges into out-nodes and for
//     forbidden same-side edges.
//
// Exception edges costlier than their row default are capped at the
// default (equivalently: the default edge of the same pair is kept as a
// parallel edge). Every edge weight used is <= the true symmetric cost,
// so the resulting value is a minimum 1-tree of a relaxed instance and
// remains a valid Held-Karp lower bound after the Lagrangian correction;
// it can only be (marginally) looser than the dense reference, never
// wrong. On branch-alignment instances the cap affects only conditional
// taken-targets costlier than full displacement.
//
// The kernel is built for the subgradient loop around it: every slice
// lives in the struct and is reused across iterates, instances are
// pooled across calls (newSparseOneTree / release), the per-iteration
// selection orders are re-sorted incrementally (only nodes whose pi
// moved — those with degree != 2 in the previous 1-tree — leave their
// old position), and instances at or below denseOneTreeCutoff nodes skip
// the heap and orders entirely for a scan-based Prim with lower
// constants. A full run() performs no allocations in steady state.
type sparseOneTree struct {
	sp *SparseMatrix
	n  int // directed cities
	N  int // symmetric nodes
	L  Cost

	// Join adjacency, prefiltered once per init (it is pi-independent):
	// for each city, the exception offers its out-node (rowAdj*) and its
	// in-node (colAdj*) make on joining the tree, with the receiving
	// symmetric node and the float64 edge cost precomputed. Exceptions at
	// or above their row default are capped away here instead of being
	// re-filtered on every join, and offers into node 0 are dropped
	// (node 0 is closed separately at the end of run).
	rowAdjStart []int
	rowAdjU     []int32
	rowAdjC     []float64
	colAdjStart []int
	colAdjU     []int32
	colAdjC     []float64

	pi  []float64
	deg []int

	inTree []bool
	key    []float64 // best explicit offer per node
	par    []int     // parent achieving key (or channel parent)

	// dense selects the scan-based Prim: one pass over the nodes per
	// selection step instead of heap + sorted channel orders. Same
	// selection rule, so the two paths are bit-identical (pinned by
	// TestSparseOneTreeDenseMatchesHeap); the cutoff is purely a
	// constant-factor trade.
	dense bool

	// Lazy-deletion min-heaps of explicit offers, ordered by (val, node)
	// with the keys stored inline. Entries go stale when a better offer
	// for the same node is pushed (val > key[node]) or the node joins the
	// tree; the selection loop pops them on sight, exactly like the
	// container/heap implementation this replaced. Offers are split by
	// class: locked-partner offers (≈ -L, always far below every
	// exception offer and almost always consumed by the very next
	// selection) live in lockH, which therefore stays a handful of
	// entries deep; exception offers live in excH. A node's live offer is
	// unique across both heaps — pushes strictly decrease key[node] — so
	// taking the (val, node)-minimum of the two live tops selects exactly
	// the single-heap minimum, and keeping the ≈N/2 transient locked
	// offers per iterate out of excH saves a full-depth sift on each.
	lockH pairHeap
	excH  pairHeap

	// Static per-iteration selection orders, each sorted by
	// (orderKey, node): in-nodes (excluding node 0) by pi, out-nodes by
	// def+pi. The keys slices cache each node's sort key from the
	// previous iterate, which is what makes incremental re-sorting
	// possible: a node whose recomputed key equals its cached key kept
	// its pi (subgradient updates move only degree != 2 nodes), so the
	// surviving subsequence is already sorted and only the moved nodes
	// need sorting before an O(N) merge.
	//
	// The forbidden-edge channel (candidate 4) needs the min-pi non-tree
	// out-node, but its offers cost at least L, so instead of a third
	// sorted order it keeps minOutPi — the minimum pi over ALL out-nodes
	// this iterate, a lower bound on the candidate's value — and only
	// scans for the exact receiver on the (degenerate) selections where
	// that bound does not already lose.
	inByPi     keyedOrder
	outByDefPi keyedOrder
	minOutPi   float64
	defOff     []float64 // float64(RowDefault(v/2)) per out-node v
	havePrev   bool      // orders hold last iterate's sort

	// Channel scalars: best tree-side endpoints for the channel offers.
	bestDefOut, bestPiIn, bestPiOut          float64
	bestDefOutArg, bestPiInArg, bestPiOutArg int

	// Locked-partner fusion. Roughly half of all selections consume the
	// -L locked offer created by the immediately preceding join; each
	// used to cost a heap push, a full candidate evaluation, and a heap
	// pop. fuseG is a per-iterate lower bound on every non-locked
	// candidate value: exception offers are >= minAdjC + 2·minPi and the
	// channel candidates are >= min(minDefOff, L) + 2·minPi, so
	// fuseG = min(minAdjC, minDefOff, L) + 2·minPi. A locked offer
	// strictly below fuseG is strictly below every competitor at the
	// next selection — no tie-break can arise — so join records it in
	// fused and the selection loop joins the partner immediately,
	// bypassing the heaps and candidates; offers at or above fuseG take
	// the general lockH path. minAdjC and minDefOff are static per
	// instance; minPi is refreshed each run.
	minAdjC, minDefOff float64
	fuseG              float64
	fused              int

	// Re-sort scratch (stable/moved split + merge source).
	stableN, movedN []int32
	stableK, movedK []float64
}

// keyedOrder is one selection order: nodes sorted by (keys[i], nodes[i]).
type keyedOrder struct {
	nodes []int32
	keys  []float64
}

// denseOneTreeCutoff is the node count at or below which run() uses the
// scan-based Prim. 256 nodes = 128 blocks covers every function of the
// bundled suite.
const denseOneTreeCutoff = 256

// oneTreePool recycles kernels across bound computations, so a
// per-function fan-out over many small instances allocates each scratch
// slice only until the pool is warm.
var oneTreePool = sync.Pool{New: func() any { return new(sparseOneTree) }}

func newSparseOneTree(sp *SparseMatrix) *sparseOneTree {
	t := oneTreePool.Get().(*sparseOneTree)
	t.init(sp)
	return t
}

// release returns the kernel's scratch to the pool. The caller must not
// use t afterwards.
func (t *sparseOneTree) release() {
	t.sp = nil
	oneTreePool.Put(t)
}

// growI32 and friends reslice s to length n, reallocating only when the
// capacity is insufficient — the pool-friendly version of make.
func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

func growCost(s []Cost, n int) []Cost {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]Cost, n)
}

func (t *sparseOneTree) init(sp *SparseMatrix) {
	n := sp.Len()
	N := 2 * n
	t.sp, t.n, t.N, t.L = sp, n, N, sp.Forbid()
	t.dense = N <= denseOneTreeCutoff

	t.pi = growF64(t.pi, N)
	for i := range t.pi {
		t.pi[i] = 0
	}
	t.deg = growInt(t.deg, N)
	t.inTree = growBool(t.inTree, N)
	t.key = growF64(t.key, N)
	t.par = growInt(t.par, N)
	t.lockH.n = 0
	t.excH.n = 0
	t.havePrev = false

	t.inByPi.nodes = growI32(t.inByPi.nodes, n-1)
	t.inByPi.keys = growF64(t.inByPi.keys, n-1)
	t.outByDefPi.nodes = growI32(t.outByDefPi.nodes, n)
	t.outByDefPi.keys = growF64(t.outByDefPi.keys, n)
	t.defOff = growF64(t.defOff, N)
	t.minDefOff = otUnreached
	for i := 0; i < n; i++ {
		d := float64(sp.RowDefault(i))
		t.defOff[2*i+1] = d
		if d < t.minDefOff {
			t.minDefOff = d
		}
	}

	// Row-side join adjacency: the useful exception offers of each
	// out-node, filtered and converted once.
	rU, rC := t.rowAdjU[:0], t.rowAdjC[:0]
	t.rowAdjStart = growInt(t.rowAdjStart, n+1)
	t.colAdjStart = growInt(t.colAdjStart, n+1)
	for j := 0; j <= n; j++ {
		t.colAdjStart[j] = 0
	}
	t.minAdjC = otUnreached
	for i := 0; i < n; i++ {
		t.rowAdjStart[i] = len(rU)
		def := float64(sp.RowDefault(i))
		cols, vals := sp.Row(i)
		for k, j := range cols {
			if c := float64(vals[k]); c < def {
				t.colAdjStart[j+1]++
				if c < t.minAdjC {
					t.minAdjC = c
				}
				if j != 0 {
					rU = append(rU, int32(2*j))
					rC = append(rC, c)
				}
			}
		}
	}
	t.rowAdjStart[n] = len(rU)
	t.rowAdjU, t.rowAdjC = rU, rC
	// Column-side join adjacency: counting sort of the same filtered
	// entries by column. t.par is N >= n slots and reset at every run(),
	// so it can serve as the per-column fill cursor without an extra
	// slice.
	for j := 0; j < n; j++ {
		t.colAdjStart[j+1] += t.colAdjStart[j]
	}
	t.colAdjU = growI32(t.colAdjU, t.colAdjStart[n])
	t.colAdjC = growF64(t.colAdjC, t.colAdjStart[n])
	fill := growInt(t.par, n)
	copy(fill, t.colAdjStart[:n])
	for i := 0; i < n; i++ {
		def := float64(sp.RowDefault(i))
		cols, vals := sp.Row(i)
		for k, j := range cols {
			if c := float64(vals[k]); c < def {
				t.colAdjU[fill[j]] = int32(2*i + 1)
				t.colAdjC[fill[j]] = c
				fill[j]++
			}
		}
	}
}

const otUnreached = math.MaxFloat64

// heapEnt is one heap entry. Key and node sit in the same 16 bytes, so
// a sift touches one cache line per entry instead of one in a keys
// array plus one in a nodes array — on heaps that outgrow L1 the pop
// cost is cache misses, not comparisons.
type heapEnt struct {
	key  float64
	node int32
}

// pairHeap is a 4-ary min-heap over (val, node) pairs.
type pairHeap struct {
	ents []heapEnt
	n    int
}

// push adds an offer, sifting up by (val, node).
func (h *pairHeap) push(val float64, node int32) {
	i := h.n
	h.n++
	if i == len(h.ents) {
		h.ents = append(h.ents, heapEnt{})
	}
	e := h.ents
	for i > 0 {
		p := (i - 1) / 4
		pe := e[p]
		if !(val < pe.key || (val == pe.key && node < pe.node)) {
			break
		}
		e[i] = pe
		i = p
	}
	e[i] = heapEnt{key: val, node: node}
}

// pop removes the minimum offer. Floyd's bottom-up variant: the hole at
// the root walks down to a leaf along minimum children, then the last
// element drops in and sifts up. The replacement comes from the bottom
// of the heap, so it nearly always belongs near the bottom again and
// the upward pass is shorter than the replacement-vs-children compare
// the classic top-down loop pays at every level. The heap's internal
// layout after a pop may differ from the top-down result, but every
// stored (val, node) pair is distinct — a node's pushes strictly
// decrease its key — so the minimum, which is all the selection loop
// reads, is the same.
func (h *pairHeap) pop() {
	h.n--
	n := h.n
	e := h.ents
	last := e[n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		be := e[c]
		for j := c + 1; j < end; j++ {
			if je := e[j]; je.key < be.key || (je.key == be.key && je.node < be.node) {
				best, be = j, je
			}
		}
		e[i] = be
		i = best
	}
	for i > 0 {
		p := (i - 1) / 4
		pe := e[p]
		if !(last.key < pe.key || (last.key == pe.key && last.node < pe.node)) {
			break
		}
		e[i] = pe
		i = p
	}
	e[i] = last
}

// sortKeyedNodes sorts (nodes, keys) in place by (key, node): introsort
// (median-of-three quicksort, insertion sort below 12, heapsort past the
// depth bound). The comparison is a strict total order — node indices
// are unique — so every correct sort yields the same permutation; this
// one just does it without the closure and interface boxing of
// sort.Slice.
func sortKeyedNodes(nodes []int32, keys []float64) {
	depth := 0
	for x := len(nodes); x > 0; x >>= 1 {
		depth++
	}
	introKeyed(nodes, keys, 2*depth)
}

func keyedLess(k1 float64, n1 int32, k2 float64, n2 int32) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return n1 < n2
}

func introKeyed(nodes []int32, keys []float64, depth int) {
	for len(nodes) > 12 {
		if depth == 0 {
			heapsortKeyed(nodes, keys)
			return
		}
		depth--
		p := partitionKeyed(nodes, keys)
		if p < len(nodes)-p-1 {
			introKeyed(nodes[:p], keys[:p], depth)
			nodes, keys = nodes[p+1:], keys[p+1:]
		} else {
			introKeyed(nodes[p+1:], keys[p+1:], depth)
			nodes, keys = nodes[:p], keys[:p]
		}
	}
	// Insertion sort for the short tail.
	for i := 1; i < len(nodes); i++ {
		kn, kk := nodes[i], keys[i]
		j := i
		for j > 0 && keyedLess(kk, kn, keys[j-1], nodes[j-1]) {
			nodes[j], keys[j] = nodes[j-1], keys[j-1]
			j--
		}
		nodes[j], keys[j] = kn, kk
	}
}

func partitionKeyed(nodes []int32, keys []float64) int {
	// Median-of-three pivot, moved to the end.
	m := len(nodes) / 2
	hi := len(nodes) - 1
	if keyedLess(keys[m], nodes[m], keys[0], nodes[0]) {
		nodes[m], nodes[0] = nodes[0], nodes[m]
		keys[m], keys[0] = keys[0], keys[m]
	}
	if keyedLess(keys[hi], nodes[hi], keys[m], nodes[m]) {
		nodes[hi], nodes[m] = nodes[m], nodes[hi]
		keys[hi], keys[m] = keys[m], keys[hi]
		if keyedLess(keys[m], nodes[m], keys[0], nodes[0]) {
			nodes[m], nodes[0] = nodes[0], nodes[m]
			keys[m], keys[0] = keys[0], keys[m]
		}
	}
	nodes[m], nodes[hi] = nodes[hi], nodes[m]
	keys[m], keys[hi] = keys[hi], keys[m]
	pk, pn := keys[hi], nodes[hi]
	w := 0
	for i := 0; i < hi; i++ {
		if keyedLess(keys[i], nodes[i], pk, pn) {
			nodes[i], nodes[w] = nodes[w], nodes[i]
			keys[i], keys[w] = keys[w], keys[i]
			w++
		}
	}
	nodes[hi], nodes[w] = nodes[w], nodes[hi]
	keys[hi], keys[w] = keys[w], keys[hi]
	return w
}

func heapsortKeyed(nodes []int32, keys []float64) {
	n := len(nodes)
	for i := n/2 - 1; i >= 0; i-- {
		siftKeyed(nodes, keys, i, n)
	}
	for i := n - 1; i > 0; i-- {
		nodes[0], nodes[i] = nodes[i], nodes[0]
		keys[0], keys[i] = keys[i], keys[0]
		siftKeyed(nodes, keys, 0, i)
	}
}

func siftKeyed(nodes []int32, keys []float64, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && keyedLess(keys[c], nodes[c], keys[c+1], nodes[c+1]) {
			c++
		}
		if !keyedLess(keys[root], nodes[root], keys[c], nodes[c]) {
			return
		}
		nodes[root], nodes[c] = nodes[c], nodes[root]
		keys[root], keys[c] = keys[c], keys[root]
		root = c
	}
}

// fillOrders (re)builds the selection orders for the current pi.
// On the first iterate the node lists are materialized and fully sorted;
// afterwards each order is re-sorted incrementally: nodes whose key is
// unchanged (subgradient updates leave degree-2 nodes' pi untouched)
// stay a sorted subsequence, the moved rest is sorted and merged back in
// O(N + moved·log(moved)).
func (t *sparseOneTree) fillOrders() {
	if !t.havePrev {
		in := &t.inByPi
		for j := 1; j < t.n; j++ {
			in.nodes[j-1] = int32(2 * j)
			in.keys[j-1] = t.pi[2*j]
		}
		sortKeyedNodes(in.nodes, in.keys)
		od := &t.outByDefPi
		for i := 0; i < t.n; i++ {
			v := int32(2*i + 1)
			od.nodes[i] = v
			od.keys[i] = t.defOff[v] + t.pi[v]
		}
		sortKeyedNodes(od.nodes, od.keys)
		t.havePrev = true
		return
	}
	t.resort(&t.inByPi, false)
	t.resort(&t.outByDefPi, true)
}

// resort incrementally restores o to (key, node) order after a pi
// update. withDef adds the node's row default to the key (the outByDefPi
// order).
func (t *sparseOneTree) resort(o *keyedOrder, withDef bool) {
	sn := t.stableN[:0]
	sk := t.stableK[:0]
	mn := t.movedN[:0]
	mk := t.movedK[:0]
	for i, x := range o.nodes {
		k := t.pi[x]
		if withDef {
			k = t.defOff[x] + t.pi[x]
		}
		if k == o.keys[i] {
			sn = append(sn, x)
			sk = append(sk, k)
		} else {
			mn = append(mn, x)
			mk = append(mk, k)
		}
	}
	t.stableN, t.stableK, t.movedN, t.movedK = sn, sk, mn, mk
	if len(mn) == 0 {
		return
	}
	sortKeyedNodes(mn, mk)
	// Merge the two sorted runs back into o.
	i, j, w := 0, 0, 0
	for i < len(sn) && j < len(mn) {
		if keyedLess(sk[i], sn[i], mk[j], mn[j]) {
			o.nodes[w], o.keys[w] = sn[i], sk[i]
			i++
		} else {
			o.nodes[w], o.keys[w] = mn[j], mk[j]
			j++
		}
		w++
	}
	for ; i < len(sn); i, w = i+1, w+1 {
		o.nodes[w], o.keys[w] = sn[i], sk[i]
	}
	for ; j < len(mn); j, w = j+1, w+1 {
		o.nodes[w], o.keys[w] = mn[j], mk[j]
	}
}

// improve records a better exception offer for a non-tree node. The
// superseded heap entry, if any, is left in place: it is now stale
// (val > key[node]) and the selection loop discards it on sight.
//
// Channel-dominated offers skip the heap entirely. An in-node u always
// has the default channel open at bestDefOut + pi[u], and bestDefOut
// only decreases as the tree grows, while the channel's receiver — the
// inByPi head h — satisfies pi[h] <= pi[u] as long as u is out of the
// tree. So when val > bestDefOut + pi[u] holds now, candidate 2 beats
// this offer strictly at every later selection and the offer can never
// be the selected minimum; pushing it would only produce a stale pop.
// Out-nodes are symmetric via candidate 3: the outByDefPi head o has
// defOff[o] + pi[o] <= defOff[u] + pi[u], and bestPiIn only decreases,
// so offers with val > defOff[u] + pi[u] + bestPiIn are likewise never
// selected (before the first in-node joins, bestPiIn is +inf and
// nothing is pruned). key and par are still updated — the lazy-deletion
// staleness rule and the dense scan read them — and ties are kept: only
// strictly dominated offers are dropped, so no (val, node) comparison
// anywhere changes its outcome.
func (t *sparseOneTree) improve(node int, val float64, par int) {
	if val >= t.key[node] {
		return
	}
	t.key[node] = val
	t.par[node] = par
	if t.dense {
		return
	}
	if node&1 == 0 {
		if val > t.bestDefOut+t.pi[node] {
			return
		}
	} else if val > t.defOff[node]+t.pi[node]+t.bestPiIn {
		return
	}
	t.excH.push(val, int32(node))
}

// join moves v into the tree: update the channel scalars and push the
// explicit offers v now makes to non-tree nodes. v's own heap entries
// become stale lazily.
func (t *sparseOneTree) join(v int) {
	pi, L := t.pi, float64(t.L)
	t.inTree[v] = true
	if w := v ^ 1; w != 0 && !t.inTree[w] {
		if val := -L + pi[v] + pi[w]; val < t.key[w] {
			t.key[w] = val
			t.par[w] = v
			if !t.dense {
				if val < t.fuseG {
					t.fused = w
				} else {
					t.lockH.push(val, int32(w))
				}
			}
		}
	}
	i := v >> 1
	if v&1 == 1 { // out-node of city i
		if d := t.defOff[v] + pi[v]; d < t.bestDefOut {
			t.bestDefOut, t.bestDefOutArg = d, v
		}
		if pi[v] < t.bestPiOut {
			t.bestPiOut, t.bestPiOutArg = pi[v], v
		}
		for k := t.rowAdjStart[i]; k < t.rowAdjStart[i+1]; k++ {
			if u := int(t.rowAdjU[k]); !t.inTree[u] {
				t.improve(u, t.rowAdjC[k]+pi[v]+pi[u], v)
			}
		}
	} else { // in-node of city i
		if pi[v] < t.bestPiIn {
			t.bestPiIn, t.bestPiInArg = pi[v], v
		}
		for k := t.colAdjStart[i]; k < t.colAdjStart[i+1]; k++ {
			if u := int(t.colAdjU[k]); !t.inTree[u] {
				t.improve(u, t.colAdjC[k]+pi[v]+pi[u], v)
			}
		}
	}
}

// run builds the minimum 1-tree under the current pi, fills deg, and
// returns the reduced-cost weight (the same quantity oneTree returns).
func (t *sparseOneTree) run() float64 {
	N := t.N
	pi := t.pi
	for i := 0; i < N; i++ {
		t.deg[i] = 0
		t.inTree[i] = false
		t.key[i] = otUnreached
		t.par[i] = -1
	}
	var inHead, outDefHead int
	t.fused = -1
	if !t.dense {
		t.lockH.n = 0
		t.excH.n = 0
		t.fillOrders()
		t.minOutPi = otUnreached
		minPi := otUnreached
		for v := 0; v < N; v++ {
			if pi[v] < minPi {
				minPi = pi[v]
			}
			if v&1 == 1 && pi[v] < t.minOutPi {
				t.minOutPi = pi[v]
			}
		}
		g := t.minAdjC
		if t.minDefOff < g {
			g = t.minDefOff
		}
		if fb := float64(t.L); fb < g {
			g = fb
		}
		t.fuseG = g + 2*minPi
	}
	t.bestDefOut, t.bestDefOutArg = otUnreached, -1 // min def(i)+pi over tree out-nodes
	t.bestPiIn, t.bestPiInArg = otUnreached, -1     // min pi over tree in-nodes
	t.bestPiOut, t.bestPiOutArg = otUnreached, -1   // min pi over tree out-nodes
	L := float64(t.L)

	total := 0.0
	t.join(1) // Prim starts at out_0, as the dense oneTree starts at node 1
	for count := 1; count < N-1; count++ {
		// Candidate 1: best explicit offer; candidates 2-4: the channel
		// offers into their statically best receivers.
		var bestVal = otUnreached
		var bestNode, bestPar = -1, -1
		var inArg, outDefArg, outPiArg = -1, -1, -1
		if t.dense {
			// One scan finds the best explicit offer and the channel
			// receivers: the non-tree in-node minimizing (pi, node) and
			// the non-tree out-nodes minimizing (def+pi, node) and
			// (pi, node). Ascending node order makes "first strict
			// minimum" the exact tie-break the sorted orders encode.
			var inKey, outDefKey, outPiKey float64
			for v := 1; v < N; v++ {
				if t.inTree[v] {
					continue
				}
				if t.key[v] < bestVal {
					bestVal, bestNode, bestPar = t.key[v], v, t.par[v]
				}
				if v&1 == 0 { // in-node (node 0 excluded by the loop start)
					if inArg < 0 || pi[v] < inKey {
						inKey, inArg = pi[v], v
					}
				} else {
					if d := t.defOff[v] + pi[v]; outDefArg < 0 || d < outDefKey {
						outDefKey, outDefArg = d, v
					}
					if outPiArg < 0 || pi[v] < outPiKey {
						outPiKey, outPiArg = pi[v], v
					}
				}
			}
		} else {
			for t.lockH.n > 0 {
				top := t.lockH.ents[0]
				v := int(top.node)
				if t.inTree[v] || top.key > t.key[v] {
					t.lockH.pop()
					continue
				}
				bestVal, bestNode, bestPar = top.key, v, t.par[v]
				break
			}
			for t.excH.n > 0 {
				top := t.excH.ents[0]
				v := int(top.node)
				if t.inTree[v] || top.key > t.key[v] {
					t.excH.pop()
					continue
				}
				if val := top.key; val < bestVal || (val == bestVal && v < bestNode) {
					bestVal, bestNode, bestPar = val, v, t.par[v]
				}
				break
			}
			for inHead < len(t.inByPi.nodes) && t.inTree[t.inByPi.nodes[inHead]] {
				inHead++
			}
			if inHead < len(t.inByPi.nodes) {
				inArg = int(t.inByPi.nodes[inHead])
			}
			for outDefHead < len(t.outByDefPi.nodes) && t.inTree[t.outByDefPi.nodes[outDefHead]] {
				outDefHead++
			}
			if outDefHead < len(t.outByDefPi.nodes) {
				outDefArg = int(t.outByDefPi.nodes[outDefHead])
			}
		}
		// Candidate 2: default/forbidden edge into the min-pi in-node.
		if inArg >= 0 {
			ch, par := t.bestDefOut, t.bestDefOutArg
			if fb := L + t.bestPiIn; fb < ch {
				ch, par = fb, t.bestPiInArg
			}
			if ch < otUnreached {
				if val := ch + pi[inArg]; val < bestVal || (val == bestVal && inArg < bestNode) {
					bestVal, bestNode, bestPar = val, inArg, par
				}
			}
		}
		// Candidate 3: default edge into the min-(def+pi) out-node.
		if outDefArg >= 0 && t.bestPiIn < otUnreached {
			if val := t.defOff[outDefArg] + pi[outDefArg] + t.bestPiIn; val < bestVal || (val == bestVal && outDefArg < bestNode) {
				bestVal, bestNode, bestPar = val, outDefArg, t.bestPiInArg
			}
		}
		// Candidate 4: forbidden edge into the min-pi out-node. On the
		// heap path outPiArg is not maintained (its sorted order was the
		// third per-iterate sort); the candidate costs at least
		// L + bestPiOut + minOutPi, which loses to bestVal on anything
		// but degenerate instances, so the exact receiver — the same
		// (pi, node)-minimum the order's head used to provide — is only
		// scanned for when the bound does not already decide.
		if t.dense {
			if outPiArg >= 0 && t.bestPiOut < otUnreached {
				if val := L + t.bestPiOut + pi[outPiArg]; val < bestVal || (val == bestVal && outPiArg < bestNode) {
					bestVal, bestNode, bestPar = val, outPiArg, t.bestPiOutArg
				}
			}
		} else if t.bestPiOut < otUnreached {
			if lb := L + t.bestPiOut + t.minOutPi; lb <= bestVal {
				for x := 1; x < N; x += 2 {
					if !t.inTree[x] && (outPiArg < 0 || pi[x] < pi[outPiArg]) {
						outPiArg = x
					}
				}
				if outPiArg >= 0 {
					if val := L + t.bestPiOut + pi[outPiArg]; val < bestVal || (val == bestVal && outPiArg < bestNode) {
						bestVal, bestNode, bestPar = val, outPiArg, t.bestPiOutArg
					}
				}
			}
		}
		if bestNode < 0 {
			break
		}
		total += bestVal
		t.deg[bestNode]++
		t.deg[bestPar]++
		t.join(bestNode)
		// A locked offer recorded by that join is strictly below every
		// candidate the next selection could see (see fuseG), so the
		// true loop would select it next with no tie to break — join the
		// partner now and skip the whole selection pass. The joined
		// partner is an in- or out-node whose own partner is in the
		// tree, so the fused join cannot record another fusion.
		if w := t.fused; w >= 0 && count < N-2 {
			t.fused = -1
			count++
			total += t.key[w]
			t.deg[w]++
			t.deg[t.par[w]]++
			t.join(w)
		}
	}

	// Two cheapest edges incident to node 0 (in_0), at true costs.
	best1, best2 := otUnreached, otUnreached
	arg1, arg2 := -1, -1
	for b := 1; b < N; b++ {
		var c float64
		switch {
		case b == 1:
			c = -L // locked partner out_0
		case b&1 == 1:
			c = float64(t.sp.At(b/2, 0)) // directed edge out_i -> in_0
		default:
			c = L // forbidden in/in edge
		}
		d := c + pi[0] + pi[b]
		switch {
		case d < best1:
			best2, arg2 = best1, arg1
			best1, arg1 = d, b
		case d < best2:
			best2, arg2 = d, b
		}
	}
	total += best1 + best2
	t.deg[0] += 2
	t.deg[arg1]++
	t.deg[arg2]++
	return total
}
