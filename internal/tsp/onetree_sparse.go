package tsp

import (
	"container/heap"
	"math"
	"sort"
)

// sparseOneTree computes minimum 1-trees of the 2-city symmetric
// transformation of a sparse DTSP instance without materializing the
// 2n×2n matrix (compare Sym.Matrix, which HeldKarpDirectedDense feeds to
// the dense Prim in oneTree).
//
// The symmetric instance over N = 2n nodes (in_i = 2i, out_i = 2i+1) has
// three edge classes: locked intra-city edges at -L, directed edges
// {out_i, in_j} at c(i->j), and forbidden same-side edges at L, where
// L = Forbid(). A dense Prim is Θ(N²) per subgradient iteration. Here
// each iteration is O(E + N log N) by splitting the offers to a non-tree
// node into:
//
//   - explicit offers (locked partners and exception edges cheaper than
//     their row default), kept in a lazy-deletion heap;
//   - a default channel: every tree out-node offers def(i)+pi to every
//     in-node, so the best such offer is a single scalar, and the best
//     receiver is the non-tree in-node with minimum pi (a static order
//     per iteration, since pi is fixed while the 1-tree is built);
//   - mirrored channels for default edges into out-nodes and for
//     forbidden same-side edges.
//
// Exception edges costlier than their row default are capped at the
// default (equivalently: the default edge of the same pair is kept as a
// parallel edge). Every edge weight used is <= the true symmetric cost,
// so the resulting value is a minimum 1-tree of a relaxed instance and
// remains a valid Held-Karp lower bound after the Lagrangian correction;
// it can only be (marginally) looser than the dense reference, never
// wrong. On branch-alignment instances the cap affects only conditional
// taken-targets costlier than full displacement.
type sparseOneTree struct {
	sp *SparseMatrix
	n  int // directed cities
	N  int // symmetric nodes
	L  Cost

	// Column-major view of the exceptions (built once; pi-independent).
	colStart []int
	colRows  []int
	colVals  []Cost

	pi  []float64
	deg []int

	inTree []bool
	key    []float64 // best explicit offer per node
	par    []int     // parent achieving key (or channel parent)
	h      offerHeap

	inByPi     []int // in-nodes (excluding node 0) by (pi, node)
	outByDefPi []int // out-nodes by (def+pi, node)
	outByPi    []int // out-nodes by (pi, node)
}

type offer struct {
	val  float64
	node int
	par  int
}

type offerHeap []offer

func (h offerHeap) Len() int { return len(h) }
func (h offerHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val < h[j].val
	}
	return h[i].node < h[j].node
}
func (h offerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *offerHeap) Push(x interface{}) { *h = append(*h, x.(offer)) }
func (h *offerHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func newSparseOneTree(sp *SparseMatrix) *sparseOneTree {
	n := sp.Len()
	N := 2 * n
	t := &sparseOneTree{
		sp:         sp,
		n:          n,
		N:          N,
		L:          sp.Forbid(),
		pi:         make([]float64, N),
		deg:        make([]int, N),
		inTree:     make([]bool, N),
		key:        make([]float64, N),
		par:        make([]int, N),
		inByPi:     make([]int, 0, n-1),
		outByDefPi: make([]int, 0, n),
		outByPi:    make([]int, 0, n),
	}
	// Transpose the exception structure once.
	t.colStart = make([]int, n+1)
	for _, c := range sp.cols {
		t.colStart[c+1]++
	}
	for j := 0; j < n; j++ {
		t.colStart[j+1] += t.colStart[j]
	}
	t.colRows = make([]int, len(sp.cols))
	t.colVals = make([]Cost, len(sp.cols))
	fill := append([]int(nil), t.colStart[:n]...)
	for i := 0; i < n; i++ {
		cols, vals := sp.Row(i)
		for k, c := range cols {
			t.colRows[fill[c]] = i
			t.colVals[fill[c]] = vals[k]
			fill[c]++
		}
	}
	return t
}

const otUnreached = math.MaxFloat64

// run builds the minimum 1-tree under the current pi, fills deg, and
// returns the reduced-cost weight (the same quantity oneTree returns).
func (t *sparseOneTree) run() float64 {
	n, N := t.n, t.N
	pi := t.pi
	for i := range t.deg {
		t.deg[i] = 0
		t.inTree[i] = false
		t.key[i] = otUnreached
		t.par[i] = -1
	}
	t.h = t.h[:0]

	// Static per-iteration selection orders.
	t.inByPi = t.inByPi[:0]
	t.outByDefPi = t.outByDefPi[:0]
	t.outByPi = t.outByPi[:0]
	for j := 1; j < n; j++ {
		t.inByPi = append(t.inByPi, 2*j)
	}
	for i := 0; i < n; i++ {
		t.outByDefPi = append(t.outByDefPi, 2*i+1)
		t.outByPi = append(t.outByPi, 2*i+1)
	}
	sort.Slice(t.inByPi, func(a, b int) bool {
		x, y := t.inByPi[a], t.inByPi[b]
		if pi[x] != pi[y] {
			return pi[x] < pi[y]
		}
		return x < y
	})
	defPi := func(out int) float64 { return float64(t.sp.RowDefault(out/2)) + pi[out] }
	sort.Slice(t.outByDefPi, func(a, b int) bool {
		x, y := t.outByDefPi[a], t.outByDefPi[b]
		if defPi(x) != defPi(y) {
			return defPi(x) < defPi(y)
		}
		return x < y
	})
	sort.Slice(t.outByPi, func(a, b int) bool {
		x, y := t.outByPi[a], t.outByPi[b]
		if pi[x] != pi[y] {
			return pi[x] < pi[y]
		}
		return x < y
	})
	inHead, outDefHead, outPiHead := 0, 0, 0

	// Scalar state: best tree-side endpoints for the channel offers.
	bestDefOut, bestDefOutArg := otUnreached, -1 // min def(i)+pi over tree out-nodes
	bestPiIn, bestPiInArg := otUnreached, -1     // min pi over tree in-nodes
	bestPiOut, bestPiOutArg := otUnreached, -1   // min pi over tree out-nodes
	L := float64(t.L)

	improve := func(node int, val float64, par int) {
		if val < t.key[node] {
			t.key[node] = val
			t.par[node] = par
			heap.Push(&t.h, offer{val, node, par})
		}
	}
	join := func(v int) {
		t.inTree[v] = true
		if w := v ^ 1; w != 0 && !t.inTree[w] {
			improve(w, -L+pi[v]+pi[w], v)
		}
		if v&1 == 1 { // out-node of city i
			i := v / 2
			if d := defPi(v); d < bestDefOut {
				bestDefOut, bestDefOutArg = d, v
			}
			if pi[v] < bestPiOut {
				bestPiOut, bestPiOutArg = pi[v], v
			}
			def := float64(t.sp.RowDefault(i))
			cols, vals := t.sp.Row(i)
			for k, j := range cols {
				if c := float64(vals[k]); c < def {
					if u := 2 * j; u != 0 && !t.inTree[u] {
						improve(u, c+pi[v]+pi[u], v)
					}
				}
			}
		} else { // in-node of city j
			j := v / 2
			if pi[v] < bestPiIn {
				bestPiIn, bestPiInArg = pi[v], v
			}
			for k := t.colStart[j]; k < t.colStart[j+1]; k++ {
				i := t.colRows[k]
				if c := float64(t.colVals[k]); c < float64(t.sp.RowDefault(i)) {
					if u := 2*i + 1; !t.inTree[u] {
						improve(u, c+pi[v]+pi[u], v)
					}
				}
			}
		}
	}

	total := 0.0
	join(1) // Prim starts at out_0, as the dense oneTree starts at node 1
	for count := 1; count < N-1; count++ {
		// Candidate 1: best explicit offer (lazy-deletion heap).
		var bestVal = otUnreached
		var bestNode, bestPar = -1, -1
		for len(t.h) > 0 {
			top := t.h[0]
			if t.inTree[top.node] || top.val > t.key[top.node] {
				heap.Pop(&t.h)
				continue
			}
			bestVal, bestNode, bestPar = top.val, top.node, top.par
			break
		}
		// Candidate 2: default/forbidden edge into the min-pi in-node.
		for inHead < len(t.inByPi) && t.inTree[t.inByPi[inHead]] {
			inHead++
		}
		if inHead < len(t.inByPi) {
			v := t.inByPi[inHead]
			ch, par := bestDefOut, bestDefOutArg
			if fb := L + bestPiIn; fb < ch {
				ch, par = fb, bestPiInArg
			}
			if ch < otUnreached {
				if val := ch + pi[v]; val < bestVal || (val == bestVal && v < bestNode) {
					bestVal, bestNode, bestPar = val, v, par
				}
			}
		}
		// Candidate 3: default edge into the min-(def+pi) out-node.
		for outDefHead < len(t.outByDefPi) && t.inTree[t.outByDefPi[outDefHead]] {
			outDefHead++
		}
		if outDefHead < len(t.outByDefPi) && bestPiIn < otUnreached {
			v := t.outByDefPi[outDefHead]
			if val := defPi(v) + bestPiIn; val < bestVal || (val == bestVal && v < bestNode) {
				bestVal, bestNode, bestPar = val, v, bestPiInArg
			}
		}
		// Candidate 4: forbidden edge into the min-pi out-node.
		for outPiHead < len(t.outByPi) && t.inTree[t.outByPi[outPiHead]] {
			outPiHead++
		}
		if outPiHead < len(t.outByPi) && bestPiOut < otUnreached {
			v := t.outByPi[outPiHead]
			if val := L + bestPiOut + pi[v]; val < bestVal || (val == bestVal && v < bestNode) {
				bestVal, bestNode, bestPar = val, v, bestPiOutArg
			}
		}
		if bestNode < 0 {
			break
		}
		total += bestVal
		t.deg[bestNode]++
		t.deg[bestPar]++
		join(bestNode)
	}

	// Two cheapest edges incident to node 0 (in_0), at true costs.
	best1, best2 := otUnreached, otUnreached
	arg1, arg2 := -1, -1
	for b := 1; b < N; b++ {
		var c float64
		switch {
		case b == 1:
			c = -L // locked partner out_0
		case b&1 == 1:
			c = float64(t.sp.At(b/2, 0)) // directed edge out_i -> in_0
		default:
			c = L // forbidden in/in edge
		}
		d := c + pi[0] + pi[b]
		switch {
		case d < best1:
			best2, arg2 = best1, arg1
			best1, arg1 = d, b
		case d < best2:
			best2, arg2 = d, b
		}
	}
	total += best1 + best2
	t.deg[0] += 2
	t.deg[arg1]++
	t.deg[arg2]++
	return total
}
