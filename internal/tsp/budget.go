package tsp

import (
	"context"
	"time"
)

// Budget bounds the work a single solver call may perform. The solver is
// anytime: iterated 3-opt always holds a valid best-so-far tour and the
// Held-Karp ascent always holds a valid lower bound, so exhausting a
// budget never produces an invalid result — the call returns what it has,
// flagged Truncated. The zero Budget is unlimited.
//
// Budgets compose with context cancellation (SolveOptions.Context /
// HeldKarpOptions.Context): whichever signal fires first stops the solve
// at the next kick or subgradient-iterate boundary.
type Budget struct {
	// Deadline is an absolute wall-clock cutoff. Zero means none.
	Deadline time.Time
	// MaxKicks caps the total double-bridge kick rounds across all
	// local-search runs of one Solve call. 0 means unlimited.
	MaxKicks int64
	// MaxHKIterations caps the subgradient iterates of one Held-Karp
	// bound computation. 0 means unlimited (the iteration schedule of
	// HeldKarpOptions still applies).
	MaxHKIterations int
}

// IsZero reports whether the budget imposes no limit.
func (b Budget) IsZero() bool {
	return b.Deadline.IsZero() && b.MaxKicks == 0 && b.MaxHKIterations == 0
}

// cancelCheck is the shared boundary test for cancellation signals. It is
// deliberately side-effect-free with respect to the solver state: checking
// never touches the random stream, so an uncancelled solve is bit-identical
// to one run without any context or deadline.
type cancelCheck struct {
	ctx      context.Context
	deadline time.Time
}

func newCancelCheck(ctx context.Context, b Budget) cancelCheck {
	return cancelCheck{ctx: ctx, deadline: b.Deadline}
}

// cancelled reports whether the context is done or the deadline has
// passed. The zero cancelCheck is never cancelled.
func (c *cancelCheck) cancelled() bool {
	if c.ctx != nil {
		select {
		case <-c.ctx.Done():
			return true
		default:
		}
	}
	return !c.deadline.IsZero() && time.Now().After(c.deadline)
}

// solveBudget tracks budget consumption across the runs of one Solve
// call. allow is evaluated at every kick boundary and before each
// local-search run; once it trips, it latches and the solve unwinds with
// its best-so-far result.
type solveBudget struct {
	check     cancelCheck
	maxKicks  int64
	kicks     int64
	truncated bool
}

// spend records one consumed kick. Nil-safe, like allow.
func (b *solveBudget) spend() {
	if b != nil {
		b.kicks++
	}
}

// allow reports whether the next unit of work (a kick, or a whole run)
// may start. The call order matters for exactness of the Truncated flag:
// allow is only consulted when more work is actually planned, so a solve
// that finishes precisely at its budget is not marked truncated.
func (b *solveBudget) allow() bool {
	if b == nil {
		return true
	}
	if b.truncated {
		return false
	}
	if b.maxKicks > 0 && b.kicks >= b.maxKicks {
		b.truncated = true
		return false
	}
	if b.check.cancelled() {
		b.truncated = true
		return false
	}
	return true
}
