package tsp

import (
	"context"
	"sync/atomic"
	"time"
)

// Budget bounds the work a single solver call may perform. The solver is
// anytime: iterated 3-opt always holds a valid best-so-far tour and the
// Held-Karp ascent always holds a valid lower bound, so exhausting a
// budget never produces an invalid result — the call returns what it has,
// flagged Truncated. The zero Budget is unlimited.
//
// Budgets compose with context cancellation (SolveOptions.Context /
// HeldKarpOptions.Context): whichever signal fires first stops the solve
// at the next kick or subgradient-iterate boundary.
type Budget struct {
	// Deadline is an absolute wall-clock cutoff. Zero means none.
	Deadline time.Time
	// MaxKicks caps the total double-bridge kick rounds across all
	// local-search runs of one Solve call. 0 means unlimited.
	MaxKicks int64
	// MaxHKIterations caps the subgradient iterates of one Held-Karp
	// bound computation. 0 means unlimited (the iteration schedule of
	// HeldKarpOptions still applies).
	MaxHKIterations int
}

// IsZero reports whether the budget imposes no limit.
func (b Budget) IsZero() bool {
	return b.Deadline.IsZero() && b.MaxKicks == 0 && b.MaxHKIterations == 0
}

// cancelCheck is the shared boundary test for cancellation signals. It is
// deliberately side-effect-free with respect to the solver state: checking
// never touches the random stream, so an uncancelled solve is bit-identical
// to one run without any context or deadline.
type cancelCheck struct {
	ctx      context.Context
	deadline time.Time
}

func newCancelCheck(ctx context.Context, b Budget) cancelCheck {
	return cancelCheck{ctx: ctx, deadline: b.Deadline}
}

// cancelled reports whether the context is done or the deadline has
// passed. The zero cancelCheck is never cancelled.
func (c *cancelCheck) cancelled() bool {
	if c.ctx != nil {
		select {
		case <-c.ctx.Done():
			return true
		default:
		}
	}
	//balignlint:ignore wall-clock deadlines are opt-in nondeterminism; reproducible runs budget by MaxKicks/MaxHKIterations
	return !c.deadline.IsZero() && time.Now().After(c.deadline)
}

// solveBudget is the budget state shared by the (possibly concurrent)
// local-search runs of one Solve call: the total kick count and the
// latched cancellation observation are plain atomics, safe from any run
// goroutine.
//
// Deliberately NOT shared: the MaxKicks allowance. A shared "first come,
// first served" kick counter would hand out the budget in goroutine
// scheduling order, making results depend on the schedule. Instead Solve
// precomputes each run's kick quota from (MaxKicks, iterations per run,
// run index) — exactly the kicks that run would have been allowed
// sequentially — so budget exhaustion is schedule-independent; see
// runBudget and the run-plan partition in Solve.
type solveBudget struct {
	check     cancelCheck
	kicks     atomic.Int64
	cancelled atomic.Bool
}

// cancelledNow reports (and latches) whether the solve's context or
// deadline has fired. The latch makes later checks cheap and gives Solve
// a single flag for the Truncated result bit. Time-based cancellation is
// inherently schedule-dependent under parallelism; only the MaxKicks
// path carries the determinism guarantee.
func (b *solveBudget) cancelledNow() bool {
	if b.cancelled.Load() {
		return true
	}
	if b.check.cancelled() {
		b.cancelled.Store(true)
		return true
	}
	return false
}

// runBudget is one run's slice of the solve budget: a deterministic kick
// quota (quota < 0 means unlimited) plus the shared cancellation check.
// It is owned by a single run goroutine; only sb is shared.
type runBudget struct {
	sb      *solveBudget
	quota   int64
	used    int64
	stopped bool
}

// spend records one consumed kick. Nil-safe, like allow.
func (rb *runBudget) spend() {
	if rb != nil {
		rb.used++
		rb.sb.kicks.Add(1)
	}
}

// allow reports whether the next kick may start. The call order matters
// for exactness of the Truncated flag: allow is only consulted when more
// work is actually planned, so a run that finishes precisely at its
// quota does not observe exhaustion here (Solve derives the Truncated
// bit from the plan partition instead).
func (rb *runBudget) allow() bool {
	if rb == nil {
		return true
	}
	if rb.stopped {
		return false
	}
	if rb.quota >= 0 && rb.used >= rb.quota {
		rb.stopped = true
		return false
	}
	if rb.sb.cancelledNow() {
		rb.stopped = true
		return false
	}
	return true
}
