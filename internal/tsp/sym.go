package tsp

import "fmt"

// Sym is the standard 2-city transformation of an asymmetric TSP instance
// into a symmetric one ("our DTSP to STSP transformation replaces each
// city by a pair of cities, with the edge between them locked into the
// tour"). City i of the directed instance becomes an in-node 2i and an
// out-node 2i+1:
//
//   - {in_i, out_i} costs 0 and is locked into every tour,
//   - {out_i, in_j} (i != j) costs the directed cost c(i->j),
//   - every other pair (in/in or out/out) is forbidden.
//
// A symmetric tour containing all locked edges alternates in- and
// out-nodes and therefore spells out a directed Hamiltonian cycle of equal
// cost. The production solver in this package (ThreeOpt) operates directly
// in directed space using exactly the move set that is feasible here;
// Sym exists to express the transformation explicitly, to verify that
// equivalence in tests, and to feed the Held-Karp bound, which the paper
// computes on the symmetrized instance.
type Sym struct {
	orig   Costs
	forbid Cost
}

// Symmetrize wraps m in its 2-city symmetric transformation.
func Symmetrize(m Costs) *Sym {
	return &Sym{orig: m, forbid: ForbidCost(m)}
}

// Len returns the number of cities of the symmetric instance (2x the
// directed instance).
func (s *Sym) Len() int { return 2 * s.orig.Len() }

// InNode returns the symmetric-instance node standing for "arriving at"
// directed city i.
func (s *Sym) InNode(i int) int { return 2 * i }

// OutNode returns the symmetric-instance node standing for "departing
// from" directed city i.
func (s *Sym) OutNode(i int) int { return 2*i + 1 }

// City returns the directed city represented by symmetric node a.
func (s *Sym) City(a int) int { return a / 2 }

// Locked reports whether {a, b} is a locked intra-city edge.
func (s *Sym) Locked(a, b int) bool {
	return a/2 == b/2 && a != b
}

// Cost returns the symmetric cost of edge {a, b}.
func (s *Sym) Cost(a, b int) Cost {
	if a == b {
		return 0
	}
	if a/2 == b/2 {
		return 0 // locked intra-city edge
	}
	aOut := a&1 == 1
	bOut := b&1 == 1
	switch {
	case aOut && !bOut:
		return s.orig.At(a/2, b/2)
	case !aOut && bOut:
		return s.orig.At(b/2, a/2)
	default:
		return s.forbid
	}
}

// LockCost returns the magnitude of the negative cost that Matrix places
// on locked intra-city edges. It is large enough that every optimal tour
// of the materialized matrix contains all n locked edges (assuming the
// original costs are non-negative): a tour missing k >= 1 locks pays at
// least LockCost more than any tour containing them all.
func (s *Sym) LockCost() Cost { return s.forbid }

// Matrix materializes the symmetric instance as a dense Matrix, for use
// by generic symmetric algorithms (the Held-Karp bound, exact solvers in
// tests) that do not understand structural locks. Locked intra-city edges
// are emitted with cost -LockCost so that unconstrained optimization is
// forced to include them; consequently
//
//	optimal tour cost of Matrix() = directed optimum - n*LockCost
//
// where n is the directed city count. Sym.Cost, by contrast, reports the
// constrained view in which locked edges cost 0, which is the view the
// structural lock-respecting solver (ThreeOpt on the directed instance)
// optimizes.
func (s *Sym) Matrix() *Matrix {
	n := s.Len()
	m := NewMatrix(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if s.Locked(a, b) {
				m.Set(a, b, -s.LockCost())
			} else {
				m.Set(a, b, s.Cost(a, b))
			}
		}
	}
	return m
}

// FromDirected embeds a directed tour into the symmetric space: city i is
// expanded to (in_i, out_i) in visit order.
func (s *Sym) FromDirected(t Tour) Tour {
	out := make(Tour, 0, 2*len(t))
	for _, c := range t {
		out = append(out, s.InNode(c), s.OutNode(c))
	}
	return out
}

// ToDirected converts a symmetric tour back to a directed tour. The tour
// must contain every locked edge (adjacent in/out nodes of the same city);
// otherwise an error is returned.
func (s *Sym) ToDirected(t Tour) (Tour, error) {
	n := s.Len()
	if !t.Valid(n) {
		return nil, fmt.Errorf("tsp: ToDirected: not a permutation of %d nodes", n)
	}
	if n == 0 {
		return Tour{}, nil
	}
	// A valid tour traverses every locked pair consistently: reading in one
	// direction, each in-node is immediately followed by its out-node.
	// Normalize orientation (reversing an undirected tour is free) so that
	// some in-node precedes its out-node, then read city pairs forward.
	k := -1
	for i := 0; i < n; i++ {
		if t[i]&1 == 0 && s.Locked(t[i], t[(i+1)%n]) {
			k = i
			break
		}
	}
	if k < 0 {
		rev := make(Tour, n)
		for i, v := range t {
			rev[n-1-i] = v
		}
		t = rev
		for i := 0; i < n; i++ {
			if t[i]&1 == 0 && s.Locked(t[i], t[(i+1)%n]) {
				k = i
				break
			}
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("tsp: ToDirected: tour contains no locked in/out pair")
	}
	dir := make(Tour, 0, n/2)
	for i := 0; i < n; i += 2 {
		a := t[(k+i)%n]
		b := t[(k+i+1)%n]
		if a&1 != 0 || !s.Locked(a, b) {
			return nil, fmt.Errorf("tsp: ToDirected: locked edge missing at tour offset %d", i)
		}
		dir = append(dir, a/2)
	}
	return dir, nil
}

// SymCycleCost returns the cost of a symmetric tour under s.
func SymCycleCost(s *Sym, t Tour) Cost {
	if len(t) == 0 {
		return 0
	}
	var sum Cost
	for k := 0; k < len(t); k++ {
		sum += s.Cost(t[k], t[(k+1)%len(t)])
	}
	return sum
}
