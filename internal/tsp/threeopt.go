package tsp

import "math/bits"

// ThreeOpt is a directed, reversal-free 3-opt local search.
//
// The paper solves the branch-alignment DTSP by transforming it to a
// symmetric TSP (each city i becomes an in-node and an out-node joined by
// a locked zero-cost edge; see Sym) and running iterated 3-Opt with the
// locks respected. On that transformed instance, 2-opt moves are never
// feasible (both reconnecting edges would join two in-nodes and two
// out-nodes), and the only feasible 3-opt moves are exactly the directed
// segment-exchange moves implemented here: remove three directed edges
// (a->b), (c->d), (e->f) that appear in this cyclic order and reconnect as
// (a->d), (e->b), (c->f), turning the cycle
//
//	a b..c d..e f..a   into   a d..e b..c f..a
//
// No segment is ever reversed, so arc costs never need to be re-read in
// the opposite direction. Working directly in the directed space is
// equivalent to, and considerably simpler than, manipulating the 2n-city
// symmetric tour; TestThreeOptMatchesSymmetricModel verifies the
// equivalence.
//
// The search uses sorted candidate neighbor lists and don't-look bits
// (Johnson-McGeoch style) and applies first-improvement moves. The tour
// lives in a two-level doubly-linked list (TwoLevel), so applying a move
// is an O(√n) splice instead of the Θ(n) array rebuild earlier versions
// paid — move application no longer dominates large solves. An optional
// second move family, Or-opt segment relocation (see oropt.go), shares
// the same queue and don't-look bits when enabled.
type ThreeOpt struct {
	m  Costs
	nb *Neighbors
	n  int
	tl *TwoLevel
	c  Cost

	// orOpt interleaves the Or-opt relocation family with the 3-opt
	// exchanges (see SetOrOpt). Off by default: plain NewThreeOpt +
	// Optimize is the pure 3-opt kernel, and the phase-1 equivalence
	// tests pin it bit-identical to the historical array kernel.
	orOpt bool

	dontLook []bool
	queue    []int
	inQueue  []bool

	stats MoveStats
}

// MoveStats aggregates solver-effort counters per move family. Tried
// counts candidate moves whose first reconnection edge was gain-tested;
// Accepted counts applied moves. Plain field increments (one predictable
// add each) keep the counters always-on without measurable inner-loop
// cost — see bench_obs_test.go.
type MoveStats struct {
	// Tried and Accepted count the 3-opt segment-exchange family.
	Tried, Accepted int64
	// OrTried and OrAccepted count the Or-opt relocation family.
	OrTried, OrAccepted int64
	// SpliceBuckets is a power-of-two histogram of applied splice lengths
	// (the number of cities in the relocated block): bucket i counts
	// moves with length in (2^(i-1), 2^i] (bucket 0: length 1).
	SpliceBuckets [32]int64
	// SpliceSum totals the splice lengths, so mean splice length stays
	// exact when the distribution is reported from the buckets.
	SpliceSum int64
}

// Sub returns the counter deltas s - t (for diffing snapshots around one
// local-search run; the solver reuses one ThreeOpt across runs).
func (s MoveStats) Sub(t MoveStats) MoveStats {
	s.Tried -= t.Tried
	s.Accepted -= t.Accepted
	s.OrTried -= t.OrTried
	s.OrAccepted -= t.OrAccepted
	for i := range s.SpliceBuckets {
		s.SpliceBuckets[i] -= t.SpliceBuckets[i]
	}
	s.SpliceSum -= t.SpliceSum
	return s
}

// TriedTotal returns candidate moves examined across all families.
func (s MoveStats) TriedTotal() int64 { return s.Tried + s.OrTried }

// AcceptedTotal returns moves applied across all families.
func (s MoveStats) AcceptedTotal() int64 { return s.Accepted + s.OrAccepted }

// recordSplice tallies one applied move of splice length l.
func (o *ThreeOpt) recordSplice(l int) {
	o.stats.SpliceBuckets[bits.Len(uint(l-1))]++
	o.stats.SpliceSum += int64(l)
}

// NewThreeOpt creates a local search over matrix m with candidate lists nb
// (pass nil to build default lists) starting from tour t. The tour is
// copied.
func NewThreeOpt(m Costs, nb *Neighbors, t Tour) *ThreeOpt {
	if nb == nil {
		nb = BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
	}
	n := m.Len()
	o := &ThreeOpt{
		m:        m,
		nb:       nb,
		n:        n,
		dontLook: make([]bool, n),
		inQueue:  make([]bool, n),
	}
	o.SetTour(t)
	return o
}

// SetOrOpt enables (or disables) the Or-opt relocation family inside
// Optimize. See oropt.go for the move set and gating policy.
func (o *ThreeOpt) SetOrOpt(on bool) { o.orOpt = on }

// SetTour replaces the current tour (copying it) and resets search state.
// The copy goes into the existing two-level structure, so after
// construction SetTour allocates nothing — the solver's kick loop resets
// the search once per kick.
func (o *ThreeOpt) SetTour(t Tour) {
	o.setTour(t, CycleCost(o.m, t))
}

// SetTourCost is SetTour for callers that already know the tour's cost —
// the kick loop derives the kicked cost from the double bridge's six-edge
// delta, skipping SetTour's O(n) cost rescan (n At calls, each a
// binary search on sparse instances).
func (o *ThreeOpt) SetTourCost(t Tour, c Cost) {
	o.setTour(t, c)
}

func (o *ThreeOpt) setTour(t Tour, c Cost) {
	if !t.Valid(o.n) {
		panic("tsp: ThreeOpt.SetTour: invalid tour")
	}
	if o.tl == nil {
		o.tl = NewTwoLevel(t)
	} else {
		o.tl.Init(t)
	}
	o.c = c
	o.queue = o.queue[:0]
	for i := 0; i < o.n; i++ {
		o.dontLook[i] = false
		o.inQueue[i] = true
		o.queue = append(o.queue, i)
	}
}

// Tour returns a copy of the current tour.
func (o *ThreeOpt) Tour() Tour { return o.tl.Tour() }

// AppendTour appends the current tour to dst[:0] and returns it,
// allocating nothing when dst has capacity n.
func (o *ThreeOpt) AppendTour(dst Tour) Tour { return o.tl.AppendTour(dst) }

// Cost returns the (incrementally maintained) cost of the current tour.
func (o *ThreeOpt) Cost() Cost { return o.c }

// Moves reports the cumulative number of candidate moves examined and
// moves applied across all move families since the ThreeOpt was created
// (across SetTour resets), the solver-effort telemetry behind the "moves
// tried vs accepted" counters. MoveStats breaks the totals down.
func (o *ThreeOpt) Moves() (tried, accepted int64) {
	return o.stats.TriedTotal(), o.stats.AcceptedTotal()
}

// MoveStats returns a snapshot of the cumulative per-family counters.
func (o *ThreeOpt) MoveStats() MoveStats { return o.stats }

// Optimize runs the search to a local optimum and returns the final cost.
// With Or-opt enabled the two families share one queue: a city is marked
// don't-look only when neither family improves from it, so the result is
// locally optimal under both.
func (o *ThreeOpt) Optimize() Cost {
	if o.n < 3 {
		return o.c
	}
	for len(o.queue) > 0 {
		a := o.queue[len(o.queue)-1]
		o.queue = o.queue[:len(o.queue)-1]
		o.inQueue[a] = false
		if o.dontLook[a] {
			continue
		}
		improved := o.improveFrom(a)
		if !improved && o.orOpt {
			improved = o.orOptFrom(a)
		}
		if !improved {
			o.dontLook[a] = true
		} else if !o.inQueue[a] {
			// Re-examine a after a successful move from it.
			o.inQueue[a] = true
			o.queue = append(o.queue, a)
		}
	}
	return o.c
}

// improveFrom searches for an improving segment-exchange move whose first
// removed edge is (a, succ(a)); it applies the first one found.
func (o *ThreeOpt) improveFrom(a int) bool {
	b := o.tl.Succ(a)
	gainBase := o.m.At(a, b)
	ra := o.tl.Rank(a)
	for _, d := range o.nb.Out[a] {
		o.stats.Tried++
		g1 := gainBase - o.m.At(a, d)
		if g1 <= 0 {
			break // neighbor lists are sorted by cost
		}
		npD := o.tl.NpFrom(ra, d)
		if npD < 1 || npD > o.n-2 {
			continue // d must lie strictly between b and a
		}
		c := o.tl.Pred(d)
		g2 := g1 + o.m.At(c, d)
		for _, e := range o.nb.In[b] {
			g3 := g2 - o.m.At(e, b)
			if g3 <= 0 {
				break
			}
			npE := o.tl.NpFrom(ra, e)
			if npE < npD || npE > o.n-2 {
				continue // e must lie in segment d..pred(a)
			}
			f := o.tl.Succ(e)
			total := g3 + o.m.At(e, f) - o.m.At(c, f)
			if total <= 0 {
				continue
			}
			o.tl.Splice(a, d, e)
			o.c -= total
			o.stats.Accepted++
			o.recordSplice(npE - npD + 1)
			o.wake(a, b, c, d, e, f)
			return true
		}
	}
	return false
}

// wake clears don't-look bits for the endpoints touched by a move.
func (o *ThreeOpt) wake(cities ...int) {
	for _, c := range cities {
		o.dontLook[c] = false
		if !o.inQueue[c] {
			o.inQueue[c] = true
			o.queue = append(o.queue, c)
		}
	}
}
