package tsp

// ThreeOpt is a directed, reversal-free 3-opt local search.
//
// The paper solves the branch-alignment DTSP by transforming it to a
// symmetric TSP (each city i becomes an in-node and an out-node joined by
// a locked zero-cost edge; see Sym) and running iterated 3-Opt with the
// locks respected. On that transformed instance, 2-opt moves are never
// feasible (both reconnecting edges would join two in-nodes and two
// out-nodes), and the only feasible 3-opt moves are exactly the directed
// segment-exchange moves implemented here: remove three directed edges
// (a->b), (c->d), (e->f) that appear in this cyclic order and reconnect as
// (a->d), (e->b), (c->f), turning the cycle
//
//	a b..c d..e f..a   into   a d..e b..c f..a
//
// No segment is ever reversed, so arc costs never need to be re-read in
// the opposite direction. Working directly in the directed space is
// equivalent to, and considerably simpler than, manipulating the 2n-city
// symmetric tour; TestThreeOptMatchesSymmetricModel verifies the
// equivalence.
//
// The search uses sorted candidate neighbor lists and don't-look bits
// (Johnson-McGeoch style) and applies first-improvement moves.
type ThreeOpt struct {
	m   Costs
	nb  *Neighbors
	n   int
	t   Tour
	pos []int
	c   Cost

	dontLook []bool
	queue    []int
	inQueue  []bool
	scratch  []int

	// tried counts candidate moves whose first reconnection edge was
	// gain-tested; accepted counts applied moves. Plain increments (one
	// predictable add each) keep the counters always-on without
	// measurable inner-loop cost — see bench_obs_test.go.
	tried    int64
	accepted int64
}

// NewThreeOpt creates a local search over matrix m with candidate lists nb
// (pass nil to build default lists) starting from tour t. The tour is
// copied.
func NewThreeOpt(m Costs, nb *Neighbors, t Tour) *ThreeOpt {
	if nb == nil {
		nb = BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
	}
	n := m.Len()
	o := &ThreeOpt{
		m:        m,
		nb:       nb,
		n:        n,
		pos:      make([]int, n),
		dontLook: make([]bool, n),
		inQueue:  make([]bool, n),
		scratch:  make([]int, n),
	}
	o.SetTour(t)
	return o
}

// SetTour replaces the current tour (copying it) and resets search state.
// The copy goes into the existing tour buffer, so after construction
// SetTour allocates nothing — the solver's kick loop resets the search
// once per kick.
func (o *ThreeOpt) SetTour(t Tour) {
	if !t.Valid(o.n) {
		panic("tsp: ThreeOpt.SetTour: invalid tour")
	}
	if len(o.t) == o.n {
		copy(o.t, t)
	} else {
		o.t = t.Clone()
	}
	for i, city := range o.t {
		o.pos[city] = i
	}
	o.c = CycleCost(o.m, o.t)
	o.queue = o.queue[:0]
	for i := 0; i < o.n; i++ {
		o.dontLook[i] = false
		o.inQueue[i] = true
		o.queue = append(o.queue, i)
	}
}

// Tour returns a copy of the current tour.
func (o *ThreeOpt) Tour() Tour { return o.t.Clone() }

// Cost returns the (incrementally maintained) cost of the current tour.
func (o *ThreeOpt) Cost() Cost { return o.c }

// Moves reports the cumulative number of candidate moves examined and
// moves applied since the ThreeOpt was created (across SetTour resets),
// the solver-effort telemetry behind the "moves tried vs accepted"
// counters.
func (o *ThreeOpt) Moves() (tried, accepted int64) { return o.tried, o.accepted }

func (o *ThreeOpt) succ(x int) int { return o.t[(o.pos[x]+1)%o.n] }
func (o *ThreeOpt) pred(x int) int { return o.t[(o.pos[x]-1+o.n)%o.n] }

// np returns the position of x relative to (and excluding) anchor a:
// np(succ(a)) == 0, np(pred(a)) == n-2, np(a) == n-1.
func (o *ThreeOpt) np(a, x int) int {
	return (o.pos[x] - o.pos[a] - 1 + o.n) % o.n
}

// Optimize runs the search to a local optimum and returns the final cost.
func (o *ThreeOpt) Optimize() Cost {
	if o.n < 3 {
		return o.c
	}
	for len(o.queue) > 0 {
		a := o.queue[len(o.queue)-1]
		o.queue = o.queue[:len(o.queue)-1]
		o.inQueue[a] = false
		if o.dontLook[a] {
			continue
		}
		if !o.improveFrom(a) {
			o.dontLook[a] = true
		} else if !o.inQueue[a] {
			// Re-examine a after a successful move from it.
			o.inQueue[a] = true
			o.queue = append(o.queue, a)
		}
	}
	return o.c
}

// improveFrom searches for an improving segment-exchange move whose first
// removed edge is (a, succ(a)); it applies the first one found.
func (o *ThreeOpt) improveFrom(a int) bool {
	b := o.succ(a)
	gainBase := o.m.At(a, b)
	for _, d := range o.nb.Out[a] {
		o.tried++
		g1 := gainBase - o.m.At(a, d)
		if g1 <= 0 {
			break // neighbor lists are sorted by cost
		}
		npD := o.np(a, d)
		if npD < 1 || npD > o.n-2 {
			continue // d must lie strictly between b and a
		}
		c := o.pred(d)
		g2 := g1 + o.m.At(c, d)
		for _, e := range o.nb.In[b] {
			g3 := g2 - o.m.At(e, b)
			if g3 <= 0 {
				break
			}
			npE := o.np(a, e)
			if npE < npD || npE > o.n-2 {
				continue // e must lie in segment d..pred(a)
			}
			f := o.succ(e)
			total := g3 + o.m.At(e, f) - o.m.At(c, f)
			if total <= 0 {
				continue
			}
			o.apply(a, npD, npE, total)
			o.wake(a, b, c, d, e, f)
			return true
		}
	}
	return false
}

// apply performs the segment exchange anchored at a with the second
// segment spanning relative positions [npD, npE], and decreases the cached
// cost by gain.
func (o *ThreeOpt) apply(a, npD, npE int, gain Cost) {
	pa := o.pos[a]
	n := o.n
	k := 0
	o.scratch[k] = a
	k++
	for i := npD; i <= npE; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	for i := 0; i < npD; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	for i := npE + 1; i <= n-2; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	copy(o.t, o.scratch[:n])
	for i, city := range o.t {
		o.pos[city] = i
	}
	o.c -= gain
	o.accepted++
}

// wake clears don't-look bits for the endpoints touched by a move.
func (o *ThreeOpt) wake(cities ...int) {
	for _, c := range cities {
		o.dontLook[c] = false
		if !o.inQueue[c] {
			o.inQueue[c] = true
			o.queue = append(o.queue, c)
		}
	}
}
