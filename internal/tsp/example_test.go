package tsp_test

import (
	"fmt"

	"branchalign/internal/tsp"
)

// ExampleSolve finds the optimal directed tour of a small instance with
// the paper's multi-start iterated 3-opt protocol (small instances are
// solved exactly by dynamic programming).
func ExampleSolve() {
	// A cheap directed ring 0->1->2->3->0 hidden in an expensive clique.
	m := tsp.NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	for i := 0; i < 4; i++ {
		m.Set(i, (i+1)%4, 1)
	}
	res := tsp.Solve(m, tsp.PaperSolveOptions(1))
	res.Tour.RotateTo(0)
	fmt.Println(res.Tour, res.Cost, res.Exact)
	// Output: [0 1 2 3] 4 true
}

// ExampleHeldKarpDirected bounds a directed instance from below; on this
// ring the bound is tight.
func ExampleHeldKarpDirected() {
	m := tsp.NewMatrix(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				m.Set(i, j, 50)
			}
		}
	}
	for i := 0; i < 5; i++ {
		m.Set(i, (i+1)%5, 2)
	}
	bound := tsp.HeldKarpDirected(m, tsp.HeldKarpOptions{UpperBound: 10})
	fmt.Printf("%.0f\n", bound)
	// Output: 10
}

// ExampleAssignmentBound shows the appendix's failure mode for
// AP-based bounds: two cheap disjoint loops make the cycle-cover bound
// far below any tour.
func ExampleAssignmentBound() {
	m := tsp.NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(2, 3, 1)
	m.Set(3, 2, 1)
	_, opt := tsp.SolveExact(m)
	fmt.Println(tsp.AssignmentBound(m), opt)
	// Output: 4 202
}

// ExampleSymmetrize demonstrates the 2-city transformation the paper
// uses: a directed tour embeds at equal cost.
func ExampleSymmetrize() {
	m := tsp.FromRows([][]tsp.Cost{
		{0, 1, 7},
		{7, 0, 2},
		{3, 7, 0},
	})
	s := tsp.Symmetrize(m)
	dir := tsp.Tour{0, 1, 2}
	emb := s.FromDirected(dir)
	fmt.Println(tsp.CycleCost(m, dir), tsp.SymCycleCost(s, emb))
	// Output: 6 6
}
