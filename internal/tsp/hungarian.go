package tsp

// AssignmentBound computes the assignment-problem (AP) lower bound on the
// optimal directed tour: the minimum cost of a permutation sigma with
// sigma(i) != i, i.e. the cheapest collection of disjoint directed cycles
// covering all cities. Every Hamiltonian cycle is such a cover, so
// AP <= DTSP optimum. The paper's appendix uses this bound to show that
// patching-based DTSP codes are a poor fit for branch-alignment instances
// (the AP bound is frequently far below the optimal tour).
//
// The implementation is the standard O(n^3) Hungarian algorithm with
// potentials and shortest augmenting paths.
func AssignmentBound(m Costs) Cost {
	sigma := AssignmentSolve(m)
	var total Cost
	for i, j := range sigma {
		total += m.At(i, j)
	}
	return total
}

// AssignmentSolve returns the minimizing permutation sigma (sigma[i] is
// the city assigned to follow city i) with self-assignments forbidden.
func AssignmentSolve(m Costs) []int {
	n := m.Len()
	if n == 1 {
		return []int{0}
	}
	const inf = Cost(1) << 62
	cost := func(i, j int) Cost {
		if i == j {
			return inf / 4 // forbid self-loops without overflowing sums
		}
		return m.At(i, j)
	}
	// 1-based arrays as in the classical formulation.
	u := make([]Cost, n+1)
	v := make([]Cost, n+1)
	p := make([]int, n+1)   // p[j]: row matched to column j (0 = none)
	way := make([]int, n+1) // way[j]: previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]Cost, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	sigma := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			sigma[p[j]-1] = j - 1
		}
	}
	return sigma
}
