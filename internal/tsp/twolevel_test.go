package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// This file pins the phase-1 contract of the two-level tour kernel: the
// TwoLevel-based ThreeOpt is a pure data-structure swap, bit-identical to
// the array kernel it replaced — same move sequence, same counters, same
// materialized tours (including rotation), same costs. arrayThreeOpt
// below is a frozen copy of that historical kernel (threeopt.go at the
// pre-two-level commit), kept as the executable specification.

// arrayThreeOpt is the historical array-tour 3-opt kernel: tour + position
// index, Θ(n) rebuild per applied move. Search logic is line-for-line the
// one in improveFrom; only the tour representation differs.
type arrayThreeOpt struct {
	m   Costs
	nb  *Neighbors
	n   int
	t   Tour
	pos []int
	c   Cost

	dontLook []bool
	queue    []int
	inQueue  []bool
	scratch  []int

	tried    int64
	accepted int64
}

func newArrayThreeOpt(m Costs, nb *Neighbors, t Tour) *arrayThreeOpt {
	if nb == nil {
		nb = BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
	}
	n := m.Len()
	o := &arrayThreeOpt{
		m:        m,
		nb:       nb,
		n:        n,
		pos:      make([]int, n),
		dontLook: make([]bool, n),
		inQueue:  make([]bool, n),
		scratch:  make([]int, n),
	}
	o.SetTour(t)
	return o
}

func (o *arrayThreeOpt) SetTour(t Tour) {
	if len(o.t) == o.n {
		copy(o.t, t)
	} else {
		o.t = t.Clone()
	}
	for i, city := range o.t {
		o.pos[city] = i
	}
	o.c = CycleCost(o.m, o.t)
	o.queue = o.queue[:0]
	for i := 0; i < o.n; i++ {
		o.dontLook[i] = false
		o.inQueue[i] = true
		o.queue = append(o.queue, i)
	}
}

func (o *arrayThreeOpt) Tour() Tour { return o.t.Clone() }
func (o *arrayThreeOpt) Cost() Cost { return o.c }

func (o *arrayThreeOpt) Moves() (tried, accepted int64) { return o.tried, o.accepted }

func (o *arrayThreeOpt) succ(x int) int { return o.t[(o.pos[x]+1)%o.n] }
func (o *arrayThreeOpt) pred(x int) int { return o.t[(o.pos[x]-1+o.n)%o.n] }

func (o *arrayThreeOpt) np(a, x int) int {
	return (o.pos[x] - o.pos[a] - 1 + o.n) % o.n
}

func (o *arrayThreeOpt) Optimize() Cost {
	if o.n < 3 {
		return o.c
	}
	for len(o.queue) > 0 {
		a := o.queue[len(o.queue)-1]
		o.queue = o.queue[:len(o.queue)-1]
		o.inQueue[a] = false
		if o.dontLook[a] {
			continue
		}
		if !o.improveFrom(a) {
			o.dontLook[a] = true
		} else if !o.inQueue[a] {
			o.inQueue[a] = true
			o.queue = append(o.queue, a)
		}
	}
	return o.c
}

func (o *arrayThreeOpt) improveFrom(a int) bool {
	b := o.succ(a)
	gainBase := o.m.At(a, b)
	for _, d := range o.nb.Out[a] {
		o.tried++
		g1 := gainBase - o.m.At(a, d)
		if g1 <= 0 {
			break
		}
		npD := o.np(a, d)
		if npD < 1 || npD > o.n-2 {
			continue
		}
		c := o.pred(d)
		g2 := g1 + o.m.At(c, d)
		for _, e := range o.nb.In[b] {
			g3 := g2 - o.m.At(e, b)
			if g3 <= 0 {
				break
			}
			npE := o.np(a, e)
			if npE < npD || npE > o.n-2 {
				continue
			}
			f := o.succ(e)
			total := g3 + o.m.At(e, f) - o.m.At(c, f)
			if total <= 0 {
				continue
			}
			o.apply(a, npD, npE, total)
			o.wake(a, b, c, d, e, f)
			return true
		}
	}
	return false
}

func (o *arrayThreeOpt) apply(a, npD, npE int, gain Cost) {
	pa := o.pos[a]
	n := o.n
	k := 0
	o.scratch[k] = a
	k++
	for i := npD; i <= npE; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	for i := 0; i < npD; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	for i := npE + 1; i <= n-2; i++ {
		o.scratch[k] = o.t[(pa+1+i)%n]
		k++
	}
	copy(o.t, o.scratch[:n])
	for i, city := range o.t {
		o.pos[city] = i
	}
	o.c -= gain
	o.accepted++
}

func (o *arrayThreeOpt) wake(cities ...int) {
	for _, c := range cities {
		o.dontLook[c] = false
		if !o.inQueue[c] {
			o.inQueue[c] = true
			o.queue = append(o.queue, c)
		}
	}
}

// tourEqual reports exact element-wise equality (including rotation).
func tourEqual(a, b Tour) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickTwoLevelMatchesSliceModel drives a TwoLevel and a naive slice
// model through the same random valid splices and checks every query
// agrees after each one: Succ/Pred for all cities, First, Rank, Np from a
// random anchor, and the materialized tour.
func TestQuickTwoLevelMatchesSliceModel(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%40) + 4
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		model := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { model[i], model[j] = model[j], model[i] })
		tl := NewTwoLevel(model)
		pos := make([]int, n)
		scratch := make(Tour, n)
		check := func() bool {
			for i, c := range model {
				pos[c] = i
			}
			if tl.First() != model[0] {
				return false
			}
			for _, c := range model {
				if tl.Succ(c) != model[(pos[c]+1)%n] || tl.Pred(c) != model[(pos[c]-1+n)%n] {
					return false
				}
				// Ranks are rotation-relative: successive cities differ
				// by +1 mod n, which is all NpFrom needs.
				if tl.Rank(tl.Succ(c)) != (tl.Rank(c)+1)%n {
					return false
				}
			}
			a := model[rng.Intn(n)]
			ra := tl.Rank(a)
			for _, x := range model {
				want := (pos[x] - pos[a] - 1 + n) % n
				if tl.Np(a, x) != want || tl.NpFrom(ra, x) != want {
					return false
				}
			}
			return tourEqual(tl.AppendTour(scratch[:0]), model)
		}
		if !check() {
			return false
		}
		for step := 0; step < 30; step++ {
			// A random proper splice: anchor a, block at relative
			// positions [npD, npE] with 1 <= npD <= npE <= n-2.
			pa := rng.Intn(n)
			a := model[pa]
			npD := 1 + rng.Intn(n-2)
			npE := npD + rng.Intn(n-1-npD)
			d := model[(pa+1+npD)%n]
			e := model[(pa+1+npE)%n]
			// Model update mirrors the array kernel's apply: rotate so a
			// leads, then block, then the skipped prefix, then the rest.
			next := make(Tour, 0, n)
			next = append(next, a)
			for i := npD; i <= npE; i++ {
				next = append(next, model[(pa+1+i)%n])
			}
			for i := 0; i < npD; i++ {
				next = append(next, model[(pa+1+i)%n])
			}
			for i := npE + 1; i <= n-2; i++ {
				next = append(next, model[(pa+1+i)%n])
			}
			model = next
			tl.Splice(a, d, e)
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThreeOptMatchesArrayKernel is the phase-1 bit-identity pin:
// on random instances, the TwoLevel-based ThreeOpt and the frozen array
// kernel make the identical move sequence — equal tours (element-wise,
// same rotation), equal costs, and equal tried/accepted counters — both
// for the initial optimization and across double-bridge kick rounds
// driven through the known-cost SetTourCost path.
func TestQuickThreeOptMatchesArrayKernel(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%60) + 4
		m := randMatrix(n, 1000, int64(seedRaw))
		nb := BuildNeighbors(m, DefaultNeighborCount, ForbidCost(m))
		rng := rand.New(rand.NewSource(int64(seedRaw) + 17))
		start := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { start[i], start[j] = start[j], start[i] })

		got := NewThreeOpt(m, nb, start)
		want := newArrayThreeOpt(m, nb, start)
		got.Optimize()
		want.Optimize()
		cur := want.Tour()
		for round := 0; ; round++ {
			if got.Cost() != want.Cost() || !tourEqual(got.Tour(), want.Tour()) {
				return false
			}
			gt, ga := got.Moves()
			wt, wa := want.Moves()
			if gt != wt || ga != wa {
				return false
			}
			if round == 3 {
				return true
			}
			var kc Cost
			kick, kc := doubleBridgeIntoCost(nil, cur, rng, m, want.Cost())
			if kc != CycleCost(m, kick) {
				return false // the six-edge kick delta must be exact
			}
			got.SetTourCost(kick, kc)
			want.SetTour(kick)
			got.Optimize()
			want.Optimize()
			cur = want.Tour()
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetTourCostMatchesSetTour pins that the known-cost reset path
// is exactly SetTour minus the rescan.
func TestQuickSetTourCostMatchesSetTour(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%30) + 4
		m := randMatrix(n, 800, int64(seedRaw)+9)
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		tour := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		a := NewThreeOpt(m, nil, tour)
		b := NewThreeOpt(m, nil, tour)
		next := DoubleBridge(tour, rng)
		a.SetTour(next)
		b.SetTourCost(next, CycleCost(m, next))
		a.Optimize()
		b.Optimize()
		return a.Cost() == b.Cost() && tourEqual(a.Tour(), b.Tour())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoLevelRebuildPreservesTour forces enough splices to trigger the
// segment-count rebuild and checks the tour and rotation survive.
func TestTwoLevelRebuildPreservesTour(t *testing.T) {
	const n = 400
	rng := rand.New(rand.NewSource(7))
	model := IdentityTour(n)
	tl := NewTwoLevel(model)
	pos := make([]int, n)
	for step := 0; step < 500; step++ {
		for i, c := range model {
			pos[c] = i
		}
		pa := rng.Intn(n)
		a := model[pa]
		npD := 1 + rng.Intn(n-2)
		npE := npD + rng.Intn(n-1-npD)
		d := model[(pa+1+npD)%n]
		e := model[(pa+1+npE)%n]
		next := make(Tour, 0, n)
		next = append(next, a)
		for i := npD; i <= npE; i++ {
			next = append(next, model[(pa+1+i)%n])
		}
		for i := 0; i < npD; i++ {
			next = append(next, model[(pa+1+i)%n])
		}
		for i := npE + 1; i <= n-2; i++ {
			next = append(next, model[(pa+1+i)%n])
		}
		model = next
		tl.Splice(a, d, e)
	}
	if !tourEqual(tl.Tour(), model) {
		t.Fatalf("tour diverged from model after %d splices", 500)
	}
	if tl.First() != model[0] {
		t.Fatalf("First = %d, want %d", tl.First(), model[0])
	}
}
