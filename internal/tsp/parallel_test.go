package tsp

// Schedule-independence tests for the parallel multi-start solver: the
// result of Solve must be a pure function of SolveOptions.Seed — never
// of Parallelism, GOMAXPROCS, or goroutine scheduling. Run with -race
// (scripts/ci.sh does, at GOMAXPROCS=2) so the same tests also prove
// the concurrent runs share no unsynchronized state.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"branchalign/internal/work"
)

// solveAt runs the paper protocol (local search forced, no exact-DP
// shortcut) at the given parallelism.
func solveAt(m Costs, seed int64, par int, budget Budget) Result {
	opt := PaperSolveOptions(seed)
	opt.ExactThreshold = 0
	opt.PatchingStarts = 1
	opt.Parallelism = par
	opt.Budget = budget
	return Solve(m, opt)
}

// resultsEqual compares everything but wall-clock: tour, cost and all
// counters.
func resultsEqual(a, b Result) bool { return reflect.DeepEqual(a, b) }

// TestSolveParallelismBitIdentical pins the determinism contract on
// dense and sparse instances at parallelism 1, 2 and 8.
func TestSolveParallelismBitIdentical(t *testing.T) {
	for _, n := range []int{13, 30, 61} {
		for _, sparse := range []bool{false, true} {
			var m Costs = randMatrix(n, 1000, int64(n))
			name := "dense"
			if sparse {
				m = randSparse(n, 1000, 0.15, int64(n))
				name = "sparse"
			}
			seq := solveAt(m, 7, 1, Budget{})
			for _, par := range []int{2, 8} {
				got := solveAt(m, 7, par, Budget{})
				if !resultsEqual(seq, got) {
					t.Errorf("n=%d %s: Parallelism=%d diverged from sequential:\n seq: %+v\n got: %+v",
						n, name, par, seq, got)
				}
			}
		}
	}
}

// TestSolveParallelKickBudgetBitIdentical exercises the deterministic
// MaxKicks partition, including budgets that exhaust mid-run, exactly at
// run boundaries, exactly at the protocol total, and beyond it.
func TestSolveParallelKickBudgetBitIdentical(t *testing.T) {
	const n = 17
	m := randMatrix(n, 500, 3)
	opt := PaperSolveOptions(1)
	runs := int64(opt.GreedyStarts + opt.NNStarts + opt.IdentityStarts + 1) // +1 patching in solveAt
	iters := int64(2 * n)
	total := runs * iters
	budgets := []int64{1, 3, iters - 1, iters, iters + 1, 3*iters + 5, total - 1, total, total + 10}
	for _, k := range budgets {
		seq := solveAt(m, 11, 1, Budget{MaxKicks: k})
		wantTrunc := k < total
		if seq.Truncated != wantTrunc {
			t.Errorf("MaxKicks=%d: sequential Truncated=%v, want %v (exact-budget finishes are not truncated)",
				k, seq.Truncated, wantTrunc)
		}
		if seq.Kicks > k {
			t.Errorf("MaxKicks=%d: spent %d kicks", k, seq.Kicks)
		}
		for _, par := range []int{2, 8} {
			got := solveAt(m, 11, par, Budget{MaxKicks: k})
			if !resultsEqual(seq, got) {
				t.Errorf("MaxKicks=%d Parallelism=%d diverged:\n seq: %+v\n got: %+v", k, par, seq, got)
			}
		}
	}
}

// TestSolveParallelQuick is the property-test form of the contract:
// random instances (dense and sparse), random seeds, random kick
// budgets — parallel and sequential results are identical, always.
func TestSolveParallelQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	property := func(nSeed, solveSeed int64, sparse bool, budgetRaw int64) bool {
		rng := rand.New(rand.NewSource(nSeed))
		n := 13 + rng.Intn(20)
		var m Costs = randMatrix(n, 2000, nSeed)
		if sparse {
			m = randSparse(n, 2000, 0.2, nSeed)
		}
		// A third of the time, no budget; otherwise a budget drawn up to
		// slightly past the full protocol (11 runs x 2n kicks), so
		// exhausting and non-exhausting cases both occur.
		var budget Budget
		if budgetRaw%3 != 0 {
			budget.MaxKicks = 1 + budgetRaw%int64(23*n)
		}
		seq := solveAt(m, solveSeed, 1, budget)
		par := solveAt(m, solveSeed, 8, budget)
		if !resultsEqual(seq, par) {
			t.Logf("n=%d sparse=%v seed=%d budget=%+v\n seq: %+v\n par: %+v", n, sparse, solveSeed, budget, seq, par)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
			vs[1] = reflect.ValueOf(rng.Int63())
			vs[2] = reflect.ValueOf(rng.Intn(2) == 0)
			vs[3] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestSolveParallelOnSaturatedPool pins the nested-composition behavior:
// a solve whose pool is fully occupied (by the solves themselves) must
// still complete — degrading to in-caller execution — and still return
// the schedule-independent result.
func TestSolveParallelOnSaturatedPool(t *testing.T) {
	m := randMatrix(29, 1000, 5)
	want := solveAt(m, 9, 1, Budget{})
	pool := work.NewPool(2)
	results := make([]Result, 4)
	pool.Each(len(results), func(i int) {
		opt := PaperSolveOptions(9)
		opt.ExactThreshold = 0
		opt.PatchingStarts = 1
		opt.Parallelism = 8
		opt.Pool = pool
		results[i] = Solve(m, opt)
	})
	for i, got := range results {
		if !resultsEqual(want, got) {
			t.Errorf("solve %d on saturated pool diverged:\n want: %+v\n got: %+v", i, want, got)
		}
	}
}

// TestRunSeedStreamsDistinct sanity-checks the per-run seed derivation:
// distinct (run, kind) pairs yield distinct streams for the paper
// protocol's plan sizes.
func TestRunSeedStreamsDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for run := 0; run < 64; run++ {
		for _, kind := range []startKind{startGreedy, startNN, startIdentity, startPatching} {
			s := runSeed(1, run, kind)
			if prev, dup := seen[s]; dup {
				t.Fatalf("runSeed collision: (%d,%v) and (%d,%d) both map to %d", run, kind, prev[0], prev[1], s)
			}
			seen[s] = [2]int{run, int(kind)}
		}
	}
	if runSeed(1, 0, startGreedy) == runSeed(2, 0, startGreedy) {
		t.Fatal("runSeed ignores the solve seed")
	}
}

// TestRotateToNoAllocs pins the three-reversal rotation as
// allocation-free.
func TestRotateToNoAllocs(t *testing.T) {
	tour := make(Tour, 101)
	for i := range tour {
		tour[i] = (i + 37) % len(tour)
	}
	allocs := testing.AllocsPerRun(100, func() { tour.RotateTo(0) })
	if allocs != 0 {
		t.Fatalf("RotateTo allocates %.1f objects per call, want 0", allocs)
	}
	// And it must still rotate correctly after the in-place rewrite.
	tour.RotateTo(5)
	if tour[0] != 5 {
		t.Fatalf("RotateTo(5) left %d first", tour[0])
	}
	if !tour.Valid(len(tour)) {
		t.Fatal("RotateTo corrupted the permutation")
	}
}

// BenchmarkRotateTo demonstrates the 0 allocs/op of the in-place
// rotation on a large tour.
func BenchmarkRotateTo(b *testing.B) {
	tour := make(Tour, 4096)
	for i := range tour {
		tour[i] = i
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tour.RotateTo(i % len(tour))
	}
}
