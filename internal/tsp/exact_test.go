package tsp

import "testing"

func TestSolveExactMatchesBruteForce(t *testing.T) {
	for n := 3; n <= 8; n++ {
		for seed := int64(0); seed < 4; seed++ {
			m := randMatrix(n, 100, seed*31+int64(n))
			dpTour, dpCost := SolveExact(m)
			bfTour, bfCost := SolveBruteForce(m)
			if dpCost != bfCost {
				t.Fatalf("n=%d seed=%d: DP %d != brute force %d", n, seed, dpCost, bfCost)
			}
			if !dpTour.Valid(n) || !bfTour.Valid(n) {
				t.Fatalf("n=%d seed=%d: invalid tour returned", n, seed)
			}
			if CycleCost(m, dpTour) != dpCost {
				t.Fatalf("n=%d seed=%d: DP tour does not realize its cost", n, seed)
			}
		}
	}
}

func TestSolveExactTinyInstances(t *testing.T) {
	m1 := NewMatrix(1)
	tour, cost := SolveExact(m1)
	if cost != 0 || len(tour) != 1 || tour[0] != 0 {
		t.Fatalf("n=1: got tour %v cost %d", tour, cost)
	}
	m2 := FromRows([][]Cost{{0, 3}, {4, 0}})
	tour, cost = SolveExact(m2)
	if cost != 7 || !tour.Valid(2) {
		t.Fatalf("n=2: got tour %v cost %d, want cost 7", tour, cost)
	}
}

func TestSolveExactRespectsAsymmetry(t *testing.T) {
	// Going 0->1->2->0 costs 3; reversed costs 30. The DP must find 3.
	m := FromRows([][]Cost{
		{0, 1, 10},
		{10, 0, 1},
		{1, 10, 0},
	})
	tour, cost := SolveExact(m)
	if cost != 3 {
		t.Fatalf("cost %d, want 3 (tour %v)", cost, tour)
	}
}

func TestSolveExactPanicsAboveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SolveExact should panic above MaxExactCities")
		}
	}()
	SolveExact(NewMatrix(MaxExactCities + 1))
}

func TestSolveBruteForcePanicsAboveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SolveBruteForce should panic above its limit")
		}
	}()
	SolveBruteForce(NewMatrix(11))
}
