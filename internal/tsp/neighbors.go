package tsp

import "sort"

// Neighbors holds, for every city, candidate lists of the cheapest
// outgoing and incoming directed edges. Local search only considers moves
// whose newly added edges come from these lists, which is the standard
// Johnson-McGeoch neighbor-list pruning.
type Neighbors struct {
	// Out[i] lists cities j in increasing order of cost(i->j).
	Out [][]int
	// In[j] lists cities i in increasing order of cost(i->j).
	In [][]int
}

// DefaultNeighborCount is the candidate-list width used when callers pass
// k <= 0 to BuildNeighbors.
const DefaultNeighborCount = 12

// BuildNeighbors computes the k cheapest outgoing and incoming neighbors
// of every city, skipping edges whose cost is at least forbid (pass the
// value of ForbidCost(m), or a negative number to keep every edge). Ties
// are broken by city index, so the result is a pure function of the
// instance's costs: dense and sparse representations of the same
// instance yield identical lists. On a SparseMatrix the construction
// runs in O((V+E)·(k+log k)) instead of Θ(n² log n): each row contributes
// its exception columns plus the k smallest-index default columns (all
// default columns tie on cost, and index order is exactly how a
// cost-stable sort breaks that tie). On dense matrices each row selects
// its k cheapest columns through a bounded (cost, index)-keyed max-heap —
// O(n log k) per row instead of the Θ(n log n) full sort it replaced,
// with an identical result.
func BuildNeighbors(m Costs, k int, forbid Cost) *Neighbors {
	n := m.Len()
	if k <= 0 {
		k = DefaultNeighborCount
	}
	if k > n-1 {
		k = n - 1
	}
	if s, ok := m.(*SparseMatrix); ok {
		return buildNeighborsSparse(s, k, forbid)
	}
	nb := &Neighbors{
		Out: make([][]int, n),
		In:  make([][]int, n),
	}
	heap := make([]neighborCand, 0, k)
	for i := 0; i < n; i++ {
		heap = heap[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			c := m.At(i, j)
			if forbid >= 0 && c >= forbid {
				continue
			}
			heap = pushBounded(heap, k, neighborCand{j, c})
		}
		nb.Out[i] = takeCheapest(heap, k)

		heap = heap[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			c := m.At(j, i)
			if forbid >= 0 && c >= forbid {
				continue
			}
			heap = pushBounded(heap, k, neighborCand{j, c})
		}
		nb.In[i] = takeCheapest(heap, k)
	}
	return nb
}

// neighborCand is a candidate edge endpoint with its cost.
type neighborCand struct {
	city int
	cost Cost
}

// candAfter reports whether x orders strictly after y in (cost, city)
// order — the selection key everywhere neighbor candidates are ranked.
func candAfter(x, y neighborCand) bool {
	if x.cost != y.cost {
		return x.cost > y.cost
	}
	return x.city > y.city
}

// pushBounded offers cand to the size-k max-heap h (worst candidate at
// the root, ordered by candAfter) and returns the updated heap: grow
// while under capacity, otherwise replace the root only if cand beats
// it. After offering every candidate, h holds exactly the k smallest in
// (cost, city) order — candidates arrive in increasing city order, so
// the (cost, city) key makes the strict comparisons reproduce a stable
// by-cost sort's choice among ties.
func pushBounded(h []neighborCand, k int, cand neighborCand) []neighborCand {
	if len(h) < k {
		h = append(h, cand)
		// Sift up.
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !candAfter(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
		return h
	}
	if k == 0 || !candAfter(h[0], cand) {
		return h
	}
	h[0] = cand
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && candAfter(h[l], h[big]) {
			big = l
		}
		if r < len(h) && candAfter(h[r], h[big]) {
			big = r
		}
		if big == i {
			return h
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// takeCheapest sorts candidates by (cost, city) and returns the first k
// cities — the same order a stable by-cost sort over index-ordered
// candidates produces.
func takeCheapest(cands []neighborCand, k int) []int {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].city < cands[b].city
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := range out {
		out[i] = cands[i].city
	}
	return out
}

func buildNeighborsSparse(s *SparseMatrix, k int, forbid Cost) *Neighbors {
	n := s.Len()
	nb := &Neighbors{
		Out: make([][]int, n),
		In:  make([][]int, n),
	}
	// Out lists: per row, the exception columns plus the k smallest-index
	// default columns.
	isExc := make([]bool, n)
	cands := make([]neighborCand, 0, 2*k)
	for i := 0; i < n; i++ {
		cands = cands[:0]
		cols, vals := s.Row(i)
		for kk, c := range cols {
			isExc[c] = true
			if forbid >= 0 && vals[kk] >= forbid {
				continue
			}
			cands = append(cands, neighborCand{c, vals[kk]})
		}
		def := s.RowDefault(i)
		if forbid < 0 || def < forbid {
			taken := 0
			for j := 0; j < n && taken < k; j++ {
				if j == i || isExc[j] {
					continue
				}
				cands = append(cands, neighborCand{j, def})
				taken++
			}
		}
		for _, c := range cols {
			isExc[c] = false
		}
		nb.Out[i] = takeCheapest(cands, k)
	}
	// In lists: transpose the exceptions once, pre-rank rows by default
	// cost, then per column merge its exception rows with the k cheapest
	// default rows (skipping rows that have an exception in this column).
	colStart := make([]int, n+1)
	for _, c := range s.cols {
		colStart[c+1]++
	}
	for j := 0; j < n; j++ {
		colStart[j+1] += colStart[j]
	}
	colRows := make([]int, len(s.cols))
	colVals := make([]Cost, len(s.cols))
	fill := append([]int(nil), colStart[:n]...)
	for i := 0; i < n; i++ {
		cols, vals := s.Row(i)
		for kk, c := range cols {
			colRows[fill[c]] = i
			colVals[fill[c]] = vals[kk]
			fill[c]++
		}
	}
	// Rows in increasing (default, index) order — the preference order for
	// default-cost incoming edges.
	rowsByDef := make([]int, n)
	for i := range rowsByDef {
		rowsByDef[i] = i
	}
	sort.Slice(rowsByDef, func(a, b int) bool {
		if s.def[rowsByDef[a]] != s.def[rowsByDef[b]] {
			return s.def[rowsByDef[a]] < s.def[rowsByDef[b]]
		}
		return rowsByDef[a] < rowsByDef[b]
	})
	for j := 0; j < n; j++ {
		cands = cands[:0]
		rows := colRows[colStart[j]:colStart[j+1]]
		vals := colVals[colStart[j]:colStart[j+1]]
		for kk, i := range rows {
			isExc[i] = true
			if forbid >= 0 && vals[kk] >= forbid {
				continue
			}
			cands = append(cands, neighborCand{i, vals[kk]})
		}
		taken := 0
		for _, i := range rowsByDef {
			if taken >= k {
				break
			}
			if i == j || isExc[i] {
				continue
			}
			if forbid >= 0 && s.def[i] >= forbid {
				continue
			}
			cands = append(cands, neighborCand{i, s.def[i]})
			taken++
		}
		for _, i := range rows {
			isExc[i] = false
		}
		nb.In[j] = takeCheapest(cands, k)
	}
	return nb
}
