package tsp

import "sort"

// Neighbors holds, for every city, candidate lists of the cheapest
// outgoing and incoming directed edges. Local search only considers moves
// whose newly added edges come from these lists, which is the standard
// Johnson-McGeoch neighbor-list pruning.
type Neighbors struct {
	// Out[i] lists cities j in increasing order of cost(i->j).
	Out [][]int
	// In[j] lists cities i in increasing order of cost(i->j).
	In [][]int
}

// DefaultNeighborCount is the candidate-list width used when callers pass
// k <= 0 to BuildNeighbors.
const DefaultNeighborCount = 12

// BuildNeighbors computes the k cheapest outgoing and incoming neighbors
// of every city, skipping edges whose cost is at least forbid (pass the
// value of m.Forbid(), or a negative number to keep every edge).
func BuildNeighbors(m *Matrix, k int, forbid Cost) *Neighbors {
	n := m.Len()
	if k <= 0 {
		k = DefaultNeighborCount
	}
	if k > n-1 {
		k = n - 1
	}
	nb := &Neighbors{
		Out: make([][]int, n),
		In:  make([][]int, n),
	}
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx = idx[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if forbid >= 0 && m.At(i, j) >= forbid {
				continue
			}
			idx = append(idx, j)
		}
		sort.SliceStable(idx, func(a, b int) bool { return m.At(i, idx[a]) < m.At(i, idx[b]) })
		take := k
		if take > len(idx) {
			take = len(idx)
		}
		nb.Out[i] = append([]int(nil), idx[:take]...)

		idx = idx[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if forbid >= 0 && m.At(j, i) >= forbid {
				continue
			}
			idx = append(idx, j)
		}
		sort.SliceStable(idx, func(a, b int) bool { return m.At(idx[a], i) < m.At(idx[b], i) })
		take = k
		if take > len(idx) {
			take = len(idx)
		}
		nb.In[i] = append([]int(nil), idx[:take]...)
	}
	return nb
}
