package tsp

import (
	"math/rand"
	"testing"
)

// randMatrix returns a deterministic random asymmetric matrix with costs
// in [0, maxCost).
func randMatrix(n int, maxCost int64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, Cost(rng.Int63n(maxCost)))
			}
		}
	}
	return m
}

// randSymMatrix returns a deterministic random symmetric matrix.
func randSymMatrix(n int, maxCost int64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := Cost(rng.Int63n(maxCost))
			m.Set(i, j, c)
			m.Set(j, i, c)
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 7)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Errorf("At(0,1) = %d, want 7", got)
	}
	if got := m.At(1, 0); got != 7 {
		t.Errorf("At(1,0) = %d, want 7", got)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	if !m.IsSymmetric() {
		t.Error("matrix with equal off-diagonal pairs should be symmetric")
	}
	m.Set(2, 0, 1)
	if m.IsSymmetric() {
		t.Error("matrix should no longer be symmetric")
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 7 {
		t.Error("Clone must not share storage")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]Cost{
		{0, 1, 2},
		{3, 0, 4},
		{5, 6, 0},
	})
	if m.At(1, 2) != 4 || m.At(2, 0) != 5 {
		t.Errorf("FromRows produced wrong entries: %d, %d", m.At(1, 2), m.At(2, 0))
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows should panic on ragged input")
		}
	}()
	FromRows([][]Cost{{0, 1}, {2}})
}

func TestNewMatrixPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0) should panic")
		}
	}()
	NewMatrix(0)
}

func TestForbidExceedsAnyTour(t *testing.T) {
	m := randMatrix(9, 1000, 1)
	forbid := m.Forbid()
	// Any cycle uses n edges; its cost is at most the sum of all positive
	// entries, so strictly less than forbid.
	worst := Cost(0)
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < m.Len(); j++ {
			if i != j && m.At(i, j) > 0 {
				worst += m.At(i, j)
			}
		}
	}
	if forbid != worst+1 {
		t.Errorf("Forbid = %d, want %d", forbid, worst+1)
	}
}

func TestTourValid(t *testing.T) {
	cases := []struct {
		tour Tour
		n    int
		want bool
	}{
		{Tour{0, 1, 2}, 3, true},
		{Tour{2, 0, 1}, 3, true},
		{Tour{0, 1}, 3, false},
		{Tour{0, 1, 1}, 3, false},
		{Tour{0, 1, 3}, 3, false},
		{Tour{-1, 1, 2}, 3, false},
		{Tour{}, 0, true},
	}
	for _, c := range cases {
		if got := c.tour.Valid(c.n); got != c.want {
			t.Errorf("Valid(%v, %d) = %v, want %v", c.tour, c.n, got, c.want)
		}
	}
}

func TestCycleAndPathCost(t *testing.T) {
	m := FromRows([][]Cost{
		{0, 1, 10},
		{10, 0, 2},
		{3, 10, 0},
	})
	tour := Tour{0, 1, 2}
	if got := CycleCost(m, tour); got != 1+2+3 {
		t.Errorf("CycleCost = %d, want 6", got)
	}
	if got := PathCost(m, tour); got != 1+2 {
		t.Errorf("PathCost = %d, want 3", got)
	}
	if got := CycleCost(m, Tour{}); got != 0 {
		t.Errorf("CycleCost(empty) = %d, want 0", got)
	}
}

func TestRotateTo(t *testing.T) {
	tour := Tour{3, 1, 4, 0, 2}
	tour.RotateTo(0)
	want := Tour{0, 2, 3, 1, 4}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("RotateTo produced %v, want %v", tour, want)
		}
	}
	// Rotation must preserve cycle cost.
	m := randMatrix(5, 100, 2)
	a := Tour{3, 1, 4, 0, 2}
	before := CycleCost(m, a)
	a.RotateTo(4)
	if after := CycleCost(m, a); after != before {
		t.Errorf("rotation changed cycle cost: %d -> %d", before, after)
	}
}

func TestRotateToPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RotateTo should panic when city absent")
		}
	}()
	Tour{0, 1, 2}.RotateTo(7)
}
