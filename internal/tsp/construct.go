package tsp

import (
	"math/rand"
	"sort"
)

// NearestNeighbor builds a tour by starting at city start and repeatedly
// moving to the cheapest unvisited city. With rng == nil the choice is
// deterministic; otherwise each step picks uniformly among the k cheapest
// unvisited cities (k = 3, per the "randomized Nearest Neighbor starts" of
// the paper's solver protocol). Ties are broken by city index, and the
// sparse fast path reproduces the dense scan's choices exactly.
func NearestNeighbor(m Costs, start int, rng *rand.Rand) Tour {
	if s, ok := m.(*SparseMatrix); ok {
		return nearestNeighborSparse(s, start, rng)
	}
	n := m.Len()
	visited := make([]bool, n)
	tour := make(Tour, 0, n)
	cur := start
	visited[cur] = true
	tour = append(tour, cur)
	type cand struct {
		city int
		cost Cost
	}
	for len(tour) < n {
		var best [3]cand
		nbest := 0
		for j := 0; j < n; j++ {
			if visited[j] {
				continue
			}
			c := cand{j, m.At(cur, j)}
			// Insertion sort into the best-3 buffer.
			k := nbest
			if k > len(best)-1 {
				k = len(best) - 1
				if c.cost >= best[k].cost {
					continue
				}
			}
			for k > 0 && best[k-1].cost > c.cost {
				best[k] = best[k-1]
				k--
			}
			best[k] = c
			if nbest < len(best) {
				nbest++
			}
		}
		pick := 0
		if rng != nil && nbest > 1 {
			pick = rng.Intn(nbest)
		}
		cur = best[pick].city
		visited[cur] = true
		tour = append(tour, cur)
	}
	return tour
}

// nearestNeighborSparse is NearestNeighbor on the sparse representation:
// from the current city, the candidate successors are the unvisited
// exception columns plus the first three unvisited non-exception columns
// (all non-exception columns cost the row default, so the three with the
// smallest indices are exactly the ones the dense scan's stable best-3
// buffer would keep). O(V+E + n·k) over the whole tour instead of Θ(n²).
func nearestNeighborSparse(s *SparseMatrix, start int, rng *rand.Rand) Tour {
	n := s.Len()
	// Doubly linked list over unvisited cities in index order.
	next := make([]int, n+1) // next[n] is the head sentinel
	prev := make([]int, n+1)
	for i := 0; i <= n; i++ {
		next[i] = (i + 1) % (n + 1)
		prev[i] = (i + n) % (n + 1)
	}
	visited := make([]bool, n)
	visit := func(c int) {
		visited[c] = true
		next[prev[c]] = next[c]
		prev[next[c]] = prev[c]
	}
	isExc := make([]bool, n)
	tour := make(Tour, 0, n)
	cur := start
	visit(cur)
	tour = append(tour, cur)
	type cand struct {
		city int
		cost Cost
	}
	// Insertion into a best-3 buffer ordered by (cost, city). Candidate
	// cities are distinct, so (cost, city) is a strict total order and
	// the buffer holds exactly the 3 smallest candidates in sorted order
	// — the same prefix the sort.Slice this replaced produced, without
	// its per-step closure and interface allocations.
	var best [3]cand
	nbest := 0
	add := func(c cand) {
		k := nbest
		if k > len(best)-1 {
			k = len(best) - 1
			if c.cost > best[k].cost || (c.cost == best[k].cost && c.city > best[k].city) {
				return
			}
		}
		for k > 0 && (best[k-1].cost > c.cost || (best[k-1].cost == c.cost && best[k-1].city > c.city)) {
			best[k] = best[k-1]
			k--
		}
		best[k] = c
		if nbest < len(best) {
			nbest++
		}
	}
	for len(tour) < n {
		nbest = 0
		cols, vals := s.Row(cur)
		for k, c := range cols {
			isExc[c] = true
			if !visited[c] {
				add(cand{c, vals[k]})
			}
		}
		def := s.RowDefault(cur)
		taken := 0
		for c := next[n]; c != n && taken < 3; c = next[c] {
			if isExc[c] {
				continue
			}
			add(cand{c, def})
			taken++
		}
		for _, c := range cols {
			isExc[c] = false
		}
		pick := 0
		if rng != nil && nbest > 1 {
			pick = rng.Intn(nbest)
		}
		cur = best[pick].city
		visit(cur)
		tour = append(tour, cur)
	}
	return tour
}

// GreedyEdge builds a tour by sorting all directed edges by cost and
// accepting each edge whose head still lacks an outgoing edge, whose tail
// still lacks an incoming edge, and which does not close a premature
// subcycle. Remaining gaps are stitched with the forced edges. With a
// non-nil rng the edge order is perturbed (each edge's sort key is
// multiplied by a factor drawn from [1, 1.25)), giving the "randomized
// Greedy starts" of the paper's solver protocol.
//
// The construction inherently ranks all n(n-1) directed edges (the
// randomized variant draws an independent key per edge), so it stays
// Θ(n² log n) for every representation; Solve therefore reserves greedy
// starts for instances where the edge sort is affordable.
func GreedyEdge(m Costs, rng *rand.Rand) Tour {
	n := m.Len()
	if n == 1 {
		return Tour{0}
	}
	type edge struct {
		from, to int
		key      float64
	}
	edges := make([]edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			key := float64(m.At(i, j))
			if rng != nil {
				key *= 1 + rng.Float64()*0.25
			}
			edges = append(edges, edge{i, j, key})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].key != edges[b].key {
			return edges[a].key < edges[b].key
		}
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		return edges[a].to < edges[b].to
	})

	next := make([]int, n) // chosen successor, -1 if none
	prev := make([]int, n) // chosen predecessor, -1 if none
	for i := range next {
		next[i] = -1
		prev[i] = -1
	}
	// chainEnd[x] is, for the head x of a chain, the tail of that chain
	// (and vice versa); used to reject subcycles in O(1) amortized.
	chainEnd := make([]int, n)
	for i := range chainEnd {
		chainEnd[i] = i
	}
	accepted := 0
	for _, e := range edges {
		if accepted == n-1 {
			break
		}
		if next[e.from] != -1 || prev[e.to] != -1 {
			continue
		}
		// Reject an edge that would close a cycle before all cities join.
		if chainEnd[e.from] == e.to && accepted < n-1 {
			continue
		}
		next[e.from] = e.to
		prev[e.to] = e.from
		// e.from was the tail of a chain whose head is chainEnd[e.from];
		// e.to was the head of a chain whose tail is chainEnd[e.to]. The
		// merged chain runs newHead..e.from->e.to..newTail.
		newHead := chainEnd[e.from]
		newTail := chainEnd[e.to]
		chainEnd[newHead] = newTail
		chainEnd[newTail] = newHead
		accepted++
	}
	// Stitch any remaining chain tails to chain heads. With the subcycle
	// check above there is exactly one chain left when accepted == n-1;
	// otherwise several chains remain and we connect them in index order.
	tour := make(Tour, 0, n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		if prev[i] != -1 || used[i] {
			continue
		}
		for c := i; c != -1 && !used[c]; c = next[c] {
			used[c] = true
			tour = append(tour, c)
		}
	}
	// Cities that ended up in a (degenerate) cycle of chosen edges would be
	// skipped above; append them defensively. This cannot happen with the
	// subcycle check, but the guard keeps the function total.
	for i := 0; i < n; i++ {
		if !used[i] {
			for c := i; !used[c]; c = next[c] {
				used[c] = true
				tour = append(tour, c)
			}
		}
	}
	return tour
}

// IdentityTour returns the tour visiting cities in index order, i.e. the
// "original ordering given by the compiler" start of the paper's protocol.
func IdentityTour(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = i
	}
	return t
}
