package tsp

import "fmt"

// MaxExactCities bounds the instance size SolveExact accepts; the
// Held-Karp dynamic program is O(n^2 * 2^n) time and O(n * 2^n) space.
const MaxExactCities = 20

// SolveExact computes an optimal directed Hamiltonian cycle with the
// Held-Karp dynamic program. It panics for instances larger than
// MaxExactCities.
func SolveExact(m Costs) (Tour, Cost) {
	n := m.Len()
	if n > MaxExactCities {
		panic(fmt.Sprintf("tsp: SolveExact: %d cities exceeds limit %d", n, MaxExactCities))
	}
	if n == 1 {
		return Tour{0}, 0
	}
	if s, ok := m.(*SparseMatrix); ok {
		// The DP reads every entry Θ(2^n) times; the few hundred bytes of
		// dense matrix are repaid immediately by array-indexed At.
		m = s.Dense()
	}
	if n == 2 {
		return Tour{0, 1}, m.At(0, 1) + m.At(1, 0)
	}
	// dp[mask][j]: cheapest path from city 0 through exactly the cities in
	// mask (a subset of {1..n-1}), ending at city j+1... to keep the inner
	// arrays dense, index j ranges over 1..n-1 shifted down by one.
	k := n - 1
	size := 1 << k
	const inf = Cost(1) << 62
	dp := make([][]Cost, size)
	parent := make([][]int8, size)
	for mask := 1; mask < size; mask++ {
		dp[mask] = make([]Cost, k)
		parent[mask] = make([]int8, k)
		for j := range dp[mask] {
			dp[mask][j] = inf
			parent[mask][j] = -1
		}
	}
	for j := 0; j < k; j++ {
		dp[1<<j][j] = m.At(0, j+1)
	}
	for mask := 1; mask < size; mask++ {
		for j := 0; j < k; j++ {
			cur := dp[mask][j]
			if cur >= inf || mask&(1<<j) == 0 {
				continue
			}
			for nxt := 0; nxt < k; nxt++ {
				if mask&(1<<nxt) != 0 {
					continue
				}
				nm := mask | 1<<nxt
				cand := cur + m.At(j+1, nxt+1)
				if cand < dp[nm][nxt] {
					dp[nm][nxt] = cand
					parent[nm][nxt] = int8(j)
				}
			}
		}
	}
	full := size - 1
	best := inf
	last := -1
	for j := 0; j < k; j++ {
		cand := dp[full][j] + m.At(j+1, 0)
		if cand < best {
			best = cand
			last = j
		}
	}
	// Reconstruct the cycle.
	order := make([]int, 0, n)
	mask := full
	for j := last; j >= 0; {
		order = append(order, j+1)
		pj := parent[mask][j]
		mask &^= 1 << j
		j = int(pj)
	}
	tour := make(Tour, 0, n)
	tour = append(tour, 0)
	for i := len(order) - 1; i >= 0; i-- {
		tour = append(tour, order[i])
	}
	return tour, best
}

// SolveBruteForce exhaustively enumerates all (n-1)! cyclic permutations.
// It is only intended for cross-checking other solvers in tests and
// panics above 10 cities.
func SolveBruteForce(m Costs) (Tour, Cost) {
	n := m.Len()
	if n > 10 {
		panic(fmt.Sprintf("tsp: SolveBruteForce: %d cities is too many", n))
	}
	if n == 1 {
		return Tour{0}, 0
	}
	perm := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		perm = append(perm, i)
	}
	best := Tour(nil)
	var bestCost Cost
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			t := append(Tour{0}, perm...)
			c := CycleCost(m, t)
			if best == nil || c < bestCost {
				best = t.Clone()
				bestCost = c
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, bestCost
}
