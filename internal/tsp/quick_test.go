package tsp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests over randomly generated instances, per the
// invariants listed in DESIGN.md.

func TestQuickThreeOptProducesValidToursAndNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%18) + 3
		m := randMatrix(n, 1000, int64(seedRaw))
		start := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { start[i], start[j] = start[j], start[i] })
		before := CycleCost(m, start)
		o := NewThreeOpt(m, nil, start)
		after := o.Optimize()
		return o.Tour().Valid(n) && after <= before && CycleCost(m, o.Tour()) == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymEmbeddingPreservesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%12) + 2
		m := randMatrix(n, 500, int64(seedRaw)+1)
		s := Symmetrize(m)
		dir := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { dir[i], dir[j] = dir[j], dir[i] })
		emb := s.FromDirected(dir)
		if SymCycleCost(s, emb) != CycleCost(m, dir) {
			return false
		}
		back, err := s.ToDirected(emb)
		if err != nil {
			return false
		}
		back.RotateTo(dir[0])
		for i := range dir {
			if back[i] != dir[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundSandwich(t *testing.T) {
	// AP <= optimum and HK <= optimum <= iterated-3-opt tour, on instances
	// small enough to solve exactly.
	f := func(seedRaw uint16) bool {
		n := 7
		m := randMatrix(n, 300, int64(seedRaw)+7)
		_, opt := SolveExact(m)
		if AssignmentBound(m) > opt {
			return false
		}
		if HeldKarpDirected(m, HeldKarpOptions{UpperBound: opt, Iterations: 120}) > float64(opt)+1e-6 {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		_, heur := IteratedThreeOpt(m, nil, GreedyEdge(m, nil), 2*n, rng)
		return heur >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConstructionsAreValid(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%25) + 1
		m := randMatrix(n, 1000, int64(seedRaw)+3)
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		if !NearestNeighbor(m, rng.Intn(n), rng).Valid(n) {
			return false
		}
		if !GreedyEdge(m, rng).Valid(n) {
			return false
		}
		return NearestNeighbor(m, 0, nil).Valid(n) && GreedyEdge(m, nil).Valid(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDenseNeighborsMatchStableSort pins the dense BuildNeighbors
// bounded-heap partial selection against the full stable by-cost sort it
// replaced: identical lists for every row, width and forbid setting
// (ties broken by city index in both). Costs are drawn from a tiny range
// so ties are dense.
func TestQuickDenseNeighborsMatchStableSort(t *testing.T) {
	f := func(nRaw, kRaw, seedRaw uint16) bool {
		n := int(nRaw%30) + 2
		k := int(kRaw%uint16(n+3)) + 1
		m := randMatrix(n, 7, int64(seedRaw))
		for _, forbid := range []Cost{-1, 5} {
			nb := BuildNeighbors(m, k, forbid)
			idx := make([]int, 0, n)
			kk := k
			if kk > n-1 {
				kk = n - 1
			}
			for i := 0; i < n; i++ {
				for dir := 0; dir < 2; dir++ {
					idx = idx[:0]
					at := func(j int) Cost { return m.At(i, j) }
					got := nb.Out[i]
					if dir == 1 {
						at = func(j int) Cost { return m.At(j, i) }
						got = nb.In[i]
					}
					for j := 0; j < n; j++ {
						if j == i || (forbid >= 0 && at(j) >= forbid) {
							continue
						}
						idx = append(idx, j)
					}
					sort.SliceStable(idx, func(a, b int) bool { return at(idx[a]) < at(idx[b]) })
					take := kk
					if take > len(idx) {
						take = len(idx)
					}
					if len(got) != take {
						return false
					}
					for p := 0; p < take; p++ {
						if got[p] != idx[p] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
