package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests over randomly generated instances, per the
// invariants listed in DESIGN.md.

func TestQuickThreeOptProducesValidToursAndNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%18) + 3
		m := randMatrix(n, 1000, int64(seedRaw))
		start := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { start[i], start[j] = start[j], start[i] })
		before := CycleCost(m, start)
		o := NewThreeOpt(m, nil, start)
		after := o.Optimize()
		return o.Tour().Valid(n) && after <= before && CycleCost(m, o.Tour()) == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymEmbeddingPreservesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%12) + 2
		m := randMatrix(n, 500, int64(seedRaw)+1)
		s := Symmetrize(m)
		dir := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { dir[i], dir[j] = dir[j], dir[i] })
		emb := s.FromDirected(dir)
		if SymCycleCost(s, emb) != CycleCost(m, dir) {
			return false
		}
		back, err := s.ToDirected(emb)
		if err != nil {
			return false
		}
		back.RotateTo(dir[0])
		for i := range dir {
			if back[i] != dir[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundSandwich(t *testing.T) {
	// AP <= optimum and HK <= optimum <= iterated-3-opt tour, on instances
	// small enough to solve exactly.
	f := func(seedRaw uint16) bool {
		n := 7
		m := randMatrix(n, 300, int64(seedRaw)+7)
		_, opt := SolveExact(m)
		if AssignmentBound(m) > opt {
			return false
		}
		if HeldKarpDirected(m, HeldKarpOptions{UpperBound: opt, Iterations: 120}) > float64(opt)+1e-6 {
			return false
		}
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		_, heur := IteratedThreeOpt(m, nil, GreedyEdge(m, nil), 2*n, rng)
		return heur >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConstructionsAreValid(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%25) + 1
		m := randMatrix(n, 1000, int64(seedRaw)+3)
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		if !NearestNeighbor(m, rng.Intn(n), rng).Valid(n) {
			return false
		}
		if !GreedyEdge(m, rng).Valid(n) {
			return false
		}
		return NearestNeighbor(m, 0, nil).Valid(n) && GreedyEdge(m, nil).Valid(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
