package tsp

import "math"

// TwoLevel is a two-level doubly-linked representation of a directed tour,
// after the "two-level doubly linked list" of Johnson and McGeoch's TSP
// local-search studies. Cities live in a circular doubly-linked list and
// are grouped into ~√n contiguous segments; each city records its segment
// and offset within it, and each segment records its cumulative start
// position in the tour. The representation is specialized to the
// reversal-free move set of this package (segments are never flipped, so
// no orientation bits are needed) and supports exactly the operations the
// 3-opt/Or-opt kernels are hot on:
//
//   - Succ/Pred: one array load, O(1), no modular arithmetic;
//   - Rank and the relative-order query Np: O(1) against prefix sums that
//     are rebuilt lazily in O(√n) after a splice;
//   - Splice, the reversal-free segment exchange (relocate the contiguous
//     block d..e to immediately after a): three segment splits of O(√n)
//     each plus an O(1) relink of the segment ring.
//
// Splits grow the segment count by at most three per splice; when the
// count reaches twice its initial value the structure is rebuilt from
// scratch at the target segment length, so splice stays O(√n) amortized.
// The array tour this replaces paid Θ(n) per applied move to rebuild the
// tour and its position index (see ThreeOpt); DESIGN.md section 12 has
// the asymptotics and the bit-identity argument.
//
// All storage is int32-indexed: four byte entries keep the whole structure
// under one L2 way for the multi-thousand-block instances this exists for.
type TwoLevel struct {
	n    int
	next []int32 // next[c] = successor city of c
	prev []int32 // prev[c] = predecessor city of c
	seg  []int32 // seg[c] = id of the segment containing c
	off  []int32 // off[c] = offset of c within its segment

	segNext  []int32 // segment ring, tour order
	segPrev  []int32
	segHead  []int32 // first city of the segment
	segLen   []int32
	segStart []int32 // tour position of segHead, valid while ranksOK

	nseg    int   // live segments (ids 0..nseg-1)
	first   int32 // city at tour position 0 (tracks the last splice anchor)
	target  int32 // rebuild segment length, ~√n
	ranksOK bool

	scratch Tour // rebuild buffer, allocated on first use
}

// NewTwoLevel builds the structure over tour t (which is copied; t is not
// retained).
func NewTwoLevel(t Tour) *TwoLevel {
	tl := &TwoLevel{}
	tl.Init(t)
	return tl
}

// Init rebuilds the structure over tour t, reusing existing storage when
// the city count is unchanged. The city at t[0] becomes First.
func (tl *TwoLevel) Init(t Tour) {
	n := len(t)
	if n == 0 {
		panic("tsp: TwoLevel.Init: empty tour")
	}
	if tl.n != n {
		tl.n = n
		tl.next = make([]int32, n)
		tl.prev = make([]int32, n)
		tl.seg = make([]int32, n)
		tl.off = make([]int32, n)
		tl.target = int32(math.Sqrt(float64(n)))
		if tl.target < 1 {
			tl.target = 1
		}
		initSegs := (n + int(tl.target) - 1) / int(tl.target)
		segCap := 2*initSegs + 8
		tl.segNext = make([]int32, segCap)
		tl.segPrev = make([]int32, segCap)
		tl.segHead = make([]int32, segCap)
		tl.segLen = make([]int32, segCap)
		tl.segStart = make([]int32, segCap)
	}
	for i, c := range t {
		tl.next[c] = int32(t[(i+1)%n])
		tl.prev[c] = int32(t[(i-1+n)%n])
	}
	tl.first = int32(t[0])
	tl.initSegments(t)
}

// initSegments carves tour t into segments of the target length and
// resets the segment ring. Ranks are valid afterwards.
func (tl *TwoLevel) initSegments(t Tour) {
	n, target := tl.n, int(tl.target)
	nseg := 0
	for i := 0; i < n; i += target {
		end := i + target
		if end > n {
			end = n
		}
		id := int32(nseg)
		tl.segHead[id] = int32(t[i])
		tl.segLen[id] = int32(end - i)
		tl.segStart[id] = int32(i)
		for j := i; j < end; j++ {
			tl.seg[t[j]] = id
			tl.off[t[j]] = int32(j - i)
		}
		nseg++
	}
	for id := 0; id < nseg; id++ {
		tl.segNext[id] = int32((id + 1) % nseg)
		tl.segPrev[id] = int32((id - 1 + nseg) % nseg)
	}
	tl.nseg = nseg
	tl.ranksOK = true
}

// Len returns the number of cities.
func (tl *TwoLevel) Len() int { return tl.n }

// First returns the city at tour position 0: the starting city of Init,
// or the anchor of the most recent Splice. Tracking the anchor reproduces
// the rotation behavior of the array kernel this structure replaces,
// which rebuilt its tour starting at the anchor — so materialized tours
// are bit-identical between the two (see AppendTour).
func (tl *TwoLevel) First() int { return int(tl.first) }

// Succ returns the successor of city x in the tour.
func (tl *TwoLevel) Succ(x int) int { return int(tl.next[x]) }

// Pred returns the predecessor of city x in the tour.
func (tl *TwoLevel) Pred(x int) int { return int(tl.prev[x]) }

// Rank returns the position of city x in an unspecified rotation of the
// tour: successors differ by +1 mod n, and ranks cover 0..n-1, but the
// city at rank 0 is an implementation detail (the head of some segment,
// not necessarily First). Only rank differences mod n carry meaning —
// NpFrom consumes them — and only between two Rank/NpFrom calls with no
// intervening Splice. Rank revalidates the prefix sums (O(√n)) if a
// splice invalidated them.
func (tl *TwoLevel) Rank(x int) int {
	if !tl.ranksOK {
		tl.rebuildRanks()
	}
	return tl.rank(x)
}

// rank is Rank without the validity check, for use after a Rank call in
// the same epoch.
func (tl *TwoLevel) rank(x int) int {
	return int(tl.segStart[tl.seg[x]] + tl.off[x])
}

// Np returns the position of x relative to (and excluding) the anchor a:
// Np(Succ(a)) == 0, Np(Pred(a)) == n-2, Np(a) == n-1. It matches the
// pos-array arithmetic of the array kernel exactly.
func (tl *TwoLevel) Np(a, x int) int {
	return tl.NpFrom(tl.Rank(a), x)
}

// NpFrom is Np with the anchor's rank precomputed, the hot-path form: the
// search loops call Rank once per anchor and NpFrom per candidate. The
// caller must have obtained ra from Rank with no Splice in between.
func (tl *TwoLevel) NpFrom(ra, x int) int {
	d := tl.rank(x) - ra - 1
	if d < 0 {
		d += tl.n
	}
	return d
}

// rebuildRanks recomputes the segments' cumulative start positions by
// walking the segment ring from First's segment. O(number of segments).
func (tl *TwoLevel) rebuildRanks() {
	home := tl.seg[tl.first]
	// First is not necessarily its segment's head (a splice anchor lands
	// at a segment tail), so the rank-0 city is home's head, not First;
	// ranks only feed differences mod n (see Rank), so any rotation
	// anchor is as good as another.
	s := home
	pos := int32(0)
	for {
		tl.segStart[s] = pos
		pos += tl.segLen[s]
		s = tl.segNext[s]
		if s == home {
			break
		}
	}
	tl.ranksOK = true
}

// Splice performs the reversal-free segment exchange: the contiguous
// block d..e is relocated to immediately after a, turning the cycle
//
//	a b..c d..e f..a   into   a d..e b..c f..a
//
// where b = Succ(a), c = Pred(d), f = Succ(e). The caller must ensure the
// move is proper, exactly the feasibility conditions of the 3-opt search:
// 1 <= Np(a,d) <= Np(a,e) <= n-2 with d..e contiguous (equivalently: the
// block d..e contains neither a nor b). a becomes First, reproducing the
// array kernel's rotation. Amortized O(√n).
func (tl *TwoLevel) Splice(a, d, e int) {
	if tl.nseg+3 > len(tl.segHead) {
		tl.rebuild()
	}
	b := tl.next[a]
	c := tl.prev[d]
	f := tl.next[e]

	// Align segment boundaries with the three cut points: after the
	// splits b, d and f head their segments, so a, c and e are tails and
	// the block d..e is a whole chain of segments.
	tl.split(b)
	tl.split(int32(d))
	tl.split(f)

	sa := tl.seg[a]
	sd := tl.seg[d]
	se := tl.seg[e]

	// Unlink the segment chain sd..se and reinsert it after sa.
	tl.segNext[tl.segPrev[sd]] = tl.segNext[se]
	tl.segPrev[tl.segNext[se]] = tl.segPrev[sd]
	after := tl.segNext[sa]
	tl.segNext[sa] = sd
	tl.segPrev[sd] = sa
	tl.segNext[se] = after
	tl.segPrev[after] = se

	// City-level relink: a->d, e->b, c->f.
	tl.next[a] = int32(d)
	tl.prev[d] = int32(a)
	tl.next[e] = b
	tl.prev[b] = int32(e)
	tl.next[c] = f
	tl.prev[f] = c

	tl.first = int32(a)
	tl.ranksOK = false
}

// split makes city x the head of a segment by cutting its segment in two
// before x. No-op when x already heads one. O(segment length).
func (tl *TwoLevel) split(x int32) {
	if tl.off[x] == 0 {
		return
	}
	s := tl.seg[x]
	id := int32(tl.nseg)
	tl.nseg++
	keep := tl.off[x]
	moved := tl.segLen[s] - keep
	tl.segHead[id] = x
	tl.segLen[id] = moved
	tl.segLen[s] = keep
	c := x
	for i := int32(0); i < moved; i++ {
		tl.seg[c] = id
		tl.off[c] = i
		c = tl.next[c]
	}
	// Ring-insert the new segment after its source.
	after := tl.segNext[s]
	tl.segNext[s] = id
	tl.segPrev[id] = s
	tl.segNext[id] = after
	tl.segPrev[after] = id
	// Ranks of the two halves are still consistent with segStart if it
	// was valid (start of the right half = start of s + keep).
	tl.segStart[id] = tl.segStart[s] + keep
}

// rebuild re-segments the structure at the target length, preserving the
// current tour and rotation. Called when splits have doubled the segment
// count; amortized over the >= initial-segment-count splices in between,
// its O(n) cost is O(√n) per splice.
func (tl *TwoLevel) rebuild() {
	if cap(tl.scratch) < tl.n {
		tl.scratch = make(Tour, 0, tl.n)
	}
	tl.scratch = tl.AppendTour(tl.scratch)
	tl.initSegments(tl.scratch)
}

// AppendTour appends the tour to dst[:0] in order, starting at First, and
// returns it. With a dst of capacity n it allocates nothing.
func (tl *TwoLevel) AppendTour(dst Tour) Tour {
	dst = dst[:0]
	c := tl.first
	for i := 0; i < tl.n; i++ {
		dst = append(dst, int(c))
		c = tl.next[c]
	}
	return dst
}

// Tour returns the tour as a fresh slice, starting at First.
func (tl *TwoLevel) Tour() Tour {
	return tl.AppendTour(make(Tour, 0, tl.n))
}
