package tsp

import "testing"

// bruteAssignment finds the minimum-cost fixed-point-free permutation by
// exhaustive search.
func bruteAssignment(m *Matrix) Cost {
	n := m.Len()
	used := make([]bool, n)
	const inf = Cost(1) << 62
	best := inf
	var rec func(i int, acc Cost)
	rec = func(i int, acc Cost) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < n; j++ {
			if j == i || used[j] {
				continue
			}
			used[j] = true
			rec(i+1, acc+m.At(i, j))
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func TestAssignmentMatchesBruteForce(t *testing.T) {
	for n := 2; n <= 7; n++ {
		for seed := int64(0); seed < 4; seed++ {
			m := randMatrix(n, 100, seed*17+int64(n))
			got := AssignmentBound(m)
			want := bruteAssignment(m)
			if got != want {
				t.Fatalf("n=%d seed=%d: Hungarian %d != brute force %d", n, seed, got, want)
			}
		}
	}
}

func TestAssignmentSolveIsDerangement(t *testing.T) {
	m := randMatrix(12, 500, 9)
	sigma := AssignmentSolve(m)
	seen := make([]bool, 12)
	for i, j := range sigma {
		if i == j {
			t.Fatalf("sigma(%d) = %d: self-loops are forbidden", i, j)
		}
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
}

func TestAssignmentBoundBelowTourOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMatrix(8, 300, seed+200)
		ap := AssignmentBound(m)
		_, opt := SolveExact(m)
		if ap > opt {
			t.Fatalf("seed %d: AP bound %d exceeds tour optimum %d", seed, ap, opt)
		}
	}
}

func TestAssignmentTightOnRing(t *testing.T) {
	// When the cheapest cycle cover is a single Hamiltonian ring, AP
	// equals the tour optimum — the regime where patching algorithms win,
	// per the paper's appendix.
	n := 6
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	if got := AssignmentBound(m); got != Cost(n) {
		t.Fatalf("AP on ring = %d, want %d", got, n)
	}
}

func TestAssignmentLooseOnTwoCycleInstance(t *testing.T) {
	// Two cheap disjoint 2-cycles make the AP bound much smaller than the
	// tour optimum — the regime the paper's appendix reports for a
	// majority of branch-alignment instances.
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(2, 3, 1)
	m.Set(3, 2, 1)
	ap := AssignmentBound(m)
	_, opt := SolveExact(m)
	if ap != 4 {
		t.Fatalf("AP = %d, want 4 (two 2-cycles)", ap)
	}
	if opt <= ap {
		t.Fatalf("tour optimum %d should exceed AP bound %d here", opt, ap)
	}
}

func TestAssignmentSingleCity(t *testing.T) {
	m := NewMatrix(1)
	if got := AssignmentBound(m); got != 0 {
		t.Fatalf("AP on single city = %d, want 0", got)
	}
}
