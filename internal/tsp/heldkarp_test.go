package tsp

import (
	"math"
	"testing"
)

func TestHeldKarpSymNeverExceedsOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := randSymMatrix(9, 200, seed)
		_, opt := SolveExact(m)
		bound := HeldKarpSym(m, HeldKarpOptions{UpperBound: opt})
		if bound > float64(opt)+1e-6 {
			t.Fatalf("seed %d: HK bound %.3f exceeds optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpSymTightOnRing(t *testing.T) {
	// A cheap symmetric ring in an expensive clique: the optimal tour is
	// the ring and the 1-tree relaxation is exact there.
	n := 10
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.Set(i, j, 1)
		m.Set(j, i, 1)
	}
	bound := HeldKarpSym(m, HeldKarpOptions{})
	if math.Abs(bound-float64(n)) > 1e-6 {
		t.Fatalf("HK bound on ring = %.6f, want %d", bound, n)
	}
}

func TestHeldKarpSymReasonablyTightOnRandomMetric(t *testing.T) {
	// On random symmetric instances the HK bound should be within a modest
	// factor of the optimum (empirically within a few percent; we assert a
	// loose 20% to keep the test robust).
	for seed := int64(0); seed < 4; seed++ {
		m := randSymMatrix(10, 500, seed+50)
		_, opt := SolveExact(m)
		bound := HeldKarpSym(m, HeldKarpOptions{UpperBound: opt})
		if bound < 0.8*float64(opt) {
			t.Errorf("seed %d: HK bound %.1f is below 80%% of optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpDirectedBoundsDTSPOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMatrix(8, 300, seed+70)
		_, opt := SolveExact(m)
		bound := HeldKarpDirected(m, HeldKarpOptions{UpperBound: opt})
		if bound > float64(opt)+1e-6 {
			t.Fatalf("seed %d: directed HK bound %.3f exceeds optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpSymPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HeldKarpSym should reject asymmetric matrices")
		}
	}()
	m := randMatrix(5, 100, 1)
	HeldKarpSym(m, HeldKarpOptions{})
}

func TestHeldKarpTinyInstances(t *testing.T) {
	m := FromRows([][]Cost{{0, 2}, {2, 0}})
	if got := HeldKarpSym(m, HeldKarpOptions{}); got != 4 {
		t.Fatalf("2-city HK = %v, want 4", got)
	}
}

// TestHeldKarpWarmStartResumesBestBound pins the warm-start contract:
// the stored state is the best iterate's pi vector, so a warm-started
// call — even one allowed a single iterate — reproduces at least the
// bound the state came from, and a longer warm-started ascent never
// reports less.
func TestHeldKarpWarmStartResumesBestBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sp := randSparse(40, 400, 0.2, seed+10)
		warm := &HKWarmState{}
		cold := HeldKarpBound(sp, HeldKarpOptions{Iterations: 60, Warm: warm})
		if len(warm.Pi) != 2*40 {
			t.Fatalf("seed %d: warm state has %d potentials, want %d", seed, len(warm.Pi), 2*40)
		}
		resume := HeldKarpBound(sp, HeldKarpOptions{Iterations: 1, Warm: warm})
		if resume.Bound < cold.Bound {
			t.Fatalf("seed %d: one warm iterate bound %.6f below cold best %.6f", seed, resume.Bound, cold.Bound)
		}
		full := HeldKarpBound(sp, HeldKarpOptions{Iterations: 60, Warm: warm})
		if full.Bound < cold.Bound {
			t.Fatalf("seed %d: warm ascent bound %.6f below cold best %.6f", seed, full.Bound, cold.Bound)
		}
		// Warm-started bounds stay valid lower bounds.
		if tour := CycleCost(sp, NearestNeighbor(sp, 0, nil)); full.Bound > float64(tour)+1e-6 {
			t.Fatalf("seed %d: warm bound %.6f exceeds a tour cost %d", seed, full.Bound, tour)
		}
	}
}

// TestHeldKarpWarmStateMismatchIgnored: a state sized for a different
// instance is ignored (cold start, bit-identical to no state) and then
// overwritten with this instance's dual vector.
func TestHeldKarpWarmStateMismatchIgnored(t *testing.T) {
	sp := randSparse(30, 300, 0.2, 3)
	cold := HeldKarpBound(sp, HeldKarpOptions{Iterations: 40})
	warm := &HKWarmState{Pi: make([]float64, 7)}
	got := HeldKarpBound(sp, HeldKarpOptions{Iterations: 40, Warm: warm})
	if got.Bound != cold.Bound || got.Iterations != cold.Iterations {
		t.Fatalf("mismatched warm state perturbed the ascent: %+v vs %+v", got, cold)
	}
	if len(warm.Pi) != 2*30 {
		t.Fatalf("state not overwritten for this instance: %d potentials, want %d", len(warm.Pi), 2*30)
	}
}

// TestHeldKarpStallStopsEarlyWithValidBound: the epsilon-over-window
// rule only truncates the maximization — the stalled bound is a prefix
// of the full ascent's trajectory, so it is never tighter and always
// valid, and a triggered stall runs strictly fewer iterates.
func TestHeldKarpStallStopsEarlyWithValidBound(t *testing.T) {
	sawStall := false
	for seed := int64(0); seed < 6; seed++ {
		sp := randSparse(60, 500, 0.15, seed+90)
		full := HeldKarpBound(sp, HeldKarpOptions{Iterations: 400})
		stalled := HeldKarpBound(sp, HeldKarpOptions{Iterations: 400, StallWindow: 10})
		if stalled.Truncated {
			t.Fatalf("seed %d: stall mislabeled as budget truncation", seed)
		}
		if stalled.Bound > full.Bound {
			t.Fatalf("seed %d: stalled bound %.6f exceeds full-ascent bound %.6f", seed, stalled.Bound, full.Bound)
		}
		if stalled.Stalled {
			sawStall = true
			// The stalled run is a prefix of the full run (it can tie
			// only when the full ascent ended at the same iterate).
			if stalled.Iterations > full.Iterations {
				t.Fatalf("seed %d: stalled after %d iterates, full ascent ran %d", seed, stalled.Iterations, full.Iterations)
			}
		}
	}
	if !sawStall {
		t.Fatal("no instance stalled: the early-termination path went unexercised")
	}
}
