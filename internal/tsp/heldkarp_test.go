package tsp

import (
	"math"
	"testing"
)

func TestHeldKarpSymNeverExceedsOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := randSymMatrix(9, 200, seed)
		_, opt := SolveExact(m)
		bound := HeldKarpSym(m, HeldKarpOptions{UpperBound: opt})
		if bound > float64(opt)+1e-6 {
			t.Fatalf("seed %d: HK bound %.3f exceeds optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpSymTightOnRing(t *testing.T) {
	// A cheap symmetric ring in an expensive clique: the optimal tour is
	// the ring and the 1-tree relaxation is exact there.
	n := 10
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.Set(i, j, 1)
		m.Set(j, i, 1)
	}
	bound := HeldKarpSym(m, HeldKarpOptions{})
	if math.Abs(bound-float64(n)) > 1e-6 {
		t.Fatalf("HK bound on ring = %.6f, want %d", bound, n)
	}
}

func TestHeldKarpSymReasonablyTightOnRandomMetric(t *testing.T) {
	// On random symmetric instances the HK bound should be within a modest
	// factor of the optimum (empirically within a few percent; we assert a
	// loose 20% to keep the test robust).
	for seed := int64(0); seed < 4; seed++ {
		m := randSymMatrix(10, 500, seed+50)
		_, opt := SolveExact(m)
		bound := HeldKarpSym(m, HeldKarpOptions{UpperBound: opt})
		if bound < 0.8*float64(opt) {
			t.Errorf("seed %d: HK bound %.1f is below 80%% of optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpDirectedBoundsDTSPOptimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMatrix(8, 300, seed+70)
		_, opt := SolveExact(m)
		bound := HeldKarpDirected(m, HeldKarpOptions{UpperBound: opt})
		if bound > float64(opt)+1e-6 {
			t.Fatalf("seed %d: directed HK bound %.3f exceeds optimum %d", seed, bound, opt)
		}
	}
}

func TestHeldKarpSymPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HeldKarpSym should reject asymmetric matrices")
		}
	}()
	m := randMatrix(5, 100, 1)
	HeldKarpSym(m, HeldKarpOptions{})
}

func TestHeldKarpTinyInstances(t *testing.T) {
	m := FromRows([][]Cost{{0, 2}, {2, 0}})
	if got := HeldKarpSym(m, HeldKarpOptions{}); got != 4 {
		t.Fatalf("2-city HK = %v, want 4", got)
	}
}
