package tsp

// Or-opt relocation: the second local-search move family. A contiguous
// block of 1 to 3 cities s..e is cut out (reconnecting pred(s) -> succ(e))
// and reinserted between a candidate city c and its successor, turning
//
//	p s..e q .. c d ..   into   p q .. c s..e d ..
//
// (and symmetrically when c precedes p). Like the 3-opt segment exchange,
// the move is reversal-free — on the locked symmetric transformation it
// is the same three-edge exchange, just found from the block's
// perspective instead of the cut edge's — so it stays within the move set
// the paper's transformation admits. What it adds is reach: the 3-opt
// search only examines moves whose first reconnection edge (a, d) is on
// a's candidate list, while the Or-opt scan requires the insertion edge
// (c, s) to be on s's candidate list. Short blocks that would profit from
// moving next to a far-away candidate are found here and missed there.
//
// The scan is candidate-list bounded and first-improvement, with the
// standard positive-partial-gain restriction: candidates c are taken from
// nb.In[s] in increasing cost order and the scan breaks as soon as
// cost(c,s) >= cost(p,s) (the sorted-list analogue of the 3-opt g1
// break). Accepted moves wake the six touched endpoints in the shared
// queue, so the families interleave until the tour is locally optimal
// under both.
//
// Gating: Or-opt changes tours (it strictly improves a 3-opt local
// optimum or leaves it unchanged), so unlike the phase-1 two-level swap
// it is NOT bit-identical to the historical kernel. It is enabled by the
// production solver (SolveOptions.DisableOrOpt gates it off) and
// quality-gated by quality_test.go (HK-gap mean <= 0.3%) and the
// check/vet invariants; see DESIGN.md section 12.

// orOptFrom searches for an improving relocation of a block of 1..3
// cities starting at s, applying the first improvement found.
func (o *ThreeOpt) orOptFrom(s int) bool {
	n := o.n
	p := o.tl.Pred(s)
	base := o.m.At(p, s)
	o.tl.Rank(s) // validate ranks once; the scan uses rank/NpFrom
	e := s
	for l := 1; l <= 3 && l <= n-2; l++ {
		if l > 1 {
			e = o.tl.Succ(e)
			if e == p {
				break // block would swallow everything but p
			}
		}
		q := o.tl.Succ(e)
		// Gain of closing the gap p->q and of the block's old exit edge;
		// constant across candidates for this block length. At(p,q) reads
		// the diagonal only in degenerate all-block cases that the npS
		// bounds reject below, where the scan applies nothing.
		qGain := o.m.At(e, q) - o.m.At(p, q)
		for _, c := range o.nb.In[s] {
			o.stats.OrTried++
			g1 := base - o.m.At(c, s)
			if g1 <= 0 {
				break // nb.In[s] is sorted by cost
			}
			// c must lie strictly outside the block (and c != p, which
			// would re-create the removed edge): relative to c, the block
			// must sit at positions [1, n-2] without wrapping past c.
			npS := o.tl.NpFrom(o.tl.rank(c), s)
			if npS < 1 || npS > n-1-l {
				continue
			}
			d := o.tl.Succ(c)
			g2 := g1 + o.m.At(c, d) - o.m.At(e, d)
			if g2 <= 0 {
				continue
			}
			total := g2 + qGain
			if total <= 0 {
				continue
			}
			o.tl.Splice(c, s, e)
			o.c -= total
			o.stats.OrAccepted++
			o.recordSplice(l)
			o.wake(p, q, s, e, c, d)
			return true
		}
	}
	return false
}
