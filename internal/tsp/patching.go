package tsp

// SolvePatching is the classic assignment-patching heuristic for the
// DTSP (Karp 1979): solve the assignment problem (a minimum-cost cycle
// cover), then repeatedly patch pairs of cycles together, each time
// choosing the merge with the smallest cost increase. Patching two
// cycles replaces arcs (i, sigma(i)) and (j, sigma(j)) from different
// cycles with (i, sigma(j)) and (j, sigma(i)).
//
// The paper's appendix explains why this family is the wrong tool for
// branch alignment: it excels exactly when the AP bound is close to the
// tour optimum (random matrices), and "a majority of the instances
// arising in the branch alignment problem do not have this property".
// The implementation exists to reproduce that comparison.
func SolvePatching(m Costs) (Tour, Cost) {
	n := m.Len()
	if n == 1 {
		return Tour{0}, 0
	}
	sigma := AssignmentSolve(m)
	// Decompose into cycles; cycleID[i] identifies the cycle of city i.
	cycleID := make([]int, n)
	for i := range cycleID {
		cycleID[i] = -1
	}
	numCycles := 0
	for i := 0; i < n; i++ {
		if cycleID[i] != -1 {
			continue
		}
		for j := i; cycleID[j] == -1; j = sigma[j] {
			cycleID[j] = numCycles
		}
		numCycles++
	}
	// Greedy patching: merge the globally cheapest pair of cycles until
	// one remains.
	for numCycles > 1 {
		bestDelta := Cost(1) << 62
		bestI, bestJ := -1, -1
		for i := 0; i < n; i++ {
			si := sigma[i]
			for j := 0; j < n; j++ {
				if cycleID[i] == cycleID[j] {
					continue
				}
				sj := sigma[j]
				delta := m.At(i, sj) + m.At(j, si) - m.At(i, si) - m.At(j, sj)
				if delta < bestDelta {
					bestDelta = delta
					bestI, bestJ = i, j
				}
			}
		}
		// Swap successors and relabel the absorbed cycle.
		si, sj := sigma[bestI], sigma[bestJ]
		sigma[bestI], sigma[bestJ] = sj, si
		from, to := cycleID[bestJ], cycleID[bestI]
		for k := 0; k < n; k++ {
			if cycleID[k] == from {
				cycleID[k] = to
			}
		}
		numCycles--
	}
	tour := make(Tour, 0, n)
	for c := 0; len(tour) < n; c = sigma[c] {
		tour = append(tour, c)
	}
	return tour, CycleCost(m, tour)
}
