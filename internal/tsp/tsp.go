// Package tsp implements the Traveling Salesman Problem machinery used by
// the branch-alignment algorithm of Young, Johnson, Karger and Smith
// ("Near-optimal Intraprocedural Branch Alignment", PLDI 1997).
//
// The package provides:
//
//   - dense asymmetric cost matrices (the DTSP instances produced by the
//     branch-alignment reduction),
//   - tour-construction heuristics (nearest neighbor and greedy edge
//     matching, both with optional randomization),
//   - a reversal-free directed 3-opt local search, which is exactly the
//     move set that symmetric 3-opt induces on the standard 2-city
//     DTSP-to-STSP transformation when the intra-city edges are locked
//     (see Sym); this is the engine behind IteratedThreeOpt,
//   - the iterated local search protocol from the paper (double-bridge
//     kicks, multiple randomized starts),
//   - the Held-Karp lower bound computed on the symmetrized instance via
//     Lagrangian (1-tree) subgradient ascent,
//   - the assignment-problem lower bound (Hungarian algorithm), and
//   - exact solvers (dynamic programming) for small instances, used both
//     in tests and to solve small procedures outright.
//
// All costs are int64 penalty cycles. Infeasible edges are expressed with
// large-but-finite costs (see Matrix.Forbid) so that arithmetic never
// overflows for realistic instance sizes.
package tsp

import "fmt"

// Cost is the unit of edge cost. For branch alignment a Cost is a number
// of pipeline penalty cycles.
type Cost = int64

// Matrix is a dense, possibly asymmetric cost matrix over n cities.
// Matrix values are row-major: cost of the directed edge i->j is stored at
// index i*n+j. The diagonal is ignored by all algorithms in this package.
type Matrix struct {
	n int
	c []Cost
}

// NewMatrix returns an n-city matrix with all costs zero.
func NewMatrix(n int) *Matrix {
	if n < 1 {
		panic(fmt.Sprintf("tsp: NewMatrix(%d): need at least one city", n))
	}
	return &Matrix{n: n, c: make([]Cost, n*n)}
}

// FromRows builds a matrix from a square slice of rows. It panics if the
// input is not square.
func FromRows(rows [][]Cost) *Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("tsp: FromRows: row %d has %d entries, want %d", i, len(row), n))
		}
		copy(m.c[i*n:(i+1)*n], row)
	}
	return m
}

// Len returns the number of cities.
func (m *Matrix) Len() int { return m.n }

// At returns the cost of the directed edge i->j.
func (m *Matrix) At(i, j int) Cost { return m.c[i*m.n+j] }

// Set assigns the cost of the directed edge i->j.
func (m *Matrix) Set(i, j int, c Cost) { m.c[i*m.n+j] = c }

// Add increments the cost of the directed edge i->j.
func (m *Matrix) Add(i, j int, c Cost) { m.c[i*m.n+j] += c }

// Forbid returns a cost strictly larger than the cost of any tour that
// avoids forbidden edges: one plus the sum of all positive entries. Using
// it for "must not use" edges keeps every optimal (and every locally
// optimal) tour away from them whenever a feasible tour exists, without
// risking overflow the way a fixed huge constant would.
func (m *Matrix) Forbid() Cost {
	var sum Cost
	for _, v := range m.c {
		if v > 0 {
			sum += v
		}
	}
	return sum + 1
}

// IsSymmetric reports whether the matrix is symmetric.
func (m *Matrix) IsSymmetric() bool {
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := make([]Cost, len(m.c))
	copy(c, m.c)
	return &Matrix{n: m.n, c: c}
}

// Tour is a cyclic permutation of the cities 0..n-1. Tour[k] is the k-th
// city visited; the tour closes from the last city back to the first.
type Tour []int

// Valid reports whether t is a permutation of 0..n-1.
func (t Tour) Valid(n int) bool {
	if len(t) != n {
		return false
	}
	seen := make([]bool, n)
	for _, c := range t {
		if c < 0 || c >= n || seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// Clone returns a copy of the tour.
func (t Tour) Clone() Tour {
	u := make(Tour, len(t))
	copy(u, t)
	return u
}

// CycleCost returns the cost of traversing t as a directed cycle under m:
// the sum of m.At(t[k], t[k+1]) plus the closing edge.
func CycleCost(m Costs, t Tour) Cost {
	if len(t) == 0 {
		return 0
	}
	var sum Cost
	for k := 0; k+1 < len(t); k++ {
		sum += m.At(t[k], t[k+1])
	}
	sum += m.At(t[len(t)-1], t[0])
	return sum
}

// PathCost returns the cost of traversing t as a directed open walk under
// m (no closing edge).
func PathCost(m Costs, t Tour) Cost {
	var sum Cost
	for k := 0; k+1 < len(t); k++ {
		sum += m.At(t[k], t[k+1])
	}
	return sum
}

// RotateTo rotates the tour in place so that city c is first. It panics if
// c does not occur in the tour.
func (t Tour) RotateTo(c int) {
	at := -1
	for i, v := range t {
		if v == c {
			at = i
			break
		}
	}
	if at < 0 {
		panic(fmt.Sprintf("tsp: RotateTo(%d): city not in tour", c))
	}
	if at == 0 {
		return
	}
	// Three-reversal rotation: reversing the two halves and then the
	// whole slice lands t[at:] in front of t[:at] without a scratch
	// allocation (the solver rotates every layout it emits).
	t[:at].reverse()
	t[at:].reverse()
	t.reverse()
}

// reverse flips the tour in place.
func (t Tour) reverse() {
	for i, j := 0, len(t)-1; i < j; i, j = i+1, j-1 {
		t[i], t[j] = t[j], t[i]
	}
}
