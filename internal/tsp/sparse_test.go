package tsp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randSparse returns a deterministic random sparse instance: per-row
// defaults in [0, maxCost) and, with the given probability per column, an
// exception value in [0, maxCost).
func randSparse(n int, maxCost int64, excProb float64, seed int64) *SparseMatrix {
	rng := rand.New(rand.NewSource(seed))
	b := NewSparseBuilder(n)
	for i := 0; i < n; i++ {
		def := Cost(rng.Int63n(maxCost))
		var cols []int
		var vals []Cost
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < excProb {
				cols = append(cols, j)
				vals = append(vals, Cost(rng.Int63n(maxCost)))
			}
		}
		b.AddRow(def, cols, vals)
	}
	return b.Finish()
}

func TestSparseMatrixAtMatchesDense(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%30) + 1
		sp := randSparse(n, 500, 0.3, int64(seedRaw))
		d := sp.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sp.At(i, j) != d.At(i, j) {
					return false
				}
			}
		}
		return sp.Forbid() == d.Forbid() && ForbidCost(sp) == ForbidCost(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSparsifyIsCanonical(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%20) + 1
		sp := randSparse(n, 6, 0.5, int64(seedRaw)+17) // few values -> default elections matter
		a := Sparsify(sp)
		bb := Sparsify(sp.Dense())
		if !reflect.DeepEqual(a, bb) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != sp.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNeighborsAndConstructionsAgreeOnSparse(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%24) + 2
		sp := randSparse(n, 200, 0.25, int64(seedRaw)+3)
		d := sp.Dense()
		forbid := ForbidCost(sp)
		na := BuildNeighbors(sp, 5, forbid)
		nd := BuildNeighbors(d, 5, forbid)
		if !reflect.DeepEqual(na, nd) {
			return false
		}
		start := int(seedRaw) % n
		if !reflect.DeepEqual(NearestNeighbor(sp, start, nil), NearestNeighbor(d, start, nil)) {
			return false
		}
		r1 := rand.New(rand.NewSource(int64(seedRaw)))
		r2 := rand.New(rand.NewSource(int64(seedRaw)))
		if !reflect.DeepEqual(NearestNeighbor(sp, start, r1), NearestNeighbor(d, start, r2)) {
			return false
		}
		r1 = rand.New(rand.NewSource(int64(seedRaw) + 1))
		r2 = rand.New(rand.NewSource(int64(seedRaw) + 1))
		return reflect.DeepEqual(GreedyEdge(sp, r1), GreedyEdge(d, r2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveIdenticalOnSparseAndDense(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		// The size range crosses denseSolveCutover, so the property checks
		// the densified small-instance path AND genuinely sparse local
		// search.
		n := int(nRaw%34) + 2
		sp := randSparse(n, 300, 0.2, int64(seedRaw)+11)
		opt := PaperSolveOptions(int64(seedRaw))
		opt.ExactThreshold = 6 // exercise both the exact and local-search paths
		ra := Solve(sp, opt)
		rd := Solve(sp.Dense(), opt)
		return reflect.DeepEqual(ra, rd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHeldKarpDirectedIdenticalOnSparseAndDense(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%12) + 3
		sp := randSparse(n, 120, 0.3, int64(seedRaw)+29)
		d := sp.Dense()
		opt := HeldKarpOptions{Iterations: 60}
		if HeldKarpDirected(sp, opt) != HeldKarpDirected(d, opt) {
			return false
		}
		return AssignmentBound(sp) == AssignmentBound(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSparseHeldKarpIsValidBound(t *testing.T) {
	// The implicit 1-tree relaxes exception edges above their row default,
	// so it can be looser than the dense reference — but it must stay a
	// lower bound on the optimum, and AP <= optimum must hold too.
	f := func(seedRaw uint16) bool {
		n := 7
		sp := randSparse(n, 150, 0.35, int64(seedRaw)+41)
		_, opt := SolveExact(sp)
		if AssignmentBound(sp) > opt {
			return false
		}
		b := HeldKarpDirected(sp, HeldKarpOptions{UpperBound: opt, Iterations: 120})
		return b <= float64(opt)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseThreeOptMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		n := 15 + int(seed)
		sp := randSparse(n, 400, 0.2, seed+57)
		d := sp.Dense()
		start := IdentityTour(n)
		oa := NewThreeOpt(sp, nil, start.Clone())
		od := NewThreeOpt(d, nil, start.Clone())
		ca, cd := oa.Optimize(), od.Optimize()
		if ca != cd || !reflect.DeepEqual(oa.Tour(), od.Tour()) {
			t.Fatalf("seed %d: sparse 3-opt (%d, %v) != dense (%d, %v)", seed, ca, oa.Tour(), cd, od.Tour())
		}
	}
}

func TestSparseBuilderValidates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("diagonal column", func() {
		b := NewSparseBuilder(3)
		b.AddRow(1, []int{1}, []Cost{2})
		b.AddRow(1, []int{1}, []Cost{2}) // col 1 == row 1
	})
	mustPanic("unsorted columns", func() {
		b := NewSparseBuilder(3)
		b.AddRow(1, []int{2, 1}, []Cost{2, 3})
	})
	mustPanic("too few rows", func() {
		b := NewSparseBuilder(2)
		b.AddRow(0, nil, nil)
		b.Finish()
	})
	mustPanic("length mismatch", func() {
		b := NewSparseBuilder(2)
		b.AddRow(0, []int{1}, nil)
	})
}
