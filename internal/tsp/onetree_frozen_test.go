package tsp

import (
	"container/heap"
	"context"
	"math"
	"sort"
	"testing"
	"time"
)

// This file pins the rewritten sparseOneTree kernel (indexed heap,
// incremental re-sort, dense scan path, pooled workspace) bit-identical
// to the container/heap + sort.Slice implementation it replaced. The
// frozen reference below is that original implementation, copied
// verbatim with renamed types — the same playbook twolevel_test.go uses
// for the array-tour 3-opt kernel.

// frozenOneTree is the pre-rewrite sparseOneTree, kept as the oracle.
type frozenOneTree struct {
	sp *SparseMatrix
	n  int
	N  int
	L  Cost

	colStart []int
	colRows  []int
	colVals  []Cost

	pi  []float64
	deg []int

	inTree []bool
	key    []float64
	par    []int
	h      frozenOfferHeap

	inByPi     []int
	outByDefPi []int
	outByPi    []int
}

type frozenOffer struct {
	val  float64
	node int
	par  int
}

type frozenOfferHeap []frozenOffer

func (h frozenOfferHeap) Len() int { return len(h) }
func (h frozenOfferHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val < h[j].val
	}
	return h[i].node < h[j].node
}
func (h frozenOfferHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frozenOfferHeap) Push(x interface{}) { *h = append(*h, x.(frozenOffer)) }
func (h *frozenOfferHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func newFrozenOneTree(sp *SparseMatrix) *frozenOneTree {
	n := sp.Len()
	N := 2 * n
	t := &frozenOneTree{
		sp:         sp,
		n:          n,
		N:          N,
		L:          sp.Forbid(),
		pi:         make([]float64, N),
		deg:        make([]int, N),
		inTree:     make([]bool, N),
		key:        make([]float64, N),
		par:        make([]int, N),
		inByPi:     make([]int, 0, n-1),
		outByDefPi: make([]int, 0, n),
		outByPi:    make([]int, 0, n),
	}
	t.colStart = make([]int, n+1)
	for _, c := range sp.cols {
		t.colStart[c+1]++
	}
	for j := 0; j < n; j++ {
		t.colStart[j+1] += t.colStart[j]
	}
	t.colRows = make([]int, len(sp.cols))
	t.colVals = make([]Cost, len(sp.cols))
	fill := append([]int(nil), t.colStart[:n]...)
	for i := 0; i < n; i++ {
		cols, vals := sp.Row(i)
		for k, c := range cols {
			t.colRows[fill[c]] = i
			t.colVals[fill[c]] = vals[k]
			fill[c]++
		}
	}
	return t
}

func (t *frozenOneTree) run() float64 {
	n, N := t.n, t.N
	pi := t.pi
	for i := range t.deg {
		t.deg[i] = 0
		t.inTree[i] = false
		t.key[i] = otUnreached
		t.par[i] = -1
	}
	t.h = t.h[:0]

	t.inByPi = t.inByPi[:0]
	t.outByDefPi = t.outByDefPi[:0]
	t.outByPi = t.outByPi[:0]
	for j := 1; j < n; j++ {
		t.inByPi = append(t.inByPi, 2*j)
	}
	for i := 0; i < n; i++ {
		t.outByDefPi = append(t.outByDefPi, 2*i+1)
		t.outByPi = append(t.outByPi, 2*i+1)
	}
	sort.Slice(t.inByPi, func(a, b int) bool {
		x, y := t.inByPi[a], t.inByPi[b]
		if pi[x] != pi[y] {
			return pi[x] < pi[y]
		}
		return x < y
	})
	defPi := func(out int) float64 { return float64(t.sp.RowDefault(out/2)) + pi[out] }
	sort.Slice(t.outByDefPi, func(a, b int) bool {
		x, y := t.outByDefPi[a], t.outByDefPi[b]
		if defPi(x) != defPi(y) {
			return defPi(x) < defPi(y)
		}
		return x < y
	})
	sort.Slice(t.outByPi, func(a, b int) bool {
		x, y := t.outByPi[a], t.outByPi[b]
		if pi[x] != pi[y] {
			return pi[x] < pi[y]
		}
		return x < y
	})
	inHead, outDefHead, outPiHead := 0, 0, 0

	bestDefOut, bestDefOutArg := otUnreached, -1
	bestPiIn, bestPiInArg := otUnreached, -1
	bestPiOut, bestPiOutArg := otUnreached, -1
	L := float64(t.L)

	improve := func(node int, val float64, par int) {
		if val < t.key[node] {
			t.key[node] = val
			t.par[node] = par
			heap.Push(&t.h, frozenOffer{val, node, par})
		}
	}
	join := func(v int) {
		t.inTree[v] = true
		if w := v ^ 1; w != 0 && !t.inTree[w] {
			improve(w, -L+pi[v]+pi[w], v)
		}
		if v&1 == 1 {
			i := v / 2
			if d := defPi(v); d < bestDefOut {
				bestDefOut, bestDefOutArg = d, v
			}
			if pi[v] < bestPiOut {
				bestPiOut, bestPiOutArg = pi[v], v
			}
			def := float64(t.sp.RowDefault(i))
			cols, vals := t.sp.Row(i)
			for k, j := range cols {
				if c := float64(vals[k]); c < def {
					if u := 2 * j; u != 0 && !t.inTree[u] {
						improve(u, c+pi[v]+pi[u], v)
					}
				}
			}
		} else {
			j := v / 2
			if pi[v] < bestPiIn {
				bestPiIn, bestPiInArg = pi[v], v
			}
			for k := t.colStart[j]; k < t.colStart[j+1]; k++ {
				i := t.colRows[k]
				if c := float64(t.colVals[k]); c < float64(t.sp.RowDefault(i)) {
					if u := 2*i + 1; !t.inTree[u] {
						improve(u, c+pi[v]+pi[u], v)
					}
				}
			}
		}
	}

	total := 0.0
	join(1)
	for count := 1; count < N-1; count++ {
		var bestVal = otUnreached
		var bestNode, bestPar = -1, -1
		for len(t.h) > 0 {
			top := t.h[0]
			if t.inTree[top.node] || top.val > t.key[top.node] {
				heap.Pop(&t.h)
				continue
			}
			bestVal, bestNode, bestPar = top.val, top.node, top.par
			break
		}
		for inHead < len(t.inByPi) && t.inTree[t.inByPi[inHead]] {
			inHead++
		}
		if inHead < len(t.inByPi) {
			v := t.inByPi[inHead]
			ch, par := bestDefOut, bestDefOutArg
			if fb := L + bestPiIn; fb < ch {
				ch, par = fb, bestPiInArg
			}
			if ch < otUnreached {
				if val := ch + pi[v]; val < bestVal || (val == bestVal && v < bestNode) {
					bestVal, bestNode, bestPar = val, v, par
				}
			}
		}
		for outDefHead < len(t.outByDefPi) && t.inTree[t.outByDefPi[outDefHead]] {
			outDefHead++
		}
		if outDefHead < len(t.outByDefPi) && bestPiIn < otUnreached {
			v := t.outByDefPi[outDefHead]
			if val := defPi(v) + bestPiIn; val < bestVal || (val == bestVal && v < bestNode) {
				bestVal, bestNode, bestPar = val, v, bestPiInArg
			}
		}
		for outPiHead < len(t.outByPi) && t.inTree[t.outByPi[outPiHead]] {
			outPiHead++
		}
		if outPiHead < len(t.outByPi) && bestPiOut < otUnreached {
			v := t.outByPi[outPiHead]
			if val := L + bestPiOut + pi[v]; val < bestVal || (val == bestVal && v < bestNode) {
				bestVal, bestNode, bestPar = val, v, bestPiOutArg
			}
		}
		if bestNode < 0 {
			break
		}
		total += bestVal
		t.deg[bestNode]++
		t.deg[bestPar]++
		join(bestNode)
	}

	best1, best2 := otUnreached, otUnreached
	arg1, arg2 := -1, -1
	for b := 1; b < N; b++ {
		var c float64
		switch {
		case b == 1:
			c = -L
		case b&1 == 1:
			c = float64(t.sp.At(b/2, 0))
		default:
			c = L
		}
		d := c + pi[0] + pi[b]
		switch {
		case d < best1:
			best2, arg2 = best1, arg1
			best1, arg1 = d, b
		case d < best2:
			best2, arg2 = d, b
		}
	}
	total += best1 + best2
	t.deg[0] += 2
	t.deg[arg1]++
	t.deg[arg2]++
	return total
}

// hkAscentStep applies the subgradient update HeldKarpBound performs,
// shared by the lockstep drivers below so both kernels see the exact
// float sequence the production ascent produces.
func hkAscentStep(pi []float64, deg []int, alpha, ub, bound float64) (step float64) {
	var norm float64
	for i := range deg {
		d := float64(deg[i] - 2)
		norm += d * d
	}
	if norm == 0 {
		return 0
	}
	step = alpha * (ub - bound) / norm
	if step <= 0 {
		return 0
	}
	for i := range pi {
		pi[i] += step * float64(deg[i]-2)
	}
	return step
}

// TestSparseOneTreeMatchesFrozen drives the rewritten kernel and the
// frozen reference through the production subgradient ascent in lockstep
// on random sparse instances and requires bit-identical 1-tree weights
// and degree vectors at every iterate. Instance sizes straddle
// denseOneTreeCutoff so both the scan path and the heap path are pinned,
// and kernels are released between instances so pool reuse is exercised
// under dirty scratch.
func TestSparseOneTreeMatchesFrozen(t *testing.T) {
	cases := []struct {
		n       int
		maxCost int64
		excProb float64
		seed    int64
	}{
		{5, 40, 0.5, 1},
		{16, 100, 0.3, 2},
		{60, 1000, 0.2, 3},   // N=120: scan path
		{129, 500, 0.15, 4},  // N=258: first heap-path size
		{200, 2000, 0.10, 5}, // N=400: heap path, sparser
		{200, 7, 0.40, 6},    // heavy cost ties stress every tie-break
	}
	for _, tc := range cases {
		sp := randSparse(tc.n, tc.maxCost, tc.excProb, tc.seed)
		ot := newSparseOneTree(sp)
		fr := newFrozenOneTree(sp)
		ub := float64(CycleCost(sp, NearestNeighbor(sp, 0, nil))) - float64(tc.n)*float64(ot.L)
		alpha := 2.0
		for it := 0; it < 40; it++ {
			w := ot.run()
			fw := fr.run()
			if math.Float64bits(w) != math.Float64bits(fw) {
				t.Fatalf("n=%d seed=%d iterate %d: weight %v (new) != %v (frozen)",
					tc.n, tc.seed, it, w, fw)
			}
			for i := 0; i < ot.N; i++ {
				if ot.deg[i] != fr.deg[i] {
					t.Fatalf("n=%d seed=%d iterate %d: deg[%d] = %d (new) != %d (frozen)",
						tc.n, tc.seed, it, i, ot.deg[i], fr.deg[i])
				}
			}
			var piSum float64
			for _, p := range ot.pi {
				piSum += p
			}
			bound := w - 2*piSum
			if hkAscentStep(ot.pi, ot.deg, alpha, ub, bound) == 0 {
				break
			}
			hkAscentStep(fr.pi, fr.deg, alpha, ub, bound)
			for i := 0; i < ot.N; i++ {
				if math.Float64bits(ot.pi[i]) != math.Float64bits(fr.pi[i]) {
					t.Fatalf("n=%d seed=%d iterate %d: pi[%d] diverged", tc.n, tc.seed, it, i)
				}
			}
			if (it+1)%10 == 0 {
				alpha /= 2
			}
		}
		ot.release() // next case draws a dirty kernel from the pool
	}
}

// TestSparseOneTreeDenseMatchesHeap forces the scan-based and heap-based
// selection paths onto the same instances — overriding the size cutoff in
// both directions — and requires bit-identical trajectories. This is the
// guarantee that denseOneTreeCutoff is a pure constant-factor knob.
func TestSparseOneTreeDenseMatchesHeap(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{24, 10},  // naturally dense; heap path forced
		{150, 11}, // naturally heap; scan path forced
	} {
		sp := randSparse(tc.n, 300, 0.25, tc.seed)
		a := newSparseOneTree(sp)
		b := newSparseOneTree(sp)
		b.dense = !b.dense
		ub := float64(CycleCost(sp, NearestNeighbor(sp, 0, nil))) - float64(tc.n)*float64(a.L)
		alpha := 2.0
		for it := 0; it < 30; it++ {
			wa, wb := a.run(), b.run()
			if math.Float64bits(wa) != math.Float64bits(wb) {
				t.Fatalf("n=%d iterate %d: weight %v (dense=%v) != %v (dense=%v)",
					tc.n, it, wa, a.dense, wb, b.dense)
			}
			for i := 0; i < a.N; i++ {
				if a.deg[i] != b.deg[i] {
					t.Fatalf("n=%d iterate %d: deg[%d] = %d != %d", tc.n, it, i, a.deg[i], b.deg[i])
				}
			}
			var piSum float64
			for _, p := range a.pi {
				piSum += p
			}
			bound := wa - 2*piSum
			if hkAscentStep(a.pi, a.deg, alpha, ub, bound) == 0 {
				break
			}
			hkAscentStep(b.pi, b.deg, alpha, ub, bound)
			if (it+1)%8 == 0 {
				alpha /= 2
			}
		}
		b.release()
		a.release()
	}
}

// countdownCtx is a context that reports itself cancelled starting from
// the k-th poll of Done(): a deterministic way to cancel a Held-Karp
// ascent in the middle of its schedule (wall-clock cancellation would
// race the fast kernel).
type countdownCtx struct {
	remaining int
	fired     bool
	done      chan struct{}
}

func newCountdownCtx(polls int) *countdownCtx {
	return &countdownCtx{remaining: polls, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	if !c.fired {
		if c.remaining--; c.remaining < 0 {
			c.fired = true
			close(c.done)
		}
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	if c.fired {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Value(any) any               { return nil }

// TestHeldKarpBoundCancelMidAscent cancels the ascent mid-schedule and
// checks the anytime contract: Truncated is set, fewer iterates ran, the
// truncated bound is a valid lower bound on the directed optimum and no
// stronger than the full ascent's bound (it maximizes over a prefix of
// the same deterministic trajectory) — and the pooled workspace the
// cancelled call released is not corrupted: an immediate full-length
// rerun reproduces the uncancelled result bit for bit.
func TestHeldKarpBoundCancelMidAscent(t *testing.T) {
	sp := randSparse(9, 60, 0.4, 42)
	opts := HeldKarpOptions{Iterations: 80}
	full := HeldKarpBound(sp, opts)
	if full.Truncated {
		t.Fatalf("uncancelled run reports Truncated")
	}

	cancelOpts := opts
	cancelOpts.Context = newCountdownCtx(10)
	trunc := HeldKarpBound(sp, cancelOpts)
	if !trunc.Truncated {
		t.Fatalf("cancelled run not Truncated (ran %d iterates)", trunc.Iterations)
	}
	if trunc.Iterations <= 1 || trunc.Iterations >= full.Iterations {
		t.Fatalf("cancellation not mid-ascent: %d iterates of %d", trunc.Iterations, full.Iterations)
	}
	if trunc.Bound > full.Bound {
		t.Fatalf("truncated bound %v stronger than full bound %v", trunc.Bound, full.Bound)
	}
	_, opt := SolveExact(sp)
	if trunc.Bound > float64(opt)+1e-9 {
		t.Fatalf("truncated bound %v exceeds optimal tour cost %d", trunc.Bound, opt)
	}

	// The cancelled call returned its kernel to the pool mid-state;
	// a fresh full run must be untouched by that.
	rerun := HeldKarpBound(sp, opts)
	if math.Float64bits(rerun.Bound) != math.Float64bits(full.Bound) ||
		rerun.Iterations != full.Iterations || rerun.Converged != full.Converged {
		t.Fatalf("rerun after cancelled call diverged: %+v vs %+v", rerun, full)
	}
}

// TestSparseOneTreeSteadyStateAllocs pins the tentpole's allocation
// contract: after the first iterate has warmed the workspace, run() and
// the re-sorts allocate nothing.
func TestSparseOneTreeSteadyStateAllocs(t *testing.T) {
	for _, n := range []int{40, 200} { // scan path and heap path
		sp := randSparse(n, 500, 0.2, 7)
		ot := newSparseOneTree(sp)
		ub := float64(CycleCost(sp, NearestNeighbor(sp, 0, nil))) - float64(n)*float64(ot.L)
		w := ot.run()
		var piSum float64
		for _, p := range ot.pi {
			piSum += p
		}
		hkAscentStep(ot.pi, ot.deg, 2, ub, w-2*piSum)
		allocs := testing.AllocsPerRun(20, func() {
			w := ot.run()
			var piSum float64
			for _, p := range ot.pi {
				piSum += p
			}
			hkAscentStep(ot.pi, ot.deg, 1, ub, w-2*piSum)
		})
		ot.release()
		if allocs != 0 {
			t.Fatalf("n=%d: %v allocs per warm iterate, want 0", n, allocs)
		}
	}
}
