package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickOrOptImprovesLocalOptimum pins the Or-opt family's value
// proposition: restarting from a pure-3-opt local optimum with Or-opt
// enabled never worsens the tour (the 3-opt family finds nothing there,
// so every applied move is an improving relocation), keeps it a valid
// permutation, and maintains the incremental cost exactly.
func TestQuickOrOptImprovesLocalOptimum(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%40) + 4
		m := randMatrix(n, 1000, int64(seedRaw)+21)
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		start := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { start[i], start[j] = start[j], start[i] })

		pure := NewThreeOpt(m, nil, start)
		c1 := pure.Optimize()
		both := NewThreeOpt(m, nil, pure.Tour())
		both.SetOrOpt(true)
		c2 := both.Optimize()
		tour := both.Tour()
		return tour.Valid(n) && c2 <= c1 && CycleCost(m, tour) == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolveOrOptGating pins DisableOrOpt: a gated-off solve
// reports zero Or-opt activity, and both settings return valid tours
// with consistent incrementally-maintained costs.
func TestQuickSolveOrOptGating(t *testing.T) {
	f := func(nRaw, seedRaw uint16) bool {
		n := int(nRaw%25) + 13 // above ExactThreshold so local search runs
		m := randMatrix(n, 1000, int64(seedRaw)+5)
		opt := PaperSolveOptions(int64(seedRaw))
		opt.MaxIterations = 10
		on := Solve(m, opt)
		opt.DisableOrOpt = true
		off := Solve(m, opt)
		if off.OrMovesTried != 0 || off.OrMovesAccepted != 0 {
			return false
		}
		if !on.Tour.Valid(n) || !off.Tour.Valid(n) {
			return false
		}
		return CycleCost(m, on.Tour) == on.Cost && CycleCost(m, off.Tour) == off.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
