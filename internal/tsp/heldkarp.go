package tsp

import (
	"context"
	"math"

	"branchalign/internal/obs"
)

// HeldKarpOptions configures the Lagrangian subgradient ascent used to
// compute the Held-Karp lower bound.
type HeldKarpOptions struct {
	// Iterations of subgradient ascent; <= 0 selects a size-based default.
	Iterations int
	// UpperBound is a known tour cost used to scale step sizes. If zero, a
	// quick nearest-neighbor tour is computed internally. Negative values
	// are legitimate bounds for shifted instances.
	UpperBound Cost
	// InitialAlpha is the initial step-size multiplier (default 2).
	InitialAlpha float64
	// Obs, when non-nil, is the parent span the subgradient ascent
	// records its telemetry under: a "tsp.heldkarp" child span carrying
	// the bound trajectory ("hk_bound", one point per improving iterate)
	// and step-size series ("hk_step"). Nil records nothing.
	Obs *obs.Span
	// Context, when non-nil, cancels the ascent at the next subgradient
	// iterate boundary. The best bound found so far is returned with
	// BoundResult.Truncated set — every iterate's bound is a valid lower
	// bound, so truncation never invalidates the result. At least one
	// iterate always runs, so a cancelled call still returns a real
	// (if weak) bound.
	Context context.Context
	// Budget bounds the ascent (wall-clock deadline, max subgradient
	// iterates). The zero Budget is unlimited.
	Budget Budget
	// Warm, when non-nil, warm-starts the ascent from the dual state of
	// a previous call on the same instance and receives the updated
	// state when the call returns. A state whose vector length does not
	// match the instance's node count is ignored (cold start) and then
	// overwritten, so a stale state is never worse than no state. Every
	// pi vector yields a valid lower bound, so warm-starting can only
	// change how quickly the ascent reaches a tight bound — never the
	// validity of what it returns.
	Warm *HKWarmState
	// StallWindow, when positive, ends the ascent early once the best
	// bound has gone StallWindow consecutive iterates without improving
	// by more than StallEpsilon times the instance's upper-bound
	// magnitude. Zero disables early termination (the default): the
	// full iteration schedule runs. Early termination only truncates
	// the maximization, so the returned bound remains a valid lower
	// bound — merely as tight as the ascent had gotten.
	StallWindow int
	// StallEpsilon is the relative improvement threshold for
	// StallWindow; <= 0 selects 1e-6.
	StallEpsilon float64
	// stallFloor arms the stall window only once the best bound exceeds
	// it (in the kernel's raw value space). Used by the dense directed
	// path to tell the symmetric kernel where the shifted instance's
	// useful range begins; the sparse directed kernel derives its own.
	stallFloor float64
}

// HKWarmState carries the dual state of a Held-Karp ascent so a later
// call on the same instance can resume from it instead of re-climbing
// from pi = 0. The zero value is a valid cold state. States are keyed
// by instance identity (the caller's responsibility): a state from a
// different instance is detected only when the node counts differ.
type HKWarmState struct {
	// Pi is the node-potential vector of the best iterate seen, in the
	// node space of the computation that produced it (the 2n-node
	// symmetric transformation for directed instances). Re-evaluating
	// the 1-tree at this vector reproduces the previous call's best
	// bound exactly, so a warm-started ascent never reports a weaker
	// bound than the state it resumed from.
	Pi []float64
}

// BoundResult reports the outcome of a Held-Karp bound computation.
type BoundResult struct {
	// Bound is the best lower bound found. It is valid for any number of
	// completed iterates.
	Bound float64
	// Iterations is the number of subgradient iterates evaluated.
	Iterations int
	// Truncated is true when the ascent was cut short by its context or
	// budget before the iteration schedule completed.
	Truncated bool
	// Converged is true when the 1-tree became a tour, making the bound
	// provably exact for the relaxed instance.
	Converged bool
	// Stalled is true when StallWindow ended the ascent before its
	// iteration schedule (and before convergence). The bound is still
	// valid; the remaining schedule was judged unlikely to tighten it.
	Stalled bool
}

// hkSchedule returns the iteration count and step-halving period shared
// by every subgradient driver, from the node count of the instance being
// relaxed.
func hkSchedule(nodes, iterations int) (iters, period int) {
	iters = iterations
	if iters <= 0 {
		iters = 100 + 4*nodes
		if iters > 1000 {
			iters = 1000
		}
	}
	period = iters / 8
	if period < 5 {
		period = 5
	}
	return iters, period
}

// stallTracker implements the epsilon-over-window early-termination
// rule shared by the subgradient drivers: stop once the best bound has
// gone a full window of iterates without improving by more than an
// epsilon fraction of the instance's cost scale. The scale is fixed up
// front (the upper bound's magnitude) rather than derived from the
// current bound: early iterates of shifted instances sit far below
// zero, and a threshold keyed to the moving bound would inflate exactly
// while the ascent makes its fastest progress. Tracking the *best*
// bound (not the per-iterate bound) makes the rule robust to the
// oscillation inherent in subgradient steps.
//
// Counting is armed only once the best bound has cleared the floor —
// the raw-space value below which the bound is trivially useless (a
// directed bound that would clamp to zero). The initial alpha=2 steps
// overshoot on shifted instances, and the ascent legitimately spends
// 100+ iterates below its own first iterate while the step size decays;
// stopping there would save wall clock but certify nothing.
type stallTracker struct {
	window int
	thresh float64
	floor  float64
	count  int
}

// newStallTracker widens window to at least one full step-halving
// period: the ascent routinely plateaus for most of a period before a
// halving unlocks further progress, so a smaller window cannot tell
// "converged" from "waiting for alpha to decay".
func newStallTracker(window, period int, eps, scale, floor float64) stallTracker {
	if window > 0 && window < period {
		window = period
	}
	if eps <= 0 {
		eps = 1e-6
	}
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return stallTracker{window: window, thresh: eps * scale, floor: floor}
}

// observe records one iterate's improvement of the best bound (gain;
// +Inf on the first iterate) and reports whether the ascent should
// stop. Iterates spent at or below the floor never count toward the
// window.
func (s *stallTracker) observe(best, gain float64) bool {
	if s.window <= 0 || best <= s.floor {
		s.count = 0
		return false
	}
	if gain > s.thresh {
		s.count = 0
	} else {
		s.count++
	}
	return s.count >= s.window
}

// HeldKarpSym computes the Held-Karp lower bound for a symmetric instance
// via 1-tree Lagrangian relaxation with subgradient ascent (Held & Karp
// 1970, 1971). The returned value is a valid lower bound on the optimal
// tour cost for every iteration count: each iterate evaluates
// L(pi) = w(min 1-tree under reduced costs) - 2*sum(pi), and max over
// visited pi of L(pi) <= OPT.
//
// m must be symmetric; the function panics otherwise (catching accidental
// use on a raw DTSP matrix, for which HeldKarpDirected exists).
func HeldKarpSym(m *Matrix, opt HeldKarpOptions) float64 {
	return HeldKarpSymBound(m, opt).Bound
}

// HeldKarpSymBound is HeldKarpSym with the full anytime result: the
// bound plus how many iterates ran and whether the ascent was truncated
// by its context or budget.
func HeldKarpSymBound(m *Matrix, opt HeldKarpOptions) BoundResult {
	if !m.IsSymmetric() {
		panic("tsp: HeldKarpSym: matrix is not symmetric")
	}
	n := m.Len()
	if n < 3 {
		return BoundResult{Bound: float64(CycleCost(m, IdentityTour(n))), Converged: true}
	}
	iters, period := hkSchedule(n, opt.Iterations)
	ub := opt.UpperBound
	if ub == 0 {
		// Unset; negative upper bounds are legitimate for shifted
		// instances (see HeldKarpDirectedDense).
		ub = CycleCost(m, NearestNeighbor(m, 0, nil))
	}
	alpha := opt.InitialAlpha
	if alpha <= 0 {
		alpha = 2
	}

	sp := opt.Obs.Child("tsp.heldkarp_sym", obs.Int("nodes", int64(n)))
	boundSeries := sp.Series("hk_bound")
	stepSeries := sp.Series("hk_step")

	pi := make([]float64, n)
	if opt.Warm != nil && len(opt.Warm.Pi) == n {
		copy(pi, opt.Warm.Pi)
	}
	deg := make([]int, n)
	ws := newOneTreeWorkspace(n)
	best := math.Inf(-1)
	res := BoundResult{}
	cc := newCancelCheck(opt.Context, opt.Budget)
	maxIt := opt.Budget.MaxHKIterations
	st := newStallTracker(opt.StallWindow, period, opt.StallEpsilon, float64(ub), opt.stallFloor)
	for it := 0; it < iters; it++ {
		// Iterate-boundary budget check. The first iterate always runs
		// (it is cheap and guarantees a real bound); later iterates stop
		// as soon as the budget trips — best is already valid.
		if maxIt > 0 && res.Iterations >= maxIt {
			res.Truncated = true
			break
		}
		if res.Iterations > 0 && cc.cancelled() {
			res.Truncated = true
			break
		}
		res.Iterations = it + 1
		w := oneTree(m, pi, deg, ws)
		var piSum float64
		for _, p := range pi {
			piSum += p
		}
		bound := w - 2*piSum
		gain := bound - best
		if bound > best {
			best = bound
			if opt.Warm != nil {
				opt.Warm.Pi = append(opt.Warm.Pi[:0], pi...)
			}
			boundSeries.Add(int64(it), bound)
		}
		// Subgradient: degree deviation from 2.
		var norm float64
		for i := 0; i < n; i++ {
			d := float64(deg[i] - 2)
			norm += d * d
		}
		if norm == 0 {
			// The 1-tree is a tour: the bound is exact.
			res.Converged = true
			sp.SetAttrs(obs.Bool("converged", true))
			break
		}
		if st.observe(best, gain) {
			res.Stalled = true
			break
		}
		step := alpha * (float64(ub) - bound) / norm
		if step <= 0 {
			break
		}
		if it%period == 0 {
			stepSeries.Add(int64(it), step)
		}
		for i := 0; i < n; i++ {
			pi[i] += step * float64(deg[i]-2)
		}
		if (it+1)%period == 0 {
			alpha /= 2
		}
	}
	res.Bound = best
	sp.Count("hk.iterations", int64(res.Iterations))
	sp.End(obs.Float("bound", best), obs.Int("iterations", int64(res.Iterations)),
		obs.Bool("truncated", res.Truncated), obs.Bool("stalled", res.Stalled))
	return res
}

// HeldKarpDirected computes the Held-Karp bound for an asymmetric
// instance by relaxing its 2-city symmetric transformation, exactly as
// the paper does — but without ever materializing the 2n×2n symmetric
// matrix. The instance is first converted to canonical sparse form
// (Sparsify), which makes the result a pure function of the cost values:
// dense and sparse representations of the same instance yield identical
// bounds. Each subgradient iteration builds the implicit 1-tree in
// O(E + n log n) instead of Θ(n²) (see sparseOneTree), which is what
// makes the bound affordable on multi-thousand-block functions.
//
// HeldKarpDirectedDense is the dense reference implementation; its bound
// can differ in the last few percent (different 1-tree tie-breaking, and
// the implicit path caps exception edges at their row default), but both
// are valid lower bounds on the optimal directed tour.
func HeldKarpDirected(c Costs, opt HeldKarpOptions) float64 {
	return HeldKarpBound(c, opt).Bound
}

// HeldKarpBound is HeldKarpDirected with the full anytime result: the
// bound plus iterate count, truncation and convergence flags. It is the
// primary entry point for budgeted callers (the engine, balignd); the
// float64-returning wrappers are kept for the batch pipeline.
func HeldKarpBound(c Costs, opt HeldKarpOptions) BoundResult {
	n := c.Len()
	if n < 3 {
		return heldKarpDenseBound(c, opt)
	}
	sp := Sparsify(c)
	ot := newSparseOneTree(sp)
	defer ot.release()
	if opt.Warm != nil && len(opt.Warm.Pi) == ot.N {
		copy(ot.pi, opt.Warm.Pi)
	}
	shift := float64(n) * float64(ot.L)
	dirUB := opt.UpperBound
	if dirUB <= 0 {
		dirUB = CycleCost(sp, NearestNeighbor(sp, 0, nil))
	}
	ub := float64(dirUB) - shift

	hsp := opt.Obs.Child("tsp.heldkarp",
		obs.Int("cities", int64(n)), obs.Int("nodes", int64(ot.N)), obs.Float("shift", shift))
	boundSeries := hsp.Series("hk_bound")
	stepSeries := hsp.Series("hk_step")

	iters, period := hkSchedule(ot.N, opt.Iterations)
	alpha := opt.InitialAlpha
	if alpha <= 0 {
		alpha = 2
	}
	best := math.Inf(-1)
	res := BoundResult{}
	cc := newCancelCheck(opt.Context, opt.Budget)
	maxIt := opt.Budget.MaxHKIterations
	// The stall threshold is scaled by the directed upper bound — the
	// instance's true cost magnitude. The raw ascent values sit at
	// -n·L and would swamp any relative epsilon. The arming floor is
	// -shift: raw best above it means the directed bound is positive,
	// i.e. actually worth stopping at.
	st := newStallTracker(opt.StallWindow, period, opt.StallEpsilon, float64(dirUB), -shift)
	for it := 0; it < iters; it++ {
		// Iterate-boundary budget check; see HeldKarpSymBound.
		if maxIt > 0 && res.Iterations >= maxIt {
			res.Truncated = true
			break
		}
		if res.Iterations > 0 && cc.cancelled() {
			res.Truncated = true
			break
		}
		res.Iterations = it + 1
		w := ot.run()
		var piSum float64
		for _, p := range ot.pi {
			piSum += p
		}
		bound := w - 2*piSum
		gain := bound - best
		if bound > best {
			best = bound
			if opt.Warm != nil {
				opt.Warm.Pi = append(opt.Warm.Pi[:0], ot.pi...)
			}
			// The trajectory is recorded in directed terms (shifted back),
			// so it is directly comparable with tour costs.
			boundSeries.Add(int64(it), bound+shift)
		}
		var norm float64
		for i := 0; i < ot.N; i++ {
			d := float64(ot.deg[i] - 2)
			norm += d * d
		}
		if norm == 0 {
			res.Converged = true
			hsp.SetAttrs(obs.Bool("converged", true))
			break
		}
		if st.observe(best, gain) {
			res.Stalled = true
			break
		}
		step := alpha * (ub - bound) / norm
		if step <= 0 {
			break
		}
		if it%period == 0 {
			stepSeries.Add(int64(it), step)
		}
		for i := 0; i < ot.N; i++ {
			ot.pi[i] += step * float64(ot.deg[i]-2)
		}
		if (it+1)%period == 0 {
			alpha /= 2
		}
	}
	res.Bound = best + shift
	hsp.Count("hk.iterations", int64(res.Iterations))
	hsp.End(obs.Float("bound", res.Bound), obs.Int("iterations", int64(res.Iterations)),
		obs.Bool("truncated", res.Truncated), obs.Bool("stalled", res.Stalled))
	return res
}

// HeldKarpDirectedDense is the dense reference path: materialize the
// 2-city symmetric transformation (Sym.Matrix, with -LockCost on locked
// edges, so its optimum is the directed optimum shifted down by
// n*LockCost) and bound it with HeldKarpSym; the same shift converts the
// symmetric bound back into a valid lower bound on the optimal directed
// tour cost. Θ(n²) memory and Θ(n²) time per subgradient iteration —
// kept as the oracle the sparse path is validated against.
func HeldKarpDirectedDense(c Costs, opt HeldKarpOptions) float64 {
	return heldKarpDenseBound(c, opt).Bound
}

func heldKarpDenseBound(c Costs, opt HeldKarpOptions) BoundResult {
	s := Symmetrize(c)
	symM := s.Matrix()
	shift := float64(c.Len()) * float64(s.LockCost())
	dirUB := opt.UpperBound
	if dirUB <= 0 {
		// A directed NN tour embeds into the symmetric space (shifted).
		dirUB = CycleCost(c, NearestNeighbor(c, 0, nil))
	}
	symOpt := opt
	symOpt.UpperBound = dirUB - Cost(c.Len())*s.LockCost()
	// Raw symmetric values above -shift correspond to positive directed
	// bounds — only there is stopping early worth anything.
	symOpt.stallFloor = -shift
	res := HeldKarpSymBound(symM, symOpt)
	res.Bound += shift
	return res
}

// oneTreeWorkspace holds the Prim scratch arrays for the dense oneTree,
// hoisted out of the per-iteration path so that subgradient ascent does
// not reallocate them on every iterate.
type oneTreeWorkspace struct {
	inTree []bool
	dist   []float64
	parent []int
}

func newOneTreeWorkspace(n int) *oneTreeWorkspace {
	return &oneTreeWorkspace{
		inTree: make([]bool, n),
		dist:   make([]float64, n),
		parent: make([]int, n),
	}
}

// oneTree computes the minimum-weight 1-tree under reduced costs
// c(i,j) + pi[i] + pi[j]: a minimum spanning tree over cities 1..n-1 plus
// the two cheapest edges incident to city 0. deg receives the degree of
// each city in the 1-tree. The returned weight is in reduced costs.
func oneTree(m *Matrix, pi []float64, deg []int, ws *oneTreeWorkspace) float64 {
	n := m.Len()
	for i := range deg {
		deg[i] = 0
	}
	red := func(i, j int) float64 {
		return float64(m.At(i, j)) + pi[i] + pi[j]
	}
	// Prim over cities 1..n-1.
	const unreached = math.MaxFloat64
	inTree, dist, parent := ws.inTree, ws.dist, ws.parent
	for i := 0; i < n; i++ {
		inTree[i] = false
		dist[i] = unreached
		parent[i] = -1
	}
	total := 0.0
	cur := 1
	inTree[cur] = true
	for count := 1; count < n-1; count++ {
		for j := 2; j < n; j++ {
			if inTree[j] {
				continue
			}
			if d := red(cur, j); d < dist[j] {
				dist[j] = d
				parent[j] = cur
			}
		}
		nxt, nd := -1, unreached
		for j := 2; j < n; j++ {
			if !inTree[j] && dist[j] < nd {
				nxt, nd = j, dist[j]
			}
		}
		if nxt < 0 {
			break
		}
		inTree[nxt] = true
		total += nd
		deg[nxt]++
		deg[parent[nxt]]++
		cur = nxt
	}
	// Two cheapest edges from city 0.
	best1, best2 := unreached, unreached
	arg1, arg2 := -1, -1
	for j := 1; j < n; j++ {
		d := red(0, j)
		switch {
		case d < best1:
			best2, arg2 = best1, arg1
			best1, arg1 = d, j
		case d < best2:
			best2, arg2 = d, j
		}
	}
	total += best1 + best2
	deg[0] += 2
	deg[arg1]++
	deg[arg2]++
	return total
}
