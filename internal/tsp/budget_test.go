package tsp

import (
	"context"
	"testing"
	"time"
)

// unlimited returns a budget that cannot trip within a test run, used to
// pin that the budget plumbing itself changes nothing.
func unlimited() Budget {
	return Budget{Deadline: time.Now().Add(24 * time.Hour), MaxKicks: 1 << 40, MaxHKIterations: 1 << 30}
}

// TestSolveBudgetPlumbingBitIdentical pins the anytime refactor's core
// contract: threading a live context and a generous budget through Solve
// must not change the tour, the cost, the run statistics, or the random
// stream relative to a plain solve.
func TestSolveBudgetPlumbingBitIdentical(t *testing.T) {
	for _, n := range []int{15, 40} {
		m := randMatrix(n, 1000, int64(n))
		opt := PaperSolveOptions(7)
		opt.ExactThreshold = 0 // force the local-search path even for n=15
		plain := Solve(m, opt)

		budgeted := opt
		budgeted.Context = context.Background()
		budgeted.Budget = unlimited()
		got := Solve(m, budgeted)

		if got.Truncated {
			t.Fatalf("n=%d: unlimited budget marked truncated", n)
		}
		if got.Cost != plain.Cost || got.Runs != plain.Runs ||
			got.RunsAtBest != plain.RunsAtBest || got.Kicks != plain.Kicks ||
			got.MovesTried != plain.MovesTried || got.MovesAccepted != plain.MovesAccepted ||
			got.IterationsToBest != plain.IterationsToBest {
			t.Fatalf("n=%d: budgeted result diverged: %+v vs %+v", n, got, plain)
		}
		for i := range plain.Tour {
			if got.Tour[i] != plain.Tour[i] {
				t.Fatalf("n=%d: tours differ at %d: %v vs %v", n, i, got.Tour, plain.Tour)
			}
		}
	}
}

func TestSolveCancelledContextReturnsValidTour(t *testing.T) {
	m := randMatrix(30, 1000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the solve starts
	opt := PaperSolveOptions(1)
	opt.ExactThreshold = 0
	opt.Context = ctx
	res := Solve(m, opt)
	if !res.Truncated {
		t.Fatal("cancelled solve not marked truncated")
	}
	if !res.Tour.Valid(30) {
		t.Fatalf("cancelled solve returned invalid tour %v", res.Tour)
	}
	if res.Cost != CycleCost(m, res.Tour) {
		t.Fatalf("reported cost %d != tour cost %d", res.Cost, CycleCost(m, res.Tour))
	}
}

func TestSolveExpiredDeadlineReturnsValidTour(t *testing.T) {
	m := randMatrix(25, 500, 11)
	opt := PaperSolveOptions(1)
	opt.ExactThreshold = 0
	opt.Budget = Budget{Deadline: time.Now().Add(-time.Second)}
	res := Solve(m, opt)
	if !res.Truncated {
		t.Fatal("expired deadline not marked truncated")
	}
	if !res.Tour.Valid(25) {
		t.Fatalf("invalid tour %v", res.Tour)
	}
}

func TestSolveMaxKicksCapsWork(t *testing.T) {
	m := randMatrix(30, 1000, 5)
	opt := PaperSolveOptions(1)
	opt.ExactThreshold = 0
	opt.Budget = Budget{MaxKicks: 7}
	res := Solve(m, opt)
	if res.Kicks > 7 {
		t.Fatalf("performed %d kicks, budget was 7", res.Kicks)
	}
	if !res.Truncated {
		t.Fatal("kick-capped solve not marked truncated")
	}
	if !res.Tour.Valid(30) || res.Cost != CycleCost(m, res.Tour) {
		t.Fatalf("invalid result %v cost=%d", res.Tour, res.Cost)
	}

	// The budgeted prefix follows the identical random stream, so its
	// result can never beat the full protocol's.
	full := Solve(m, PaperSolveOptions(1))
	if res.Cost < full.Cost {
		t.Fatalf("truncated cost %d beats full solve %d", res.Cost, full.Cost)
	}
}

func TestSolveExactPathIgnoresBudget(t *testing.T) {
	m := randMatrix(8, 100, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := PaperSolveOptions(1) // ExactThreshold 12 covers n=8
	opt.Context = ctx
	res := Solve(m, opt)
	if !res.Exact || res.Truncated {
		t.Fatalf("tiny instance should solve exactly regardless of budget: %+v", res)
	}
}

func TestHeldKarpBoundPlumbingBitIdentical(t *testing.T) {
	m := randMatrix(20, 500, 13)
	plain := HeldKarpDirected(m, HeldKarpOptions{Iterations: 200})
	opt := HeldKarpOptions{Iterations: 200, Context: context.Background(), Budget: unlimited()}
	got := HeldKarpBound(m, opt)
	if got.Truncated {
		t.Fatal("unlimited budget marked truncated")
	}
	if got.Bound != plain {
		t.Fatalf("budgeted bound %v != plain %v", got.Bound, plain)
	}
}

func TestHeldKarpBoundMaxIterates(t *testing.T) {
	m := randMatrix(10, 300, 4)
	_, opt := SolveExact(m)
	full := HeldKarpBound(m, HeldKarpOptions{UpperBound: opt, Iterations: 200})
	capped := HeldKarpBound(m, HeldKarpOptions{
		UpperBound: opt, Iterations: 200, Budget: Budget{MaxHKIterations: 3}})
	if capped.Iterations > 3 {
		t.Fatalf("ran %d iterates, budget was 3", capped.Iterations)
	}
	if !capped.Truncated {
		t.Fatal("iterate-capped ascent not marked truncated")
	}
	if capped.Bound > float64(opt)+1e-6 {
		t.Fatalf("truncated bound %v exceeds optimum %d", capped.Bound, opt)
	}
	if capped.Bound > full.Bound+1e-6 {
		t.Fatalf("truncated bound %v beats full ascent %v", capped.Bound, full.Bound)
	}
}

func TestHeldKarpBoundCancelledRunsOneIterate(t *testing.T) {
	m := randMatrix(12, 300, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, opt := SolveExact(m)
	res := HeldKarpBound(m, HeldKarpOptions{UpperBound: opt, Iterations: 200, Context: ctx})
	if res.Iterations != 1 {
		t.Fatalf("cancelled ascent ran %d iterates, want exactly 1", res.Iterations)
	}
	if !res.Truncated {
		t.Fatal("cancelled ascent not marked truncated")
	}
	if res.Bound > float64(opt)+1e-6 {
		t.Fatalf("one-iterate bound %v exceeds optimum %d", res.Bound, opt)
	}
}
