package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThreeOptNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := randMatrix(20, 1000, seed)
		start := IdentityTour(20)
		before := CycleCost(m, start)
		o := NewThreeOpt(m, nil, start)
		after := o.Optimize()
		if after > before {
			t.Fatalf("seed %d: 3-opt worsened tour: %d -> %d", seed, before, after)
		}
		if !o.Tour().Valid(20) {
			t.Fatalf("seed %d: 3-opt produced invalid tour", seed)
		}
	}
}

func TestThreeOptIncrementalCostMatchesRecomputed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := randMatrix(15, 500, seed+100)
		o := NewThreeOpt(m, nil, IdentityTour(15))
		got := o.Optimize()
		want := CycleCost(m, o.Tour())
		if got != want {
			t.Fatalf("seed %d: incremental cost %d != recomputed %d", seed, got, want)
		}
	}
}

func TestThreeOptReachesOptimumOnRingInstance(t *testing.T) {
	// Cheap ring hidden in an expensive clique; 3-opt from a scrambled
	// start should find it (the ring is the unique optimum).
	n := 12
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 50)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	rng := rand.New(rand.NewSource(3))
	start := IdentityTour(n)
	rng.Shuffle(n, func(i, j int) { start[i], start[j] = start[j], start[i] })
	tour, cost := IteratedThreeOpt(m, nil, start, 4*n, rng)
	if !tour.Valid(n) {
		t.Fatal("invalid tour")
	}
	if cost != Cost(n) {
		t.Fatalf("iterated 3-opt cost %d, want %d (tour %v)", cost, n, tour)
	}
}

func TestThreeOptSmallInstances(t *testing.T) {
	// n = 1, 2, 3 must not panic and must keep valid tours.
	for n := 1; n <= 3; n++ {
		m := randMatrix(n, 100, int64(n))
		o := NewThreeOpt(m, nil, IdentityTour(n))
		o.Optimize()
		if !o.Tour().Valid(n) {
			t.Fatalf("n=%d: invalid tour after optimize", n)
		}
	}
}

func TestThreeOptFlipsTriangle(t *testing.T) {
	// With 3 cities there are exactly two directed cycles; 3-opt must pick
	// the cheaper one.
	m := FromRows([][]Cost{
		{0, 100, 1},
		{1, 0, 100},
		{100, 1, 0},
	})
	// Identity (0,1,2) costs 300; reversed (0,2,1) costs 3.
	o := NewThreeOpt(m, nil, IdentityTour(3))
	got := o.Optimize()
	if got != 3 {
		t.Fatalf("3-opt on triangle: cost %d, want 3 (tour %v)", got, o.Tour())
	}
}

func TestThreeOptNearOptimalOnRandomInstances(t *testing.T) {
	// Compare against the exact DP on instances small enough to solve.
	for seed := int64(0); seed < 8; seed++ {
		n := 9
		m := randMatrix(n, 1000, seed+500)
		_, opt := SolveExact(m)
		rng := rand.New(rand.NewSource(seed))
		tour, cost := IteratedThreeOpt(m, nil, GreedyEdge(m, nil), 6*n, rng)
		if cost < opt {
			t.Fatalf("seed %d: heuristic cost %d below proven optimum %d", seed, cost, opt)
		}
		if CycleCost(m, tour) != cost {
			t.Fatalf("seed %d: reported cost mismatch", seed)
		}
		if float64(cost) > 1.15*float64(opt) {
			t.Errorf("seed %d: iterated 3-opt %d is more than 15%% above optimum %d", seed, cost, opt)
		}
	}
}

func TestDoubleBridgePreservesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		tour := IdentityTour(n)
		rng.Shuffle(n, func(i, j int) { tour[i], tour[j] = tour[j], tour[i] })
		kicked := DoubleBridge(tour, rng)
		return kicked.Valid(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBridgeSmallToursUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n < 4; n++ {
		tour := IdentityTour(n)
		kicked := DoubleBridge(tour, rng)
		for i := range tour {
			if kicked[i] != tour[i] {
				t.Fatalf("n=%d: kick changed a tour too small to cut", n)
			}
		}
	}
}

func TestDoubleBridgeActuallyPerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tour := IdentityTour(20)
	changed := false
	for i := 0; i < 10; i++ {
		kicked := DoubleBridge(tour, rng)
		for j := range kicked {
			if kicked[j] != tour[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("double bridge never changed a 20-city tour in 10 tries")
	}
}

func TestSolvePaperProtocol(t *testing.T) {
	m := randMatrix(30, 1000, 424242)
	res := Solve(m, PaperSolveOptions(1))
	if !res.Tour.Valid(30) {
		t.Fatal("Solve returned invalid tour")
	}
	if res.Exact {
		t.Fatal("30-city instance should not be solved exactly")
	}
	if res.Runs != 10 {
		t.Fatalf("paper protocol should run 10 starts, got %d", res.Runs)
	}
	if res.RunsAtBest < 1 || res.RunsAtBest > res.Runs {
		t.Fatalf("RunsAtBest = %d out of range", res.RunsAtBest)
	}
	if CycleCost(m, res.Tour) != res.Cost {
		t.Fatal("reported cost does not match tour")
	}
	// The heuristic must beat plain nearest neighbor.
	nn := CycleCost(m, NearestNeighbor(m, 0, nil))
	if res.Cost > nn {
		t.Fatalf("solver cost %d worse than raw NN %d", res.Cost, nn)
	}
}

func TestSolveUsesExactForSmallInstances(t *testing.T) {
	m := randMatrix(8, 1000, 3)
	res := Solve(m, PaperSolveOptions(1))
	if !res.Exact {
		t.Fatal("8-city instance should be solved exactly")
	}
	_, opt := SolveBruteForce(m)
	if res.Cost != opt {
		t.Fatalf("exact path returned %d, brute force says %d", res.Cost, opt)
	}
}

func TestSolveDeterministic(t *testing.T) {
	m := randMatrix(25, 1000, 99)
	a := Solve(m, PaperSolveOptions(7))
	b := Solve(m, PaperSolveOptions(7))
	if a.Cost != b.Cost {
		t.Fatalf("same seed, different costs: %d vs %d", a.Cost, b.Cost)
	}
	for i := range a.Tour {
		if a.Tour[i] != b.Tour[i] {
			t.Fatal("same seed, different tours")
		}
	}
}
