package tsp

import (
	"math/rand"
	"testing"
)

func TestNearestNeighborValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 25} {
		m := randMatrix(n, 1000, int64(n))
		for start := 0; start < n; start += 3 {
			tour := NearestNeighbor(m, start, nil)
			if !tour.Valid(n) {
				t.Fatalf("n=%d start=%d: invalid tour %v", n, start, tour)
			}
			if tour[0] != start {
				t.Fatalf("n=%d: tour starts at %d, want %d", n, tour[0], start)
			}
		}
	}
}

func TestNearestNeighborPicksCheapest(t *testing.T) {
	// A directed path 0->1->2->3 with cheap edges; NN must follow it.
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 100)
			}
		}
	}
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(2, 3, 1)
	tour := NearestNeighbor(m, 0, nil)
	want := Tour{0, 1, 2, 3}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("NN tour %v, want %v", tour, want)
		}
	}
}

func TestNearestNeighborRandomizedIsValidAndDeterministic(t *testing.T) {
	m := randMatrix(30, 1000, 9)
	a := NearestNeighbor(m, 0, rand.New(rand.NewSource(42)))
	b := NearestNeighbor(m, 0, rand.New(rand.NewSource(42)))
	if !a.Valid(30) {
		t.Fatal("randomized NN tour invalid")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same randomized NN tour")
		}
	}
}

func TestGreedyEdgeValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 10, 40} {
		m := randMatrix(n, 1000, int64(100+n))
		tour := GreedyEdge(m, nil)
		if !tour.Valid(n) {
			t.Fatalf("n=%d: GreedyEdge tour invalid: %v", n, tour)
		}
	}
}

func TestGreedyEdgeFollowsObviousCycle(t *testing.T) {
	// Cheap directed ring 0->1->2->3->4->0 inside an expensive clique.
	n := 5
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 1000)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	tour := GreedyEdge(m, nil)
	if got := CycleCost(m, tour); got != Cost(n) {
		t.Fatalf("GreedyEdge cost %d, want %d (tour %v)", got, n, tour)
	}
}

func TestGreedyEdgeRandomizedValidAndDeterministic(t *testing.T) {
	m := randMatrix(25, 500, 77)
	a := GreedyEdge(m, rand.New(rand.NewSource(7)))
	b := GreedyEdge(m, rand.New(rand.NewSource(7)))
	if !a.Valid(25) {
		t.Fatal("randomized greedy tour invalid")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same randomized greedy tour")
		}
	}
}

func TestGreedyEdgeBeatsOrEqualsWorstCase(t *testing.T) {
	// Greedy should do no worse than the reverse-identity tour on average
	// instances; at minimum, it must produce a finite-cost valid tour.
	m := randMatrix(20, 100, 5)
	tour := GreedyEdge(m, nil)
	if c := CycleCost(m, tour); c <= 0 {
		t.Fatalf("unexpected non-positive cost %d", c)
	}
}

func TestIdentityTour(t *testing.T) {
	tour := IdentityTour(4)
	want := Tour{0, 1, 2, 3}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("IdentityTour = %v, want %v", tour, want)
		}
	}
}
