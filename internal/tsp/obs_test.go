package tsp

import (
	"math/rand"
	"testing"

	"branchalign/internal/obs"
)

// obsInstance builds a random asymmetric instance large enough to take
// the local-search path (above ExactThreshold and denseSolveCutover).
func obsInstance(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, Cost(1+rng.Intn(100)))
			}
		}
	}
	return m
}

// TestSolveTelemetry pins the solver's event shape: a tsp.solve span,
// one tsp.run span per local-search run each carrying a tour_cost
// convergence series, and identical solver output with tracing on.
func TestSolveTelemetry(t *testing.T) {
	m := obsInstance(30, 7)
	opt := PaperSolveOptions(3)
	plain := Solve(m, opt)

	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	root := tr.Start("test")
	opt.Obs = root
	traced := Solve(m, opt)
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if traced.Cost != plain.Cost || !tourEq(traced.Tour, plain.Tour) {
		t.Errorf("tracing changed the solve: cost %d vs %d", traced.Cost, plain.Cost)
	}
	if traced.MovesTried == 0 || traced.MovesTried < traced.MovesAccepted {
		t.Errorf("move counters implausible: tried=%d accepted=%d", traced.MovesTried, traced.MovesAccepted)
	}

	solves := sink.Find("span", "tsp.solve")
	if len(solves) != 1 {
		t.Fatalf("got %d tsp.solve spans, want 1", len(solves))
	}
	sp := solves[0]
	if sp.Int("cities") != 30 || sp.Int("cost") != traced.Cost ||
		sp.Int("runs") != int64(traced.Runs) || sp.Int("moves_tried") != traced.MovesTried {
		t.Errorf("tsp.solve attrs wrong: %+v", sp.Attrs)
	}
	runs := sink.Find("span", "tsp.run")
	if len(runs) != traced.Runs {
		t.Fatalf("got %d tsp.run spans, want %d", len(runs), traced.Runs)
	}
	var bestRunCost int64 = 1 << 62
	for _, r := range runs {
		if r.Parent != sp.ID {
			t.Errorf("tsp.run parent = %d, want %d", r.Parent, sp.ID)
		}
		if s := r.Str("start"); s != "greedy" && s != "nn" && s != "identity" {
			t.Errorf("unexpected start kind %q", s)
		}
		if c := r.Int("cost"); c < bestRunCost {
			bestRunCost = c
		}
	}
	if bestRunCost != traced.Cost {
		t.Errorf("best run cost %d != result cost %d", bestRunCost, traced.Cost)
	}
	series := sink.Find("series", "tour_cost")
	if len(series) != traced.Runs {
		t.Fatalf("got %d tour_cost series, want %d", len(series), traced.Runs)
	}
	for _, se := range series {
		if len(se.Points) == 0 {
			t.Error("empty tour_cost series")
		}
		// Convergence: costs are non-increasing along each run's series.
		for k := 1; k < len(se.Points); k++ {
			if se.Points[k][1] > se.Points[k-1][1] {
				t.Errorf("tour_cost series not monotone: %v", se.Points)
				break
			}
		}
	}
	if len(sink.Find("counter", "tsp.kicks")) != 1 {
		t.Error("missing merged tsp.kicks counter")
	}
}

// TestSolveTelemetryExact pins the exact-DP path's span shape.
func TestSolveTelemetryExact(t *testing.T) {
	m := obsInstance(8, 5)
	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	root := tr.Start("test")
	opt := PaperSolveOptions(1)
	opt.Obs = root
	res := Solve(m, opt)
	root.End()
	tr.Close()
	spans := sink.Find("span", "tsp.solve")
	if len(spans) != 1 || !spans[0].Bool("exact") || spans[0].Int("cost") != res.Cost {
		t.Fatalf("exact solve span wrong: %+v", spans)
	}
	if len(sink.Find("span", "tsp.run")) != 0 {
		t.Error("exact path emitted tsp.run spans")
	}
}

// TestHeldKarpTelemetry pins the subgradient spans and that tracing
// leaves the bound unchanged.
func TestHeldKarpTelemetry(t *testing.T) {
	m := obsInstance(20, 11)
	opt := HeldKarpOptions{Iterations: 60}
	plain := HeldKarpDirected(m, opt)

	sink := &obs.MemorySink{}
	tr := obs.New(sink)
	root := tr.Start("test")
	opt.Obs = root
	traced := HeldKarpDirected(m, opt)
	root.End()
	tr.Close()

	if traced != plain {
		t.Errorf("tracing changed the bound: %v vs %v", traced, plain)
	}
	spans := sink.Find("span", "tsp.heldkarp")
	if len(spans) != 1 {
		t.Fatalf("got %d tsp.heldkarp spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Float("bound") != traced || sp.Int("iterations") <= 0 || sp.Int("cities") != 20 {
		t.Errorf("heldkarp attrs wrong: %+v", sp.Attrs)
	}
	series := sink.Find("series", "hk_bound")
	if len(series) != 1 || len(series[0].Points) == 0 {
		t.Fatalf("hk_bound series missing: %+v", series)
	}
	pts := series[0].Points
	for k := 1; k < len(pts); k++ {
		if pts[k][1] <= pts[k-1][1] {
			t.Errorf("hk_bound trajectory not strictly improving: %v", pts)
			break
		}
	}
	if last := pts[len(pts)-1][1]; last != traced {
		t.Errorf("final trajectory point %v != bound %v", last, traced)
	}
	if len(sink.Find("series", "hk_step")) != 1 {
		t.Error("hk_step series missing")
	}
}

func tourEq(a, b Tour) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
