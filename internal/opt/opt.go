// Package opt implements CFG cleanup passes over the IR: constant branch
// folding, jump threading through empty blocks, straight-line block
// merging, and unreachable-block elimination. A production compiler (the
// paper used SUIF) runs exactly this kind of cleanup before code
// placement; running it here both makes the benchmark CFGs more
// realistic (lowering produces empty join blocks that no real backend
// would keep) and enables an ablation: how much of the alignment benefit
// survives when the compiler has already removed the trivial jumps?
package opt

import (
	"fmt"

	"branchalign/internal/ir"
)

// Stats counts the simplifications applied.
type Stats struct {
	FoldedBranches    int // condbr/switch on constants rewritten to br
	ThreadedEdges     int // edges redirected through empty br-only blocks
	MergedBlocks      int // single-pred/single-succ chains merged
	UnreachableBlocks int // blocks removed
	CollapsedCondBrs  int // condbrs with identical targets turned into brs
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FoldedBranches += other.FoldedBranches
	s.ThreadedEdges += other.ThreadedEdges
	s.MergedBlocks += other.MergedBlocks
	s.UnreachableBlocks += other.UnreachableBlocks
	s.CollapsedCondBrs += other.CollapsedCondBrs
}

// Module simplifies every function of mod in place and returns aggregate
// statistics. The module verifies afterwards; Module panics if a pass
// broke an invariant (which would be a bug in this package).
func Module(mod *ir.Module) Stats {
	var total Stats
	for _, f := range mod.Funcs {
		total.Add(Func(f))
	}
	if err := mod.Verify(); err != nil {
		panic(fmt.Sprintf("opt: produced invalid IR: %v", err))
	}
	return total
}

// Func simplifies one function in place to a fixpoint.
func Func(f *ir.Func) Stats {
	var total Stats
	for {
		var round Stats
		round.FoldedBranches = foldConstantBranches(f)
		round.CollapsedCondBrs = collapseSameTargetCondBrs(f)
		round.ThreadedEdges = threadEmptyBlocks(f)
		round.MergedBlocks = mergeChains(f)
		round.UnreachableBlocks = removeUnreachable(f)
		total.Add(round)
		if round == (Stats{}) {
			return total
		}
	}
}

// foldConstantBranches rewrites condbr/switch whose operand is a
// constant into unconditional branches.
func foldConstantBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		t := &b.Term
		switch t.Kind {
		case ir.TermCondBr:
			if !t.Cond.IsConst {
				continue
			}
			target := t.Succs[1]
			if t.Cond.Const != 0 {
				target = t.Succs[0]
			}
			*t = ir.Terminator{Kind: ir.TermBr, Succs: []int{target}}
			n++
		case ir.TermSwitch:
			if !t.Cond.IsConst {
				continue
			}
			target := t.Succs[len(t.Succs)-1] // default
			for ci, cv := range t.Cases {
				if cv == t.Cond.Const {
					target = t.Succs[ci]
					break
				}
			}
			*t = ir.Terminator{Kind: ir.TermBr, Succs: []int{target}}
			n++
		}
	}
	return n
}

// collapseSameTargetCondBrs turns condbr with identical successors
// (which jump threading can create) into br. The condition's side
// effects, if any, were computed by earlier instructions, so dropping
// the branch itself is safe.
func collapseSameTargetCondBrs(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermCondBr && b.Term.Succs[0] == b.Term.Succs[1] {
			b.Term = ir.Terminator{Kind: ir.TermBr, Succs: []int{b.Term.Succs[0]}}
			n++
		}
	}
	return n
}

// threadEmptyBlocks redirects edges that enter an instruction-free block
// ending in an unconditional branch straight to that branch's final
// destination (following chains, guarding against cycles).
func threadEmptyBlocks(f *ir.Func) int {
	resolve := func(start int) int {
		seen := map[int]bool{}
		cur := start
		for {
			b := f.Blocks[cur]
			if len(b.Instrs) != 0 || b.Term.Kind != ir.TermBr || seen[cur] {
				return cur
			}
			seen[cur] = true
			cur = b.Term.Succs[0]
		}
	}
	n := 0
	for _, b := range f.Blocks {
		for si, s := range b.Term.Succs {
			if t := resolve(s); t != s {
				b.Term.Succs[si] = t
				n++
			}
		}
	}
	return n
}

// mergeChains merges block B into its unique predecessor A when A ends
// in an unconditional branch to B and B has no other predecessors
// (and B is not the entry block).
func mergeChains(f *ir.Func) int {
	n := 0
	for {
		preds := f.Preds()
		merged := false
		for _, a := range f.Blocks {
			if a.Term.Kind != ir.TermBr {
				continue
			}
			bID := a.Term.Succs[0]
			if bID == 0 || bID == a.ID {
				continue
			}
			if len(preds[bID]) != 1 {
				continue
			}
			b := f.Blocks[bID]
			a.Instrs = append(a.Instrs, b.Instrs...)
			a.Term = b.Term
			// Neutralize b; removeUnreachable will drop it.
			b.Instrs = nil
			b.Term = ir.Terminator{Kind: ir.TermBr, Succs: []int{b.ID}}
			n++
			merged = true
			break // predecessor lists are stale; recompute
		}
		if !merged {
			return n
		}
	}
}

// removeUnreachable drops blocks not reachable from the entry and
// renumbers the survivors.
func removeUnreachable(f *ir.Func) int {
	reachable := make([]bool, len(f.Blocks))
	stack := []int{0}
	reachable[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Term.Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	removed := 0
	for i, b := range f.Blocks {
		if !reachable[i] {
			removed++
			continue
		}
		remap[i] = len(kept)
		b.ID = len(kept)
		kept = append(kept, b)
	}
	if removed == 0 {
		return 0
	}
	for _, b := range kept {
		for si, s := range b.Term.Succs {
			b.Term.Succs[si] = remap[s]
		}
	}
	f.Blocks = kept
	return removed
}
