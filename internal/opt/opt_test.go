package opt_test

import (
	"testing"

	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/opt"
	"branchalign/internal/testutil"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := testutil.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestFoldConstantCondBr(t *testing.T) {
	mod := compile(t, `func main() { if (1) { return 7; } return 8; }`)
	st := opt.Module(mod)
	if st.FoldedBranches == 0 {
		t.Error("expected a folded conditional")
	}
	f := mod.Funcs[0]
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermCondBr {
			t.Errorf("conditional on constant survived\n%s", f.Body())
		}
	}
	res, err := interp.Run(mod, nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 7 {
		t.Errorf("Ret = %d, want 7", res.Ret)
	}
}

func TestFoldConstantSwitch(t *testing.T) {
	mod := compile(t, `
func main() {
	switch (2) {
	case 1: return 10;
	case 2: return 20;
	default: return 30;
	}
	return -1;
}
`)
	opt.Module(mod)
	for _, b := range mod.Funcs[0].Blocks {
		if b.Term.Kind == ir.TermSwitch {
			t.Error("switch on constant survived")
		}
	}
	res, err := interp.Run(mod, nil, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 20 {
		t.Errorf("Ret = %d, want 20", res.Ret)
	}
}

func TestMergesStraightLineChains(t *testing.T) {
	// A for loop with no post statement lowers with an empty for.post
	// block, and an empty switch arm lowers to a br-only case block; both
	// must disappear.
	mod := compile(t, `
func main(x) {
	var i;
	var s = 0;
	for (i = 0; i < x; ) {
		s = s + 1;
		i = i + 1;
		switch (s % 3) {
		case 0:
		case 1: s = s + 2;
		}
	}
	out(s);
	return s;
}
`)
	before := len(mod.Funcs[0].Blocks)
	st := opt.Module(mod)
	after := len(mod.Funcs[0].Blocks)
	if after >= before {
		t.Errorf("opt did not shrink the CFG: %d -> %d (stats %+v)\n%s",
			before, after, st, mod.Funcs[0].Body())
	}
	if st.ThreadedEdges == 0 {
		t.Errorf("expected threaded edges through empty blocks: %+v", st)
	}
	res, err := interp.Run(mod, []interp.Input{interp.ScalarInput(5)}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// i=1..5: s seq: 1(+2 if (s%3==1) before inc... just trust interp equality:
	raw := compile(t, `
func main(x) {
	var i;
	var s = 0;
	for (i = 0; i < x; ) {
		s = s + 1;
		i = i + 1;
		switch (s % 3) {
		case 0:
		case 1: s = s + 2;
		}
	}
	out(s);
	return s;
}
`)
	rawRes, err := interp.Run(raw, []interp.Input{interp.ScalarInput(5)}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != rawRes.Ret || res.Output[0] != rawRes.Output[0] {
		t.Errorf("semantics changed: %+v vs %+v", res, rawRes)
	}
}

func TestRemovesUnreachableDeadBlocks(t *testing.T) {
	mod := compile(t, `func main() { return 1; out(99); }`)
	st := opt.Module(mod)
	if st.UnreachableBlocks == 0 {
		t.Error("expected dead block removal")
	}
	if len(mod.Funcs[0].Blocks) != 1 {
		t.Errorf("expected a single block, got %d", len(mod.Funcs[0].Blocks))
	}
}

func TestIdempotent(t *testing.T) {
	mod := compile(t, testutil.BranchySource)
	opt.Module(mod)
	second := opt.Module(mod)
	if second != (opt.Stats{}) {
		t.Errorf("second optimization pass still changed things: %+v", second)
	}
}

// TestSemanticsPreservedOnAllBenchmarks is the core safety property: every
// benchmark produces identical output, return value and dynamic call
// counts before and after optimization.
func TestSemanticsPreservedOnAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		raw, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		optimized, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		st := opt.Module(optimized)
		if st.ThreadedEdges+st.MergedBlocks+st.UnreachableBlocks == 0 {
			t.Logf("%s: nothing to optimize (ok)", b.Name)
		}
		ds := b.DataSets[1] // the smaller input keeps this fast
		rawRes, err := interp.Run(raw, ds.Make(), interp.Options{MaxSteps: 1 << 31})
		if err != nil {
			t.Fatalf("%s raw: %v", b.Name, err)
		}
		optRes, err := interp.Run(optimized, ds.Make(), interp.Options{MaxSteps: 1 << 31})
		if err != nil {
			t.Fatalf("%s optimized: %v", b.Name, err)
		}
		if rawRes.Ret != optRes.Ret {
			t.Errorf("%s: return value changed %d -> %d", b.Name, rawRes.Ret, optRes.Ret)
		}
		if rawRes.DynCall != optRes.DynCall {
			t.Errorf("%s: call count changed %d -> %d", b.Name, rawRes.DynCall, optRes.DynCall)
		}
		if len(rawRes.Output) != len(optRes.Output) {
			t.Fatalf("%s: output length changed %d -> %d", b.Name, len(rawRes.Output), len(optRes.Output))
		}
		for i := range rawRes.Output {
			if rawRes.Output[i] != optRes.Output[i] {
				t.Fatalf("%s: output[%d] changed %d -> %d", b.Name, i, rawRes.Output[i], optRes.Output[i])
			}
		}
		if optRes.Steps > rawRes.Steps {
			t.Errorf("%s: optimization increased executed instructions %d -> %d", b.Name, rawRes.Steps, optRes.Steps)
		}
		if optRes.DynBr > rawRes.DynBr {
			t.Errorf("%s: optimization increased unconditional branches %d -> %d", b.Name, rawRes.DynBr, optRes.DynBr)
		}
	}
}

// TestOptimizedModulesStillAlign: the whole alignment stack works on
// optimized CFGs (block IDs were renumbered).
func TestOptimizedModulesStillAlign(t *testing.T) {
	mod := compile(t, testutil.BranchySource)
	opt.Module(mod)
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, testutil.BranchyInput(200, 3), interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	// Alignment validity is enforced by layout.Validate inside Align.
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadingThroughChains(t *testing.T) {
	// Build b0 -> e1 -> e2 -> target by hand, where e1 and e2 are empty.
	fb := ir.NewFuncBuilder("f", nil)
	r := fb.NewReg()
	e1 := fb.NewBlock("e1")
	e2 := fb.NewBlock("e2")
	target := fb.NewBlock("target")
	fb.EmitConst(r, 1)
	fb.Br(e1)
	fb.SetInsert(e1)
	fb.Br(e2)
	fb.SetInsert(e2)
	fb.Br(target)
	fb.SetInsert(target)
	fb.Ret(ir.RegVal(r))
	f := fb.Func()
	mod := &ir.Module{Funcs: []*ir.Func{f}}
	st := opt.Module(mod)
	if st.ThreadedEdges == 0 && st.MergedBlocks == 0 {
		t.Errorf("nothing simplified: %+v", st)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("expected full collapse to 1 block, got %d\n%s", len(f.Blocks), f.Body())
	}
}

func TestInfiniteSelfLoopSurvives(t *testing.T) {
	// An empty block branching to itself must not hang the optimizer.
	fb := ir.NewFuncBuilder("f", nil)
	r := fb.NewReg()
	loop := fb.NewBlock("loop")
	fb.EmitConst(r, 0)
	fb.CondBr(ir.RegVal(r), loop, 2)
	done := fb.NewBlock("done")
	_ = done
	fb.SetInsert(loop)
	fb.Br(loop)
	fb.SetInsert(done)
	fb.Ret(ir.ConstVal(0))
	mod := &ir.Module{Funcs: []*ir.Func{fb.Func()}}
	opt.Module(mod) // must terminate
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
}
