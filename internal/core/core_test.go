package core

import (
	"context"
	"sync"
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/layout"
)

// fastSuite restricts the suite to three benchmarks to keep test time
// moderate while still covering LZW, the cover minimizer and the VM.
func fastSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(1).WithBenchmarks("compress", "espresso", "xli")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable1(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 benchmarks x 2 data sets
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.SitesTouched > r.SitesStatic {
			t.Errorf("%s.%s: touched %d > static %d", r.Bench, r.DataSet, r.SitesTouched, r.SitesStatic)
		}
		if r.ExecutedBranch <= 0 || r.InstructionsRun <= 0 {
			t.Errorf("%s.%s: empty workload", r.Bench, r.DataSet)
		}
		if r.SitesTouched == 0 {
			t.Errorf("%s.%s: no branch sites touched", r.Bench, r.DataSet)
		}
	}
}

func TestTable2PhaseShape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ProfileMS <= 0 || r.SolveMS <= 0 {
			t.Errorf("%s: non-positive phase times: %+v", r.Bench, r)
		}
		// The reproducible shape from the paper's Table 2: profiling and
		// solving dominate the cheap finalization step.
		if r.FinalizeMS > r.ProfileMS+r.SolveMS {
			t.Errorf("%s: finalize (%v ms) should be cheap relative to profile+solve (%v ms)",
				r.Bench, r.FinalizeMS, r.ProfileMS+r.SolveMS)
		}
	}
}

func TestTable4(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.LowerBoundCP > r.OriginalCP {
			t.Errorf("%s.%s: lower bound %d exceeds original penalty %d", r.Bench, r.DataSet, r.LowerBoundCP, r.OriginalCP)
		}
		if r.OriginalCycles <= 0 {
			t.Errorf("%s.%s: no simulated cycles", r.Bench, r.DataSet)
		}
		if r.OriginalCP <= 0 {
			t.Errorf("%s.%s: zero original penalty", r.Bench, r.DataSet)
		}
	}
}

func TestFig2HeadlineShape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	var greedySum, tspSum, boundSum float64
	for _, r := range rows {
		// Bound <= TSP <= greedy <= original (1.0) on the training set.
		if r.TSPCP > r.GreedyCP+1e-9 {
			t.Errorf("%s.%s: TSP CP %.4f above greedy %.4f", r.Bench, r.DataSet, r.TSPCP, r.GreedyCP)
		}
		if r.GreedyCP > 1+1e-9 {
			t.Errorf("%s.%s: greedy CP %.4f above original", r.Bench, r.DataSet, r.GreedyCP)
		}
		if r.BoundCP > r.TSPCP+1e-9 {
			t.Errorf("%s.%s: bound %.4f above TSP %.4f", r.Bench, r.DataSet, r.BoundCP, r.TSPCP)
		}
		if r.GreedyTime > 1.02 || r.TSPTime > 1.02 {
			t.Errorf("%s.%s: aligned layouts slowed execution: greedy %.4f tsp %.4f",
				r.Bench, r.DataSet, r.GreedyTime, r.TSPTime)
		}
		greedySum += r.GreedyCP
		tspSum += r.TSPCP
		boundSum += r.BoundCP
	}
	n := float64(len(rows))
	// The paper's headline: a large fraction of control penalty is
	// removable and TSP essentially meets the bound. Exact percentages
	// depend on the workloads; require the qualitative shape.
	if tspSum/n > 0.9 {
		t.Errorf("TSP removes too little penalty on average: %.3f", tspSum/n)
	}
	if tspSum/n > boundSum/n+0.05 {
		t.Errorf("TSP mean %.4f far from bound mean %.4f", tspSum/n, boundSum/n)
	}
	_ = greedySum
}

func TestFig3CrossValidationShape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var selfT, crossT float64
	for _, r := range rows {
		if r.TrainSet == r.TestSet {
			t.Errorf("%s: cross row trains and tests on the same set", r.Bench)
		}
		// Self-trained must not be beaten by cross-trained on the
		// training metric in aggregate; per-row we allow noise, so only
		// accumulate.
		selfT += r.TSPSelfCP
		crossT += r.TSPCrossCP
		for name, v := range map[string]float64{
			"GreedySelfCP": r.GreedySelfCP, "GreedyCrossCP": r.GreedyCrossCP,
			"TSPSelfCP": r.TSPSelfCP, "TSPCrossCP": r.TSPCrossCP,
			"GreedySelfTime": r.GreedySelfTime, "TSPCrossTime": r.TSPCrossTime,
		} {
			if v <= 0 {
				t.Errorf("%s.%s: %s = %v", r.Bench, r.TestSet, name, v)
			}
		}
	}
	if crossT < selfT-1e-9 {
		t.Errorf("cross-trained TSP (%0.4f) beats self-trained (%0.4f) in aggregate; suspicious", crossT, selfT)
	}
}

func TestAppendixStats(t *testing.T) {
	s := fastSuite(t)
	st, err := s.Appendix()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Instances) < 10 {
		t.Fatalf("only %d instances", len(st.Instances))
	}
	for _, inst := range st.Instances {
		if inst.APBound > inst.TourCost {
			t.Errorf("%s/%s: AP %d above tour %d", inst.Bench, inst.Func, inst.APBound, inst.TourCost)
		}
		if inst.HKBound > inst.TourCost {
			t.Errorf("%s/%s: HK %d above tour %d", inst.Bench, inst.Func, inst.HKBound, inst.TourCost)
		}
	}
	if st.HKGapMeanPct > 5 {
		t.Errorf("mean HK gap %.2f%% too large (paper: < 0.3%%)", st.HKGapMeanPct)
	}
	if st.AllRunsTied == 0 && st.SolvedExactly == 0 {
		t.Error("no instance solved consistently; solver unstable")
	}
}

func TestAppendixSynthetic(t *testing.T) {
	s := fastSuite(t)
	st, err := s.AppendixSynthetic(8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Instances) != 8 {
		t.Fatalf("got %d synthetic instances", len(st.Instances))
	}
	for _, inst := range st.Instances {
		if inst.Cities != 30 {
			t.Errorf("instance has %d cities, want 30", inst.Cities)
		}
		if inst.APBound > inst.TourCost || inst.HKBound > inst.TourCost {
			t.Errorf("bound above tour on synthetic instance: %+v", inst)
		}
	}
}

func TestSuiteCaches(t *testing.T) {
	s := fastSuite(t)
	b := s.Benchmarks()[0]
	ds := &b.DataSets[0]
	p1, _, err := s.ProfileOf(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := s.ProfileOf(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("profile not cached")
	}
	l1, err := s.LayoutsOf(context.Background(), b, ds)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.LayoutsOf(context.Background(), b, ds)
	if err != nil {
		t.Fatal(err)
	}
	if l1["tsp"] != l2["tsp"] {
		t.Error("layouts not cached")
	}
	tr1, err := s.TraceOf(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := s.TraceOf(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("trace not cached")
	}
}

func TestWithBenchmarksRejectsUnknown(t *testing.T) {
	if _, err := NewSuite(1).WithBenchmarks("nonesuch"); err == nil {
		t.Error("expected error")
	}
}

// TestSuiteConcurrentUse pins that one Suite is safe for concurrent
// callers: parallel ProfileOf/LayoutsOf/Module/TraceOf over overlapping
// keys must neither race (run under -race in CI) nor compute a cached
// value twice — every goroutine must observe the same pointers.
func TestSuiteConcurrentUse(t *testing.T) {
	s := fastSuite(t)
	benches := s.Benchmarks()

	type got struct {
		prof    *interp.Profile
		layouts map[string]*layout.Layout
	}
	const workers = 8
	results := make([]map[string]got, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = map[string]got{}
			for _, b := range benches {
				ds := &b.DataSets[0]
				prof, _, err := s.ProfileOf(b, ds)
				if err != nil {
					t.Errorf("ProfileOf(%s): %v", b.Name, err)
					return
				}
				layouts, err := s.LayoutsOf(context.Background(), b, ds)
				if err != nil {
					t.Errorf("LayoutsOf(%s): %v", b.Name, err)
					return
				}
				if _, err := s.Module(b); err != nil {
					t.Errorf("Module(%s): %v", b.Name, err)
					return
				}
				results[w][b.Name] = got{prof: prof, layouts: layouts}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for w := 1; w < workers; w++ {
		for _, b := range benches {
			if results[w][b.Name].prof != results[0][b.Name].prof {
				t.Errorf("%s: worker %d computed a second profile", b.Name, w)
			}
			if results[w][b.Name].layouts["tsp"] != results[0][b.Name].layouts["tsp"] {
				t.Errorf("%s: worker %d computed a second layout set", b.Name, w)
			}
		}
	}
}
