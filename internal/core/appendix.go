package core

import (
	"sort"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/tsp"
)

// InstanceStats holds the per-procedure DTSP diagnostics the paper's
// appendix analyzes.
type InstanceStats struct {
	Bench, Func string
	Cities      int
	// TourCost is the best tour the solver found (provably optimal when
	// Exact).
	TourCost Cost
	Exact    bool
	// APBound and HKBound are the assignment-problem and Held-Karp lower
	// bounds for this instance.
	APBound Cost
	HKBound Cost
	// RunsAtBest / Runs reports how many of the iterated-3-Opt runs tied
	// the best cost (the appendix: "on 128 of the 179 procedures in
	// esp.tl it was found on all 10 runs").
	RunsAtBest, Runs int
}

// AppendixStats aggregates InstanceStats the way the paper's appendix
// reports them.
type AppendixStats struct {
	Instances []InstanceStats
	// APTight counts instances whose AP bound equals the best tour.
	APTight int
	// APGapMedianPct is the median relative gap (tour-AP)/AP, in percent,
	// over the instances where AP is *not* tight (paper: median 30%).
	APGapMedianPct float64
	// APGapOver10x counts instances where the tour exceeds 10x the AP
	// bound (paper: 15 instances).
	APGapOver10x int
	// HKGapMeanPct and HKGapWorstPct are the mean and worst relative gaps
	// (tour-HK)/tour in percent (paper: mean < 0.3%, worst 14%).
	HKGapMeanPct  float64
	HKGapWorstPct float64
	// AllRunsTied counts instances where every local-search run found the
	// best cost; SolvedExactly counts the DP-solved ones.
	AllRunsTied   int
	SolvedExactly int
}

// Appendix reproduces the paper's appendix analysis over every procedure
// of every active benchmark (the paper uses the procedures of esp.tl;
// with our smaller programs, the whole suite gives a comparable
// instance population). Trivial one- and two-block procedures are
// excluded, as tours are forced there.
func (s *Suite) Appendix() (*AppendixStats, error) {
	out := &AppendixStats{}
	tspAligner := align.NewTSP(s.Seed)
	tspAligner.Obs = s.Obs
	hkOpts := s.hkOpts()
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		ds := &b.DataSets[0]
		prof, _, err := s.ProfileOf(b, ds)
		if err != nil {
			return nil, err
		}
		for fi, f := range mod.Funcs {
			if len(f.Blocks) < 3 {
				continue
			}
			res := tspAligner.SolveFunc(f, prof.Funcs[fi], s.Model, tsp.PaperSolveOptions(s.Seed), int64(fi))
			inst := InstanceStats{
				Bench:      b.Abbr,
				Func:       f.Name,
				Cities:     res.Cities,
				TourCost:   res.Cost,
				Exact:      res.Exact,
				Runs:       res.Runs,
				RunsAtBest: res.RunsAtBest,
				HKBound:    align.FuncHeldKarpBound(f, prof.Funcs[fi], s.Model, hkOpts),
			}
			mat := align.BuildSparseMatrixForFunc(f, prof.Funcs[fi], s.Model)
			inst.APBound = tsp.AssignmentBound(mat)
			out.Instances = append(out.Instances, inst)
		}
	}
	finalizeAppendix(out)
	return out, nil
}

// AppendixSynthetic augments the instance population with synthetic CFGs
// (the suite's procedures are fewer than esp.tl's 179; synthetic
// instances restore a comparable sample size for the gap statistics).
func (s *Suite) AppendixSynthetic(count, blocks int) (*AppendixStats, error) {
	out := &AppendixStats{}
	tspAligner := align.NewTSP(s.Seed)
	tspAligner.Obs = s.Obs
	hkOpts := s.hkOpts()
	for i := 0; i < count; i++ {
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, s.Seed+int64(i)*977))
		if err != nil {
			return nil, err
		}
		f := mod.Funcs[0]
		res := tspAligner.SolveFunc(f, prof.Funcs[0], s.Model, tsp.PaperSolveOptions(s.Seed), int64(i))
		inst := InstanceStats{
			Bench:      "synth",
			Func:       f.Name,
			Cities:     res.Cities,
			TourCost:   res.Cost,
			Exact:      res.Exact,
			Runs:       res.Runs,
			RunsAtBest: res.RunsAtBest,
			HKBound:    align.FuncHeldKarpBound(f, prof.Funcs[0], s.Model, hkOpts),
		}
		mat := align.BuildSparseMatrixForFunc(f, prof.Funcs[0], s.Model)
		inst.APBound = tsp.AssignmentBound(mat)
		out.Instances = append(out.Instances, inst)
	}
	finalizeAppendix(out)
	return out, nil
}

// FinalizeAppendix recomputes the aggregate fields of an AppendixStats
// from its Instances, for callers that merge instance populations.
func FinalizeAppendix(out *AppendixStats) {
	out.APTight, out.APGapOver10x, out.AllRunsTied, out.SolvedExactly = 0, 0, 0, 0
	out.APGapMedianPct, out.HKGapMeanPct, out.HKGapWorstPct = 0, 0, 0
	finalizeAppendix(out)
}

func finalizeAppendix(out *AppendixStats) {
	var apGaps []float64
	var hkGapSum float64
	hkCount := 0
	for _, inst := range out.Instances {
		if inst.Exact {
			out.SolvedExactly++
		}
		if inst.RunsAtBest == inst.Runs {
			out.AllRunsTied++
		}
		switch {
		case inst.APBound == inst.TourCost:
			out.APTight++
		case inst.APBound > 0:
			gap := 100 * float64(inst.TourCost-inst.APBound) / float64(inst.APBound)
			apGaps = append(apGaps, gap)
			if inst.TourCost > 10*inst.APBound {
				out.APGapOver10x++
			}
		default: // APBound == 0 < TourCost: infinite relative gap
			out.APGapOver10x++
		}
		if inst.TourCost > 0 {
			gap := 100 * float64(inst.TourCost-inst.HKBound) / float64(inst.TourCost)
			if gap < 0 {
				gap = 0
			}
			hkGapSum += gap
			hkCount++
			if gap > out.HKGapWorstPct {
				out.HKGapWorstPct = gap
			}
		}
	}
	if len(apGaps) > 0 {
		sort.Float64s(apGaps)
		out.APGapMedianPct = apGaps[len(apGaps)/2]
	}
	if hkCount > 0 {
		out.HKGapMeanPct = hkGapSum / float64(hkCount)
	}
}
