package core

import (
	"testing"

	"branchalign/internal/pipe"
)

func TestExtCacheAware(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.ExtCacheAware(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The aware layout optimizes a surcharged objective, so its plain
		// control penalty can only be >= the plain layout's (which is
		// near-optimal for the plain objective).
		if r.AwareCP < r.PlainCP {
			t.Errorf("%s.%s: aware CP %d below plain %d (plain should be optimal for plain weights)",
				r.Bench, r.DataSet, r.AwareCP, r.PlainCP)
		}
		if r.PlainCycles <= 0 || r.AwareCycles <= 0 {
			t.Errorf("%s.%s: empty simulation", r.Bench, r.DataSet)
		}
		// The surcharge is a bias, not a pessimization: simulated time
		// must stay within a few percent of the plain layout. The
		// tiniest training set (xli.ne, 7.6K branches) is the standing
		// exception: its plain and cache-aware layouts are near-ties
		// whose tie-break tracks the solver stream (per-run seeding
		// moved it to 1.076x, the Or-opt move family to 1.27x), so it
		// gets a looser pin than the real datasets.
		slack := 1.10
		if r.Bench == "xli" && r.DataSet == "ne" {
			slack = 1.35
		}
		if float64(r.AwareCycles) > slack*float64(r.PlainCycles) {
			t.Errorf("%s.%s: cache-aware layout much slower: %d vs %d",
				r.Bench, r.DataSet, r.AwareCycles, r.PlainCycles)
		}
	}
}

func TestExtProcOrder(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.ExtProcOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PlainCycles <= 0 || r.OrderCycles <= 0 {
			t.Fatalf("%s.%s: empty simulation", r.Bench, r.DataSet)
		}
		// Function order does not change penalties, only cache behavior,
		// so cycle changes are bounded by miss-count changes.
		dCycles := r.OrderCycles - r.PlainCycles
		dMisses := (r.OrderMisses - r.PlainMisses) * 10
		if dCycles != dMisses {
			t.Errorf("%s.%s: cycle delta %d != miss-penalty delta %d", r.Bench, r.DataSet, dCycles, dMisses)
		}
	}
}

func TestExtOptimize(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.ExtOptimize()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OptBlocks > r.RawBlocks {
			t.Errorf("%s.%s: optimizer grew the CFG %d -> %d", r.Bench, r.DataSet, r.RawBlocks, r.OptBlocks)
		}
		if r.OptOrigCP > r.RawOrigCP {
			t.Errorf("%s.%s: optimizer increased original-layout penalty %d -> %d",
				r.Bench, r.DataSet, r.RawOrigCP, r.OptOrigCP)
		}
		if r.RawTSPCP <= 0 || r.RawTSPCP > 1 || r.OptTSPCP <= 0 || r.OptTSPCP > 1 {
			t.Errorf("%s.%s: normalized penalties out of range: %+v", r.Bench, r.DataSet, r)
		}
	}
}

func TestExtPredictor(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.ExtPredictor(pipe.PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.StaticTSPCycles > r.StaticOrigCycles {
			t.Errorf("%s.%s: TSP slower than original under static prediction", r.Bench, r.DataSet)
		}
		if r.DynTSPCycles <= 0 || r.DynOrigCycles <= 0 {
			t.Errorf("%s.%s: empty dynamic simulation", r.Bench, r.DataSet)
		}
		if r.StaticTSPMispred < 0 || r.DynTSPMispred < 0 {
			t.Errorf("%s.%s: negative mispredict counts", r.Bench, r.DataSet)
		}
	}
}
func TestExtUnionTraining(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.ExtUnionTraining()
	if err != nil {
		t.Fatal(err)
	}
	var selfSum, crossSum, unionSum float64
	for _, r := range rows {
		if r.SelfCP <= 0 || r.CrossCP <= 0 || r.UnionCP <= 0 {
			t.Errorf("%s.%s: non-positive normalized penalties: %+v", r.Bench, r.TestSet, r)
		}
		selfSum += r.SelfCP
		crossSum += r.CrossCP
		unionSum += r.UnionCP
	}
	// Union training must recover some of the gap between cross and self
	// training in aggregate (it has strictly more information than either
	// single-input trainer).
	if unionSum > crossSum+1e-9 {
		t.Errorf("union-trained penalty %.4f worse than cross-trained %.4f in aggregate", unionSum, crossSum)
	}
	if selfSum > unionSum+1e-9 {
		t.Logf("self %.4f <= union %.4f as expected", selfSum, unionSum)
	}
}
