package core

import (
	"context"

	"branchalign/internal/layout"
)

// ExtTSPRow is one (benchmark, data set, aligner) cell of the
// aligner-family judgment: the control penalty the DTSP objective
// minimizes, the ExtTSP locality score the chain merger maximizes, and
// the simulated execution time that arbitrates between them.
type ExtTSPRow struct {
	Bench, DataSet, Aligner string
	// CP and CPNorm: control penalty and its ratio to the original
	// layout's (lower is better).
	CP     Cost
	CPNorm float64
	// Score is the layout's ExtTSP objective value (higher is better).
	Score float64
	// Cycles and CyclesNorm: simulated pipeline+I-cache execution time
	// and its ratio to the original layout's.
	Cycles     Cost
	CyclesNorm float64
	// Misses: simulated I-cache misses.
	Misses int64
}

// ExtTSPAligners is the family ExtTSPMatrix judges: every registered
// aligner, ordered weakest heuristic to strongest solver with the
// original order as the normalization baseline in front.
var ExtTSPAligners = []string{"original", "greedy", "calder-grunwald", "ap-patch", "tsp", "exttsp"}

// ExtTSPMatrix runs the full aligner family over every benchmark and
// data set, reporting control penalty, ExtTSP score and simulated
// cycles per cell. This is the experiment that answers the headline
// question of the ExtTSP line (arXiv:1809.04676): the chain merger
// concedes control-penalty cycles to the DTSP solver by construction —
// does the I-cache locality it buys instead win on simulated execution
// time?
func (s *Suite) ExtTSPMatrix() ([]ExtTSPRow, error) {
	params := layout.DefaultExtTSPParams()
	var rows []ExtTSPRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			var origCP, origCycles Cost
			for _, name := range ExtTSPAligners {
				l, err := s.LayoutFor(context.Background(), b, ds, name)
				if err != nil {
					return nil, err
				}
				sim, err := s.SimulateCycles(b, ds, mod, l)
				if err != nil {
					return nil, err
				}
				cp := layout.ModulePenalty(mod, l, prof, s.Model)
				if name == "original" {
					origCP, origCycles = cp, sim.Cycles
				}
				rows = append(rows, ExtTSPRow{
					Bench:      b.Abbr,
					DataSet:    ds.Name,
					Aligner:    name,
					CP:         cp,
					CPNorm:     norm(cp, origCP),
					Score:      layout.ModuleExtTSPScore(mod, l, prof, params),
					Cycles:     sim.Cycles,
					CyclesNorm: norm(sim.Cycles, origCycles),
					Misses:     sim.CacheMisses,
				})
			}
		}
	}
	return rows, nil
}

// norm is the ratio to the original-layout baseline, 1.0 when the
// baseline is zero (degenerate cells normalize to parity).
func norm(v, base Cost) float64 {
	if base == 0 {
		return 1
	}
	return float64(v) / float64(base)
}

// ExtTSPSummary aggregates a matrix into one line per aligner: mean
// normalized control penalty and mean normalized simulated time over
// all (benchmark, data set) cells. The tsp-vs-exttsp pair of lines is
// the experiment's verdict.
type ExtTSPSummary struct {
	Aligner        string
	MeanCPNorm     float64
	MeanCyclesNorm float64
	// CyclesWins counts cells where this aligner simulated strictly
	// faster than the tsp aligner on the same (benchmark, data set).
	CyclesWins int
	Cells      int
}

// SummarizeExtTSP reduces ExtTSPMatrix rows per aligner, preserving
// ExtTSPAligners order.
func SummarizeExtTSP(rows []ExtTSPRow) []ExtTSPSummary {
	tspCycles := map[string]Cost{}
	for _, r := range rows {
		if r.Aligner == "tsp" {
			tspCycles[r.Bench+"."+r.DataSet] = r.Cycles
		}
	}
	var out []ExtTSPSummary
	for _, name := range ExtTSPAligners {
		var sum ExtTSPSummary
		sum.Aligner = name
		for _, r := range rows {
			if r.Aligner != name {
				continue
			}
			sum.Cells++
			sum.MeanCPNorm += r.CPNorm
			sum.MeanCyclesNorm += r.CyclesNorm
			if base, ok := tspCycles[r.Bench+"."+r.DataSet]; ok && r.Cycles < base {
				sum.CyclesWins++
			}
		}
		if sum.Cells > 0 {
			sum.MeanCPNorm /= float64(sum.Cells)
			sum.MeanCyclesNorm /= float64(sum.Cells)
		}
		out = append(out, sum)
	}
	return out
}
