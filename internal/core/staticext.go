package core

import (
	"context"

	"branchalign/internal/align"
	"branchalign/internal/layout"
	"branchalign/internal/staticprof"
)

// StaticProfileRow compares three block layouts of one benchmark/data
// pair, all evaluated against the *measured* profile (the ground truth
// for what the program actually does): the compiler order, the TSP
// layout trained on the measured profile, and the TSP layout trained on
// the statically *estimated* profile (internal/staticprof — no
// execution at all). The question is how much of the profile-guided
// benefit survives when no profile is available.
type StaticProfileRow struct {
	Bench, DataSet string
	// OrigCP / MeasuredCP / StaticCP: control penalty of the compiler
	// order, the measured-profile TSP layout, and the static-profile TSP
	// layout — all charged under the measured profile.
	OrigCP, MeasuredCP, StaticCP Cost
	// Recovered is the fraction of the measured-profile improvement the
	// static-profile layout retains:
	// (OrigCP-StaticCP) / (OrigCP-MeasuredCP). 1.0 means the estimate
	// was as good as running the program; 0 means no better than the
	// compiler order; negative means actively worse.
	Recovered float64
	// Simulated execution cycles of the three layouts (pipeline +
	// I-cache, replaying the measured trace).
	OrigCycles, MeasuredCycles, StaticCycles Cost
}

// ExtStaticProfile runs the static-estimation experiment over the
// suite. The static layout is computed once per benchmark (it depends
// only on the module) and evaluated against each data set's measured
// profile.
func (s *Suite) ExtStaticProfile() ([]StaticProfileRow, error) {
	var rows []StaticProfileRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		est, _ := staticprof.Estimate(mod)
		staticL := align.NewTSP(s.Seed).Align(context.Background(), mod, est, s.Model)
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			layouts, err := s.LayoutsOf(context.Background(), b, ds)
			if err != nil {
				return nil, err
			}
			origL := layout.Identity(mod, prof, s.Model)
			origCP := layout.ModulePenalty(mod, origL, prof, s.Model)
			measuredCP := layout.ModulePenalty(mod, layouts["tsp"], prof, s.Model)
			staticCP := layout.ModulePenalty(mod, staticL, prof, s.Model)

			origSim, err := s.SimulateCycles(b, ds, mod, origL)
			if err != nil {
				return nil, err
			}
			measuredSim, err := s.SimulateCycles(b, ds, mod, layouts["tsp"])
			if err != nil {
				return nil, err
			}
			staticSim, err := s.SimulateCycles(b, ds, mod, staticL)
			if err != nil {
				return nil, err
			}

			rows = append(rows, StaticProfileRow{
				Bench:          b.Abbr,
				DataSet:        ds.Name,
				OrigCP:         origCP,
				MeasuredCP:     measuredCP,
				StaticCP:       staticCP,
				Recovered:      recoveredFraction(origCP, measuredCP, staticCP),
				OrigCycles:     origSim.Cycles,
				MeasuredCycles: measuredSim.Cycles,
				StaticCycles:   staticSim.Cycles,
			})
		}
	}
	return rows, nil
}

// recoveredFraction is the per-row recovery ratio, with the degenerate
// case (measured TSP found nothing to remove) mapped to full recovery.
func recoveredFraction(orig, measured, static Cost) float64 {
	if orig <= measured {
		return 1
	}
	return float64(orig-static) / float64(orig-measured)
}

// StaticRecoveredAggregate computes the suite-level recovery fraction —
// total penalty removed by static-profile TSP over total removed by
// measured-profile TSP. Summing before dividing weights each benchmark
// by its absolute penalty, so a tiny benchmark cannot swing the
// aggregate the way a mean of ratios would.
func StaticRecoveredAggregate(rows []StaticProfileRow) float64 {
	var removedStatic, removedMeasured Cost
	for _, r := range rows {
		removedStatic += r.OrigCP - r.StaticCP
		removedMeasured += r.OrigCP - r.MeasuredCP
	}
	if removedMeasured <= 0 {
		return 1
	}
	return float64(removedStatic) / float64(removedMeasured)
}
