package core

import (
	"context"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/opt"
	"branchalign/internal/pipe"
)

// CacheAwareRow compares plain TSP alignment with TSP alignment under
// cache-aware edge weights (machine.CacheAware), both evaluated with the
// plain model and the full pipeline+cache simulator. This is the
// extension the paper's conclusion proposes.
type CacheAwareRow struct {
	Bench, DataSet string
	// PlainCP / AwareCP: control penalties of both layouts under the
	// *plain* model (the aware layout may concede a few penalty cycles).
	PlainCP, AwareCP Cost
	// PlainCycles / AwareCycles: simulated execution times.
	PlainCycles, AwareCycles Cost
	// PlainMisses / AwareMisses: I-cache misses.
	PlainMisses, AwareMisses int64
}

// ExtCacheAware aligns every benchmark twice — with the plain model and
// with a cache-aware surcharge of extra cycles per taken transfer — and
// simulates both.
func (s *Suite) ExtCacheAware(extra Cost) ([]CacheAwareRow, error) {
	awareModel := machine.CacheAware(s.Model, extra)
	var rows []CacheAwareRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			plainL := align.NewTSP(s.Seed).Align(context.Background(), mod, prof, s.Model)
			awareL := align.NewTSP(s.Seed).Align(context.Background(), mod, prof, awareModel)
			plainSim, err := s.SimulateCycles(b, ds, mod, plainL)
			if err != nil {
				return nil, err
			}
			awareSim, err := s.SimulateCycles(b, ds, mod, awareL)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CacheAwareRow{
				Bench:       b.Abbr,
				DataSet:     ds.Name,
				PlainCP:     layout.ModulePenalty(mod, plainL, prof, s.Model),
				AwareCP:     layout.ModulePenalty(mod, awareL, prof, s.Model),
				PlainCycles: plainSim.Cycles,
				AwareCycles: awareSim.Cycles,
				PlainMisses: plainSim.CacheMisses,
				AwareMisses: awareSim.CacheMisses,
			})
		}
	}
	return rows, nil
}

// ProcOrderRow compares module-order function placement against
// Pettis-Hansen procedure ordering (layout.OrderFunctions) for the TSP
// block layout — the interprocedural extension of the paper's future
// work.
type ProcOrderRow struct {
	Bench, DataSet           string
	PlainCycles, OrderCycles Cost
	PlainMisses, OrderMisses int64
}

// ExtProcOrder measures the effect of procedure ordering on simulated
// execution time.
func (s *Suite) ExtProcOrder() ([]ProcOrderRow, error) {
	var rows []ProcOrderRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			layouts, err := s.LayoutsOf(context.Background(), b, ds)
			if err != nil {
				return nil, err
			}
			tr, err := s.TraceOf(b, ds)
			if err != nil {
				return nil, err
			}
			cfg := pipe.Config{Model: s.Model, Cache: s.Cache}
			plain := pipe.Replay(tr, mod, layouts["tsp"], cfg)
			cfg.FuncOrder = layout.OrderFunctions(mod, prof)
			ordered := pipe.Replay(tr, mod, layouts["tsp"], cfg)
			rows = append(rows, ProcOrderRow{
				Bench:       b.Abbr,
				DataSet:     ds.Name,
				PlainCycles: plain.Cycles,
				OrderCycles: ordered.Cycles,
				PlainMisses: plain.CacheMisses,
				OrderMisses: ordered.CacheMisses,
			})
		}
	}
	return rows, nil
}

// OptimizeRow compares alignment benefit on raw lowered CFGs against
// CFGs pre-cleaned by the optimizer (internal/opt): a production
// compiler would have removed trivial jumps before code placement, so
// this ablation asks how much of the alignment win is "real" vs cleanup
// the front end left on the table.
type OptimizeRow struct {
	Bench, DataSet string
	// Block counts before/after optimization (whole module).
	RawBlocks, OptBlocks int
	// Normalized TSP control penalty (vs each variant's own original
	// layout).
	RawTSPCP, OptTSPCP float64
	// Absolute original-layout penalties of both variants.
	RawOrigCP, OptOrigCP Cost
}

// ExtOptimize runs the optimizer ablation. It recompiles each benchmark
// (the suite's cached modules stay untouched) and reprofiles the
// optimized variant, since optimization renumbers blocks.
func (s *Suite) ExtOptimize() ([]OptimizeRow, error) {
	var rows []OptimizeRow
	for _, b := range s.benchmarks {
		rawMod, err := b.Compile()
		if err != nil {
			return nil, err
		}
		optMod, err := b.Compile()
		if err != nil {
			return nil, err
		}
		opt.Module(optMod)
		countBlocks := func(m *ir.Module) int {
			n := 0
			for _, f := range m.Funcs {
				n += len(f.Blocks)
			}
			return n
		}
		measure := func(m *ir.Module, ds *bench.DataSet) (float64, Cost, error) {
			prof := interp.NewProfile(m)
			if _, err := interp.Run(m, ds.Make(), interp.Options{Profile: prof, MaxSteps: s.MaxSteps}); err != nil {
				return 0, 0, err
			}
			orig := layout.ModulePenalty(m, align.Original{}.Align(context.Background(), m, prof, s.Model), prof, s.Model)
			tspCP := layout.ModulePenalty(m, align.NewTSP(s.Seed).Align(context.Background(), m, prof, s.Model), prof, s.Model)
			norm := 1.0
			if orig > 0 {
				norm = float64(tspCP) / float64(orig)
			}
			return norm, orig, nil
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			row := OptimizeRow{
				Bench:     b.Abbr,
				DataSet:   ds.Name,
				RawBlocks: countBlocks(rawMod),
				OptBlocks: countBlocks(optMod),
			}
			var err error
			if row.RawTSPCP, row.RawOrigCP, err = measure(rawMod, ds); err != nil {
				return nil, err
			}
			if row.OptTSPCP, row.OptOrigCP, err = measure(optMod, ds); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// UnionRow compares cross-trained layouts against layouts trained on the
// union of both data sets' profiles, evaluated on each testing input.
// The paper stresses that "it is very important to find good training
// inputs"; merging profiles is the standard practical answer, and this
// experiment measures how much of the self-trained benefit it recovers.
type UnionRow struct {
	Bench, TestSet string
	// Normalized control penalties on the testing profile (original = 1).
	SelfCP, CrossCP, UnionCP float64
}

// ExtUnionTraining runs the union-profile training experiment with the
// TSP aligner.
func (s *Suite) ExtUnionTraining() ([]UnionRow, error) {
	var rows []UnionRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		// Build the union profile once per benchmark.
		union := interp.NewProfile(mod)
		for i := range b.DataSets {
			p, _, err := s.ProfileOf(b, &b.DataSets[i])
			if err != nil {
				return nil, err
			}
			if err := union.Merge(p); err != nil {
				return nil, err
			}
		}
		unionLayout := align.NewTSP(s.Seed).Align(context.Background(), mod, union, s.Model)
		for i := range b.DataSets {
			test := &b.DataSets[i]
			train := &b.DataSets[(i+1)%len(b.DataSets)]
			testProf, _, err := s.ProfileOf(b, test)
			if err != nil {
				return nil, err
			}
			selfLayouts, err := s.LayoutsOf(context.Background(), b, test)
			if err != nil {
				return nil, err
			}
			crossLayouts, err := s.LayoutsOf(context.Background(), b, train)
			if err != nil {
				return nil, err
			}
			origCP := layout.ModulePenalty(mod, selfLayouts["original"], testProf, s.Model)
			norm := func(l *layout.Layout) float64 {
				if origCP == 0 {
					return 1
				}
				return float64(layout.ModulePenalty(mod, l, testProf, s.Model)) / float64(origCP)
			}
			rows = append(rows, UnionRow{
				Bench:   b.Abbr,
				TestSet: test.Name,
				SelfCP:  norm(selfLayouts["tsp"]),
				CrossCP: norm(crossLayouts["tsp"]),
				UnionCP: norm(unionLayout),
			})
		}
	}
	return rows, nil
}

// PredictorRow compares static prediction against simulated two-bit
// dynamic prediction for the same layouts (the paper's footnote-6
// trace-driven predictor study, with aliasing).
type PredictorRow struct {
	Bench, DataSet string
	// Cycles and conditional mispredicts under the original and TSP
	// layouts, for static and dynamic prediction.
	StaticOrigCycles, StaticTSPCycles Cost
	DynOrigCycles, DynTSPCycles       Cost
	StaticTSPMispred, DynTSPMispred   int64
}

// ExtPredictor runs the predictor comparison.
func (s *Suite) ExtPredictor(predCfg pipe.PredictorConfig) ([]PredictorRow, error) {
	predCfg.Kind = pipe.PredictTwoBit
	var rows []PredictorRow
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			layouts, err := s.LayoutsOf(context.Background(), b, ds)
			if err != nil {
				return nil, err
			}
			tr, err := s.TraceOf(b, ds)
			if err != nil {
				return nil, err
			}
			static := pipe.Config{Model: s.Model, Cache: s.Cache}
			dyn := static
			dyn.Predictor = predCfg
			so := pipe.Replay(tr, mod, layouts["original"], static)
			st := pipe.Replay(tr, mod, layouts["tsp"], static)
			do := pipe.Replay(tr, mod, layouts["original"], dyn)
			dt := pipe.Replay(tr, mod, layouts["tsp"], dyn)
			rows = append(rows, PredictorRow{
				Bench:            b.Abbr,
				DataSet:          ds.Name,
				StaticOrigCycles: so.Cycles,
				StaticTSPCycles:  st.Cycles,
				DynOrigCycles:    do.Cycles,
				DynTSPCycles:     dt.Cycles,
				StaticTSPMispred: st.CondMispredicts,
				DynTSPMispred:    dt.CondMispredicts,
			})
		}
	}
	return rows, nil
}
