// Package core ties the reproduction together: it compiles the benchmark
// suite, collects profiles and traces, runs the aligners, and implements
// one driver per table and figure of the paper (see DESIGN.md for the
// experiment index). cmd/experiments and the repository-level benchmarks
// are thin wrappers over this package.
package core

import (
	"context"
	"fmt"
	"sync"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/pipe"
	"branchalign/internal/tsp"
)

// Cost re-exports the cycle type.
type Cost = machine.Cost

// Suite is a lazily-evaluated experiment context: modules, profiles and
// traces are computed once and shared across experiments.
type Suite struct {
	// Model is the penalty model (default Alpha 21164).
	Model machine.Model
	// Cache is the I-cache simulated for execution times.
	Cache pipe.CacheConfig
	// Seed drives every randomized component deterministically.
	Seed int64
	// Parallelism is the per-run parallelism of each TSP solve (see
	// tsp.SolveOptions.Parallelism). Results are bit-identical at every
	// setting; per-function parallelism is always on and both layers
	// share one worker pool.
	Parallelism int
	// Algorithms names the aligners every experiment compares, resolved
	// through the align registry. Nil keeps the paper's trio — original,
	// greedy (Pettis-Hansen) and tsp — so the pinned experiment goldens
	// are unaffected by registry growth.
	Algorithms []string
	// HKOpts configures the Held-Karp bound.
	HKOpts tsp.HeldKarpOptions
	// MaxSteps bounds each profiling/tracing interpreter run.
	MaxSteps int64
	// Obs, when non-nil, is the parent span the suite's pipeline stages
	// report telemetry under (profiling and trace-recording runs, the
	// TSP aligner's per-function solves, Held-Karp bounds, simulations).
	// cmd/experiments -events wires this to an NDJSON trace.
	Obs *obs.Span

	// mu guards the lazy caches below. Suites are safe for concurrent
	// use: parallel LayoutsOf/ProfileOf calls on the same key compute
	// once and share the cached value (computation happens under the
	// lock, so concurrent callers serialize rather than duplicate work).
	mu         sync.Mutex
	benchmarks []*bench.Benchmark
	mods       map[string]*ir.Module
	profiles   map[string]*profileRun
	traces     map[string]*pipe.Trace
	layouts    map[string]map[string]*layout.Layout
}

type profileRun struct {
	prof *interp.Profile
	res  interp.Result
}

// NewSuite builds a Suite over the full benchmark set with the paper's
// machine model.
func NewSuite(seed int64) *Suite {
	return &Suite{
		Model: machine.Alpha21164(),
		Cache: pipe.DefaultCache(),
		Seed:  seed,
		// The paper's Held-Karp bounds average within 0.3% of the optimum;
		// reaching comparable tightness takes a few thousand subgradient
		// iterations on the larger (switch-heavy) instances.
		HKOpts:     tsp.HeldKarpOptions{Iterations: 3000},
		MaxSteps:   1 << 31,
		benchmarks: bench.All(),
		mods:       map[string]*ir.Module{},
		profiles:   map[string]*profileRun{},
		traces:     map[string]*pipe.Trace{},
		layouts:    map[string]map[string]*layout.Layout{},
	}
}

// WithBenchmarks restricts the suite (used by fast tests).
func (s *Suite) WithBenchmarks(names ...string) (*Suite, error) {
	var picked []*bench.Benchmark
	for _, n := range names {
		b, err := bench.ByName(n)
		if err != nil {
			return nil, err
		}
		picked = append(picked, b)
	}
	s.benchmarks = picked
	return s, nil
}

// Benchmarks returns the active benchmark set.
func (s *Suite) Benchmarks() []*bench.Benchmark { return s.benchmarks }

// Module compiles (and caches) a benchmark.
func (s *Suite) Module(b *bench.Benchmark) (*ir.Module, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moduleLocked(b)
}

func (s *Suite) moduleLocked(b *bench.Benchmark) (*ir.Module, error) {
	if m, ok := s.mods[b.Name]; ok {
		return m, nil
	}
	m, err := b.Compile()
	if err != nil {
		return nil, err
	}
	s.mods[b.Name] = m
	return m, nil
}

func dsKey(b *bench.Benchmark, ds *bench.DataSet) string {
	return b.Name + "." + ds.Name
}

// hkOpts returns the suite's Held-Karp options with its telemetry span
// attached, so every experiment's bound computations are recorded.
func (s *Suite) hkOpts() tsp.HeldKarpOptions {
	o := s.HKOpts
	o.Obs = s.Obs
	return o
}

// ProfileOf runs (and caches) the profiling execution of b on ds — the
// "instrumented program" run of the paper's methodology.
func (s *Suite) ProfileOf(b *bench.Benchmark, ds *bench.DataSet) (*interp.Profile, interp.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profileLocked(b, ds)
}

func (s *Suite) profileLocked(b *bench.Benchmark, ds *bench.DataSet) (*interp.Profile, interp.Result, error) {
	key := dsKey(b, ds)
	if pr, ok := s.profiles[key]; ok {
		return pr.prof, pr.res, nil
	}
	mod, err := s.moduleLocked(b)
	if err != nil {
		return nil, interp.Result{}, err
	}
	sp := s.Obs.Child("profile", obs.String("target", key))
	prof := interp.NewProfile(mod)
	res, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof, MaxSteps: s.MaxSteps})
	if err != nil {
		sp.End(obs.Bool("failed", true))
		return nil, res, fmt.Errorf("core: profiling %s: %w", key, err)
	}
	sp.End(obs.Int("steps", res.Steps), obs.Int("dyn_branches", res.DynBranches()))
	s.profiles[key] = &profileRun{prof: prof, res: res}
	return prof, res, nil
}

// TraceOf records (and caches) the dynamic edge trace of b on ds, shared
// by all layout simulations of that run.
func (s *Suite) TraceOf(b *bench.Benchmark, ds *bench.DataSet) (*pipe.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dsKey(b, ds)
	if tr, ok := s.traces[key]; ok {
		return tr, nil
	}
	mod, err := s.moduleLocked(b)
	if err != nil {
		return nil, err
	}
	tr, _, err := pipe.Record(mod, ds.Make(), interp.Options{MaxSteps: s.MaxSteps})
	if err != nil {
		return nil, fmt.Errorf("core: tracing %s: %w", key, err)
	}
	s.traces[key] = tr
	return tr, nil
}

// alignOptions is the construction recipe every suite aligner shares.
func (s *Suite) alignOptions() align.Options {
	return align.Options{
		Seed:        s.Seed,
		Parallel:    true, // bit-identical to sequential, faster
		Parallelism: s.Parallelism,
		Obs:         s.Obs,
	}
}

// Aligners returns the aligners every experiment compares — the
// Algorithms list resolved through the registry (default: original,
// greedy, tsp, in that order). An unknown name panics: the list is
// experiment configuration, not user input.
func (s *Suite) Aligners() []align.Aligner {
	names := s.Algorithms
	if names == nil {
		names = []string{"original", "greedy", "tsp"}
	}
	out := make([]align.Aligner, 0, len(names))
	for _, name := range names {
		a, err := align.New(name, s.alignOptions())
		if err != nil {
			panic("core: " + err.Error())
		}
		out = append(out, a)
	}
	return out
}

// AlignAll produces the three layouts for a training profile. ctx
// cancellation truncates the TSP aligner's in-flight solves at their
// next kick boundary (the layouts remain valid; see align.Aligner).
func (s *Suite) AlignAll(ctx context.Context, mod *ir.Module, prof *interp.Profile) map[string]*layout.Layout {
	out := map[string]*layout.Layout{}
	for _, a := range s.Aligners() {
		out[a.Name()] = a.Align(ctx, mod, prof, s.Model)
	}
	return out
}

// LayoutsOf returns (and caches) the three layouts trained on the given
// data set's profile. Cancelled contexts produce truncated (but valid)
// TSP layouts; those are still cached, matching the anytime contract —
// callers that need full-quality layouts should pass an uncancelled ctx.
func (s *Suite) LayoutsOf(ctx context.Context, b *bench.Benchmark, ds *bench.DataSet) (map[string]*layout.Layout, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dsKey(b, ds)
	if ls, ok := s.layouts[key]; ok {
		return ls, nil
	}
	mod, err := s.moduleLocked(b)
	if err != nil {
		return nil, err
	}
	prof, _, err := s.profileLocked(b, ds)
	if err != nil {
		return nil, err
	}
	ls := s.AlignAll(ctx, mod, prof)
	s.layouts[key] = ls
	return ls, nil
}

// LayoutFor returns (and caches) one named aligner's layout trained on
// the given data set's profile. It shares the per-dataset cache with
// LayoutsOf, so asking for "tsp" after LayoutsOf (or vice versa) never
// re-solves.
func (s *Suite) LayoutFor(ctx context.Context, b *bench.Benchmark, ds *bench.DataSet, name string) (*layout.Layout, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := dsKey(b, ds)
	if l, ok := s.layouts[key][name]; ok {
		return l, nil
	}
	mod, err := s.moduleLocked(b)
	if err != nil {
		return nil, err
	}
	prof, _, err := s.profileLocked(b, ds)
	if err != nil {
		return nil, err
	}
	a, err := align.New(name, s.alignOptions())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	l := a.Align(ctx, mod, prof, s.Model)
	if s.layouts[key] == nil {
		s.layouts[key] = map[string]*layout.Layout{}
	}
	s.layouts[key][name] = l
	return l, nil
}

// SimulateCycles replays the recorded trace of (b, ds) under a layout
// and returns the simulated execution time in cycles.
func (s *Suite) SimulateCycles(b *bench.Benchmark, ds *bench.DataSet, mod *ir.Module, l *layout.Layout) (pipe.Stats, error) {
	tr, err := s.TraceOf(b, ds)
	if err != nil {
		return pipe.Stats{}, err
	}
	cfg := pipe.Config{Model: s.Model, Cache: s.Cache, Obs: s.Obs}
	return pipe.Replay(tr, mod, l, cfg), nil
}
