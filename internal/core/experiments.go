package core

import (
	"context"
	"time"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/tsp"
)

// Table1Row reproduces one line of the paper's Table 1: benchmark and
// data set inventory with static branch sites touched and dynamic branch
// instructions executed.
type Table1Row struct {
	Bench, DataSet  string
	Description     string
	SitesStatic     int
	SitesTouched    int
	ExecutedBranch  int64
	InstructionsRun int64
}

// Table1 builds the benchmark inventory.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, res, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{
				Bench:           b.Abbr,
				DataSet:         ds.Name,
				Description:     b.Description,
				SitesStatic:     interp.BranchSitesStatic(mod),
				SitesTouched:    prof.BranchSitesTouched(mod),
				ExecutedBranch:  res.DynBranches(),
				InstructionsRun: res.Steps,
			})
		}
	}
	return rows, nil
}

// Table2Row reproduces one line of the paper's Table 2: per-phase
// compilation and alignment times (milliseconds). The paper reports the
// worst data set per benchmark; we report the reference data set.
type Table2Row struct {
	Bench, DataSet string
	CompileMS      float64 // "Intermediate Representation"
	ProfileMS      float64 // "Instrumented Program" + "Profiling Run Time"
	GreedyMS       float64 // "Greedy Program"
	MatrixMS       float64 // "TSP Matrix"
	SolveMS        float64 // "TSP Solver"
	FinalizeMS     float64 // "TSP Program"
}

// Table2 measures phase times. Timings are wall-clock and thus
// machine-dependent; their *ratios* (solver dominating, matrix cheap)
// are the reproducible shape.
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range s.benchmarks {
		row := Table2Row{Bench: b.Abbr, DataSet: b.DataSets[0].Name}
		t0 := time.Now()
		mod, err := b.Compile()
		if err != nil {
			return nil, err
		}
		row.CompileMS = msSince(t0)

		ds := &b.DataSets[0]
		t0 = time.Now()
		prof := interp.NewProfile(mod)
		if _, err := interp.Run(mod, ds.Make(), interp.Options{Profile: prof, MaxSteps: s.MaxSteps}); err != nil {
			return nil, err
		}
		row.ProfileMS = msSince(t0)

		t0 = time.Now()
		align.PettisHansen{}.Align(context.Background(), mod, prof, s.Model)
		row.GreedyMS = msSince(t0)

		t0 = time.Now()
		mats := make([]*tsp.SparseMatrix, len(mod.Funcs))
		for fi, f := range mod.Funcs {
			pred := layout.Predictions(f, prof.Funcs[fi])
			mats[fi] = align.BuildSparseMatrix(f, prof.Funcs[fi], pred, s.Model)
		}
		row.MatrixMS = msSince(t0)

		t0 = time.Now()
		opts := tsp.PaperSolveOptions(s.Seed)
		orders := make([][]int, len(mod.Funcs))
		for fi := range mod.Funcs {
			res := tsp.Solve(mats[fi], opts)
			res.Tour.RotateTo(0)
			orders[fi] = res.Tour
		}
		row.SolveMS = msSince(t0)

		t0 = time.Now()
		l := &layout.Layout{}
		for fi, f := range mod.Funcs {
			l.Funcs = append(l.Funcs, layout.Finalize(f, prof.Funcs[fi], orders[fi], s.Model))
		}
		if err := l.Validate(mod); err != nil {
			return nil, err
		}
		row.FinalizeMS = msSince(t0)

		rows = append(rows, row)
	}
	return rows, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// Table4Row reproduces one line of the paper's Table 4: original control
// penalties, the theoretical (Held-Karp) lower bound, and the original
// running time (simulated cycles standing in for seconds).
type Table4Row struct {
	Bench, DataSet string
	OriginalCP     Cost
	LowerBoundCP   Cost
	OriginalCycles Cost
}

// Table4 builds the original-layout baselines.
func (s *Suite) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			orig := layout.Identity(mod, prof, s.Model)
			cp := layout.ModulePenalty(mod, orig, prof, s.Model)
			bound := align.HeldKarpLowerBound(mod, prof, s.Model, s.hkOpts())
			sim, err := s.SimulateCycles(b, ds, mod, orig)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Bench:          b.Abbr,
				DataSet:        ds.Name,
				OriginalCP:     cp,
				LowerBoundCP:   bound,
				OriginalCycles: sim.Cycles,
			})
		}
	}
	return rows, nil
}

// Fig2Row reproduces one bar group of Figure 2: control penalties and
// execution times for greedy and TSP layouts, normalized against the
// original layout, with the normalized lower bound. Training and testing
// use the same data set.
type Fig2Row struct {
	Bench, DataSet string
	// Normalized control penalties (original = 1.0).
	GreedyCP, TSPCP, BoundCP float64
	// Normalized simulated execution times (original = 1.0).
	GreedyTime, TSPTime float64
	// Raw values for EXPERIMENTS.md.
	OrigCPRaw   Cost
	OrigCycles  Cost
	TSPCPRaw    Cost
	GreedyCPRaw Cost
}

// Fig2 runs the same-training-and-testing experiment.
func (s *Suite) Fig2() ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			ds := &b.DataSets[i]
			prof, _, err := s.ProfileOf(b, ds)
			if err != nil {
				return nil, err
			}
			layouts, err := s.LayoutsOf(context.Background(), b, ds)
			if err != nil {
				return nil, err
			}
			origCP := layout.ModulePenalty(mod, layouts["original"], prof, s.Model)
			greedyCP := layout.ModulePenalty(mod, layouts["greedy"], prof, s.Model)
			tspCP := layout.ModulePenalty(mod, layouts["tsp"], prof, s.Model)
			bound := align.HeldKarpLowerBound(mod, prof, s.Model, s.hkOpts())

			origSim, err := s.SimulateCycles(b, ds, mod, layouts["original"])
			if err != nil {
				return nil, err
			}
			greedySim, err := s.SimulateCycles(b, ds, mod, layouts["greedy"])
			if err != nil {
				return nil, err
			}
			tspSim, err := s.SimulateCycles(b, ds, mod, layouts["tsp"])
			if err != nil {
				return nil, err
			}

			norm := func(v Cost) float64 {
				if origCP == 0 {
					return 1
				}
				return float64(v) / float64(origCP)
			}
			rows = append(rows, Fig2Row{
				Bench:       b.Abbr,
				DataSet:     ds.Name,
				GreedyCP:    norm(greedyCP),
				TSPCP:       norm(tspCP),
				BoundCP:     norm(bound),
				GreedyTime:  float64(greedySim.Cycles) / float64(origSim.Cycles),
				TSPTime:     float64(tspSim.Cycles) / float64(origSim.Cycles),
				OrigCPRaw:   origCP,
				OrigCycles:  origSim.Cycles,
				TSPCPRaw:    tspCP,
				GreedyCPRaw: greedyCP,
			})
		}
	}
	return rows, nil
}

// Fig3Row reproduces one bar group of Figure 3: self-trained vs
// cross-trained results for greedy and TSP on a given *testing* data set.
// Cross layouts are trained on the benchmark's other data set.
type Fig3Row struct {
	Bench, TestSet, TrainSet string
	// Normalized control penalties on the testing profile.
	GreedySelfCP, GreedyCrossCP, TSPSelfCP, TSPCrossCP float64
	// Normalized simulated execution times on the testing trace.
	GreedySelfTime, GreedyCrossTime, TSPSelfTime, TSPCrossTime float64
}

// Fig3 runs the cross-validation experiment.
func (s *Suite) Fig3() ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, b := range s.benchmarks {
		mod, err := s.Module(b)
		if err != nil {
			return nil, err
		}
		for i := range b.DataSets {
			test := &b.DataSets[i]
			train := &b.DataSets[(i+1)%len(b.DataSets)]
			testProf, _, err := s.ProfileOf(b, test)
			if err != nil {
				return nil, err
			}
			selfLayouts, err := s.LayoutsOf(context.Background(), b, test)
			if err != nil {
				return nil, err
			}
			crossLayouts, err := s.LayoutsOf(context.Background(), b, train)
			if err != nil {
				return nil, err
			}

			origCP := layout.ModulePenalty(mod, selfLayouts["original"], testProf, s.Model)
			normCP := func(l *layout.Layout) float64 {
				if origCP == 0 {
					return 1
				}
				return float64(layout.ModulePenalty(mod, l, testProf, s.Model)) / float64(origCP)
			}
			origSim, err := s.SimulateCycles(b, test, mod, selfLayouts["original"])
			if err != nil {
				return nil, err
			}
			normTime := func(l *layout.Layout) (float64, error) {
				sim, err := s.SimulateCycles(b, test, mod, l)
				if err != nil {
					return 0, err
				}
				return float64(sim.Cycles) / float64(origSim.Cycles), nil
			}
			row := Fig3Row{
				Bench: b.Abbr, TestSet: test.Name, TrainSet: train.Name,
				GreedySelfCP:  normCP(selfLayouts["greedy"]),
				GreedyCrossCP: normCP(crossLayouts["greedy"]),
				TSPSelfCP:     normCP(selfLayouts["tsp"]),
				TSPCrossCP:    normCP(crossLayouts["tsp"]),
			}
			if row.GreedySelfTime, err = normTime(selfLayouts["greedy"]); err != nil {
				return nil, err
			}
			if row.GreedyCrossTime, err = normTime(crossLayouts["greedy"]); err != nil {
				return nil, err
			}
			if row.TSPSelfTime, err = normTime(selfLayouts["tsp"]); err != nil {
				return nil, err
			}
			if row.TSPCrossTime, err = normTime(crossLayouts["tsp"]); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
