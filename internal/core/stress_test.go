package core

import (
	"context"
	"fmt"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// TestStressLargeModule runs the full alignment stack on a module far
// larger than the benchmark suite: 40 synthetic functions of up to 120
// blocks each (thousands of blocks total), checking validity,
// improvement and the bound sandwich at scale. Skipped in -short mode.
func TestStressLargeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	mod := &ir.Module{}
	prof := &interp.Profile{}
	totalBlocks := 0
	for i := 0; i < 40; i++ {
		blocks := 10 + (i*7)%111
		m1, p1, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(i)*131+5))
		if err != nil {
			t.Fatal(err)
		}
		f := m1.Funcs[0]
		f.Name = fmt.Sprintf("synth%02d", i)
		mod.Funcs = append(mod.Funcs, f)
		prof.Funcs = append(prof.Funcs, p1.Funcs[0])
		totalBlocks += blocks
	}
	prof.CallCounts = make([][]int64, len(mod.Funcs))
	for i := range prof.CallCounts {
		prof.CallCounts[i] = make([]int64, len(mod.Funcs))
	}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
	t.Logf("stress module: %d functions, %d blocks", len(mod.Funcs), totalBlocks)

	m := machine.Alpha21164()
	orig := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, prof, m), prof, m)

	a := align.NewTSP(1)
	a.Parallel = true
	l := a.Align(context.Background(), mod, prof, m)
	if err := l.Validate(mod); err != nil {
		t.Fatal(err)
	}
	tspCP := layout.ModulePenalty(mod, l, prof, m)
	if tspCP > orig {
		t.Errorf("TSP worsened the stress module: %d -> %d", orig, tspCP)
	}

	greedyCP := layout.ModulePenalty(mod, align.PettisHansen{}.Align(context.Background(), mod, prof, m), prof, m)
	if tspCP > greedyCP {
		t.Errorf("TSP (%d) behind greedy (%d) on stress module", tspCP, greedyCP)
	}

	bound := align.HeldKarpLowerBound(mod, prof, m, tsp.HeldKarpOptions{Iterations: 400})
	if bound > tspCP {
		t.Errorf("HK bound %d above TSP penalty %d", bound, tspCP)
	}
	if bound <= 0 {
		t.Error("vacuous bound on stress module")
	}
	t.Logf("stress: original %d, greedy %d, tsp %d, bound %d (tsp removes %.1f%%)",
		orig, greedyCP, tspCP, bound, 100*(1-float64(tspCP)/float64(orig)))

	// Placement must tile without overlap at scale.
	pm := layout.PlaceModule(mod, l)
	if pm.CodeSize() <= 0 {
		t.Error("empty placement")
	}
}
