package core

import "testing"

// TestExtStaticProfile pins the headline acceptance criterion of the
// static estimator: across the full six-benchmark suite, TSP alignment
// on the estimated profile must remove at least half of the control
// penalty that TSP on the measured profile removes (both vs the
// compiler order, charged under the measured profile). Runs the full
// suite — restricting to a subset would change the aggregate.
func TestExtStaticProfile(t *testing.T) {
	s := NewSuite(1)
	rows, err := s.ExtStaticProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 benchmarks x 2 data sets
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.OrigCP < r.MeasuredCP {
			t.Errorf("%s.%s: measured TSP (%d) worse than compiler order (%d)",
				r.Bench, r.DataSet, r.MeasuredCP, r.OrigCP)
		}
		if r.OrigCycles <= 0 || r.MeasuredCycles <= 0 || r.StaticCycles <= 0 {
			t.Errorf("%s.%s: empty simulation", r.Bench, r.DataSet)
		}
		if got := recoveredFraction(r.OrigCP, r.MeasuredCP, r.StaticCP); got != r.Recovered {
			t.Errorf("%s.%s: Recovered %v inconsistent with penalties (%v)",
				r.Bench, r.DataSet, r.Recovered, got)
		}
	}
	agg := StaticRecoveredAggregate(rows)
	t.Logf("aggregate recovery: static-profile TSP removes %.1f%% of what measured-profile TSP removes", 100*agg)
	if agg < 0.5 {
		t.Errorf("aggregate recovery %.3f below the 0.5 acceptance floor", agg)
	}
	// And the estimate must never be a net loss vs doing nothing, in
	// aggregate: static-profile TSP should beat the compiler order.
	var orig, static Cost
	for _, r := range rows {
		orig += r.OrigCP
		static += r.StaticCP
	}
	if static >= orig {
		t.Errorf("static-profile TSP (%d) did not beat compiler order (%d) in aggregate", static, orig)
	}
}
