package engine

import (
	"context"
	"strings"
	"testing"

	"branchalign/internal/machine"
	"branchalign/internal/obs"
)

// TestEngineMetricsPlane drives one engine through hit/miss/eviction
// traffic against an injected registry and checks that the exposition
// and Stats() tell the same story — the engine's counters live only in
// the registry, so the two cannot drift.
func TestEngineMetricsPlane(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()
	reg := obs.NewRegistry()
	e := New(Options{Registry: reg, CacheEntries: 1})

	ctx := context.Background()
	req := Request{Module: mod, Profile: prof, Model: model, Seed: 1}
	if _, err := e.Align(ctx, req); err != nil { // miss + solve
		t.Fatal(err)
	}
	if _, err := e.Align(ctx, req); err != nil { // hit
		t.Fatal(err)
	}
	req2 := req
	req2.Seed = 2
	if _, err := e.Align(ctx, req2); err != nil { // miss + solve, evicts seed 1
		t.Fatal(err)
	}
	if _, err := e.Align(ctx, req); err != nil { // miss again (evicted)
		t.Fatal(err)
	}

	want := map[string]float64{
		"engine_requests_total":        4,
		"engine_cache_hits_total":      1,
		"engine_cache_misses_total":    3,
		"engine_cache_evictions_total": 2,
		"engine_solves_total":          3,
		"engine_truncated_total":       0,
		"engine_errors_total":          0,
		"engine_in_flight":             0,
		"engine_cache_entries":         1,
	}
	for name, v := range want {
		if got := reg.Sum(name, nil); got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if got := reg.Sum("engine_solve_duration_seconds", map[string]string{"cache": "hit"}); got != 1 {
		t.Errorf("solve_duration{cache=hit} count %v, want 1", got)
	}
	if got := reg.Sum("engine_solve_duration_seconds", map[string]string{"cache": "miss", "profile_mode": "measured"}); got != 3 {
		t.Errorf("solve_duration{cache=miss} count %v, want 3", got)
	}

	// Stats() must read the same cells.
	st := e.Stats()
	if st.Requests != 4 || st.CacheHits != 1 || st.Solved != 3 || st.Errors != 0 || st.InFlight != 0 {
		t.Errorf("Stats drifted from registry: %+v", st)
	}

	// The pool families must be registered and collectable.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"# TYPE work_pool_capacity gauge",
		"# TYPE work_pool_active_tasks gauge",
		"# TYPE work_pool_queue_depth gauge",
		"# TYPE work_pool_queue_wait_seconds histogram",
		"# TYPE engine_solve_duration_seconds histogram",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
	if !strings.Contains(out, `engine_solve_duration_seconds_bucket{profile_mode="measured",cache="miss",algorithm="tsp",le="+Inf"} 3`) {
		t.Errorf("missing labeled +Inf bucket in:\n%s", out)
	}
}

// TestEngineWithoutRegistry pins that a registry-less engine still
// counts: Stats() is backed by a private registry, so existing callers
// see identical behavior.
func TestEngineWithoutRegistry(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	if _, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 9}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Requests != 1 || st.Solved != 1 || st.CacheHits != 0 {
		t.Errorf("private-registry stats wrong: %+v", st)
	}
}
