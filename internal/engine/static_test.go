package engine

import (
	"context"
	"errors"
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/machine"
	"branchalign/internal/staticprof"
)

// TestEngineValidationErrors pins the distinct sentinel per malformed
// request shape — balignd turns each into a structured error body.
func TestEngineValidationErrors(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	ctx := context.Background()

	if _, err := e.Align(ctx, Request{Profile: prof}); !errors.Is(err, ErrNoModule) {
		t.Errorf("nil module: got %v, want ErrNoModule", err)
	}
	if _, err := e.Align(ctx, Request{Module: mod}); !errors.Is(err, ErrNoProfile) {
		t.Errorf("nil profile: got %v, want ErrNoProfile", err)
	}
	if _, err := e.Align(ctx, Request{Module: mod, Profile: prof, StaticProfile: true}); !errors.Is(err, ErrProfileConflict) {
		t.Errorf("profile + static: got %v, want ErrProfileConflict", err)
	}
	// Shape mismatch stays a plain (non-sentinel) error.
	if _, err := e.Align(ctx, Request{Module: mod, Profile: &interp.Profile{}}); err == nil {
		t.Error("mismatched profile accepted")
	} else if errors.Is(err, ErrNoProfile) || errors.Is(err, ErrNoModule) {
		t.Errorf("shape mismatch mapped onto wrong sentinel: %v", err)
	}
}

// TestEngineStaticProfile: a profile-less request with StaticProfile set
// must be served end to end, bit-identical to aligning against
// staticprof.Estimate directly.
func TestEngineStaticProfile(t *testing.T) {
	mod, _ := branchy(t)
	model := machine.Alpha21164()
	e := New(Options{})

	res, err := e.Align(context.Background(), Request{Module: mod, StaticProfile: true, Model: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ProfileEstimated {
		t.Error("result not marked ProfileEstimated")
	}
	if res.Truncated {
		t.Error("unbudgeted static request marked truncated")
	}

	est, _ := staticprof.Estimate(mod)
	direct, err := e.Align(context.Background(), Request{Module: mod, Profile: est, Model: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, res.Layout, direct.Layout)
	if direct.ProfileEstimated {
		t.Error("measured-profile request marked ProfileEstimated")
	}
}

// TestEngineStaticMeasuredNeverCollide is the acceptance criterion: an
// estimated-profile result must never be served to a measured-profile
// request or vice versa, even when the measured profile is byte-identical
// to the estimate.
func TestEngineStaticMeasuredNeverCollide(t *testing.T) {
	mod, _ := branchy(t)
	model := machine.Alpha21164()
	e := New(Options{})
	ctx := context.Background()

	static, err := e.Align(ctx, Request{Module: mod, StaticProfile: true, Model: model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if static.CacheHit {
		t.Fatal("first static request hit the cache")
	}

	// Same static request again: cache hit, still flagged estimated.
	again, err := e.Align(ctx, Request{Module: mod, StaticProfile: true, Model: model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || !again.ProfileEstimated {
		t.Errorf("static re-request: CacheHit=%v ProfileEstimated=%v, want true/true", again.CacheHit, again.ProfileEstimated)
	}

	// The worst case for key collision: a *measured* request whose
	// profile is the estimator's output bit for bit. It must miss.
	est, _ := staticprof.Estimate(mod)
	measured, err := e.Align(ctx, Request{Module: mod, Profile: est, Model: model, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if measured.CacheHit {
		t.Fatal("measured request with estimator-identical profile served the static cache entry")
	}
	if measured.ProfileEstimated {
		t.Error("measured request marked ProfileEstimated")
	}

	st := e.Stats()
	if st.Solved != 2 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 2 solved / 1 hit", st)
	}
}
