package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// requestKey derives the cache/deduplication key for a request: a
// digest over everything that determines the computed layout — the
// module, the profile, the machine model, the solver seed, and the
// budget's work caps. The budget's wall-clock deadline, the telemetry
// sink and the solver parallelism are deliberately excluded: they
// change when (and how observably) the answer arrives, not what the
// answer is. Parallelism in particular must not fragment the LRU — the
// solver is bit-identical at every setting, so a sequentially solved
// entry is served to a parallel request and vice versa
// (TestCacheKeyIgnoresParallelism pins this).
func requestKey(req Request) (string, error) {
	h := sha256.New()
	io.WriteString(h, req.Module.String())
	// The profile mode is a structural key component: a static-profile
	// request hashes the mode tag instead of profile bytes (the estimate
	// is a pure function of the module), and a measured request hashes
	// the profile bytes under a different tag — so estimated and measured
	// results can never collide, even if the estimator ever reproduced a
	// measured profile bit for bit.
	if req.StaticProfile {
		io.WriteString(h, "|pmode=static")
	} else {
		io.WriteString(h, "|pmode=measured|")
		if err := req.Profile.WriteJSON(h); err != nil {
			return "", fmt.Errorf("engine: hashing profile: %w", err)
		}
	}
	// machine.Model is all scalars, so its fmt image is a faithful key
	// component. The algorithm name is one too: different aligners are
	// different computations over the same inputs.
	fmt.Fprintf(h, "|model=%+v|alg=%s|seed=%d|kicks=%d|hkiters=%d|bound=%v|iters=%d",
		req.Model, req.Algorithm, req.Seed, req.Budget.MaxKicks, req.Budget.MaxHKIterations,
		req.Bound, req.HKIterations)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// lru is a minimal least-recently-used result cache. Callers hold the
// engine mutex; lru itself is not safe for concurrent use.
type lru struct {
	max   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
	// onEvict, when non-nil, observes each capacity eviction (not
	// replacements of an existing key) — the metrics-plane hook.
	onEvict func()
}

type lruEntry struct {
	key string
	res *Result
}

func newLRU(max int) *lru {
	return &lru{max: max, order: list.New(), byKey: map[string]*list.Element{}}
}

// len returns the number of cached entries.
func (c *lru) len() int { return c.order.Len() }

func (c *lru) get(key string) (*Result, bool) {
	if c.max <= 0 {
		return nil, false
	}
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lru) put(key string, res *Result) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}
