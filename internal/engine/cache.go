package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// requestKey derives the cache/deduplication key for a request: a
// digest over everything that determines the computed layout — the
// module, the profile, the machine model, the solver seed, and the
// budget's work caps. The budget's wall-clock deadline, the telemetry
// sink and the solver parallelism are deliberately excluded: they
// change when (and how observably) the answer arrives, not what the
// answer is. Parallelism in particular must not fragment the LRU — the
// solver is bit-identical at every setting, so a sequentially solved
// entry is served to a parallel request and vice versa
// (TestCacheKeyIgnoresParallelism pins this).
func requestKey(req Request) (string, error) {
	h := sha256.New()
	if err := hashInstance(h, req); err != nil {
		return "", err
	}
	// The algorithm name is a key component too: different aligners are
	// different computations over the same inputs.
	fmt.Fprintf(h, "|alg=%s|seed=%d|kicks=%d|hkiters=%d|bound=%v|iters=%d",
		req.Algorithm, req.Seed, req.Budget.MaxKicks, req.Budget.MaxHKIterations,
		req.Bound, req.HKIterations)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// boundKey derives the warm-start cache key for a request: a digest over
// only the inputs that determine the per-function DTSP instances — the
// module, the profile, and the machine model. Algorithm, seed, iteration
// counts and budgets are deliberately excluded: the Held-Karp dual state
// is a property of the instance, portable across every request shape
// that bounds it (that portability is the whole point of the cache — a
// re-request with a different seed or budget resumes the ascent instead
// of re-climbing from zero).
func boundKey(req Request) (string, error) {
	h := sha256.New()
	if err := hashInstance(h, req); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashInstance writes the request components that determine the DTSP
// instances — module, profile mode/bytes, machine model — the common
// prefix of requestKey and boundKey.
func hashInstance(h io.Writer, req Request) error {
	io.WriteString(h, req.Module.String())
	// The profile mode is a structural key component: a static-profile
	// request hashes the mode tag instead of profile bytes (the estimate
	// is a pure function of the module), and a measured request hashes
	// the profile bytes under a different tag — so estimated and measured
	// results can never collide, even if the estimator ever reproduced a
	// measured profile bit for bit.
	if req.StaticProfile {
		io.WriteString(h, "|pmode=static")
	} else {
		io.WriteString(h, "|pmode=measured|")
		if err := req.Profile.WriteJSON(h); err != nil {
			return fmt.Errorf("engine: hashing profile: %w", err)
		}
	}
	// machine.Model is all scalars, so its fmt image is a faithful key
	// component.
	fmt.Fprintf(h, "|model=%+v", req.Model)
	return nil
}

// lru is a minimal least-recently-used cache. The engine keeps two: one
// over *Result (the result cache) and one over warm-start dual states.
// Callers hold the engine mutex; lru itself is not safe for concurrent
// use.
type lru[V any] struct {
	max   int
	order *list.List // front = most recent; values are *lruEntry[V]
	byKey map[string]*list.Element
	// onEvict, when non-nil, observes each capacity eviction (not
	// replacements of an existing key) — the metrics-plane hook.
	onEvict func()
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lru[V] {
	return &lru[V]{max: max, order: list.New(), byKey: map[string]*list.Element{}}
}

// len returns the number of cached entries.
func (c *lru[V]) len() int { return c.order.Len() }

func (c *lru[V]) get(key string) (V, bool) {
	var zero V
	if c.max <= 0 {
		return zero, false
	}
	el, ok := c.byKey[key]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

func (c *lru[V]) put(key string, val V) {
	if c.max <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry[V]).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}
