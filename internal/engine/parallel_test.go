package engine

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/machine"
)

// TestCacheKeyIgnoresParallelism pins the cache-key contract: solver
// parallelism is a latency knob with bit-identical results, so it must
// not fragment the LRU. A sequentially solved entry is served straight
// to a parallel request (and the other way around).
func TestCacheKeyIgnoresParallelism(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{Workers: 4})
	base := Request{Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1}

	seq := base // Parallelism 0: runs solved sequentially
	first, err := e.Align(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}

	par := base
	par.Parallelism = 4
	second, err := e.Align(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("parallel request missed the cache entry solved sequentially")
	}
	sameLayout(t, first.Layout, second.Layout)

	// And the reverse, on a fresh engine: a parallel solve must serve a
	// sequential request.
	e2 := New(Options{Workers: 4})
	if res, err := e2.Align(context.Background(), par); err != nil || res.CacheHit {
		t.Fatalf("parallel cold solve: res=%+v err=%v", res, err)
	}
	res, err := e2.Align(context.Background(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("sequential request missed the cache entry solved in parallel")
	}
	sameLayout(t, first.Layout, res.Layout)
}

// TestEngineParallelMatchesAligner extends the pure-front-end pin to
// per-run parallelism: an engine defaulting every request to parallel
// runs still serves the layout align.TSP computes sequentially.
func TestEngineParallelMatchesAligner(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()
	direct := align.NewTSP(3).Align(context.Background(), mod, prof, model)

	e := New(Options{Workers: 3, Parallelism: 8})
	res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameLayout(t, direct, res.Layout)
}

// TestStatsReportPool checks the pool gauges surface in Stats.
func TestStatsReportPool(t *testing.T) {
	e := New(Options{Workers: 5})
	s := e.Stats()
	if s.Workers != 5 {
		t.Fatalf("Stats.Workers = %d, want 5", s.Workers)
	}
	if s.InFlightRuns != 0 {
		t.Fatalf("Stats.InFlightRuns = %d on an idle engine", s.InFlightRuns)
	}
}
