package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/machine"
)

// TestEngineAlgorithmSelection: every registered aligner is reachable
// through Request.Algorithm, and the served layout is bit-identical to
// driving the aligner directly.
func TestEngineAlgorithmSelection(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()
	e := New(Options{})
	for _, name := range align.Names() {
		a, err := align.New(name, align.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		direct := a.Align(context.Background(), mod, prof, model)
		res, err := e.Align(context.Background(), Request{
			Module: mod, Profile: prof, Model: model, Seed: 5, Algorithm: name,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameLayout(t, direct, res.Layout)
	}
}

// TestEngineUnknownAlgorithm: a bogus name is a validation error (the
// typed sentinel, wrapping the offending name), not a solve attempt.
func TestEngineUnknownAlgorithm(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	_, err := e.Align(context.Background(), Request{
		Module: mod, Profile: prof, Model: machine.Alpha21164(), Algorithm: "simulated-annealing",
	})
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if !strings.Contains(err.Error(), "simulated-annealing") || !strings.Contains(err.Error(), "exttsp") {
		t.Errorf("error should name the request and the known algorithms: %v", err)
	}
	if e.Stats().Requests != 0 {
		t.Errorf("malformed request counted as accepted")
	}
}

// TestEngineAlgorithmCacheSeparation: the same module solved under tsp
// and then exttsp misses twice (two distinct cache entries), and each
// repeat hits its own entry — the algorithm name is a cache-key
// component.
func TestEngineAlgorithmCacheSeparation(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()
	e := New(Options{})
	for _, name := range []string{"tsp", "exttsp"} {
		res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model, Algorithm: name})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatalf("%s: first request hit the cache", name)
		}
	}
	layouts := map[string]int{}
	for _, name := range []string{"tsp", "exttsp"} {
		res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model, Algorithm: name})
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatalf("%s: repeat request missed the cache", name)
		}
		layouts[name] = int(res.Penalty)
	}
	if st := e.Stats(); st.Solved != 2 || st.CacheHits != 2 {
		t.Errorf("stats %+v, want 2 solves and 2 hits", st)
	}
	// An empty algorithm is the tsp default: same cache entry.
	res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Errorf("empty algorithm did not hit the tsp entry")
	}
	if int(res.Penalty) != layouts["tsp"] {
		t.Errorf("empty algorithm served penalty %d, tsp entry has %d", res.Penalty, layouts["tsp"])
	}
}

// TestEngineAlgorithmNoCrossTalk: concurrent requests for different
// algorithms never coalesce onto one solve — single-flight keys on the
// full request digest, which includes the algorithm.
func TestEngineAlgorithmNoCrossTalk(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()
	for trial := 0; trial < 4; trial++ {
		e := New(Options{})
		var wg sync.WaitGroup
		results := make([]*Result, 2)
		for i, name := range []string{"tsp", "exttsp"} {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model, Algorithm: name})
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = res
			}(i, name)
		}
		wg.Wait()
		for i, res := range results {
			if res == nil {
				t.Fatal("missing result")
			}
			if res.Coalesced || res.CacheHit {
				t.Errorf("trial %d result %d: shared across algorithms (coalesced=%v hit=%v)",
					trial, i, res.Coalesced, res.CacheHit)
			}
		}
		if st := e.Stats(); st.Solved != 2 || st.Coalesced != 0 {
			t.Errorf("trial %d stats %+v, want 2 independent solves", trial, st)
		}
	}
}
