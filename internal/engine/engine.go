// Package engine is the context-aware alignment engine: a concurrent,
// caching front end over the align/tsp pipeline. It exists so that
// request-driven callers (the balignd server, long-lived tools) get
//
//   - a bounded worker pool shared across requests: no matter how many
//     alignments run at once, at most Options.Workers per-function
//     solves execute concurrently;
//   - per-request deterministic randomness: each request's solver seed
//     derives only from the request (seed + function index), never from
//     shared mutable state, so identical requests give identical
//     layouts regardless of interleaving;
//   - a keyed result cache with single-flight deduplication: identical
//     in-flight requests are coalesced onto one computation, and
//     completed untruncated results are reused. Truncated (deadline- or
//     budget-cut) results are never cached and never shared with
//     concurrent duplicates, because a duplicate may carry a more
//     generous budget and deserves the full-quality answer.
//
// Cancellation follows the anytime contract of the underlying solvers:
// a cancelled context truncates each in-flight per-function solve at
// its next kick (or subgradient-iterate) boundary and the engine
// finalizes best-so-far orders into a valid — merely weaker — layout,
// flagged Result.Truncated.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/staticprof"
	"branchalign/internal/tsp"
	"branchalign/internal/work"
)

// Request validation errors. Each malformed-request shape gets its own
// sentinel so callers (balignd's structured error bodies, tests) can
// tell the user precisely what to fix instead of parsing a blanket
// message.
var (
	// ErrNoModule: the request carries no module at all.
	ErrNoModule = errors.New("engine: request needs a Module")
	// ErrNoProfile: the request carries no profile and did not opt into
	// static estimation (set StaticProfile to run profile-less).
	ErrNoProfile = errors.New("engine: request needs a Profile (or StaticProfile to estimate one)")
	// ErrProfileConflict: the request supplied a measured profile and
	// asked for static estimation at the same time; the engine refuses to
	// guess which one the caller meant.
	ErrProfileConflict = errors.New("engine: request sets both Profile and StaticProfile")
	// ErrUnknownAlgorithm: Request.Algorithm names no registered aligner.
	// The returned error wraps this sentinel and lists the known names.
	ErrUnknownAlgorithm = errors.New("engine: unknown algorithm")
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the number of per-function solves running
	// concurrently across all requests. 0 means GOMAXPROCS. The same
	// pool feeds per-run solver parallelism (Parallelism), so the two
	// layers together never exceed this bound.
	Workers int
	// CacheEntries bounds the result cache (least-recently-used
	// eviction). 0 means 64; negative disables caching.
	CacheEntries int
	// Parallelism is the default per-run solver parallelism applied to
	// requests that do not set their own: each per-function solve may
	// execute up to this many of its multi-start runs concurrently on
	// the engine's worker pool. 0 leaves runs sequential. Results are
	// bit-identical at every setting, so this is a latency knob only —
	// it is deliberately excluded from the result cache key.
	Parallelism int
	// Registry is the metrics registry the engine records into (cache
	// hits/misses/evictions, single-flight dedups, truncations, solve
	// latency, worker-pool gauges). Nil gets a private registry, so the
	// counters behind Stats() always exist; pass the process registry to
	// expose them on /metrics. Instrumentation never affects results.
	Registry *obs.Registry
}

// Request describes one alignment job. Module and Profile are borrowed
// for the duration of the call and must not be mutated concurrently.
type Request struct {
	Module  *ir.Module
	Profile *interp.Profile
	Model   machine.Model

	// StaticProfile runs the request profile-less: the engine estimates a
	// synthetic profile from CFG structure (staticprof.Estimate) and
	// aligns against it. Mutually exclusive with Profile. Estimated and
	// measured requests can never collide in the result cache — the
	// profile mode is a structural component of the cache key.
	StaticProfile bool

	// Algorithm selects the aligner by registry name ("tsp", "exttsp",
	// "greedy", ...); empty means "tsp". Different algorithms are
	// different computations: the name is part of the cache key, so the
	// same module solved under two algorithms occupies two cache entries
	// and two concurrent requests with different algorithms never
	// coalesce onto one solve.
	Algorithm string

	// Seed is the solver seed (function i solves with Seed+i, as the
	// align.TSP aligner does). The zero seed is valid and deterministic.
	Seed int64

	// Budget bounds the per-function solves (and bound computations, for
	// the iterate cap). The deadline also cooperates with the ctx passed
	// to Align. Budgets are part of the cache key only through their
	// work caps, never the wall-clock deadline: two requests that differ
	// only in deadline are the same computation.
	Budget tsp.Budget

	// Bound additionally computes the per-function Held-Karp lower
	// bounds (HKIterations subgradient iterates, default 1000). The
	// ascents warm-start from the engine's per-instance dual-state
	// cache, so a later request on the same module/profile/model —
	// even with a different seed, algorithm or iteration budget — may
	// report tighter (never weaker, never invalid) bounds than a cold
	// engine would.
	Bound        bool
	HKIterations int

	// Parallelism overrides the engine's default per-run solver
	// parallelism for this request when non-zero (negative selects
	// GOMAXPROCS). Solver results are bit-identical at every setting,
	// so Parallelism is not part of the cache key: a request at any
	// parallelism is served a cached result solved at any other.
	Parallelism int

	// Obs, when non-nil, is the parent span request telemetry is
	// recorded under. Not part of the cache key.
	Obs *obs.Span
}

// FuncStat is the per-function outcome of a request.
type FuncStat struct {
	Name      string `json:"name"`
	Cities    int    `json:"cities"`
	Order     []int  `json:"order"`
	Cost      int64  `json:"cost"`
	Exact     bool   `json:"exact"`
	Truncated bool   `json:"truncated,omitempty"`
	Kicks     int64  `json:"kicks"`
	// Bound and GapPct are present when the request asked for bounds.
	Bound  int64   `json:"bound,omitempty"`
	GapPct float64 `json:"gap_pct,omitempty"`
}

// Result is the outcome of one alignment request. Results may be shared
// between concurrent and future requests (cache hits return the same
// pointers), so callers must treat every field as immutable.
type Result struct {
	// Layout is the TSP-aligned module layout; always valid.
	Layout *layout.Layout
	// Penalty and OriginalPenalty are the control penalties of Layout
	// and of the compiler order on the training profile.
	Penalty         layout.Cost
	OriginalPenalty layout.Cost
	// Bound is the summed Held-Karp lower bound (0 unless requested).
	Bound layout.Cost
	// Truncated reports that at least one per-function solve (or bound)
	// was cut short by the context or budget.
	Truncated bool
	// CacheHit reports that the result was served from the cache;
	// Coalesced that it was shared with a concurrent identical request.
	CacheHit  bool
	Coalesced bool
	// ProfileEstimated reports that the profile driving this alignment
	// was synthesized by the static estimator rather than measured.
	ProfileEstimated bool
	Funcs            []FuncStat
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	Solved    int64 `json:"solved"`
	Truncated int64 `json:"truncated"`
	Errors    int64 `json:"errors"`
	InFlight  int64 `json:"in_flight"`
	// Workers is the configured worker-pool size; InFlightRuns is the
	// number of tasks (per-function solves and nested solver runs)
	// executing on the pool right now.
	Workers      int   `json:"workers"`
	InFlightRuns int64 `json:"in_flight_runs"`
}

// Engine is safe for concurrent use by multiple goroutines.
type Engine struct {
	pool        *work.Pool
	parallelism int
	met         metrics

	mu       sync.Mutex
	cache    *lru[*Result]
	inflight map[string]*call
	// warm caches Held-Karp warm-start states per instance (boundKey):
	// one dual vector per function, from the best iterate of the last
	// bound computation on that (module, profile, model). A later
	// request on the same instance — different seed, algorithm or
	// iteration budget — resumes its ascents from these states instead
	// of re-climbing from zero, so its bounds converge in fewer
	// iterates and are never weaker than the cached state's. Entries
	// are immutable once stored (requests copy on read and replace on
	// write), so readers never race writers.
	warm *lru[[]*tsp.HKWarmState]
}

// call is one in-flight computation other identical requests can wait
// on (hand-rolled single-flight; the repo carries no dependencies).
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// New returns an Engine with the given options.
func New(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	entries := o.CacheEntries
	if entries == 0 {
		entries = 64
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		pool:        work.NewPool(o.Workers),
		parallelism: o.Parallelism,
		cache:       newLRU[*Result](entries),
		warm:        newLRU[[]*tsp.HKWarmState](entries),
		inflight:    map[string]*call{},
	}
	e.cache.onEvict = func() { e.met.evictions.Inc() }
	e.met = newMetrics(reg, e.pool, func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(e.cache.len())
	})
	return e
}

// Stats returns a snapshot of the engine counters. The values are read
// back from the same registry cells /metrics exposes, so the two
// surfaces agree by construction.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests:     e.met.requests.Value(),
		CacheHits:    e.met.cacheHits.Value(),
		Coalesced:    e.met.coalesced.Value(),
		Solved:       e.met.solves.Value(),
		Truncated:    e.met.truncated.Value(),
		Errors:       e.met.errors.Value(),
		InFlight:     int64(e.met.inFlight.Value()),
		Workers:      e.pool.Cap(),
		InFlightRuns: e.pool.Active(),
	}
}

// Align runs one alignment request. It returns an error only for
// malformed requests; cancellation and deadline expiry yield a valid
// truncated Result, never an error (the anytime contract).
func (e *Engine) Align(ctx context.Context, req Request) (*Result, error) {
	if req.Module == nil {
		return nil, ErrNoModule
	}
	if req.Profile == nil && !req.StaticProfile {
		return nil, ErrNoProfile
	}
	if req.Profile != nil && req.StaticProfile {
		return nil, ErrProfileConflict
	}
	if req.Profile != nil && len(req.Profile.Funcs) != len(req.Module.Funcs) {
		return nil, fmt.Errorf("engine: profile has %d functions, module has %d",
			len(req.Profile.Funcs), len(req.Module.Funcs))
	}
	if req.Algorithm == "" {
		req.Algorithm = "tsp"
	}
	if _, err := align.New(req.Algorithm, align.Options{}); err != nil {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownAlgorithm, req.Algorithm, align.Names())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	key, err := requestKey(req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e.met.requests.Inc()

	e.mu.Lock()
	for {
		if res, ok := e.cache.get(key); ok {
			e.mu.Unlock()
			e.met.cacheHits.Inc()
			e.met.observe(start, req.StaticProfile, "hit", req.Algorithm)
			hit := *res
			hit.CacheHit = true
			return &hit, nil
		}
		c, ok := e.inflight[key]
		if !ok {
			break
		}
		// Identical request already running: wait for it rather than
		// duplicating the work.
		e.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			// This request's deadline expired while waiting on a peer.
			// The anytime contract still applies: solve directly with
			// the expired context, which truncates at the first budget
			// check and yields a valid best-effort layout.
			e.met.cacheMisses.Inc()
			res, err := e.solve(ctx, req)
			e.finishSolve(res, err)
			e.met.observe(start, req.StaticProfile, "miss", req.Algorithm)
			return res, err
		}
		if c.err == nil && !c.res.Truncated {
			e.met.coalesced.Inc()
			e.met.observe(start, req.StaticProfile, "coalesced", req.Algorithm)
			shared := *c.res
			shared.Coalesced = true
			return &shared, nil
		}
		// The leader was truncated under its own deadline (or failed);
		// this request may have a longer one — retry from the top.
		e.mu.Lock()
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()
	e.met.cacheMisses.Inc()
	e.met.inFlight.Add(1)

	res, err := e.solve(ctx, req)

	e.met.inFlight.Add(-1)
	e.finishSolve(res, err)
	e.mu.Lock()
	delete(e.inflight, key)
	if err == nil && !res.Truncated {
		e.cache.put(key, res)
	}
	e.mu.Unlock()
	e.met.observe(start, req.StaticProfile, "miss", req.Algorithm)
	c.res, c.err = res, err
	close(c.done)
	return res, err
}

// warmStates returns private warm-start states for one request's bound
// fan-out: deep copies of the cached per-function states under key (or
// zero states on a miss), so the request's ascents can mutate them
// freely while the cached entry stays immutable for concurrent readers.
func (e *Engine) warmStates(key string, n int) []*tsp.HKWarmState {
	e.mu.Lock()
	cached, _ := e.warm.get(key)
	e.mu.Unlock()
	states := make([]*tsp.HKWarmState, n)
	for i := range states {
		s := &tsp.HKWarmState{}
		if i < len(cached) && cached[i] != nil {
			s.Pi = append([]float64(nil), cached[i].Pi...)
		}
		states[i] = s
	}
	return states
}

// finishSolve records one completed solve's outcome counters.
func (e *Engine) finishSolve(res *Result, err error) {
	if err != nil {
		e.met.errors.Inc()
		return
	}
	e.met.solves.Inc()
	if res.Truncated {
		e.met.truncated.Inc()
	}
}

// solve performs the actual per-function fan-out under the shared
// worker pool.
func (e *Engine) solve(ctx context.Context, req Request) (*Result, error) {
	mod, prof := req.Module, req.Profile
	if req.StaticProfile {
		// Profile-less request: estimate one from CFG structure. The
		// estimate is a pure function of the module, so the cache key's
		// profile-mode tag plus the module digest fully determine it.
		prof, _ = staticprof.Estimate(mod)
	}
	opts := tsp.PaperSolveOptions(req.Seed)
	opts.Context = ctx
	opts.Budget = req.Budget
	opts.Parallelism = req.Parallelism
	if opts.Parallelism == 0 {
		opts.Parallelism = e.parallelism
	}
	// Nested run fan-out draws from the same pool as the per-function
	// fan-out below, so Workers bounds the engine's total concurrency.
	opts.Pool = e.pool

	hkIters := req.HKIterations
	if hkIters <= 0 {
		hkIters = 1000
	}
	hkOpts := tsp.HeldKarpOptions{
		Iterations: hkIters,
		Context:    ctx,
		Budget:     req.Budget,
	}

	a, err := align.New(req.Algorithm, align.Options{Seed: req.Seed, Obs: req.Obs})
	if err != nil {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownAlgorithm, req.Algorithm, align.Names())
	}
	n := len(mod.Funcs)
	orders := make([][]int, n)
	stats := make([]FuncStat, n)
	bounds := make([]align.FuncBoundResult, n)

	// Warm-start states for the bound computations: per-function dual
	// vectors cached by instance identity (boundKey — module, profile,
	// model; not seed/algorithm/budget). Each request works on private
	// copies and publishes them back after the fan-out, so concurrent
	// requests on the same instance never share mutable state.
	var warm []*tsp.HKWarmState
	var warmKey string
	if req.Bound {
		if bk, err := boundKey(req); err == nil {
			warmKey = bk
			warm = e.warmStates(bk, n)
		}
	}

	// The Held-Karp bound is on the control penalty of ANY layout of the
	// function, so it is meaningful (and identical up to ascent depth)
	// under every algorithm.
	funcBound := func(fi int) {
		if req.Bound {
			ho := hkOpts
			ho.Obs = req.Obs
			if warm != nil {
				ho.Warm = warm[fi]
			}
			bounds[fi] = align.FuncHeldKarpBoundResult(mod.Funcs[fi], prof.Funcs[fi], req.Model, ho)
		}
	}

	// Blocking fan-out on the shared pool: at most Workers per-function
	// solves execute concurrently across all requests, exactly like the
	// former per-engine semaphore. The TSP and ExtTSP aligners expose
	// per-function entry points, so the engine drives the fan-out itself
	// and gets per-function diagnostics; other registered aligners run
	// through their module-level Align (they are all cheap linear-time
	// heuristics).
	switch t := a.(type) {
	case *align.TSP:
		t.Opts = opts
		e.pool.Each(n, func(fi int) {
			f := mod.Funcs[fi]
			fr := t.SolveFunc(f, prof.Funcs[fi], req.Model, opts, int64(fi))
			orders[fi] = fr.Order
			stats[fi] = FuncStat{
				Name:      f.Name,
				Cities:    fr.Cities,
				Order:     fr.Order,
				Cost:      int64(fr.Cost),
				Exact:     fr.Exact,
				Truncated: fr.Truncated,
				Kicks:     fr.Kicks,
			}
			funcBound(fi)
		})
	case *align.ExtTSP:
		e.pool.Each(n, func(fi int) {
			f := mod.Funcs[fi]
			fr := t.AlignFunc(ctx, f, prof.Funcs[fi], req.Model)
			orders[fi] = fr.Order
			stats[fi] = FuncStat{
				Name:      f.Name,
				Cities:    fr.Cities,
				Order:     fr.Order,
				Cost:      int64(fr.Cost),
				Truncated: fr.Truncated,
			}
			funcBound(fi)
		})
	default:
		al := a.Align(ctx, mod, prof, req.Model)
		for fi, f := range mod.Funcs {
			orders[fi] = al.Funcs[fi].Order
			stats[fi] = FuncStat{
				Name:   f.Name,
				Cities: len(f.Blocks),
				Order:  orders[fi],
				Cost:   int64(layout.Penalty(f, al.Funcs[fi], prof.Funcs[fi], req.Model)),
			}
		}
		if req.Bound {
			e.pool.Each(n, funcBound)
		}
	}

	if warm != nil {
		// Publish the updated dual states for the next request on this
		// instance. Concurrent requests race benignly: whichever slice
		// lands last is a complete, valid set of states.
		e.mu.Lock()
		e.warm.put(warmKey, warm)
		e.mu.Unlock()
	}

	res := &Result{Funcs: stats, ProfileEstimated: req.StaticProfile}
	l := &layout.Layout{}
	for fi, f := range mod.Funcs {
		l.Funcs = append(l.Funcs, layout.Finalize(f, prof.Funcs[fi], orders[fi], req.Model))
		if stats[fi].Truncated {
			res.Truncated = true
		}
		if req.Bound {
			b := bounds[fi]
			res.Bound += b.Bound
			res.Funcs[fi].Bound = int64(b.Bound)
			res.Funcs[fi].GapPct = gapPct(res.Funcs[fi].Cost, int64(b.Bound))
			if b.Truncated {
				res.Truncated = true
			}
		}
	}
	if err := l.Validate(mod); err != nil {
		return nil, fmt.Errorf("engine: solver produced invalid layout: %w", err)
	}
	res.Layout = l
	res.Penalty = layout.ModulePenalty(mod, l, prof, req.Model)
	orig := layout.Identity(mod, prof, req.Model)
	res.OriginalPenalty = layout.ModulePenalty(mod, orig, prof, req.Model)
	return res, nil
}

// gapPct is the relative optimality gap in percent, clamped at zero.
func gapPct(cost, bound int64) float64 {
	if cost <= 0 {
		return 0
	}
	g := float64(cost-bound) / float64(cost) * 100
	if g < 0 {
		return 0
	}
	return g
}
