package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
	"branchalign/internal/tsp"
)

func branchy(t *testing.T) (*ir.Module, *interp.Profile) {
	t.Helper()
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(400, 7))
	if err != nil {
		t.Fatal(err)
	}
	return mod, prof
}

func sameLayout(t *testing.T, a, b *layout.Layout) {
	t.Helper()
	if len(a.Funcs) != len(b.Funcs) {
		t.Fatalf("layouts have %d vs %d functions", len(a.Funcs), len(b.Funcs))
	}
	for fi := range a.Funcs {
		ao, bo := a.Funcs[fi].Order, b.Funcs[fi].Order
		if len(ao) != len(bo) {
			t.Fatalf("func %d: order lengths %d vs %d", fi, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("func %d: orders diverge at %d: %v vs %v", fi, i, ao, bo)
			}
		}
	}
}

// TestEngineMatchesAligner pins that the engine is a pure front end:
// the layout it serves is bit-identical to driving align.TSP directly
// with the same seed.
func TestEngineMatchesAligner(t *testing.T) {
	mod, prof := branchy(t)
	model := machine.Alpha21164()

	direct := align.NewTSP(3).Align(context.Background(), mod, prof, model)

	e := New(Options{})
	res, err := e.Align(context.Background(), Request{Module: mod, Profile: prof, Model: model, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("unbudgeted request marked truncated")
	}
	sameLayout(t, direct, res.Layout)
	if want := layout.ModulePenalty(mod, direct, prof, model); res.Penalty != want {
		t.Fatalf("penalty %d, want %d", res.Penalty, want)
	}
}

func TestEngineCacheHit(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	req := Request{Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1}

	first, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	second, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical second request missed the cache")
	}
	sameLayout(t, first.Layout, second.Layout)

	// A different seed is a different computation.
	req.Seed = 2
	third, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different seed served from cache")
	}
	st := e.Stats()
	if st.Requests != 3 || st.CacheHits != 1 || st.Solved != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 1 hit / 2 solved", st)
	}
}

// TestEngineDeadlineExcludedFromKey pins that two requests differing
// only in wall-clock deadline share one cache entry.
func TestEngineDeadlineExcludedFromKey(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	req := Request{Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1}
	if _, err := e.Align(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.Budget = tsp.Budget{Deadline: time.Now().Add(time.Hour)}
	res, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("deadline-only difference missed the cache")
	}
}

func TestEngineTruncatedNotCached(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	req := Request{
		Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1,
		Budget: tsp.Budget{Deadline: time.Now().Add(-time.Second)},
	}
	res, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expired deadline did not truncate")
	}
	if err := res.Layout.Validate(mod); err != nil {
		t.Fatalf("truncated layout invalid: %v", err)
	}
	// Re-issuing with a live deadline must re-solve (truncated results
	// are never cached) and come back untruncated.
	req.Budget = tsp.Budget{}
	full, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if full.CacheHit || full.Truncated {
		t.Fatalf("retry after truncation: hit=%v truncated=%v, want fresh full solve",
			full.CacheHit, full.Truncated)
	}
	if full.Penalty > res.Penalty {
		t.Fatalf("full solve penalty %d worse than truncated %d", full.Penalty, res.Penalty)
	}
}

func TestEngineBounds(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	res, err := e.Align(context.Background(), Request{
		Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1,
		Bound: true, HKIterations: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound <= 0 || res.Bound > res.Penalty {
		t.Fatalf("bound %d outside (0, penalty=%d]", res.Bound, res.Penalty)
	}
	for _, fs := range res.Funcs {
		if fs.Bound > fs.Cost {
			t.Fatalf("func %s: bound %d exceeds tour cost %d", fs.Name, fs.Bound, fs.Cost)
		}
	}
}

// TestEngineWarmStartTightensBounds pins the warm-start cache: a second
// bounded request on the same instance (different seed, so it misses
// the result cache) resumes its Held-Karp ascents from the first
// request's dual states. The resumed ascent re-evaluates the cached
// best iterate first, so the second request's bounds are at least as
// tight as the first's — and still valid lower bounds.
func TestEngineWarmStartTightensBounds(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{Workers: 2})
	req := Request{
		Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 1,
		Bound: true, HKIterations: 60,
	}
	first, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Seed = 2
	second, err := e.Align(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit || second.Coalesced {
		t.Fatal("different seed unexpectedly shared the first result")
	}
	if second.Bound < first.Bound {
		t.Fatalf("warm-started bound %d below cold bound %d", second.Bound, first.Bound)
	}
	for _, fs := range second.Funcs {
		if fs.Bound > fs.Cost {
			t.Fatalf("func %s: warm bound %d exceeds tour cost %d", fs.Name, fs.Bound, fs.Cost)
		}
	}
}

// TestEngineConcurrentIdenticalCoalesce exercises single-flight: many
// identical concurrent requests produce identical layouts, and at most
// a few actual solves (one leader plus stragglers that arrived after it
// finished and hit the cache).
func TestEngineConcurrentIdenticalCoalesce(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{Workers: 2})
	const N = 16
	results := make([]*Result, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Align(context.Background(), Request{
				Module: mod, Profile: prof, Model: machine.Alpha21164(), Seed: 5,
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < N; i++ {
		if results[i] == nil || results[0] == nil {
			t.Fatal("missing result")
		}
		sameLayout(t, results[0].Layout, results[i].Layout)
	}
	st := e.Stats()
	if st.Requests != N {
		t.Fatalf("requests = %d, want %d", st.Requests, N)
	}
	if st.Coalesced+st.CacheHits == 0 {
		t.Fatal("no request was coalesced or cache-served")
	}
	if st.Solved+st.Coalesced+st.CacheHits != N {
		t.Fatalf("stats don't account for all requests: %+v", st)
	}
}

// TestEngineConcurrentMixed hammers the engine with distinct seeds and
// mixed budgets under the race detector.
func TestEngineConcurrentMixed(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{Workers: 4, CacheEntries: 8})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{
				Module: mod, Profile: prof, Model: machine.Alpha21164(),
				Seed: int64(i % 6), Bound: i%3 == 0, HKIterations: 100,
			}
			if i%4 == 0 {
				req.Budget = tsp.Budget{MaxKicks: 3}
			}
			res, err := e.Align(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			if err := res.Layout.Validate(mod); err != nil {
				t.Errorf("request %d: invalid layout: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestEngineRejectsMalformedRequest(t *testing.T) {
	mod, prof := branchy(t)
	e := New(Options{})
	if _, err := e.Align(context.Background(), Request{Profile: prof}); err == nil {
		t.Fatal("nil module accepted")
	}
	if _, err := e.Align(context.Background(), Request{Module: mod}); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := e.Align(context.Background(), Request{Module: mod, Profile: &interp.Profile{}}); err == nil {
		t.Fatal("mismatched profile accepted")
	}
}
