package engine

import (
	"time"

	"branchalign/internal/obs"
	"branchalign/internal/work"
)

// metrics are the engine's handles into the process metrics plane
// (obs.Registry). Every counter the engine ever exposed through Stats
// lives here now — Stats() reads these same cells back, so the JSON
// stats surface and the /metrics exposition can never drift: they are
// two renderings of one registry.
//
// Label cardinality is closed by construction: profile_mode is one of
// {measured, static}, cache one of {hit, miss, coalesced}, algorithm
// one of the registered aligner names (a compile-time table).
type metrics struct {
	requests    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	evictions   *obs.Counter
	coalesced   *obs.Counter
	solves      *obs.Counter
	truncated   *obs.Counter
	errors      *obs.Counter
	inFlight    *obs.Gauge
	solveDur    *obs.HistogramVec
}

// solve-duration buckets: 2^-14 s (~61µs, a warm cache hit) up to
// 2^6 s (64s, a maximally budgeted solve).
const (
	solveDurMinExp = -14
	solveDurMaxExp = 6
)

// newMetrics registers the engine's metric families in reg and wires
// the live gauges: cache occupancy (via entries, called under the
// engine mutex at collection time) and the worker pool's capacity,
// active-task and queue-depth gauges plus its queue-wait histogram.
func newMetrics(reg *obs.Registry, pool *work.Pool, entries func() float64) metrics {
	m := metrics{
		requests:    reg.Counter("engine_requests_total", "Alignment requests accepted by the engine (after validation)."),
		cacheHits:   reg.Counter("engine_cache_hits_total", "Requests served from the completed-result cache."),
		cacheMisses: reg.Counter("engine_cache_misses_total", "Requests that found no completed cache entry and solved (or re-solved past an expired peer)."),
		evictions:   reg.Counter("engine_cache_evictions_total", "Completed results evicted from the cache by LRU capacity pressure."),
		coalesced:   reg.Counter("engine_coalesced_total", "Requests deduplicated onto an identical in-flight solve (single-flight)."),
		solves:      reg.Counter("engine_solves_total", "Solves that ran to completion (including truncated ones)."),
		truncated:   reg.Counter("engine_truncated_total", "Completed solves cut short by a deadline or work budget."),
		errors:      reg.Counter("engine_errors_total", "Solves that failed (malformed requests are rejected before counting)."),
		inFlight:    reg.Gauge("engine_in_flight", "Leader solves executing right now."),
		solveDur: reg.HistogramVec("engine_solve_duration_seconds",
			"Engine request latency by profile mode, cache outcome and algorithm.",
			solveDurMinExp, solveDurMaxExp, "profile_mode", "cache", "algorithm"),
	}
	reg.GaugeFunc("engine_cache_entries", "Completed results currently cached.", entries)
	reg.GaugeFunc("work_pool_capacity", "Maximum concurrently executing pool tasks.",
		func() float64 { return float64(pool.Cap()) })
	reg.GaugeFunc("work_pool_active_tasks", "Pool tasks (per-function solves and nested solver runs) executing right now.",
		func() float64 { return float64(pool.Active()) })
	reg.GaugeFunc("work_pool_queue_depth", "Helper goroutines blocked waiting for a pool token.",
		func() float64 { return float64(pool.Waiting()) })
	wait := reg.Histogram("work_pool_queue_wait_seconds",
		"Time helper goroutines spent queued for a pool token.", solveDurMinExp, solveDurMaxExp)
	pool.SetWaitObserver(func(d time.Duration) { wait.Observe(d.Seconds()) })
	return m
}

// observe records one finished request's latency under its profile
// mode, cache outcome ("hit", "miss" or "coalesced") and algorithm.
func (m *metrics) observe(start time.Time, static bool, outcome, algorithm string) {
	mode := "measured"
	if static {
		mode = "static"
	}
	m.solveDur.With(mode, outcome, algorithm).Observe(time.Since(start).Seconds())
}
