package align

import (
	"context"
	"testing"
	"testing/quick"

	"branchalign/internal/bench"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// TestExtTSPValidOnBenchmarks: the chain merger yields a valid layout on
// the real suite and never scores below the original order — the merge
// loop only joins chains when the ExtTSP gain is positive, and the seed
// chains already capture every mutually-hottest fall-through the
// identity layout can offer.
func TestExtTSPValidOnBenchmarks(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	p := layout.DefaultExtTSPParams()
	a := NewExtTSP()
	l := a.Align(context.Background(), mod, prof, m)
	if err := l.Validate(mod); err != nil {
		t.Fatalf("invalid layout: %v", err)
	}
	got := layout.ModuleExtTSPScore(mod, l, prof, p)
	orig := layout.ModuleExtTSPScore(mod, Original{}.Align(context.Background(), mod, prof, m), prof, p)
	if got < orig {
		t.Errorf("exttsp score %.3f below original %.3f", got, orig)
	}
	t.Logf("exttsp score %.3f vs original %.3f", got, orig)
}

// TestQuickExtTSPValidOnSynthCFGs: valid layouts on arbitrary synthetic
// instances, including degenerate shapes (single block, all-cold,
// switch-heavy).
func TestQuickExtTSPValidOnSynthCFGs(t *testing.T) {
	m := machine.Alpha21164()
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%40) + 1
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)+271))
		if err != nil {
			return false
		}
		l := NewExtTSP().Align(context.Background(), mod, prof, m)
		if err := l.Validate(mod); err != nil {
			t.Logf("blocks=%d seed=%d: %v", blocks, seedRaw, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestExtTSPDeterministic: the parallel run is bit-identical to the
// sequential run (functions are independent; the per-function merge is
// sequential), and repeated runs agree. This is the schedule-independence
// contract CI's GOMAXPROCS=2 race step exercises.
func TestExtTSPDeterministic(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	seq := NewExtTSP().Align(context.Background(), mod, prof, m)
	for trial := 0; trial < 4; trial++ {
		par := (&ExtTSP{Parallel: true}).Align(context.Background(), mod, prof, m)
		for fi := range mod.Funcs {
			so, po := seq.Funcs[fi].Order, par.Funcs[fi].Order
			for i := range so {
				if so[i] != po[i] {
					t.Fatalf("trial %d func %s: order diverged at %d: %v vs %v",
						trial, mod.Funcs[fi].Name, i, so, po)
				}
			}
		}
	}
}

// TestExtTSPCancelledContextStillValid: a pre-cancelled context
// truncates the merge loop immediately; the seed chains alone must
// still concatenate into a valid layout.
func TestExtTSPCancelledContextStillValid(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewExtTSP()
	l := a.Align(ctx, mod, prof, m)
	if err := l.Validate(mod); err != nil {
		t.Fatalf("truncated layout invalid: %v", err)
	}
	res := a.AlignFunc(ctx, mod.Funcs[0], prof.Funcs[0], m)
	if len(mod.Funcs[0].Blocks) > 1 && !res.Truncated {
		t.Errorf("pre-cancelled ctx did not report truncation")
	}
}

// TestExtTSPFuncResultScoreMatchesRecompute: the score the aligner
// reports is the from-scratch ExtTSPScore of the order it returns —
// the incremental chain bookkeeping cannot drift from the objective.
func TestExtTSPFuncResultScoreMatchesRecompute(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	a := NewExtTSP()
	p := layout.DefaultExtTSPParams()
	for fi, f := range mod.Funcs {
		res := a.AlignFunc(context.Background(), f, prof.Funcs[fi], m)
		want := layout.ExtTSPScore(f, prof.Funcs[fi], res.Order, p)
		if res.Score != want {
			t.Errorf("%s: reported score %v != recomputed %v", f.Name, res.Score, want)
		}
	}
}
