package align

// The aligner registry: the one name→constructor table every selection
// surface (core.Suite, internal/engine, cmd/balign, cmd/balignd,
// cmd/experiments) consults, so adding an aligner here makes it
// selectable everywhere at once. The table is populated at package init
// with the built-in family and is read-only afterwards; Names() is
// sorted so every listing derived from it is deterministic.

import (
	"fmt"
	"sort"

	"branchalign/internal/obs"
)

// Options carries the construction-time knobs an aligner may honor.
// Aligners without a matching knob ignore the field.
type Options struct {
	// Seed perturbs restart order for randomized aligners (tsp).
	Seed int64
	// Parallel lays out functions on the shared worker pool.
	Parallel bool
	// Parallelism additionally splits each function's solve across
	// workers (tsp only; 0 keeps the solver's default).
	Parallelism int
	// Obs, when non-nil, receives per-function telemetry spans.
	Obs *obs.Span
}

// Factory builds a fresh aligner instance from options.
type Factory func(Options) Aligner

var (
	factories   = map[string]Factory{}
	sortedNames []string
)

// Register adds a named aligner factory. Duplicate names panic: the
// registry is a compile-time table, and two packages claiming one name
// is a build bug, not a runtime condition.
func Register(name string, f Factory) {
	if _, dup := factories[name]; dup {
		panic("align: duplicate aligner " + name)
	}
	factories[name] = f
	sortedNames = append(sortedNames, name)
	sort.Strings(sortedNames)
}

// New constructs the named aligner. The error lists the known names so
// callers can surface it to users verbatim.
func New(name string, o Options) (Aligner, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("unknown aligner %q (known: %v)", name, Names())
	}
	return f(o), nil
}

// Names returns the registered aligner names, sorted.
func Names() []string {
	out := make([]string, len(sortedNames))
	copy(out, sortedNames)
	return out
}

func init() {
	Register("original", func(Options) Aligner { return Original{} })
	Register("greedy", func(Options) Aligner { return PettisHansen{} })
	Register("calder-grunwald", func(Options) Aligner { return &CalderGrunwald{} })
	Register("ap-patch", func(Options) Aligner { return APPatch{} })
	Register("tsp", func(o Options) Aligner {
		t := NewTSP(o.Seed)
		t.Parallel = o.Parallel
		t.Opts.Parallelism = o.Parallelism
		t.Obs = o.Obs
		return t
	})
	Register("exttsp", func(o Options) Aligner {
		return &ExtTSP{Parallel: o.Parallel, Obs: o.Obs}
	})
}
