package align

import (
	"runtime"
	"sync"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// BuildMatrix constructs the DTSP instance for one function, per Section
// 2.2 of the paper: a complete directed graph over the function's blocks
// where the cost of edge (B, X) is the penalty accrued at the end of B
// when X succeeds it in the layout (including the cost of any fixup
// branches the placement forces).
//
// The paper adds "a dummy block representing the end of the layout"; here
// the dummy is merged with the entry block into city 0 (the entry must be
// laid out first, so in any cycle through city 0 the edge into city 0 is
// the end-of-layout cost and the edge out of city 0 is the entry's
// successor cost). The merge keeps every matrix entry finite: no
// forbidden-edge constants are needed, which also tightens the Held-Karp
// bound. City k corresponds to block k; a tour rotated to start at city 0
// is exactly a block order.
func BuildMatrix(f *ir.Func, fp *interp.FuncProfile, pred []int, m machine.Model) *tsp.Matrix {
	n := len(f.Blocks)
	mat := tsp.NewMatrix(n)
	for b := 0; b < n; b++ {
		for x := 0; x < n; x++ {
			if b == x {
				continue
			}
			if x == 0 {
				// Closing the cycle into city 0 means "b is the last
				// block of the layout".
				mat.Set(b, x, layout.SuccessorCost(f, fp, pred, b, -1, m))
				continue
			}
			mat.Set(b, x, layout.SuccessorCost(f, fp, pred, b, x, m))
		}
	}
	return mat
}

// TSP is the paper's aligner: reduce each function to a DTSP and solve it
// with multi-start iterated 3-opt (exactly for small functions).
type TSP struct {
	// Opts configures the solver; the zero value selects the paper's
	// protocol (10 runs, 2N iterations) with seed 1.
	Opts tsp.SolveOptions
	// Parallel solves the per-function DTSPs on all CPUs. Functions are
	// independent and each gets its own deterministic seed, so the result
	// is bit-identical to the sequential run.
	Parallel bool
}

// NewTSP returns a TSP aligner with the paper's solver protocol.
func NewTSP(seed int64) *TSP {
	return &TSP{Opts: tsp.PaperSolveOptions(seed)}
}

// Name implements Aligner.
func (*TSP) Name() string { return "tsp" }

// Align implements Aligner.
func (t *TSP) Align(mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	opts := t.Opts
	if opts.GreedyStarts == 0 && opts.NNStarts == 0 && opts.IdentityStarts == 0 {
		opts = tsp.PaperSolveOptions(1)
	}
	orders := make([][]int, len(mod.Funcs))
	if t.Parallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for fi, f := range mod.Funcs {
			wg.Add(1)
			sem <- struct{}{}
			go func(fi int, f *ir.Func) {
				defer wg.Done()
				defer func() { <-sem }()
				orders[fi] = t.alignFunc(f, prof.Funcs[fi], m, opts, int64(fi))
			}(fi, f)
		}
		wg.Wait()
	} else {
		for fi, f := range mod.Funcs {
			orders[fi] = t.alignFunc(f, prof.Funcs[fi], m, opts, int64(fi))
		}
	}
	return finalizeOrders(mod, prof, m, orders)
}

// AlignFuncResult carries per-function solver diagnostics, used by the
// appendix experiment.
type AlignFuncResult struct {
	FuncIndex  int
	Cities     int
	Order      []int
	Cost       tsp.Cost
	Exact      bool
	Runs       int
	RunsAtBest int
}

func (t *TSP) alignFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.SolveOptions, seedOffset int64) []int {
	res := t.SolveFunc(f, fp, m, opts, seedOffset)
	return res.Order
}

// SolveFunc runs the solver on one function's DTSP and returns the block
// order plus diagnostics.
func (t *TSP) SolveFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.SolveOptions, seedOffset int64) AlignFuncResult {
	n := len(f.Blocks)
	out := AlignFuncResult{Cities: n}
	if n == 1 {
		out.Order = []int{0}
		out.Exact = true
		out.Runs = 1
		out.RunsAtBest = 1
		return out
	}
	pred := layout.Predictions(f, fp)
	mat := BuildMatrix(f, fp, pred, m)
	opts.Seed += seedOffset
	res := tsp.Solve(mat, opts)
	res.Tour.RotateTo(0)
	out.Order = res.Tour
	out.Cost = res.Cost
	out.Exact = res.Exact
	out.Runs = res.Runs
	out.RunsAtBest = res.RunsAtBest
	return out
}

// HeldKarpLowerBound computes the per-function Held-Karp lower bounds on
// control penalty and returns their sum (in cycles, rounded up to the
// next integer per function since penalties are integral). No layout can
// achieve a lower total intraprocedural control penalty on the training
// input.
func HeldKarpLowerBound(mod *ir.Module, prof *interp.Profile, m machine.Model, opts tsp.HeldKarpOptions) layout.Cost {
	var total layout.Cost
	for fi, f := range mod.Funcs {
		total += FuncHeldKarpBound(f, prof.Funcs[fi], m, opts)
	}
	return total
}

// FuncHeldKarpBound computes the Held-Karp bound for a single function's
// DTSP instance. Functions small enough for exact solving are bounded by
// their true optimum.
func FuncHeldKarpBound(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.HeldKarpOptions) layout.Cost {
	n := len(f.Blocks)
	if n == 1 {
		return 0
	}
	pred := layout.Predictions(f, fp)
	mat := BuildMatrix(f, fp, pred, m)
	if n <= 12 {
		_, opt := tsp.SolveExact(mat)
		return opt
	}
	b := tsp.HeldKarpDirected(mat, opts)
	if b < 0 {
		return 0 // costs are non-negative; clamp numerical noise
	}
	// The bound is valid, and penalties are integral, so rounding up
	// keeps it valid while tightening it.
	c := layout.Cost(b)
	if float64(c) < b {
		c++
	}
	return c
}

// BuildMatrixForFunc is BuildMatrix with predictions derived internally,
// a convenience for per-instance analyses (the appendix experiment).
func BuildMatrixForFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model) *tsp.Matrix {
	return BuildMatrix(f, fp, layout.Predictions(f, fp), m)
}

// AssignmentLowerBound computes the per-function assignment-problem
// bounds and their sum. It is weaker than Held-Karp on most
// branch-alignment instances (the paper's appendix measures exactly how
// much weaker).
func AssignmentLowerBound(mod *ir.Module, prof *interp.Profile, m machine.Model) layout.Cost {
	var total layout.Cost
	for fi, f := range mod.Funcs {
		if len(f.Blocks) == 1 {
			continue
		}
		pred := layout.Predictions(f, prof.Funcs[fi])
		mat := BuildMatrix(f, prof.Funcs[fi], pred, m)
		total += tsp.AssignmentBound(mat)
	}
	return total
}
