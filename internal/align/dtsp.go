package align

import (
	"context"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/tsp"
	"branchalign/internal/work"
)

// BuildMatrix constructs the DTSP instance for one function, per Section
// 2.2 of the paper: a complete directed graph over the function's blocks
// where the cost of edge (B, X) is the penalty accrued at the end of B
// when X succeeds it in the layout (including the cost of any fixup
// branches the placement forces).
//
// The paper adds "a dummy block representing the end of the layout"; here
// the dummy is merged with the entry block into city 0 (the entry must be
// laid out first, so in any cycle through city 0 the edge into city 0 is
// the end-of-layout cost and the edge out of city 0 is the entry's
// successor cost). The merge keeps every matrix entry finite: no
// forbidden-edge constants are needed, which also tightens the Held-Karp
// bound. City k corresponds to block k; a tour rotated to start at city 0
// is exactly a block order.
func BuildMatrix(f *ir.Func, fp *interp.FuncProfile, pred []int, m machine.Model) *tsp.Matrix {
	n := len(f.Blocks)
	mat := tsp.NewMatrix(n)
	for b := 0; b < n; b++ {
		for x := 0; x < n; x++ {
			if b == x {
				continue
			}
			if x == 0 {
				// Closing the cycle into city 0 means "b is the last
				// block of the layout".
				mat.Set(b, x, layout.SuccessorCost(f, fp, pred, b, -1, m))
				continue
			}
			mat.Set(b, x, layout.SuccessorCost(f, fp, pred, b, x, m))
		}
	}
	return mat
}

// BuildSparseMatrix constructs the same DTSP instance as BuildMatrix in
// sparse form, in O(V+E) time and memory instead of Θ(V²). Each row of
// the instance takes at most outdegree(B)+1 distinct values — one per CFG
// successor plus a row-constant "displaced" cost that also covers the
// end-of-layout column 0 (layout.SuccessorCostRow) — so the whole matrix
// is a per-row default plus an exception list the size of the CFG edge
// set. tsp.SparseMatrix.At agrees with the dense matrix entry-for-entry;
// the sparse solver kernels exploit the structure directly.
func BuildSparseMatrix(f *ir.Func, fp *interp.FuncProfile, pred []int, m machine.Model) *tsp.SparseMatrix {
	n := len(f.Blocks)
	sb := tsp.NewSparseBuilder(n)
	var succs []int
	var costs []layout.Cost
	type exc struct {
		col int
		val tsp.Cost
	}
	excs := make([]exc, 0, 4)
	var cols []int
	var vals []tsp.Cost
	for b := 0; b < n; b++ {
		var def layout.Cost
		def, succs, costs = layout.SuccessorCostRow(f, fp, pred, b, m, succs[:0], costs[:0])
		excs = excs[:0]
		for k, x := range succs {
			// The diagonal is never read, and column 0 carries the
			// end-of-layout cost, which equals the row default.
			if x == b || x == 0 || costs[k] == def {
				continue
			}
			excs = append(excs, exc{x, costs[k]})
		}
		// Stable insertion sort by column; rows have at most
		// outdegree(b) entries, so this beats sort.SliceStable and
		// avoids its closure allocation.
		for i := 1; i < len(excs); i++ {
			for j := i; j > 0 && excs[j-1].col > excs[j].col; j-- {
				excs[j], excs[j-1] = excs[j-1], excs[j]
			}
		}
		cols, vals = cols[:0], vals[:0]
		for _, e := range excs {
			if len(cols) > 0 && cols[len(cols)-1] == e.col {
				continue // duplicate successor: first entry wins, as in SuccessorCost
			}
			cols = append(cols, e.col)
			vals = append(vals, e.val)
		}
		sb.AddRow(def, cols, vals) // AddRow copies, so the scratch is reusable
	}
	return sb.Finish()
}

// TSP is the paper's aligner: reduce each function to a DTSP and solve it
// with multi-start iterated 3-opt (exactly for small functions).
type TSP struct {
	// Opts configures the solver; the zero value selects the paper's
	// protocol (10 runs, 2N iterations) with seed 1.
	Opts tsp.SolveOptions
	// Parallel solves the per-function DTSPs on all CPUs (the shared
	// work.Shared() pool). Functions are independent and each gets its
	// own deterministic seed, so the result is bit-identical to the
	// sequential run. Composes with per-run solver parallelism
	// (Opts.Parallelism): both layers draw workers from the same pool,
	// so enabling both never oversubscribes the machine.
	Parallel bool
	// Obs, when non-nil, is the parent span per-function solver telemetry
	// is recorded under: one "align.func" span per function (matrix
	// build, per-row exception histogram, tsp.solve sub-spans with
	// convergence series). Safe with Parallel — spans are created
	// concurrently under the shared parent. Nil records nothing.
	Obs *obs.Span
}

// NewTSP returns a TSP aligner with the paper's solver protocol.
func NewTSP(seed int64) *TSP {
	return &TSP{Opts: tsp.PaperSolveOptions(seed)}
}

// Name implements Aligner.
func (*TSP) Name() string { return "tsp" }

// Align implements Aligner. A cancelled ctx (or an exhausted
// t.Opts.Budget) truncates each in-flight per-function solve at its next
// kick boundary and finalizes the best-so-far block orders; the returned
// layout is always valid.
func (t *TSP) Align(ctx context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	opts := t.Opts
	if opts.GreedyStarts == 0 && opts.NNStarts == 0 && opts.IdentityStarts == 0 {
		def := tsp.PaperSolveOptions(1)
		def.Context, def.Budget = opts.Context, opts.Budget
		def.Parallelism, def.Pool = opts.Parallelism, opts.Pool
		opts = def
	}
	if ctx != nil {
		opts.Context = ctx
	}
	orders := make([][]int, len(mod.Funcs))
	forEachFunc(mod, t.Parallel, func(fi int, f *ir.Func) {
		orders[fi] = t.alignFunc(f, prof.Funcs[fi], m, opts, int64(fi))
	})
	return finalizeOrders(mod, prof, m, orders)
}

// forEachFunc evaluates fn(fi, f) for every function of the module — on
// the process-wide worker pool when parallel is true, sequentially
// otherwise. Functions are independent and results are written by index,
// so the parallel schedule is observationally identical to the
// sequential loop. Any per-run parallelism inside fn's solves nests on
// the same pool (see tsp.SolveOptions.Pool), keeping the total worker
// count bounded.
func forEachFunc(mod *ir.Module, parallel bool, fn func(fi int, f *ir.Func)) {
	if !parallel {
		for fi, f := range mod.Funcs {
			fn(fi, f)
		}
		return
	}
	work.Shared().Each(len(mod.Funcs), func(fi int) {
		fn(fi, mod.Funcs[fi])
	})
}

// AlignFuncResult carries per-function solver diagnostics, used by the
// appendix experiment.
type AlignFuncResult struct {
	FuncIndex  int
	Cities     int
	Order      []int
	Cost       tsp.Cost
	Exact      bool
	Runs       int
	RunsAtBest int
	// IterationsToBest is the kick iteration at which the winning run
	// found the final tour; MovesTried/MovesAccepted total the 3-opt
	// segment-exchange moves examined and applied across all runs, and
	// OrMovesTried/OrMovesAccepted the Or-opt relocations (see
	// tsp.Result).
	IterationsToBest              int
	MovesTried, MovesAccepted     int64
	OrMovesTried, OrMovesAccepted int64
	// Kicks totals the kick rounds performed; Truncated marks a solve
	// cut short by its context or budget (see tsp.Result).
	Kicks     int64
	Truncated bool
}

func (t *TSP) alignFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.SolveOptions, seedOffset int64) []int {
	res := t.SolveFunc(f, fp, m, opts, seedOffset)
	return res.Order
}

// SolveFunc runs the solver on one function's DTSP and returns the block
// order plus diagnostics.
func (t *TSP) SolveFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.SolveOptions, seedOffset int64) AlignFuncResult {
	n := len(f.Blocks)
	out := AlignFuncResult{Cities: n}
	sp := t.Obs.Child("align.func", obs.String("func", f.Name), obs.Int("cities", int64(n)),
		obs.String("algorithm", "tsp"))
	if n == 1 {
		out.Order = []int{0}
		out.Exact = true
		out.Runs = 1
		out.RunsAtBest = 1
		sp.End(obs.Int("cost", 0), obs.Bool("exact", true))
		return out
	}
	pred := layout.Predictions(f, fp)
	bm := sp.Child("align.build_matrix")
	mat := BuildSparseMatrix(f, fp, pred, m)
	if bm != nil {
		bm.End(obs.Int("exceptions", int64(mat.Exceptions())))
		for b := 0; b < n; b++ {
			cols, _ := mat.Row(b)
			sp.Observe("align.row_exceptions", float64(len(cols)))
		}
	}
	opts.Seed += seedOffset
	opts.Obs = sp
	res := tsp.Solve(mat, opts)
	res.Tour.RotateTo(0)
	out.Order = res.Tour
	out.Cost = res.Cost
	out.Exact = res.Exact
	out.Runs = res.Runs
	out.RunsAtBest = res.RunsAtBest
	out.IterationsToBest = res.IterationsToBest
	out.MovesTried = res.MovesTried
	out.MovesAccepted = res.MovesAccepted
	out.OrMovesTried = res.OrMovesTried
	out.OrMovesAccepted = res.OrMovesAccepted
	out.Kicks = res.Kicks
	out.Truncated = res.Truncated
	sp.End(obs.Int("cost", res.Cost), obs.Bool("exact", res.Exact), obs.Bool("truncated", res.Truncated),
		obs.Int("runs", int64(res.Runs)), obs.Int("runs_at_best", int64(res.RunsAtBest)),
		obs.Int("iter_best", int64(res.IterationsToBest)),
		obs.Int("moves_tried", res.MovesTried), obs.Int("moves_accepted", res.MovesAccepted),
		obs.Int("or_moves_tried", res.OrMovesTried), obs.Int("or_moves_accepted", res.OrMovesAccepted))
	return out
}

// eachFuncBound evaluates bound(fi, f) for every function of the module
// on all CPUs and returns the sum over functions in index order. Each
// function's bound is independent and the summation order is fixed, so
// the result is identical to the sequential loop.
func eachFuncBound(mod *ir.Module, bound func(fi int, f *ir.Func) layout.Cost) layout.Cost {
	per := make([]layout.Cost, len(mod.Funcs))
	forEachFunc(mod, true, func(fi int, f *ir.Func) {
		per[fi] = bound(fi, f)
	})
	var total layout.Cost
	for _, c := range per {
		total += c
	}
	return total
}

// HeldKarpLowerBound computes the per-function Held-Karp lower bounds on
// control penalty and returns their sum (in cycles, rounded up to the
// next integer per function since penalties are integral). No layout can
// achieve a lower total intraprocedural control penalty on the training
// input. Functions are bounded in parallel (they are independent and the
// per-function bounds are summed in index order, so the result matches
// the sequential loop exactly).
func HeldKarpLowerBound(mod *ir.Module, prof *interp.Profile, m machine.Model, opts tsp.HeldKarpOptions) layout.Cost {
	return eachFuncBound(mod, func(fi int, f *ir.Func) layout.Cost {
		return FuncHeldKarpBound(f, prof.Funcs[fi], m, opts)
	})
}

// FuncBoundResult carries one function's Held-Karp bound with its
// anytime diagnostics.
type FuncBoundResult struct {
	// Bound is a valid lower bound on the function's control penalty.
	Bound layout.Cost
	// Exact is true when the function was small enough to bound by its
	// true optimum (exact DP) or trivially (single block).
	Exact bool
	// Truncated is true when the subgradient ascent was cut short by its
	// context or budget; the bound is still valid, just weaker.
	Truncated bool
	// Iterations is the number of subgradient iterates evaluated (0 for
	// exact bounds).
	Iterations int
	// Converged is true when the bound is provably exact for the relaxed
	// instance: the 1-tree became a tour, or the function was small
	// enough to bound by its true optimum.
	Converged bool
	// Stalled is true when the ascent's stall window (if enabled) ended
	// the computation before its iteration schedule. The bound is still
	// valid, just no tighter than where the ascent plateaued.
	Stalled bool
}

// FuncHeldKarpBound computes the Held-Karp bound for a single function's
// DTSP instance. Functions small enough for exact solving are bounded by
// their true optimum. When opts.Obs is set, the bound computation is
// recorded as an "align.hk" span (with the subgradient trajectory
// nested under it).
func FuncHeldKarpBound(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.HeldKarpOptions) layout.Cost {
	return FuncHeldKarpBoundResult(f, fp, m, opts).Bound
}

// FuncHeldKarpBoundResult is FuncHeldKarpBound with the full anytime
// result (truncation flag, iterate count), used by budgeted callers.
func FuncHeldKarpBoundResult(f *ir.Func, fp *interp.FuncProfile, m machine.Model, opts tsp.HeldKarpOptions) FuncBoundResult {
	n := len(f.Blocks)
	sp := opts.Obs.Child("align.hk", obs.String("func", f.Name), obs.Int("cities", int64(n)))
	opts.Obs = sp
	if n == 1 {
		sp.End(obs.Int("bound", 0), obs.Bool("exact", true), obs.Bool("converged", true))
		return FuncBoundResult{Exact: true, Converged: true}
	}
	pred := layout.Predictions(f, fp)
	mat := BuildSparseMatrix(f, fp, pred, m)
	if n <= 12 {
		_, opt := tsp.SolveExact(mat)
		sp.End(obs.Int("bound", opt), obs.Bool("exact", true), obs.Bool("converged", true))
		return FuncBoundResult{Bound: opt, Exact: true, Converged: true}
	}
	hk := tsp.HeldKarpBound(mat, opts)
	b := hk.Bound
	if b < 0 {
		b = 0 // costs are non-negative; clamp numerical noise
	}
	// The bound is valid, and penalties are integral, so rounding up
	// keeps it valid while tightening it.
	c := layout.Cost(b)
	if float64(c) < b {
		c++
	}
	sp.End(obs.Int("bound", int64(c)), obs.Bool("truncated", hk.Truncated),
		obs.Int("iterations", int64(hk.Iterations)), obs.Bool("converged", hk.Converged),
		obs.Bool("stalled", hk.Stalled))
	return FuncBoundResult{Bound: c, Truncated: hk.Truncated, Iterations: hk.Iterations,
		Converged: hk.Converged, Stalled: hk.Stalled}
}

// BuildMatrixForFunc is BuildMatrix with predictions derived internally,
// a convenience for per-instance analyses (the appendix experiment).
func BuildMatrixForFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model) *tsp.Matrix {
	return BuildMatrix(f, fp, layout.Predictions(f, fp), m)
}

// BuildSparseMatrixForFunc is BuildSparseMatrix with predictions derived
// internally.
func BuildSparseMatrixForFunc(f *ir.Func, fp *interp.FuncProfile, m machine.Model) *tsp.SparseMatrix {
	return BuildSparseMatrix(f, fp, layout.Predictions(f, fp), m)
}

// AssignmentLowerBound computes the per-function assignment-problem
// bounds and their sum. It is weaker than Held-Karp on most
// branch-alignment instances (the paper's appendix measures exactly how
// much weaker). Functions are bounded in parallel, like
// HeldKarpLowerBound.
func AssignmentLowerBound(mod *ir.Module, prof *interp.Profile, m machine.Model) layout.Cost {
	return eachFuncBound(mod, func(fi int, f *ir.Func) layout.Cost {
		if len(f.Blocks) == 1 {
			return 0
		}
		mat := BuildSparseMatrixForFunc(f, prof.Funcs[fi], m)
		return tsp.AssignmentBound(mat)
	})
}
