package align

import (
	"context"
	"math/rand"
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
	"branchalign/internal/tsp"
)

func compileBranchy(t *testing.T) (*ir.Module, *interp.Profile) {
	t.Helper()
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(500, 11))
	if err != nil {
		t.Fatal(err)
	}
	return mod, prof
}

// TestMatrixWalkCostEqualsLayoutPenalty is the central claim of Section
// 2.2: "if we lay out the blocks in the order the walk visits them, the
// total number of penalty cycles caused by the layout is equal to the
// cost of the walk".
func TestMatrixWalkCostEqualsLayoutPenalty(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(4))
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		pred := layout.Predictions(f, fp)
		mat := BuildMatrix(f, fp, pred, m)
		for trial := 0; trial < 30; trial++ {
			tour := tsp.IdentityTour(len(f.Blocks))
			rest := tour[1:]
			rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
			walkCost := tsp.CycleCost(mat, tour)
			fl := layout.Finalize(f, fp, []int(tour), m)
			pen := layout.Penalty(f, fl, fp, m)
			if walkCost != pen {
				t.Fatalf("func %s trial %d: DTSP cycle cost %d != layout penalty %d (tour %v)",
					f.Name, trial, walkCost, pen, tour)
			}
		}
	}
}

func TestAlignersProduceValidLayouts(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	aligners := []Aligner{Original{}, PettisHansen{}, &CalderGrunwald{}, NewTSP(1)}
	for _, a := range aligners {
		l := a.Align(context.Background(), mod, prof, m)
		if err := l.Validate(mod); err != nil {
			t.Errorf("%s: invalid layout: %v", a.Name(), err)
		}
	}
}

func TestAlignerImprovementOrdering(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	orig := layout.ModulePenalty(mod, Original{}.Align(context.Background(), mod, prof, m), prof, m)
	greedy := layout.ModulePenalty(mod, PettisHansen{}.Align(context.Background(), mod, prof, m), prof, m)
	cg := layout.ModulePenalty(mod, (&CalderGrunwald{}).Align(context.Background(), mod, prof, m), prof, m)
	tspPen := layout.ModulePenalty(mod, NewTSP(1).Align(context.Background(), mod, prof, m), prof, m)
	if greedy > orig {
		t.Errorf("greedy penalty %d worse than original %d", greedy, orig)
	}
	if tspPen > greedy {
		t.Errorf("TSP penalty %d worse than greedy %d", tspPen, greedy)
	}
	if tspPen > cg {
		t.Errorf("TSP penalty %d worse than Calder-Grunwald %d", tspPen, cg)
	}
	if orig == 0 {
		t.Fatal("original penalty is zero; workload too trivial to exercise alignment")
	}
	// The benchmark is branchy enough that alignment must recover a
	// nontrivial fraction of the penalty.
	if float64(tspPen) > 0.95*float64(orig) {
		t.Errorf("TSP removed <5%% of penalty (%d -> %d); alignment ineffective", orig, tspPen)
	}
}

// TestTSPMatchesExactOnSmallFunctions: every function small enough is
// solved exactly, so its aligned training penalty must equal the DTSP
// optimum.
func TestTSPMatchesExactOnSmallFunctions(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	a := NewTSP(1)
	l := a.Align(context.Background(), mod, prof, m)
	for fi, f := range mod.Funcs {
		n := len(f.Blocks)
		if n < 2 || n > 12 {
			continue
		}
		fp := prof.Funcs[fi]
		pred := layout.Predictions(f, fp)
		mat := BuildMatrix(f, fp, pred, m)
		_, opt := tsp.SolveExact(mat)
		pen := layout.Penalty(f, l.Funcs[fi], fp, m)
		if pen != opt {
			t.Errorf("func %s (%d blocks): aligned penalty %d != exact optimum %d", f.Name, n, pen, opt)
		}
	}
}

// TestBoundsSandwich: AP <= HK <= optimal penalty of any aligner, per
// function and in total.
func TestBoundsSandwich(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	hk := HeldKarpLowerBound(mod, prof, m, tsp.HeldKarpOptions{})
	ap := AssignmentLowerBound(mod, prof, m)
	tspPen := layout.ModulePenalty(mod, NewTSP(1).Align(context.Background(), mod, prof, m), prof, m)
	origPen := layout.ModulePenalty(mod, Original{}.Align(context.Background(), mod, prof, m), prof, m)
	if ap > tspPen {
		t.Errorf("AP bound %d exceeds TSP penalty %d", ap, tspPen)
	}
	if hk > tspPen {
		t.Errorf("HK bound %d exceeds TSP penalty %d", hk, tspPen)
	}
	if hk > origPen {
		t.Errorf("HK bound %d exceeds original penalty %d", hk, origPen)
	}
	if hk < ap {
		// Not a strict theorem per-function aggregate (HK is computed per
		// function, as is AP), but HK should dominate AP on these
		// instances overall; warn if badly inverted.
		t.Logf("note: HK bound %d below AP bound %d", hk, ap)
	}
	if hk <= 0 {
		t.Errorf("HK bound %d should be positive for a branchy workload", hk)
	}
	// The TSP aligner should land close to the lower bound, as in the
	// paper ("within 0.3% of a provable optimum" there; we allow 5%).
	if float64(tspPen) > 1.05*float64(hk)+16 {
		t.Errorf("TSP penalty %d far above HK bound %d", tspPen, hk)
	}
}

func TestGreedyHandlesZeroProfile(t *testing.T) {
	// Aligning with an empty profile (program never run) must not crash
	// and must produce valid layouts.
	mod, err := testutil.Compile(testutil.BranchySource)
	if err != nil {
		t.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	m := machine.Alpha21164()
	for _, a := range []Aligner{PettisHansen{}, &CalderGrunwald{}, NewTSP(1)} {
		l := a.Align(context.Background(), mod, prof, m)
		if err := l.Validate(mod); err != nil {
			t.Errorf("%s on zero profile: %v", a.Name(), err)
		}
		if pen := layout.ModulePenalty(mod, l, prof, m); pen != 0 {
			t.Errorf("%s: zero profile must have zero penalty, got %d", a.Name(), pen)
		}
	}
}

func TestGreedyPlacesHotPathContiguously(t *testing.T) {
	// A hot if-branch taken 99% of the time: greedy must make the hot
	// successor the fall-through.
	src := `
func main(input[], n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (input[i] == 0) { s = s + 100; } else { s = s + 1; }
	}
	return s;
}
`
	data := make([]int64, 200)
	data[7] = 1 // one rare iteration
	mod, prof, _, err := testutil.CompileAndProfile(src,
		[]interp.Input{interp.ArrayInput(data), interp.ScalarInput(200)})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := PettisHansen{}.Align(context.Background(), mod, prof, m)
	f := mod.Funcs[mod.EntryFunc]
	fp := prof.Funcs[mod.EntryFunc]
	fl := l.Funcs[mod.EntryFunc]
	succ := fl.LayoutSuccessors(f)
	for b, blk := range f.Blocks {
		if blk.Term.Kind != ir.TermCondBr {
			continue
		}
		hotIdx, hotCount := prof.HottestSuccessor(mod.EntryFunc, b)
		if hotCount < 100 {
			continue
		}
		if succ[b] != blk.Term.Succs[hotIdx] {
			pen := layout.Penalty(f, fl, fp, m)
			t.Errorf("hot successor of b%d not placed as fall-through (layout succ b%d, hot b%d); penalty %d",
				b, succ[b], blk.Term.Succs[hotIdx], pen)
		}
	}
}

func TestSolveFuncDiagnostics(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	a := NewTSP(1)
	for fi, f := range mod.Funcs {
		res := a.SolveFunc(f, prof.Funcs[fi], m, tsp.PaperSolveOptions(1), int64(fi))
		if res.Cities != len(f.Blocks) {
			t.Errorf("func %d: Cities = %d, want %d", fi, res.Cities, len(f.Blocks))
		}
		if len(res.Order) != len(f.Blocks) || res.Order[0] != 0 {
			t.Errorf("func %d: bad order %v", fi, res.Order)
		}
		if res.Runs < 1 || res.RunsAtBest < 1 || res.RunsAtBest > res.Runs {
			t.Errorf("func %d: inconsistent run stats %+v", fi, res)
		}
		if len(f.Blocks) <= 12 && !res.Exact {
			t.Errorf("func %d: %d-block function should be solved exactly", fi, len(f.Blocks))
		}
	}
}

func TestDeterministicAlignment(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	for _, mk := range []func() Aligner{
		func() Aligner { return PettisHansen{} },
		func() Aligner { return &CalderGrunwald{} },
		func() Aligner { return NewTSP(7) },
	} {
		a1, a2 := mk(), mk()
		l1 := a1.Align(context.Background(), mod, prof, m)
		l2 := a2.Align(context.Background(), mod, prof, m)
		for fi := range l1.Funcs {
			for k := range l1.Funcs[fi].Order {
				if l1.Funcs[fi].Order[k] != l2.Funcs[fi].Order[k] {
					t.Fatalf("%s: nondeterministic order in func %d", a1.Name(), fi)
				}
			}
		}
	}
}

func TestAlignerNames(t *testing.T) {
	names := map[string]bool{}
	for _, a := range []Aligner{Original{}, PettisHansen{}, &CalderGrunwald{}, NewTSP(0)} {
		n := a.Name()
		if n == "" || names[n] {
			t.Errorf("aligner name %q empty or duplicated", n)
		}
		names[n] = true
	}
}

// TestDeepPipeIncreasesAlignmentBenefit is the machine-model ablation:
// with larger mispredict penalties, the absolute cycles recovered by
// alignment grow.
func TestDeepPipeIncreasesAlignmentBenefit(t *testing.T) {
	mod, prof := compileBranchy(t)
	benefit := func(m machine.Model) layout.Cost {
		orig := layout.ModulePenalty(mod, Original{}.Align(context.Background(), mod, prof, m), prof, m)
		tspPen := layout.ModulePenalty(mod, NewTSP(1).Align(context.Background(), mod, prof, m), prof, m)
		return orig - tspPen
	}
	shallow := benefit(machine.ShallowPipe())
	deep := benefit(machine.DeepPipe())
	if deep <= shallow {
		t.Errorf("deep-pipe benefit %d should exceed shallow-pipe benefit %d", deep, shallow)
	}
}

// TestParallelAlignmentIdentical: parallel per-function solving is
// bit-identical to sequential (each function has its own seeded stream),
// and so is per-run parallelism inside each solve — alone and stacked
// on top of the per-function fan-out, where both layers contend for the
// same shared worker pool.
func TestParallelAlignmentIdentical(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	seq := NewTSP(5)
	l1 := seq.Align(context.Background(), mod, prof, m)
	for name, mk := range map[string]func() *TSP{
		"funcs": func() *TSP { a := NewTSP(5); a.Parallel = true; return a },
		"runs":  func() *TSP { a := NewTSP(5); a.Opts.Parallelism = 4; return a },
		"both": func() *TSP {
			a := NewTSP(5)
			a.Parallel = true
			a.Opts.Parallelism = 4
			return a
		},
	} {
		l2 := mk().Align(context.Background(), mod, prof, m)
		for fi := range l1.Funcs {
			for k := range l1.Funcs[fi].Order {
				if l1.Funcs[fi].Order[k] != l2.Funcs[fi].Order[k] {
					t.Fatalf("%s: parallel alignment diverged in func %d", name, fi)
				}
			}
		}
	}
}
