package align

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"branchalign/internal/bench"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// TestQuickWalkCostEqualsPenaltyOnSynthCFGs extends the reduction
// property to randomly generated CFGs, which exercise switch-heavy
// functions, zero-count edges and degenerate shapes the Mini-C
// benchmarks may not produce.
func TestQuickWalkCostEqualsPenaltyOnSynthCFGs(t *testing.T) {
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(55))
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%40) + 1
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)))
		if err != nil {
			return false
		}
		fn := mod.Funcs[0]
		fp := prof.Funcs[0]
		pred := layout.Predictions(fn, fp)
		mat := BuildMatrix(fn, fp, pred, m)
		tour := tsp.IdentityTour(blocks)
		rest := tour[1:]
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		fl := layout.Finalize(fn, fp, []int(tour), m)
		return tsp.CycleCost(mat, tour) == layout.Penalty(fn, fl, fp, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlignersValidOnSynthCFGs: every aligner yields a valid layout
// whose training penalty never exceeds the original's, on arbitrary
// synthetic instances.
func TestQuickAlignersValidOnSynthCFGs(t *testing.T) {
	m := machine.Alpha21164()
	aligners := []Aligner{PettisHansen{}, &CalderGrunwald{}, APPatch{}, NewTSP(3)}
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%30) + 1
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)+999))
		if err != nil {
			return false
		}
		orig := layout.ModulePenalty(mod, Original{}.Align(context.Background(), mod, prof, m), prof, m)
		for _, a := range aligners {
			l := a.Align(context.Background(), mod, prof, m)
			if err := l.Validate(mod); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			// Greedy chainers can in principle tie but never exceed the
			// original by more than rounding — they only place profitable
			// fall-throughs; the TSP and patching solvers optimize
			// globally. Allow equality.
			if a.Name() == "tsp" && layout.ModulePenalty(mod, l, prof, m) > orig {
				t.Logf("tsp worsened a synthetic instance")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAPPatchOnBenchmarks: the patching aligner is valid and lands
// between the original layout and the TSP aligner on the real suite —
// and measurably behind TSP in aggregate (the appendix's point).
func TestAPPatchOnBenchmarks(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	orig := layout.ModulePenalty(mod, Original{}.Align(context.Background(), mod, prof, m), prof, m)
	patchL := APPatch{}.Align(context.Background(), mod, prof, m)
	if err := patchL.Validate(mod); err != nil {
		t.Fatal(err)
	}
	patch := layout.ModulePenalty(mod, patchL, prof, m)
	tspCP := layout.ModulePenalty(mod, NewTSP(1).Align(context.Background(), mod, prof, m), prof, m)
	if patch > orig {
		t.Errorf("patching worse than original: %d > %d", patch, orig)
	}
	if tspCP > patch {
		t.Errorf("TSP (%d) should not lose to patching (%d)", tspCP, patch)
	}
	t.Logf("original %d, patching %d, tsp %d", orig, patch, tspCP)
}
