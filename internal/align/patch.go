package align

import (
	"context"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// APPatch aligns by solving each function's DTSP with the
// assignment-patching heuristic (Karp-style) instead of iterated 3-Opt.
// It exists as the ablation comparator motivated by the paper's appendix:
// patching algorithms are "designed to exploit small gaps between the AP
// bound and the optimal tour length", a property most branch-alignment
// instances lack, so APPatch should trail the TSP aligner on exactly
// those functions where the AP bound is loose.
type APPatch struct{}

// Name implements Aligner.
func (APPatch) Name() string { return "ap-patch" }

// Align implements Aligner.
func (APPatch) Align(_ context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	orders := make([][]int, len(mod.Funcs))
	for fi, f := range mod.Funcs {
		if len(f.Blocks) == 1 {
			orders[fi] = []int{0}
			continue
		}
		mat := BuildMatrixForFunc(f, prof.Funcs[fi], m)
		tour, _ := tsp.SolvePatching(mat)
		tour.RotateTo(0)
		orders[fi] = tour
	}
	return finalizeOrders(mod, prof, m, orders)
}
