package align

// The ExtTSP chain-merging aligner: the BOLT heuristic of Newell &
// Pupyrev (arXiv:1809.04676) adapted to this pipeline. Instead of
// minimizing exact control-penalty cycles (the DTSP reduction), it
// maximizes layout.ExtTSPScore — fall-throughs plus distance-decayed
// short forward/backward jumps — which models the I-cache locality the
// control-penalty objective deliberately ignores. The algorithm is
// greedy chain merging: seed chains on mutually-hottest fall-through
// edges, then repeatedly apply the merge (over concatenations and
// split-point insertions) with the best score gain until no merge
// improves the objective, and concatenate the leftover chains by
// execution density.
//
// Everything here is deterministic by construction: arcs are collected
// in block/successor order, candidate merges live in a heap with a
// total tie-break order, and no map is ever ranged over.

import (
	"container/heap"
	"context"
	"sort"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
)

// extSplitCap bounds the chain length up to which split-point
// insertions are evaluated during a merge. Chains longer than this are
// only concatenated whole — scanning every split of a 10k-block chain
// for every candidate pair would make merging quadratic without
// measurably improving the layouts of real CFGs (BOLT applies the same
// kind of cap).
const extSplitCap = 64

// ExtTSP is the chain-merging aligner over the ExtTSP objective.
type ExtTSP struct {
	// Params is the objective; the zero value selects
	// layout.DefaultExtTSPParams().
	Params layout.ExtTSPParams
	// Parallel lays out the module's functions on the shared worker
	// pool. Functions are independent and the per-function algorithm is
	// sequential, so results are bit-identical to the sequential run.
	Parallel bool
	// Obs, when non-nil, is the parent span per-function telemetry is
	// recorded under (one "align.func" span per function, tagged
	// algorithm=exttsp).
	Obs *obs.Span
}

// NewExtTSP returns an ExtTSP aligner with the default objective
// parameters.
func NewExtTSP() *ExtTSP { return &ExtTSP{} }

// Name implements Aligner.
func (*ExtTSP) Name() string { return "exttsp" }

// params resolves the configured objective parameters.
func (e *ExtTSP) params() layout.ExtTSPParams {
	if e.Params == (layout.ExtTSPParams{}) {
		return layout.DefaultExtTSPParams()
	}
	return e.Params
}

// Align implements Aligner. A cancelled ctx stops each in-flight
// per-function merge loop at its next merge boundary; the chains built
// so far are concatenated into a valid (merely weaker) layout.
func (e *ExtTSP) Align(ctx context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	orders := make([][]int, len(mod.Funcs))
	forEachFunc(mod, e.Parallel, func(fi int, f *ir.Func) {
		orders[fi] = e.AlignFunc(ctx, f, prof.Funcs[fi], m).Order
	})
	return finalizeOrders(mod, prof, m, orders)
}

// ExtTSPFuncResult carries one function's chain-merging outcome.
type ExtTSPFuncResult struct {
	Cities int
	// Order is the final block order (always a valid permutation with
	// the entry block first).
	Order []int
	// Score is the ExtTSP objective of Order (layout.ExtTSPScore).
	Score float64
	// Cost is the control penalty of Order under the training profile —
	// the cross-objective readout that lets ExtTSP layouts sit in the
	// same tables as DTSP tours.
	Cost layout.Cost
	// Merges counts accepted chain merges; Truncated marks a merge loop
	// cut short by ctx.
	Merges    int
	Truncated bool
}

// AlignFunc runs the chain-merging algorithm on a single function.
func (e *ExtTSP) AlignFunc(ctx context.Context, f *ir.Func, fp *interp.FuncProfile, m machine.Model) ExtTSPFuncResult {
	n := len(f.Blocks)
	sp := e.Obs.Child("align.func",
		obs.String("func", f.Name), obs.Int("cities", int64(n)),
		obs.String("algorithm", "exttsp"))
	out := ExtTSPFuncResult{Cities: n}
	if n == 1 {
		out.Order = []int{0}
		sp.End(obs.Int("cost", 0), obs.Float("score", 0))
		return out
	}
	s := newExtSolver(f, fp, e.params())
	out.Merges, out.Truncated = s.run(ctx)
	out.Order = s.finalOrder()
	out.Score = layout.ExtTSPScore(f, fp, out.Order, e.params())
	fl := layout.Finalize(f, fp, out.Order, m)
	out.Cost = layout.Penalty(f, fl, fp, m)
	sp.End(obs.Int("cost", int64(out.Cost)), obs.Float("score", out.Score),
		obs.Int("merges", int64(out.Merges)), obs.Bool("truncated", out.Truncated))
	return out
}

// extArc is one merged CFG arc (duplicate successors summed,
// self-loops dropped — a self-loop's score is the same in every
// layout, so it cannot influence a merge decision).
type extArc struct {
	to int
	w  int64
}

// extChain is one chain of blocks being grown by merging.
type extChain struct {
	// id is the smallest block id the chain has ever absorbed — stable,
	// unique among live chains, and the deterministic tie-breaker.
	id     int
	blocks []int
	bytes  int
	heat   int64 // Σ block execution counts, for the density ordering
	ver    int32 // bumped on every merge; stale heap entries self-identify
	dead   bool
}

// extSolver is the per-function chain-merging state.
type extSolver struct {
	p     layout.ExtTSPParams
	sizes []int // block byte sizes (layout.BlockBytes)

	out    [][]extArc // merged out-arcs per block, sorted by target
	inSrcs [][]int    // unique arc sources per block, sorted

	chains  []*extChain
	byID    []*extChain // live chain by id (nil once dead)
	chainOf []*extChain // owning chain per block
	pos     []int       // byte offset of each block within its chain
	idx     []int       // index of each block within its chain's blocks

	cands extCandHeap

	// Scratch for gain evaluation, reused across pairs.
	cross   []crossArc
	intraS  []crossArc
	intraL  []crossArc
	nbrs    []int
	pairIDs []int
}

// crossArc is a gain-relevant arc with both endpoints resolved.
type crossArc struct {
	from, to int
	w        int64
}

// Merge arrangement kinds, enumerated in evaluation order. The split
// kinds keep the split chain's first block first, so any arrangement is
// entry-safe as long as the entry chain leads it.
const (
	extConcatAB = uint8(iota) // A then B
	extConcatBA               // B then A
	extSplitA                 // A[:i], B, A[i:]
	extSplitB                 // B[:j], A, B[j:]
)

// extCand is one candidate merge: the best arrangement for a chain
// pair at the versions it was evaluated against.
type extCand struct {
	gain   float64
	a, b   *extChain // a.id < b.id
	va, vb int32
	kind   uint8
	idx    int
}

// extCandHeap is a deterministic max-heap of merge candidates: best
// gain first, ties broken by chain ids, then arrangement. The order is
// total, so the pop sequence is a pure function of the push sequence.
type extCandHeap []extCand

func (h extCandHeap) Len() int { return len(h) }
func (h extCandHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].a.id != h[j].a.id {
		return h[i].a.id < h[j].a.id
	}
	if h[i].b.id != h[j].b.id {
		return h[i].b.id < h[j].b.id
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].idx < h[j].idx
}
func (h extCandHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *extCandHeap) Push(x any)   { *h = append(*h, x.(extCand)) }
func (h *extCandHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h extCandHeap) valid(c extCand) bool {
	return !c.a.dead && !c.b.dead && c.a.ver == c.va && c.b.ver == c.vb
}

// newExtSolver builds the arc structure and seed chains for one
// function.
func newExtSolver(f *ir.Func, fp *interp.FuncProfile, p layout.ExtTSPParams) *extSolver {
	n := len(f.Blocks)
	s := &extSolver{
		p:       p,
		sizes:   layout.BlockBytes(f),
		out:     make([][]extArc, n),
		inSrcs:  make([][]int, n),
		chainOf: make([]*extChain, n),
		byID:    make([]*extChain, n),
		pos:     make([]int, n),
		idx:     make([]int, n),
	}
	// Merge each block's successors: sort by target, sum duplicates,
	// drop self-loops.
	var scratch []extArc
	for b, blk := range f.Blocks {
		scratch = scratch[:0]
		for si, t := range blk.Term.Succs {
			if t == b {
				continue
			}
			scratch = append(scratch, extArc{to: t, w: fp.EdgeCounts[b][si]})
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].to < scratch[j].to })
		arcs := make([]extArc, 0, len(scratch))
		for _, a := range scratch {
			if len(arcs) > 0 && arcs[len(arcs)-1].to == a.to {
				arcs[len(arcs)-1].w += a.w
				continue
			}
			arcs = append(arcs, a)
		}
		s.out[b] = arcs
		for _, a := range arcs {
			s.inSrcs[a.to] = append(s.inSrcs[a.to], b)
		}
	}
	// inSrcs are appended in source order and sources are visited in
	// block order, so each list is already sorted and unique.
	s.seedChains(f, fp)
	return s
}

// seedChains links mutually-hottest fall-through edges into initial
// chains (the "hot fall-through seeding" of the BOLT heuristic): an arc
// u→v seeds u and v adjacent when it is both u's hottest out-arc and
// v's hottest in-arc. Everything the seeding leaves apart, the merge
// loop can still join — seeding only fast-paths the merges whose gain
// is beyond doubt.
func (s *extSolver) seedChains(f *ir.Func, fp *interp.FuncProfile) {
	n := len(f.Blocks)
	maxOut := make([]int64, n)
	maxIn := make([]int64, n)
	for b := range s.out {
		for _, a := range s.out[b] {
			if a.w > maxOut[b] {
				maxOut[b] = a.w
			}
			if a.w > maxIn[a.to] {
				maxIn[a.to] = a.w
			}
		}
	}
	var hot []crossArc
	for b := range s.out {
		for _, a := range s.out[b] {
			// Never seed into the entry: block 0 must stay first.
			if a.w > 0 && a.to != 0 && a.w == maxOut[b] && a.w == maxIn[a.to] {
				hot = append(hot, crossArc{from: b, to: a.to, w: a.w})
			}
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].w != hot[j].w {
			return hot[i].w > hot[j].w
		}
		if hot[i].from != hot[j].from {
			return hot[i].from < hot[j].from
		}
		return hot[i].to < hot[j].to
	})
	next := make([]int, n)
	prev := make([]int, n)
	end := make([]int, n)
	for i := range next {
		next[i], prev[i], end[i] = -1, -1, i
	}
	for _, e := range hot {
		if next[e.from] != -1 || prev[e.to] != -1 || end[e.from] == e.to {
			continue
		}
		next[e.from] = e.to
		prev[e.to] = e.from
		head, tail := end[e.from], end[e.to]
		end[head], end[tail] = tail, head
	}
	for h := 0; h < n; h++ {
		if prev[h] != -1 {
			continue
		}
		c := &extChain{id: h}
		for b := h; b != -1; b = next[b] {
			if b < c.id {
				c.id = b
			}
			s.chainOf[b] = c
			s.pos[b] = c.bytes
			s.idx[b] = len(c.blocks)
			c.blocks = append(c.blocks, b)
			c.bytes += s.sizes[b]
			c.heat += fp.BlockCounts[b]
		}
		s.chains = append(s.chains, c)
		s.byID[c.id] = c
	}
}

// run executes the merge loop: evaluate every arc-connected chain pair,
// keep the candidates in the heap, and apply the best positive-gain
// merge until none remains (or ctx cancels). Returns the merge count
// and whether the loop was truncated.
func (s *extSolver) run(ctx context.Context) (merges int, truncated bool) {
	// Initial candidates: every pair of distinct chains connected by at
	// least one arc, in id order.
	s.pairIDs = s.pairIDs[:0]
	for b := range s.out {
		ca := s.chainOf[b]
		for _, a := range s.out[b] {
			cb := s.chainOf[a.to]
			if ca == cb {
				continue
			}
			lo, hi := ca.id, cb.id
			if lo > hi {
				lo, hi = hi, lo
			}
			s.pairIDs = append(s.pairIDs, lo*len(s.out)+hi)
		}
	}
	sort.Ints(s.pairIDs)
	last := -1
	for _, key := range s.pairIDs {
		if key == last {
			continue
		}
		last = key
		s.pushPair(s.byID[key/len(s.out)], s.byID[key%len(s.out)])
	}

	for len(s.cands) > 0 {
		if merges&63 == 0 && ctx != nil && ctx.Err() != nil {
			return merges, true
		}
		c := heap.Pop(&s.cands).(extCand)
		if !s.cands.valid(c) {
			continue
		}
		s.merge(c)
		merges++
	}
	return merges, false
}

// pushPair evaluates the best merge of chains a and b and, when its
// gain is positive, pushes it onto the candidate heap.
func (s *extSolver) pushPair(a, b *extChain) {
	if a.id > b.id {
		a, b = b, a
	}
	gain, kind, idx, ok := s.bestArrangement(a, b)
	if !ok || gain <= 0 {
		return
	}
	heap.Push(&s.cands, extCand{gain: gain, a: a, b: b, va: a.ver, vb: b.ver, kind: kind, idx: idx})
}

// collectPair gathers the arcs a merge of (a, b) can re-score: the
// cross arcs between the chains (both directions), the arcs internal to
// each chain short enough to be split. Only the smaller chain's blocks
// are scanned for the cross set — arcs from the larger chain are found
// through the smaller chain's in-arc lists — so evaluating a merge
// against a huge chain never walks the huge chain.
func (s *extSolver) collectPair(a, b *extChain) {
	small, large := a, b
	if len(large.blocks) < len(small.blocks) {
		small, large = large, small
	}
	s.cross = s.cross[:0]
	s.intraS = s.intraS[:0]
	s.intraL = s.intraL[:0]
	for _, u := range small.blocks {
		for _, arc := range s.out[u] {
			switch s.chainOf[arc.to] {
			case small:
				if arc.w > 0 {
					s.intraS = append(s.intraS, crossArc{from: u, to: arc.to, w: arc.w})
				}
			case large:
				if arc.w > 0 {
					s.cross = append(s.cross, crossArc{from: u, to: arc.to, w: arc.w})
				}
			}
		}
		for _, src := range s.inSrcs[u] {
			if s.chainOf[src] != large {
				continue
			}
			if w := s.arcWeight(src, u); w > 0 {
				s.cross = append(s.cross, crossArc{from: src, to: u, w: w})
			}
		}
	}
	if len(large.blocks) <= extSplitCap {
		for _, u := range large.blocks {
			for _, arc := range s.out[u] {
				if s.chainOf[arc.to] == large && arc.w > 0 {
					s.intraL = append(s.intraL, crossArc{from: u, to: arc.to, w: arc.w})
				}
			}
		}
	}
	// Re-home the intra sets onto (a, b) naming: intraS/intraL are
	// small/large; callers want intraA/intraB.
	if small != a {
		s.intraS, s.intraL = s.intraL, s.intraS
	}
}

// arcWeight looks up the merged weight of arc from→to (0 when absent).
func (s *extSolver) arcWeight(from, to int) int64 {
	arcs := s.out[from]
	lo, hi := 0, len(arcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if arcs[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(arcs) && arcs[lo].to == to {
		return arcs[lo].w
	}
	return 0
}

// bestArrangement evaluates every allowed arrangement of merging a and
// b and returns the best gain. Arrangements are scored as deltas
// against the two chains kept apart: intra-chain arcs that keep their
// relative offsets contribute nothing, so only cross arcs (previously
// scoring zero — different chains are "infinitely far" apart until
// merged) and split-crossing intra arcs are evaluated.
func (s *extSolver) bestArrangement(a, b *extChain) (gain float64, kind uint8, idx int, ok bool) {
	s.collectPair(a, b)
	if len(s.cross) == 0 {
		return 0, 0, 0, false
	}
	// After collectPair, intraS holds a's internal arcs and intraL b's
	// (only populated when the owner is short enough to split).
	intraA, intraB := s.intraS, s.intraL
	entryA := a.blocks[0] == 0
	entryB := b.blocks[0] == 0

	consider := func(g float64, k uint8, i int) {
		if !ok || g > gain {
			gain, kind, idx, ok = g, k, i, true
		}
	}
	if !entryB {
		consider(s.concatGain(a, b, 0, a.bytes), extConcatAB, 0)
	}
	if !entryA {
		consider(s.concatGain(a, b, b.bytes, 0), extConcatBA, 0)
	}
	if !entryB && len(a.blocks) >= 2 && len(a.blocks) <= extSplitCap {
		for i := 1; i < len(a.blocks); i++ {
			consider(s.splitGain(a, b, intraA, i), extSplitA, i)
		}
	}
	if !entryA && len(b.blocks) >= 2 && len(b.blocks) <= extSplitCap {
		for j := 1; j < len(b.blocks); j++ {
			consider(s.splitGain(b, a, intraB, j), extSplitB, j)
		}
	}
	return gain, kind, idx, ok
}

// concatGain scores laying the chains whole at the given byte offsets
// (offA for a's blocks, offB for b's): only the cross arcs change.
func (s *extSolver) concatGain(a, b *extChain, offA, offB int) float64 {
	var g float64
	for _, arc := range s.cross {
		srcOff, dstOff := offA, offB
		if s.chainOf[arc.from] == b {
			srcOff, dstOff = offB, offA
		}
		srcEnd := srcOff + s.pos[arc.from] + s.sizes[arc.from]
		g += layout.ArcScore(arc.w, srcEnd, dstOff+s.pos[arc.to], s.p)
	}
	return g
}

// splitGain scores the arrangement x[:i], y, x[i:]: x's blocks past the
// split shift by y's byte size, y lands at the split offset. Cross arcs
// gain their new score; x's internal arcs that span the split move from
// their old distance to a stretched one.
func (s *extSolver) splitGain(x, y *extChain, intraX []crossArc, i int) float64 {
	splitAt := s.pos[x.blocks[i]]
	xOff := func(b int) int {
		if s.idx[b] < i {
			return s.pos[b]
		}
		return s.pos[b] + y.bytes
	}
	var g float64
	for _, arc := range s.cross {
		var srcEnd, dst int
		if s.chainOf[arc.from] == x {
			srcEnd = xOff(arc.from) + s.sizes[arc.from]
			dst = splitAt + s.pos[arc.to]
		} else {
			srcEnd = splitAt + s.pos[arc.from] + s.sizes[arc.from]
			dst = xOff(arc.to)
		}
		g += layout.ArcScore(arc.w, srcEnd, dst, s.p)
	}
	for _, arc := range intraX {
		if (s.idx[arc.from] < i) == (s.idx[arc.to] < i) {
			continue // both sides of the split: relative offset unchanged
		}
		oldEnd := s.pos[arc.from] + s.sizes[arc.from]
		g += layout.ArcScore(arc.w, xOff(arc.from)+s.sizes[arc.from], xOff(arc.to), s.p) -
			layout.ArcScore(arc.w, oldEnd, s.pos[arc.to], s.p)
	}
	return g
}

// merge applies a validated candidate: rebuild the surviving chain's
// block sequence per the arrangement, retire the other chain, and
// re-evaluate every neighbor pair of the merged chain.
func (s *extSolver) merge(c extCand) {
	a, b := c.a, c.b
	merged := make([]int, 0, len(a.blocks)+len(b.blocks))
	switch c.kind {
	case extConcatAB:
		merged = append(append(merged, a.blocks...), b.blocks...)
	case extConcatBA:
		merged = append(append(merged, b.blocks...), a.blocks...)
	case extSplitA:
		merged = append(merged, a.blocks[:c.idx]...)
		merged = append(merged, b.blocks...)
		merged = append(merged, a.blocks[c.idx:]...)
	case extSplitB:
		merged = append(merged, b.blocks[:c.idx]...)
		merged = append(merged, a.blocks...)
		merged = append(merged, b.blocks[c.idx:]...)
	}
	// a (the lower id) survives; b dies.
	s.byID[b.id] = nil
	b.dead = true
	a.blocks = merged
	a.bytes += b.bytes
	a.heat += b.heat
	a.ver++
	off := 0
	for i, blk := range merged {
		s.chainOf[blk] = a
		s.pos[blk] = off
		s.idx[blk] = i
		off += s.sizes[blk]
	}

	// Neighbors of the merged chain, by id, deduplicated.
	s.nbrs = s.nbrs[:0]
	for _, u := range a.blocks {
		for _, arc := range s.out[u] {
			if cn := s.chainOf[arc.to]; cn != a {
				s.nbrs = append(s.nbrs, cn.id)
			}
		}
		for _, src := range s.inSrcs[u] {
			if cn := s.chainOf[src]; cn != a {
				s.nbrs = append(s.nbrs, cn.id)
			}
		}
	}
	sort.Ints(s.nbrs)
	last := -1
	for _, id := range s.nbrs {
		if id == last {
			continue
		}
		last = id
		s.pushPair(a, s.byID[id])
	}
}

// finalOrder concatenates the surviving chains: the entry chain first,
// the rest by descending execution density (heat per byte, the BOLT
// ordering that packs the hottest code tightest), ties to the lower
// chain id.
func (s *extSolver) finalOrder() []int {
	live := make([]*extChain, 0, len(s.chains))
	for _, c := range s.chains {
		if !c.dead {
			live = append(live, c)
		}
	}
	entry := s.chainOf[0]
	sort.Slice(live, func(i, j int) bool {
		ci, cj := live[i], live[j]
		if ci == entry || cj == entry {
			return ci == entry
		}
		// heat_i/bytes_i > heat_j/bytes_j, cross-multiplied (byte sizes
		// are positive).
		di := ci.heat * int64(cj.bytes)
		dj := cj.heat * int64(ci.bytes)
		if di != dj {
			return di > dj
		}
		return ci.id < cj.id
	})
	order := make([]int, 0, len(s.chainOf))
	for _, c := range live {
		order = append(order, c.blocks...)
	}
	return order
}
