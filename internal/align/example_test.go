package align_test

import (
	"context"
	"fmt"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

// Example runs the complete paper pipeline on a tiny program: compile,
// profile, align with the TSP algorithm, and compare control penalties.
func Example() {
	src := `
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (i % 10 == 0) { s = s + 100; } else { s = s + 1; }
	}
	return s;
}
`
	mod, prof, _, err := testutil.CompileAndProfile(src,
		[]interp.Input{interp.ScalarInput(1000)})
	if err != nil {
		fmt.Println(err)
		return
	}
	m := machine.Alpha21164()
	orig := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, prof, m), prof, m)
	tsp := layout.ModulePenalty(mod, align.NewTSP(1).Align(context.Background(), mod, prof, m), prof, m)
	fmt.Printf("original %d cycles, aligned %d cycles\n", orig, tsp)
	// Output: original 7405 cycles, aligned 1607 cycles
}
