package align_test

// Direct coverage of the branch-patching paths — conditional-branch
// inversion, fixup-jump arrangement for fully displaced conditionals, and
// switch fall-through (default motion) — with round-trip equivalence
// pinned by the independent emitted-form model in internal/check.

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

// condModule is a conditional diamond:
//
//	b0: condbr r0 -> b1 (then), b2 (else)
//	b1: br b3
//	b2: br b3
//	b3: ret 0
func condModule() *ir.Module {
	f := &ir.Func{
		Name:    "diamond",
		Params:  []ir.ParamKind{ir.ParamScalar},
		NumRegs: 1,
		Blocks: []*ir.Block{
			{ID: 0, Term: ir.Terminator{Kind: ir.TermCondBr, Cond: ir.RegVal(0), Succs: []int{1, 2}}},
			{ID: 1, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
			{ID: 2, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{3}}},
			{ID: 3, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.ConstVal(0)}},
		},
	}
	return &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
}

// switchModule dispatches on r0 (cases 0 and 1, then default):
//
//	b0: switch r0 -> b1 (case 0), b2 (case 1), b3 (default)
//	b1, b2, b3: br b4
//	b4: ret 0
func switchModule() *ir.Module {
	f := &ir.Func{
		Name:    "dispatch",
		Params:  []ir.ParamKind{ir.ParamScalar},
		NumRegs: 1,
		Blocks: []*ir.Block{
			{ID: 0, Term: ir.Terminator{Kind: ir.TermSwitch, Cond: ir.RegVal(0),
				Succs: []int{1, 2, 3}, Cases: []int64{0, 1}}},
			{ID: 1, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{4}}},
			{ID: 2, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{4}}},
			{ID: 3, Term: ir.Terminator{Kind: ir.TermBr, Succs: []int{4}}},
			{ID: 4, Term: ir.Terminator{Kind: ir.TermRet, Val: ir.ConstVal(0)}},
		},
	}
	return &ir.Module{Funcs: []*ir.Func{f}, EntryFunc: 0}
}

// runProfile profiles mod by running it once per scalar input.
func runProfile(t *testing.T, mod *ir.Module, inputs ...int64) *interp.Profile {
	t.Helper()
	prof := interp.NewProfile(mod)
	for _, x := range inputs {
		if _, err := interp.Run(mod, []interp.Input{interp.ScalarInput(x)}, interp.Options{Profile: prof}); err != nil {
			t.Fatal(err)
		}
	}
	return prof
}

// finalize builds a FuncLayout for the entry function from a block order.
func finalize(mod *ir.Module, prof *interp.Profile, order []int, m machine.Model) *layout.FuncLayout {
	return layout.Finalize(mod.Funcs[0], prof.Funcs[0], order, m)
}

// TestCondBrInversion: when the then-successor falls through, the emitted
// branch must test the negated condition and target the else-successor;
// when the else-successor falls through, the branch keeps its sense. Both
// arrangements must round-trip through the equivalence checker.
func TestCondBrInversion(t *testing.T) {
	mod := condModule()
	f := mod.Funcs[0]
	prof := runProfile(t, mod, 1, 1, 0)
	m := machine.Alpha21164()

	cases := []struct {
		name       string
		order      []int
		wantTarget int
		wantInvert bool
	}{
		{"then-falls-through", []int{0, 1, 2, 3}, 2, true},
		{"else-falls-through", []int{0, 2, 1, 3}, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := finalize(mod, prof, tc.order, m)
			em := check.Emit(f, fl)
			eb := em.Blocks[0]
			if eb.CondTarget != tc.wantTarget || eb.CondInverted != tc.wantInvert {
				t.Errorf("emitted condbr: target b%d inverted=%v, want b%d inverted=%v",
					eb.CondTarget, eb.CondInverted, tc.wantTarget, tc.wantInvert)
			}
			if eb.Fixup >= 0 {
				t.Errorf("adjacent conditional emitted a fixup jump to b%d", eb.Fixup)
			}
			if r := check.VerifyEmitted(f, fl, em); !r.OK() {
				t.Errorf("round-trip failed:\n%s", r.String())
			}
		})
	}
}

// TestDisplacedCondBrFixup: with both successors displaced, the emitted
// branch needs a fixup jump; Finalize must pick the cheaper of the two
// arrangements (branch to the predicted successor vs. invert and branch
// to the other), and *both* arrangements must remain semantically
// equivalent to the CFG — they differ only in cost.
func TestDisplacedCondBrFixup(t *testing.T) {
	mod := condModule()
	f := mod.Funcs[0]
	// 10 taken (then, b1) vs 3 not-taken (else, b2): keep = 10*1 + 3*(5+2)
	// = 31 beats invert = 10*2 + 3*5 = 35 on the Alpha model.
	prof := runProfile(t, mod, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0)
	m := machine.Alpha21164()
	fl := finalize(mod, prof, []int{0, 3, 1, 2}, m)

	if fl.Pred[0] != 0 {
		t.Fatalf("Pred[0] = %d, want 0 (then-successor is hotter)", fl.Pred[0])
	}
	if !fl.FixupTaken[0] {
		t.Error("Finalize chose the inverted arrangement despite keep being cheaper")
	}
	em := check.Emit(f, fl)
	eb := em.Blocks[0]
	if eb.CondTarget != 1 || eb.Fixup != 2 || eb.CondInverted {
		t.Errorf("keep arrangement emitted (target b%d, fixup b%d, inverted %v), want (b1, b2, false)",
			eb.CondTarget, eb.Fixup, eb.CondInverted)
	}
	if r := check.VerifyEmitted(f, fl, em); !r.OK() {
		t.Errorf("keep arrangement round-trip failed:\n%s", r.String())
	}
	keepCost := layout.Penalty(f, fl, prof.Funcs[0], m)

	// Flip the arrangement: still equivalent, strictly more expensive.
	fl.FixupTaken[0] = false
	em = check.Emit(f, fl)
	eb = em.Blocks[0]
	if eb.CondTarget != 2 || eb.Fixup != 1 || !eb.CondInverted {
		t.Errorf("inverted arrangement emitted (target b%d, fixup b%d, inverted %v), want (b2, b1, true)",
			eb.CondTarget, eb.Fixup, eb.CondInverted)
	}
	if r := check.VerifyEmitted(f, fl, em); !r.OK() {
		t.Errorf("inverted arrangement round-trip failed:\n%s", r.String())
	}
	if flipCost := layout.Penalty(f, fl, prof.Funcs[0], m); flipCost <= keepCost {
		t.Errorf("flipped arrangement cost %d not above finalized cost %d", flipCost, keepCost)
	}
}

// TestSwitchDefaultMotion: moving the default target up to fall through
// directly after the switch (and, symmetrically, a case target) must
// leave the emitted dispatch table identical to the CFG — the table is
// never patched, only the surrounding layout moves — and the layout that
// lets the hot successor fall through must cost less.
func TestSwitchDefaultMotion(t *testing.T) {
	mod := switchModule()
	f := mod.Funcs[0]
	// Default (inputs outside {0,1}) dominates: 8 default, 2 case-0, 1 case-1.
	prof := runProfile(t, mod, 7, 9, 5, 4, 3, 8, 6, 2, 0, 0, 1)
	m := machine.Alpha21164()

	if p := layout.Predictions(f, prof.Funcs[0])[0]; p != 2 {
		t.Fatalf("Pred[0] = %d, want 2 (default is hottest)", p)
	}
	defaultFirst := finalize(mod, prof, []int{0, 3, 1, 2, 4}, m) // default falls through
	caseFirst := finalize(mod, prof, []int{0, 1, 2, 3, 4}, m)    // cold case 0 falls through
	for name, fl := range map[string]*layout.FuncLayout{"default-first": defaultFirst, "case-first": caseFirst} {
		em := check.Emit(f, fl)
		tbl := em.Blocks[0].Table
		if len(tbl) != 3 || tbl[0] != 1 || tbl[1] != 2 || tbl[2] != 3 {
			t.Errorf("%s: emitted switch table %v, want [1 2 3]", name, tbl)
		}
		if r := check.VerifyEmitted(f, fl, em); !r.OK() {
			t.Errorf("%s: round-trip failed:\n%s", name, r.String())
		}
	}
	// Isolating the switch block's own transfer cost (the moved default
	// also displaces its continuation jump, so whole-function penalties
	// would conflate the two effects): letting the hot predicted default
	// fall through saves MultiCorrectTaken on each of its executions.
	fp := prof.Funcs[0]
	hot := layout.SuccessorCost(f, fp, defaultFirst.Pred, 0, 3, m)
	cold := layout.SuccessorCost(f, fp, caseFirst.Pred, 0, 1, m)
	if hot >= cold {
		t.Errorf("hot-default fall-through cost %d not below cold-case fall-through cost %d", hot, cold)
	}
}

// TestAlignerLayoutsRoundTrip: every aligner's layout of a workload that
// exercises every terminator kind must round-trip through the emitted-form
// equivalence checker, and the optimizing aligners must actually exercise
// the patching machinery (at least one inversion and one fixup among
// them) — otherwise this test would pass vacuously.
func TestAlignerLayoutsRoundTrip(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(400, 7))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	inversions, fixups := 0, 0
	for _, a := range []align.Aligner{align.Original{}, align.PettisHansen{}, &align.CalderGrunwald{}, align.APPatch{}, align.NewTSP(1)} {
		l := a.Align(context.Background(), mod, prof, m)
		for fi, f := range mod.Funcs {
			fl := l.Funcs[fi]
			em := check.Emit(f, fl)
			if r := check.VerifyEmitted(f, fl, em); !r.OK() {
				t.Errorf("%s/%s: round-trip failed:\n%s", a.Name(), f.Name, r.String())
			}
			for _, eb := range em.Blocks {
				if eb.CondInverted {
					inversions++
				}
				if eb.Fixup >= 0 {
					fixups++
				}
			}
		}
	}
	if inversions == 0 {
		t.Error("no aligner layout inverted any conditional branch — inversion path not exercised")
	}
	if fixups == 0 {
		t.Log("no fixup jumps among aligner layouts (acceptable: fixups are rare on this workload)")
	}
}
