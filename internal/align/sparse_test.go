package align

import (
	"reflect"
	"testing"
	"testing/quick"

	"branchalign/internal/bench"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

// TestQuickSparseMatrixMatchesDenseOnSynthCFGs: the sparse DTSP instance
// agrees entry-for-entry with the dense reference reduction on random
// CFGs (switch-heavy functions, zero-count edges, degenerate shapes).
func TestQuickSparseMatrixMatchesDenseOnSynthCFGs(t *testing.T) {
	m := machine.Alpha21164()
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%40) + 1
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)))
		if err != nil {
			return false
		}
		fn := mod.Funcs[0]
		fp := prof.Funcs[0]
		pred := layout.Predictions(fn, fp)
		dense := BuildMatrix(fn, fp, pred, m)
		sp := BuildSparseMatrix(fn, fp, pred, m)
		if sp.Len() != dense.Len() {
			return false
		}
		for b := 0; b < blocks; b++ {
			for x := 0; x < blocks; x++ {
				if sp.At(b, x) != dense.At(b, x) {
					t.Logf("blocks=%d seed=%d: At(%d,%d) sparse %d dense %d",
						blocks, seedRaw, b, x, sp.At(b, x), dense.At(b, x))
					return false
				}
			}
		}
		// The instance is O(V+E): no row stores more exceptions than the
		// block has successors.
		for b := 0; b < blocks; b++ {
			cols, _ := sp.Row(b)
			if len(cols) > len(fn.Blocks[b].Term.Succs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolverIdenticalOnSparseAndDenseInstances: the full multi-start
// solver, the Held-Karp bound and the assignment bound return identical
// results on the sparse and dense representations of the same function.
func TestQuickSolverIdenticalOnSparseAndDenseInstances(t *testing.T) {
	m := machine.Alpha21164()
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%34) + 2 // crosses the solver's dense cutover
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)+501))
		if err != nil {
			return false
		}
		fn := mod.Funcs[0]
		fp := prof.Funcs[0]
		pred := layout.Predictions(fn, fp)
		dense := BuildMatrix(fn, fp, pred, m)
		sp := BuildSparseMatrix(fn, fp, pred, m)

		opts := tsp.PaperSolveOptions(int64(seedRaw))
		rs := tsp.Solve(sp, opts)
		rd := tsp.Solve(dense, opts)
		if !reflect.DeepEqual(rs, rd) {
			t.Logf("blocks=%d seed=%d: sparse solve %v (%d) != dense %v (%d)",
				blocks, seedRaw, rs.Tour, rs.Cost, rd.Tour, rd.Cost)
			return false
		}
		hkOpts := tsp.HeldKarpOptions{Iterations: 50}
		if tsp.HeldKarpDirected(sp, hkOpts) != tsp.HeldKarpDirected(dense, hkOpts) {
			return false
		}
		return tsp.AssignmentBound(sp) == tsp.AssignmentBound(dense)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundChainOnSparsePath: with all bound consumers on the sparse
// path, AP <= HK-with-exact-floor and HK <= solver tour still hold per
// function (the vet invariant chain).
func TestQuickBoundChainOnSparsePath(t *testing.T) {
	m := machine.Alpha21164()
	aligner := NewTSP(7)
	f := func(blocksRaw, seedRaw uint16) bool {
		blocks := int(blocksRaw%30) + 3
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(seedRaw)+77))
		if err != nil {
			return false
		}
		fn := mod.Funcs[0]
		fp := prof.Funcs[0]
		res := aligner.SolveFunc(fn, fp, m, tsp.PaperSolveOptions(7), 0)
		sp := BuildSparseMatrixForFunc(fn, fp, m)
		tour := tsp.CycleCost(sp, tsp.Tour(res.Order))
		hk := FuncHeldKarpBound(fn, fp, m, tsp.HeldKarpOptions{Iterations: 200})
		ap := tsp.AssignmentBound(sp)
		if hk > tour {
			t.Logf("blocks=%d seed=%d: HK %d > tour %d", blocks, seedRaw, hk, tour)
			return false
		}
		if ap > tour {
			t.Logf("blocks=%d seed=%d: AP %d > tour %d", blocks, seedRaw, ap, tour)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBoundsMatchSequential: the parallel per-function bound
// loops are bit-identical to a sequential evaluation.
func TestParallelBoundsMatchSequential(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	hkOpts := tsp.HeldKarpOptions{Iterations: 100}
	var seqHK, seqAP layout.Cost
	for fi, f := range mod.Funcs {
		seqHK += FuncHeldKarpBound(f, prof.Funcs[fi], m, hkOpts)
		if len(f.Blocks) > 1 {
			seqAP += tsp.AssignmentBound(BuildSparseMatrixForFunc(f, prof.Funcs[fi], m))
		}
	}
	if got := HeldKarpLowerBound(mod, prof, m, hkOpts); got != seqHK {
		t.Errorf("parallel HK bound %d != sequential %d", got, seqHK)
	}
	if got := AssignmentLowerBound(mod, prof, m); got != seqAP {
		t.Errorf("parallel AP bound %d != sequential %d", got, seqAP)
	}
}
