package align

import (
	"context"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// CalderGrunwald is the improved greedy aligner of Calder and Grunwald
// ("Reducing Branch Costs via Branch Alignment", ASPLOS 1994), as
// characterized in the paper's related work: it (1) exposes the machine
// model when prioritizing edges — each candidate edge is weighted by the
// penalty cycles saved by making it a fall-through rather than by raw
// frequency — and (2) improves the final chain concatenation by
// exhaustively searching chain orders when the chain count is small
// (their heuristic exhaustively reorders the blocks touched by the
// hottest edges; bounded exhaustive chain ordering is the analogous
// search at chain granularity).
type CalderGrunwald struct {
	// MaxExhaustiveChains bounds the factorial search over non-entry
	// chain orders; above it the greedy attraction order is kept.
	// Zero selects the default of 6 (720 permutations).
	MaxExhaustiveChains int
}

// Name implements Aligner.
func (*CalderGrunwald) Name() string { return "calder-grunwald" }

// Align implements Aligner.
func (cg *CalderGrunwald) Align(_ context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	maxChains := cg.MaxExhaustiveChains
	if maxChains <= 0 {
		maxChains = 6
	}
	orders := make([][]int, len(mod.Funcs))
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		w := savingsWeights(f, fp, m)
		order := chainAndOrder(f, fp, w)
		orders[fi] = cg.improveChainOrder(f, fp, m, order, maxChains)
	}
	return finalizeOrders(mod, prof, m, orders)
}

// savingsWeights weights each candidate edge (b, s) by the penalty saved
// when s becomes b's layout successor instead of being displaced:
// d(b, elsewhere) - d(b, s) under the machine model.
func savingsWeights(f *ir.Func, fp *interp.FuncProfile, m machine.Model) []cfgEdge {
	pred := layout.Predictions(f, fp)
	merged := map[[2]int]int64{}
	for b, blk := range f.Blocks {
		for _, s := range blk.Term.Succs {
			if s == b || s == 0 {
				continue
			}
			key := [2]int{b, s}
			if _, done := merged[key]; done {
				continue
			}
			displaced := layout.SuccessorCost(f, fp, pred, b, -1, m)
			adjacent := layout.SuccessorCost(f, fp, pred, b, s, m)
			merged[key] = displaced - adjacent
		}
	}
	edges := make([]cfgEdge, 0, len(merged))
	//balignlint:ignore order laundered: chainAndOrder sorts edges with a total tie-break
	for k, w := range merged {
		if w <= 0 {
			continue
		}
		edges = append(edges, cfgEdge{from: k[0], to: k[1], weight: w})
	}
	return edges
}

// improveChainOrder re-derives the chains from a concatenated order (a
// chain is a maximal run of blocks kept adjacent because each link is a
// CFG edge chosen by the greedy pass is not recoverable here, so chains
// are taken as maximal runs where consecutive blocks are CFG-successor
// pairs) and exhaustively permutes the non-entry chains when few enough,
// keeping the order with the lowest training penalty.
func (cg *CalderGrunwald) improveChainOrder(f *ir.Func, fp *interp.FuncProfile, m machine.Model, order []int, maxChains int) []int {
	isCFGSucc := func(a, b int) bool {
		for _, s := range f.Blocks[a].Term.Succs {
			if s == b {
				return true
			}
		}
		return false
	}
	var chains [][]int
	cur := []int{order[0]}
	for i := 1; i < len(order); i++ {
		if isCFGSucc(order[i-1], order[i]) {
			cur = append(cur, order[i])
			continue
		}
		chains = append(chains, cur)
		cur = []int{order[i]}
	}
	chains = append(chains, cur)
	if len(chains)-1 > maxChains || len(chains) <= 2 {
		return order
	}
	rest := chains[1:]
	best := append([]int(nil), order...)
	bestCost := cg.orderPenalty(f, fp, m, order)
	perm := make([]int, len(rest))
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	cand := make([]int, 0, len(order))
	rec = func(k int) {
		if k == len(perm) {
			cand = cand[:0]
			cand = append(cand, chains[0]...)
			for _, pi := range perm {
				cand = append(cand, rest[pi]...)
			}
			if c := cg.orderPenalty(f, fp, m, cand); c < bestCost {
				bestCost = c
				best = append(best[:0], cand...)
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func (cg *CalderGrunwald) orderPenalty(f *ir.Func, fp *interp.FuncProfile, m machine.Model, order []int) layout.Cost {
	fl := layout.Finalize(f, fp, order, m)
	return layout.Penalty(f, fl, fp, m)
}
