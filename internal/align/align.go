// Package align implements intraprocedural branch-alignment algorithms:
// the original (compiler) order, the Pettis-Hansen-style greedy aligner,
// the Calder-Grunwald cost-driven greedy variant, and the paper's
// TSP-based near-optimal aligner, together with the Held-Karp and
// assignment-problem lower bounds on achievable control penalty.
package align

import (
	"context"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// Aligner produces a module layout from a training profile under a
// machine model.
type Aligner interface {
	// Name identifies the aligner in reports.
	Name() string
	// Align lays out every function of mod using the edge frequencies in
	// prof. The returned layout satisfies layout.Validate.
	//
	// ctx carries request-scoped cancellation: an anytime aligner (TSP)
	// stops solving at the next kick boundary and finalizes its
	// best-so-far orders — the result is always a valid layout, possibly
	// a worse one than an uncancelled run would produce. The greedy
	// aligners are effectively instantaneous and ignore ctx. A nil ctx
	// is treated as context.Background().
	Align(ctx context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout
}

// Original is the identity aligner: blocks stay in compiler order. It is
// the baseline all results are normalized against.
type Original struct{}

// Name implements Aligner.
func (Original) Name() string { return "original" }

// Align implements Aligner.
func (Original) Align(_ context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	return layout.Identity(mod, prof, m)
}

// finalizeOrders assembles a module layout from per-function block
// orders.
func finalizeOrders(mod *ir.Module, prof *interp.Profile, m machine.Model, orders [][]int) *layout.Layout {
	l := &layout.Layout{}
	for fi, f := range mod.Funcs {
		l.Funcs = append(l.Funcs, layout.Finalize(f, prof.Funcs[fi], orders[fi], m))
	}
	return l
}
