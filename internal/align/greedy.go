package align

import (
	"context"
	"sort"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// PettisHansen is the greedy bottom-up aligner the paper compares
// against: consider CFG edges in decreasing frequency order; lay two
// blocks consecutively when the head has no layout successor yet, the
// tail has no layout predecessor yet, and joining them does not close a
// cycle; finally concatenate the resulting chains, entry chain first.
type PettisHansen struct{}

// Name implements Aligner.
func (PettisHansen) Name() string { return "greedy" }

// Align implements Aligner.
func (PettisHansen) Align(_ context.Context, mod *ir.Module, prof *interp.Profile, m machine.Model) *layout.Layout {
	orders := make([][]int, len(mod.Funcs))
	for fi, f := range mod.Funcs {
		w := frequencyWeights(f, prof.Funcs[fi])
		orders[fi] = chainAndOrder(f, prof.Funcs[fi], w)
	}
	return finalizeOrders(mod, prof, m, orders)
}

// cfgEdge is a weighted candidate for consecutive placement.
type cfgEdge struct {
	from, to int
	weight   int64
}

// frequencyWeights collects the CFG edges usable for fall-through
// placement, weighted by execution frequency (the classic greedy
// priority). Self-loops and edges into the entry block are excluded: the
// entry must stay first and a block cannot succeed itself.
func frequencyWeights(f *ir.Func, fp *interp.FuncProfile) []cfgEdge {
	merged := map[[2]int]int64{}
	for b, blk := range f.Blocks {
		for si, s := range blk.Term.Succs {
			if s == b || s == 0 {
				continue
			}
			merged[[2]int{b, s}] += fp.EdgeCounts[b][si]
		}
	}
	edges := make([]cfgEdge, 0, len(merged))
	//balignlint:ignore order laundered: chainAndOrder sorts edges with a total tie-break
	for k, w := range merged {
		edges = append(edges, cfgEdge{from: k[0], to: k[1], weight: w})
	}
	return edges
}

// chainAndOrder runs the greedy chaining pass over the candidate edges
// and concatenates the chains: entry chain first, then repeatedly the
// chain most strongly connected (by already-known edge weight) to the
// blocks placed so far, falling back to hotter and lower-numbered
// chains. Deterministic for a fixed input.
func chainAndOrder(f *ir.Func, fp *interp.FuncProfile, edges []cfgEdge) []int {
	n := len(f.Blocks)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	next := make([]int, n)
	prev := make([]int, n)
	chainEnd := make([]int, n)
	for i := 0; i < n; i++ {
		next[i] = -1
		prev[i] = -1
		chainEnd[i] = i
	}
	for _, e := range edges {
		if e.weight == 0 {
			break
		}
		if next[e.from] != -1 || prev[e.to] != -1 {
			continue
		}
		if chainEnd[e.from] == e.to {
			continue // would close a cycle
		}
		next[e.from] = e.to
		prev[e.to] = e.from
		head := chainEnd[e.from]
		tail := chainEnd[e.to]
		chainEnd[head] = tail
		chainEnd[tail] = head
	}

	// Collect chains by head block.
	type chain struct {
		blocks []int
		heat   int64 // total execution count, for ordering fallback
	}
	var chains []*chain
	chainOf := make([]*chain, n)
	for h := 0; h < n; h++ {
		if prev[h] != -1 {
			continue
		}
		c := &chain{}
		for b := h; b != -1; b = next[b] {
			c.blocks = append(c.blocks, b)
			c.heat += fp.BlockCounts[b]
			chainOf[b] = c
		}
		chains = append(chains, c)
	}

	// Inter-chain attraction: weight of CFG edges from placed blocks into
	// a chain (and from the chain back, to keep loops together).
	attraction := func(placed map[*chain]bool, c *chain) int64 {
		var sum int64
		for b, blk := range f.Blocks {
			for si, s := range blk.Term.Succs {
				w := fp.EdgeCounts[b][si]
				if w == 0 {
					continue
				}
				fromPlaced := chainOf[b] != c && placed[chainOf[b]]
				intoC := chainOf[s] == c
				if fromPlaced && intoC {
					sum += w
				}
				if chainOf[b] == c && placed[chainOf[s]] && chainOf[s] != c {
					sum += w
				}
			}
		}
		return sum
	}

	order := make([]int, 0, n)
	placed := map[*chain]bool{}
	entryChain := chainOf[0]
	order = append(order, entryChain.blocks...)
	placed[entryChain] = true
	for len(order) < n {
		var best *chain
		var bestAttr, bestHeat int64 = -1, -1
		for _, c := range chains {
			if placed[c] {
				continue
			}
			a := attraction(placed, c)
			if a > bestAttr || (a == bestAttr && c.heat > bestHeat) {
				best, bestAttr, bestHeat = c, a, c.heat
			}
		}
		order = append(order, best.blocks...)
		placed[best] = true
	}
	return order
}
