package cfganal_test

import (
	"testing"

	"branchalign/internal/cfganal"
	"branchalign/internal/ir"
	"branchalign/internal/testutil"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := testutil.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestDominatorsOnDiamond(t *testing.T) {
	mod := compile(t, `func main(x) { var y = 0; if (x) { y = 1; } else { y = 2; } return y; }`)
	f := mod.Funcs[0]
	dom := cfganal.ComputeDominators(f)
	// Entry dominates everything.
	for b := range f.Blocks {
		if !dom.Dominates(0, b) {
			t.Errorf("entry should dominate b%d", b)
		}
		if !dom.Dominates(b, b) {
			t.Errorf("b%d should dominate itself", b)
		}
	}
	// The join block is dominated only by itself and entry (neither arm
	// dominates it).
	joinID := -1
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermRet {
			joinID = b
		}
	}
	if joinID < 0 {
		t.Fatal("no ret block")
	}
	for b := range f.Blocks {
		if b == 0 || b == joinID {
			continue
		}
		if dom.Dominates(b, joinID) {
			t.Errorf("arm b%d must not dominate the join", b)
		}
	}
}

func TestDominatorsLinear(t *testing.T) {
	// A -> B -> C: idom chain is the path itself.
	fb := ir.NewFuncBuilder("f", nil)
	r := fb.NewReg()
	b1 := fb.NewBlock("b1")
	b2 := fb.NewBlock("b2")
	fb.EmitConst(r, 1)
	fb.Br(b1)
	fb.SetInsert(b1)
	fb.Br(b2)
	fb.SetInsert(b2)
	fb.Ret(ir.RegVal(r))
	f := fb.Func()
	dom := cfganal.ComputeDominators(f)
	if dom.IDom[b1] != 0 || dom.IDom[b2] != b1 {
		t.Errorf("idoms wrong: %v", dom.IDom)
	}
	if !dom.Dominates(b1, b2) || dom.Dominates(b2, b1) {
		t.Error("linear dominance wrong")
	}
}

func TestUnreachableBlocksDominateNothing(t *testing.T) {
	mod := compile(t, `func main() { return 1; out(2); }`)
	f := mod.Funcs[0]
	dom := cfganal.ComputeDominators(f)
	// The dead block (created for unreachable code) has IDom -1.
	dead := -1
	for b := range f.Blocks {
		if dom.IDom[b] == -1 {
			dead = b
		}
	}
	if dead < 0 {
		t.Skip("no unreachable block produced")
	}
	if dom.Dominates(dead, 0) || dom.Dominates(0, dead) {
		t.Error("unreachable block should not participate in dominance")
	}
}

func TestNaturalLoopsSimple(t *testing.T) {
	mod := compile(t, `
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
`)
	f := mod.Funcs[0]
	dom := cfganal.ComputeDominators(f)
	loops := cfganal.NaturalLoops(f, dom)
	if len(loops) != 1 {
		t.Fatalf("expected 1 loop, got %d: %+v", len(loops), loops)
	}
	l := loops[0]
	if len(l.Blocks) < 3 {
		t.Errorf("loop body too small: %+v", l)
	}
	// The header must be in its own body, and the back edge source too.
	in := func(b int) bool {
		for _, x := range l.Blocks {
			if x == b {
				return true
			}
		}
		return false
	}
	if !in(l.Header) || !in(l.Back) {
		t.Errorf("loop body must contain header and back-edge source: %+v", l)
	}
	// The exit/ret block must be outside.
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermRet && in(b) {
			t.Errorf("ret block b%d inside the loop", b)
		}
	}
}

func TestLoopDepthNesting(t *testing.T) {
	mod := compile(t, `
func main(n) {
	var i;
	var j;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			s = s + 1;
		}
	}
	while (s > 0) { s = s - 1; }
	return s;
}
`)
	f := mod.Funcs[0]
	depth := cfganal.LoopDepth(f)
	max := 0
	ones := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
		if d == 1 {
			ones++
		}
	}
	if max != 2 {
		t.Errorf("max loop depth = %d, want 2 (nested for)\n%s depths %v", max, f.Body(), depth)
	}
	if ones == 0 {
		t.Error("expected depth-1 blocks (outer loop and while loop)")
	}
	if depth[0] != 0 {
		t.Errorf("entry depth = %d, want 0", depth[0])
	}
}

// TestHotBlocksAreDeep ties the analysis to profiling: on the benchmark
// suite, the hottest block of each function must sit at a loop depth at
// least as large as the function's entry (a sanity check that the
// benchmarks have loop-shaped heat).
func TestHotBlocksAreDeep(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(400, 9))
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range mod.Funcs {
		depth := cfganal.LoopDepth(f)
		fp := prof.Funcs[fi]
		hot, hotCount := 0, int64(-1)
		for b, c := range fp.BlockCounts {
			if c > hotCount {
				hot, hotCount = b, c
			}
		}
		if hotCount <= 0 {
			continue
		}
		if depth[hot] < depth[0] {
			t.Errorf("func %s: hottest block b%d at depth %d, shallower than entry", f.Name, hot, depth[hot])
		}
	}
}

// chainFunc builds a straight-line CFG of n blocks: b0 -> b1 -> ... ->
// b(n-1) -> ret. Deep enough chains overflowed the goroutine stack when
// the DFS inside ComputeDominators was recursive.
func chainFunc(n int) *ir.Func {
	f := &ir.Func{Name: "chain", NumRegs: 1}
	for i := 0; i < n; i++ {
		term := ir.Terminator{Kind: ir.TermBr, Succs: []int{i + 1}}
		if i == n-1 {
			term = ir.Terminator{Kind: ir.TermRet, Val: ir.ConstVal(0)}
		}
		f.Blocks = append(f.Blocks, &ir.Block{ID: i, Term: term})
	}
	return f
}

func TestDominatorsDeepChain(t *testing.T) {
	// 500k blocks: a recursive DFS would need ~500k stack frames, well
	// past any fixed recursion budget; the explicit-stack version is fine
	// (and linear).
	const n = 500_000
	f := chainFunc(n)
	dom := cfganal.ComputeDominators(f)
	if dom.IDom[n-1] != n-2 {
		t.Fatalf("IDom[last] = %d, want %d", dom.IDom[n-1], n-2)
	}
	rpo := cfganal.ReversePostorder(f)
	if len(rpo) != n || rpo[0] != 0 || rpo[n-1] != n-1 {
		t.Fatalf("unexpected reverse postorder shape: len=%d first=%d last=%d", len(rpo), rpo[0], rpo[n-1])
	}
}

func TestReversePostorderMatchesDominatorOrder(t *testing.T) {
	mod := compile(t, `func main(x) { var y = 0; while (x > 0) { if (x % 2) { y = y + 1; } x = x - 1; } return y; }`)
	f := mod.Funcs[0]
	dom := cfganal.ComputeDominators(f)
	a, b := cfganal.ReversePostorder(f), dom.ReversePostorder()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order mismatch at %d: %v vs %v", i, a, b)
		}
	}
	// Every predecessor of a block outside a loop appears before it.
	pos := make(map[int]int)
	for i, blk := range a {
		pos[blk] = i
	}
	if pos[0] != 0 {
		t.Fatalf("entry not first in RPO: %v", a)
	}
}
