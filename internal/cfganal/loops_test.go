package cfganal_test

import (
	"sort"
	"testing"

	"branchalign/internal/cfganal"
	"branchalign/internal/ir"
)

// Hand-built pathological CFGs. Each builder returns the function plus
// the block IDs the assertions reference by role.

// irreducibleFunc: entry conditionally jumps into the middle of a cycle.
//
//	entry -> a | b;  a -> b;  b -> a | ret
//
// The a<->b cycle has two entries, so neither retreating edge is a back
// edge: the region is irreducible and NaturalLoops finds nothing.
func irreducibleFunc() (*ir.Func, map[string]int) {
	fb := ir.NewFuncBuilder("irr", []ir.ParamKind{ir.ParamScalar})
	a := fb.NewBlock("a")
	b := fb.NewBlock("b")
	ret := fb.NewBlock("ret")
	fb.CondBr(ir.RegVal(0), a, b)
	fb.SetInsert(a)
	fb.Br(b)
	fb.SetInsert(b)
	fb.CondBr(ir.RegVal(0), a, ret)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	return fb.Func(), map[string]int{"a": a, "b": b, "ret": ret}
}

// selfLoopFunc: entry -> s; s -> s | ret. The tightest natural loop.
func selfLoopFunc() (*ir.Func, map[string]int) {
	fb := ir.NewFuncBuilder("self", []ir.ParamKind{ir.ParamScalar})
	s := fb.NewBlock("s")
	ret := fb.NewBlock("ret")
	fb.Br(s)
	fb.SetInsert(s)
	fb.CondBr(ir.RegVal(0), s, ret)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	return fb.Func(), map[string]int{"s": s, "ret": ret}
}

// unreachableFunc: entry -> ret, plus a dead block that branches into the
// live graph (so the dead edge must not pollute any classification).
func unreachableFunc() (*ir.Func, map[string]int) {
	fb := ir.NewFuncBuilder("dead", nil)
	ret := fb.NewBlock("ret")
	dead := fb.NewBlock("dead")
	fb.Br(ret)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	fb.SetInsert(dead)
	fb.Br(ret)
	return fb.Func(), map[string]int{"ret": ret, "dead": dead}
}

// multiExitFunc: a natural loop with two distinct exit edges (a guarded
// break plus the header exit) and two latches (a continue path), which
// also exercises the merge of same-header natural loops.
//
//	entry -> h;  h -> body | ret;  body -> brk | latch1
//	latch1 -> h | latch2;  latch2 -> h;  brk -> ret
//
// brk leaves the loop (second exit); latch1 and latch2 are two distinct
// back-edge sources for the same header.
func multiExitFunc() (*ir.Func, map[string]int) {
	fb := ir.NewFuncBuilder("multi", []ir.ParamKind{ir.ParamScalar, ir.ParamScalar})
	h := fb.NewBlock("h")
	body := fb.NewBlock("body")
	latch1 := fb.NewBlock("latch1")
	latch2 := fb.NewBlock("latch2")
	brk := fb.NewBlock("brk") // break target, outside the loop
	ret := fb.NewBlock("ret")
	fb.Br(h)
	fb.SetInsert(h)
	fb.CondBr(ir.RegVal(0), body, ret) // exit edge 1: h -> ret
	fb.SetInsert(body)
	fb.CondBr(ir.RegVal(1), brk, latch1) // exit edge 2: body -> brk
	fb.SetInsert(latch1)
	fb.CondBr(ir.RegVal(0), h, latch2) // back edge 1: latch1 -> h
	fb.SetInsert(latch2)
	fb.Br(h) // back edge 2: latch2 -> h
	fb.SetInsert(brk)
	fb.Br(ret)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	return fb.Func(), map[string]int{
		"h": h, "body": body, "latch1": latch1, "latch2": latch2, "brk": brk, "ret": ret,
	}
}

// nestedFunc: entry -> oh; oh -> ih | ret; ih -> ib | oh_latch;
// ib -> ih (inner back); oh_latch -> oh (outer back).
func nestedFunc() (*ir.Func, map[string]int) {
	fb := ir.NewFuncBuilder("nested", []ir.ParamKind{ir.ParamScalar})
	oh := fb.NewBlock("oh")
	ih := fb.NewBlock("ih")
	ib := fb.NewBlock("ib")
	olatch := fb.NewBlock("olatch")
	ret := fb.NewBlock("ret")
	fb.Br(oh)
	fb.SetInsert(oh)
	fb.CondBr(ir.RegVal(0), ih, ret)
	fb.SetInsert(ih)
	fb.CondBr(ir.RegVal(0), ib, olatch)
	fb.SetInsert(ib)
	fb.Br(ih)
	fb.SetInsert(olatch)
	fb.Br(oh)
	fb.SetInsert(ret)
	fb.Ret(ir.ConstVal(0))
	return fb.Func(), map[string]int{"oh": oh, "ih": ih, "ib": ib, "olatch": olatch, "ret": ret}
}

func edgePairs(es []cfganal.Edge) [][2]int {
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.From, e.To}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func TestAnalyzeLoopsPathological(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*ir.Func, map[string]int)
		check func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest)
	}{
		{
			name:  "irreducible two-entry cycle",
			build: irreducibleFunc,
			check: func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest) {
				if !nest.Irreducible() {
					t.Fatal("two-entry cycle not flagged irreducible")
				}
				if len(nest.Loops) != 0 {
					t.Errorf("no natural loops expected, got %d", len(nest.Loops))
				}
				// Exactly one retreating edge (whichever of a<->b is later in
				// RPO), and it must not be a back edge.
				if len(nest.IrreducibleEdges) != 1 {
					t.Fatalf("want 1 irreducible edge, got %v", nest.IrreducibleEdges)
				}
				e := nest.IrreducibleEdges[0]
				if nest.BackEdge(e.From, e.To) {
					t.Errorf("irreducible edge %v classified as back edge", e)
				}
				if !nest.Retreating(e.From, e.To) {
					t.Errorf("irreducible edge %v not retreating", e)
				}
				// Neither cycle member dominates the other.
				if nest.Dom.Dominates(ids["a"], ids["b"]) || nest.Dom.Dominates(ids["b"], ids["a"]) {
					t.Error("cycle members must not dominate each other")
				}
			},
		},
		{
			name:  "self loop",
			build: selfLoopFunc,
			check: func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest) {
				if nest.Irreducible() {
					t.Fatalf("self loop flagged irreducible: %v", nest.IrreducibleEdges)
				}
				if len(nest.Loops) != 1 {
					t.Fatalf("want 1 loop, got %d", len(nest.Loops))
				}
				l := nest.Loops[0]
				s := ids["s"]
				if l.Header != s || len(l.Blocks) != 1 || l.Blocks[0] != s {
					t.Errorf("self loop shape wrong: %+v", l)
				}
				if got := edgePairs(l.BackEdges); len(got) != 1 || got[0] != [2]int{s, s} {
					t.Errorf("back edges = %v, want [[s s]]", got)
				}
				if got := edgePairs(l.ExitEdges); len(got) != 1 || got[0] != [2]int{s, ids["ret"]} {
					t.Errorf("exit edges = %v, want [[s ret]]", got)
				}
				if nest.Depth[s] != 1 || nest.LoopOf[s] != 0 {
					t.Errorf("depth/loopOf wrong: depth=%d loopOf=%d", nest.Depth[s], nest.LoopOf[s])
				}
				if !nest.BackEdge(s, s) || !nest.Retreating(s, s) {
					t.Error("self edge must be retreating and a back edge")
				}
			},
		},
		{
			name:  "unreachable block",
			build: unreachableFunc,
			check: func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest) {
				dead := ids["dead"]
				if nest.RPONum[dead] != -1 {
					t.Errorf("dead block has RPO number %d", nest.RPONum[dead])
				}
				if nest.Irreducible() || len(nest.Loops) != 0 {
					t.Errorf("acyclic live graph misclassified: loops=%d irr=%v", len(nest.Loops), nest.IrreducibleEdges)
				}
				if nest.Retreating(dead, ids["ret"]) {
					t.Error("edge from unreachable block must not be retreating")
				}
				if nest.LoopOf[dead] != -1 || nest.Depth[dead] != 0 {
					t.Error("unreachable block assigned to a loop")
				}
			},
		},
		{
			name:  "multi-exit loop with two latches",
			build: multiExitFunc,
			check: func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest) {
				if nest.Irreducible() {
					t.Fatalf("reducible loop flagged irreducible: %v", nest.IrreducibleEdges)
				}
				if len(nest.Loops) != 1 {
					t.Fatalf("two latches must merge into 1 loop, got %d", len(nest.Loops))
				}
				l := nest.Loops[0]
				h := ids["h"]
				if l.Header != h {
					t.Fatalf("header = b%d, want b%d", l.Header, h)
				}
				wantBody := []int{h, ids["body"], ids["latch1"], ids["latch2"]}
				sort.Ints(wantBody)
				if len(l.Blocks) != len(wantBody) {
					t.Fatalf("body = %v, want %v", l.Blocks, wantBody)
				}
				for i := range wantBody {
					if l.Blocks[i] != wantBody[i] {
						t.Fatalf("body = %v, want %v", l.Blocks, wantBody)
					}
				}
				backs := edgePairs(l.BackEdges)
				wantBacks := edgePairs([]cfganal.Edge{
					{From: ids["latch1"], To: h},
					{From: ids["latch2"], To: h},
				})
				if len(backs) != 2 || backs[0] != wantBacks[0] || backs[1] != wantBacks[1] {
					t.Errorf("back edges = %v, want %v", backs, wantBacks)
				}
				exits := edgePairs(l.ExitEdges)
				wantExits := edgePairs([]cfganal.Edge{
					{From: h, To: ids["ret"]},
					{From: ids["body"], To: ids["brk"]},
				})
				if len(exits) != 2 || exits[0] != wantExits[0] || exits[1] != wantExits[1] {
					t.Errorf("exit edges = %v, want %v", exits, wantExits)
				}
				// Dominators: the header dominates every body block; the
				// break target is dominated by body, not by the latches.
				for _, b := range l.Blocks {
					if !nest.Dom.Dominates(h, b) {
						t.Errorf("header must dominate body block b%d", b)
					}
				}
				if !nest.Dom.Dominates(ids["body"], ids["brk"]) {
					t.Error("body must dominate break target")
				}
				if nest.Dom.Dominates(ids["latch1"], ids["brk"]) {
					t.Error("latch must not dominate break target")
				}
			},
		},
		{
			name:  "nested loops",
			build: nestedFunc,
			check: func(t *testing.T, f *ir.Func, ids map[string]int, nest *cfganal.LoopNest) {
				if len(nest.Loops) != 2 {
					t.Fatalf("want 2 loops, got %d", len(nest.Loops))
				}
				// Inner-first order: Loops[0] is the inner loop (depth 2).
				inner, outer := nest.Loops[0], nest.Loops[1]
				if inner.Depth != 2 || outer.Depth != 1 {
					t.Fatalf("depths = %d,%d; want 2,1", inner.Depth, outer.Depth)
				}
				if inner.Header != ids["ih"] || outer.Header != ids["oh"] {
					t.Errorf("headers = b%d,b%d; want b%d,b%d", inner.Header, outer.Header, ids["ih"], ids["oh"])
				}
				if inner.Parent != 1 || outer.Parent != -1 {
					t.Errorf("parents = %d,%d; want 1,-1", inner.Parent, outer.Parent)
				}
				if nest.Depth[ids["ib"]] != 2 || nest.Depth[ids["olatch"]] != 1 || nest.Depth[ids["ret"]] != 0 {
					t.Errorf("block depths wrong: %v", nest.Depth)
				}
				if nest.LoopOf[ids["ib"]] != 0 || nest.LoopOf[ids["olatch"]] != 1 {
					t.Errorf("LoopOf wrong: %v", nest.LoopOf)
				}
				// The outer body contains the whole inner body.
				for _, b := range inner.Blocks {
					if !outer.Contains(b) {
						t.Errorf("outer loop missing inner block b%d", b)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, ids := tc.build()
			tc.check(t, f, ids, cfganal.AnalyzeLoops(f))
		})
	}
}

// TestAnalyzeLoopsAgreesWithLoopDepth cross-checks the merged nest's
// per-block depth against the existing LoopDepth on a compiled program.
func TestAnalyzeLoopsAgreesWithLoopDepth(t *testing.T) {
	mod := compile(t, `
func main(n) {
	var i;
	var j;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		for (j = 0; j < n; j = j + 1) {
			if (s % 2) { s = s + 3; } else { s = s + 1; }
		}
	}
	while (s > 0) { s = s - 1; }
	return s;
}
`)
	f := mod.Funcs[0]
	nest := cfganal.AnalyzeLoops(f)
	want := cfganal.LoopDepth(f)
	for b := range f.Blocks {
		if nest.Depth[b] != want[b] {
			t.Errorf("b%d: nest depth %d, LoopDepth %d", b, nest.Depth[b], want[b])
		}
	}
	if nest.Irreducible() {
		t.Errorf("structured program flagged irreducible: %v", nest.IrreducibleEdges)
	}
}
