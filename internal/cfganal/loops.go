package cfganal

import (
	"sort"

	"branchalign/internal/ir"
)

// Edge identifies one CFG edge by its source block and successor index
// (indexing ir.Terminator.Succs); To caches the target block.
type Edge struct {
	From    int
	SuccIdx int
	To      int
}

// LoopInfo describes one merged natural loop: all back edges sharing a
// header are folded into a single loop (textbook NaturalLoops reports
// them separately; frequency estimation and lints want the union).
type LoopInfo struct {
	// Header is the loop-header block.
	Header int
	// Blocks lists the loop body including the header, ascending.
	Blocks []int
	// Parent indexes the innermost enclosing loop in LoopNest.Loops
	// (-1 for a top-level loop).
	Parent int
	// Depth is the nesting depth (1 = outermost).
	Depth int
	// BackEdges are the latch edges t -> Header with Header dominating t.
	BackEdges []Edge
	// ExitEdges leave the loop: edges from a body block to a block
	// outside Blocks.
	ExitEdges []Edge
}

// Contains reports whether block b belongs to the loop body.
func (l *LoopInfo) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// LoopNest is the merged-loop structure of a function together with the
// edge classifications static profile estimation consumes.
type LoopNest struct {
	// Dom is the dominator tree the nest was built from.
	Dom *Dominators
	// RPONum maps a block to its reverse-postorder number (-1 for
	// unreachable blocks).
	RPONum []int
	// Loops holds the merged loops, sorted by descending depth (inner
	// loops first), ties by header. This is the processing order for
	// inner-to-outer frequency propagation.
	Loops []*LoopInfo
	// LoopOf maps each block to the index (in Loops) of its innermost
	// containing loop, -1 when the block is in no loop.
	LoopOf []int
	// Depth is the loop-nesting depth per block (0 = not in any loop).
	Depth []int
	// IrreducibleEdges lists the retreating edges that are not back
	// edges: an edge u -> v against the reverse postorder whose target
	// does not dominate its source. A non-empty list means the CFG has a
	// cycle that is not a natural loop (an irreducible region), which
	// structured loop-nest propagation cannot model exactly.
	IrreducibleEdges []Edge
}

// Irreducible reports whether the CFG contains a cycle that is not a
// natural loop.
func (n *LoopNest) Irreducible() bool { return len(n.IrreducibleEdges) > 0 }

// Retreating reports whether the edge from block b to block `to` runs
// against the reverse postorder (the target appears no later than the
// source). Back edges and irreducible-entry edges are retreating; every
// other edge between reachable blocks is forward. Edges touching
// unreachable blocks are never retreating.
func (n *LoopNest) Retreating(b, to int) bool {
	if n.RPONum[b] < 0 || n.RPONum[to] < 0 {
		return false
	}
	return n.RPONum[to] <= n.RPONum[b]
}

// BackEdge reports whether the edge b -> to is a back edge (to dominates
// b), i.e. the latch of a natural loop. Self-loops count.
func (n *LoopNest) BackEdge(b, to int) bool {
	return n.Dom.Dominates(to, b)
}

// AnalyzeLoops builds the merged loop nest of f: natural loops grouped
// by header, nesting links, per-block depth, back-edge and exit-edge
// classification, and irreducibility detection.
func AnalyzeLoops(f *ir.Func) *LoopNest {
	dom := ComputeDominators(f)
	n := len(f.Blocks)
	nest := &LoopNest{Dom: dom, RPONum: make([]int, n), LoopOf: make([]int, n), Depth: make([]int, n)}
	for b := range nest.RPONum {
		nest.RPONum[b] = -1
		nest.LoopOf[b] = -1
	}
	for i, b := range dom.rpo {
		nest.RPONum[b] = i
	}

	// Merge natural loops by header (headers are unique keys after the
	// merge, so body containment gives a tree).
	byHeader := map[int]*LoopInfo{}
	var headers []int
	for _, nl := range NaturalLoops(f, dom) {
		li := byHeader[nl.Header]
		if li == nil {
			li = &LoopInfo{Header: nl.Header, Parent: -1}
			byHeader[nl.Header] = li
			headers = append(headers, nl.Header)
		}
		li.Blocks = unionSorted(li.Blocks, nl.Blocks)
	}
	sort.Ints(headers)
	for _, h := range headers {
		nest.Loops = append(nest.Loops, byHeader[h])
	}

	// Back edges, exit edges and irreducible retreating edges.
	for b, blk := range f.Blocks {
		if nest.RPONum[b] < 0 {
			continue // unreachable source: classify nothing
		}
		for si, s := range blk.Term.Succs {
			if nest.Retreating(b, s) && !dom.Dominates(s, b) {
				nest.IrreducibleEdges = append(nest.IrreducibleEdges, Edge{From: b, SuccIdx: si, To: s})
			}
			if li := byHeader[s]; li != nil && dom.Dominates(s, b) {
				li.BackEdges = append(li.BackEdges, Edge{From: b, SuccIdx: si, To: s})
			}
		}
	}
	for _, li := range nest.Loops {
		for _, b := range li.Blocks {
			for si, s := range f.Blocks[b].Term.Succs {
				if !li.Contains(s) {
					li.ExitEdges = append(li.ExitEdges, Edge{From: b, SuccIdx: si, To: s})
				}
			}
		}
	}

	// Nesting depth: the parent of loop L is the smallest other loop
	// containing L's header. Depth counts parent links.
	parentOf := func(i int) int {
		li := nest.Loops[i]
		best := -1
		for j, lj := range nest.Loops {
			if i == j || lj.Header == li.Header || !lj.Contains(li.Header) {
				continue
			}
			if best == -1 || len(lj.Blocks) < len(nest.Loops[best].Blocks) {
				best = j
			}
		}
		return best
	}
	for i, li := range nest.Loops {
		li.Parent = parentOf(i)
	}
	for _, li := range nest.Loops {
		d := 1
		for p := li.Parent; p != -1; p = nest.Loops[p].Parent {
			d++
		}
		li.Depth = d
	}

	// Inner-to-outer processing order; ties by header keep it
	// deterministic. Parent indices and LoopOf are rebuilt against the
	// sorted slice.
	sort.SliceStable(nest.Loops, func(i, j int) bool {
		if nest.Loops[i].Depth != nest.Loops[j].Depth {
			return nest.Loops[i].Depth > nest.Loops[j].Depth
		}
		return nest.Loops[i].Header < nest.Loops[j].Header
	})
	for i, li := range nest.Loops {
		li.Parent = parentOf(i)
	}
	for i, li := range nest.Loops {
		for _, b := range li.Blocks {
			nest.Depth[b]++
			if nest.LoopOf[b] == -1 || nest.Loops[nest.LoopOf[b]].Depth < li.Depth {
				nest.LoopOf[b] = i
			}
		}
	}
	return nest
}

// unionSorted merges two ascending int slices without duplicates.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
