// Package cfganal provides classic control-flow analyses over the IR:
// dominator trees (Cooper-Harvey-Kennedy's iterative algorithm), natural
// loop detection via back edges, and per-block loop depth. The aligners
// themselves work purely from edge frequencies, but loop structure is
// the standard way to sanity-check benchmark shape (hot blocks should be
// the deepest) and to report what a layout did to each loop body.
package cfganal

import (
	"sort"

	"branchalign/internal/ir"
)

// Dominators holds the dominator tree of a function.
type Dominators struct {
	// IDom[b] is the immediate dominator of block b (IDom[entry] ==
	// entry). Unreachable blocks have IDom -1.
	IDom []int
	// order is the reverse-postorder numbering used internally.
	rpo []int
}

// ComputeDominators builds the dominator tree with the iterative
// algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
// Algorithm").
func ComputeDominators(f *ir.Func) *Dominators {
	n := len(f.Blocks)
	rpo := reversePostorder(f)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	preds := f.Preds()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue // predecessor not yet processed/reachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &Dominators{IDom: idom, rpo: rpo}
}

// ReversePostorder returns the reverse-postorder numbering of f's
// reachable blocks starting from the entry. It is the canonical iteration
// order for forward dataflow analyses (package check builds on it);
// unreachable blocks do not appear.
func ReversePostorder(f *ir.Func) []int {
	return reversePostorder(f)
}

// ReversePostorder returns the reverse-postorder block sequence the
// dominator computation used (a copy; reachable blocks only).
func (d *Dominators) ReversePostorder() []int {
	return append([]int(nil), d.rpo...)
}

// reversePostorder runs an explicit-stack depth-first search from the
// entry and returns the reverse postorder. The iterative formulation
// keeps a (block, next-successor-index) frame per stack entry, so CFGs of
// any depth — e.g. the pathological straight-line chains large lowered
// functions produce — cannot overflow the goroutine stack the way the
// previous recursive DFS could.
func reversePostorder(f *ir.Func) []int {
	n := len(f.Blocks)
	visited := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct {
		block int
		next  int // index into Succs of the next edge to explore
	}
	stack := make([]frame, 0, 16)
	visited[0] = true
	stack = append(stack, frame{block: 0})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := f.Blocks[top.block].Term.Succs
		advanced := false
		for top.next < len(succs) {
			s := succs[top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{block: s})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		post = append(post, top.block)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i := range post {
		rpo[i] = post[len(post)-1-i]
	}
	return rpo
}

// Dominates reports whether block a dominates block b (every block
// dominates itself). Unreachable blocks dominate nothing and are
// dominated by nothing.
func (d *Dominators) Dominates(a, b int) bool {
	if d.IDom[b] == -1 || d.IDom[a] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = d.IDom[b]
	}
}

// Loop is a natural loop.
type Loop struct {
	// Header is the loop-header block.
	Header int
	// Back is the source of the back edge defining the loop.
	Back int
	// Blocks lists the loop body (including the header), ascending.
	Blocks []int
}

// NaturalLoops finds all natural loops: for every back edge (t -> h)
// where h dominates t, the loop body is h plus all blocks that reach t
// without passing through h. Loops sharing a header are reported
// separately (one per back edge), like classic textbooks do.
func NaturalLoops(f *ir.Func, dom *Dominators) []Loop {
	preds := f.Preds()
	var loops []Loop
	for t, blk := range f.Blocks {
		for _, h := range blk.Term.Succs {
			if !dom.Dominates(h, t) {
				continue
			}
			inLoop := map[int]bool{h: true}
			stack := []int{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[b] {
					continue
				}
				inLoop[b] = true
				for _, p := range preds[b] {
					stack = append(stack, p)
				}
			}
			body := make([]int, 0, len(inLoop))
			for b := range inLoop {
				body = append(body, b)
			}
			sort.Ints(body)
			loops = append(loops, Loop{Header: h, Back: t, Blocks: body})
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Back < loops[j].Back
	})
	return loops
}

// LoopDepth returns, for every block, the number of natural loops whose
// body contains it (0 = not in any loop).
func LoopDepth(f *ir.Func) []int {
	dom := ComputeDominators(f)
	loops := NaturalLoops(f, dom)
	// Merge loops with the same header (they are one loop with several
	// back edges) before counting nesting.
	byHeader := map[int]map[int]bool{}
	for _, l := range loops {
		set := byHeader[l.Header]
		if set == nil {
			set = map[int]bool{}
			byHeader[l.Header] = set
		}
		for _, b := range l.Blocks {
			set[b] = true
		}
	}
	depth := make([]int, len(f.Blocks))
	for _, set := range byHeader {
		for b := range set {
			depth[b]++
		}
	}
	return depth
}
