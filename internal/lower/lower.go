// Package lower translates checked Mini-C programs (package minic) into
// the basic-block IR of package ir. Lowering produces the control-flow
// shapes branch alignment cares about: two-way conditional branches from
// if/while/for and short-circuit booleans, multiway switch terminators
// (the "register branch" class), and fall-through chains of unconditional
// branches.
package lower

import (
	"fmt"

	"branchalign/internal/ir"
	"branchalign/internal/minic"
)

// Program lowers a checked program to an IR module. The entry function is
// "main" when present, otherwise the first function.
func Program(info *minic.Info) (*ir.Module, error) {
	mod := &ir.Module{
		GlobalNames: append([]string(nil), info.GlobalScalars...),
	}
	for _, g := range info.GlobalArrays {
		mod.GlobalArrays = append(mod.GlobalArrays, ir.GlobalArray{Name: g.Name, Size: int(g.Size)})
	}
	for _, fi := range info.Funcs {
		f, err := lowerFunc(info, fi)
		if err != nil {
			return nil, err
		}
		mod.Funcs = append(mod.Funcs, f)
	}
	if idx, ok := info.FuncIndex["main"]; ok {
		mod.EntryFunc = idx
	}
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("lower: produced invalid IR: %w", err)
	}
	return mod, nil
}

// funcLowerer holds per-function lowering state.
type funcLowerer struct {
	info *minic.Info
	fi   *minic.FuncInfo
	b    *ir.FuncBuilder
	// breakTargets and continueTargets are stacks of jump destinations for
	// the innermost breakable (loop or switch) and continuable (loop)
	// constructs.
	breakTargets    []int
	continueTargets []int
}

func lowerFunc(info *minic.Info, fi *minic.FuncInfo) (*ir.Func, error) {
	params := make([]ir.ParamKind, len(fi.Decl.Params))
	for i, p := range fi.Decl.Params {
		if p.IsArray {
			params[i] = ir.ParamArray
		} else {
			params[i] = ir.ParamScalar
		}
	}
	b := ir.NewFuncBuilder(fi.Decl.Name, params)
	b.ReserveRegs(fi.NumScalars)
	sizes := make([]int, len(fi.LocalArraySizes))
	for i, s := range fi.LocalArraySizes {
		sizes[i] = int(s)
	}
	b.SetLocalArraySizes(sizes)

	fl := &funcLowerer{info: info, fi: fi, b: b}
	fl.stmts(fi.Decl.Body.Stmts)
	// Implicit return 0 for any block that ran off the end, and a
	// terminator for dead blocks created after returns/breaks.
	if !b.Terminated() {
		b.Ret(ir.ConstVal(0))
	}
	return b.Func(), nil
}

// startDeadBlock begins a fresh block for statements that follow a
// terminator (unreachable code keeps its CFG shape; the verifier and the
// aligners tolerate unreachable blocks).
func (fl *funcLowerer) startDeadBlock() {
	id := fl.b.NewBlock("dead")
	fl.b.SetInsert(id)
}

func (fl *funcLowerer) stmts(list []minic.Stmt) {
	for _, s := range list {
		if fl.b.Terminated() {
			fl.startDeadBlock()
		}
		fl.stmt(s)
	}
}

func (fl *funcLowerer) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		fl.stmts(st.Stmts)
	case *minic.VarDecl:
		if st.IsArray {
			return // storage pre-allocated from checker results
		}
		sym := fl.fi.Decls[st]
		if st.Init != nil {
			v := fl.expr(st.Init)
			fl.b.EmitMove(ir.Reg(sym.Index), v)
		} else {
			fl.b.EmitConst(ir.Reg(sym.Index), 0)
		}
	case *minic.AssignStmt:
		fl.assign(st)
	case *minic.IfStmt:
		fl.ifStmt(st)
	case *minic.WhileStmt:
		fl.whileStmt(st)
	case *minic.ForStmt:
		fl.forStmt(st)
	case *minic.SwitchStmt:
		fl.switchStmt(st)
	case *minic.BreakStmt:
		fl.b.Br(fl.breakTargets[len(fl.breakTargets)-1])
	case *minic.ContinueStmt:
		fl.b.Br(fl.continueTargets[len(fl.continueTargets)-1])
	case *minic.ReturnStmt:
		if st.Value != nil {
			v := fl.expr(st.Value)
			fl.b.Ret(v)
		} else {
			fl.b.Ret(ir.ConstVal(0))
		}
	case *minic.ExprStmt:
		fl.expr(st.X)
	default:
		panic(fmt.Sprintf("lower: unknown statement %T", s))
	}
}

func (fl *funcLowerer) assign(st *minic.AssignStmt) {
	sym := fl.fi.Assign[st]
	if st.Index != nil {
		idx := fl.expr(st.Index)
		val := fl.expr(st.Value)
		fl.b.EmitStore(arrayRef(sym), idx, val)
		return
	}
	val := fl.expr(st.Value)
	switch sym.Kind {
	case minic.SymScalar:
		fl.b.EmitMove(ir.Reg(sym.Index), val)
	case minic.SymGlobalScalar:
		fl.b.EmitGStore(sym.Index, val)
	default:
		panic("lower: scalar assignment to non-scalar symbol")
	}
}

func arrayRef(sym minic.Symbol) ir.ArrayRef {
	switch sym.Kind {
	case minic.SymArray:
		return ir.ArrayRef{Index: sym.Index}
	case minic.SymGlobalArray:
		return ir.ArrayRef{Global: true, Index: sym.Index}
	}
	panic("lower: symbol is not an array")
}

func (fl *funcLowerer) ifStmt(st *minic.IfStmt) {
	thenB := fl.b.NewBlock("if.then")
	joinB := fl.b.NewBlock("if.join")
	elseB := joinB
	if st.Else != nil {
		elseB = fl.b.NewBlock("if.else")
	}
	fl.cond(st.Cond, thenB, elseB)
	fl.b.SetInsert(thenB)
	fl.stmts(st.Then.Stmts)
	if !fl.b.Terminated() {
		fl.b.Br(joinB)
	}
	if st.Else != nil {
		fl.b.SetInsert(elseB)
		fl.stmt(st.Else)
		if !fl.b.Terminated() {
			fl.b.Br(joinB)
		}
	}
	fl.b.SetInsert(joinB)
}

func (fl *funcLowerer) whileStmt(st *minic.WhileStmt) {
	headB := fl.b.NewBlock("while.head")
	bodyB := fl.b.NewBlock("while.body")
	exitB := fl.b.NewBlock("while.exit")
	fl.b.Br(headB)
	fl.b.SetInsert(headB)
	fl.cond(st.Cond, bodyB, exitB)
	fl.breakTargets = append(fl.breakTargets, exitB)
	fl.continueTargets = append(fl.continueTargets, headB)
	fl.b.SetInsert(bodyB)
	fl.stmts(st.Body.Stmts)
	if !fl.b.Terminated() {
		fl.b.Br(headB)
	}
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.continueTargets = fl.continueTargets[:len(fl.continueTargets)-1]
	fl.b.SetInsert(exitB)
}

func (fl *funcLowerer) forStmt(st *minic.ForStmt) {
	if st.Init != nil {
		fl.stmt(st.Init)
	}
	headB := fl.b.NewBlock("for.head")
	bodyB := fl.b.NewBlock("for.body")
	postB := fl.b.NewBlock("for.post")
	exitB := fl.b.NewBlock("for.exit")
	fl.b.Br(headB)
	fl.b.SetInsert(headB)
	if st.Cond != nil {
		fl.cond(st.Cond, bodyB, exitB)
	} else {
		fl.b.Br(bodyB)
	}
	fl.breakTargets = append(fl.breakTargets, exitB)
	fl.continueTargets = append(fl.continueTargets, postB)
	fl.b.SetInsert(bodyB)
	fl.stmts(st.Body.Stmts)
	if !fl.b.Terminated() {
		fl.b.Br(postB)
	}
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.continueTargets = fl.continueTargets[:len(fl.continueTargets)-1]
	fl.b.SetInsert(postB)
	if st.Post != nil {
		fl.stmt(st.Post)
	}
	fl.b.Br(headB)
	fl.b.SetInsert(exitB)
}

func (fl *funcLowerer) switchStmt(st *minic.SwitchStmt) {
	tag := fl.expr(st.Tag)
	doneB := fl.b.NewBlock("switch.done")
	caseBlocks := make([]int, len(st.Cases))
	caseVals := make([]int64, len(st.Cases))
	for i, cs := range st.Cases {
		caseBlocks[i] = fl.b.NewBlock(fmt.Sprintf("case.%d", cs.Value))
		caseVals[i] = cs.Value
	}
	defaultB := doneB
	if st.Default != nil {
		defaultB = fl.b.NewBlock("switch.default")
	}
	fl.b.Switch(tag, caseVals, caseBlocks, defaultB)
	fl.breakTargets = append(fl.breakTargets, doneB)
	for i, cs := range st.Cases {
		fl.b.SetInsert(caseBlocks[i])
		fl.stmts(cs.Body)
		if !fl.b.Terminated() {
			fl.b.Br(doneB)
		}
	}
	if st.Default != nil {
		fl.b.SetInsert(defaultB)
		fl.stmts(st.Default)
		if !fl.b.Terminated() {
			fl.b.Br(doneB)
		}
	}
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.b.SetInsert(doneB)
}

// cond lowers a boolean expression directly into control flow, splitting
// short-circuit operators and logical negation into branches so the CFG
// matches what a real compiler emits.
func (fl *funcLowerer) cond(e minic.Expr, tBlk, fBlk int) {
	switch ex := e.(type) {
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.BinLogAnd:
			mid := fl.b.NewBlock("land.rhs")
			fl.cond(ex.X, mid, fBlk)
			fl.b.SetInsert(mid)
			fl.cond(ex.Y, tBlk, fBlk)
			return
		case minic.BinLogOr:
			mid := fl.b.NewBlock("lor.rhs")
			fl.cond(ex.X, tBlk, mid)
			fl.b.SetInsert(mid)
			fl.cond(ex.Y, tBlk, fBlk)
			return
		}
	case *minic.UnaryExpr:
		if ex.Op == minic.UnNot {
			fl.cond(ex.X, fBlk, tBlk)
			return
		}
	}
	v := fl.expr(e)
	fl.b.CondBr(v, tBlk, fBlk)
}

var binOpMap = map[minic.BinOp]ir.Op{
	minic.BinAdd: ir.OpAdd, minic.BinSub: ir.OpSub, minic.BinMul: ir.OpMul,
	minic.BinDiv: ir.OpDiv, minic.BinRem: ir.OpRem, minic.BinAnd: ir.OpAnd,
	minic.BinOr: ir.OpOr, minic.BinXor: ir.OpXor, minic.BinShl: ir.OpShl,
	minic.BinShr: ir.OpShr, minic.BinEq: ir.OpEq, minic.BinNe: ir.OpNe,
	minic.BinLt: ir.OpLt, minic.BinLe: ir.OpLe, minic.BinGt: ir.OpGt,
	minic.BinGe: ir.OpGe,
}

// expr lowers an expression in value context and returns its Value.
func (fl *funcLowerer) expr(e minic.Expr) ir.Value {
	switch ex := e.(type) {
	case *minic.NumLit:
		return ir.ConstVal(ex.Val)
	case *minic.Ident:
		sym := fl.fi.Use[ex]
		switch sym.Kind {
		case minic.SymScalar:
			return ir.RegVal(ir.Reg(sym.Index))
		case minic.SymGlobalScalar:
			r := fl.b.NewReg()
			fl.b.EmitGLoad(r, sym.Index)
			return ir.RegVal(r)
		}
		panic("lower: array identifier in scalar context escaped the checker")
	case *minic.IndexExpr:
		sym := fl.fi.IndexUse[ex]
		idx := fl.expr(ex.Index)
		r := fl.b.NewReg()
		fl.b.EmitLoad(r, arrayRef(sym), idx)
		return ir.RegVal(r)
	case *minic.CallExpr:
		return fl.call(ex)
	case *minic.BinaryExpr:
		if ex.Op == minic.BinLogAnd || ex.Op == minic.BinLogOr {
			return fl.boolValue(ex)
		}
		x := fl.expr(ex.X)
		y := fl.expr(ex.Y)
		r := fl.b.NewReg()
		fl.b.EmitBin(r, binOpMap[ex.Op], x, y)
		return ir.RegVal(r)
	case *minic.UnaryExpr:
		x := fl.expr(ex.X)
		r := fl.b.NewReg()
		if ex.Op == minic.UnNeg {
			fl.b.EmitUn(r, ir.OpNeg, x)
		} else {
			fl.b.EmitUn(r, ir.OpNot, x)
		}
		return ir.RegVal(r)
	}
	panic(fmt.Sprintf("lower: unknown expression %T", e))
}

// boolValue materializes a short-circuit expression as 0/1 through a
// diamond of blocks.
func (fl *funcLowerer) boolValue(e minic.Expr) ir.Value {
	r := fl.b.NewReg()
	tB := fl.b.NewBlock("bool.true")
	fB := fl.b.NewBlock("bool.false")
	doneB := fl.b.NewBlock("bool.done")
	fl.cond(e, tB, fB)
	fl.b.SetInsert(tB)
	fl.b.EmitConst(r, 1)
	fl.b.Br(doneB)
	fl.b.SetInsert(fB)
	fl.b.EmitConst(r, 0)
	fl.b.Br(doneB)
	fl.b.SetInsert(doneB)
	return ir.RegVal(r)
}

func (fl *funcLowerer) call(ex *minic.CallExpr) ir.Value {
	target := fl.fi.Calls[ex]
	if target == minic.BuiltinOut {
		v := fl.expr(ex.Args[0])
		fl.b.EmitOut(v)
		return ir.ConstVal(0)
	}
	callee := fl.info.Prog.Funcs[target]
	args := make([]ir.Arg, len(ex.Args))
	for i, a := range ex.Args {
		if callee.Params[i].IsArray {
			id := a.(*minic.Ident)
			args[i] = ir.ArrayArg(arrayRef(fl.fi.Use[id]))
			continue
		}
		args[i] = ir.ScalarArg(fl.expr(a))
	}
	r := fl.b.NewReg()
	fl.b.EmitCall(r, target, args)
	return ir.RegVal(r)
}
