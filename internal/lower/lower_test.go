package lower_test

import (
	"strings"
	"testing"

	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

func termKinds(f *ir.Func) map[ir.TermKind]int {
	out := map[ir.TermKind]int{}
	for _, b := range f.Blocks {
		out[b.Term.Kind]++
	}
	return out
}

func TestLowerIfProducesDiamond(t *testing.T) {
	mod := compile(t, `func main(x) { if (x > 0) { out(1); } else { out(2); } return 0; }`)
	f := mod.Funcs[0]
	kinds := termKinds(f)
	if kinds[ir.TermCondBr] != 1 {
		t.Errorf("expected 1 conditional, got %d\n%s", kinds[ir.TermCondBr], f.Body())
	}
	// then + else + join + entry = 4 blocks.
	if len(f.Blocks) != 4 {
		t.Errorf("expected 4 blocks, got %d\n%s", len(f.Blocks), f.Body())
	}
}

func TestLowerIfWithoutElse(t *testing.T) {
	mod := compile(t, `func main(x) { if (x) { out(1); } return 0; }`)
	f := mod.Funcs[0]
	if len(f.Blocks) != 3 { // entry, then, join
		t.Errorf("expected 3 blocks, got %d\n%s", len(f.Blocks), f.Body())
	}
	// The conditional's false edge goes straight to the join block.
	entry := f.Entry()
	if entry.Term.Kind != ir.TermCondBr {
		t.Fatalf("entry should end in condbr")
	}
	join := entry.Term.Succs[1]
	if f.Blocks[join].Term.Kind != ir.TermRet {
		t.Errorf("false edge should reach the ret block\n%s", f.Body())
	}
}

func TestLowerWhileShape(t *testing.T) {
	mod := compile(t, `func main(n) { while (n > 0) { n = n - 1; } return n; }`)
	f := mod.Funcs[0]
	kinds := termKinds(f)
	if kinds[ir.TermCondBr] != 1 {
		t.Errorf("while should produce exactly one conditional (the header)")
	}
	// Header must be reachable from both entry and the body (back edge).
	preds := f.Preds()
	headerID := -1
	for bi, b := range f.Blocks {
		if b.Term.Kind == ir.TermCondBr {
			headerID = bi
		}
	}
	if headerID < 0 || len(preds[headerID]) != 2 {
		t.Errorf("loop header should have 2 predecessors (entry + back edge), got %v", preds[headerID])
	}
}

func TestLowerForContinueTargetsPost(t *testing.T) {
	// continue in a for loop must execute the post statement: iterating
	// i=0..4 with continue on odd i must still terminate and count evens.
	mod := compile(t, `
func main() {
	var i;
	var evens = 0;
	for (i = 0; i < 5; i = i + 1) {
		if (i % 2 == 1) { continue; }
		evens = evens + 1;
	}
	return evens;
}
`)
	// Structure check: some block (for.post) must be the target of both
	// the body fall-through and the continue edge.
	f := mod.Funcs[0]
	preds := f.Preds()
	multi := 0
	for bi := range f.Blocks {
		if len(preds[bi]) >= 2 {
			multi++
		}
	}
	if multi < 2 {
		t.Errorf("expected merge blocks for head and post\n%s", f.Body())
	}
}

func TestLowerSwitchShape(t *testing.T) {
	mod := compile(t, `
func main(x) {
	switch (x) {
	case 1: out(1);
	case 2: out(2);
	case 7: out(7);
	}
	return 0;
}
`)
	f := mod.Funcs[0]
	var sw *ir.Terminator
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermSwitch {
			sw = &b.Term
		}
	}
	if sw == nil {
		t.Fatalf("no switch terminator\n%s", f.Body())
	}
	if len(sw.Cases) != 3 || len(sw.Succs) != 4 {
		t.Errorf("switch shape wrong: %d cases, %d succs", len(sw.Cases), len(sw.Succs))
	}
	// Without a default, the default successor is the join block.
	deflt := sw.Succs[len(sw.Succs)-1]
	if f.Blocks[deflt].Term.Kind != ir.TermRet {
		t.Errorf("default edge should reach the join/ret block\n%s", f.Body())
	}
}

func TestLowerShortCircuitBranches(t *testing.T) {
	// a && b in a condition produces two conditionals and no boolean
	// materialization blocks.
	mod := compile(t, `func main(a, b) { if (a > 0 && b > 0) { return 1; } return 0; }`)
	kinds := termKinds(mod.Funcs[0])
	if kinds[ir.TermCondBr] != 2 {
		t.Errorf("&& in condition should lower to 2 conditionals, got %d\n%s",
			kinds[ir.TermCondBr], mod.Funcs[0].Body())
	}
	// In value position it also needs the 0/1 diamond.
	mod2 := compile(t, `func main(a, b) { var v = a > 0 && b > 0; return v; }`)
	kinds2 := termKinds(mod2.Funcs[0])
	if kinds2[ir.TermCondBr] != 2 {
		t.Errorf("value-position && should still lower to 2 conditionals, got %d", kinds2[ir.TermCondBr])
	}
	if len(mod2.Funcs[0].Blocks) < 5 {
		t.Errorf("value-position && needs the 0/1 diamond\n%s", mod2.Funcs[0].Body())
	}
}

func TestLowerNotInvertsBranch(t *testing.T) {
	// !cond in an if swaps the branch targets rather than computing a
	// negation.
	mod := compile(t, `func main(a) { if (!(a > 0)) { return 1; } return 0; }`)
	f := mod.Funcs[0]
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.InstrUn && in.Op == ir.OpNot {
				t.Errorf("condition-position ! should not materialize OpNot\n%s", f.Body())
			}
		}
	}
}

func TestLowerDeadCodeAfterReturn(t *testing.T) {
	mod := compile(t, `func main() { return 1; out(2); }`)
	f := mod.Funcs[0]
	// Unreachable code goes into a dead block; the module still verifies.
	if len(f.Blocks) < 2 {
		t.Errorf("expected a dead block for unreachable code\n%s", f.Body())
	}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerImplicitReturnZero(t *testing.T) {
	mod := compile(t, `func main() { out(1); }`)
	f := mod.Funcs[0]
	last := f.Blocks[len(f.Blocks)-1]
	if last.Term.Kind != ir.TermRet || !last.Term.Val.IsConst || last.Term.Val.Const != 0 {
		t.Errorf("expected implicit ret 0\n%s", f.Body())
	}
}

func TestLowerGlobalsAndArrays(t *testing.T) {
	mod := compile(t, `
global g;
global arr[10];
func main(x) {
	g = x;
	arr[1] = g + 1;
	return arr[1];
}
`)
	text := mod.String()
	for _, want := range []string{"gs[0] = r0", "g[0]["} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q:\n%s", want, text)
		}
	}
	if len(mod.GlobalNames) != 1 || len(mod.GlobalArrays) != 1 {
		t.Errorf("global tables wrong: %v %v", mod.GlobalNames, mod.GlobalArrays)
	}
}

func TestLowerEntryFunction(t *testing.T) {
	mod := compile(t, `func helper() { return 1; } func main() { return helper(); }`)
	if mod.EntryFunc != 1 {
		t.Errorf("EntryFunc = %d, want 1 (main)", mod.EntryFunc)
	}
	mod2 := compile(t, `func only() { return 1; }`)
	if mod2.EntryFunc != 0 {
		t.Errorf("EntryFunc without main = %d, want 0", mod2.EntryFunc)
	}
}

func TestLowerCallArguments(t *testing.T) {
	mod := compile(t, `
func f(a, b[], c) { return a + b[0] + c; }
func main() {
	var buf[4];
	buf[0] = 5;
	return f(1, buf, 2);
}
`)
	// Find the call and check the argument shapes.
	var call *ir.Instr
	for _, b := range mod.Funcs[1].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == ir.InstrCall {
				call = &b.Instrs[i]
			}
		}
	}
	if call == nil {
		t.Fatal("no call instruction")
	}
	if len(call.Args) != 3 || call.Args[0].IsArray || !call.Args[1].IsArray || call.Args[2].IsArray {
		t.Errorf("call argument shapes wrong: %+v", call.Args)
	}
}

func TestLowerScopedShadowingUsesDistinctRegisters(t *testing.T) {
	mod := compile(t, `
func main(x) {
	var y = 1;
	if (x) {
		var y = 2;
		out(y);
	}
	return y;
}
`)
	f := mod.Funcs[0]
	// x + outer y + inner y = at least 3 registers.
	if f.NumRegs < 3 {
		t.Errorf("NumRegs = %d, want >= 3\n%s", f.NumRegs, f.Body())
	}
}
