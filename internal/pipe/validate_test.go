package pipe

import (
	"strings"
	"testing"

	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/staticprof"
)

// TestValidateProfileEstimated: every benchmark's statically estimated
// profile must pass the same audit a measured profile does — the
// estimator promises flow conservation by construction.
func TestValidateProfileEstimated(t *testing.T) {
	for _, b := range bench.All() {
		mod, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		est, _ := staticprof.Estimate(mod)
		if err := ValidateProfile(mod, est); err != nil {
			t.Errorf("%s: estimated profile rejected: %v", b.Name, err)
		}
	}
}

func TestValidateProfileRejects(t *testing.T) {
	mod, prof, _ := setup(t)

	if err := ValidateProfile(mod, nil); err == nil {
		t.Error("nil profile accepted")
	}
	if err := ValidateProfile(mod, &interp.Profile{}); err == nil {
		t.Error("wrong-shape profile accepted")
	}
	bad := interp.NewProfile(mod)
	bad.Funcs[0].BlockCounts[0] = 17 // executions with no inbound edges
	if err := ValidateProfile(mod, bad); err == nil {
		t.Error("non-conserving profile accepted")
	} else if !strings.Contains(err.Error(), "validating profile") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := ValidateProfile(mod, prof); err != nil {
		t.Errorf("measured profile rejected: %v", err)
	}
}

// TestRunSelfCheckRejectsWrongShapeProfile: a seeded profile whose
// dimensions don't match the module fails before the run starts.
func TestRunSelfCheckRejectsWrongShapeProfile(t *testing.T) {
	mod, prof, inputs := setup(t)
	l := layout.Identity(mod, prof, machine.Alpha21164())

	cfg := DefaultConfig()
	cfg.SelfCheck = true
	if _, _, err := Run(mod, l, inputs, cfg, interp.Options{Profile: &interp.Profile{}}); err == nil {
		t.Error("Run accepted a profile with the wrong shape")
	} else if !strings.Contains(err.Error(), "self-check before run") {
		t.Errorf("unexpected error: %v", err)
	}
}
