package pipe

import (
	"context"
	"strings"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// TestSelfCheckCleanRun: a healthy module/layout pair passes the
// SelfCheck-instrumented Run, including the post-run flow-conservation
// audit, and produces the same statistics as an unchecked run.
func TestSelfCheckCleanRun(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := align.NewTSP(1).Align(context.Background(), mod, prof, m)

	cfg := DefaultConfig()
	plain, _, err := Run(mod, l, inputs, cfg, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.SelfCheck = true
	checked, _, err := Run(mod, l, inputs, cfg, interp.Options{})
	if err != nil {
		t.Fatalf("self-checked run failed on healthy inputs: %v", err)
	}
	if checked != plain {
		t.Errorf("SelfCheck changed simulation stats:\nplain   %+v\nchecked %+v", plain, checked)
	}
}

// TestSelfCheckCatchesCorruptLayout: corrupting a layout order (duplicate
// entry — no longer a permutation) makes the self-checked Run and
// ReplayChecked fail before simulating, and Replay panic.
func TestSelfCheckCatchesCorruptLayout(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := align.NewTSP(1).Align(context.Background(), mod, prof, m)

	// Find a function with enough blocks to corrupt.
	fi := -1
	for i, fl := range l.Funcs {
		if len(fl.Order) >= 2 {
			fi = i
			break
		}
	}
	if fi < 0 {
		t.Fatal("no multi-block function in benchmark module")
	}
	saved := l.Funcs[fi].Order[1]
	l.Funcs[fi].Order[1] = l.Funcs[fi].Order[0]
	defer func() { l.Funcs[fi].Order[1] = saved }()

	cfg := DefaultConfig()
	cfg.SelfCheck = true
	if _, _, err := Run(mod, l, inputs, cfg, interp.Options{}); err == nil {
		t.Error("Run accepted a layout with a duplicated order entry")
	} else if !strings.Contains(err.Error(), "self-check") {
		t.Errorf("Run error does not mention self-check: %v", err)
	}

	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayChecked(tr, mod, l, cfg); err == nil {
		t.Error("ReplayChecked accepted a corrupt layout")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Replay with SelfCheck did not panic on a corrupt layout")
			}
		}()
		Replay(tr, mod, l, cfg)
	}()
}

// TestSelfCheckCatchesTamperedProfile: handing Run a pre-filled profile
// whose counts violate flow conservation trips the post-run audit. (Run
// accumulates into the caller's profile, so seeding it with garbage
// yields a non-conserving total.)
func TestSelfCheckCatchesTamperedProfile(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)

	bad := interp.NewProfile(mod)
	bad.Funcs[0].BlockCounts[0] += 17 // phantom executions with no edges

	cfg := DefaultConfig()
	cfg.SelfCheck = true
	if _, _, err := Run(mod, l, inputs, cfg, interp.Options{Profile: bad}); err == nil {
		t.Error("Run accepted a profile seeded with non-conserving counts")
	} else if !strings.Contains(err.Error(), "self-check after run") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestSelfCheckOrOptLayouts runs the full pipeline under SelfCheck with
// the solver's Or-opt family on (the default) and off: both layouts must
// pass the layout audit and the post-run flow-conservation check, and
// for each the self-checked simulation must equal the unchecked one.
// This is the end-to-end gate on the Or-opt move family — an invalid
// relocation would corrupt a block order or break flow conservation and
// fail here.
func TestSelfCheckOrOptLayouts(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	for _, disable := range []bool{false, true} {
		al := align.NewTSP(1)
		al.Opts.DisableOrOpt = disable
		l := al.Align(context.Background(), mod, prof, m)

		cfg := DefaultConfig()
		plain, _, err := Run(mod, l, inputs, cfg, interp.Options{})
		if err != nil {
			t.Fatalf("DisableOrOpt=%v: %v", disable, err)
		}
		cfg.SelfCheck = true
		checked, _, err := Run(mod, l, inputs, cfg, interp.Options{})
		if err != nil {
			t.Fatalf("DisableOrOpt=%v: self-checked run failed: %v", disable, err)
		}
		if checked != plain {
			t.Errorf("DisableOrOpt=%v: SelfCheck changed simulation stats:\nplain   %+v\nchecked %+v",
				disable, plain, checked)
		}
	}
}
