package pipe

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

func setup(t *testing.T) (*ir.Module, *interp.Profile, []interp.Input) {
	t.Helper()
	inputs := testutil.BranchyInput(600, 3)
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return mod, prof, inputs
}

func TestRunProducesConsistentStats(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	stats, res, err := Run(mod, l, inputs, DefaultConfig(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.Instructions == 0 {
		t.Fatal("empty simulation")
	}
	if stats.Cycles < stats.Instructions {
		t.Errorf("cycles %d below instruction count %d", stats.Cycles, stats.Instructions)
	}
	if stats.Cycles != stats.Instructions+stats.ControlPenalty+stats.CacheMisses*DefaultCache().MissPenalty {
		t.Errorf("cycle accounting inconsistent: %+v", stats)
	}
	if got := res.DynBranches() + res.DynRet; got != stats.Events {
		t.Errorf("events %d != dynamic terminators %d", stats.Events, got)
	}
	if stats.CPI() <= 1.0 {
		t.Errorf("CPI = %.3f, expected > 1 with penalties", stats.CPI())
	}
	if stats.MissRate() < 0 || stats.MissRate() > 1 {
		t.Errorf("MissRate = %f out of range", stats.MissRate())
	}
}

// TestAlignablePenaltyMatchesLayoutPenalty: simulating on the same input
// the layout was trained on, the simulator's alignable penalty must equal
// the compiler's ModulePenalty estimate exactly — the two implementations
// share the event model but compute it independently (per-execution vs
// aggregated).
func TestAlignablePenaltyMatchesLayoutPenalty(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	for _, a := range []align.Aligner{align.Original{}, align.PettisHansen{}, align.NewTSP(1)} {
		l := a.Align(context.Background(), mod, prof, m)
		stats, _, err := Run(mod, l, inputs, DefaultConfig(), interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := layout.ModulePenalty(mod, l, prof, m)
		if stats.AlignablePenalty != want {
			t.Errorf("%s: simulated alignable penalty %d != modeled penalty %d",
				a.Name(), stats.AlignablePenalty, want)
		}
	}
}

func TestRecordReplayMatchesDirectRun(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	direct, _, err := Run(mod, l, inputs, DefaultConfig(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed := Replay(tr, mod, l, DefaultConfig())
	if direct != replayed {
		t.Errorf("replayed stats differ from direct run:\n direct  %+v\n replay  %+v", direct, replayed)
	}
	if tr.Len() == 0 {
		t.Error("empty trace")
	}
}

func TestBetterLayoutsRunFaster(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	orig := Replay(tr, mod, align.Original{}.Align(context.Background(), mod, prof, m), cfg)
	greedy := Replay(tr, mod, align.PettisHansen{}.Align(context.Background(), mod, prof, m), cfg)
	tspStats := Replay(tr, mod, align.NewTSP(1).Align(context.Background(), mod, prof, m), cfg)
	if greedy.Cycles > orig.Cycles {
		t.Errorf("greedy cycles %d worse than original %d", greedy.Cycles, orig.Cycles)
	}
	if tspStats.Cycles > orig.Cycles {
		t.Errorf("TSP cycles %d worse than original %d", tspStats.Cycles, orig.Cycles)
	}
	if tspStats.AlignablePenalty > greedy.AlignablePenalty {
		t.Errorf("TSP alignable penalty %d worse than greedy %d", tspStats.AlignablePenalty, greedy.AlignablePenalty)
	}
}

func TestCacheDisabledRemovesMissCycles(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	cfg := DefaultConfig()
	withCache, _, err := Run(mod, l, inputs, cfg, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache.Disabled = true
	noCache, _, err := Run(mod, l, inputs, cfg, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if noCache.CacheMisses != 0 || noCache.CacheAccesses != 0 {
		t.Errorf("disabled cache still recorded activity: %+v", noCache)
	}
	if noCache.Cycles != withCache.Cycles-withCache.CacheMisses*cfg.Cache.MissPenalty {
		t.Errorf("cache-disabled cycles inconsistent")
	}
}

func TestTinyCacheThrashes(t *testing.T) {
	mod, prof, inputs := setup(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	big := DefaultConfig()
	small := DefaultConfig()
	small.Cache.SizeBytes = 64 // two lines: guaranteed conflict misses
	bigStats, _, err := Run(mod, l, inputs, big, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	smallStats, _, err := Run(mod, l, inputs, small, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if smallStats.CacheMisses <= bigStats.CacheMisses {
		t.Errorf("64B cache misses (%d) should exceed 8KB cache misses (%d)",
			smallStats.CacheMisses, bigStats.CacheMisses)
	}
}

func TestFixupJumpsAreFetched(t *testing.T) {
	// Construct a layout that displaces both successors of a hot
	// conditional so fixups execute, then check that the simulator counts
	// them and fetches their slots.
	src := `
func main(input[], n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (input[i] > 0) { s = s + 1; } else { s = s - 1; }
	}
	return s;
}
`
	data := make([]int64, 100)
	for i := range data {
		data[i] = int64(i%2*2 - 1) // alternate -1 / +1
	}
	inputs := []interp.Input{interp.ArrayInput(data), interp.ScalarInput(100)}
	mod, prof, _, err := testutil.CompileAndProfile(src, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	f := mod.Funcs[mod.EntryFunc]
	// Find a conditional block and push both its successors to the end of
	// the order, far from it.
	var condBlk = -1
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermCondBr && b == 0 {
			continue
		}
		if blk.Term.Kind == ir.TermCondBr {
			condBlk = b
			break
		}
	}
	if condBlk < 0 {
		t.Fatal("no conditional block found")
	}
	s0, s1 := f.Blocks[condBlk].Term.Succs[0], f.Blocks[condBlk].Term.Succs[1]
	var order []int
	order = append(order, 0)
	if condBlk != 0 {
		order = append(order, condBlk)
	}
	for b := range f.Blocks {
		if b != 0 && b != condBlk && b != s0 && b != s1 {
			order = append(order, b)
		}
	}
	if s0 != 0 && s0 != condBlk {
		order = append(order, s0)
	}
	if s1 != 0 && s1 != condBlk {
		order = append(order, s1)
	}
	l := &layout.Layout{}
	for fi, fn := range mod.Funcs {
		if fi == mod.EntryFunc {
			l.Funcs = append(l.Funcs, layout.Finalize(fn, prof.Funcs[fi], order, m))
			continue
		}
		id := make([]int, len(fn.Blocks))
		for i := range id {
			id[i] = i
		}
		l.Funcs = append(l.Funcs, layout.Finalize(fn, prof.Funcs[fi], id, m))
	}
	if err := l.Validate(mod); err != nil {
		t.Fatal(err)
	}
	stats, _, err := Run(mod, l, inputs, DefaultConfig(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FixupJumps == 0 {
		t.Error("expected fixup jumps to execute under the displacing layout")
	}
}

func TestTraceEncodingRoundTrip(t *testing.T) {
	cases := []struct{ fn, blk, succ int }{
		{0, 0, -1},
		{3, 17, 0},
		{1023, 4095, 42},
	}
	for _, c := range cases {
		e := uint64(c.fn)<<traceFnShift | uint64(c.blk)<<traceBlkShift | uint64(c.succ+1)
		fn := int(e >> traceFnShift)
		blk := int(e>>traceBlkShift) & traceBlkMask
		succ := int(e&traceSuccMask) - 1
		if fn != c.fn || blk != c.blk || succ != c.succ {
			t.Errorf("roundtrip (%d,%d,%d) -> (%d,%d,%d)", c.fn, c.blk, c.succ, fn, blk, succ)
		}
	}
}
