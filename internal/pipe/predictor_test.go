package pipe

import (
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

func TestTwoBitPredictorSaturation(t *testing.T) {
	p := newTwoBitPredictor(PredictorConfig{}.normalized())
	addr := int64(100)
	// Initially weakly not-taken.
	if got := p.predictDirection(addr, true); got {
		t.Error("fresh counter should predict not-taken")
	}
	// After two taken outcomes, predicts taken.
	p.predictDirection(addr, true)
	if got := p.predictDirection(addr, true); !got {
		t.Error("counter should have learned taken")
	}
	// A single not-taken does not flip a saturated counter.
	p.predictDirection(addr, false)
	if got := p.predictDirection(addr, true); !got {
		t.Error("2-bit hysteresis lost")
	}
}

func TestTwoBitPredictorAliasing(t *testing.T) {
	p := newTwoBitPredictor(PredictorConfig{DirectionEntries: 4, TargetEntries: 4})
	// Branches at addresses 0 and 4 alias in a 4-entry table; training
	// one the other way destroys the first's state.
	for i := 0; i < 4; i++ {
		p.predictDirection(0, true)
	}
	for i := 0; i < 4; i++ {
		p.predictDirection(4, false)
	}
	if p.predictDirection(0, true) {
		t.Error("aliased counter should have been retrained not-taken")
	}
}

func TestBTBPredictsLastTarget(t *testing.T) {
	p := newTwoBitPredictor(PredictorConfig{}.normalized())
	if p.predictTarget(8, 100) {
		t.Error("cold BTB should miss")
	}
	if !p.predictTarget(8, 100) {
		t.Error("warm BTB should hit on repeated target")
	}
	if p.predictTarget(8, 200) {
		t.Error("changed target should miss")
	}
}

// TestDynamicPredictionBeatsStaticOnBiasedFlippingBranch: a branch whose
// bias reverses mid-run defeats static prediction (trained on the whole
// profile) but a dynamic counter adapts.
func TestDynamicPredictionAdapts(t *testing.T) {
	src := `
func main(input[], n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (input[i] > 0) { s = s + 1; } else { s = s - 1; }
	}
	return s;
}
`
	// First half all positive, second half all negative: statically the
	// branch is 50/50 (max mispredicts on one half); dynamically it
	// mispredicts only at the phase change.
	data := make([]int64, 2000)
	for i := range data {
		if i < 1000 {
			data[i] = 1
		} else {
			data[i] = -1
		}
	}
	inputs := []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(len(data)))}
	mod, prof, _, err := testutil.CompileAndProfile(src, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	staticCfg := DefaultConfig()
	dynCfg := DefaultConfig()
	dynCfg.Predictor = PredictorConfig{Kind: PredictTwoBit}
	st := Replay(tr, mod, l, staticCfg)
	dy := Replay(tr, mod, l, dynCfg)
	if dy.CondMispredicts >= st.CondMispredicts {
		t.Errorf("dynamic mispredicts %d should be below static %d on phase-reversing branch",
			dy.CondMispredicts, st.CondMispredicts)
	}
	if dy.Cycles >= st.Cycles {
		t.Errorf("dynamic cycles %d should beat static %d here", dy.Cycles, st.Cycles)
	}
}

// TestTinyPredictorTablesAliasivelyWorse: shrinking the direction table
// to 2 entries must not reduce mispredicts versus a big table on a
// branchy workload (aliasing can only hurt) — the paper's footnote-6
// caveat about aliasing effects.
func TestTinyPredictorTablesAliasivelyWorse(t *testing.T) {
	inputs := testutil.BranchyInput(600, 17)
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := DefaultConfig()
	big.Predictor = PredictorConfig{Kind: PredictTwoBit, DirectionEntries: 65536, TargetEntries: 4096}
	tiny := DefaultConfig()
	tiny.Predictor = PredictorConfig{Kind: PredictTwoBit, DirectionEntries: 2, TargetEntries: 2}
	bigStats := Replay(tr, mod, l, big)
	tinyStats := Replay(tr, mod, l, tiny)
	if tinyStats.CondMispredicts < bigStats.CondMispredicts {
		t.Errorf("tiny table mispredicts (%d) below big table (%d)",
			tinyStats.CondMispredicts, bigStats.CondMispredicts)
	}
}

// TestDynamicModeStillChargesFixups: the fixup jump cost and fetch must
// be charged under both predictor modes.
func TestDynamicModeStillChargesFixups(t *testing.T) {
	inputs := testutil.BranchyInput(300, 29)
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Predictor = PredictorConfig{Kind: PredictTwoBit}
	dyn := Replay(tr, mod, l, cfg)
	static := Replay(tr, mod, l, DefaultConfig())
	if dyn.FixupJumps != static.FixupJumps {
		t.Errorf("fixup executions differ across predictor modes: %d vs %d (layout-determined, must match)",
			dyn.FixupJumps, static.FixupJumps)
	}
	if dyn.Instructions != static.Instructions {
		t.Errorf("fetched instructions differ across predictor modes")
	}
}
