package pipe

// PredictorKind selects the branch-prediction model used when the
// simulator charges control penalties.
type PredictorKind int

// Predictor kinds.
const (
	// PredictStatic is the paper's default: every conditional branch is
	// statically predicted toward its most common training-profile
	// successor; multiway branches toward their most common target.
	PredictStatic PredictorKind = iota
	// PredictTwoBit simulates hardware prediction: a table of 2-bit
	// saturating counters for conditional-branch directions (a classic
	// branch history table) plus a branch target buffer for multiway
	// targets, both indexed by branch address and therefore subject to
	// aliasing — the trace-driven simulation the paper's footnote 6
	// sketches, aliasing effects included.
	PredictTwoBit
)

// PredictorConfig sizes the dynamic tables.
type PredictorConfig struct {
	Kind PredictorKind
	// DirectionEntries is the number of 2-bit counters (power of two;
	// default 2048). Smaller tables alias more.
	DirectionEntries int
	// TargetEntries is the number of BTB slots for multiway targets
	// (power of two; default 512).
	TargetEntries int
}

func (c PredictorConfig) normalized() PredictorConfig {
	if c.DirectionEntries <= 0 {
		c.DirectionEntries = 2048
	}
	if c.TargetEntries <= 0 {
		c.TargetEntries = 512
	}
	return c
}

// twoBitPredictor holds the dynamic predictor state.
type twoBitPredictor struct {
	counters []uint8 // 2-bit saturating; >= 2 predicts taken
	targets  []int64 // predicted target address per BTB slot; -1 empty
}

func newTwoBitPredictor(cfg PredictorConfig) *twoBitPredictor {
	p := &twoBitPredictor{
		counters: make([]uint8, cfg.DirectionEntries),
		targets:  make([]int64, cfg.TargetEntries),
	}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
	}
	for i := range p.targets {
		p.targets[i] = -1
	}
	return p
}

// predictDirection returns the predicted direction for the branch at
// addr and updates the counter with the actual outcome.
func (p *twoBitPredictor) predictDirection(addr int64, taken bool) (predictedTaken bool) {
	idx := uint64(addr) % uint64(len(p.counters))
	predictedTaken = p.counters[idx] >= 2
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else if p.counters[idx] > 0 {
		p.counters[idx]--
	}
	return predictedTaken
}

// predictTarget returns whether the BTB correctly predicted the target
// address for the indirect branch at addr, updating the entry.
func (p *twoBitPredictor) predictTarget(addr, target int64) bool {
	idx := uint64(addr) % uint64(len(p.targets))
	hit := p.targets[idx] == target
	p.targets[idx] = target
	return hit
}
