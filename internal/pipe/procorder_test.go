package pipe

import (
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

// buildConflictModule constructs (with exact slot arithmetic) a module
// whose original function order aliases the two hot callees in a 512-byte
// direct-mapped cache: hotA sits at bytes 0..23 (sets 0-1), coldPad pads
// the address space to exactly one cache size, and hotB therefore lands
// on the same sets as hotA. main's loop calls both per iteration, so the
// original placement thrashes; procedure ordering moves the hot trio
// together.
func buildConflictModule(t *testing.T) *ir.Module {
	t.Helper()
	straightline := func(name string, adds int) *ir.Func {
		fb := ir.NewFuncBuilder(name, []ir.ParamKind{ir.ParamScalar})
		x := ir.Reg(0)
		for i := 0; i < adds; i++ {
			fb.EmitBin(x, ir.OpAdd, ir.RegVal(x), ir.ConstVal(1))
		}
		fb.Ret(ir.RegVal(x))
		return fb.Func()
	}
	hotA := straightline("hotA", 5)      // 6 slots: lines 0-1 (sets 0-1)
	coldPad := straightline("cold", 118) // 119 slots, base 8: ends at slot 127
	hotB := straightline("hotB", 5)      // base 128 = byte 512: sets 0-1 again

	fb := ir.NewFuncBuilder("main", []ir.ParamKind{ir.ParamScalar})
	n := ir.Reg(0)
	i := fb.NewReg()
	s := fb.NewReg()
	cond := fb.NewReg()
	head := fb.NewBlock("head")
	body := fb.NewBlock("body")
	exit := fb.NewBlock("exit")
	fb.EmitConst(i, 0)
	fb.EmitConst(s, 0)
	fb.Br(head)
	fb.SetInsert(head)
	fb.EmitBin(cond, ir.OpLt, ir.RegVal(i), ir.RegVal(n))
	fb.CondBr(ir.RegVal(cond), body, exit)
	fb.SetInsert(body)
	fb.EmitCall(s, 0, []ir.Arg{ir.ScalarArg(ir.RegVal(s))})
	fb.EmitCall(s, 2, []ir.Arg{ir.ScalarArg(ir.RegVal(s))})
	fb.EmitBin(i, ir.OpAdd, ir.RegVal(i), ir.ConstVal(1))
	fb.Br(head)
	fb.SetInsert(exit)
	fb.Ret(ir.RegVal(s))

	mod := &ir.Module{Funcs: []*ir.Func{hotA, coldPad, hotB, fb.Func()}, EntryFunc: 3}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestProcedureOrderingReducesConflictMisses exercises the
// interprocedural extension end to end: a hot caller loops over two hot
// callees with a large cold function between them in module order. Under
// a small direct-mapped cache, the original placement aliases the hot
// lines; Pettis-Hansen procedure ordering moves the hot trio together
// and the conflict misses vanish.
func TestProcedureOrderingReducesConflictMisses(t *testing.T) {
	inputs := []interp.Input{interp.ScalarInput(20000)}
	mod := buildConflictModule(t)
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	// Sanity: the crafted aliasing actually happened (hotA and hotB share
	// cache sets under the original order).
	m0 := machine.Alpha21164()
	pm := layout.PlaceModule(mod, layout.Identity(mod, prof, m0))
	setOf := func(fi int) int64 { return pm.Funcs[fi].Base * layout.BytesPerSlot / 16 % 32 }
	if setOf(0) != setOf(2) {
		t.Fatalf("crafted conflict broken: hotA set %d, hotB set %d (bases %d, %d)",
			setOf(0), setOf(2), pm.Funcs[0].Base, pm.Funcs[2].Base)
	}
	l := layout.Identity(mod, prof, m0)
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cache = CacheConfig{SizeBytes: 512, LineBytes: 16, Ways: 1, MissPenalty: 10}

	plain := Replay(tr, mod, l, cfg)

	ordered := cfg
	ordered.FuncOrder = layout.OrderFunctions(mod, prof)
	reordered := Replay(tr, mod, l, ordered)

	if reordered.CacheMisses*2 > plain.CacheMisses {
		t.Errorf("procedure ordering should at least halve conflict misses: %d -> %d",
			plain.CacheMisses, reordered.CacheMisses)
	}
	if reordered.Cycles >= plain.Cycles {
		t.Errorf("procedure ordering should reduce cycles: %d -> %d", plain.Cycles, reordered.Cycles)
	}
	// Control penalties are untouched by function order: only cache
	// behavior changes.
	if reordered.ControlPenalty != plain.ControlPenalty {
		t.Errorf("function order must not change control penalties: %d vs %d",
			plain.ControlPenalty, reordered.ControlPenalty)
	}
}

// TestFuncOrderPreservesSemanticsOfReplay: replaying the same trace with
// any function order yields identical event and instruction counts.
func TestFuncOrderPreservesSemanticsOfReplay(t *testing.T) {
	inputs := testutil.BranchyInput(300, 5)
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, inputs)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	tr, _, err := Record(mod, inputs, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := Replay(tr, mod, l, DefaultConfig())
	cfg := DefaultConfig()
	// Reverse function order.
	order := make([]int, len(mod.Funcs))
	for i := range order {
		order[i] = len(mod.Funcs) - 1 - i
	}
	cfg.FuncOrder = order
	rev := Replay(tr, mod, l, cfg)
	if rev.Events != plain.Events || rev.Instructions != plain.Instructions {
		t.Errorf("function order changed replay accounting: %+v vs %+v", rev, plain)
	}
	if rev.AlignablePenalty != plain.AlignablePenalty {
		t.Errorf("function order changed alignable penalties")
	}
}
