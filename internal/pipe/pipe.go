// Package pipe is a trace-driven pipeline and instruction-cache
// simulator standing in for the paper's AlphaStation 500/266
// measurements. It replays the dynamic basic-block trace of a program
// under a given code layout and charges:
//
//   - one cycle per fetched instruction slot (ideal single-issue base),
//   - the machine model's control penalties per executed terminator
//     (exactly the quantities branch alignment minimizes), and
//   - a miss penalty per instruction-cache line miss (a set-associative
//     LRU cache scaled from the Alpha 21164's 8 KB L1; see DefaultCache).
//
// The cache term is deliberately *not* part of the alignment cost model;
// it reproduces the paper's observation that "good branch alignments also
// appear to be good for caching", giving TSP layouts a larger win in
// simulated execution time than their control-penalty advantage alone
// predicts.
package pipe

import (
	"fmt"

	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
)

// Cost aliases the shared cycle type.
type Cost = machine.Cost

// CacheConfig describes a set-associative instruction cache with LRU
// replacement (Ways = 1 gives the direct-mapped 21164 geometry).
type CacheConfig struct {
	// SizeBytes is the total capacity (must be a multiple of
	// LineBytes*Ways).
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the set associativity (<= 0 means direct-mapped).
	Ways int
	// MissPenalty is charged per line miss, in cycles.
	MissPenalty Cost
	// Disabled turns the cache model off (no misses charged).
	Disabled bool
}

// DefaultCache returns the default I-cache: direct-mapped with a 10-cycle
// miss penalty (L2 latency), shaped like the Alpha 21164's 8 KB L1 but
// scaled to this repository's benchmark programs. The Mini-C benchmarks
// are roughly two orders of magnitude smaller than their SPEC92
// counterparts (about 0.5-1.5 KB of code vs. 100 KB+), so the capacity is
// scaled by the same factor: a 512-byte cache with 16-byte lines keeps
// the paper-relevant regime where hot paths contend for cache space and
// code layout visibly changes the miss rate. Alpha21164Cache returns the
// unscaled geometry.
func DefaultCache() CacheConfig {
	return CacheConfig{SizeBytes: 512, LineBytes: 16, Ways: 2, MissPenalty: 10}
}

// Alpha21164Cache returns the actual Alpha 21164 L1 I-cache geometry
// (8 KB direct-mapped, 32-byte lines). With the small Mini-C benchmarks
// everything fits, so layout-dependent cache behavior vanishes; use
// DefaultCache for the paper-shaped experiments.
func Alpha21164Cache() CacheConfig {
	return CacheConfig{SizeBytes: 8192, LineBytes: 32, Ways: 1, MissPenalty: 10}
}

// Config bundles the simulation parameters.
type Config struct {
	Model machine.Model
	Cache CacheConfig
	// Predictor selects static (paper default) or dynamic two-bit
	// prediction for charging penalties.
	Predictor PredictorConfig
	// FuncOrder, when non-nil, places functions in this order instead of
	// module order (interprocedural procedure ordering; see
	// layout.OrderFunctions).
	FuncOrder []int
	// SelfCheck is the debug flag that runs the invariant checker
	// (package check) around the simulation: the module and layout are
	// audited before replay (structure, permutation validity, patch
	// equivalence, placement and cost bookkeeping) and, when the run
	// collects a profile, flow conservation is verified afterwards.
	// Violations surface as errors from Run / RunChecked.
	SelfCheck bool
	// Obs, when non-nil, is the parent span simulation telemetry is
	// recorded under: Run and Replay emit one span per simulation
	// carrying the final Stats (cycles, CPI, cache miss rate,
	// mispredicts). The simulator hot loop is not instrumented — the
	// stats are accumulated anyway — so tracing costs nothing per event.
	Obs *obs.Span
}

// place builds the placed module respecting Config.FuncOrder.
func (c Config) place(mod *ir.Module, l *layout.Layout) *layout.PlacedModule {
	if c.FuncOrder != nil {
		return layout.PlaceModuleOrdered(mod, l, c.FuncOrder)
	}
	return layout.PlaceModule(mod, l)
}

// DefaultConfig returns the paper's machine: Alpha 21164 penalties with
// the default I-cache.
func DefaultConfig() Config {
	return Config{Model: machine.Alpha21164(), Cache: DefaultCache()}
}

// Stats summarizes a simulated execution.
type Stats struct {
	// Cycles is the simulated execution time.
	Cycles Cost
	// Instructions counts fetched instruction slots (incl. fixup jumps).
	Instructions int64
	// ControlPenalty is the cycles lost to branch penalties, including
	// the layout-independent call/return misfetches.
	ControlPenalty Cost
	// AlignablePenalty is the part of ControlPenalty that layout can
	// change (excludes calls and returns); it should track
	// layout.ModulePenalty.
	AlignablePenalty Cost
	// CacheAccesses and CacheMisses count I-cache line lookups and
	// misses.
	CacheAccesses int64
	CacheMisses   int64
	// FixupJumps counts executions that flowed through inserted fixup
	// blocks.
	FixupJumps int64
	// CondMispredicts and MultiMispredicts count mispredicted conditional
	// and multiway branches (under whichever predictor is configured).
	CondMispredicts  int64
	MultiMispredicts int64
	// Events counts trace events replayed.
	Events int64
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// MissRate returns the I-cache miss rate.
func (s Stats) MissRate() float64 {
	if s.CacheAccesses == 0 {
		return 0
	}
	return float64(s.CacheMisses) / float64(s.CacheAccesses)
}

// Simulator replays edge-trace events against a placed module.
type Simulator struct {
	pm    *layout.PlacedModule
	cfg   Config
	succs [][]int // layout successor per [func][block]
	// tags[set*ways+way] holds resident line tags (-1 = invalid); lru
	// holds per-entry access stamps for LRU replacement within a set.
	tags  []int64
	lru   []int64
	clock int64
	sets  int
	ways  int
	pred  *twoBitPredictor // nil for static prediction
	stats Stats
}

// NewSimulator prepares a simulator for the given placement.
func NewSimulator(pm *layout.PlacedModule, cfg Config) *Simulator {
	if cfg.Cache.LineBytes <= 0 || cfg.Cache.SizeBytes < cfg.Cache.LineBytes {
		cfg.Cache = DefaultCache()
	}
	ways := cfg.Cache.Ways
	if ways <= 0 {
		ways = 1
	}
	s := &Simulator{
		pm:   pm,
		cfg:  cfg,
		ways: ways,
		sets: cfg.Cache.SizeBytes / cfg.Cache.LineBytes / ways,
	}
	if s.sets < 1 {
		s.sets = 1
	}
	if cfg.Predictor.Kind == PredictTwoBit {
		s.pred = newTwoBitPredictor(cfg.Predictor.normalized())
	}
	s.tags = make([]int64, s.sets*s.ways)
	s.lru = make([]int64, s.sets*s.ways)
	for i := range s.tags {
		s.tags[i] = -1
	}
	for fi, f := range pm.Mod.Funcs {
		s.succs = append(s.succs, pm.Funcs[fi].FL.LayoutSuccessors(f))
	}
	return s
}

// fetch charges the fetch of size instruction slots starting at slot
// address addr: base cycles plus cache misses.
func (s *Simulator) fetch(addr, size int64) {
	s.stats.Instructions += size
	s.stats.Cycles += size
	if s.cfg.Cache.Disabled || size == 0 {
		return
	}
	lineBytes := int64(s.cfg.Cache.LineBytes)
	first := addr * layout.BytesPerSlot / lineBytes
	last := (addr + size - 1) * layout.BytesPerSlot / lineBytes
	for line := first; line <= last; line++ {
		s.stats.CacheAccesses++
		s.clock++
		set := int(line % int64(s.sets))
		base := set * s.ways
		hit := false
		victim := base
		for w := 0; w < s.ways; w++ {
			e := base + w
			if s.tags[e] == line {
				hit = true
				s.lru[e] = s.clock
				break
			}
			if s.lru[e] < s.lru[victim] {
				victim = e
			}
		}
		if !hit {
			s.tags[victim] = line
			s.lru[victim] = s.clock
			s.stats.CacheMisses++
			s.stats.Cycles += s.cfg.Cache.MissPenalty
		}
	}
}

// OnEdge consumes one trace event: block `block` of function `fn`
// executed and left through successor index succIdx (-1 for return).
//
// Penalties are computed from the transfer's direction (layout.TakenPath)
// and the configured predictor. With static prediction this reproduces
// layout.Exec exactly (TestAlignablePenaltyMatchesLayoutPenalty pins the
// equality); with the two-bit predictor the same transfers are charged
// against simulated hardware state instead.
func (s *Simulator) OnEdge(fn, block, succIdx int) {
	s.stats.Events++
	pf := s.pm.Funcs[fn]
	f := s.pm.Mod.Funcs[fn]
	s.fetch(pf.Addr[block], pf.Size[block])
	if succIdx < 0 {
		// Return: charge the return misfetch plus the call that brought
		// us here (calls and returns pair up; layout cannot change them).
		pen := s.cfg.Model.RetCost + s.cfg.Model.CallCost
		s.stats.Cycles += pen
		s.stats.ControlPenalty += pen
		return
	}
	fl := pf.FL
	layoutSucc := s.succs[fn][block]
	blk := f.Blocks[block]
	taken, viaFixup := fl.TakenPath(f, block, succIdx, layoutSucc)
	branchAddr := pf.Addr[block] + pf.Size[block] - 1
	m := s.cfg.Model
	var pen Cost
	switch blk.Term.Kind {
	case ir.TermBr:
		if taken {
			pen = m.JumpCost
		}
	case ir.TermCondBr:
		var predictedTaken bool
		if s.pred != nil {
			predictedTaken = s.pred.predictDirection(branchAddr, taken)
		} else {
			predictedTaken = fl.PredictedTaken(f, block, layoutSucc)
		}
		switch {
		case predictedTaken == taken && taken:
			pen = m.CondTakenCorrect
		case predictedTaken == taken:
			pen = m.CondFallthroughCorrect
		default:
			pen = m.CondMispredict
			s.stats.CondMispredicts++
		}
		if viaFixup {
			pen += m.JumpCost
		}
	case ir.TermSwitch:
		target := blk.Term.Succs[succIdx]
		var correct bool
		if s.pred != nil {
			correct = s.pred.predictTarget(branchAddr, pf.Addr[target])
		} else {
			correct = succIdx == fl.Pred[block]
		}
		switch {
		case correct && target == layoutSucc:
			pen = m.MultiCorrectFallthrough
		case correct:
			pen = m.MultiCorrectTaken
		default:
			pen = m.MultiMispredict
			s.stats.MultiMispredicts++
		}
	}
	s.stats.Cycles += pen
	s.stats.ControlPenalty += pen
	s.stats.AlignablePenalty += pen
	if viaFixup {
		s.stats.FixupJumps++
		s.fetch(pf.FixupAddr[block], 1)
	}
}

// Stats returns the accumulated statistics.
func (s *Simulator) Stats() Stats { return s.stats }

// statsAttrs flattens simulation statistics into span attributes.
func statsAttrs(st Stats) []obs.Attr {
	return []obs.Attr{
		obs.Int("cycles", int64(st.Cycles)),
		obs.Int("instructions", st.Instructions),
		obs.Int("control_penalty", int64(st.ControlPenalty)),
		obs.Int("alignable_penalty", int64(st.AlignablePenalty)),
		obs.Int("cache_accesses", st.CacheAccesses),
		obs.Int("cache_misses", st.CacheMisses),
		obs.Float("miss_rate", st.MissRate()),
		obs.Float("cpi", st.CPI()),
		obs.Int("fixup_jumps", st.FixupJumps),
		obs.Int("cond_mispredicts", st.CondMispredicts),
		obs.Int("multi_mispredicts", st.MultiMispredicts),
		obs.Int("events", st.Events),
	}
}

// endSim closes a simulation span with the final statistics and feeds
// the trace-level cache counters.
func endSim(sp *obs.Span, st Stats) {
	if sp == nil {
		return
	}
	sp.Count("pipe.cache_accesses", st.CacheAccesses)
	sp.Count("pipe.cache_misses", st.CacheMisses)
	sp.End(statsAttrs(st)...)
}

// Run interprets mod on inputs while simulating the given layout, and
// returns the simulation statistics together with the interpreter result.
//
// With cfg.SelfCheck set, the invariant checker audits the module and
// layout before the simulation starts and verifies flow conservation of
// the run's profile afterwards; any violation is returned as an error.
func Run(mod *ir.Module, l *layout.Layout, inputs []interp.Input, cfg Config, opts interp.Options) (Stats, interp.Result, error) {
	if cfg.SelfCheck {
		r := check.Module(mod)
		r.Merge(check.LayoutStructure(mod, l))
		if err := r.Err(); err != nil {
			return Stats{}, interp.Result{}, fmt.Errorf("pipe: self-check before run: %w", err)
		}
		// A caller-seeded profile must at least match the module's shape
		// before the interpreter accumulates into it; conservation of the
		// total is audited after the run (the seed may be a legitimate
		// prior run being extended).
		if opts.Profile != nil {
			if err := opts.Profile.CheckShape(mod); err != nil {
				return Stats{}, interp.Result{}, fmt.Errorf("pipe: self-check before run: %w", err)
			}
		} else {
			opts.Profile = interp.NewProfile(mod)
		}
	}
	sp := cfg.Obs.Child("pipe.run")
	pm := cfg.place(mod, l)
	sim := NewSimulator(pm, cfg)
	opts.EdgeTrace = sim.OnEdge
	res, err := interp.Run(mod, inputs, opts)
	if err != nil {
		sp.End(obs.Bool("failed", true))
		return Stats{}, res, err
	}
	if cfg.SelfCheck {
		if err := ValidateProfile(mod, opts.Profile); err != nil {
			sp.End(obs.Bool("failed", true))
			return Stats{}, res, fmt.Errorf("pipe: self-check after run: %w", err)
		}
	}
	endSim(sp, sim.Stats())
	return sim.Stats(), res, nil
}

// ValidateProfile audits a profile that did not come from this process's
// own instrumented run — one read from disk, or estimated statically by
// internal/staticprof — against mod: dimensional shape first, then exact
// flow conservation (check.Flow). Estimated profiles must meet the same
// bar as measured ones; the estimator guarantees conservation by
// construction, so a violation here is an estimator or transport bug.
func ValidateProfile(mod *ir.Module, prof *interp.Profile) error {
	if prof == nil {
		return fmt.Errorf("pipe: validating profile: profile is nil")
	}
	if err := prof.CheckShape(mod); err != nil {
		return fmt.Errorf("pipe: validating profile: %w", err)
	}
	if err := check.Flow(mod, prof).Err(); err != nil {
		return fmt.Errorf("pipe: validating profile: %w", err)
	}
	return nil
}

// Trace is a recorded edge trace, replayable under different layouts so
// that layout comparisons share one program execution.
type Trace struct {
	events []uint64
}

const (
	traceFnShift  = 40
	traceBlkShift = 16
	traceSuccMask = (1 << traceBlkShift) - 1
	traceBlkMask  = (1 << (traceFnShift - traceBlkShift)) - 1
)

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Record executes mod on inputs and records the edge trace.
func Record(mod *ir.Module, inputs []interp.Input, opts interp.Options) (*Trace, interp.Result, error) {
	tr := &Trace{}
	opts.EdgeTrace = func(fn, block, succIdx int) {
		if fn > traceSuccMask || block > traceBlkMask || succIdx+1 > traceSuccMask {
			panic(fmt.Sprintf("pipe: trace encoding overflow (fn=%d block=%d succ=%d)", fn, block, succIdx))
		}
		tr.events = append(tr.events,
			uint64(fn)<<traceFnShift|uint64(block)<<traceBlkShift|uint64(succIdx+1))
	}
	res, err := interp.Run(mod, inputs, opts)
	if err != nil {
		return nil, res, err
	}
	return tr, res, nil
}

// Replay simulates a recorded trace under the given layout. With
// cfg.SelfCheck set it panics on a module or layout invariant violation
// (use ReplayChecked to get the violation as an error instead).
func Replay(tr *Trace, mod *ir.Module, l *layout.Layout, cfg Config) Stats {
	if cfg.SelfCheck {
		st, err := ReplayChecked(tr, mod, l, cfg)
		if err != nil {
			panic(err)
		}
		return st
	}
	sp := cfg.Obs.Child("pipe.replay", obs.Int("trace_events", int64(tr.Len())))
	pm := cfg.place(mod, l)
	sim := NewSimulator(pm, cfg)
	for _, e := range tr.events {
		fn := int(e >> traceFnShift)
		block := int(e>>traceBlkShift) & traceBlkMask
		succ := int(e&traceSuccMask) - 1
		sim.OnEdge(fn, block, succ)
	}
	endSim(sp, sim.Stats())
	return sim.Stats()
}

// ReplayChecked is Replay with the invariant checker run first: the
// module and the layout are audited (structure, permutation validity,
// patch equivalence, placement) and a violation is returned as an error
// instead of replaying a trace against a corrupt layout.
func ReplayChecked(tr *Trace, mod *ir.Module, l *layout.Layout, cfg Config) (Stats, error) {
	r := check.Module(mod)
	r.Merge(check.LayoutStructure(mod, l))
	if err := r.Err(); err != nil {
		return Stats{}, fmt.Errorf("pipe: self-check before replay: %w", err)
	}
	cfg.SelfCheck = false
	return Replay(tr, mod, l, cfg), nil
}
