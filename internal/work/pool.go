// Package work provides the one bounded worker pool the whole pipeline
// schedules CPU-bound fan-out on: per-function alignment solves (package
// align, the engine) and per-run solver parallelism inside one
// tsp.Solve. Routing both layers through a single Pool keeps their
// composition bounded — aligning many functions in parallel while each
// function's multi-start protocol also runs in parallel can never
// oversubscribe the machine with more than Cap simultaneously executing
// tasks (plus the caller goroutines themselves for nested fan-out).
//
// The pool deliberately has no task queue and no returned futures: work
// is submitted as an indexed batch (Each / Nested) and the call returns
// when every index has run. Two submission modes cover the two layers:
//
//   - Each is the top-level mode: helper goroutines block until a pool
//     token frees up, the caller waits. Concurrently executing tasks
//     are bounded by Cap exactly, which is the engine's "at most
//     Workers per-function solves across all requests" contract.
//   - Nested is the inner mode, safe to call from inside an Each task:
//     the calling goroutine executes tasks itself and extra helpers
//     join only while tokens are free (non-blocking acquisition), so a
//     saturated pool degrades to sequential execution in the caller
//     instead of deadlocking on tokens its own ancestors hold.
//
// Schedule independence is the callers' responsibility and their
// contract: every batch writes results by index and derives any
// randomness from the index, so the pool's interleaving is never
// observable in results (only in wall-clock).
package work

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded set of worker tokens. The zero Pool is not usable;
// a nil *Pool is valid and degrades every batch to sequential execution
// in the caller.
type Pool struct {
	tokens  chan struct{}
	active  atomic.Int64
	waiting atomic.Int64
	onWait  atomic.Pointer[func(time.Duration)]
}

// NewPool returns a pool allowing up to n concurrently executing helper
// workers. n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{tokens: make(chan struct{}, n)}
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, sized to GOMAXPROCS at first
// use. Library callers without an explicitly injected pool (the balign
// CLI, package align's per-function loops) default to it, so every
// layer of one process draws from the same token budget.
func Shared() *Pool {
	sharedOnce.Do(func() { shared = NewPool(0) })
	return shared
}

// Cap returns the maximum number of concurrent helper workers (0 on a
// nil pool).
func (p *Pool) Cap() int {
	if p == nil {
		return 0
	}
	return cap(p.tokens)
}

// Active returns the number of tasks executing right now across all
// batches on this pool, including tasks running in caller goroutines of
// Nested batches. It is a live gauge for stats endpoints, not a
// synchronization primitive.
func (p *Pool) Active() int64 {
	if p == nil {
		return 0
	}
	return p.active.Load()
}

// Waiting returns the number of helper goroutines currently blocked on
// a pool token — the pool's queue depth. Only Each helpers queue
// (Nested acquisition is non-blocking by design), so a non-zero value
// means top-level fan-out is contending for workers. Like Active, a
// live gauge for metrics endpoints, not a synchronization primitive.
func (p *Pool) Waiting() int64 {
	if p == nil {
		return 0
	}
	return p.waiting.Load()
}

// SetWaitObserver installs fn to be called with each Each helper's
// token-acquisition wait — the pool's queue-wait distribution. fn must
// be safe for concurrent use and cheap (it runs once per helper, not
// per task). A nil fn removes the observer. Safe to call at any time;
// on a nil pool it is a no-op. Observation never perturbs results:
// waits change wall-clock only, never task outcomes (the pool's
// schedule-independence contract).
func (p *Pool) SetWaitObserver(fn func(time.Duration)) {
	if p == nil {
		return
	}
	if fn == nil {
		p.onWait.Store(nil)
		return
	}
	p.onWait.Store(&fn)
}

// acquire blocks until a token is free, maintaining the queue-depth
// gauge and reporting the wait to the observer, if any.
func (p *Pool) acquire() {
	select {
	case p.tokens <- struct{}{}:
		// Fast path: a token was free; no queueing, no clock reads.
		return
	default:
	}
	p.waiting.Add(1)
	var start time.Time
	fn := p.onWait.Load()
	if fn != nil {
		start = time.Now()
	}
	p.tokens <- struct{}{}
	p.waiting.Add(-1)
	if fn != nil {
		(*fn)(time.Since(start))
	}
}

// batch tracks one Each/Nested invocation: the next undispatched index
// and the first panic raised by a task, re-raised in the submitting
// goroutine so a panicking task behaves like its sequential equivalent.
type batch struct {
	n    int
	fn   func(int)
	next atomic.Int64

	panicOnce sync.Once
	panicked  atomic.Bool
	panicVal  any
}

// drain runs tasks until the batch is exhausted (or a task panicked).
func (b *batch) drain(p *Pool) {
	for !b.panicked.Load() {
		i := int(b.next.Add(1) - 1)
		if i >= b.n {
			return
		}
		b.run(p, i)
	}
}

func (b *batch) run(p *Pool, i int) {
	if p != nil {
		p.active.Add(1)
		defer p.active.Add(-1)
	}
	defer func() {
		if r := recover(); r != nil {
			b.panicOnce.Do(func() {
				b.panicVal = r
				b.panicked.Store(true)
			})
		}
	}()
	b.fn(i)
}

// rethrow re-raises the batch's first task panic, if any, in the caller.
func (b *batch) rethrow() {
	if b.panicked.Load() {
		panic(fmt.Sprintf("work: task panicked: %v", b.panicVal))
	}
}

// Each runs fn(0), ..., fn(n-1) on the pool and returns when all calls
// (and their effects) are complete. Up to min(n, Cap) helper goroutines
// execute the batch; each blocks until a pool token is free, so
// concurrently executing tasks never exceed Cap even across concurrent
// Each calls. The caller's goroutine only waits.
//
// Each must not be called from inside a task running on the same pool —
// its blocking token acquisition could then deadlock on tokens held by
// its own ancestors; use Nested there. On a nil pool (or n == 1) the
// batch runs sequentially in the caller.
func (p *Pool) Each(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || n == 1 {
		b := &batch{n: n, fn: fn}
		b.drain(p)
		b.rethrow()
		return
	}
	b := &batch{n: n, fn: fn}
	helpers := n
	if c := cap(p.tokens); helpers > c {
		helpers = c
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.acquire()
			defer func() { <-p.tokens }()
			b.drain(p)
		}()
	}
	wg.Wait()
	b.rethrow()
}

// Nested runs fn(0), ..., fn(n-1) with the calling goroutine as one
// executor and up to limit-1 helpers joining while pool tokens are free
// (non-blocking acquisition — a saturated pool runs the whole batch in
// the caller). limit <= 0 means no extra cap beyond the pool's. Safe to
// call from inside a task already running on p: the caller always makes
// progress, so nested fan-out cannot deadlock, and helper tokens keep
// the process-wide executing-task count bounded by Cap plus the number
// of concurrent callers (each of which is itself either a request
// goroutine or a token-holding worker).
func (p *Pool) Nested(n, limit int, fn func(int)) {
	if n <= 0 {
		return
	}
	b := &batch{n: n, fn: fn}
	if p == nil || n == 1 || limit == 1 {
		b.drain(p)
		b.rethrow()
		return
	}
	helpers := n - 1
	if limit > 0 && helpers > limit-1 {
		helpers = limit - 1
	}
	var wg sync.WaitGroup
	spawned := 0
	for ; spawned < helpers; spawned++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				b.drain(p)
			}()
		default:
			spawned = helpers // pool saturated: stop trying
		}
	}
	b.drain(p) // the caller is always an executor
	wg.Wait()
	b.rethrow()
}
