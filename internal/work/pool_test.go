package work

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEachRunsAllIndices checks every index runs exactly once and the
// call blocks until all effects are visible.
func TestEachRunsAllIndices(t *testing.T) {
	for _, cap := range []int{1, 2, 8} {
		p := NewPool(cap)
		const n = 100
		got := make([]int32, n)
		p.Each(n, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("cap=%d: index %d ran %d times, want 1", cap, i, c)
			}
		}
	}
}

// TestNestedRunsAllIndices checks Nested covers every index once, at
// several limits including the sequential degradations.
func TestNestedRunsAllIndices(t *testing.T) {
	p := NewPool(4)
	for _, limit := range []int{0, 1, 2, 16} {
		const n = 57
		got := make([]int32, n)
		p.Nested(n, limit, func(i int) { atomic.AddInt32(&got[i], 1) })
		for i, c := range got {
			if c != 1 {
				t.Fatalf("limit=%d: index %d ran %d times, want 1", limit, i, c)
			}
		}
	}
}

// TestNilPoolSequential checks the nil-pool degradation runs everything
// in the caller, in order.
func TestNilPoolSequential(t *testing.T) {
	var p *Pool
	var order []int
	p.Each(5, func(i int) { order = append(order, i) })
	p.Nested(5, 0, func(i int) { order = append(order, i) })
	want := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("ran %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (nil pool must be sequential in-order)", i, order[i], want[i])
		}
	}
}

// TestEachBoundsConcurrency checks that concurrently executing tasks
// never exceed the pool cap, even across overlapping Each calls.
func TestEachBoundsConcurrency(t *testing.T) {
	const capN = 3
	p := NewPool(capN)
	var cur, max atomic.Int64
	task := func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	}
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Each(20, task)
		}()
	}
	wg.Wait()
	if got := max.Load(); got > capN {
		t.Fatalf("observed %d concurrent tasks, cap is %d", got, capN)
	}
}

// TestNestedInsideEachNoDeadlock is the composition the solver relies
// on: every top-level task (holding a pool token) fans out again via
// Nested. With cap 2 and 4 outer tasks the pool is saturated, so inner
// batches must make progress in their callers rather than deadlock.
func TestNestedInsideEachNoDeadlock(t *testing.T) {
	p := NewPool(2)
	var inner atomic.Int64
	done := make(chan struct{})
	go func() {
		p.Each(4, func(int) {
			p.Nested(8, 0, func(int) {
				inner.Add(1)
				time.Sleep(50 * time.Microsecond)
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested fan-out deadlocked")
	}
	if got := inner.Load(); got != 32 {
		t.Fatalf("inner tasks ran %d times, want 32", got)
	}
}

// TestEachPanicPropagates checks a task panic re-raises in the caller
// with the original value, and the pool stays usable afterwards.
func TestEachPanicPropagates(t *testing.T) {
	p := NewPool(2)
	check := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: panic did not propagate", name)
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
				t.Fatalf("%s: recovered %v, want message containing original value", name, r)
			}
		}()
		f()
	}
	check("Each", func() { p.Each(10, func(i int) { panic("boom") }) })
	check("Nested", func() { p.Nested(10, 0, func(i int) { panic("boom") }) })
	// Pool must still work: tokens were all released.
	ran := make([]int32, 4)
	p.Each(4, func(i int) { atomic.AddInt32(&ran[i], 1) })
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("after panic: index %d ran %d times", i, c)
		}
	}
}

// TestSharedPool checks the process-wide pool is a GOMAXPROCS-sized
// singleton.
func TestSharedPool(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared() returned distinct pools")
	}
	if a.Cap() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Shared().Cap() = %d, want GOMAXPROCS = %d", a.Cap(), runtime.GOMAXPROCS(0))
	}
}

// TestActiveGauge checks Active tracks executing tasks and settles back
// to zero.
func TestActiveGauge(t *testing.T) {
	p := NewPool(2)
	var seen atomic.Int64
	p.Each(6, func(int) {
		if a := p.Active(); a > seen.Load() {
			seen.Store(a)
		}
		time.Sleep(50 * time.Microsecond)
	})
	if seen.Load() < 1 {
		t.Fatal("Active never observed a running task")
	}
	if got := p.Active(); got != 0 {
		t.Fatalf("Active = %d after batch completion, want 0", got)
	}
}

// TestCapNil covers the nil-pool accessors.
func TestCapNil(t *testing.T) {
	var p *Pool
	if p.Cap() != 0 || p.Active() != 0 {
		t.Fatal("nil pool accessors must return 0")
	}
	if got := NewPool(0).Cap(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Cap() = %d, want GOMAXPROCS", got)
	}
}

// TestQueueMetrics pins the queue-depth gauge and wait observer: with a
// one-token pool held by a blocked Each helper, a second Each must
// queue (Waiting = 1) and, once unblocked, report its wait.
func TestQueueMetrics(t *testing.T) {
	p := NewPool(1)
	var waits atomic.Int64
	p.SetWaitObserver(func(d time.Duration) {
		if d < 0 {
			t.Errorf("negative wait %v", d)
		}
		waits.Add(1)
	})

	block := make(chan struct{})
	started := make(chan struct{})
	first := make(chan struct{})
	go func() {
		defer close(first)
		once := sync.Once{}
		p.Each(2, func(int) {
			once.Do(func() { close(started) })
			<-block
		})
	}()
	<-started // the only token is now held, task 0 blocked

	second := make(chan struct{})
	go func() {
		defer close(second)
		p.Each(2, func(int) {})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second batch never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := p.Waiting(); got != 1 {
		t.Fatalf("Waiting = %d with one queued helper, want 1", got)
	}

	close(block)
	<-first
	<-second
	if got := p.Waiting(); got != 0 {
		t.Fatalf("Waiting = %d after batches drained, want 0", got)
	}
	if waits.Load() == 0 {
		t.Fatal("wait observer never called for the queued helper")
	}

	// Removing the observer must stick.
	p.SetWaitObserver(nil)
	n := waits.Load()
	p.Each(4, func(int) {})
	if waits.Load() != n {
		t.Fatal("observer called after removal")
	}
}

// TestWaitingNil covers the nil-pool queue accessors.
func TestWaitingNil(t *testing.T) {
	var p *Pool
	if p.Waiting() != 0 {
		t.Fatal("nil pool Waiting must be 0")
	}
	p.SetWaitObserver(func(time.Duration) {}) // must not panic
}
