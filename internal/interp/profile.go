package interp

import (
	"fmt"

	"branchalign/internal/ir"
)

// Profile accumulates CFG edge execution counts for every function of a
// module. It is the information the paper's branch-alignment algorithms
// consume: "a control-flow graph weighted with execution frequencies on
// edges (the frequencies are derived from the training input)".
type Profile struct {
	Funcs []*FuncProfile
	// CallCounts[caller][callee] counts dynamic calls, the weighted call
	// graph that interprocedural procedure ordering (layout.OrderFunctions)
	// consumes.
	CallCounts [][]int64
}

// FuncProfile holds counts for one function.
type FuncProfile struct {
	// BlockCounts[b] is the number of times block b was entered.
	BlockCounts []int64
	// EdgeCounts[b][i] is the number of times block b transferred control
	// to its i-th successor (indexing ir.Terminator.Succs).
	EdgeCounts [][]int64
}

// NewProfile allocates an empty profile shaped for mod.
func NewProfile(mod *ir.Module) *Profile {
	p := &Profile{}
	p.init(mod)
	return p
}

func (p *Profile) init(mod *ir.Module) {
	if p.Funcs != nil {
		return // already shaped; keep accumulating across runs
	}
	p.Funcs = make([]*FuncProfile, len(mod.Funcs))
	p.CallCounts = make([][]int64, len(mod.Funcs))
	for fi := range p.CallCounts {
		p.CallCounts[fi] = make([]int64, len(mod.Funcs))
	}
	for fi, f := range mod.Funcs {
		fp := &FuncProfile{
			BlockCounts: make([]int64, len(f.Blocks)),
			EdgeCounts:  make([][]int64, len(f.Blocks)),
		}
		for bi, b := range f.Blocks {
			fp.EdgeCounts[bi] = make([]int64, len(b.Term.Succs))
		}
		p.Funcs[fi] = fp
	}
}

// Merge adds the counts of other into p. The profiles must have the same
// shape (same module).
func (p *Profile) Merge(other *Profile) error {
	if len(p.Funcs) != len(other.Funcs) {
		return fmt.Errorf("interp: merging profiles of different modules (%d vs %d funcs)", len(p.Funcs), len(other.Funcs))
	}
	for fi := range p.Funcs {
		a, b := p.Funcs[fi], other.Funcs[fi]
		if len(a.BlockCounts) != len(b.BlockCounts) {
			return fmt.Errorf("interp: merging profiles with different block counts in func %d", fi)
		}
		for bi := range a.BlockCounts {
			a.BlockCounts[bi] += b.BlockCounts[bi]
			for si := range a.EdgeCounts[bi] {
				a.EdgeCounts[bi][si] += b.EdgeCounts[bi][si]
			}
		}
	}
	for fi := range p.CallCounts {
		for fj := range p.CallCounts[fi] {
			p.CallCounts[fi][fj] += other.CallCounts[fi][fj]
		}
	}
	return nil
}

// BranchSitesTouched counts the static conditional and multiway branch
// sites executed at least once (Table 1's "Branch Sites Touched").
func (p *Profile) BranchSitesTouched(mod *ir.Module) int {
	n := 0
	for fi, f := range mod.Funcs {
		fp := p.Funcs[fi]
		for bi, b := range f.Blocks {
			switch b.Term.Kind {
			case ir.TermCondBr, ir.TermSwitch:
				if fp.BlockCounts[bi] > 0 {
					n++
				}
			}
		}
	}
	return n
}

// BranchSitesStatic counts all static conditional and multiway branch
// sites in the module.
func BranchSitesStatic(mod *ir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			switch b.Term.Kind {
			case ir.TermCondBr, ir.TermSwitch:
				n++
			}
		}
	}
	return n
}

// HottestSuccessor returns, for block b of function fn, the successor
// index with the highest execution count (ties break toward the lower
// index, matching a deterministic static predictor) and that count. For
// blocks with no successors it returns (-1, 0).
func (p *Profile) HottestSuccessor(fn, b int) (int, int64) {
	edges := p.Funcs[fn].EdgeCounts[b]
	if len(edges) == 0 {
		return -1, 0
	}
	best, bestCount := 0, edges[0]
	for i := 1; i < len(edges); i++ {
		if edges[i] > bestCount {
			best, bestCount = i, edges[i]
		}
	}
	return best, bestCount
}
