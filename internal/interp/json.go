package interp

import (
	"encoding/json"
	"fmt"
	"io"

	"branchalign/internal/ir"
)

// WriteJSON serializes the profile. The paper's toolchain passed profile
// data between separate programs as files ("The TSP Matrix column shows
// the time to transform the profile data into DTSP problem matrices");
// this is the equivalent interchange format.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// ReadProfileJSON deserializes a profile and validates its shape against
// mod, so stale profiles from a different program version are rejected
// instead of corrupting alignment.
func ReadProfileJSON(r io.Reader, mod *ir.Module) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("interp: decoding profile: %w", err)
	}
	if err := p.CheckShape(mod); err != nil {
		return nil, err
	}
	return &p, nil
}

// CheckShape verifies that the profile's dimensions match mod.
func (p *Profile) CheckShape(mod *ir.Module) error {
	if len(p.Funcs) != len(mod.Funcs) {
		return fmt.Errorf("interp: profile has %d functions, module has %d", len(p.Funcs), len(mod.Funcs))
	}
	if len(p.CallCounts) != len(mod.Funcs) {
		return fmt.Errorf("interp: profile call matrix has %d rows, module has %d functions", len(p.CallCounts), len(mod.Funcs))
	}
	for fi, f := range mod.Funcs {
		fp := p.Funcs[fi]
		if fp == nil {
			return fmt.Errorf("interp: profile missing function %d (%s)", fi, f.Name)
		}
		if len(fp.BlockCounts) != len(f.Blocks) || len(fp.EdgeCounts) != len(f.Blocks) {
			return fmt.Errorf("interp: profile for %s has %d blocks, function has %d", f.Name, len(fp.BlockCounts), len(f.Blocks))
		}
		if len(p.CallCounts[fi]) != len(mod.Funcs) {
			return fmt.Errorf("interp: profile call matrix row %d has wrong width", fi)
		}
		for bi, b := range f.Blocks {
			if len(fp.EdgeCounts[bi]) != len(b.Term.Succs) {
				return fmt.Errorf("interp: profile for %s block b%d has %d edges, terminator has %d successors",
					f.Name, bi, len(fp.EdgeCounts[bi]), len(b.Term.Succs))
			}
			for si, c := range fp.EdgeCounts[bi] {
				if c < 0 {
					return fmt.Errorf("interp: negative edge count at %s b%d succ %d", f.Name, bi, si)
				}
			}
		}
	}
	return nil
}
