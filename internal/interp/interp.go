// Package interp executes IR modules directly. It plays the role of the
// paper's HALT-instrumented profiling runs: executing a program on a
// training input yields the CFG edge-frequency profile that drives branch
// alignment, and (optionally) the dynamic basic-block trace that drives
// the pipeline/cache simulator of package pipe.
package interp

import (
	"fmt"

	"branchalign/internal/ir"
)

// Input is one argument for the entry function.
type Input struct {
	IsArray bool
	Scalar  int64
	Array   []int64
}

// ScalarInput wraps a scalar entry argument.
func ScalarInput(v int64) Input { return Input{Scalar: v} }

// ArrayInput wraps an array entry argument (shared with the callee, as
// all arrays are).
func ArrayInput(a []int64) Input { return Input{IsArray: true, Array: a} }

// Options configures a run.
type Options struct {
	// MaxSteps bounds the number of executed IR instructions (0 means the
	// default of 2^31). Exceeding it aborts the run with an error.
	MaxSteps int64
	// MaxDepth bounds the call stack (0 means the default of 4096).
	MaxDepth int
	// Profile, when non-nil, accumulates edge counts during the run.
	Profile *Profile
	// Trace, when non-nil, is invoked for every basic block entered, in
	// execution order, with the function and block index.
	Trace func(fn, block int)
	// EdgeTrace, when non-nil, is invoked at every executed terminator
	// with the taken successor index (-1 for returns). Together with the
	// block identity this is the exact dynamic control-flow record the
	// pipeline simulator (package pipe) replays.
	EdgeTrace func(fn, block, succIdx int)
}

const (
	defaultMaxSteps = int64(1) << 31
	defaultMaxDepth = 4096
)

// Result summarizes a run.
type Result struct {
	// Ret is the entry function's return value.
	Ret int64
	// Output is the stream produced by the out() builtin.
	Output []int64
	// Steps counts executed IR instructions, including terminators.
	Steps int64
	// DynCond, DynSwitch, DynBr, DynRet and DynCall count executed
	// terminators and calls by kind (the paper's "executed branch
	// instructions" corresponds to DynCond + DynSwitch + DynBr).
	DynCond   int64
	DynSwitch int64
	DynBr     int64
	DynRet    int64
	DynCall   int64
}

// DynBranches returns the paper's "executed branch instructions" metric:
// intraprocedural control-transfer instructions executed.
func (r *Result) DynBranches() int64 { return r.DynCond + r.DynSwitch + r.DynBr }

// RuntimeError is an execution failure with location context.
type RuntimeError struct {
	Func  string
	Block int
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: %s (in %s, block b%d)", e.Msg, e.Func, e.Block)
}

type machine struct {
	mod      *ir.Module
	globals  []int64
	garrays  [][]int64
	opts     Options
	res      Result
	depth    int
	maxSteps int64
	maxDepth int
}

// Run executes the module's entry function with the given inputs.
func Run(mod *ir.Module, inputs []Input, opts Options) (Result, error) {
	m := &machine{
		mod:      mod,
		globals:  make([]int64, len(mod.GlobalNames)),
		garrays:  make([][]int64, len(mod.GlobalArrays)),
		opts:     opts,
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxDepth,
	}
	if m.maxSteps <= 0 {
		m.maxSteps = defaultMaxSteps
	}
	if m.maxDepth <= 0 {
		m.maxDepth = defaultMaxDepth
	}
	for i, g := range mod.GlobalArrays {
		m.garrays[i] = make([]int64, g.Size)
	}
	if opts.Profile != nil {
		opts.Profile.init(mod)
	}
	entry := mod.Funcs[mod.EntryFunc]
	if len(inputs) != len(entry.Params) {
		return Result{}, fmt.Errorf("interp: entry %s takes %d arguments, got %d", entry.Name, len(entry.Params), len(inputs))
	}
	frameArgs := make([]frameArg, len(inputs))
	for i, in := range inputs {
		if entry.Params[i] == ir.ParamArray {
			if !in.IsArray {
				return Result{}, fmt.Errorf("interp: entry argument %d must be an array", i)
			}
			frameArgs[i] = frameArg{isArray: true, arr: in.Array}
		} else {
			if in.IsArray {
				return Result{}, fmt.Errorf("interp: entry argument %d must be a scalar", i)
			}
			frameArgs[i] = frameArg{scalar: in.Scalar}
		}
	}
	ret, err := m.call(mod.EntryFunc, frameArgs)
	if err != nil {
		return Result{}, err
	}
	m.res.Ret = ret
	return m.res, nil
}

type frameArg struct {
	isArray bool
	scalar  int64
	arr     []int64
}

func (m *machine) call(fnIdx int, args []frameArg) (int64, error) {
	f := m.mod.Funcs[fnIdx]
	if m.depth >= m.maxDepth {
		return 0, &RuntimeError{Func: f.Name, Block: 0, Msg: fmt.Sprintf("call stack exceeded %d frames", m.maxDepth)}
	}
	m.depth++
	defer func() { m.depth-- }()

	regs := make([]int64, f.NumRegs)
	arrays := make([][]int64, 0, f.NumArrayParams()+len(f.LocalArraySizes))
	nextScalar := 0
	for i, a := range args {
		if f.Params[i] == ir.ParamArray {
			arrays = append(arrays, a.arr)
		} else {
			regs[nextScalar] = a.scalar
			nextScalar++
		}
	}
	for _, size := range f.LocalArraySizes {
		arrays = append(arrays, make([]int64, size))
	}

	var prof *FuncProfile
	if m.opts.Profile != nil {
		prof = m.opts.Profile.Funcs[fnIdx]
	}

	cur := 0
	for {
		blk := f.Blocks[cur]
		if m.opts.Trace != nil {
			m.opts.Trace(fnIdx, cur)
		}
		if prof != nil {
			prof.BlockCounts[cur]++
		}
		for i := range blk.Instrs {
			if err := m.exec(fnIdx, f, blk, &blk.Instrs[i], regs, arrays); err != nil {
				return 0, err
			}
		}
		m.res.Steps++
		if m.res.Steps > m.maxSteps {
			return 0, &RuntimeError{Func: f.Name, Block: cur, Msg: fmt.Sprintf("step budget of %d exceeded", m.maxSteps)}
		}
		t := &blk.Term
		switch t.Kind {
		case ir.TermBr:
			m.res.DynBr++
			if prof != nil {
				prof.EdgeCounts[cur][0]++
			}
			if m.opts.EdgeTrace != nil {
				m.opts.EdgeTrace(fnIdx, cur, 0)
			}
			cur = t.Succs[0]
		case ir.TermCondBr:
			m.res.DynCond++
			succIdx := 1
			if m.eval(t.Cond, regs) != 0 {
				succIdx = 0
			}
			if prof != nil {
				prof.EdgeCounts[cur][succIdx]++
			}
			if m.opts.EdgeTrace != nil {
				m.opts.EdgeTrace(fnIdx, cur, succIdx)
			}
			cur = t.Succs[succIdx]
		case ir.TermSwitch:
			m.res.DynSwitch++
			v := m.eval(t.Cond, regs)
			succIdx := len(t.Cases) // default
			for ci, cv := range t.Cases {
				if v == cv {
					succIdx = ci
					break
				}
			}
			if prof != nil {
				prof.EdgeCounts[cur][succIdx]++
			}
			if m.opts.EdgeTrace != nil {
				m.opts.EdgeTrace(fnIdx, cur, succIdx)
			}
			cur = t.Succs[succIdx]
		case ir.TermRet:
			m.res.DynRet++
			if m.opts.EdgeTrace != nil {
				m.opts.EdgeTrace(fnIdx, cur, -1)
			}
			return m.eval(t.Val, regs), nil
		}
	}
}

func (m *machine) eval(v ir.Value, regs []int64) int64 {
	if v.IsConst {
		return v.Const
	}
	return regs[v.Reg]
}

func (m *machine) exec(fnIdx int, f *ir.Func, blk *ir.Block, in *ir.Instr, regs []int64, arrays [][]int64) error {
	m.res.Steps++
	if m.res.Steps > m.maxSteps {
		return &RuntimeError{Func: f.Name, Block: blk.ID, Msg: fmt.Sprintf("step budget of %d exceeded", m.maxSteps)}
	}
	fail := func(format string, args ...any) error {
		return &RuntimeError{Func: f.Name, Block: blk.ID, Msg: fmt.Sprintf(format, args...)}
	}
	arrayFor := func(ref ir.ArrayRef) []int64 {
		if ref.Global {
			return m.garrays[ref.Index]
		}
		return arrays[ref.Index]
	}
	switch in.Kind {
	case ir.InstrConst, ir.InstrMove:
		regs[in.Dst] = m.eval(in.A, regs)
	case ir.InstrBin:
		a := m.eval(in.A, regs)
		b := m.eval(in.B, regs)
		r, err := binOp(in.Op, a, b)
		if err != nil {
			return fail("%v", err)
		}
		regs[in.Dst] = r
	case ir.InstrUn:
		a := m.eval(in.A, regs)
		if in.Op == ir.OpNeg {
			regs[in.Dst] = -a
		} else if a == 0 {
			regs[in.Dst] = 1
		} else {
			regs[in.Dst] = 0
		}
	case ir.InstrLoad:
		arr := arrayFor(in.Arr)
		idx := m.eval(in.A, regs)
		if idx < 0 || idx >= int64(len(arr)) {
			return fail("array read out of bounds: index %d, length %d", idx, len(arr))
		}
		regs[in.Dst] = arr[idx]
	case ir.InstrStore:
		arr := arrayFor(in.Arr)
		idx := m.eval(in.A, regs)
		if idx < 0 || idx >= int64(len(arr)) {
			return fail("array write out of bounds: index %d, length %d", idx, len(arr))
		}
		arr[idx] = m.eval(in.B, regs)
	case ir.InstrGLoad:
		regs[in.Dst] = m.globals[in.GIndex]
	case ir.InstrGStore:
		m.globals[in.GIndex] = m.eval(in.A, regs)
	case ir.InstrCall:
		m.res.DynCall++
		if m.opts.Profile != nil {
			m.opts.Profile.CallCounts[fnIdx][in.Callee]++
		}
		callArgs := make([]frameArg, len(in.Args))
		for i, a := range in.Args {
			if a.IsArray {
				callArgs[i] = frameArg{isArray: true, arr: arrayFor(a.Arr)}
			} else {
				callArgs[i] = frameArg{scalar: m.eval(a.Val, regs)}
			}
		}
		ret, err := m.call(in.Callee, callArgs)
		if err != nil {
			return err
		}
		regs[in.Dst] = ret
	case ir.InstrOut:
		m.res.Output = append(m.res.Output, m.eval(in.A, regs))
	default:
		return fail("unknown instruction kind %d", in.Kind)
	}
	return nil
}

// binOp applies a binary operator with Mini-C semantics: 64-bit wrapping
// arithmetic, comparisons yielding 0/1, shift counts masked to 0..63, and
// division/remainder by zero reported as errors.
func binOp(op ir.Op, a, b int64) (int64, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case ir.OpRem:
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return a % b, nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	case ir.OpShl:
		return a << (uint64(b) & 63), nil
	case ir.OpShr:
		return a >> (uint64(b) & 63), nil
	case ir.OpEq:
		return b2i(a == b), nil
	case ir.OpNe:
		return b2i(a != b), nil
	case ir.OpLt:
		return b2i(a < b), nil
	case ir.OpLe:
		return b2i(a <= b), nil
	case ir.OpGt:
		return b2i(a > b), nil
	case ir.OpGe:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("operator %v is not binary", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
