package interp

import (
	"fmt"
	"testing"
)

// TestBinaryOperatorSemantics pins the semantics of every Mini-C binary
// operator via the interpreter, including the edge cases: Go-style
// truncated division for negatives, wrapping 64-bit arithmetic, shift
// count masking, and 0/1 comparison results.
func TestBinaryOperatorSemantics(t *testing.T) {
	cases := []struct {
		op      string
		a, b    int64
		want    int64
		comment string
	}{
		{"+", 3, 4, 7, ""},
		{"+", 1<<62 + (1<<62 - 1), 1, -(1 << 63), "wraps like int64"},
		{"-", 3, 4, -1, ""},
		{"*", -3, 4, -12, ""},
		{"/", 7, 2, 3, ""},
		{"/", -7, 2, -3, "truncated toward zero"},
		{"/", 7, -2, -3, "truncated toward zero"},
		{"%", 7, 3, 1, ""},
		{"%", -7, 3, -1, "sign of dividend"},
		{"%", 7, -3, 1, "sign of dividend"},
		{"&", 12, 10, 8, ""},
		{"|", 12, 10, 14, ""},
		{"^", 12, 10, 6, ""},
		{"<<", 1, 4, 16, ""},
		{"<<", 1, 64, 1, "shift count masked to 0..63"},
		{"<<", 1, 65, 2, "shift count masked to 0..63"},
		{">>", -8, 1, -4, "arithmetic shift"},
		{">>", 16, 68, 1, "shift count masked"},
		{"==", 5, 5, 1, ""},
		{"==", 5, 6, 0, ""},
		{"!=", 5, 6, 1, ""},
		{"<", 5, 6, 1, ""},
		{"<", 6, 5, 0, ""},
		{"<=", 5, 5, 1, ""},
		{">", 6, 5, 1, ""},
		{">=", 5, 6, 0, ""},
	}
	for _, c := range cases {
		src := fmt.Sprintf(`func main(a, b) { return a %s b; }`, c.op)
		mod := compile(t, src)
		res, err := Run(mod, []Input{ScalarInput(c.a), ScalarInput(c.b)}, Options{})
		if err != nil {
			t.Errorf("%d %s %d: %v", c.a, c.op, c.b, err)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%d %s %d = %d, want %d (%s)", c.a, c.op, c.b, res.Ret, c.want, c.comment)
		}
	}
}

func TestUnaryOperatorSemantics(t *testing.T) {
	cases := []struct {
		expr string
		in   int64
		want int64
	}{
		{"-a", 5, -5},
		{"-a", -5, 5},
		{"!a", 0, 1},
		{"!a", 7, 0},
		{"!!a", 42, 1},
		{"- -a", 9, 9},
	}
	for _, c := range cases {
		mod := compile(t, fmt.Sprintf(`func main(a) { return %s; }`, c.expr))
		res, err := Run(mod, []Input{ScalarInput(c.in)}, Options{})
		if err != nil {
			t.Errorf("%s with a=%d: %v", c.expr, c.in, err)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%s with a=%d = %d, want %d", c.expr, c.in, res.Ret, c.want)
		}
	}
}

// TestPrecedenceSemantics pins the documented operator precedence (all
// bitwise operators bind tighter than comparisons, unlike C).
func TestPrecedenceSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"1 << 2 + 1", 8},   // + binds tighter than <<: 1 << (2+1)
		{"10 - 4 - 3", 3},   // left associative
		{"100 / 10 / 5", 2}, // left associative
		{"1 & 3 == 1", 1},   // & binds tighter than ==: (1&3) == 1
		{"4 | 1 != 5", 0},   // | binds tighter than !=: (4|1) != 5
		{"1 + 2 == 3 && 2 * 2 == 4", 1},
		{"0 || 1 && 0", 0}, // && tighter than ||
	}
	for _, c := range cases {
		mod := compile(t, fmt.Sprintf(`func main() { return %s; }`, c.expr))
		res, err := Run(mod, nil, Options{})
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if res.Ret != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.Ret, c.want)
		}
	}
}

// TestEvaluationOrder pins left-to-right evaluation of operands and
// arguments (observable through out()).
func TestEvaluationOrder(t *testing.T) {
	mod := compile(t, `
func side(x) { out(x); return x; }
func main() { return side(1) + side(2) * side(3); }
`)
	res, err := Run(mod, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3}
	if len(res.Output) != 3 {
		t.Fatalf("output %v", res.Output)
	}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("evaluation order: output %v, want %v", res.Output, want)
			break
		}
	}
	if res.Ret != 7 {
		t.Errorf("Ret = %d, want 7", res.Ret)
	}
}
