package interp

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	mod := compile(t, `
func helper(x) { if (x > 0) { return 1; } return 0; }
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + helper(i - 5); }
	return s;
}
`)
	prof := NewProfile(mod)
	if _, err := Run(mod, []Input{ScalarInput(20)}, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileJSON(&buf, mod)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range prof.Funcs {
		for bi := range prof.Funcs[fi].BlockCounts {
			if back.Funcs[fi].BlockCounts[bi] != prof.Funcs[fi].BlockCounts[bi] {
				t.Fatalf("block counts changed in round trip")
			}
			for si := range prof.Funcs[fi].EdgeCounts[bi] {
				if back.Funcs[fi].EdgeCounts[bi][si] != prof.Funcs[fi].EdgeCounts[bi][si] {
					t.Fatalf("edge counts changed in round trip")
				}
			}
		}
	}
	if back.CallCounts[mod.EntryFunc][mod.FuncIndex("helper")] != 20 {
		t.Errorf("call counts changed in round trip")
	}
}

func TestReadProfileJSONRejectsWrongShape(t *testing.T) {
	mod := compile(t, `func main(n) { if (n) { return 1; } return 0; }`)
	other := compile(t, `func main(n) { return n; } func extra() { return 0; }`)
	prof := NewProfile(mod)
	if _, err := Run(mod, []Input{ScalarInput(1)}, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfileJSON(&buf, other); err == nil {
		t.Error("expected shape mismatch error")
	}
	if _, err := ReadProfileJSON(strings.NewReader("{garbage"), mod); err == nil {
		t.Error("expected decode error")
	}
	if _, err := ReadProfileJSON(strings.NewReader(`{"Funcs":[{"BlockCounts":[-1],"EdgeCounts":[[]]}],"CallCounts":[[0]]}`), mod); err == nil {
		t.Error("expected validation error for malformed profile")
	}
}
