package interp

import (
	"strings"
	"testing"

	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
)

// compile builds a module from Mini-C source.
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

func run(t *testing.T, src string, inputs []Input) Result {
	t.Helper()
	mod := compile(t, src)
	res, err := Run(mod, inputs, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmeticAndReturn(t *testing.T) {
	res := run(t, `func main(a, b) { return a * b + a - b / 2; }`,
		[]Input{ScalarInput(7), ScalarInput(4)})
	if res.Ret != 7*4+7-4/2 {
		t.Errorf("Ret = %d", res.Ret)
	}
}

func TestFib(t *testing.T) {
	res := run(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main(n) { return fib(n); }
`, []Input{ScalarInput(15)})
	if res.Ret != 610 {
		t.Errorf("fib(15) = %d, want 610", res.Ret)
	}
	if res.DynCall == 0 || res.DynRet == 0 {
		t.Error("call/ret counters not incremented")
	}
}

func TestLoopsAndArrays(t *testing.T) {
	res := run(t, `
func main(input[], n) {
	var i;
	var sum = 0;
	for (i = 0; i < n; i = i + 1) {
		if (input[i] % 2 == 0) {
			sum = sum + input[i];
		} else {
			sum = sum - 1;
		}
	}
	return sum;
}
`, []Input{ArrayInput([]int64{1, 2, 3, 4, 5, 6}), ScalarInput(6)})
	if res.Ret != 2+4+6-3 {
		t.Errorf("Ret = %d, want 9", res.Ret)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	res := run(t, `
func main(n) {
	var i = 0;
	var sum = 0;
	while (1) {
		i = i + 1;
		if (i > n) { break; }
		if (i % 3 == 0) { continue; }
		sum = sum + i;
	}
	return sum;
}
`, []Input{ScalarInput(10)})
	// 1+2+4+5+7+8+10 = 37
	if res.Ret != 37 {
		t.Errorf("Ret = %d, want 37", res.Ret)
	}
}

func TestSwitchSemantics(t *testing.T) {
	src := `
func classify(x) {
	switch (x) {
	case 0: return 100;
	case 1:
	case 2: return 102;
	default: return 999;
	}
	return -1;
}
func main(x) { return classify(x); }
`
	// Note: Mini-C case arms do not fall through; an empty arm jumps to
	// the end of the switch.
	cases := map[int64]int64{0: 100, 1: -1, 2: 102, 5: 999}
	for in, want := range cases {
		res := run(t, src, []Input{ScalarInput(in)})
		if res.Ret != want {
			t.Errorf("classify(%d) = %d, want %d", in, res.Ret, want)
		}
	}
}

func TestSwitchBreak(t *testing.T) {
	res := run(t, `
func main(x) {
	var r = 0;
	switch (x) {
	case 1:
		r = 10;
		break;
	case 2:
		r = 20;
	}
	return r + 1;
}
`, []Input{ScalarInput(1)})
	if res.Ret != 11 {
		t.Errorf("Ret = %d, want 11", res.Ret)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false: here it
	// would divide by zero.
	res := run(t, `
func main(a, b) {
	if (b != 0 && a / b > 1) { return 1; }
	return 0;
}
`, []Input{ScalarInput(10), ScalarInput(0)})
	if res.Ret != 0 {
		t.Errorf("Ret = %d, want 0", res.Ret)
	}
	res = run(t, `
func main(a) {
	var x = a > 1 || a < -1;
	return x;
}
`, []Input{ScalarInput(-5)})
	if res.Ret != 1 {
		t.Errorf("boolean value = %d, want 1", res.Ret)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	res := run(t, `
global counter;
global hist[4];
func bump(k) {
	counter = counter + 1;
	hist[k % 4] = hist[k % 4] + 1;
	return counter;
}
func main(n) {
	var i;
	for (i = 0; i < n; i = i + 1) { bump(i); }
	return counter * 100 + hist[1];
}
`, []Input{ScalarInput(9)})
	// counter = 9; hist[1] counts i in {1, 5} -> 2.
	if res.Ret != 9*100+2 {
		t.Errorf("Ret = %d, want %d", res.Ret, 9*100+2)
	}
}

func TestOutStream(t *testing.T) {
	res := run(t, `
func main(n) {
	var i;
	for (i = 0; i < n; i = i + 1) { out(i * i); }
	return 0;
}
`, []Input{ScalarInput(4)})
	want := []int64{0, 1, 4, 9}
	if len(res.Output) != len(want) {
		t.Fatalf("output length %d, want %d", len(res.Output), len(want))
	}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], w)
		}
	}
}

func TestArraySharingByReference(t *testing.T) {
	res := run(t, `
func fill(a[], n, v) {
	var i;
	for (i = 0; i < n; i = i + 1) { a[i] = v; }
	return 0;
}
func main() {
	var buf[8];
	fill(buf, 8, 7);
	return buf[0] + buf[7];
}
`, nil)
	if res.Ret != 14 {
		t.Errorf("Ret = %d, want 14", res.Ret)
	}
}

func TestEntryArrayMutationVisibleToCaller(t *testing.T) {
	mod := compile(t, `func main(a[]) { a[0] = 42; return 0; }`)
	buf := []int64{0, 0}
	if _, err := Run(mod, []Input{ArrayInput(buf)}, Options{}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Errorf("entry array not shared: buf[0] = %d", buf[0])
	}
}

func TestShiftMasking(t *testing.T) {
	res := run(t, `func main(x) { return (x << 1) + (1 << 65); }`,
		[]Input{ScalarInput(3)})
	// 1 << 65 masks to 1 << 1 = 2.
	if res.Ret != 6+2 {
		t.Errorf("Ret = %d, want 8", res.Ret)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src string
		inputs    []Input
		want      string
	}{
		{"div zero", `func main(a) { return 1 / a; }`, []Input{ScalarInput(0)}, "division by zero"},
		{"rem zero", `func main(a) { return 1 % a; }`, []Input{ScalarInput(0)}, "remainder by zero"},
		{"read oob", `func main(a[]) { return a[5]; }`, []Input{ArrayInput(make([]int64, 2))}, "out of bounds"},
		{"write oob", `func main() { var b[2]; b[9] = 1; return 0; }`, nil, "out of bounds"},
		{"neg index", `func main(a[]) { return a[0 - 1]; }`, []Input{ArrayInput(make([]int64, 2))}, "out of bounds"},
	}
	for _, c := range cases {
		mod := compile(t, c.src)
		_, err := Run(mod, c.inputs, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	mod := compile(t, `func main() { while (1) { } return 0; }`)
	_, err := Run(mod, nil, Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("err = %v, want step budget error", err)
	}
}

func TestStackLimit(t *testing.T) {
	mod := compile(t, `func main() { return main(); }`)
	_, err := Run(mod, nil, Options{MaxDepth: 50})
	if err == nil || !strings.Contains(err.Error(), "call stack") {
		t.Fatalf("err = %v, want stack error", err)
	}
}

func TestEntryArgumentValidation(t *testing.T) {
	mod := compile(t, `func main(a, b[]) { return a + b[0]; }`)
	if _, err := Run(mod, []Input{ScalarInput(1)}, Options{}); err == nil {
		t.Error("expected arity error")
	}
	if _, err := Run(mod, []Input{ArrayInput(nil), ScalarInput(1)}, Options{}); err == nil {
		t.Error("expected shape error (array where scalar expected)")
	}
	if _, err := Run(mod, []Input{ScalarInput(1), ScalarInput(2)}, Options{}); err == nil {
		t.Error("expected shape error (scalar where array expected)")
	}
}

func TestProfileEdgeCounts(t *testing.T) {
	mod := compile(t, `
func main(n) {
	var i;
	var even = 0;
	for (i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { even = even + 1; }
	}
	return even;
}
`)
	prof := NewProfile(mod)
	res, err := Run(mod, []Input{ScalarInput(10)}, Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 5 {
		t.Fatalf("Ret = %d, want 5", res.Ret)
	}
	f := mod.Funcs[mod.EntryFunc]
	fp := prof.Funcs[mod.EntryFunc]
	// Invariants: block count equals the sum of outgoing edge counts for
	// every non-return block; entry executes exactly once.
	if fp.BlockCounts[0] != 1 {
		t.Errorf("entry executed %d times", fp.BlockCounts[0])
	}
	for bi, b := range f.Blocks {
		if b.Term.Kind == ir.TermRet {
			continue
		}
		var sum int64
		for _, c := range fp.EdgeCounts[bi] {
			sum += c
		}
		if sum != fp.BlockCounts[bi] {
			t.Errorf("block b%d: edge sum %d != block count %d", bi, sum, fp.BlockCounts[bi])
		}
	}
	// The loop-head conditional must have been taken 10 times one way and
	// once the other.
	foundLoopHead := false
	for bi, b := range f.Blocks {
		if b.Term.Kind != ir.TermCondBr {
			continue
		}
		a, c := fp.EdgeCounts[bi][0], fp.EdgeCounts[bi][1]
		if (a == 10 && c == 1) || (a == 1 && c == 10) {
			foundLoopHead = true
		}
	}
	if !foundLoopHead {
		t.Error("no conditional with 10/1 edge split found (loop head expected)")
	}
	if got := prof.BranchSitesTouched(mod); got < 2 {
		t.Errorf("BranchSitesTouched = %d, want >= 2", got)
	}
	if got := BranchSitesStatic(mod); got < 2 {
		t.Errorf("BranchSitesStatic = %d, want >= 2", got)
	}
}

func TestProfileAccumulatesAcrossRuns(t *testing.T) {
	mod := compile(t, `func main(n) { if (n > 0) { return 1; } return 0; }`)
	prof := NewProfile(mod)
	for i := 0; i < 3; i++ {
		if _, err := Run(mod, []Input{ScalarInput(int64(i))}, Options{Profile: prof}); err != nil {
			t.Fatal(err)
		}
	}
	if prof.Funcs[mod.EntryFunc].BlockCounts[0] != 3 {
		t.Errorf("entry count = %d, want 3", prof.Funcs[mod.EntryFunc].BlockCounts[0])
	}
}

func TestProfileMerge(t *testing.T) {
	mod := compile(t, `func main(n) { if (n > 0) { return 1; } return 0; }`)
	p1 := NewProfile(mod)
	p2 := NewProfile(mod)
	if _, err := Run(mod, []Input{ScalarInput(1)}, Options{Profile: p1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mod, []Input{ScalarInput(0)}, Options{Profile: p2}); err != nil {
		t.Fatal(err)
	}
	if err := p1.Merge(p2); err != nil {
		t.Fatal(err)
	}
	if p1.Funcs[mod.EntryFunc].BlockCounts[0] != 2 {
		t.Errorf("merged entry count = %d, want 2", p1.Funcs[mod.EntryFunc].BlockCounts[0])
	}
}

func TestTraceCallback(t *testing.T) {
	mod := compile(t, `
func helper(x) { return x + 1; }
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = helper(s); }
	return s;
}
`)
	var events []int
	res, err := Run(mod, []Input{ScalarInput(3)}, Options{
		Trace: func(fn, blk int) { events = append(events, fn*1000+blk) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 3 {
		t.Fatalf("Ret = %d", res.Ret)
	}
	if len(events) == 0 {
		t.Fatal("trace callback never fired")
	}
	// First event is the entry block of main.
	if events[0] != mod.EntryFunc*1000 {
		t.Errorf("first trace event = %d, want entry of main", events[0])
	}
	// helper's entry must appear exactly 3 times.
	helperIdx := mod.FuncIndex("helper")
	count := 0
	for _, e := range events {
		if e == helperIdx*1000 {
			count++
		}
	}
	if count != 3 {
		t.Errorf("helper entry traced %d times, want 3", count)
	}
}

func TestHottestSuccessor(t *testing.T) {
	mod := compile(t, `
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
`)
	prof := NewProfile(mod)
	if _, err := Run(mod, []Input{ScalarInput(100)}, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	f := mod.Funcs[mod.EntryFunc]
	for bi, b := range f.Blocks {
		if b.Term.Kind != ir.TermCondBr {
			continue
		}
		idx, count := prof.HottestSuccessor(mod.EntryFunc, bi)
		if idx < 0 || count < 100 {
			t.Errorf("loop-head hottest successor = (%d, %d), want the 100-count edge", idx, count)
		}
	}
	if idx, count := prof.HottestSuccessor(mod.EntryFunc, len(f.Blocks)-1); f.Blocks[len(f.Blocks)-1].Term.Kind == ir.TermRet && (idx != -1 || count != 0) {
		t.Errorf("ret block hottest successor = (%d,%d), want (-1,0)", idx, count)
	}
}

func TestDynCounters(t *testing.T) {
	res := run(t, `
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		switch (i % 3) {
		case 0: s = s + 1;
		case 1: s = s + 2;
		default: s = s + 3;
		}
	}
	return s;
}
`, []Input{ScalarInput(9)})
	if res.DynSwitch != 9 {
		t.Errorf("DynSwitch = %d, want 9", res.DynSwitch)
	}
	if res.DynCond != 10 {
		t.Errorf("DynCond = %d, want 10 (loop head)", res.DynCond)
	}
	if res.DynBranches() != res.DynCond+res.DynSwitch+res.DynBr {
		t.Error("DynBranches arithmetic wrong")
	}
	// s: i=0..8 -> 1,2,3,1,2,3,1,2,3 = 18
	if res.Ret != 18 {
		t.Errorf("Ret = %d, want 18", res.Ret)
	}
}
