package layout_test

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func TestMetricsAccounting(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	met := layout.ModuleMetrics(mod, l, prof)
	if met.Transfers == 0 {
		t.Fatal("no transfers measured")
	}
	if met.Fallthroughs+met.Taken != met.Transfers {
		t.Errorf("fallthroughs %d + taken %d != transfers %d", met.Fallthroughs, met.Taken, met.Transfers)
	}
	if met.ViaFixup > met.Taken {
		t.Errorf("fixups %d exceed taken %d", met.ViaFixup, met.Taken)
	}
	rate := met.FallthroughRate()
	if rate <= 0 || rate >= 1 {
		t.Errorf("fall-through rate %.3f out of (0,1)", rate)
	}
}

// TestAlignmentRaisesFallthroughRate is the mechanism check: better
// layouts convert taken transfers into fall-throughs.
func TestAlignmentRaisesFallthroughRate(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	orig := layout.ModuleMetrics(mod, layout.Identity(mod, prof, m), prof)
	aligned := layout.ModuleMetrics(mod, align.NewTSP(1).Align(context.Background(), mod, prof, m), prof)
	if aligned.FallthroughRate() <= orig.FallthroughRate() {
		t.Errorf("TSP fall-through rate %.3f not above original %.3f",
			aligned.FallthroughRate(), orig.FallthroughRate())
	}
	// Transfers are layout-independent.
	if aligned.Transfers != orig.Transfers {
		t.Errorf("transfer counts changed: %d vs %d", aligned.Transfers, orig.Transfers)
	}
}

func TestMetricsEmptyProfile(t *testing.T) {
	var m layout.Metrics
	if m.FallthroughRate() != 0 {
		t.Error("zero-transfer rate should be 0")
	}
}
