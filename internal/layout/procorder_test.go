package layout_test

import (
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

func TestOrderFunctionsIsPermutation(t *testing.T) {
	mod, prof := compileBranchy(t)
	order := layout.OrderFunctions(mod, prof)
	if len(order) != len(mod.Funcs) {
		t.Fatalf("order has %d entries for %d functions", len(order), len(mod.Funcs))
	}
	seen := make([]bool, len(mod.Funcs))
	for _, fi := range order {
		if fi < 0 || fi >= len(mod.Funcs) || seen[fi] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[fi] = true
	}
}

func TestOrderFunctionsPlacesHotPairsNearby(t *testing.T) {
	src := `
func hot(x) { return x + 1; }
func cold(x) { return x * 2; }
func lukewarm(x) { return x - 1; }
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = hot(s); }
	s = s + lukewarm(s);
	if (n < 0) { s = cold(s); }
	return s;
}
`
	mod, prof, _, err := testutil.CompileAndProfile(src, []interp.Input{interp.ScalarInput(1000)})
	if err != nil {
		t.Fatal(err)
	}
	order := layout.OrderFunctions(mod, prof)
	posOf := map[string]int{}
	for pos, fi := range order {
		posOf[mod.Funcs[fi].Name] = pos
	}
	distHot := posOf["main"] - posOf["hot"]
	if distHot < 0 {
		distHot = -distHot
	}
	distCold := posOf["main"] - posOf["cold"]
	if distCold < 0 {
		distCold = -distCold
	}
	if distHot >= distCold {
		t.Errorf("hot callee (dist %d) should be closer to main than the never-called one (dist %d); order %v",
			distHot, distCold, order)
	}
}

func TestOrderFunctionsZeroProfile(t *testing.T) {
	mod, _ := compileBranchy(t)
	order := layout.OrderFunctions(mod, interp.NewProfile(mod))
	if len(order) != len(mod.Funcs) {
		t.Fatalf("bad order on zero profile: %v", order)
	}
}

func TestPlaceModuleOrderedTilesWithoutOverlap(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	order := layout.OrderFunctions(mod, prof)
	pm := layout.PlaceModuleOrdered(mod, l, order)
	prevEnd := int64(0)
	for _, fi := range order {
		pf := pm.Funcs[fi]
		if pf == nil {
			t.Fatalf("function %d unplaced", fi)
		}
		if pf.Base < prevEnd {
			t.Fatalf("function %d overlaps (base %d < prev end %d)", fi, pf.Base, prevEnd)
		}
		prevEnd = pf.End
	}
	if pm.CodeSize() != prevEnd {
		t.Errorf("CodeSize = %d, want %d", pm.CodeSize(), prevEnd)
	}
	// Same total size as module-order placement (modulo alignment slack).
	plain := layout.PlaceModule(mod, l)
	diff := pm.CodeSize() - plain.CodeSize()
	if diff < -int64(len(mod.Funcs)*layout.FuncAlignment) || diff > int64(len(mod.Funcs)*layout.FuncAlignment) {
		t.Errorf("ordered placement size %d far from plain %d", pm.CodeSize(), plain.CodeSize())
	}
}

// The pipe-level effect of procedure ordering is tested in package pipe
// (TestProcedureOrderingReducesConflictMisses); here we check the
// ordering decision itself on the conflict module.
func TestOrderFunctionsSinksColdPad(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.ConflictSource(), []interp.Input{interp.ScalarInput(5000)})
	if err != nil {
		t.Fatal(err)
	}
	order := layout.OrderFunctions(mod, prof)
	if mod.Funcs[order[len(order)-1]].Name != "coldPad" {
		t.Errorf("coldPad should be placed last, got order %v", order)
	}
}
