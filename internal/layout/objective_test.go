package layout_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/testutil"
)

// refExtTSPScore is a deliberately naive re-derivation of the ExtTSP
// objective used to cross-check ExtTSPScore: it walks the layout order
// (not the block index space), recomputes byte addresses from scratch,
// and spells the kernel out as literal arithmetic instead of calling
// ArcScore. Any bug shared with the production path would have to be
// introduced twice, in different shapes.
func refExtTSPScore(f *ir.Func, fp *interp.FuncProfile, order []int, p layout.ExtTSPParams) float64 {
	start := map[int]int{}
	addr := 0
	for _, b := range order {
		start[b] = addr
		n := f.Blocks[b].Size()
		if f.Blocks[b].Term.Kind == ir.TermBr {
			n++
		}
		addr += n * layout.BytesPerSlot
	}
	var total float64
	for _, b := range order {
		blk := f.Blocks[b]
		n := blk.Size()
		if blk.Term.Kind == ir.TermBr {
			n++
		}
		srcEnd := start[b] + n*layout.BytesPerSlot
		for si, to := range blk.Term.Succs {
			w := float64(fp.EdgeCounts[b][si])
			if w == 0 {
				continue
			}
			dst := start[to]
			if dst == srcEnd {
				total += w * p.FallthroughWeight
			} else if dst > srcEnd && dst-srcEnd < p.ForwardWindow {
				total += w * p.ForwardWeight * (float64(p.ForwardWindow-(dst-srcEnd)) / float64(p.ForwardWindow))
			} else if dst < srcEnd && srcEnd-dst < p.BackwardWindow {
				total += w * p.BackwardWeight * (float64(p.BackwardWindow-(srcEnd-dst)) / float64(p.BackwardWindow))
			}
		}
	}
	return total
}

// closeEnough compares scores up to relative 1e-9: the production path
// and the reference sum arcs in different orders, so the last ulp of
// the float64 accumulation may differ.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// TestExtTSPScoreMatchesReferenceOnBenchmark pins the production scorer
// against the naive reference on a real compiled CFG, for the identity
// order and a spread of random orders.
func TestExtTSPScoreMatchesReferenceOnBenchmark(t *testing.T) {
	mod, prof := compileBranchy(t)
	p := layout.DefaultExtTSPParams()
	rng := rand.New(rand.NewSource(11))
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		for trial := 0; trial < 20; trial++ {
			order := randomOrder(len(f.Blocks), rng)
			if trial == 0 { // include the identity order
				for i := range order {
					order[i] = i
				}
			}
			got := layout.ExtTSPScore(f, fp, order, p)
			want := refExtTSPScore(f, fp, order, p)
			if !closeEnough(got, want) {
				t.Fatalf("func %d trial %d: ExtTSPScore=%g, reference=%g", fi, trial, got, want)
			}
		}
	}
}

// TestQuickExtTSPScoreMatchesReference is the property form: synthetic
// random CFGs of varying shape, random valid orders, production scorer
// == naive reference.
func TestQuickExtTSPScoreMatchesReference(t *testing.T) {
	p := layout.DefaultExtTSPParams()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 2 + rng.Intn(30)
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, seed))
		if err != nil {
			t.Logf("seed %d: synthesize: %v", seed, err)
			return false
		}
		for fi, f := range mod.Funcs {
			fp := prof.Funcs[fi]
			order := randomOrder(len(f.Blocks), rng)
			got := layout.ExtTSPScore(f, fp, order, p)
			want := refExtTSPScore(f, fp, order, p)
			if !closeEnough(got, want) {
				t.Logf("seed %d func %d: ExtTSPScore=%g, reference=%g", seed, fi, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExtTSPScoreEdgeCases pins the degenerate shapes: a single-block
// function scores zero (a return block has no scored arcs), and a
// two-block fall-through scores exactly weight·FallthroughWeight.
func TestExtTSPScoreEdgeCases(t *testing.T) {
	p := layout.DefaultExtTSPParams()

	mod, prof, _, err := testutil.CompileAndProfile(
		`func main(n) { return n; }`, []interp.Input{interp.ScalarInput(5)})
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Funcs[mod.EntryFunc]
	if len(f.Blocks) != 1 {
		t.Fatalf("expected single-block function, got %d blocks", len(f.Blocks))
	}
	if got := layout.ExtTSPScore(f, prof.Funcs[mod.EntryFunc], []int{0}, p); got != 0 {
		t.Errorf("single-block score = %g, want 0", got)
	}

	// A straight-line loop body: every executed arc in identity order is
	// either a perfect fall-through or a short jump, so the score must be
	// strictly positive and match the reference exactly.
	mod, prof, _, err = testutil.CompileAndProfile(`
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + 1; }
	return s;
}
`, []interp.Input{interp.ScalarInput(10)})
	if err != nil {
		t.Fatal(err)
	}
	f = mod.Funcs[mod.EntryFunc]
	fp := prof.Funcs[mod.EntryFunc]
	order := make([]int, len(f.Blocks))
	for i := range order {
		order[i] = i
	}
	got := layout.ExtTSPScore(f, fp, order, p)
	if got <= 0 {
		t.Errorf("loop identity score = %g, want > 0", got)
	}
	if want := refExtTSPScore(f, fp, order, p); !closeEnough(got, want) {
		t.Errorf("loop identity score = %g, reference = %g", got, want)
	}
}
