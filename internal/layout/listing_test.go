package layout_test

import (
	"math/rand"
	"strings"
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

func TestListingIdentityLayout(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(`
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { s = s + 2; } else { s = s - 1; }
	}
	return s;
}
`, []interp.Input{interp.ScalarInput(10)})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	f := mod.Funcs[mod.EntryFunc]
	pf := layout.PlaceFunc(f, l.Funcs[mod.EntryFunc], 0)
	text := layout.Listing(f, l.Funcs[mod.EntryFunc], pf)
	for _, want := range []string{"main:", ".b0", "br.if", "falls through", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing missing %q:\n%s", want, text)
		}
	}
}

// TestListingShowsInversionAndFixups: under a layout that displaces a
// conditional's fall-through, the listing must show either an inverted
// condition or a fixup jump.
func TestListingShowsInversionAndFixups(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(8))
	sawInversion, sawFixup, sawJump := false, false, false
	for fi, f := range mod.Funcs {
		if len(f.Blocks) < 4 {
			continue
		}
		order := make([]int, len(f.Blocks))
		for i := range order {
			order[i] = i
		}
		rest := order[1:]
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		fl := layout.Finalize(f, prof.Funcs[fi], order, m)
		pf := layout.PlaceFunc(f, fl, 0)
		text := layout.Listing(f, fl, pf)
		if strings.Contains(text, "br.if !") {
			sawInversion = true
		}
		if strings.Contains(text, "fixup block") {
			sawFixup = true
		}
		if strings.Contains(text, "jmp .b") {
			sawJump = true
		}
		// Every block must appear exactly once at its placed address.
		for b := range f.Blocks {
			label := ".b" + itoa(b)
			if !strings.Contains(text, label) {
				t.Fatalf("func %s: listing missing block %s\n%s", f.Name, label, text)
			}
		}
	}
	if !sawInversion {
		t.Error("no inverted conditional in any scrambled listing")
	}
	if !sawFixup {
		t.Error("no fixup block in any scrambled listing")
	}
	if !sawJump {
		t.Error("no materialized jump in any scrambled listing")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
