package layout_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

func compileBranchy(t *testing.T) (*ir.Module, *interp.Profile) {
	t.Helper()
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(400, 7))
	if err != nil {
		t.Fatal(err)
	}
	return mod, prof
}

// randomOrder returns a random valid block order (entry first).
func randomOrder(nBlocks int, rng *rand.Rand) []int {
	order := make([]int, nBlocks)
	for i := range order {
		order[i] = i
	}
	rest := order[1:]
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	return order
}

func TestIdentityLayoutValidates(t *testing.T) {
	mod, prof := compileBranchy(t)
	l := layout.Identity(mod, prof, machine.Alpha21164())
	if err := l.Validate(mod); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	f0 := mod.Funcs[0]
	if len(f0.Blocks) < 3 {
		t.Skip("first function too small")
	}
	// Entry not first.
	bad := *l.Funcs[0]
	bad.Order = append([]int(nil), l.Funcs[0].Order...)
	bad.Order[0], bad.Order[1] = bad.Order[1], bad.Order[0]
	if err := bad.Validate(f0); err == nil {
		t.Error("expected error for entry not first")
	}
	// Duplicate block.
	bad2 := *l.Funcs[0]
	bad2.Order = append([]int(nil), l.Funcs[0].Order...)
	bad2.Order[1] = bad2.Order[2]
	if err := bad2.Validate(f0); err == nil {
		t.Error("expected error for duplicate block")
	}
	// Wrong length.
	bad3 := *l.Funcs[0]
	bad3.Order = bad3.Order[:len(bad3.Order)-1]
	if err := bad3.Validate(f0); err == nil {
		t.Error("expected error for truncated order")
	}
}

func TestPredictionsPickHottestSuccessor(t *testing.T) {
	mod, prof, _, err := testutil.CompileAndProfile(`
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + i; }
	return s;
}
`, []interp.Input{interp.ScalarInput(50)})
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Funcs[mod.EntryFunc]
	pred := layout.Predictions(f, prof.Funcs[mod.EntryFunc])
	for b, blk := range f.Blocks {
		switch blk.Term.Kind {
		case ir.TermRet:
			if pred[b] != -1 {
				t.Errorf("ret block b%d predicted %d", b, pred[b])
			}
		case ir.TermCondBr:
			hot, _ := prof.HottestSuccessor(mod.EntryFunc, b)
			if pred[b] != hot {
				t.Errorf("block b%d: pred %d != hottest %d", b, pred[b], hot)
			}
		}
	}
}

// TestIdentityPenaltyMatchesHandComputation pins the cost semantics on a
// tiny hand-analyzable CFG.
func TestIdentityPenaltyMatchesHandComputation(t *testing.T) {
	// Loop runs 10 iterations: loop-head conditional executes 11 times
	// (10 into body, 1 exit).
	mod, prof, _, err := testutil.CompileAndProfile(`
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) { s = s + 1; }
	return s;
}
`, []interp.Input{interp.ScalarInput(10)})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	got := layout.ModulePenalty(mod, l, prof, m)
	// Lowered CFG (identity order): entry(b0) -> head(b1) -cond-> body(b2)/exit(b4);
	// body -> post(b3) -> head; exit -> ret.
	// In identity order b1's layout successor is b2 (the hot side, 10 execs,
	// predicted): fall-through correct = 0; the single exit execution is a
	// mispredicted taken branch: 5.
	// b2 -> b3 falls through: 0. b3 -> b1 is a displaced unconditional jump
	// executed 10 times: 10 * 2 = 20. Entry falls into b1: 0.
	// Total = 5 + 20 = 25.
	if got != 25 {
		f := mod.Funcs[mod.EntryFunc]
		t.Fatalf("identity penalty = %d, want 25\nCFG:\n%s", got, f.Body())
	}
	// An optimal order places the loop body as the head's fall-through and
	// sinks the exit: rotating the loop (b0 b1 b2 b3 b4 is already it) —
	// here identity is already good except nothing to improve: the 10x
	// back edge jump is unavoidable for b3->b1 unless b1 follows b3, which
	// conflicts with entry placement... so the TSP aligner should find
	// penalty <= 25.
}

// TestWalkCostEqualsPenalty is the reduction-correctness invariant from
// DESIGN.md: for any order, the DTSP walk cost of the corresponding tour
// equals the independently evaluated layout penalty on the training
// profile. (The matrix-building side lives in package align; this test
// checks the layout side against a re-derivation through SuccessorCost.)
func TestWalkCostEqualsPenalty(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(99))
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		pred := layout.Predictions(f, fp)
		for trial := 0; trial < 25; trial++ {
			order := randomOrder(len(f.Blocks), rng)
			fl := layout.Finalize(f, fp, order, m)
			if err := fl.Validate(f); err != nil {
				t.Fatalf("func %d trial %d: %v", fi, trial, err)
			}
			// Walk cost: sum of SuccessorCost along the order, with the
			// last block paying the end-of-layout cost.
			var walk layout.Cost
			for k := 0; k < len(order); k++ {
				x := -1
				if k+1 < len(order) {
					x = order[k+1]
				}
				walk += layout.SuccessorCost(f, fp, pred, order[k], x, m)
			}
			pen := layout.Penalty(f, fl, fp, m)
			if walk != pen {
				t.Fatalf("func %d (%s) trial %d: walk cost %d != penalty %d (order %v)",
					fi, f.Name, trial, walk, pen, order)
			}
		}
	}
}

// TestCrossProfilePenaltyUsesRecordedDecisions verifies that evaluating a
// layout against a different profile uses the training-time predictions:
// training on an input that biases a branch one way and testing on the
// opposite bias must charge mispredicts for the now-common path.
func TestCrossProfilePenaltyUsesRecordedDecisions(t *testing.T) {
	src := `
func main(input[], n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (input[i] > 0) { s = s + 1; } else { s = s - 1; }
	}
	return s;
}
`
	mod, err := testutil.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int64, 100)
	neg := make([]int64, 100)
	for i := range pos {
		pos[i] = 5
		neg[i] = -5
	}
	posProf := interp.NewProfile(mod)
	if _, err := interp.Run(mod, []interp.Input{interp.ArrayInput(pos), interp.ScalarInput(100)}, interp.Options{Profile: posProf}); err != nil {
		t.Fatal(err)
	}
	negProf := interp.NewProfile(mod)
	if _, err := interp.Run(mod, []interp.Input{interp.ArrayInput(neg), interp.ScalarInput(100)}, interp.Options{Profile: negProf}); err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, posProf, m) // trained on positive bias
	self := layout.ModulePenalty(mod, l, posProf, m)
	cross := layout.ModulePenalty(mod, l, negProf, m)
	if cross <= self {
		t.Errorf("cross-profile penalty %d should exceed self penalty %d (reversed branch bias)", cross, self)
	}
}

func TestPlaceFuncAddressing(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	pm := layout.PlaceModule(mod, l)
	if len(pm.Funcs) != len(mod.Funcs) {
		t.Fatalf("placed %d funcs, want %d", len(pm.Funcs), len(mod.Funcs))
	}
	prevEnd := int64(0)
	for fi, pf := range pm.Funcs {
		f := mod.Funcs[fi]
		if pf.Base < prevEnd {
			t.Fatalf("func %d overlaps previous (base %d < end %d)", fi, pf.Base, prevEnd)
		}
		if pf.Base%layout.FuncAlignment != 0 {
			t.Errorf("func %d base %d not aligned", fi, pf.Base)
		}
		prevEnd = pf.End
		// Blocks tile the function without gaps or overlaps, in layout
		// order.
		cur := pf.Base
		for _, b := range l.Funcs[fi].Order {
			if pf.Addr[b] != cur {
				t.Fatalf("func %d block b%d at %d, expected %d", fi, b, pf.Addr[b], cur)
			}
			cur += pf.Size[b]
			if pf.FixupAddr[b] >= 0 {
				if pf.FixupAddr[b] != cur {
					t.Fatalf("func %d block b%d fixup at %d, expected %d", fi, b, pf.FixupAddr[b], cur)
				}
				cur++
			}
			// Size sanity: at least the instruction count.
			if pf.Size[b] < int64(len(f.Blocks[b].Instrs)) {
				t.Fatalf("block size smaller than instruction count")
			}
		}
		if cur != pf.End {
			t.Fatalf("func %d: blocks end at %d, End = %d", fi, cur, pf.End)
		}
	}
	if pm.CodeSize() != prevEnd {
		t.Errorf("CodeSize = %d, want %d", pm.CodeSize(), prevEnd)
	}
}

func TestPlacementElidesFallthroughJumps(t *testing.T) {
	// A block ending in Br whose target follows it has no jump slot; the
	// same block displaced gains one.
	mod, prof, _, err := testutil.CompileAndProfile(`
func main(n) {
	var s = 0;
	if (n > 0) { s = 1; } else { s = 2; }
	return s;
}
`, []interp.Input{interp.ScalarInput(1)})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Alpha21164()
	f := mod.Funcs[mod.EntryFunc]
	fp := prof.Funcs[mod.EntryFunc]
	idOrder := make([]int, len(f.Blocks))
	for i := range idOrder {
		idOrder[i] = i
	}
	id := layout.Finalize(f, fp, idOrder, m)
	pfID := layout.PlaceFunc(f, id, 0)
	// Find a Br block whose target is its layout successor under identity.
	succ := id.LayoutSuccessors(f)
	var brBlock = -1
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermBr && blk.Term.Succs[0] == succ[b] {
			brBlock = b
			break
		}
	}
	if brBlock < 0 {
		t.Skip("no fall-through Br block in identity order")
	}
	sizeFallthrough := pfID.Size[brBlock]
	// Move that block to the end: it must now carry a jump slot.
	order := []int{0}
	for i := 1; i < len(f.Blocks); i++ {
		if i != brBlock {
			order = append(order, i)
		}
	}
	if brBlock != 0 {
		order = append(order, brBlock)
	}
	moved := layout.Finalize(f, fp, order, m)
	pfMoved := layout.PlaceFunc(f, moved, 0)
	if pfMoved.Size[brBlock] != sizeFallthrough+1 {
		t.Errorf("displaced Br block size = %d, want %d", pfMoved.Size[brBlock], sizeFallthrough+1)
	}
}

func TestExecEventFixupAccounting(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(5))
	// For random layouts, per-execution events aggregated over the profile
	// must equal Penalty.
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		order := randomOrder(len(f.Blocks), rng)
		fl := layout.Finalize(f, fp, order, m)
		succ := fl.LayoutSuccessors(f)
		var total layout.Cost
		for b, blk := range f.Blocks {
			if blk.Term.Kind == ir.TermRet {
				continue
			}
			for si := range blk.Term.Succs {
				ev := fl.Exec(f, b, si, succ[b], m)
				total += fp.EdgeCounts[b][si] * ev.Penalty
			}
		}
		if pen := layout.Penalty(f, fl, fp, m); pen != total {
			t.Fatalf("func %d: aggregated events %d != Penalty %d", fi, total, pen)
		}
	}
}

// TestTakenPathConsistentWithExec: reconstructing each event's penalty
// from TakenPath + the static prediction direction must reproduce Exec
// exactly, for random layouts. This is the contract the pipeline
// simulator's unified penalty computation relies on.
func TestTakenPathConsistentWithExec(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	rng := rand.New(rand.NewSource(77))
	for fi, f := range mod.Funcs {
		fp := prof.Funcs[fi]
		for trial := 0; trial < 10; trial++ {
			order := randomOrder(len(f.Blocks), rng)
			fl := layout.Finalize(f, fp, order, m)
			succ := fl.LayoutSuccessors(f)
			for b, blk := range f.Blocks {
				for si := range blk.Term.Succs {
					ev := fl.Exec(f, b, si, succ[b], m)
					taken, viaFixup := fl.TakenPath(f, b, si, succ[b])
					var pen layout.Cost
					switch blk.Term.Kind {
					case ir.TermBr:
						if taken {
							pen = m.JumpCost
						}
					case ir.TermCondBr:
						predictedTaken := fl.PredictedTaken(f, b, succ[b])
						switch {
						case predictedTaken == taken && taken:
							pen = m.CondTakenCorrect
						case predictedTaken == taken:
							pen = m.CondFallthroughCorrect
						default:
							pen = m.CondMispredict
						}
						if viaFixup {
							pen += m.JumpCost
						}
					case ir.TermSwitch:
						correct := si == fl.Pred[b]
						target := blk.Term.Succs[si]
						switch {
						case correct && target == succ[b]:
							pen = m.MultiCorrectFallthrough
						case correct:
							pen = m.MultiCorrectTaken
						default:
							pen = m.MultiMispredict
						}
					}
					if pen != ev.Penalty || viaFixup != ev.ViaFixup {
						t.Fatalf("func %d block %d si %d: TakenPath reconstruction (%d,%v) != Exec (%d,%v)",
							fi, b, si, pen, viaFixup, ev.Penalty, ev.ViaFixup)
					}
				}
			}
		}
	}
}

func TestLayoutJSONRoundTrip(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := layout.ReadLayoutJSON(&buf, mod)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range l.Funcs {
		for k := range l.Funcs[fi].Order {
			if back.Funcs[fi].Order[k] != l.Funcs[fi].Order[k] {
				t.Fatal("order changed in round trip")
			}
		}
		for b := range l.Funcs[fi].Pred {
			if back.Funcs[fi].Pred[b] != l.Funcs[fi].Pred[b] {
				t.Fatal("predictions changed in round trip")
			}
		}
	}
	// Penalties must be identical through the round trip.
	if layout.ModulePenalty(mod, back, prof, m) != layout.ModulePenalty(mod, l, prof, m) {
		t.Error("penalty changed through serialization")
	}
}

func TestReadLayoutJSONRejectsInvalid(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	// Corrupt: swap entry out of first position.
	l.Funcs[0].Order[0], l.Funcs[0].Order[1] = l.Funcs[0].Order[1], l.Funcs[0].Order[0]
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := layout.ReadLayoutJSON(&buf, mod); err == nil {
		t.Error("expected validation error for corrupted layout")
	}
	if _, err := layout.ReadLayoutJSON(strings.NewReader("not json"), mod); err == nil {
		t.Error("expected decode error")
	}
}

func TestExecRetChargesRetCost(t *testing.T) {
	mod, prof := compileBranchy(t)
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	f := mod.Funcs[0]
	for b, blk := range f.Blocks {
		if blk.Term.Kind != ir.TermRet {
			continue
		}
		ev := l.Funcs[0].Exec(f, b, -1, -1, m)
		if ev.Penalty != m.RetCost {
			t.Errorf("ret event penalty = %d, want %d", ev.Penalty, m.RetCost)
		}
	}
}
